(** Cost-aware submission ordering for sweep jobs.

    A FIFO queue of heterogeneous jobs produces a straggler tail: when the
    expensive jobs (a [uk]-graph configuration, a saturated-core synthetic)
    happen to sit at the back, the last worker runs one alone while the
    others idle.  The classic fix is LPT (longest processing time first):
    submit jobs in decreasing estimated cost, so the big rocks land first
    and the cheap jobs pack the gaps.  For [m] machines LPT's makespan is
    within 4/3 − 1/(3m) of optimal — and with a single worker, or with no
    estimates at all, it degrades to exactly the FIFO order.

    Estimates come from the {!Result_store} cost model (mean of prior
    observed durations per cost key).  Jobs with {e no} estimate sort
    {e first}, before all estimated jobs: an unknown job may be arbitrarily
    long, and running it early both bounds the tail and teaches the model.

    Only the {e submission} order changes.  Results are still awaited and
    aggregated in the caller's original job order
    ({!Hcsgc_exec.Pool.map_array_in_order}), so scheduling never affects
    output bytes — only wall-clock. *)

val order : estimate:(int -> float option) -> int -> int array
(** [order ~estimate n] is a permutation of [0 .. n-1]: first the indices
    with [estimate i = None] (in index order), then the rest by decreasing
    estimate, ties broken by index.  Deterministic for a fixed [estimate].
    [estimate] is called exactly once per index. *)

val fifo : int -> int array
(** [fifo n] is the identity permutation — the pre-scheduler baseline,
    kept so harnesses can measure FIFO vs cost-aware makespans. *)
