(** Content addresses for sweep results.

    A fingerprint names the {e value} of one simulation job — everything
    that determines its [run_metrics] bit-for-bit: the experiment's stable
    parameter key, the configuration knobs, the run seed, the verify flag
    and a repo-wide {!code_version} token.  Two jobs with equal
    fingerprints are guaranteed (by the simulator's determinism, enforced
    in the test suite) to produce identical metrics, so the
    {!Result_store} may serve either from the other's cached entry.

    The digest is MD5 ({!Stdlib.Digest}): this is content addressing for a
    local cache, not an integrity boundary against an adversary. *)

val code_version : string
(** Salt mixed into every fingerprint.  {b Bump this} whenever a change
    alters simulation semantics (cost model, collector behaviour, workload
    generation, metrics definition): all previously cached entries then
    miss cleanly instead of serving stale results. *)

type t
(** An opaque 128-bit digest. *)

val make :
  experiment:string -> config:string -> run:int -> verify:bool -> t
(** [make ~experiment ~config ~run ~verify] fingerprints one job.
    [experiment] must be the job's {e stable parameter key} (every workload
    knob spelled out, not just a display name); [config] a lossless
    rendering of the configuration knobs.  The fields are length-prefixed
    before hashing, so no two distinct inputs collide by concatenation. *)

val to_hex : t -> string
(** 32 lowercase hex characters; used as the store filename. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
