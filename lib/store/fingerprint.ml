(* Bump on any semantically visible change to the simulator or to the
   metrics serialization: the token participates in every digest, so old
   cache entries become unreachable rather than stale. *)
let code_version = "hcsgc-2026-08-pr8-v1"

type t = string (* raw 16-byte MD5 digest *)

(* Length-prefix every field so field boundaries are unambiguous:
   ("ab","c") and ("a","bc") must not hash equal. *)
let add_field buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let make ~experiment ~config ~run ~verify =
  let buf = Buffer.create 128 in
  add_field buf code_version;
  add_field buf experiment;
  add_field buf config;
  add_field buf (string_of_int run);
  add_field buf (if verify then "v1" else "v0");
  Digest.string (Buffer.contents buf)

let to_hex = Digest.to_hex
let equal = String.equal
let pp fmt t = Format.pp_print_string fmt (to_hex t)
