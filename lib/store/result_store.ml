type t = {
  dir : string;
  mutex : Mutex.t;
  costs : (string, int * float) Hashtbl.t;  (* key -> (count, total seconds) *)
  mutable hits : int;
  mutable misses : int;
  mutable corrupt : int;
  mutable stored : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
}

type counters = {
  hits : int;
  misses : int;
  corrupt : int;
  stored : int;
  bytes_read : int;
  bytes_written : int;
}

let magic = "hcsgc-result 1"
let costs_file t = Filename.concat t.dir "costs.tsv"
let entry_path t fp = Filename.concat t.dir (Fingerprint.to_hex fp ^ ".v1")
let dir t = t.dir

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755
    with Sys_error _ when Sys.is_directory path -> () (* raced another writer *)
  end

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let read_file path =
  try Some (In_channel.with_open_bin path In_channel.input_all)
  with Sys_error _ -> None

(* Atomic publish: write the full contents to a fresh temp file in the
   same directory, then rename over the target.  Readers either see the
   old entry or the new one, never a prefix. *)
let write_atomically ~dir ~path contents =
  let tmp = Filename.temp_file ~temp_dir:dir ".write" ".tmp" in
  let ok =
    try
      Out_channel.with_open_bin tmp (fun oc ->
          Out_channel.output_string oc contents);
      true
    with Sys_error _ -> false
  in
  if ok then Sys.rename tmp path
  else (try Sys.remove tmp with Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Cost model persistence                                              *)
(* ------------------------------------------------------------------ *)

let sanitize_key key =
  String.map (fun c -> if c = '\t' || c = '\n' || c = '\r' then ' ' else c) key

let load_costs t =
  match read_file (costs_file t) with
  | None -> ()
  | Some contents ->
      String.split_on_char '\n' contents
      |> List.iter (fun line ->
             match String.split_on_char '\t' line with
             | [ key; count; total ] -> (
                 match (int_of_string_opt count, float_of_string_opt total) with
                 | Some n, Some s when n > 0 && Float.is_finite s ->
                     Hashtbl.replace t.costs key (n, s)
                 | _ -> () (* malformed row: costs are advisory, drop it *))
             | _ -> ())

let save_costs t =
  let rows =
    Hashtbl.fold (fun key (n, s) acc -> (key, n, s) :: acc) t.costs []
    |> List.sort compare
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun (key, n, s) -> Printf.bprintf buf "%s\t%d\t%h\n" key n s)
    rows;
  write_atomically ~dir:t.dir ~path:(costs_file t) (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Entry envelope                                                      *)
(* ------------------------------------------------------------------ *)

let encode_entry ~cost payload =
  Printf.sprintf "%s\n%s %d %h\n%s" magic
    (Digest.to_hex (Digest.string payload))
    (String.length payload) cost payload

(* Returns the payload iff the envelope is structurally whole: right
   magic+version, self-reported length matches, checksum matches. *)
let decode_entry contents =
  match String.index_opt contents '\n' with
  | None -> None
  | Some nl1 -> (
      if String.sub contents 0 nl1 <> magic then None
      else
        match String.index_from_opt contents (nl1 + 1) '\n' with
        | None -> None
        | Some nl2 -> (
            let header = String.sub contents (nl1 + 1) (nl2 - nl1 - 1) in
            let payload =
              String.sub contents (nl2 + 1) (String.length contents - nl2 - 1)
            in
            match String.split_on_char ' ' header with
            | [ digest_hex; len; _cost ] ->
                if
                  int_of_string_opt len = Some (String.length payload)
                  && String.equal digest_hex
                       (Digest.to_hex (Digest.string payload))
                then Some payload
                else None
            | _ -> None))

(* ------------------------------------------------------------------ *)
(* API                                                                 *)
(* ------------------------------------------------------------------ *)

let open_ ~dir =
  mkdir_p dir;
  if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"));
  let t =
    {
      dir;
      mutex = Mutex.create ();
      costs = Hashtbl.create 32;
      hits = 0;
      misses = 0;
      corrupt = 0;
      stored = 0;
      bytes_read = 0;
      bytes_written = 0;
    }
  in
  load_costs t;
  t

let find t fp =
  with_lock t (fun () ->
      let path = entry_path t fp in
      match read_file path with
      | None ->
          t.misses <- t.misses + 1;
          None
      | Some contents -> (
          match decode_entry contents with
          | Some payload ->
              t.hits <- t.hits + 1;
              t.bytes_read <- t.bytes_read + String.length payload;
              Some payload
          | None ->
              (* Truncated or bit-flipped: drop it so the recomputed
                 entry starts from a clean slate, and report a miss. *)
              t.corrupt <- t.corrupt + 1;
              t.misses <- t.misses + 1;
              (try Sys.remove path with Sys_error _ -> ());
              None))

let mem t fp =
  with_lock t (fun () ->
      match read_file (entry_path t fp) with
      | None -> false
      | Some contents -> Option.is_some (decode_entry contents))

let add t fp ?cost_key ~cost payload =
  with_lock t (fun () ->
      write_atomically ~dir:t.dir ~path:(entry_path t fp)
        (encode_entry ~cost payload);
      t.stored <- t.stored + 1;
      t.bytes_written <- t.bytes_written + String.length payload;
      match cost_key with
      | None -> ()
      | Some key ->
          let key = sanitize_key key in
          let n, s =
            Option.value (Hashtbl.find_opt t.costs key) ~default:(0, 0.0)
          in
          Hashtbl.replace t.costs key (n + 1, s +. cost);
          save_costs t)

let estimate t ~cost_key =
  with_lock t (fun () ->
      Hashtbl.find_opt t.costs (sanitize_key cost_key)
      |> Option.map (fun (n, s) -> s /. float_of_int n))

let note_invalid t = with_lock t (fun () -> t.corrupt <- t.corrupt + 1)

let counters t =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        corrupt = t.corrupt;
        stored = t.stored;
        bytes_read = t.bytes_read;
        bytes_written = t.bytes_written;
      })

