(** The persistent, content-addressed result store behind incremental
    sweeps.

    One directory (default [_hcsgc_cache/]) holds one file per
    {!Fingerprint.t}, each a checksummed, versioned envelope around an
    opaque payload (the caller's serialization of [run_metrics]) plus the
    wall-clock cost of computing it.  Robustness rules:

    - {b Atomic writes.}  Entries are written to a temp file in the store
      directory and [Sys.rename]d into place, so readers never observe a
      half-written entry and concurrent writers of the same fingerprint
      (which by construction carry identical payloads) last-write-win
      harmlessly.
    - {b Checksummed reads.}  Every entry embeds an MD5 of its payload and
      the payload length; a truncated, bit-flipped or otherwise malformed
      entry is detected on read, counted under [corrupt], deleted
      best-effort, and reported as a miss — never an error, never a wrong
      result.
    - {b Versioned envelope.}  The on-disk magic includes a format
      version; entries from a future/foreign format read as misses.

    Alongside the entries, [costs.tsv] aggregates observed computation
    durations per caller-chosen {e cost key} — the small per-experiment
    cost model the {!Scheduler} orders submissions with.

    A store handle may be shared across domains: all mutable state and
    file I/O is guarded by one mutex (entry I/O is milliseconds against
    jobs that run for seconds, so the lock is not a bottleneck). *)

type t

val open_ : dir:string -> t
(** Open (creating directories as needed) the store rooted at [dir], and
    load its cost model.  A malformed cost file is ignored (costs are an
    optimisation, not a correctness input).
    @raise Sys_error if the directory cannot be created. *)

val dir : t -> string

val find : t -> Fingerprint.t -> string option
(** Look up a payload.  [None] means absent {e or} corrupt (see above);
    counted under [misses] (and [corrupt] when applicable). *)

val add : t -> Fingerprint.t -> ?cost_key:string -> cost:float -> string -> unit
(** [add t fp ~cost_key ~cost payload] stores [payload] under [fp],
    recording that computing it took [cost] wall-clock seconds, and folds
    [cost] into the cost model under [cost_key] (when given).  Overwrites
    any existing entry (used by [--refresh] and corrupt-entry re-runs). *)

val mem : t -> Fingerprint.t -> bool
(** Existence check that validates the envelope like {!find} but counts
    nothing and reads nothing into the hit/miss statistics. *)

val estimate : t -> cost_key:string -> float option
(** Mean observed cost (seconds) for [cost_key], if any run of that key
    was ever recorded here. *)

val note_invalid : t -> unit
(** Count one caller-detected invalid entry (e.g. the payload passed the
    envelope checksum but failed the caller's decoder).  Callers should
    treat such entries as misses and overwrite them via {!add}. *)

type counters = {
  hits : int;
  misses : int;  (** includes corrupt entries *)
  corrupt : int;  (** envelope-invalid entries + {!note_invalid} calls *)
  stored : int;
  bytes_read : int;  (** payload bytes served from cache *)
  bytes_written : int;  (** payload bytes written to cache *)
}

val counters : t -> counters
(** Snapshot of this handle's activity (rendered by
    [Hcsgc_telemetry.Summary.store_line] so every harness prints it the
    same way). *)

val entry_path : t -> Fingerprint.t -> string
(** Where [fp]'s entry lives (exposed so tests can truncate/corrupt it). *)
