let fifo n = Array.init n (fun i -> i)

let order ~estimate n =
  let est = Array.init n estimate in
  let idx = Array.init n (fun i -> i) in
  let compare_jobs a b =
    match (est.(a), est.(b)) with
    | None, None -> compare a b
    | None, Some _ -> -1 (* unknown cost: run early, learn its cost *)
    | Some _, None -> 1
    | Some ca, Some cb ->
        let c = compare cb ca (* longest first *) in
        if c <> 0 then c else compare a b
  in
  Array.sort compare_jobs idx;
  idx
