(** A fixed-size pool of OCaml 5 [Domain]s executing a queue of thunks.

    The experiment stack uses this to fan independent (configuration, run)
    jobs across cores.  Design points:

    - {b Fixed size.} [create ~jobs] spawns exactly [jobs] worker domains
      when [jobs > 1]; [jobs <= 1] spawns {e no} domains and every thunk
      runs immediately on the submitting domain — the sequential in-process
      path, bit-identical to a plain [List.map].
    - {b Ordered results.} {!map_list} / {!map_array} return results in
      submission order regardless of completion order, so aggregation is
      deterministic under any scheduling.
    - {b Exception transparency.} An exception raised by a thunk is
      captured together with its backtrace and re-raised (with that
      backtrace) from {!await} / {!map_list} on the submitting domain.

    Thunks must not themselves block on promises from the same pool
    (workers do not steal), and anything they share must be domain-safe. *)

type t
(** A pool handle.  Usable from the domain that created it. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] clamped to [1, 16] — the default
    for the CLIs' [--jobs].  The [HCSGC_JOBS] environment variable, when it
    parses as a positive integer, overrides both the count and the clamp
    (the escape hatch for CI runners and >16-core machines); anything else
    in the variable is ignored. *)

val create : jobs:int -> t
(** [create ~jobs] starts [max 1 jobs] workers ([jobs <= 1]: none). *)

val jobs : t -> int
(** Worker count the pool was created with (>= 1). *)

val shutdown : t -> unit
(** Drain outstanding tasks, join all workers.  Idempotent.  Submitting
    to a shut-down pool raises [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and guarantees
    {!shutdown} on exit, including exceptional exit. *)

type 'a promise
(** The eventual result of a submitted thunk. *)

val async : t -> (unit -> 'a) -> 'a promise
(** Submit a thunk.  With [jobs <= 1] the thunk runs right here, right
    now, on the calling domain. *)

val await : 'a promise -> 'a
(** Block until the thunk finished; return its value or re-raise its
    exception with the original backtrace. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list t f xs] = [List.map f xs], fanned across the pool, results
    in submission (list) order.  On a thunk exception, the first failure
    in submission order is re-raised after all tasks settle. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Array analogue of {!map_list}. *)

val fork_join : t -> n:int -> (int -> unit) -> unit
(** [fork_join t ~n f] runs [f 0 .. f (n-1)] and returns when all have
    finished — the scoped parallelism primitive intra-run sharding uses
    (each task owns disjoint shard state; the join is the epoch barrier).
    Task 0 always runs on the calling domain; with [jobs <= 1] every task
    does, in index order.  The mutex-protected submission and join give the
    usual happens-before edges: writes made before the call are visible to
    every task, and every task's writes are visible to the caller after the
    call returns.  If tasks raise, the exception of the lowest-indexed
    failing task is re-raised (with its backtrace) after all tasks settle,
    so failure reporting is deterministic under any interleaving. *)

val map_array_in_order : t -> order:int array -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array_in_order t ~order f xs] is {!map_array}[ t f xs] — same
    results, same positions — but thunks are {e submitted} to the queue in
    the sequence [xs.(order.(0)), xs.(order.(1)), ...].  [order] must be a
    permutation of the indices of [xs] (checked;
    @raise Invalid_argument otherwise).  This is the hook cost-aware
    schedulers use ({!Hcsgc_store.Scheduler}): submission order decides
    which jobs the workers pick up first and hence the sweep's makespan,
    while result order — and therefore every output byte — stays fixed.
    With [jobs <= 1] thunks run at submission, so [order] is then also the
    execution order. *)
