type task = unit -> unit

type t = {
  jobs : int;
  mutex : Mutex.t;
  wake : Condition.t;  (* signalled on push and on close *)
  queue : task Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

(* HCSGC_JOBS overrides the clamp — the escape hatch for CI runners and
   big machines.  Malformed or non-positive values fall back silently so a
   stray environment variable can never break a run. *)
let default_jobs () =
  let fallback () = max 1 (min 16 (Domain.recommended_domain_count ())) in
  match Sys.getenv_opt "HCSGC_JOBS" with
  | None -> fallback ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> fallback ())

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a promise = {
  pm : Mutex.t;
  pc : Condition.t;
  mutable state : 'a state;
}

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.wake t.mutex
  done;
  match Queue.take_opt t.queue with
  | None ->
      (* closed and drained *)
      Mutex.unlock t.mutex
  | Some task ->
      Mutex.unlock t.mutex;
      task ();
      worker_loop t

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      wake = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let settle p state =
  Mutex.lock p.pm;
  p.state <- state;
  Condition.broadcast p.pc;
  Mutex.unlock p.pm

let run_task f p =
  let state =
    try Done (f ()) with e -> Failed (e, Printexc.get_raw_backtrace ())
  in
  settle p state

let async t f =
  let p = { pm = Mutex.create (); pc = Condition.create (); state = Pending } in
  if t.jobs <= 1 then begin
    (* Sequential path: no domains, execute on the submitting domain now. *)
    if t.closed then invalid_arg "Pool.async: pool is shut down";
    run_task f p
  end
  else begin
    Mutex.lock t.mutex;
    if t.closed then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.async: pool is shut down"
    end;
    Queue.push (fun () -> run_task f p) t.queue;
    Condition.signal t.wake;
    Mutex.unlock t.mutex
  end;
  p

let await p =
  Mutex.lock p.pm;
  while (match p.state with Pending -> true | _ -> false) do
    Condition.wait p.pc p.pm
  done;
  let state = p.state in
  Mutex.unlock p.pm;
  match state with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let map_list t f xs =
  (* Submit everything first, then await in submission order: results are
     deterministic no matter how workers interleave. *)
  let promises = List.map (fun x -> async t (fun () -> f x)) xs in
  List.map await promises

let map_array t f xs =
  let promises = Array.map (fun x -> async t (fun () -> f x)) xs in
  Array.map await promises

let map_array_in_order t ~order f xs =
  let n = Array.length xs in
  if Array.length order <> n then
    invalid_arg "Pool.map_array_in_order: order length mismatch";
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then
        invalid_arg "Pool.map_array_in_order: order is not a permutation";
      seen.(i) <- true)
    order;
  (* Submit in the caller's order (this is what a scheduler controls),
     hold each promise at its original index, then await in index order:
     the result array is position-for-position what map_array returns. *)
  let promises = Array.make n None in
  Array.iter (fun i -> promises.(i) <- Some (async t (fun () -> f xs.(i)))) order;
  Array.map (function Some p -> await p | None -> assert false) promises

(* Scoped fork-join for intra-run sharding: the caller keeps task 0 (it
   usually owns non-shareable state such as the submitting domain's
   telemetry), workers take the rest, and everyone joins before return.
   Exceptions re-raise in task-index order, so a multi-task failure is
   reported deterministically no matter which worker lost the race. *)
let fork_join t ~n f =
  if n < 0 then invalid_arg "Pool.fork_join: negative task count";
  if n > 0 then
    if t.jobs <= 1 then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      let promises =
        Array.init (n - 1) (fun i -> async t (fun () -> f (i + 1)))
      in
      let first_exn = ref None in
      (try f 0
       with e -> first_exn := Some (e, Printexc.get_raw_backtrace ()));
      Array.iter
        (fun p ->
          try ignore (await p)
          with e ->
            if !first_exn = None then
              first_exn := Some (e, Printexc.get_raw_backtrace ()))
        promises;
      match !first_exn with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

let shutdown t =
  if not t.closed then begin
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
