(** A serialized sink for progress/log lines from concurrent domains.

    Worker domains reporting through the same [t] never interleave
    mid-line: each {!say} delivers one whole line to the sink under the
    reporter's lock.  Line {e order} across domains still depends on
    scheduling — only atomicity per line is guaranteed. *)

type t

val create : ?emit:(string -> unit) -> unit -> t
(** [create ~emit ()] wraps [emit] (called with one line, no trailing
    newline) in a mutex.  The default sink writes ["line\n"] to stderr in
    a single buffered write and flushes.  [emit] itself runs under the
    reporter's lock, so it need not be domain-safe — but it must not call
    back into the same reporter. *)

val say : t -> string -> unit
(** Deliver one line, atomically with respect to other [say]s on [t]. *)

val sayf : t -> ('a, unit, string, unit) format4 -> 'a
(** [Printf]-style {!say}. *)

val null : unit -> t
(** Drops everything. *)
