type t = { mutex : Mutex.t; emit : string -> unit }

let stderr_emit line =
  (* One buffered write + flush so the line reaches the fd in one piece. *)
  output_string stderr (line ^ "\n");
  flush stderr

let create ?(emit = stderr_emit) () = { mutex = Mutex.create (); emit }

let say t line =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) (fun () -> t.emit line)

let sayf t fmt = Printf.ksprintf (say t) fmt

let null () = { mutex = Mutex.create (); emit = ignore }
