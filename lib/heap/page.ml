module Bitmap = Hcsgc_util.Bitmap

type state = Active | In_ec | Freed

type tier_loc = Dram | Far

type t = {
  id : int;
  cls : Layout.size_class;
  start : int;
  size : int;
  birth_cycle : int;
  mutable top : int;
  mutable state : state;
  objects : (int, Heap_obj.t) Hashtbl.t;
  livemap : Bitmap.t;
  mutable hot_cur : Bitmap.t;
  mutable hot_prev : Bitmap.t;
  mutable live_bytes : int;
  mutable live_objects : int;
  mutable hot_bytes : int;
  mutable prev_hot_bytes : int;
  mutable is_alloc_target : bool;
  mutable tier : tier_loc;
  fwd : Fwd_table.t;
  (* Last-find memo for [find_object_exn]: [memo_obj] is the object last
     found at [memo_off] (-1 = empty).  Invalidated whenever the object
     table changes, so a memo hit is always current; purely an accelerator
     for the barrier hot path — it skips the hash walk, nothing else. *)
  mutable memo_off : int;
  mutable memo_obj : Heap_obj.t;
}

let word_bits layout size = size / layout.Layout.word_bytes

(* Placeholder for an empty [memo_obj]; never returned (guarded by
   [memo_off = -1] and offsets are non-negative). *)
let no_obj : Heap_obj.t =
  {
    Heap_obj.id = -1;
    addr = -1;
    size = 0;
    refs = [||];
    words = 0;
    payload = [||];
    relocations = 0;
    page_id = -1;
  }

let create ~layout ~id ~cls ~start ~size ~birth_cycle =
  let bits = word_bits layout size in
  {
    id;
    cls;
    start;
    size;
    birth_cycle;
    top = 0;
    state = Active;
    objects = Hashtbl.create 64;
    livemap = Bitmap.create bits;
    hot_cur = Bitmap.create bits;
    hot_prev = Bitmap.create bits;
    live_bytes = 0;
    live_objects = 0;
    hot_bytes = 0;
    prev_hot_bytes = 0;
    is_alloc_target = false;
    tier = Dram;
    fwd = Fwd_table.create ();
    memo_off = -1;
    memo_obj = no_obj;
  }

let bump_alloc t bytes =
  if t.top + bytes > t.size then None
  else begin
    let offset = t.top in
    t.top <- t.top + bytes;
    Some offset
  end

(* [bump_alloc] without the option box: -1 means "does not fit".  The
   collector's bump-target path uses this so a steady-state allocation
   touches no host heap. *)
let bump_try t bytes =
  if t.top + bytes > t.size then -1
  else begin
    let offset = t.top in
    t.top <- t.top + bytes;
    offset
  end

let offset_of_addr t addr =
  if addr < t.start || addr >= t.start + t.size then
    invalid_arg "Page.offset_of_addr: address outside page";
  addr - t.start

let contains t addr = addr >= t.start && addr < t.start + t.size

let add_object t obj =
  t.memo_off <- -1;
  obj.Heap_obj.page_id <- t.id;
  Hashtbl.replace t.objects (offset_of_addr t obj.Heap_obj.addr) obj

let remove_object t obj =
  t.memo_off <- -1;
  obj.Heap_obj.page_id <- -1;
  Hashtbl.remove t.objects (offset_of_addr t obj.Heap_obj.addr)

let find_object t ~offset = Hashtbl.find_opt t.objects offset

let find_object_exn t ~offset =
  if offset = t.memo_off then t.memo_obj
  else begin
    let obj = Hashtbl.find t.objects offset in
    t.memo_off <- offset;
    t.memo_obj <- obj;
    obj
  end

let free_bytes t = t.size - t.top

let used_bytes t = t.top

(* Bit index of an object: its word offset within the page. *)
let bit_of t obj = (obj.Heap_obj.addr - t.start) / 8

let reset_mark_state t =
  Bitmap.reset t.livemap;
  t.live_bytes <- 0;
  t.live_objects <- 0;
  t.prev_hot_bytes <- t.hot_bytes;
  t.hot_bytes <- 0;
  let prev = t.hot_prev in
  t.hot_prev <- t.hot_cur;
  Bitmap.reset prev;
  t.hot_cur <- prev

let mark_live t obj =
  let bit = bit_of t obj in
  if Bitmap.get t.livemap bit then false
  else begin
    Bitmap.set t.livemap bit;
    t.live_bytes <- t.live_bytes + obj.Heap_obj.size;
    t.live_objects <- t.live_objects + 1;
    true
  end

let is_marked_live t obj = Bitmap.get t.livemap (bit_of t obj)

let iter_live t f =
  Bitmap.iter_set t.livemap (fun bit ->
      match Hashtbl.find_opt t.objects (bit * 8) with
      | Some obj -> f obj
      | None -> ())

let live_ratio t = float_of_int t.live_bytes /. float_of_int t.size

let flag_hot t obj =
  let already = Bitmap.test_and_set t.hot_cur (bit_of t obj) in
  if not already then t.hot_bytes <- t.hot_bytes + obj.Heap_obj.size;
  not already

let is_hot t obj = Bitmap.get t.hot_cur (bit_of t obj)

let was_hot t obj = Bitmap.get t.hot_prev (bit_of t obj)

let cold_bytes t = t.live_bytes - t.hot_bytes

let weighted_live_bytes t ~cold_confidence =
  let cold = cold_bytes t in
  if t.hot_bytes = 0 then cold
  else
    t.hot_bytes
    + int_of_float (float_of_int cold *. (1.0 -. cold_confidence))

let state_to_string = function
  | Active -> "active"
  | In_ec -> "in-ec"
  | Freed -> "freed"

let tier_to_string = function Dram -> "dram" | Far -> "far"

let pp fmt t =
  Format.fprintf fmt "page#%d[%s,%s,0x%x+%dK,top=%d,live=%d,hot=%d]" t.id
    (Layout.size_class_to_string t.cls)
    (state_to_string t.state) t.start (t.size / 1024) t.top t.live_bytes
    t.hot_bytes
