(** The heap: page allocation and reclamation over a granule-based virtual
    address space, plus object allocation within pages.

    Pages are allocated from per-class free lists (recycled address ranges)
    or by extending the address space.  Reclaiming a page returns its
    granules to the free list immediately — stale pointers into recycled
    ranges are safe because they carry a non-good colour and are resolved
    through the collector's forwarding-table index, exactly as in ZGC's
    multi-mapped heap. *)

type t

val create : ?layout:Layout.t -> max_bytes:int -> unit -> t
(** [create ~max_bytes ()] builds an empty heap capped at [max_bytes] of
    committed page memory.  Default layout is {!Layout.paper}. *)

val layout : t -> Layout.t
val max_bytes : t -> int

val used_bytes : t -> int
(** Committed page bytes (the paper's "heap usage"). *)

val used_ratio : t -> float

val address_space_bytes : t -> int
(** Total virtual address space ever claimed (high-water granule mark).
    Stays bounded when freed ranges are recycled after forwarding-table
    retirement — the property that replaces ZGC's multi-mapping. *)

val alloc_page :
  ?force:bool ->
  t ->
  cls:Layout.size_class ->
  bytes:int ->
  birth_cycle:int ->
  Page.t option
(** Allocate (or recycle) a page; [None] if it would exceed [max_bytes].
    [bytes] is only consulted for [Large].  [force] ignores the cap — used
    for relocation target pages, which ZGC serves from a reserved headroom so
    compaction can always make progress. *)

val free_page : t -> Page.t -> unit
(** Release the page's committed memory ([used_bytes] drops) and unmap its
    address range, but do {e not} recycle the range yet: stale coloured
    pointers into it must keep resolving through the page's forwarding table
    until the next mark phase has remapped them (ZGC gets the same effect
    from heap multi-mapping).  The caller recycles the range later with
    {!recycle_range}.  The page's state becomes [Freed].
    @raise Invalid_argument if the page is already freed. *)

val recycle_range : t -> Page.t -> unit
(** Return a freed page's granules to the allocation free lists.  Call only
    once per page, after its forwarding table has been retired. *)

val alloc_object_in : t -> Page.t -> nrefs:int -> nwords:int -> Heap_obj.t option
(** Bump-allocate an object in the given (small or medium) page; [None] if it
    does not fit. *)

val alloc_large_object : t -> nrefs:int -> nwords:int -> birth_cycle:int -> Heap_obj.t option
(** Allocate a large object on its own page ([None] if out of memory). *)

val page_of_addr : t -> int -> Page.t option
val obj_at : t -> int -> Heap_obj.t option
(** The object whose start address is exactly the given address, on the
    currently mapped page. *)

val iter_pages : t -> (Page.t -> unit) -> unit
(** Iterate all non-freed pages. *)

val page_count : t -> Layout.size_class -> int
(** Number of non-freed pages of a class.  O(1) — maintained as a running
    counter at page allocation/free. *)

(** {2 Hot-byte accounting}

    The heap keeps a running total of [Page.hot_bytes] over non-freed
    pages, so telemetry sampling never folds over the page vector.  For the
    total to stay exact, hot flagging and mark-state resets of heap pages
    must go through these wrappers (the collector's only two call sites
    do); reclamation is accounted inside {!free_page}. *)

val hot_bytes : t -> int
(** Sum of {!Page.hot_bytes} over all non-freed pages, in O(1). *)

val flag_hot : t -> Page.t -> Heap_obj.t -> bool
(** {!Page.flag_hot} plus running-total maintenance. *)

val reset_mark_state : t -> Page.t -> unit
(** {!Page.reset_mark_state} plus running-total maintenance. *)

(** {2 Far-tier accounting}

    Like hot bytes, the heap keeps an O(1) running total of the page bytes
    resident in the far tier.  Tier moves must go through these wrappers;
    {!free_page} resets a freed page to [Dram] and deducts it from the
    total (the collector separately drops its {!Hcsgc_memsim.Tier}
    residency before freeing). *)

val far_bytes : t -> int
(** Sum of {!Page.t.size} over non-freed pages with [tier = Far], O(1). *)

val set_tier_far : t -> Page.t -> unit
(** Move the page to the far tier (no-op if already there).
    @raise Invalid_argument if the page is freed. *)

val set_tier_dram : t -> Page.t -> unit
(** Move the page back to DRAM (no-op if already there). *)

val fresh_obj_id : t -> int
(** Next object identity (also used by the collector when splitting objects
    is simulated — monotone, never reused). *)

val obj_ids_issued : t -> int
(** Number of object identities issued so far — equivalently, the id the
    next {!fresh_obj_id} call will return.  Read-only; lets the verifier
    ({!Hcsgc_verify}) tell objects allocated before a cycle's STW1 (which
    marking must cover) from objects born during the cycle (which it need
    not). *)

val pp_stats : Format.formatter -> t -> unit
