module Vec = Hcsgc_util.Vec

(* Mutable so first-fit splitting can shrink a range in place. *)
type free_range = { mutable granule : int; mutable ngranules : int }

type t = {
  layout : Layout.t;
  page_table : Page_table.t;
  mutable next_granule : int;  (* next never-used granule; granule 0 reserved *)
  free_small : int Vec.t;  (* granule indices of freed small pages *)
  free_medium : int Vec.t;  (* first granule of freed medium pages *)
  (* Freed large ranges, first-fit.  Kept in reverse recycling order
     (push appends; the fit scan walks from the end), which reproduces
     the allocation decisions of the cons-list representation this
     replaces — newest range tried first — without per-recycle list
     surgery. *)
  free_large : free_range Vec.t;
  mutable used : int;
  max_bytes : int;
  pages : Page.t Vec.t;  (* all non-freed pages (compacted lazily) *)
  mutable next_page_id : int;
  mutable next_obj_id : int;
  (* Running totals kept in step with per-page state so the hot paths and
     telemetry sampling never fold over the page vector: [hot_total] is the
     sum of [Page.hot_bytes] over non-freed pages (all hot flagging and
     epoch resets go through {!flag_hot}/{!reset_mark_state} below), and
     [page_counts] counts non-freed pages per size class. *)
  mutable hot_total : int;
  (* Number of [Freed] tombstones currently in [pages]; maintained by
     {!free_page}/{!compact_pages} so the compaction trigger never folds
     over the page vector. *)
  mutable freed_tombstones : int;
  (* Sum of [Page.size] over non-freed pages whose [Page.tier] is [Far];
     maintained by {!set_tier_far}/{!set_tier_dram}/{!free_page} so the
     far-memory footprint is O(1) to sample, like [hot_total]. *)
  mutable far_total : int;
  page_counts : int array;  (* indexed by class_index *)
}

let class_index (cls : Layout.size_class) =
  match cls with Small -> 0 | Medium -> 1 | Large -> 2

let create ?(layout = Layout.paper) ~max_bytes () =
  {
    layout;
    page_table = Page_table.create ~layout;
    next_granule = 1;
    free_small = Vec.create ();
    free_medium = Vec.create ();
    free_large = Vec.create ();
    used = 0;
    max_bytes;
    pages = Vec.create ();
    next_page_id = 0;
    next_obj_id = 0;
    hot_total = 0;
    freed_tombstones = 0;
    far_total = 0;
    page_counts = Array.make 3 0;
  }

let[@inline] layout t = t.layout
let[@inline] max_bytes t = t.max_bytes
let[@inline] used_bytes t = t.used
let[@inline] used_ratio t = float_of_int t.used /. float_of_int t.max_bytes
let[@inline] hot_bytes t = t.hot_total
let[@inline] far_bytes t = t.far_total

let address_space_bytes t = t.next_granule * Layout.granule t.layout

let granule_bytes t = Layout.granule t.layout

let fresh_page_id t =
  let id = t.next_page_id in
  t.next_page_id <- id + 1;
  id

let fresh_obj_id t =
  let id = t.next_obj_id in
  t.next_obj_id <- id + 1;
  id

let obj_ids_issued t = t.next_obj_id

(* Order-preserving removal at index [i] (the survivors shift left). *)
let vec_remove_at vec i =
  for j = i to Vec.length vec - 2 do
    Vec.set vec j (Vec.get vec (j + 1))
  done;
  Vec.truncate vec (Vec.length vec - 1)

(* First-fit over the recycled large ranges, scanning newest-first (from
   the end — see [free_large] above).  A larger range is split in place;
   an exact fit is removed.  Returns the start granule, or -1. *)
let rec fit_large free_large ngranules i =
  if i < 0 then -1
  else begin
    let r = Vec.unsafe_get free_large i in
    if r.ngranules >= ngranules then begin
      let g = r.granule in
      if r.ngranules > ngranules then begin
        r.granule <- g + ngranules;
        r.ngranules <- r.ngranules - ngranules
      end
      else vec_remove_at free_large i;
      g
    end
    else fit_large free_large ngranules (i - 1)
  end

(* Find a start granule for [ngranules] contiguous granules. *)
let take_granules t ~cls ~ngranules =
  match (cls : Layout.size_class) with
  | Small -> (
      match Vec.pop t.free_small with
      | Some g -> g
      | None ->
          let g = t.next_granule in
          t.next_granule <- g + 1;
          g)
  | Medium -> (
      match Vec.pop t.free_medium with
      | Some g -> g
      | None ->
          let g = t.next_granule in
          t.next_granule <- g + ngranules;
          g)
  | Large -> (
      match fit_large t.free_large ngranules (Vec.length t.free_large - 1) with
      | -1 ->
          let g = t.next_granule in
          t.next_granule <- g + ngranules;
          g
      | g -> g)

let alloc_page ?(force = false) t ~cls ~bytes ~birth_cycle =
  let size = Layout.page_bytes_for t.layout cls bytes in
  if (not force) && t.used + size > t.max_bytes then None
  else begin
    let ngranules = size / granule_bytes t in
    let g = take_granules t ~cls ~ngranules in
    let page =
      Page.create ~layout:t.layout ~id:(fresh_page_id t) ~cls
        ~start:(g * granule_bytes t) ~size ~birth_cycle
    in
    Page_table.register t.page_table page;
    Vec.push t.pages page;
    t.used <- t.used + size;
    t.page_counts.(class_index cls) <- t.page_counts.(class_index cls) + 1;
    Some page
  end

let page_live (p : Page.t) = p.Page.state <> Page.Freed

let compact_pages t =
  (* In-place, order-preserving sweep of the tombstones. *)
  Vec.retain page_live t.pages;
  t.freed_tombstones <- 0

let free_page t (page : Page.t) =
  if page.Page.state = Page.Freed then
    invalid_arg "Heap.free_page: page already freed";
  Page_table.unregister t.page_table page;
  page.Page.state <- Page.Freed;
  t.used <- t.used - page.Page.size;
  t.hot_total <- t.hot_total - page.Page.hot_bytes;
  if page.Page.tier = Page.Far then begin
    t.far_total <- t.far_total - page.Page.size;
    page.Page.tier <- Page.Dram
  end;
  t.page_counts.(class_index page.Page.cls) <-
    t.page_counts.(class_index page.Page.cls) - 1;
  (* Keep the page vector from accumulating tombstones: compact once more
     than half of a reasonably large vector is freed pages. *)
  t.freed_tombstones <- t.freed_tombstones + 1;
  if
    Vec.length t.pages > 256
    && 2 * t.freed_tombstones > Vec.length t.pages
  then compact_pages t

let recycle_range t (page : Page.t) =
  if page.Page.state <> Page.Freed then
    invalid_arg "Heap.recycle_range: page is not freed";
  let g = page.Page.start / granule_bytes t in
  let ngranules = page.Page.size / granule_bytes t in
  match page.Page.cls with
  | Layout.Small -> Vec.push t.free_small g
  | Layout.Medium -> Vec.push t.free_medium g
  | Layout.Large -> Vec.push t.free_large { granule = g; ngranules }

let alloc_object_in t (page : Page.t) ~nrefs ~nwords =
  let size = Layout.object_bytes t.layout ~nrefs ~nwords in
  match Page.bump_alloc page size with
  | None -> None
  | Some offset ->
      let obj =
        Heap_obj.create ~layout:t.layout ~id:(fresh_obj_id t)
          ~addr:(page.Page.start + offset) ~nrefs ~nwords
      in
      Page.add_object page obj;
      Some obj

let alloc_large_object t ~nrefs ~nwords ~birth_cycle =
  let size = Layout.object_bytes t.layout ~nrefs ~nwords in
  match alloc_page t ~cls:Layout.Large ~bytes:size ~birth_cycle with
  | None -> None
  | Some page -> (
      match alloc_object_in t page ~nrefs ~nwords with
      | Some obj -> Some obj
      | None -> assert false (* a large page always fits its single object *))

let page_of_addr t addr = Page_table.page_of_addr t.page_table addr

let obj_at t addr =
  match page_of_addr t addr with
  | None -> None
  | Some page -> Page.find_object page ~offset:(Page.offset_of_addr page addr)

let iter_pages t f =
  (* Index loop rather than [Vec.iter] with a wrapper closure: called
     once per page-filtering pass of every GC cycle, and the wrapper
     would allocate per call. *)
  for i = 0 to Vec.length t.pages - 1 do
    let p = Vec.unsafe_get t.pages i in
    if p.Page.state <> Page.Freed then f p
  done

let page_count t cls = t.page_counts.(class_index cls)

let flag_hot t (page : Page.t) obj =
  let newly = Page.flag_hot page obj in
  if newly then t.hot_total <- t.hot_total + obj.Heap_obj.size;
  newly

let reset_mark_state t (page : Page.t) =
  t.hot_total <- t.hot_total - page.Page.hot_bytes;
  Page.reset_mark_state page

let set_tier_far t (page : Page.t) =
  if page.Page.state = Page.Freed then
    invalid_arg "Heap.set_tier_far: page is freed";
  if page.Page.tier <> Page.Far then begin
    page.Page.tier <- Page.Far;
    t.far_total <- t.far_total + page.Page.size
  end

let set_tier_dram t (page : Page.t) =
  if page.Page.tier <> Page.Dram then begin
    page.Page.tier <- Page.Dram;
    t.far_total <- t.far_total - page.Page.size
  end

let pp_stats fmt t =
  Format.fprintf fmt "heap{used=%dK/%dK pages:s=%d,m=%d,l=%d}" (t.used / 1024)
    (t.max_bytes / 1024)
    (page_count t Layout.Small)
    (page_count t Layout.Medium)
    (page_count t Layout.Large)
