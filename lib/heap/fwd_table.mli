(** Per-page forwarding tables (§2.2 "RE").

    While a page is being evacuated, the first thread (mutator or GC) to
    reach a live object copies it and publishes old-offset → new-address
    here.  In ZGC the insertion is a CAS and is the linearisation point of
    the relocation race; in the deterministic simulator [claim] plays that
    role — the first claimant wins, later claimants are told the existing
    address and must discard their copy.

    Backed by a flat open-addressed {!Hcsgc_util.Int_tbl} (offsets and
    addresses are non-negative ints), so claims and lookups on the GC
    phase paths allocate nothing. *)

type t

type claim_result =
  | Claimed  (** the caller won the race and must perform the copy *)
  | Already of int  (** someone already relocated it; here is the new address *)

val create : unit -> t

val claim : t -> offset:int -> new_addr:int -> claim_result
(** [claim t ~offset ~new_addr] attempts to install a forwarding for the
    object at [offset]. *)

val find : t -> offset:int -> int option
(** The forwarded address of the object at [offset], if relocated. *)

val get : t -> offset:int -> int
(** {!find} without the option box: the forwarded address, or -1 if the
    object has not been relocated.  The barrier/GC resolution paths use
    this form so a forwarding lookup allocates nothing. *)

val entries : t -> int
(** Number of forwardings installed. *)

val clear : t -> unit
(** Drop every forwarding, keeping the backing store — table reuse
    across cycles allocates nothing once at high-water capacity. *)

val iter : t -> (offset:int -> new_addr:int -> unit) -> unit
(** Iterate the installed forwardings (slot order — deterministic for a
    given insertion history, not sorted). *)
