type t = {
  id : int;
  mutable addr : int;
  size : int;
  refs : int array;
  words : int;
  mutable payload : int array;
  mutable relocations : int;
  mutable page_id : int;
}

let no_payload : int array = [||]

let create ~layout ~id ~addr ~nrefs ~nwords =
  {
    id;
    addr;
    size = Layout.object_bytes layout ~nrefs ~nwords;
    refs = Array.make nrefs Addr.null;
    words = nwords;
    payload = no_payload;
    relocations = 0;
    page_id = -1;
  }

let nrefs t = Array.length t.refs
let nwords t = t.words

let ref_slot_addr ~layout t i =
  if i < 0 || i >= Array.length t.refs then
    invalid_arg "Heap_obj.ref_slot_addr: slot out of range";
  t.addr + layout.Layout.header_bytes + (i * layout.Layout.word_bytes)

let payload_addr ~layout t i =
  if i < 0 || i >= t.words then
    invalid_arg "Heap_obj.payload_addr: word out of range";
  t.addr
  + layout.Layout.header_bytes
  + ((Array.length t.refs + i) * layout.Layout.word_bytes)

let get_ref t i = t.refs.(i)
let set_ref t i p = t.refs.(i) <- p

let check_word t i =
  if i < 0 || i >= t.words then invalid_arg "Heap_obj: word out of range"

let get_word t i =
  check_word t i;
  if t.payload == no_payload then 0 else t.payload.(i)

let set_word t i v =
  check_word t i;
  if t.payload == no_payload then t.payload <- Array.make t.words 0;
  t.payload.(i) <- v

let pp fmt t =
  Format.fprintf fmt "obj#%d@0x%x{%dB,%dr,%dw}" t.id t.addr t.size
    (Array.length t.refs) t.words
