(** Heap geometry: page size classes (Table 1 of the paper) and object
    alignment.

    ZGC's sizes are fixed — small pages 2 MB (objects ≤ 256 KB), medium pages
    32 MB (objects ≤ 4 MB), large pages 2 MB-aligned single-object pages.  The
    simulator keeps the same *ratios* but lets the small-page size scale down
    so that scaled-down benchmark heaps still span enough pages for evacuation
    selection to be meaningful. *)

type t = private {
  small_page : int;  (** small page size in bytes; the address granule *)
  medium_page : int;  (** 16 × small (32 MB at paper scale) *)
  small_obj_max : int;  (** small_page / 8 (256 KB at paper scale) *)
  medium_obj_max : int;  (** medium_page / 8 (4 MB at paper scale) *)
  header_bytes : int;  (** per-object VM metadata (16, like HotSpot) *)
  word_bytes : int;  (** 8 *)
}

val paper : t
(** Table 1 exactly: 2 MB small pages. *)

val scaled : small_page:int -> t
(** Same ratios with a smaller granule (must be a power of two ≥ 4 KB).
    @raise Invalid_argument otherwise. *)

type size_class = Small | Medium | Large

val class_of_object_size : t -> int -> size_class
(** Which page class serves an object of the given byte size (Table 1's
    "Object Size" column). *)

val page_bytes_for : t -> size_class -> int -> int
(** [page_bytes_for t cls obj_size] is the byte size of a page of class [cls];
    for [Large] this is [obj_size] rounded up to the granule. *)

val granule : t -> int
(** The virtual-address granule (= small page size); all pages are
    granule-aligned and granule-sized multiples. *)

val object_bytes : t -> nrefs:int -> nwords:int -> int
(** Total aligned byte size of an object with [nrefs] reference slots and
    [nwords] scalar payload words, header included. *)

val size_class_to_string : size_class -> string

val pp : Format.formatter -> t -> unit
