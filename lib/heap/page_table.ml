module Vec = Hcsgc_util.Vec

type t = {
  granule_bytes : int;
  slots : Page.t option Vec.t;
  (* Last-lookup memo: the result of [page_of_addr] for granule [last_g]
     ([min_int] = empty).  Invalidated by [register]/[unregister], so a hit
     is always the same stored option the slot lookup would return — this
     only skips the bounds-checked vector read on the barrier hot path. *)
  mutable last_g : int;
  mutable last_p : Page.t option;
}

let create ~layout =
  {
    granule_bytes = Layout.granule layout;
    slots = Vec.create ();
    last_g = min_int;
    last_p = None;
  }

let[@inline] granule_of_addr t addr = addr / t.granule_bytes

let ensure t n =
  while Vec.length t.slots <= n do
    Vec.push t.slots None
  done

(* First/last granule of a page's range, as two functions rather than one
   returning a pair: [unregister] runs on the GC sweep path, where a boxed
   pair per freed page was the last host allocation of a steady-state
   cycle. *)
let[@inline] first_granule t (page : Page.t) = granule_of_addr t page.Page.start

let[@inline] last_granule t (page : Page.t) =
  granule_of_addr t (page.Page.start + page.Page.size - 1)

let register t page =
  t.last_g <- min_int;
  let first = first_granule t page
  and last = last_granule t page in
  ensure t last;
  for g = first to last do
    Vec.set t.slots g (Some page)
  done

let unregister t page =
  t.last_g <- min_int;
  let first = first_granule t page
  and last = last_granule t page in
  ensure t last;
  for g = first to last do
    (* Only clear entries that still point at this page; the range may have
       been re-registered already. *)
    match Vec.get t.slots g with
    | Some p when p == page -> Vec.set t.slots g None
    | _ -> ()
  done

let page_of_addr t addr =
  let g = granule_of_addr t addr in
  if g = t.last_g then t.last_p
  else begin
    let p = if g < 0 || g >= Vec.length t.slots then None else Vec.get t.slots g in
    t.last_g <- g;
    t.last_p <- p;
    p
  end
