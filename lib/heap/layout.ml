type t = {
  small_page : int;
  medium_page : int;
  small_obj_max : int;
  medium_obj_max : int;
  header_bytes : int;
  word_bytes : int;
}

type size_class = Small | Medium | Large

let is_pow2 n = n > 0 && n land (n - 1) = 0

let of_small_page small_page =
  {
    small_page;
    medium_page = 16 * small_page;
    small_obj_max = small_page / 8;
    medium_obj_max = 2 * small_page;
    header_bytes = 16;
    word_bytes = 8;
  }

let paper = of_small_page (2 * 1024 * 1024)

let scaled ~small_page =
  if small_page < 4096 || not (is_pow2 small_page) then
    invalid_arg "Layout.scaled: small page must be a power of two >= 4096";
  of_small_page small_page

let class_of_object_size t size =
  if size <= 0 then invalid_arg "Layout.class_of_object_size: non-positive size"
  else if size <= t.small_obj_max then Small
  else if size <= t.medium_obj_max then Medium
  else Large

let granule t = t.small_page

let round_up n align = (n + align - 1) / align * align

let page_bytes_for t cls obj_size =
  match cls with
  | Small -> t.small_page
  | Medium -> t.medium_page
  | Large -> round_up obj_size (granule t)

let object_bytes t ~nrefs ~nwords =
  if nrefs < 0 || nwords < 0 then invalid_arg "Layout.object_bytes: negative";
  let raw = t.header_bytes + (t.word_bytes * (nrefs + nwords)) in
  round_up raw t.word_bytes

let size_class_to_string = function
  | Small -> "small"
  | Medium -> "medium"
  | Large -> "large"

let pp fmt t =
  Format.fprintf fmt
    "layout{small=%dK medium=%dK small_obj_max=%dK medium_obj_max=%dK}"
    (t.small_page / 1024) (t.medium_page / 1024) (t.small_obj_max / 1024)
    (t.medium_obj_max / 1024)
