(** Heap pages: the unit of allocation, liveness accounting, evacuation
    selection and reclamation (§2.1).

    A page serves bump-pointer allocation until it cannot satisfy a request
    (it is then {e retired} but stays [Active]).  During marking, per-page
    liveness (live bytes / live objects) and — with HOTNESS on — hot bytes
    are accumulated.  Pages selected for evacuation move to [In_ec]; once
    every live object has been copied out the page is [Freed] and its address
    range recycled, while its forwarding table stays reachable until the next
    mark phase has remapped all stale pointers. *)

type state =
  | Active  (** holds objects; may be selected for evacuation *)
  | In_ec  (** selected for evacuation; objects being copied out *)
  | Freed  (** address range recycled; only the forwarding table matters *)

(** Which memory level the page's address range currently lives in.  Pages
    are born [Dram]; the collector may demote a cold page to [Far] at sweep
    and promotes it back on access.  Mutate only through [Heap.set_tier_far]
    / [Heap.set_tier_dram] so the heap's O(1) per-tier byte totals stay in
    sync. *)
type tier_loc = Dram | Far

type t = {
  id : int;
  cls : Layout.size_class;
  start : int;  (** first byte address (granule-aligned) *)
  size : int;  (** page size in bytes *)
  birth_cycle : int;  (** GC cycle sequence number at allocation *)
  mutable top : int;  (** bump offset; next free byte within the page *)
  mutable state : state;
  objects : (int, Heap_obj.t) Hashtbl.t;  (** byte offset → object *)
  livemap : Hcsgc_util.Bitmap.t;  (** bit per word-offset of object starts *)
  mutable hot_cur : Hcsgc_util.Bitmap.t;  (** hotness, current epoch *)
  mutable hot_prev : Hcsgc_util.Bitmap.t;  (** snapshot for lazy relocation *)
  mutable live_bytes : int;
  mutable live_objects : int;
  mutable hot_bytes : int;
  mutable prev_hot_bytes : int;
      (** [hot_bytes] of the previous mark epoch, snapshotted by
          {!reset_mark_state} — the demotion policy's "was the page cold
          last cycle too?" signal when [cold_confidence < 1]. *)
  mutable is_alloc_target : bool;
      (** currently a bump-allocation / relocation target; excluded from EC *)
  mutable tier : tier_loc;  (** memory level of the page's address range *)
  fwd : Fwd_table.t;
  mutable memo_off : int;
      (** last-find memo offset for {!find_object_exn}; -1 = empty.
          Invalidated by {!add_object}/{!remove_object}. *)
  mutable memo_obj : Heap_obj.t;  (** object last found at [memo_off] *)
}

val create :
  layout:Layout.t ->
  id:int ->
  cls:Layout.size_class ->
  start:int ->
  size:int ->
  birth_cycle:int ->
  t

val bump_alloc : t -> int -> int option
(** [bump_alloc t bytes] reserves [bytes] (already aligned) and returns the
    byte offset, or [None] if the page is full. *)

val bump_try : t -> int -> int
(** {!bump_alloc} without the option box: the byte offset, or -1 if the
    page is full.  The collector's bump-target path uses this so a
    steady-state allocation touches no host heap. *)

val add_object : t -> Heap_obj.t -> unit
(** Register an object whose [addr] lies within this page. *)

val remove_object : t -> Heap_obj.t -> unit

val find_object : t -> offset:int -> Heap_obj.t option

val find_object_exn : t -> offset:int -> Heap_obj.t
(** Allocation-free {!find_object} for the barrier hot path: no option
    wrapping, and repeated lookups of the same offset hit a last-find memo
    instead of the hash table.
    @raise Not_found if no object starts at [offset]. *)

val offset_of_addr : t -> int -> int
(** Byte offset of an address within the page.
    @raise Invalid_argument if the address is outside the page. *)

val contains : t -> int -> bool

val free_bytes : t -> int

val used_bytes : t -> int
(** Bytes consumed by the bump pointer (live + garbage). *)

(** {2 Liveness (filled during M/R)} *)

val reset_mark_state : t -> unit
(** Clear livemap, zero live counters, swap the hotness epoch: [hot_cur]
    becomes [hot_prev] (kept for COLDPAGE decisions under LAZYRELOCATE) and a
    cleared map becomes current; [hot_bytes] is snapshotted into
    [prev_hot_bytes] before zeroing.  Called at STW1 for every page. *)

val mark_live : t -> Heap_obj.t -> bool
(** Set the livemap bit for the object; accumulate live bytes/objects on
    first marking.  Returns [true] if this call marked it (it was unmarked). *)

val is_marked_live : t -> Heap_obj.t -> bool

val iter_live : t -> (Heap_obj.t -> unit) -> unit
(** Iterate objects marked live, in ascending address order (the order GC
    threads evacuate a page). *)

val live_ratio : t -> float
(** live bytes / page size. *)

(** {2 Hotness (§3.1.2)} *)

val flag_hot : t -> Heap_obj.t -> bool
(** Set the hotmap bit (current epoch); accumulate hot bytes on first
    flagging.  Returns [true] if the object was {e newly} flagged — the
    caller uses this to charge the CAS cost once, as in the paper. *)

val is_hot : t -> Heap_obj.t -> bool
(** Current-epoch hotness. *)

val was_hot : t -> Heap_obj.t -> bool
(** Previous-epoch hotness (used by relocation under LAZYRELOCATE, where the
    copy happens after the epoch flip). *)

val cold_bytes : t -> int
(** live bytes − hot bytes. *)

val weighted_live_bytes : t -> cold_confidence:float -> int
(** The paper's WLB (§3.1.3): [cold] if there are no hot bytes, otherwise
    [hot + cold × (1 − cold_confidence)]. *)

val tier_to_string : tier_loc -> string

val pp : Format.formatter -> t -> unit
