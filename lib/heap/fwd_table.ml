type t = (int, int) Hashtbl.t

type claim_result = Claimed | Already of int

let create () = Hashtbl.create 64

let claim t ~offset ~new_addr =
  match Hashtbl.find_opt t offset with
  | Some existing -> Already existing
  | None ->
      Hashtbl.add t offset new_addr;
      Claimed

let find t ~offset = Hashtbl.find_opt t offset

let entries t = Hashtbl.length t

let iter t f = Hashtbl.iter (fun offset new_addr -> f ~offset ~new_addr) t
