module Int_tbl = Hcsgc_util.Int_tbl

type t = Int_tbl.t

type claim_result = Claimed | Already of int

(* Offsets and addresses are both non-negative, so Int_tbl's -1
   sentinel is unambiguous on both sides of the binding. *)
let create () = Int_tbl.create ~capacity:16 ()

let claim t ~offset ~new_addr =
  match Int_tbl.add_if_absent t ~key:offset ~value:new_addr with
  | -1 -> Claimed
  | existing -> Already existing

let get t ~offset = Int_tbl.get t ~key:offset ~default:(-1)

let find t ~offset =
  match Int_tbl.get t ~key:offset ~default:(-1) with
  | -1 -> None
  | new_addr -> Some new_addr

let entries t = Int_tbl.length t

let clear t = Int_tbl.clear t

let iter t f = Int_tbl.iter t (fun offset new_addr -> f ~offset ~new_addr)
