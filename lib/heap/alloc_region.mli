(** Per-core bump-target cursors: which page each mutator core is currently
    allocating (or relocating) into.

    A plain array indexed by core id, replacing the hashtable the collector
    used to key bump targets by core.  The representation matters for the
    sharded execution mode: each shard core owns exactly one slot, distinct
    cores touch distinct slots, and reading a slot allocates nothing — so
    allocation-target state is trivially shard-private.  (The logical heap
    mutation itself still happens on the merging domain; the array is about
    making per-core state explicit and cheap, not about locking.)

    Empty slots are [None]; the table grows on demand, so any non-negative
    core id is valid, as with the hashtable it replaces. *)

type t

val create : ?cores:int -> unit -> t
(** [create ~cores ()] presizes for [cores] slots (default 1). *)

val get : t -> core:int -> Page.t option
(** The core's current target page, if any.
    @raise Invalid_argument on a negative core. *)

val set : t -> core:int -> Page.t option -> unit
(** Install ([Some]) or retire ([None]) the core's target page. *)
