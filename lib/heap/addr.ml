type t = int

type color = M0 | M1 | R

let addr_bits = 48
let addr_mask = (1 lsl addr_bits) - 1
let m0_bit = 1 lsl addr_bits
let m1_bit = 1 lsl (addr_bits + 1)
let r_bit = 1 lsl (addr_bits + 2)
let color_mask = m0_bit lor m1_bit lor r_bit

let null = 0

let is_null p = p = 0

let bit_of = function M0 -> m0_bit | M1 -> m1_bit | R -> r_bit

let make c addr =
  if addr <= 0 || addr > addr_mask then
    invalid_arg "Addr.make: address out of range";
  addr lor bit_of c

let addr p = p land addr_mask

let color p =
  match p land color_mask with
  | b when b = m0_bit -> M0
  | b when b = m1_bit -> M1
  | b when b = r_bit -> R
  | _ -> invalid_arg "Addr.color: null or malformed pointer"

let has_color c p = (not (is_null p)) && p land bit_of c <> 0

let retint c p = addr p lor bit_of c

let next_mark_color = function
  | M0 -> M1
  | M1 -> M0
  | R -> invalid_arg "Addr.next_mark_color: R is not a mark colour"

let color_to_string = function M0 -> "M0" | M1 -> "M1" | R -> "R"

let pp fmt p =
  if is_null p then Format.pp_print_string fmt "null"
  else Format.fprintf fmt "%s:0x%x" (color_to_string (color p)) (addr p)
