(** Coloured pointers (§2 of the paper).

    ZGC stores metadata in the high bits of 64-bit pointers.  We simulate a
    pointer as an OCaml [int]: the low 48 bits are the virtual byte address
    and three metadata bits encode the colour — M0 and M1 (the alternating
    mark colours) and R (remapped).  A well-formed non-null pointer has
    exactly one colour bit set.  At any instant all threads agree on the
    {e good colour}; loading a pointer whose colour is not good traps into
    the load barrier's slow path. *)

type t = int
(** A coloured pointer value, as stored in heap slots. *)

type color = M0 | M1 | R

val null : t
(** The null pointer (no address, no colour). *)

val is_null : t -> bool

val make : color -> int -> t
(** [make c addr] builds a pointer to byte address [addr] tinted [c].
    @raise Invalid_argument if [addr] is out of the 48-bit range or 0. *)

val addr : t -> int
(** The virtual byte address, colour stripped. *)

val color : t -> color
(** The colour of a non-null pointer.
    @raise Invalid_argument on null or a malformed colour. *)

val has_color : color -> t -> bool
(** [has_color c p] — true iff [p]'s colour bit for [c] is set.  False for
    null. *)

val retint : color -> t -> t
(** [retint c p] is [p] with its colour replaced by [c] (address preserved). *)

val next_mark_color : color -> color
(** M0 ↦ M1 ↦ M0 (the alternation of Fig. 2).  [R] is not a mark colour.
    @raise Invalid_argument on [R]. *)

val color_to_string : color -> string

val pp : Format.formatter -> t -> unit
