(** The page table: virtual address → page.

    The address space is divided into granules (= small-page size); every
    page spans one or more whole granules.  Lookup is an array index, which
    is what keeps the simulated load barrier cheap. *)

type t

val create : layout:Layout.t -> t

val register : t -> Page.t -> unit
(** Map every granule covered by the page to it. *)

val unregister : t -> Page.t -> unit
(** Clear the granule entries (at page free, before the range is recycled). *)

val page_of_addr : t -> int -> Page.t option
(** The page currently mapped at the given byte address. *)

val granule_of_addr : t -> int -> int
(** Granule index of a byte address. *)
