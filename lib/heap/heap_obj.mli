(** The simulated object model.

    An object is a fixed-shape cell: a VM header, [nrefs] reference slots
    (each holding a coloured pointer, see {!Addr}) followed by [nwords]
    scalar payload words.  The OCaml record is the object's {e stable
    identity}: relocation updates [addr] in place, so OCaml-side handles
    survive moves exactly like registers fixed up by ZGC's stop-the-world
    root processing. *)

type t = {
  id : int;  (** allocation-order identity, never reused *)
  mutable addr : int;  (** current virtual byte address (uncoloured) *)
  size : int;  (** total aligned size in bytes, header included *)
  refs : int array;  (** coloured pointer slots *)
  words : int;  (** scalar payload word count *)
  mutable payload : int array;
      (** payload storage, materialised on first write (objects that are
          never read or written — e.g. pure garbage — cost no OCaml array);
          use {!get_word}/{!set_word} *)
  mutable relocations : int;  (** times this object has been moved *)
  mutable page_id : int;
      (** id of the page whose object table currently registers this object,
          -1 when unregistered — maintained by {!Page.add_object} /
          {!Page.remove_object}.  Because an object's table key is always
          derived from its current [addr], [page_id = page.id] is equivalent
          to "the table lookup at this object's offset returns it", which is
          what makes the barrier's handle-validity check O(1). *)
}

val create : layout:Layout.t -> id:int -> addr:int -> nrefs:int -> nwords:int -> t
(** A fresh object with null refs and zero payload. *)

val nrefs : t -> int
val nwords : t -> int

val ref_slot_addr : layout:Layout.t -> t -> int -> int
(** Byte address of reference slot [i] (for the cache simulator).
    @raise Invalid_argument if out of range. *)

val payload_addr : layout:Layout.t -> t -> int -> int
(** Byte address of payload word [i].
    @raise Invalid_argument if out of range. *)

val get_ref : t -> int -> Addr.t
val set_ref : t -> int -> Addr.t -> unit
val get_word : t -> int -> int
val set_word : t -> int -> int -> unit

val pp : Format.formatter -> t -> unit
