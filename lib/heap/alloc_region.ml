type t = { mutable slots : Page.t option array }

let create ?(cores = 1) () = { slots = Array.make (max 1 cores) None }

let ensure t core =
  let n = Array.length t.slots in
  if core >= n then begin
    let bigger = Array.make (max (core + 1) (2 * n)) None in
    Array.blit t.slots 0 bigger 0 n;
    t.slots <- bigger
  end

let get t ~core =
  if core < 0 then invalid_arg "Alloc_region.get: negative core";
  if core >= Array.length t.slots then None else t.slots.(core)

let set t ~core page =
  if core < 0 then invalid_arg "Alloc_region.set: negative core";
  ensure t core;
  t.slots.(core) <- page
