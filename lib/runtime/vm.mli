(** The user-facing managed runtime: allocation, barriered field access,
    roots, and the cooperative mutator/GC schedule.

    {2 Execution-time model}

    Every mutator operation is charged simulated cycles (base cost + cache
    latencies + any barrier slow-path work, including relocation copying the
    mutator performs).  GC-thread work accumulates separately; it runs "for
    free" on a spare core, unless the VM is created [~saturated:true], which
    models the paper's single-core experiment (Fig. 6) where GC work competes
    with the mutator for CPU and is added to wall time.  Stop-the-world
    pauses always hit wall time.

    {2 Rooting discipline}

    Objects are reached through OCaml-side handles ({!Hcsgc_heap.Heap_obj.t});
    handles survive relocation.  Any object the workload holds across an
    allocation must be reachable from a registered root (or a pushed local),
    otherwise the collector may reclaim it and later use raises
    {!Hcsgc_core.Collector.Invalid_handle}.  Objects are also kept alive by
    being stored to or loaded from during a cycle. *)

module Heap_obj = Hcsgc_heap.Heap_obj
module Collector = Hcsgc_core.Collector

type t

val create :
  ?layout:Hcsgc_heap.Layout.t ->
  ?machine_config:Hcsgc_memsim.Hierarchy.config ->
  ?saturated:bool ->
  ?gc_share:float ->
  ?trigger:float ->
  ?autotune:bool ->
  ?gc_log:bool ->
  ?mutators:int ->
  ?shard_domains:int ->
  ?verify:bool ->
  config:Hcsgc_core.Config.t ->
  max_heap:int ->
  unit ->
  t
(** [create ~config ~max_heap ()] builds a VM with a [max_heap]-byte heap.
    [machine_config] overrides the cache geometry (default: the paper's
    client machine; benches use a proportionally scaled-down hierarchy to
    match their scaled-down working sets).
    [saturated] (default false) pins mutator and GC to one core.  [gc_share]
    (default 1.0) is GC-thread cycles available per mutator cycle.
    [trigger] (default 0.25) is the fraction of the heap that must be
    allocated since the last cycle start before a new GC cycle begins
    (allocation-budget pacing, the deterministic stand-in for ZGC's
    allocation-rate heuristics).
    [autotune] (default false) enables the §4.8 feedback loop: the mutator's
    L1 miss rate is sampled once per GC cycle and COLDCONFIDENCE retuned by
    {!Hcsgc_core.Autotuner} — requires a HOTNESS-enabled config.
    [gc_log] (default false) records structured GC events
    ({!Hcsgc_core.Gc_log}), retrievable via {!gc_log}.
    [mutators] (default 1) is the number of logical mutator threads, each
    with its own core (private L1/L2, own relocation/allocation target
    pages, own clock); the workload interleaves them cooperatively by
    passing [~m] to the mutator operations.  Wall time follows the slowest
    mutator.  Incompatible with [saturated].
    [shard_domains] (default 0) selects the execution model for the memory
    hierarchy simulation.  [0] is the classic inline interleave.  [n >= 1]
    is {e epoch-sharded} execution: each mutator core's cache traffic is
    deferred into a per-shard log and simulated at epoch barriers — replay
    of private L1/L2/TLB/prefetcher state fans out over up to [n] worker
    domains, then each shard's LLC-bound traffic merges into the shared
    LLC sequentially in mutator-id order.  Results are byte-identical for
    every [n >= 1]; only wall-clock time varies with [n].  Note the two
    execution models legitimately differ (deferral changes when latency
    reaches the GC pacing credit), which is why [0] remains the default
    and sharded runs are content-addressed under a distinct key.
    Incompatible with [saturated].
    [verify] installs the {!Hcsgc_verify.Invariants} heap sanitizer (with
    the mark-sweep oracle) for the whole run; when omitted it defaults to
    the [HCSGC_VERIFY] environment variable ([1]/[true]/[yes]), the hook CI
    uses to rerun everything verified.  Verification is read-only: a
    verified run's results and traces are byte-identical to an unverified
    one; corruption raises {!Hcsgc_verify.Invariants.Violation} at the
    next GC phase edge. *)

(** {2 Mutator operations} *)

val alloc : ?m:int -> t -> nrefs:int -> nwords:int -> Heap_obj.t
(** Allocate a managed object.  May run GC (this is the safepoint where
    cycles start).  [m] selects the mutator thread (default 0).
    @raise Collector.Out_of_memory if the heap is exhausted even after a
    forced collection. *)

val load_ref : ?m:int -> t -> Heap_obj.t -> int -> Heap_obj.t option
(** Barriered reference-slot load. *)

val store_ref : ?m:int -> t -> Heap_obj.t -> int -> Heap_obj.t option -> unit

val load_word : ?m:int -> t -> Heap_obj.t -> int -> int
(** Payload word load (touches memory through the cache simulator). *)

val store_word : ?m:int -> t -> Heap_obj.t -> int -> int -> unit

val touch : ?m:int -> t -> Heap_obj.t -> unit
(** Access an object without reading a specific field (header touch). *)

val work : ?m:int -> t -> int -> unit
(** Charge [n] cycles of pure compute (no memory traffic). *)

val safepoint : t -> unit
(** Explicit safepoint: give the collector a chance to start/advance. *)

(** {2 Telemetry}

    The {!Hcsgc_telemetry} integration: an optional recorder of spans and
    counter samples on the simulated clock.  Recording is pure
    observation — it charges no simulated cycles and touches no simulated
    caches, so an instrumented run's clocks, GC schedule and statistics
    are identical to an uninstrumented one. *)

val enable_telemetry :
  ?sample_interval:int -> t -> Hcsgc_telemetry.Recorder.t
(** Attach a telemetry recorder (idempotent — returns the existing one on
    a second call).  GC events are translated onto the recorder's GC
    track through the same {!Hcsgc_core.Gc_log.sink} the event log uses;
    machine counters are sampled every [sample_interval] wall cycles
    (default 50000) plus once at every GC cycle boundary, so per-cycle
    deltas are exact. *)

val telemetry : t -> Hcsgc_telemetry.Recorder.t option

val enable_verification : ?oracle:bool -> t -> unit
(** Attach the heap sanitizer after creation (the [--verify] flag's entry
    point): {!Hcsgc_verify.Invariants.install} on this VM's collector.
    [oracle] (default [true]) also runs the differential mark-sweep
    reachability oracle at every Mark End. *)

val span_begin : ?m:int -> t -> string -> unit
(** Open a workload span on mutator [m]'s track (e.g. a benchmark phase).
    No-op without telemetry. *)

val span_end : ?m:int -> t -> unit

val with_span : ?m:int -> t -> string -> (unit -> 'a) -> 'a
(** Run the callback inside a span (closed on exceptions too). *)

(** {2 Roots} *)

val add_root : t -> Heap_obj.t -> unit
val remove_root : t -> Heap_obj.t -> unit

val with_local : t -> Heap_obj.t -> (unit -> 'a) -> 'a
(** Keep a handle rooted for the dynamic extent of the callback. *)

val push_local : t -> Heap_obj.t -> unit
val local_frame : t -> (unit -> 'a) -> 'a
(** Run the callback; locals pushed inside are dropped afterwards. *)

(** {2 Measurement} *)

val wall_cycles : t -> int
(** The run's simulated execution time. *)

val mutator_cycles : t -> int
(** The slowest mutator thread's clock (equals the only mutator's clock in
    the single-threaded case). *)

val mutator_count : t -> int

val shard_domains : t -> int
(** The [shard_domains] the VM was created with (0 = inline execution). *)

val mutator_clock : t -> m:int -> int
(** A specific mutator thread's simulated cycles. *)

val gc_cycles : t -> int
val stw_cycles : t -> int
val ops : t -> int

val counters : t -> Hcsgc_memsim.Hierarchy.counters
(** Machine-wide cache counters (mutator + GC, like whole-process perf). *)

val tier : t -> Hcsgc_memsim.Tier.t option
(** The far-memory tier, when the config enables tiering
    ([tier_capacity_pages > 0]). *)

val far_loads : t -> int
(** Machine-wide demand loads served by the far tier (0 with tiering off).
    Flushes any pending epoch first, so the value is exact. *)

val mutator_counters : t -> Hcsgc_memsim.Hierarchy.counters
(** Counters summed over the mutator cores only (unavailable to the paper's
    methodology; used for analysis and tests). *)

val autotuned_cold_confidence : t -> float option
(** The feedback loop's current COLDCONFIDENCE, when autotuning is on. *)

val gc_log : t -> Hcsgc_core.Gc_log.recorder option
(** The GC event recorder, when the VM was created with [~gc_log:true]. *)

val gc_stats : t -> Hcsgc_core.Gc_stats.t
val heap : t -> Hcsgc_heap.Heap.t
val collector : t -> Collector.t
val config : t -> Hcsgc_core.Config.t

val finish : t -> unit
(** Complete any in-flight GC cycle (without forcing relocation of a pending
    lazy set) so end-of-run statistics are stable. *)

val full_gc : t -> unit
(** Force two complete GC cycles (the [System.gc()] analogue): the first
    collects, the second releases pages that only became candidates after
    the first — leaving heap usage a faithful measure of the live set.
    GC work done here is charged to wall time (the mutator requested it). *)
