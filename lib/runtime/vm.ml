module Heap = Hcsgc_heap.Heap
module Heap_obj = Hcsgc_heap.Heap_obj
module Page = Hcsgc_heap.Page
module Layout = Hcsgc_heap.Layout
module Recorder = Hcsgc_telemetry.Recorder
module Machine = Hcsgc_memsim.Machine
module Collector = Hcsgc_core.Collector
module Config = Hcsgc_core.Config
module Invariants = Hcsgc_verify.Invariants
module Gc_stats = Hcsgc_core.Gc_stats
module Cost = Hcsgc_core.Cost
module Vec = Hcsgc_util.Vec
module Pool = Hcsgc_exec.Pool

(* How much mutator cost accumulates between GC pump runs. *)
let pump_quantum = 4096

(* Sharded (epoch) execution, [shard_domains > 0]:

   Logical mutator operations still run sequentially on the calling
   domain — heap mutation order, barrier decisions and GC scheduling are
   exactly as authored.  What is deferred is the memory-hierarchy
   simulation: each mutator core's accesses accumulate in a per-shard log
   inside the Machine, and at an epoch barrier the logs are replayed
   against the shards' private L1/L2/TLB/prefetcher state — fanned across
   up to [shard_domains] worker domains — after which each shard's
   LLC-bound traffic is merged into the shared LLC in fixed order:
   mutator id first, program order (simulated time) within a mutator.
   The resolved latencies then land on the mutators' clocks and in the GC
   pacing credit.  Results are a pure function of the logged traffic, so
   any [shard_domains >= 1] produces byte-identical output; the worker
   count only changes wall-clock time.

   Epoch barriers sit at every GC pump (so collector phases always see
   fully-merged mutator traffic, and the GC core's own inline LLC traffic
   is ordered after the epoch's mutator traffic) and at every clock or
   counter read (so observed values are exact).

   [shard_domains = 0] (the default) is the classic inline interleave —
   per-access latencies feed the clocks immediately.  The two execution
   models honestly differ (deferral changes when latency reaches the pump),
   which is why the flag default changes nothing and experiments tag their
   content-address keys with the execution model, never the shard count. *)

type t = {
  machine : Machine.t;
  heap : Heap.t;
  collector : Collector.t;
  saturated : bool;
  gc_share : float;
  trigger : float;
  mutators : int;
  roots : Heap_obj.t Vec.t;
  locals : Heap_obj.t Vec.t;
  mut_clock : int array;  (* per-mutator simulated cycles *)
  mutable gc_cycles_ : int;
  mutable stw_cycles_ : int;
  (* Last-seen snapshots of the collector's cumulative work counters
     ([Collector.total_gc_work]/[total_stw_work]).  Absorption charges the
     delta since the previous snapshot — the collector no longer returns
     per-call work records, so driving it allocates nothing on the host. *)
  mutable seen_gc : int;
  mutable seen_stw : int;
  mutable credit : int;  (* mutator cycles since the last GC pump *)
  mutable op_count : int;
  (* Feedback loop (§4.8): observe the mutator miss rate once per GC cycle
     and retune COLDCONFIDENCE. *)
  tuner : Hcsgc_core.Autotuner.t option;
  mutable tuner_cycle : int;
  mutable tuner_loads : int;
  mutable tuner_misses : int;
  (* Epoch sharding (see the note above [create]'s implementation). *)
  shard_domains : int;
  mutable pool : Pool.t option;  (* lazy; shut down in [finish] *)
  recorder : Hcsgc_core.Gc_log.recorder option;
  (* Telemetry (hcsgc.telemetry): off unless enable_telemetry installed a
     recorder.  Recording charges no simulated cycles, so instrumented and
     plain runs have identical clocks. *)
  mutable telemetry : Recorder.t option;
  mutable trace_sample : int;  (* wall cycles between counter samples *)
  mutable next_sample : int;
}

let mutator_core = 0

(* HCSGC_VERIFY=1 turns every VM into a verified VM — the CI lever that
   reruns the whole test suite under the heap sanitizer. *)
let env_verify () =
  match Sys.getenv_opt "HCSGC_VERIFY" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let create ?layout ?machine_config ?(saturated = false) ?(gc_share = 1.0)
    ?(trigger = 0.25) ?(autotune = false) ?(gc_log = false) ?(mutators = 1)
    ?(shard_domains = 0) ?verify ~config ~max_heap () =
  if autotune && not config.Config.hotness then
    invalid_arg "Vm.create: autotuning requires a HOTNESS-enabled config";
  if mutators < 1 then invalid_arg "Vm.create: need at least one mutator";
  if saturated && mutators > 1 then
    invalid_arg "Vm.create: saturated mode models a single mutator core";
  if shard_domains < 0 then
    invalid_arg "Vm.create: shard_domains must be non-negative";
  if saturated && shard_domains > 0 then
    invalid_arg "Vm.create: sharded execution is incompatible with saturated mode";
  let recorder =
    if gc_log then Some (Hcsgc_core.Gc_log.recorder ()) else None
  in
  let cores = if saturated then 1 else mutators + 1 in
  let machine =
    match machine_config with
    | Some cfg -> Machine.create ~cfg ~cores ()
    | None -> Machine.create ~cores ()
  in
  (* Every mutator core is a shard; the GC core stays inline so collector
     phases interact with the merged LLC directly at epoch barriers. *)
  if shard_domains > 0 then Machine.attach_shards machine mutators;
  let heap =
    match layout with
    | Some layout -> Heap.create ~layout ~max_bytes:max_heap ()
    | None -> Heap.create ~max_bytes:max_heap ()
  in
  (* Far-memory tier: one shared object, consulted by the machine on the
     LLC-miss path and mutated by the collector (demote/promote/free). *)
  let tier =
    if config.Config.tier_capacity_pages > 0 then
      Some
        (Hcsgc_memsim.Tier.create
           ~granule_bytes:(Layout.granule (Heap.layout heap))
           ~capacity_bytes:
             (config.Config.tier_capacity_pages
             * (Heap.layout heap).Layout.small_page)
           ~lat_far:config.Config.lat_far ())
    else None
  in
  Machine.set_tier machine tier;
  let roots = Vec.create () in
  let locals = Vec.create () in
  (* Root iterator: named roots first, then local frames — the same stable
     order the old list-building callback produced, without the per-pause
     list construction. *)
  let root_fn f =
    Vec.iter f roots;
    Vec.iter f locals
  in
  let collector =
    let sink =
      Option.map Hcsgc_core.Gc_log.sink_of_recorder recorder
    in
    Collector.create ?sink ?tier ~heap ~machine ~config
      ~gc_core:(if saturated then 0 else mutators)
      ~roots:root_fn ()
  in
  (if (match verify with Some v -> v | None -> env_verify ()) then
     Invariants.install collector);
  {
    machine;
    heap;
    collector;
    saturated;
    gc_share;
    trigger;
    mutators;
    roots;
    locals;
    mut_clock = Array.make mutators 0;
    gc_cycles_ = 0;
    stw_cycles_ = 0;
    seen_gc = 0;
    seen_stw = 0;
    credit = 0;
    op_count = 0;
    shard_domains;
    pool = None;
    tuner =
      (if autotune then
         Some (Hcsgc_core.Autotuner.create ~initial:config.Config.cold_confidence ())
       else None);
    tuner_cycle = 0;
    tuner_loads = 0;
    tuner_misses = 0;
    recorder;
    telemetry = None;
    trace_sample = 0;
    next_sample = 0;
  }

let check_m t m =
  if m < 0 || m >= t.mutators then invalid_arg "Vm: mutator index out of range"

(* Wall time follows the slowest mutator thread; pauses (and, on a
   saturated core, GC work) are serial additions. *)
let mutator_cycles_sum t = Array.fold_left ( + ) 0 t.mut_clock

let mutator_cycles_max t = Array.fold_left max 0 t.mut_clock

(* The epoch barrier.  Replay fans over worker domains (task 0 runs here);
   the merge is strictly sequential in mutator-id order, so the shared-LLC
   evolution — and with it every counter and latency — is independent of
   the worker count.  Latencies reach both the owning mutator's clock and
   the GC pacing credit, exactly where inline simulation would have put
   them.  A no-op when nothing is logged, so it is safe (and cheap) to call
   from every observation point. *)
let flush_epoch t =
  if t.shard_domains > 0 && Machine.shards_dirty t.machine then begin
    (if t.shard_domains > 1 && t.mutators > 1 then begin
       let pool =
         match t.pool with
         | Some p -> p
         | None ->
             let p = Pool.create ~jobs:(min t.shard_domains t.mutators) in
             t.pool <- Some p;
             p
       in
       Pool.fork_join pool ~n:t.mutators (fun i ->
           Machine.replay_shard t.machine ~shard:i)
     end
     else
       for i = 0 to t.mutators - 1 do
         Machine.replay_shard t.machine ~shard:i
       done);
    for m = 0 to t.mutators - 1 do
      let lat = Machine.merge_shard t.machine ~shard:m in
      t.mut_clock.(m) <- t.mut_clock.(m) + lat;
      t.credit <- t.credit + lat
    done
  end

let wall_cycles t =
  flush_epoch t;
  mutator_cycles_max t + t.stw_cycles_ + if t.saturated then t.gc_cycles_ else 0

(* Route the collector work performed since the last absorption: normally
   concurrent work accrues to the GC clock and pauses to the STW clock... *)
let absorb_work t =
  let gc = Collector.total_gc_work t.collector in
  let stw = Collector.total_stw_work t.collector in
  t.gc_cycles_ <- t.gc_cycles_ + (gc - t.seen_gc);
  t.stw_cycles_ <- t.stw_cycles_ + (stw - t.seen_stw);
  t.seen_gc <- gc;
  t.seen_stw <- stw

(* ... but work done while a mutator is blocked on an allocation stall (or
   an explicit full GC) hits wall time wholesale: both deltas land on the
   STW clock, as with ZGC's allocation stalls. *)
let absorb_as_stall t =
  let gc = Collector.total_gc_work t.collector in
  let stw = Collector.total_stw_work t.collector in
  t.stw_cycles_ <- t.stw_cycles_ + (gc - t.seen_gc) + (stw - t.seen_stw);
  t.seen_gc <- gc;
  t.seen_stw <- stw

(* The §4.8 feedback loop: at each new GC cycle, feed the epoch's mutator
   miss rate to the tuner and apply its COLDCONFIDENCE. *)
let autotune_step t =
  match t.tuner with
  | None -> ()
  | Some tuner ->
      let cycles = Gc_stats.cycles (Collector.stats t.collector) in
      if cycles > t.tuner_cycle then begin
        t.tuner_cycle <- cycles;
        let c = Machine.core_counters t.machine ~core:mutator_core in
        let module H = Hcsgc_memsim.Hierarchy in
        let loads = c.H.loads - t.tuner_loads in
        let misses = c.H.l1_misses - t.tuner_misses in
        t.tuner_loads <- c.H.loads;
        t.tuner_misses <- c.H.l1_misses;
        if loads > 256 then begin
          Hcsgc_core.Autotuner.observe tuner
            ~miss_rate:(float_of_int misses /. float_of_int loads);
          Collector.set_cold_confidence t.collector
            (Hcsgc_core.Autotuner.cold_confidence tuner)
        end
      end

(* Telemetry counter sample: a snapshot of machine counters, heap usage and
   GC attribution at the current wall clock.  Reads only — never charges
   simulated cycles, never touches the cache simulator. *)
let take_sample t =
  match t.telemetry with
  | None -> ()
  | Some r ->
      let module H = Hcsgc_memsim.Hierarchy in
      (* Flush before reading any counter: record fields evaluate in
         unspecified order, and [far_loads] must see the merged epoch. *)
      let wall = wall_cycles t in
      let c = Machine.counters t.machine in
      let st = Collector.stats t.collector in
      Recorder.sample r
        {
          Recorder.wall;
          heap_used = Heap.used_bytes t.heap;
          hot_bytes = Heap.hot_bytes t.heap;
          loads = c.H.loads;
          stores = c.H.stores;
          l1_misses = c.H.l1_misses;
          l2_misses = c.H.l2_misses;
          llc_misses = c.H.llc_misses;
          barrier_fast = Gc_stats.barrier_fast_paths st;
          barrier_slow = Gc_stats.barrier_slow_paths st;
          reloc_mutator = Gc_stats.objects_relocated_by_mutator st;
          reloc_gc = Gc_stats.objects_relocated_by_gc st;
          reloc_bytes = Gc_stats.bytes_relocated st;
          far_loads = Machine.far_loads t.machine;
        }

let maybe_sample t =
  match t.telemetry with
  | None -> ()
  | Some _ ->
      if wall_cycles t >= t.next_sample then begin
        t.next_sample <- wall_cycles t + t.trace_sample;
        take_sample t
      end

(* Give GC threads CPU time proportional to the mutator cycles elapsed. *)
let pump t =
  (* Epoch barrier first: deferred latencies join the credit before the
     budget is computed, and collector phases see fully-merged traffic. *)
  flush_epoch t;
  let budget = int_of_float (float_of_int t.credit *. t.gc_share) in
  t.credit <- 0;
  Collector.set_wall_hint t.collector (wall_cycles t);
  if Collector.needs_cycle t.collector ~trigger:t.trigger then
    Collector.start_cycle t.collector;
  if Collector.in_cycle t.collector then
    Collector.gc_work t.collector ~budget;
  absorb_work t;
  autotune_step t;
  maybe_sample t

let charge ?(m = 0) t cost =
  t.mut_clock.(m) <- t.mut_clock.(m) + cost + Cost.op_base;
  t.credit <- t.credit + cost + Cost.op_base;
  t.op_count <- t.op_count + 1;
  if t.credit >= pump_quantum then pump t

let safepoint t =
  Collector.set_wall_hint t.collector (wall_cycles t);
  pump t

(* Allocation stall: the mutator blocks until the collector frees enough
   memory for the allocation to succeed.  GC work done while the mutator is
   blocked hits wall time (charged through the stw channel), but only as
   much of it as the stall actually needs — the mutator resumes as soon as a
   page is available, as with ZGC's allocation stalls. *)
let stall_chunk = 100_000

let alloc ?(m = 0) t ~nrefs ~nwords =
  check_m t m;
  let try_alloc () = Collector.alloc t.collector ~core:m ~nrefs ~nwords in
  match try_alloc () with
  | Some (obj, cost) ->
      charge ~m t cost;
      obj
  | None ->
      let rec stall_loop started_extra_cycle =
        Collector.set_wall_hint t.collector (wall_cycles t);
        if
          Collector.in_cycle t.collector
          || Collector.pending_relocation_pages t.collector > 0
        then begin
          if not (Collector.in_cycle t.collector) then begin
            (* Pending lazy relocation while idle: start the next cycle so
               its leading RE pass can release the floating garbage. *)
            Collector.start_cycle t.collector;
            absorb_as_stall t
          end;
          Collector.gc_work t.collector ~budget:stall_chunk;
          absorb_as_stall t;
          match try_alloc () with
          | Some (obj, cost) ->
              charge ~m t cost;
              obj
          | None -> stall_loop started_extra_cycle
        end
        else if not started_extra_cycle then begin
          (* Idle with nothing pending: one full extra cycle is the last
             resort before declaring the heap exhausted. *)
          Collector.start_cycle t.collector;
          absorb_as_stall t;
          stall_loop true
        end
        else raise Collector.Out_of_memory
      in
      stall_loop false

let load_ref ?(m = 0) t obj slot =
  check_m t m;
  let target = Collector.load_ref t.collector ~core:m obj ~slot in
  charge ~m t (Collector.last_cost t.collector);
  target

let store_ref ?(m = 0) t obj slot target =
  check_m t m;
  let cost = Collector.store_ref t.collector ~core:m obj ~slot target in
  charge ~m t cost

let layout t = Heap.layout t.heap

let load_word ?(m = 0) t obj i =
  check_m t m;
  let cost = Collector.use_handle t.collector ~core:m obj in
  let addr = Heap_obj.payload_addr ~layout:(layout t) obj i in
  let cost = cost + Machine.load t.machine ~core:m addr in
  charge ~m t cost;
  Heap_obj.get_word obj i

let store_word ?(m = 0) t obj i v =
  check_m t m;
  let cost = Collector.use_handle t.collector ~core:m obj in
  let addr = Heap_obj.payload_addr ~layout:(layout t) obj i in
  let cost = cost + Machine.store t.machine ~core:m addr in
  Heap_obj.set_word obj i v;
  charge ~m t cost

let touch ?(m = 0) t obj =
  check_m t m;
  let cost = Collector.use_handle t.collector ~core:m obj in
  let cost = cost + Machine.load t.machine ~core:m obj.Heap_obj.addr in
  charge ~m t cost

let work ?(m = 0) t n =
  check_m t m;
  if n > 0 then begin
    t.mut_clock.(m) <- t.mut_clock.(m) + n;
    t.credit <- t.credit + n;
    if t.credit >= pump_quantum then pump t
  end

let add_root t obj = Vec.push t.roots obj

let remove_root t obj = Vec.remove t.roots obj

let push_local t obj = Vec.push t.locals obj

let local_frame t f =
  let depth = Vec.length t.locals in
  Fun.protect
    ~finally:(fun () ->
      while Vec.length t.locals > depth do
        ignore (Vec.pop t.locals)
      done)
    f

let with_local t obj f =
  local_frame t (fun () ->
      push_local t obj;
      f ())

let mutator_cycles t =
  flush_epoch t;
  mutator_cycles_max t

let mutator_count t = t.mutators

let shard_domains t = t.shard_domains

let mutator_clock t ~m =
  check_m t m;
  flush_epoch t;
  t.mut_clock.(m)

let _ = mutator_cycles_sum
let gc_cycles t = t.gc_cycles_
let stw_cycles t = t.stw_cycles_
let ops t = t.op_count

let counters t =
  flush_epoch t;
  Machine.counters t.machine

let tier t = Machine.tier t.machine

let far_loads t =
  flush_epoch t;
  Machine.far_loads t.machine

let mutator_counters t =
  flush_epoch t;
  let module H = Hcsgc_memsim.Hierarchy in
  let sum = ref (Machine.core_counters t.machine ~core:0) in
  for m = 1 to t.mutators - 1 do
    let c = Machine.core_counters t.machine ~core:m in
    sum :=
      {
        H.loads = !sum.H.loads + c.H.loads;
        stores = !sum.H.stores + c.H.stores;
        l1_misses = !sum.H.l1_misses + c.H.l1_misses;
        l2_misses = !sum.H.l2_misses + c.H.l2_misses;
        llc_misses = !sum.H.llc_misses + c.H.llc_misses;
        prefetches = !sum.H.prefetches + c.H.prefetches;
      }
  done;
  !sum

let autotuned_cold_confidence t =
  Option.map Hcsgc_core.Autotuner.cold_confidence t.tuner

let gc_log t = t.recorder

let enable_telemetry ?(sample_interval = 50_000) t =
  if sample_interval <= 0 then
    invalid_arg "Vm.enable_telemetry: sample_interval must be positive";
  match t.telemetry with
  | Some r -> r
  | None ->
      let r = Recorder.create () in
      t.telemetry <- Some r;
      t.trace_sample <- sample_interval;
      t.next_sample <- sample_interval;
      flush_epoch t;
      (* One sink for everything: the Gc_log recorder (if any) and the
         telemetry translation share the collector's event stream.  Extra
         counter samples are forced at cycle boundaries so per-cycle deltas
         (relocation attribution, heap growth) are exact. *)
      let module Gc_log = Hcsgc_core.Gc_log in
      let tele event =
        Recorder.on_gc_event r event;
        match event with
        | Gc_log.Cycle_start _ | Gc_log.Cycle_end _ -> take_sample t
        | _ -> ()
      in
      let sinks =
        match t.recorder with
        | Some gr -> [ Gc_log.sink_of_recorder gr; tele ]
        | None -> [ tele ]
      in
      Collector.set_sink t.collector (Gc_log.tee sinks);
      take_sample t;
      r

let telemetry t = t.telemetry

let enable_verification ?oracle t = Invariants.install ?oracle t.collector

let span_begin ?(m = 0) t name =
  check_m t m;
  match t.telemetry with
  | None -> ()
  | Some r ->
      Recorder.begin_span r (Recorder.Mutator m) ~name ~wall:(wall_cycles t)

let span_end ?(m = 0) t =
  check_m t m;
  match t.telemetry with
  | None -> ()
  | Some r -> Recorder.end_span r (Recorder.Mutator m) ~wall:(wall_cycles t)

let with_span ?(m = 0) t name f =
  span_begin ~m t name;
  Fun.protect ~finally:(fun () -> span_end ~m t) f

let gc_stats t = Collector.stats t.collector
let heap t = t.heap
let collector t = t.collector
let config t = Collector.config t.collector

let finish t =
  Collector.set_wall_hint t.collector (wall_cycles t);
  if Collector.in_cycle t.collector then begin
    Collector.gc_work t.collector ~budget:max_int;
    absorb_work t
  end;
  (match t.telemetry with
  | None -> ()
  | Some r ->
      Recorder.close_all r ~wall:(wall_cycles t);
      take_sample t);
  (* Join the shard workers.  A later epoch (unusual but legal) lazily
     spawns a fresh pool. *)
  match t.pool with
  | None -> ()
  | Some p ->
      Pool.shutdown p;
      t.pool <- None

let full_gc t =
  for _ = 1 to 2 do
    Collector.set_wall_hint t.collector (wall_cycles t);
    if not (Collector.in_cycle t.collector) then
      Collector.start_cycle t.collector;
    Collector.drain t.collector;
    absorb_as_stall t
  done
