(** [perf report]-style plain-text rendering of a profile: pause
    percentiles, MMU at a few window sizes, simulated-cycle totals per span
    name (sorted, with %-of-wall), the per-cycle relocation-attribution
    timeline and the final counter totals. *)

val write : Format.formatter -> Recorder.t -> unit

val to_string : Recorder.t -> string

(** {2 Result-store reporting}

    The incremental-sweep layer surfaces its cache counters through these
    helpers so every harness prints them identically.  They take plain
    integers (not a store handle) to keep [hcsgc.telemetry] independent of
    [hcsgc.store]; callers pass
    {!Hcsgc_store.Result_store.counters} fields through. *)

val store_line :
  dir:string ->
  hits:int ->
  misses:int ->
  corrupt:int ->
  stored:int ->
  bytes_read:int ->
  bytes_written:int ->
  string
(** One auditable line: hit/miss/corruption counts, payload bytes moved,
    store path.  The bench harness prints this at sweep end (to stderr, so
    figure text on stdout stays byte-identical between cold and warm
    runs). *)

val write_store :
  Format.formatter ->
  dir:string ->
  hits:int ->
  misses:int ->
  corrupt:int ->
  stored:int ->
  bytes_read:int ->
  bytes_written:int ->
  unit
(** {!store_line} as a [-- result store --] summary section. *)
