(** [perf report]-style plain-text rendering of a profile: pause
    percentiles, MMU at a few window sizes, simulated-cycle totals per span
    name (sorted, with %-of-wall), the per-cycle relocation-attribution
    timeline and the final counter totals. *)

val write : Format.formatter -> Recorder.t -> unit

val to_string : Recorder.t -> string
