(** CSV time-series export of the counter samples: one header line, one row
    per sample, all values cumulative (difference adjacent rows for rates).
    Loads directly into pandas/gnuplot for heap-over-time plots (Fig. 13)
    and cache-traffic timelines. *)

val header : string
(** The column names, comma-separated (no trailing newline). *)

val write : Format.formatter -> Recorder.t -> unit

val to_string : Recorder.t -> string
