(** The telemetry recorder: a low-overhead, bounded, in-memory store of
    {e spans} (GC phases, STW pauses, workload phases) and {e counter
    samples}, all stamped on the simulated cycle clock.

    This is the substrate behind the paper's evaluation artefacts —
    [-Xlog:gc] pause lines, `perf stat` counters, heap-usage-over-time
    plots (§4.2, Fig. 13) — generalised into one event store that the
    exporters ({!Chrome_trace}, {!Csv_export}, {!Summary}) and the
    {!Analyzer} all read.

    Recording never touches the simulated machine: it charges zero
    simulated cycles, so an instrumented run's simulated clock is
    byte-identical to an uninstrumented one (asserted by the test suite).
    Both stores are ring buffers — when full, the oldest entry is dropped
    and the drop is counted, like {!Hcsgc_core.Gc_log}.

    The recorder is not domain-safe: keep one recorder per VM, and one VM
    per worker domain (as {!Hcsgc_experiments.Runner} does), and parallel
    profiled sweeps stay deterministic. *)

type track =
  | Mutator of int  (** one track per mutator core *)
  | Gc  (** the GC thread's track *)

type kind =
  | Slice  (** a duration on a track (Chrome trace ["ph":"X"]) *)
  | Instant  (** a point event (Chrome trace ["ph":"i"]) *)

type span = {
  track : track;
  kind : kind;
  name : string;
  start : int;  (** simulated wall cycles *)
  stop : int;  (** = [start] for instants *)
  args : (string * int) list;  (** extra values, exported as trace args *)
}

(** Counter sample: cumulative machine/GC counters at one instant of the
    simulated clock.  All fields are monotone totals (like perf counters);
    consumers difference them. *)
type sample = {
  wall : int;
  heap_used : int;  (** committed page bytes *)
  hot_bytes : int;  (** live bytes on pages currently flagged hot *)
  loads : int;
  stores : int;
  l1_misses : int;
  l2_misses : int;
  llc_misses : int;
  barrier_fast : int;  (** mutator barrier fast-path executions *)
  barrier_slow : int;
  reloc_mutator : int;  (** objects relocated by mutator threads *)
  reloc_gc : int;
  reloc_bytes : int;
  far_loads : int;
      (** LLC misses served from the far tier (0 when tiering is off) —
          the per-tier miss time series of the far-memory experiments *)
}

type t

val create : ?span_capacity:int -> ?sample_capacity:int -> unit -> t
(** Fresh recorder; default capacities 65536 spans / 16384 samples
    (oldest dropped first). *)

(** {2 Recording} *)

val begin_span :
  t -> ?args:(string * int) list -> track -> name:string -> wall:int -> unit
(** Open a span on a track.  Spans on one track nest like a stack. *)

val end_span : t -> ?args:(string * int) list -> track -> wall:int -> unit
(** Close the innermost open span on the track (no-op when none is open).
    [args] are appended to the span's begin-time args. *)

val complete_span :
  t -> ?args:(string * int) list -> track -> name:string -> wall:int ->
  dur:int -> unit
(** Record an already-delimited span (e.g. an STW pause of known cost). *)

val instant :
  t -> ?args:(string * int) list -> track -> name:string -> wall:int -> unit

val close_all : t -> wall:int -> unit
(** Close every open span on every track (end-of-run cleanup, so an
    in-flight GC cycle still renders). *)

val sample : t -> sample -> unit

val on_gc_event : t -> Hcsgc_core.Gc_log.event -> unit
(** Translate one structured GC event into trace form on the {!Gc} track:
    cycles and concurrent phases become nested slices, STW pauses become
    slices of their cost, mark/EC/deferral milestones become instants.
    [Page_freed] is deliberately not traced (too frequent); it remains
    available through {!Hcsgc_core.Gc_log}. *)

(** {2 Reading} *)

val spans : t -> span list
(** Closed spans, oldest surviving first (completion order). *)

val samples : t -> sample list

val dropped_spans : t -> int
val dropped_samples : t -> int

val tracks : t -> track list
(** Tracks that recorded at least one span, GC first, then mutators by
    core id. *)

val clear : t -> unit
