(** Profile analysis over a {!Recorder}: STW-pause percentiles, minimum
    mutator utilisation (MMU) over sliding windows, and the per-cycle
    relocation-attribution timeline.

    These are the latency questions the ROADMAP's serving goal asks and the
    paper's aggregate tables cannot answer: {e when} does a configuration
    win, how long do its worst pauses cluster, and who (mutator or GC
    threads) paid for relocation in each cycle. *)

type pause_stats = {
  count : int;
  total : int;  (** summed pause cycles *)
  p50 : int;
  p95 : int;
  p99 : int;
  p999 : int;  (** the tail percentile the serving-tier SLOs report *)
  max : int;
}

val percentile : int list -> pct:float -> int
(** Nearest-rank percentile of a non-empty list (sorted internally):
    [percentile xs ~pct:50.0] is the median sample.
    @raise Invalid_argument on an empty list or [pct] outside (0, 100]. *)

val pause_durations : Recorder.t -> int list
(** Durations of the recorded STW pause slices, chronological. *)

val pause_intervals : Recorder.t -> (int * int) list
(** [(start, stop)] of each STW pause slice, chronological. *)

val pause_stats : Recorder.t -> pause_stats
(** Zeroes when no pause was recorded. *)

val coalesce : (int * int) list -> (int * int) list
(** Sort [(start, stop)] intervals, drop empty ones, and merge overlapping
    or touching neighbours — the normal form {!overlap} and {!mmu} reduce
    to before summing. *)

val overlap :
  ?coalesced:bool -> window:int * int -> (int * int) list -> int
(** [overlap ~window:(w0, w1) intervals] is the total length of
    [\[w0, w1\]] covered by the intervals — the request-window ∩
    pause-intervals helper behind pause-attributed SLO accounting.
    Intervals are {!coalesce}d first (pass [~coalesced:true] when the
    caller already did, e.g. once per request batch), so the result is in
    [\[0, w1 - w0\]] even when inputs overlap each other.  An empty or
    inverted window yields 0. *)

val mmu : window:int -> total:int -> pauses:(int * int) list -> float
(** Minimum mutator utilisation: the worst-case fraction of any
    [window]-cycle sliding window of [\[0, total\]] not spent in an STW
    pause.  [window >= total] degenerates to whole-run utilisation.
    Pauses are [(start, stop)] intervals; overlapping or touching
    intervals are coalesced first (simulated pauses can share a wall
    stamp), so the result is always within [\[0, 1\]].  1.0 when
    [total = 0].
    @raise Invalid_argument when [window <= 0]. *)

val mmu_of : Recorder.t -> window:int -> float
(** {!mmu} over the recorder's pause slices, with [total] the latest
    span-edge wall clock. *)

type attribution_point = {
  cycle : int;
  wall : int;  (** wall at the cycle's start *)
  reloc_mutator : int;  (** objects the mutators copied in this epoch *)
  reloc_gc : int;
  reloc_bytes : int;
}

val attribution : Recorder.t -> attribution_point list
(** Relocation attribution per GC epoch: for each recorded cycle span
    ["GC(n)"], the growth of the relocation counters from its start to the
    next cycle's start (or the final sample) — so lazily-deferred
    relocation work done by mutators between cycles is charged to the
    cycle that deferred it.  Accurate to the nearest counter sample; the
    VM samples at every cycle boundary, making the edges exact. *)
