type pause_stats = {
  count : int;
  total : int;
  p50 : int;
  p95 : int;
  p99 : int;
  p999 : int;
  max : int;
}

let percentile xs ~pct =
  if xs = [] then invalid_arg "Analyzer.percentile: empty list";
  if pct <= 0.0 || pct > 100.0 then
    invalid_arg "Analyzer.percentile: pct outside (0, 100]";
  let arr = Array.of_list xs in
  Array.sort compare arr;
  let n = Array.length arr in
  (* Nearest rank ⌈pct/100 × n⌉, nudged below the float division's upward
     rounding so an exactly-integral rank (99.9% of 1000 = 999) is not
     bumped to the next sample. *)
  let rank = int_of_float (ceil ((pct /. 100.0 *. float_of_int n) -. 1e-9)) in
  arr.(max 0 (min (n - 1) (rank - 1)))

let is_pause (s : Recorder.span) =
  s.Recorder.track = Recorder.Gc
  && s.Recorder.kind = Recorder.Slice
  && String.length s.Recorder.name >= 6
  && String.sub s.Recorder.name 0 6 = "Pause "

let pause_spans r = List.filter is_pause (Recorder.spans r)

let pause_durations r =
  List.map (fun (s : Recorder.span) -> s.Recorder.stop - s.Recorder.start)
    (pause_spans r)

let pause_intervals r =
  List.map (fun (s : Recorder.span) -> (s.Recorder.start, s.Recorder.stop))
    (pause_spans r)

let pause_stats r =
  match pause_durations r with
  | [] -> { count = 0; total = 0; p50 = 0; p95 = 0; p99 = 0; p999 = 0; max = 0 }
  | ds ->
      {
        count = List.length ds;
        total = List.fold_left ( + ) 0 ds;
        p50 = percentile ds ~pct:50.0;
        p95 = percentile ds ~pct:95.0;
        p99 = percentile ds ~pct:99.0;
        p999 = percentile ds ~pct:99.9;
        max = List.fold_left max 0 ds;
      }

(* Coalesce overlapping/touching intervals so summed window overlap never
   exceeds the window.  Simulated pauses can share a wall stamp (the wall
   hint only advances at mutator pumps), so overlap is not hypothetical. *)
let merge_intervals pauses =
  let rec go = function
    | (a1, b1) :: (a2, b2) :: rest when a2 <= b1 -> go ((a1, max b1 b2) :: rest)
    | iv :: rest -> iv :: go rest
    | [] -> []
  in
  go (List.sort compare (List.filter (fun (a, b) -> b > a) pauses))

let coalesce = merge_intervals

(* Overlap of one window with a set of intervals.  Coalescing first keeps
   the sum honest when intervals overlap each other (simulated pauses can
   share a wall stamp), so the result never exceeds the window width.
   The SLO attribution calls this once per violating request with the
   already-coalesced pause list, hence the [?coalesced] fast path. *)
let overlap ?(coalesced = false) ~window:(w0, w1) intervals =
  let intervals = if coalesced then intervals else merge_intervals intervals in
  List.fold_left
    (fun acc (a, b) -> acc + max 0 (min b w1 - max a w0))
    0 intervals

let mmu ~window ~total ~pauses =
  if window <= 0 then invalid_arg "Analyzer.mmu: window must be positive";
  if total <= 0 then 1.0
  else begin
    let window = min window total in
    let pauses = merge_intervals pauses in
    let overlap at =
      List.fold_left
        (fun acc (start, stop) ->
          acc + max 0 (min stop (at + window) - max start at))
        0 pauses
    in
    (* The worst window starts at a pause start or ends at a pause stop;
       checking those anchors (clamped into range) covers the minimum. *)
    let anchors =
      0
      :: List.concat_map (fun (start, stop) -> [ start; stop - window ]) pauses
      |> List.map (fun at -> max 0 (min at (total - window)))
    in
    let worst = List.fold_left (fun acc at -> max acc (overlap at)) 0 anchors in
    float_of_int (window - worst) /. float_of_int window
  end

let last_wall r =
  List.fold_left
    (fun acc (s : Recorder.span) -> max acc s.Recorder.stop)
    0 (Recorder.spans r)

let mmu_of r ~window =
  mmu ~window ~total:(last_wall r) ~pauses:(pause_intervals r)

type attribution_point = {
  cycle : int;
  wall : int;
  reloc_mutator : int;
  reloc_gc : int;
  reloc_bytes : int;
}

let cycle_of_name name = Scanf.sscanf_opt name "GC(%d)" (fun n -> n)

let attribution r =
  let samples = Recorder.samples r in
  if samples = [] then []
  else begin
    (* Last sample at-or-before [w]; the VM samples at every cycle start,
       so this is exact at epoch edges. *)
    let at w =
      let rec go best = function
        | [] -> best
        | (s : Recorder.sample) :: rest ->
            if s.Recorder.wall <= w then go (Some s) rest else best
      in
      match go None samples with
      | Some s -> s
      | None -> List.hd samples
    in
    let final = List.nth samples (List.length samples - 1) in
    let starts =
      Recorder.spans r
      |> List.filter_map (fun (s : Recorder.span) ->
             if s.Recorder.track = Recorder.Gc && s.Recorder.kind = Recorder.Slice
             then
               Option.map (fun n -> (n, s.Recorder.start))
                 (cycle_of_name s.Recorder.name)
             else None)
      |> List.sort compare
    in
    let rec epochs = function
      | [] -> []
      | [ (cycle, start) ] -> [ (cycle, start, at start, final) ]
      | (cycle, start) :: ((_, next) :: _ as rest) ->
          (cycle, start, at start, at next) :: epochs rest
    in
    List.map
      (fun (cycle, wall, (s0 : Recorder.sample), (s1 : Recorder.sample)) ->
        {
          cycle;
          wall;
          reloc_mutator = s1.Recorder.reloc_mutator - s0.Recorder.reloc_mutator;
          reloc_gc = s1.Recorder.reloc_gc - s0.Recorder.reloc_gc;
          reloc_bytes = s1.Recorder.reloc_bytes - s0.Recorder.reloc_bytes;
        })
      (epochs starts)
  end
