module Gc_log = Hcsgc_core.Gc_log

type track = Mutator of int | Gc

type kind = Slice | Instant

type span = {
  track : track;
  kind : kind;
  name : string;
  start : int;
  stop : int;
  args : (string * int) list;
}

type sample = {
  wall : int;
  heap_used : int;
  hot_bytes : int;
  loads : int;
  stores : int;
  l1_misses : int;
  l2_misses : int;
  llc_misses : int;
  barrier_fast : int;
  barrier_slow : int;
  reloc_mutator : int;
  reloc_gc : int;
  reloc_bytes : int;
  far_loads : int;
}

type open_span = {
  o_name : string;
  o_start : int;
  o_args : (string * int) list;
}

type t = {
  span_buf : span option array;
  mutable span_next : int;
  mutable span_total : int;
  sample_buf : sample option array;
  mutable sample_next : int;
  mutable sample_total : int;
  open_stacks : (track, open_span list) Hashtbl.t;
}

let create ?(span_capacity = 65536) ?(sample_capacity = 16384) () =
  if span_capacity <= 0 || sample_capacity <= 0 then
    invalid_arg "Recorder.create: capacities must be positive";
  {
    span_buf = Array.make span_capacity None;
    span_next = 0;
    span_total = 0;
    sample_buf = Array.make sample_capacity None;
    sample_next = 0;
    sample_total = 0;
    open_stacks = Hashtbl.create 8;
  }

let push_span t span =
  t.span_buf.(t.span_next) <- Some span;
  t.span_next <- (t.span_next + 1) mod Array.length t.span_buf;
  t.span_total <- t.span_total + 1

let stack t track =
  match Hashtbl.find_opt t.open_stacks track with Some s -> s | None -> []

let begin_span t ?(args = []) track ~name ~wall =
  Hashtbl.replace t.open_stacks track
    ({ o_name = name; o_start = wall; o_args = args } :: stack t track)

let close t track ~args ~wall (o : open_span) =
  (* Clamp: a span opened speculatively (e.g. a concurrent phase entered at
     [pause_wall + pause_cost]) may be closed by an event stamped at the
     pre-pause wall; render it as zero-length rather than negative. *)
  push_span t
    {
      track;
      kind = Slice;
      name = o.o_name;
      start = o.o_start;
      stop = max o.o_start wall;
      args = o.o_args @ args;
    }

let end_span t ?(args = []) track ~wall =
  match stack t track with
  | [] -> ()
  | o :: rest ->
      Hashtbl.replace t.open_stacks track rest;
      close t track ~args ~wall o

(* Close the topmost open span named [name] and anything nested above it;
   no-op when no such span is open. *)
let end_named t ?(args = []) track ~name ~wall =
  let st = stack t track in
  if List.exists (fun o -> o.o_name = name) st then begin
    let rec pop = function
      | [] -> []
      | o :: rest ->
          if o.o_name = name then begin
            close t track ~args ~wall o;
            rest
          end
          else begin
            close t track ~args:[] ~wall o;
            pop rest
          end
    in
    Hashtbl.replace t.open_stacks track (pop st)
  end

let complete_span t ?(args = []) track ~name ~wall ~dur =
  push_span t
    { track; kind = Slice; name; start = wall; stop = wall + max 0 dur; args }

let instant t ?(args = []) track ~name ~wall =
  push_span t { track; kind = Instant; name; start = wall; stop = wall; args }

let track_order = function Gc -> -1 | Mutator m -> m

let close_all t ~wall =
  let tracks =
    Hashtbl.fold (fun track _ acc -> track :: acc) t.open_stacks []
    |> List.sort (fun a b -> compare (track_order a) (track_order b))
  in
  List.iter
    (fun track ->
      List.iter (close t track ~args:[] ~wall) (stack t track);
      Hashtbl.replace t.open_stacks track [])
    tracks

let sample t s =
  t.sample_buf.(t.sample_next) <- Some s;
  t.sample_next <- (t.sample_next + 1) mod Array.length t.sample_buf;
  t.sample_total <- t.sample_total + 1

(* GC events -> trace form.  Pauses are slices of their cost; the
   concurrent phases between them become nested slices under the cycle
   slice; milestones become instants.  Page_freed is skipped: a busy run
   frees thousands of pages and the event log already has them. *)
let on_gc_event t (e : Gc_log.event) =
  match e with
  | Gc_log.Cycle_start { cycle; wall; heap_used } ->
      begin_span t Gc
        ~name:(Printf.sprintf "GC(%d)" cycle)
        ~args:[ ("heap_used_start", heap_used) ]
        ~wall
  | Gc_log.Pause { cycle = _; pause; cost; wall } -> (
      (match pause with
      | Gc_log.STW2 -> end_named t Gc ~name:"Concurrent Mark" ~wall
      | Gc_log.STW1 | Gc_log.STW3 -> ());
      complete_span t Gc ~name:(Gc_log.pause_name pause) ~wall ~dur:cost;
      match pause with
      | Gc_log.STW1 ->
          begin_span t Gc ~name:"Concurrent Mark" ~wall:(wall + cost)
      | Gc_log.STW3 ->
          begin_span t Gc ~name:"Concurrent Relocate" ~wall:(wall + cost)
      | Gc_log.STW2 -> ())
  | Gc_log.Mark_end { cycle = _; marked_objects; wall } ->
      instant t Gc ~name:"Concurrent Mark end"
        ~args:[ ("marked", marked_objects) ]
        ~wall
  | Gc_log.Ec_selected { cycle = _; small; medium; wall } ->
      instant t Gc ~name:"Relocation Set"
        ~args:[ ("small", small); ("medium", medium) ]
        ~wall
  | Gc_log.Relocation_deferred { cycle = _; pages; wall } ->
      instant t Gc ~name:"Relocation deferred" ~args:[ ("pages", pages) ] ~wall
  | Gc_log.Pages_demoted { cycle = _; pages; wall } ->
      instant t Gc ~name:"Pages demoted" ~args:[ ("pages", pages) ] ~wall
  | Gc_log.Page_freed _ -> ()
  | Gc_log.Cycle_end { cycle; wall; heap_used } ->
      end_named t Gc
        ~name:(Printf.sprintf "GC(%d)" cycle)
        ~args:[ ("heap_used_end", heap_used) ]
        ~wall

let ring_to_list buf next =
  let cap = Array.length buf in
  let out = ref [] in
  for i = 0 to cap - 1 do
    match buf.((next + i) mod cap) with
    | Some x -> out := x :: !out
    | None -> ()
  done;
  List.rev !out

let spans t = ring_to_list t.span_buf t.span_next

let samples t = ring_to_list t.sample_buf t.sample_next

let dropped_spans t = max 0 (t.span_total - Array.length t.span_buf)

let dropped_samples t = max 0 (t.sample_total - Array.length t.sample_buf)

let tracks t =
  spans t
  |> List.fold_left (fun acc s -> if List.mem s.track acc then acc else s.track :: acc) []
  |> List.sort (fun a b -> compare (track_order a) (track_order b))

let clear t =
  Array.fill t.span_buf 0 (Array.length t.span_buf) None;
  t.span_next <- 0;
  t.span_total <- 0;
  Array.fill t.sample_buf 0 (Array.length t.sample_buf) None;
  t.sample_next <- 0;
  t.sample_total <- 0;
  Hashtbl.reset t.open_stacks
