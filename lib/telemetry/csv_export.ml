let header =
  "wall,heap_used,hot_bytes,loads,stores,l1_misses,l2_misses,llc_misses,\
   barrier_fast,barrier_slow,reloc_mutator,reloc_gc,reloc_bytes,far_loads"

let write fmt r =
  Format.fprintf fmt "%s@\n" header;
  List.iter
    (fun (s : Recorder.sample) ->
      Format.fprintf fmt "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d@\n"
        s.Recorder.wall s.Recorder.heap_used s.Recorder.hot_bytes
        s.Recorder.loads s.Recorder.stores s.Recorder.l1_misses
        s.Recorder.l2_misses s.Recorder.llc_misses s.Recorder.barrier_fast
        s.Recorder.barrier_slow s.Recorder.reloc_mutator s.Recorder.reloc_gc
        s.Recorder.reloc_bytes s.Recorder.far_loads)
    (Recorder.samples r)

let to_string r =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  write fmt r;
  Format.pp_print_flush fmt ();
  Buffer.contents buf
