let tid = function Recorder.Gc -> 0 | Recorder.Mutator m -> m + 1

let track_name = function
  | Recorder.Gc -> "GC"
  | Recorder.Mutator m -> Printf.sprintf "mutator %d" m

(* Minimal JSON string escaping: quote, backslash and control characters
   (span names are ASCII, but stay strict anyway). *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp_args fmt args =
  Format.fprintf fmt "{";
  List.iteri
    (fun i (k, v) ->
      Format.fprintf fmt "%s\"%s\":%d" (if i = 0 then "" else ",") (escape k) v)
    args;
  Format.fprintf fmt "}"

let write fmt r =
  let sep = ref "" in
  let event pp =
    Format.fprintf fmt "%s@\n" !sep;
    sep := ",";
    pp fmt
  in
  Format.fprintf fmt "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  event (fun fmt ->
      Format.fprintf fmt
        "{\"ph\":\"M\",\"ts\":0,\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"hcsgc\"}}");
  List.iter
    (fun track ->
      event (fun fmt ->
          Format.fprintf fmt
            "{\"ph\":\"M\",\"ts\":0,\"pid\":0,\"tid\":%d,\"name\":\
             \"thread_name\",\"args\":{\"name\":\"%s\"}}"
            (tid track)
            (escape (track_name track))))
    (Recorder.tracks r);
  List.iter
    (fun (s : Recorder.span) ->
      event (fun fmt ->
          match s.Recorder.kind with
          | Recorder.Slice ->
              Format.fprintf fmt
                "{\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":0,\"tid\":%d,\
                 \"name\":\"%s\",\"args\":%a}"
                s.Recorder.start
                (s.Recorder.stop - s.Recorder.start)
                (tid s.Recorder.track)
                (escape s.Recorder.name)
                pp_args s.Recorder.args
          | Recorder.Instant ->
              Format.fprintf fmt
                "{\"ph\":\"i\",\"ts\":%d,\"pid\":0,\"tid\":%d,\"s\":\"t\",\
                 \"name\":\"%s\",\"args\":%a}"
                s.Recorder.start
                (tid s.Recorder.track)
                (escape s.Recorder.name)
                pp_args s.Recorder.args))
    (Recorder.spans r);
  List.iter
    (fun (s : Recorder.sample) ->
      event (fun fmt ->
          Format.fprintf fmt
            "{\"ph\":\"C\",\"ts\":%d,\"pid\":0,\"tid\":0,\"name\":\"heap\",\
             \"args\":{\"used\":%d,\"hot\":%d}}"
            s.Recorder.wall s.Recorder.heap_used s.Recorder.hot_bytes))
    (Recorder.samples r);
  Format.fprintf fmt "@\n]}@\n"

let to_string r =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  write fmt r;
  Format.pp_print_flush fmt ();
  Buffer.contents buf
