(** Chrome trace-event JSON export (Perfetto / [chrome://tracing] loadable).

    One process ([pid] 0), one thread track per recorded {!Recorder.track}:
    [tid] 0 is the GC thread, [tid] m+1 is mutator core m.  Slices are
    complete events ([ph:"X"]) with [ts]/[dur] in simulated cycles
    (rendered as microseconds); instants are [ph:"i"]; heap-usage and
    hot-bytes counter samples are [ph:"C"] counter tracks.  Output is
    deterministic: metadata first, then spans in completion order, then
    counter samples in time order. *)

val write : Format.formatter -> Recorder.t -> unit

val to_string : Recorder.t -> string
