let mmu_windows = [ 10_000; 100_000; 1_000_000 ]

(* Aggregate slice time by (track, name), like perf report's symbol rows. *)
let rows r =
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun (s : Recorder.span) ->
      if s.Recorder.kind = Recorder.Slice then begin
        let key = (s.Recorder.track, s.Recorder.name) in
        let dur = s.Recorder.stop - s.Recorder.start in
        match Hashtbl.find_opt tbl key with
        | Some (n, total) -> Hashtbl.replace tbl key (n + 1, total + dur)
        | None ->
            Hashtbl.replace tbl key (1, dur);
            order := key :: !order
      end)
    (Recorder.spans r);
  List.rev_map (fun key -> (key, Hashtbl.find tbl key)) !order
  |> List.sort (fun ((_, _), (_, t1)) ((_, _), (_, t2)) -> compare t2 t1)

let write fmt r =
  let spans = Recorder.spans r in
  let samples = Recorder.samples r in
  let wall =
    List.fold_left (fun acc (s : Recorder.span) -> max acc s.Recorder.stop) 0
      spans
  in
  let wall =
    List.fold_left (fun acc (s : Recorder.sample) -> max acc s.Recorder.wall)
      wall samples
  in
  Format.fprintf fmt "== hcsgc telemetry summary ==@\n";
  Format.fprintf fmt "wall: %d simulated cycles@\n" wall;
  Format.fprintf fmt "spans: %d recorded, %d dropped; samples: %d recorded, %d dropped@\n"
    (List.length spans) (Recorder.dropped_spans r) (List.length samples)
    (Recorder.dropped_samples r);
  (* STW pauses. *)
  let ps = Analyzer.pause_stats r in
  Format.fprintf fmt "@\n-- STW pauses --@\n";
  if ps.Analyzer.count = 0 then Format.fprintf fmt "none recorded@\n"
  else begin
    Format.fprintf fmt "count=%d total=%dc (%.2f%% of wall)@\n" ps.Analyzer.count
      ps.Analyzer.total
      (100.0 *. float_of_int ps.Analyzer.total /. float_of_int (max 1 wall));
    Format.fprintf fmt "p50=%dc p95=%dc p99=%dc p99.9=%dc max=%dc@\n"
      ps.Analyzer.p50 ps.Analyzer.p95 ps.Analyzer.p99 ps.Analyzer.p999
      ps.Analyzer.max;
    Format.fprintf fmt "MMU:";
    List.iter
      (fun w ->
        Format.fprintf fmt " %dk=%.4f" (w / 1000) (Analyzer.mmu_of r ~window:w))
      mmu_windows;
    Format.fprintf fmt "@\n"
  end;
  (* Span totals, perf-report style. *)
  Format.fprintf fmt "@\n-- time by span (simulated cycles) --@\n";
  List.iter
    (fun ((track, name), (count, total)) ->
      Format.fprintf fmt "%7.2f%%  %12d  %5dx  [%s] %s@\n"
        (100.0 *. float_of_int total /. float_of_int (max 1 wall))
        total count
        (match track with
        | Recorder.Gc -> "gc"
        | Recorder.Mutator m -> Printf.sprintf "mut%d" m)
        name)
    (rows r);
  (* Relocation attribution per cycle. *)
  let attr = Analyzer.attribution r in
  Format.fprintf fmt "@\n-- relocation attribution (per GC epoch) --@\n";
  if attr = [] then Format.fprintf fmt "none recorded@\n"
  else
    List.iter
      (fun (a : Analyzer.attribution_point) ->
        Format.fprintf fmt
          "GC(%d) @@ %d: mutator=%d gc=%d objects, %d bytes@\n"
          a.Analyzer.cycle a.Analyzer.wall a.Analyzer.reloc_mutator
          a.Analyzer.reloc_gc a.Analyzer.reloc_bytes)
      attr;
  (* Final counter totals. *)
  (match List.rev samples with
  | [] -> ()
  | (s : Recorder.sample) :: _ ->
      Format.fprintf fmt "@\n-- counters (final sample, cumulative) --@\n";
      Format.fprintf fmt "heap_used=%d hot_bytes=%d@\n" s.Recorder.heap_used
        s.Recorder.hot_bytes;
      Format.fprintf fmt "loads=%d stores=%d l1_misses=%d l2_misses=%d llc_misses=%d@\n"
        s.Recorder.loads s.Recorder.stores s.Recorder.l1_misses
        s.Recorder.l2_misses s.Recorder.llc_misses;
      Format.fprintf fmt "barrier fast=%d slow=%d; relocated mutator=%d gc=%d (%d bytes)@\n"
        s.Recorder.barrier_fast s.Recorder.barrier_slow s.Recorder.reloc_mutator
        s.Recorder.reloc_gc s.Recorder.reloc_bytes;
      Format.fprintf fmt "far_loads=%d@\n" s.Recorder.far_loads)

(* Result-store counters, rendered here so every surface (bench sweep
   footers, profile summaries) prints cache activity the same way.  Takes
   plain ints: telemetry stays independent of hcsgc.store. *)
let store_line ~dir ~hits ~misses ~corrupt ~stored ~bytes_read ~bytes_written =
  let kib b = float_of_int b /. 1024.0 in
  Printf.sprintf
    "result store: %d hits, %d misses (%d corrupt), %d stored, %.1f KiB \
     read, %.1f KiB written at %s"
    hits misses corrupt stored (kib bytes_read) (kib bytes_written) dir

let write_store fmt ~dir ~hits ~misses ~corrupt ~stored ~bytes_read
    ~bytes_written =
  Format.fprintf fmt "@\n-- result store --@\n%s@\n"
    (store_line ~dir ~hits ~misses ~corrupt ~stored ~bytes_read ~bytes_written)

let to_string r =
  let buf = Buffer.create 2048 in
  let fmt = Format.formatter_of_buffer buf in
  write fmt r;
  Format.pp_print_flush fmt ();
  Buffer.contents buf
