module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Layout = Hcsgc_heap.Layout
module Tier = Hcsgc_memsim.Tier
module Serve = Hcsgc_serve.Serve
module Pool = Hcsgc_exec.Pool
module Reporter = Hcsgc_exec.Reporter
module Fingerprint = Hcsgc_store.Fingerprint
module Result_store = Hcsgc_store.Result_store
module Bootstrap = Hcsgc_stats.Bootstrap
module Render = Hcsgc_stats.Render

(* Capacities are small pages of the scaled 64 KiB layout, so the default
   sweep spans "no tier" to a 4 MiB far tier — comparable to the scaled
   working sets of every family below. *)
let default_capacities = [ 0; 4; 16; 64 ]
let default_lat_far = 800

(* All families run under the paper's strongest hotness configuration
   (config 16's knob vector) with only the tier knobs sweeping: the tier
   consumes the hotmap/EC cold evidence, so comparing capacities under a
   fixed collector isolates the tiering effect. *)
let tier_config ~capacity ~lat_far ~promote =
  Config.make ~hotness:true ~coldpage:true ~cold_confidence:1.0
    ~lazy_relocate:true ~tier_capacity_pages:capacity ~lat_far
    ~tier_promote:promote ()

(* ------------------------------------------------------------------ *)
(* Workload families                                                   *)
(* ------------------------------------------------------------------ *)

let layout = Layout.scaled ~small_page:(64 * 1024)

(* The serving workload as a plain runner experiment (Fig_serve wraps it
   in SLO analysis, which the tier figure does not need). *)
let serve_experiment ?(shard_domains = 0) ~scale () =
  let params = Fig_serve.scaled_params ~scale in
  let heap = Fig_serve.scaled_heap ~scale in
  {
    Runner.name = "serve";
    key =
      Printf.sprintf "tier-serve;%s;heap=%d;trig=%h%s"
        (Serve.params_key { params with Serve.seed = 0 })
        heap 0.10
        (Runner.em_tag shard_domains);
    make_vm =
      (fun config ->
        Vm.create ~layout ~machine_config:Scaled_machine.config
          ~mutators:params.Serve.mutators ~shard_domains ~trigger:0.10
          ~config ~max_heap:heap ());
    workload =
      (fun vm ~run -> ignore (Serve.run vm { params with Serve.seed = run }));
  }

(* The synthetic family carries a 4x cold population, so there genuinely
   are cold pages for the collector to demote; the DaCapo sims and the
   serving tier bring their natural hot/cold skew. *)
let families ?(shard_domains = 0) ~scale () =
  [
    ("synthetic", Fig_synthetic.experiment ~cold_ratio:4 ~shard_domains ~scale ());
    ("h2", Fig_dacapo.h2_experiment ~shard_domains ~scale ());
    ("tradebeans", Fig_dacapo.tradebeans_experiment ~shard_domains ~scale ());
    ("serve", serve_experiment ~shard_domains ~scale ());
  ]

(* ------------------------------------------------------------------ *)
(* Payload codec: what a job stores under its fingerprint.             *)
(* ------------------------------------------------------------------ *)

type outcome = {
  wall : float;
  loads : float;
  llc_misses : float;
  far_loads : float;
  far_peak : int;  (** {!Tier.peak_bytes} — the DRAM-footprint saving *)
  demoted : int;
  promoted : int;
}

let magic = "hcsgc-tier-metrics 1"

let outcome_to_string o =
  Printf.sprintf "%s\n%h %h %h %h %d %d %d\n" magic o.wall o.loads
    o.llc_misses o.far_loads o.far_peak o.demoted o.promoted

let outcome_of_string s =
  match String.split_on_char '\n' s with
  | m :: line :: _ when m = magic -> (
      match String.split_on_char ' ' line with
      | [ w; lo; ll; fl; fp; d; p ] -> (
          match
            ( float_of_string_opt w,
              float_of_string_opt lo,
              float_of_string_opt ll,
              float_of_string_opt fl,
              int_of_string_opt fp,
              int_of_string_opt d,
              int_of_string_opt p )
          with
          | ( Some wall,
              Some loads,
              Some llc_misses,
              Some far_loads,
              Some far_peak,
              Some demoted,
              Some promoted ) ->
              Some
                {
                  wall;
                  loads;
                  llc_misses;
                  far_loads;
                  far_peak;
                  demoted;
                  promoted;
                }
          | _ -> None)
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let fingerprint ~verify (exp : Runner.experiment) config run =
  Fingerprint.make
    ~experiment:("ftier;" ^ exp.Runner.key)
    ~config:(Runner.config_value_key config)
    ~run ~verify

let cost_key (exp : Runner.experiment) config =
  "ftier;" ^ exp.Runner.key ^ "#" ^ Runner.config_value_key config

let compute ~verify (exp : Runner.experiment) config run =
  let vm = exp.Runner.make_vm config in
  if verify then Vm.enable_verification vm;
  exp.Runner.workload vm ~run;
  Vm.finish vm;
  let m = Runner.collect vm in
  let far_peak =
    match Vm.tier vm with Some t -> Tier.peak_bytes t | None -> 0
  in
  {
    wall = m.Runner.wall;
    loads = m.Runner.loads;
    llc_misses = m.Runner.llc_misses;
    far_loads = m.Runner.far_loads;
    far_peak;
    demoted = m.Runner.pages_demoted;
    promoted = m.Runner.pages_promoted;
  }

let try_cached (c : Runner.cache) fp =
  if c.Runner.refresh then None
  else
    match Result_store.find c.Runner.store fp with
    | None -> None
    | Some payload -> (
        match outcome_of_string payload with
        | Some o -> Some o
        | None ->
            Result_store.note_invalid c.Runner.store;
            None)

let sweep ?(capacities = default_capacities) ?(lat_far = default_lat_far)
    ?(promote = true) ?(runs = 3) ?(jobs = 1) ?(verify = false) ?cache
    ?(shard_domains = 0) ?(scale = 1) ?(progress = fun _ -> ()) () =
  let fams = families ~shard_domains ~scale () in
  let job_arr =
    Array.of_list
      (List.concat_map
         (fun (fam, exp) ->
           List.concat_map
             (fun cap ->
               let config = tier_config ~capacity:cap ~lat_far ~promote in
               List.init runs (fun run -> (fam, exp, cap, config, run)))
             capacities)
         fams)
  in
  let n = Array.length job_arr in
  let reporter = Reporter.create ~emit:progress () in
  (* Hits resolve up front on the calling domain (store reads stay
     single-domain); misses reach the pool hits-first, so no worker waits
     behind instant jobs. *)
  let cached =
    match cache with
    | Some c ->
        Array.map
          (fun (_, exp, _, config, run) ->
            try_cached c (fingerprint ~verify exp config run))
          job_arr
    | None -> Array.make n None
  in
  let hit_idx, miss_idx =
    List.init n Fun.id |> List.partition (fun i -> Option.is_some cached.(i))
  in
  let order = Array.of_list (hit_idx @ miss_idx) in
  let run_one i =
    match cached.(i) with
    | Some o -> o
    | None ->
        let fam, exp, cap, config, run = job_arr.(i) in
        if run = 0 then
          Reporter.sayf reporter "tier: %s cap=%d pages (lat_far=%d)" fam cap
            lat_far;
        let t0 = Unix.gettimeofday () in
        let o = compute ~verify exp config run in
        (match cache with
        | None -> ()
        | Some c ->
            Result_store.add c.Runner.store
              (fingerprint ~verify exp config run)
              ~cost_key:(cost_key exp config)
              ~cost:(Unix.gettimeofday () -. t0)
              (outcome_to_string o));
        o
  in
  let outcomes =
    Pool.with_pool ~jobs (fun pool ->
        Pool.map_array_in_order pool ~order run_one (Array.init n Fun.id))
  in
  (* Regroup the flat job-order outcome array: families in order, then
     capacities in order, then runs. *)
  let per_fam = List.length capacities * runs in
  List.mapi
    (fun fi (fam, _) ->
      ( fam,
        List.mapi
          (fun ci cap ->
            (cap, Array.sub outcomes ((fi * per_fam) + (ci * runs)) runs))
          capacities ))
    fams

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let bootstrap_seed = 42

let mean f (os : outcome array) =
  Array.fold_left (fun acc o -> acc +. f o) 0.0 os
  /. float_of_int (Array.length os)

let figure ?(runs = 3) ?(scale = 1) ?(jobs = 1) ?verify ?cache
    ?(shard_domains = 0) ?(capacities = default_capacities)
    ?(lat_far = default_lat_far) ?(promote = true) fmt =
  let results =
    sweep ~capacities ~lat_far ~promote ~runs ~jobs ?verify ?cache
      ~shard_domains ~scale
      ~progress:(fun msg -> Format.eprintf "[bench] %s@." msg)
      ()
  in
  Format.fprintf fmt "=== Far-memory tier — hotness-driven page tiering ===@.";
  Format.fprintf fmt
    "collector config h+cp+cc1.0+lz%s; far latency %dc; capacities in 64 KiB \
     pages; expectation: far hit rate and DRAM savings grow with capacity \
     while the wall-time penalty stays bounded by the cold-page demotion \
     policy (only pages with no hot evidence move far)@.@."
    (if promote then "" else " (promotion off)")
    lat_far;
  List.iter
    (fun (fam, rows) ->
      let base_wall =
        match List.assoc_opt 0 rows with
        | Some os -> mean (fun o -> o.wall) os
        | None -> (
            match rows with
            | (_, os) :: _ -> mean (fun o -> o.wall) os
            | [] -> 0.0)
      in
      Format.fprintf fmt "--- %s ---@." fam;
      Render.table fmt
        ~headers:
          [ "cap"; "wall [95% CI]"; "dwall"; "far hit%"; "far loads";
            "peak far KiB"; "demoted"; "promoted" ]
        ~rows:
          (List.map
             (fun (cap, os) ->
               let est =
                 Bootstrap.estimate ~seed:bootstrap_seed
                   (Array.map (fun o -> o.wall) os)
               in
               let wall = mean (fun o -> o.wall) os in
               let llc = mean (fun o -> o.llc_misses) os in
               let far = mean (fun o -> o.far_loads) os in
               [
                 string_of_int cap;
                 Render.estimate_cell est;
                 (if base_wall > 0.0 then
                    Printf.sprintf "%+.1f%%"
                      (100.0 *. (wall -. base_wall) /. base_wall)
                  else "-");
                 (if llc > 0.0 then
                    Printf.sprintf "%.1f" (100.0 *. far /. llc)
                  else "-");
                 Printf.sprintf "%.0f" far;
                 Printf.sprintf "%.0f"
                   (mean (fun o -> float_of_int o.far_peak) os /. 1024.0);
                 Printf.sprintf "%.1f" (mean (fun o -> float_of_int o.demoted) os);
                 Printf.sprintf "%.1f"
                   (mean (fun o -> float_of_int o.promoted) os);
               ])
             rows);
      Format.fprintf fmt "@.")
    results
