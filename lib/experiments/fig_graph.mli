(** Reproductions of the JGraphT figures (§4.5): connected components (CC)
    and Bron–Kerbosch maximal cliques (MC) on generator stand-ins for the
    LAW uk / enwiki datasets (Table 3).

    [scale] divides Table 3's node/edge counts (default 4 for CC, 2 for MC)
    so a full 19-configuration sweep stays minutes-scale.  [cache] and
    [scheduling] are the incremental-sweep knobs of
    {!Runner.run_configs}; they never change output bytes.
    [shard_domains] selects the VM execution model (0 = inline interleave,
    [n >= 1] = epoch-sharded, byte-identical at any [n >= 1]; see
    {!Hcsgc_runtime.Vm.create}). *)

val fig7 :
  ?runs:int -> ?scale:int -> ?jobs:int -> ?shard_domains:int ->
  ?cache:Runner.cache -> ?scheduling:[ `Cost | `Fifo ] ->
  Format.formatter -> unit
(** CC on uk. *)

val fig8 :
  ?runs:int -> ?scale:int -> ?jobs:int -> ?shard_domains:int ->
  ?cache:Runner.cache -> ?scheduling:[ `Cost | `Fifo ] ->
  Format.formatter -> unit
(** CC on enwiki. *)

val fig9 :
  ?runs:int -> ?scale:int -> ?jobs:int -> ?shard_domains:int ->
  ?cache:Runner.cache -> ?scheduling:[ `Cost | `Fifo ] ->
  Format.formatter -> unit
(** MC on uk. *)

val fig10 :
  ?runs:int -> ?scale:int -> ?jobs:int -> ?shard_domains:int ->
  ?cache:Runner.cache -> ?scheduling:[ `Cost | `Fifo ] ->
  Format.formatter -> unit
(** MC on enwiki. *)

val cc_experiment :
  ?shard_domains:int ->
  dataset:Hcsgc_graph.Dataset.t ->
  scale:int ->
  unit ->
  Runner.experiment

val mc_experiment :
  ?max_expansions:int ->
  ?shard_domains:int ->
  dataset:Hcsgc_graph.Dataset.t ->
  scale:int ->
  unit ->
  Runner.experiment
