(** Running a workload across Table 2's configurations, collecting the
    metrics §4.2 plots: execution time, cache statistics and GC statistics.

    Since the execution-engine refactor this module separates job
    {e description} from job {e execution}: a sweep is first expanded into
    an explicit list of {!job}s — one per (configuration, repetition) pair,
    each independent and seed-deterministic — which then either run
    in-process ([~jobs:1], the default) or fan out across a
    {!Hcsgc_exec.Pool} of domains ([~jobs:n]).  Results are aggregated in
    job order regardless of completion order, so parallel sweeps are
    bit-identical to sequential ones. *)

module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config

type run_metrics = {
  wall : float;  (** simulated execution time (cycles) *)
  loads : float;  (** whole-process demand loads *)
  l1_misses : float;
  llc_misses : float;
  mut_l1_misses : float;  (** mutator-core-only (see DESIGN.md) *)
  mut_llc_misses : float;
  gc_cycle_count : int;
  ec_median : float;  (** median small pages in EC per cycle *)
  reloc_mut : int;
  reloc_gc : int;
  heap_samples : (int * int) list;  (** (wall, used bytes) *)
}

val collect : Vm.t -> run_metrics
(** Snapshot a finished VM. *)

type experiment = {
  name : string;
  make_vm : Config.t -> Vm.t;  (** fresh VM per run *)
  workload : Vm.t -> run:int -> unit;  (** [run] indexes the repetition *)
}

type job = { exp : experiment; config_id : int; run : int }
(** One unit of work: repetition [run] of [exp] under Table 2
    configuration [config_id].  Jobs share nothing — {!execute} builds a
    fresh VM — so any subset may run concurrently. *)

val jobs_of : ?config_ids:int list -> runs:int -> experiment -> job list
(** Expand a sweep into its jobs, in deterministic order: configurations
    in the given order (default: all 19 of Table 2), repetitions 0..runs-1
    within each. *)

val execute : ?verify:bool -> job -> run_metrics
(** Run one job to completion: fresh VM, workload, {!Vm.finish},
    {!collect}.  Pure function of the job (workloads are seeded by
    [run]); safe to call from any domain.  [verify] (default [false])
    attaches the {!Hcsgc_verify.Invariants} heap sanitizer to the job's VM
    ({!Vm.enable_verification}); verification reads state only, so verified
    metrics are bit-identical to unverified ones. *)

val profile :
  ?sample_interval:int ->
  ?verify:bool ->
  job ->
  run_metrics * Hcsgc_telemetry.Recorder.t
(** {!execute} with telemetry attached ({!Vm.enable_telemetry}):
    additionally returns the job's span/counter recorder, ready for the
    {!Hcsgc_telemetry} exporters.  Telemetry charges no simulated cycles,
    so the metrics equal an unprofiled {!execute} of the same job; the
    recorder is domain-local, so profiled jobs may be fanned across a
    {!Hcsgc_exec.Pool} and still produce byte-identical traces at any
    [--jobs] setting. *)

val run_configs :
  ?config_ids:int list ->
  ?progress:(string -> unit) ->
  ?jobs:int ->
  ?verify:bool ->
  runs:int ->
  experiment ->
  (int * run_metrics array) list
(** Execute [runs] repetitions of the experiment under each requested
    Table 2 configuration (default: all 19).  Deterministic: repetition [i]
    uses the same workload seed under every configuration, mirroring the
    paper's N VM invocations per configuration.

    [verify] (default false) runs every job under the heap sanitizer (see
    {!execute}); each VM gets its own verifier, so verified sweeps fan out
    across domains unchanged.

    [jobs] (default 1) sets the degree of parallelism.  [~jobs:1] runs
    everything in-process on the calling domain, exactly as before the
    engine existed.  [~jobs:n] distributes the (configuration, run) jobs
    over [n] worker domains; results are still aggregated in job order,
    so the returned metrics are bit-identical to the sequential run.

    {b Thread safety of [progress]:} calls are serialized through a
    {!Hcsgc_exec.Reporter}, so [progress] never runs concurrently with
    itself and each message arrives whole — but under [~jobs:n] it is
    invoked from worker domains in scheduling order, one message per
    configuration (emitted by whichever of the configuration's jobs starts
    first).  It must not assume it runs on the calling domain, and must
    not itself call back into the runner. *)
