(** Running a workload across Table 2's configurations, collecting the
    metrics §4.2 plots: execution time, cache statistics and GC statistics. *)

module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config

type run_metrics = {
  wall : float;  (** simulated execution time (cycles) *)
  loads : float;  (** whole-process demand loads *)
  l1_misses : float;
  llc_misses : float;
  mut_l1_misses : float;  (** mutator-core-only (see DESIGN.md) *)
  mut_llc_misses : float;
  gc_cycle_count : int;
  ec_median : float;  (** median small pages in EC per cycle *)
  reloc_mut : int;
  reloc_gc : int;
  heap_samples : (int * int) list;  (** (wall, used bytes) *)
}

val collect : Vm.t -> run_metrics
(** Snapshot a finished VM. *)

type experiment = {
  name : string;
  make_vm : Config.t -> Vm.t;  (** fresh VM per run *)
  workload : Vm.t -> run:int -> unit;  (** [run] indexes the repetition *)
}

val run_configs :
  ?config_ids:int list ->
  ?progress:(string -> unit) ->
  runs:int ->
  experiment ->
  (int * run_metrics array) list
(** Execute [runs] repetitions of the experiment under each requested
    Table 2 configuration (default: all 19).  Deterministic: repetition [i]
    uses the same workload seed under every configuration, mirroring the
    paper's N VM invocations per configuration. *)
