(** Running a workload across Table 2's configurations, collecting the
    metrics §4.2 plots: execution time, cache statistics and GC statistics.

    Since the execution-engine refactor this module separates job
    {e description} from job {e execution}: a sweep is first expanded into
    an explicit list of {!job}s — one per (configuration, repetition) pair,
    each independent and seed-deterministic — which then either run
    in-process ([~jobs:1], the default) or fan out across a
    {!Hcsgc_exec.Pool} of domains ([~jobs:n]).  Results are aggregated in
    job order regardless of completion order, so parallel sweeps are
    bit-identical to sequential ones.

    Since the incremental-sweep layer, jobs are additionally
    {e content-addressed}: a {!Hcsgc_store.Fingerprint} of the experiment's
    parameter {!field:experiment.key}, the configuration knobs, the run
    seed and the verify flag (salted with
    {!Hcsgc_store.Fingerprint.code_version}) names each job's metrics, and
    an optional {!cache} serves repeats from a persistent
    {!Hcsgc_store.Result_store} instead of re-simulating.  Because jobs
    are bit-deterministic, a warm sweep is byte-identical to a cold one —
    the store only ever changes wall-clock time, never output. *)

module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config

type run_metrics = {
  wall : float;  (** simulated execution time (cycles) *)
  loads : float;  (** whole-process demand loads *)
  l1_misses : float;
  llc_misses : float;
  mut_l1_misses : float;  (** mutator-core-only (see DESIGN.md) *)
  mut_llc_misses : float;
  far_loads : float;  (** demand loads served by the far tier (0 if off) *)
  gc_cycle_count : int;
  ec_median : float;  (** median small pages in EC per cycle *)
  reloc_mut : int;
  reloc_gc : int;
  pages_demoted : int;  (** cold pages demoted to the far tier *)
  pages_promoted : int;  (** far pages promoted back to DRAM *)
  heap_samples : (int * int) list;  (** (wall, used bytes) *)
}

val collect : Vm.t -> run_metrics
(** Snapshot a finished VM. *)

type experiment = {
  name : string;  (** display name for progress lines and figure titles *)
  key : string;
      (** Stable {e parameter} key for content addressing: must spell out
          every workload knob that can change the metrics (element counts,
          scale, phase structure, heap size, dataset, …), unlike [name],
          which may omit detail.  Two experiments whose jobs could produce
          different metrics must have different keys; cosmetic renames
          should leave [key] unchanged so cached sweeps survive them. *)
  make_vm : Config.t -> Vm.t;  (** fresh VM per run *)
  workload : Vm.t -> run:int -> unit;  (** [run] indexes the repetition *)
}

val em_tag : int -> string
(** [em_tag shard_domains] is the key suffix encoding the {e execution
    model}: [";em=1"] when epoch-sharded ([shard_domains > 0]), [""] for
    the classic inline interleave.  The shard {e count} must never reach a
    key or fingerprint — every [shard_domains >= 1] is byte-identical, so
    cached results are shared across counts; the two execution models do
    differ and must not share entries. *)

type job = { exp : experiment; config_id : int; run : int }
(** One unit of work: repetition [run] of [exp] under Table 2
    configuration [config_id].  Jobs share nothing — {!execute} builds a
    fresh VM — so any subset may run concurrently. *)

val jobs_of : ?config_ids:int list -> runs:int -> experiment -> job list
(** Expand a sweep into its jobs, in deterministic order: configurations
    in the given order (default: all 19 of Table 2), repetitions 0..runs-1
    within each. *)

(** {2 The result store} *)

type cache = {
  store : Hcsgc_store.Result_store.t;
  refresh : bool;
      (** Ignore existing entries: recompute every job and overwrite its
          entry (the [--refresh] CLI flag). *)
}

val cache : ?refresh:bool -> dir:string -> unit -> cache
(** Open (creating if needed) the result store at [dir].  [refresh]
    defaults to [false]. *)

val default_cache_dir : string
(** ["_hcsgc_cache"] — the CLIs' default store location. *)

val config_key : int -> string
(** Lossless rendering of a Table 2 configuration's knob {e values} (not
    its id — ids 0 and 1 share a knob vector, hence a key), the
    [~config] component of every job fingerprint.  Exposed for
    experiments that store custom payloads (e.g. the serving tier's SLO
    reports) under the same addressing scheme. *)

val config_value_key : Config.t -> string
(** The same lossless knob rendering for an arbitrary configuration value
    (not necessarily a Table 2 row) — what experiments sweeping custom
    knob vectors (e.g. the far-tier capacity sweep) fingerprint with. *)

val fingerprint : verify:bool -> job -> Hcsgc_store.Fingerprint.t
(** The job's content address.  Configuration knobs enter the fingerprint
    by {e value}, not by Table 2 id, so ids 0 and 1 (identical knob
    vectors) intentionally share an entry. *)

val cost_key : job -> string
(** The job's cost-model key: one per (experiment key, knob vector) —
    the granularity at which durations are predictable. *)

val metrics_to_string : run_metrics -> string
(** Versioned, lossless text serialization ([%h] floats); the payload
    stored under the job's fingerprint. *)

val metrics_of_string : string -> run_metrics option
(** Strict inverse of {!metrics_to_string}; [None] on any malformation.
    Round-trips every value bit-exactly. *)

(** {2 Execution} *)

val execute : ?verify:bool -> ?cache:cache -> job -> run_metrics
(** Run one job to completion: fresh VM, workload, {!Vm.finish},
    {!collect}.  Pure function of the job (workloads are seeded by
    [run]); safe to call from any domain.  [verify] (default [false])
    attaches the {!Hcsgc_verify.Invariants} heap sanitizer to the job's VM
    ({!Vm.enable_verification}); verification reads state only, so verified
    metrics are bit-identical to unverified ones.

    With [cache], the job's fingerprint is consulted first: a valid entry
    is decoded and returned without simulating; a miss (including a
    corrupt or undecodable entry) simulates, then stores the metrics and
    the measured duration.  Cached and computed results are bit-identical
    by the determinism guarantee above. *)

val profile :
  ?sample_interval:int ->
  ?verify:bool ->
  ?cache:cache ->
  job ->
  run_metrics * Hcsgc_telemetry.Recorder.t
(** {!execute} with telemetry attached ({!Vm.enable_telemetry}):
    additionally returns the job's span/counter recorder, ready for the
    {!Hcsgc_telemetry} exporters.  Telemetry charges no simulated cycles,
    so the metrics equal an unprofiled {!execute} of the same job; the
    recorder is domain-local, so profiled jobs may be fanned across a
    {!Hcsgc_exec.Pool} and still produce byte-identical traces at any
    [--jobs] setting.

    A profiled run always simulates (the trace cannot come from the
    store), but with [cache] it {e stores} its metrics afterwards, seeding
    later sweeps. *)

val run_configs :
  ?config_ids:int list ->
  ?progress:(string -> unit) ->
  ?jobs:int ->
  ?verify:bool ->
  ?cache:cache ->
  ?scheduling:[ `Cost | `Fifo ] ->
  runs:int ->
  experiment ->
  (int * run_metrics array) list
(** Execute [runs] repetitions of the experiment under each requested
    Table 2 configuration (default: all 19).  Deterministic: repetition [i]
    uses the same workload seed under every configuration, mirroring the
    paper's N VM invocations per configuration.

    [verify] (default false) runs every job under the heap sanitizer (see
    {!execute}); each VM gets its own verifier, so verified sweeps fan out
    across domains unchanged.

    [jobs] (default 1) sets the degree of parallelism.  [~jobs:1] runs
    everything in-process on the calling domain, exactly as before the
    engine existed.  [~jobs:n] distributes the (configuration, run) jobs
    over [n] worker domains; results are still aggregated in job order,
    so the returned metrics are bit-identical to the sequential run.

    [cache] makes the sweep incremental: hits are resolved up front on the
    calling domain, only misses are submitted to the pool, and every
    computed job is stored (entry + duration) on completion.  [scheduling]
    (default [`Cost]) submits misses longest-estimated-first using the
    store's cost model ({!Hcsgc_store.Scheduler}); [`Fifo] keeps the
    expansion order (the pre-scheduler baseline, kept measurable for
    benchmarking).  With no [cache], or an empty cost model, [`Cost]
    degrades to exactly FIFO.  Neither caching nor scheduling changes a
    single output byte — results are woven back in job order either way.

    {b Thread safety of [progress]:} calls are serialized through a
    {!Hcsgc_exec.Reporter}, so [progress] never runs concurrently with
    itself and each message arrives whole — but under [~jobs:n] it is
    invoked from worker domains in scheduling order, one message per
    {e computing} configuration (emitted by whichever of the
    configuration's jobs starts first; fully cached configurations are
    not announced).  It must not assume it runs on the calling domain,
    and must not itself call back into the runner. *)
