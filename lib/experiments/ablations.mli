(** Ablations of the design choices DESIGN.md calls out — not figures from
    the paper, but checks that the reproduction's mechanisms carry the load
    the paper attributes to them.

    - {!prefetcher}: HCSGC's access-order layouts are claimed to be
      "prefetching friendly" (§1, §3); with the stream prefetcher disabled,
      most of the big-EC+lazy speedup should vanish.
    - {!tlb}: packing hot objects onto fewer pages also reduces dTLB
      pressure (the page-locality angle of Chen et al. discussed in §5).
    - {!autotuner}: the §4.8 feedback loop should land within the ballpark
      of the best hand-tuned COLDCONFIDENCE without knowing it in advance.

    - {!page_size}: §3.4/§4.8 suggest a finer page size class would allow
      finer-grained relocation; sweeping the (scaled) page size shows the
      granularity effect directly. *)

val prefetcher : ?runs:int -> ?scale:int -> ?jobs:int -> Format.formatter -> unit
val tlb : ?runs:int -> ?scale:int -> ?jobs:int -> Format.formatter -> unit
val autotuner : ?runs:int -> ?scale:int -> ?jobs:int -> Format.formatter -> unit
val page_size : ?runs:int -> ?scale:int -> ?jobs:int -> Format.formatter -> unit
