(** The benches' cache hierarchy.

    Benchmark working sets are scaled down 8-20× from the paper's, so the
    machine is scaled proportionally (L1 8 KB / L2 64 KB / LLC 512 KB, same
    line size, associativities and latencies) to preserve the relation
    "hot working set ≫ LLC" on which the paper's locality wins depend. *)

val config : Hcsgc_memsim.Hierarchy.config

val saturated_note : string
(** One-line description used in reports for the Fig. 6 single-core setup. *)
