module Vm = Hcsgc_runtime.Vm
module Layout = Hcsgc_heap.Layout
module Synthetic = Hcsgc_workloads.Synthetic

let layout = Layout.scaled ~small_page:(64 * 1024)

let experiment ?(phases = 1) ?(cold_ratio = 0) ?(saturated = false)
    ?(heap_mult = 5) ?(shard_domains = 0) ~scale () =
  let base = Synthetic.default in
  let elements = max 1_000 (base.Synthetic.elements / scale) in
  let params =
    {
      base with
      Synthetic.elements;
      accesses_per_loop = max 1_000 (base.Synthetic.accesses_per_loop / scale);
      phases;
      loops = (if phases = 1 then base.Synthetic.loops else 12 * phases);
      cold_elements = cold_ratio * elements;
    }
  in
  (* Heap: a fixed multiple of the live set (elements + cold array + slot
     arrays), so that GC-cycle pacing per loop is scale-invariant — the
     figure's shape depends on the ratio of mutator accesses to relocation
     work per cycle, which this keeps constant across --scale settings. *)
  let live_bytes = (1 + cold_ratio) * elements * 48 in
  let max_heap = max (4 * 1024 * 1024) (heap_mult * live_bytes) in
  {
    Runner.name =
      Printf.sprintf "synthetic(phases=%d,cold=%dx%s)" phases cold_ratio
        (if saturated then ",saturated" else "");
    (* Content-addressing key: every derived workload parameter, so e.g.
       two --scale settings never share a store entry even though they
       share a display name. *)
    key =
      Printf.sprintf
        "synthetic;el=%d;apl=%d;phases=%d;loops=%d;cold=%d;sat=%b;heap=%d%s"
        elements params.Synthetic.accesses_per_loop phases
        params.Synthetic.loops params.Synthetic.cold_elements saturated
        max_heap
        (Runner.em_tag shard_domains);
    make_vm =
      (fun config ->
        Vm.create ~layout ~machine_config:Scaled_machine.config ~saturated
          ~shard_domains ~config ~max_heap ());
    workload =
      (fun vm ~run ->
        ignore (Synthetic.run vm { params with Synthetic.seed = run }));
  }

let render fmt ~title ~expectation ~runs ~jobs ?cache ?scheduling exp =
  let results =
    Runner.run_configs ~runs ~jobs ?cache ?scheduling
      ~progress:(fun msg -> Format.eprintf "[bench] %s@." msg)
      exp
  in
  Report.figure fmt ~title ~expectation results

let fig4 ?(runs = 5) ?(scale = 1) ?(jobs = 1) ?(shard_domains = 0) ?cache
    ?scheduling fmt =
  render fmt ~title:"Fig. 4 — synthetic, single phase" ?cache ?scheduling
    ~expectation:
      "largest speedups for configs 4/10/16/18 (big EC + lazy), next 3/17, \
       some improvement 7/13, none for 2/5/8/11/14; large L1/LLC miss \
       reductions for improving configs; loads increase but are cache-served"
    ~runs ~jobs
    (experiment ~shard_domains ~scale ())

let fig5 ?(runs = 5) ?(scale = 1) ?(jobs = 1) ?(shard_domains = 0) ?cache
    ?scheduling fmt =
  render fmt ~title:"Fig. 5 — synthetic, three phases" ?cache ?scheduling
    ~expectation:
      "same shape as Fig. 4: HCSGC adapts to phase changes (per-phase stable \
       access orders are re-captured after each change)"
    ~runs ~jobs
    (experiment ~phases:3 ~shard_domains ~scale ())

(* Fig. 6 is the saturated single-core experiment; sharded execution is
   incompatible with (and pointless on) one core, so there is no
   [?shard_domains] here and the figure CLI skips the flag for it. *)
let fig6 ?(runs = 3) ?(scale = 2) ?(jobs = 1) ?cache ?scheduling fmt =
  render fmt ~title:"Fig. 6 — ample relocation, saturated single core"
    ?cache ?scheduling
    ~expectation:
      "large overhead for RELOCATEALLSMALLPAGES configs 3/4/17/18 (copying \
       the 10x cold population on the critical path); COLDCONFIDENCE configs \
       7/10/13/16 still improve"
    ~runs ~jobs
    (* The tighter heap paces cycles frequently, so the 10x cold population
       is re-evacuated repeatedly — the overhead Fig. 6 is about. *)
    (experiment ~cold_ratio:10 ~saturated:true ~heap_mult:2 ~scale ())
