(** Reproductions of the DaCapo figures (§4.6): {!fig11} tradebeans (expected
    ≈ flat — objects die too young for relocation to help) and {!fig12} h2
    (expected 5–9 % improvements, hotness-tracking overhead < 2 %).
    [cache] and [scheduling] are the incremental-sweep knobs of
    {!Runner.run_configs}; they never change output bytes. *)

val fig11 :
  ?runs:int -> ?scale:int -> ?jobs:int -> ?cache:Runner.cache ->
  ?scheduling:[ `Cost | `Fifo ] -> Format.formatter -> unit

val fig12 :
  ?runs:int -> ?scale:int -> ?jobs:int -> ?cache:Runner.cache ->
  ?scheduling:[ `Cost | `Fifo ] -> Format.formatter -> unit

val tradebeans_experiment : scale:int -> Runner.experiment
val h2_experiment : scale:int -> Runner.experiment
