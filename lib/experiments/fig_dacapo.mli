(** Reproductions of the DaCapo figures (§4.6): {!fig11} tradebeans (expected
    ≈ flat — objects die too young for relocation to help) and {!fig12} h2
    (expected 5–9 % improvements, hotness-tracking overhead < 2 %).
    [cache] and [scheduling] are the incremental-sweep knobs of
    {!Runner.run_configs}; they never change output bytes.
    [shard_domains] selects the VM execution model (0 = inline interleave,
    [n >= 1] = epoch-sharded, byte-identical at any [n >= 1]; see
    {!Hcsgc_runtime.Vm.create}). *)

val fig11 :
  ?runs:int -> ?scale:int -> ?jobs:int -> ?shard_domains:int ->
  ?cache:Runner.cache -> ?scheduling:[ `Cost | `Fifo ] ->
  Format.formatter -> unit

val fig12 :
  ?runs:int -> ?scale:int -> ?jobs:int -> ?shard_domains:int ->
  ?cache:Runner.cache -> ?scheduling:[ `Cost | `Fifo ] ->
  Format.formatter -> unit

val tradebeans_experiment :
  ?shard_domains:int -> scale:int -> unit -> Runner.experiment

val h2_experiment :
  ?shard_domains:int -> scale:int -> unit -> Runner.experiment
