module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Layout = Hcsgc_heap.Layout
module Serve = Hcsgc_serve.Serve
module Slo = Hcsgc_serve.Slo
module Arrival = Hcsgc_serve.Arrival
module Keydist = Hcsgc_workloads.Keydist
module Analyzer = Hcsgc_telemetry.Analyzer
module Pool = Hcsgc_exec.Pool
module Reporter = Hcsgc_exec.Reporter
module Fingerprint = Hcsgc_store.Fingerprint
module Result_store = Hcsgc_store.Result_store
module Bootstrap = Hcsgc_stats.Bootstrap
module Render = Hcsgc_stats.Render

let layout = Layout.scaled ~small_page:(64 * 1024)

(* Tight enough that the default workload's update churn paces several GC
   cycles through the run (the live set is ~3 MiB), so the tail actually
   contains pause stalls. *)
let max_heap = 8 * 1024 * 1024
let trigger = 0.10

let default_configs = [ 0; 4; 16; 18 ]
let default_slo = 5 * Slo.cycles_per_us

type outcome = {
  report : Slo.report;
  histogram : int array;
  checksum : int;
  metrics : Runner.run_metrics;
}

(* ------------------------------------------------------------------ *)
(* Payload codec: what a job stores under its fingerprint.             *)
(* ------------------------------------------------------------------ *)

let magic = "hcsgc-serve-metrics 1"

let outcome_to_string o =
  String.concat "\n"
    [
      magic;
      Slo.to_line o.report;
      Slo.histogram_to_string o.histogram;
      string_of_int o.checksum;
      Runner.metrics_to_string o.metrics;
    ]

let outcome_of_string s =
  match String.split_on_char '\n' s with
  | m :: slo_line :: hist :: cs :: rest when m = magic -> (
      let histogram =
        String.split_on_char ' ' hist
        |> List.fold_left
             (fun acc tok ->
               match (acc, int_of_string_opt tok) with
               | Some acc, Some n -> Some (n :: acc)
               | _ -> None)
             (Some [])
        |> Option.map (fun l -> Array.of_list (List.rev l))
      in
      match
        ( Slo.of_line slo_line,
          histogram,
          int_of_string_opt cs,
          Runner.metrics_of_string (String.concat "\n" rest) )
      with
      | Ok report, Some histogram, Some checksum, Some metrics ->
          Some { report; histogram; checksum; metrics }
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Content addressing                                                  *)
(* ------------------------------------------------------------------ *)

let experiment_key ?(heap = max_heap) ~params ~shard_domains ~slo () =
  Printf.sprintf "%s;slo=%d;heap=%d;trig=%h%s"
    (Serve.params_key { params with Serve.seed = 0 })
    slo heap trigger
    (Runner.em_tag shard_domains)

let fingerprint ~key ~verify (id, run) =
  Fingerprint.make ~experiment:key ~config:(Runner.config_key id) ~run ~verify

let cost_key ~key id = key ^ "#" ^ Runner.config_key id

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let compute ~heap ~verify ~shard_domains ~slo ~params (id, run) =
  let vm =
    Vm.create ~layout ~machine_config:Scaled_machine.config
      ~mutators:params.Serve.mutators ~shard_domains ~trigger
      ~config:(Config.of_id id) ~max_heap:heap ()
  in
  if verify then Vm.enable_verification vm;
  let recorder = Vm.enable_telemetry vm in
  let r = Serve.run vm { params with Serve.seed = run } in
  Vm.finish vm;
  let report =
    Slo.analyze ~slo ~duration:params.Serve.duration
      ~pauses:(Analyzer.pause_intervals recorder)
      r
  in
  {
    report;
    histogram = Slo.histogram r.Serve.requests;
    checksum = r.Serve.checksum;
    metrics = Runner.collect vm;
  }

let try_cached (c : Runner.cache) fp =
  if c.Runner.refresh then None
  else
    match Result_store.find c.Runner.store fp with
    | None -> None
    | Some payload -> (
        match outcome_of_string payload with
        | Some o -> Some o
        | None ->
            Result_store.note_invalid c.Runner.store;
            None)

let sweep ?(config_ids = default_configs) ?(runs = 3) ?(jobs = 1)
    ?(verify = false) ?cache ?(shard_domains = 0) ?(slo = default_slo)
    ?(heap = max_heap) ?(progress = fun _ -> ()) ~params () =
  let key = experiment_key ~heap ~params ~shard_domains ~slo () in
  let job_arr =
    Array.of_list
      (List.concat_map
         (fun id -> List.init runs (fun run -> (id, run)))
         config_ids)
  in
  let n = Array.length job_arr in
  let reporter = Reporter.create ~emit:progress () in
  (* Hits are resolved up front on the calling domain (store reads stay
     single-domain); only misses reach the pool, hits-first submission so
     no worker waits behind instant jobs. *)
  let cached =
    match cache with
    | Some c ->
        Array.map (fun job -> try_cached c (fingerprint ~key ~verify job)) job_arr
    | None -> Array.make n None
  in
  let hit_idx, miss_idx =
    List.init n Fun.id |> List.partition (fun i -> Option.is_some cached.(i))
  in
  let order = Array.of_list (hit_idx @ miss_idx) in
  let run_one i =
    match cached.(i) with
    | Some o -> o
    | None ->
        let ((id, run) as job) = job_arr.(i) in
        if run = 0 then
          Reporter.sayf reporter "serve: config %d (%s)" id
            (Config.to_string (Config.of_id id));
        let t0 = Unix.gettimeofday () in
        let o = compute ~heap ~verify ~shard_domains ~slo ~params job in
        (match cache with
        | None -> ()
        | Some c ->
            Result_store.add c.Runner.store (fingerprint ~key ~verify job)
              ~cost_key:(cost_key ~key id)
              ~cost:(Unix.gettimeofday () -. t0)
              (outcome_to_string o));
        o
  in
  let outcomes =
    Pool.with_pool ~jobs (fun pool ->
        Pool.map_array_in_order pool ~order run_one (Array.init n Fun.id))
  in
  List.mapi
    (fun i id -> (id, Array.sub outcomes (i * runs) runs))
    config_ids

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let scaled_params ~scale =
  let base = Serve.default in
  {
    base with
    Serve.keys = max 2_000 (base.Serve.keys / scale);
    duration = max 5_000_000 (base.Serve.duration / scale);
  }

(* The heap must shrink with the live set, or scaled-down runs never
   allocate past the GC trigger and the figure degenerates to a
   pause-free tail. 2 MiB floors the scaled live set comfortably. *)
let scaled_heap ~scale = max (2 * 1024 * 1024) (max_heap / scale)

let bootstrap_seed = 42

let figure ?(runs = 3) ?(scale = 1) ?(jobs = 1) ?verify ?cache
    ?(shard_domains = 0) ?(config_ids = default_configs) ?(slo = default_slo)
    fmt =
  let params = scaled_params ~scale in
  let results =
    sweep ~config_ids ~runs ~jobs ?verify ?cache ~shard_domains ~slo
      ~heap:(scaled_heap ~scale)
      ~progress:(fun msg -> Format.eprintf "[bench] %s@." msg)
      ~params ()
  in
  (* Human renderings for the header; the lossless [%h] spellings in
     [Keydist.spec_key]/[Arrival.process_key] are for content addresses. *)
  let dist_label = match params.Serve.dist with
    | Keydist.Uniform -> "uniform"
    | Keydist.Hotset { hot_keys; hot_bias } ->
        Printf.sprintf "hotset(%d keys, %g%%)" hot_keys (100.0 *. hot_bias)
    | Keydist.Zipfian { theta } -> Printf.sprintf "zipf %g" theta
    | Keydist.Sequential { stride } -> Printf.sprintf "sequential(+%d)" stride
  in
  let process_label = match params.Serve.process with
    | Arrival.Constant -> "constant"
    | Arrival.Diurnal { trough } -> Printf.sprintf "diurnal(trough %g)" trough
    | Arrival.Bursty { period; burst; mult } ->
        Printf.sprintf "bursty(%gx for %d/%d)" mult burst period
  in
  Format.fprintf fmt "=== Serving tier — tail latency under hotness ===@.";
  Format.fprintf fmt
    "open-loop KV serving (%s keys, %s arrivals, %.0f req/Mc, %d shards); \
     SLO %dc (%.0fus); expectation: hotness configs shift mutator-side \
     relocation into the serving path — compare p99.9 and pause-attributed \
     violations against ZGC@.@."
    dist_label process_label
    params.Serve.load params.Serve.mutators slo
    (float_of_int slo /. float_of_int Slo.cycles_per_us);
  let p999s (os : outcome array) =
    Array.map (fun o -> float_of_int o.report.Slo.p999) os
  in
  let estimates =
    List.map
      (fun (id, os) ->
        (id, Bootstrap.estimate ~seed:bootstrap_seed (p999s os)))
      results
  in
  let base_est = List.assoc_opt (List.hd config_ids) estimates in
  let meani f (os : outcome array) =
    Array.fold_left (fun acc o -> acc +. float_of_int (f o)) 0.0 os
    /. float_of_int (Array.length os)
  in
  Render.table fmt
    ~headers:
      [ "cfg"; "knobs"; "p50"; "p99"; "p99.9 [95% CI]"; "max"; "viol";
        "pause/service"; "req/Mc" ]
    ~rows:
      (List.map
         (fun (id, os) ->
           let est = List.assoc id estimates in
           [
             string_of_int id;
             Config.to_string (Config.of_id id);
             Printf.sprintf "%.0f" (meani (fun o -> o.report.Slo.p50) os);
             Printf.sprintf "%.0f" (meani (fun o -> o.report.Slo.p99) os);
             Render.estimate_cell est;
             Printf.sprintf "%.0f" (meani (fun o -> o.report.Slo.max_latency) os);
             Printf.sprintf "%.1f" (meani (fun o -> o.report.Slo.violations) os);
             Printf.sprintf "%.1f/%.1f"
               (meani (fun o -> o.report.Slo.pause_attributed) os)
               (meani (fun o -> o.report.Slo.service_attributed) os);
             Printf.sprintf "%.1f"
               (Array.fold_left (fun acc o -> acc +. o.report.Slo.throughput)
                  0.0 os
               /. float_of_int (Array.length os));
           ])
         results);
  (match base_est with
  | None -> ()
  | Some base ->
      let significant =
        List.filter_map
          (fun (id, est) ->
            if id <> List.hd config_ids && not (Bootstrap.overlaps est base)
            then Some id
            else None)
          estimates
      in
      Format.fprintf fmt
        "significant p99.9 vs config %d (non-overlapping 95%% CIs): %s@.@."
        (List.hd config_ids)
        (if significant = [] then "none"
         else String.concat ", " (List.map string_of_int significant)))
