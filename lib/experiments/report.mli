(** Text rendering of a figure's panels, following the layout of §4.2:
    execution time (box plot, bootstrap mean with 95 % CI, normalised
    delta), cache statistics normalised against ZGC, and GC statistics
    (cycles per run, median small pages in EC, relocation attribution),
    plus the baseline heap-usage-over-time series. *)

val figure :
  Format.formatter ->
  title:string ->
  expectation:string ->
  (int * Runner.run_metrics array) list ->
  unit
(** [figure fmt ~title ~expectation results] prints every panel.
    [expectation] states the paper's reported shape for eyeball comparison.
    Config 0 must be present; it is the normalisation baseline. *)

val heap_usage_series :
  Format.formatter -> max_heap:int -> (int * int) list -> unit
(** Render (wall, used-bytes) samples as a compact text series of usage
    percentages. *)

val wall_estimates :
  (int * Runner.run_metrics array) list ->
  (int * Hcsgc_stats.Bootstrap.estimate) list
(** Bootstrap estimates of execution time per configuration (exposed for
    tests and EXPERIMENTS.md generation). *)
