module H = Hcsgc_memsim.Hierarchy
module C = Hcsgc_memsim.Cache

let config =
  {
    H.default_config with
    H.l1 = { C.size_bytes = 8 * 1024; ways = 8; line_bytes = 64 };
    l2 = { C.size_bytes = 64 * 1024; ways = 8; line_bytes = 64 };
    llc = { C.size_bytes = 512 * 1024; ways = 16; line_bytes = 64 };
  }

let saturated_note =
  "single core (taskset equivalent): GC work competes with the mutator and \
   is charged to wall time"
