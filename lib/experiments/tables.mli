(** Reproductions of the paper's tables: {!t1} page size classes, {!t2} the
    19 tuning-knob configurations, {!t3} the graph datasets (with the
    generator stand-ins actually used). *)

val t1 : Format.formatter -> unit
val t2 : Format.formatter -> unit
val t3 : ?scale:int -> Format.formatter -> unit
