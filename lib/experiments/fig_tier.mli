(** The far-memory tier figure: far hit rate, simulated wall time and
    DRAM-footprint savings as tier capacity sweeps, across the synthetic,
    DaCapo-sim and serving workload families.

    Unlike the Table 2 figures, the sweep holds the collector fixed (the
    strongest hotness knob vector — the tier consumes the hotmap/EC cold
    evidence) and varies only the tier knobs, so capacity 0 is the
    tier-free baseline of each family.  Jobs are content-addressed like
    every other figure: the experiment key plus the full knob-vector
    rendering ({!Runner.config_value_key}) name each outcome, so warm
    re-renders are byte-identical to cold ones. *)

module Config = Hcsgc_core.Config

val default_capacities : int list
(** [[0; 4; 16; 64]] small pages of the scaled 64 KiB layout. *)

val default_lat_far : int

val tier_config : capacity:int -> lat_far:int -> promote:bool -> Config.t
(** The fixed hotness collector with the given tier knobs;
    [capacity = 0] disables tiering entirely. *)

val families :
  ?shard_domains:int ->
  scale:int ->
  unit ->
  (string * Runner.experiment) list
(** The four workload families, in figure order: [synthetic] (with a 4x
    cold population so demotion has targets), [h2], [tradebeans],
    [serve]. *)

type outcome = {
  wall : float;
  loads : float;
  llc_misses : float;
  far_loads : float;
  far_peak : int;  (** peak far-resident bytes — the DRAM saving *)
  demoted : int;
  promoted : int;
}

val outcome_to_string : outcome -> string
(** Versioned, lossless payload stored under the job's fingerprint. *)

val outcome_of_string : string -> outcome option
(** Strict inverse of {!outcome_to_string}; [None] on malformation. *)

val sweep :
  ?capacities:int list ->
  ?lat_far:int ->
  ?promote:bool ->
  ?runs:int ->
  ?jobs:int ->
  ?verify:bool ->
  ?cache:Runner.cache ->
  ?shard_domains:int ->
  ?scale:int ->
  ?progress:(string -> unit) ->
  unit ->
  (string * (int * outcome array) list) list
(** Run every (family, capacity, repetition) job, fanning misses over
    [jobs] domains; results are grouped per family then per capacity, in
    input order, and are byte-identical at any [jobs]/[shard_domains]
    setting and whether served from [cache] or computed. *)

val figure :
  ?runs:int ->
  ?scale:int ->
  ?jobs:int ->
  ?verify:bool ->
  ?cache:Runner.cache ->
  ?shard_domains:int ->
  ?capacities:int list ->
  ?lat_far:int ->
  ?promote:bool ->
  Format.formatter ->
  unit
(** Render the figure: one table per family — wall time (bootstrap CI),
    wall delta vs capacity 0, far hit rate (far loads / LLC misses),
    peak far residency and demotion/promotion counts per capacity. *)
