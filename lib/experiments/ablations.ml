module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Layout = Hcsgc_heap.Layout
module Synthetic = Hcsgc_workloads.Synthetic
module H = Hcsgc_memsim.Hierarchy
module Render = Hcsgc_stats.Render
module Bootstrap = Hcsgc_stats.Bootstrap
module Pool = Hcsgc_exec.Pool

let layout = Layout.scaled ~small_page:(64 * 1024)

let synth_params ~scale =
  let base = Synthetic.default in
  {
    base with
    Synthetic.elements = max 1_000 (base.Synthetic.elements / scale);
    accesses_per_loop = max 1_000 (base.Synthetic.accesses_per_loop / scale);
  }

let run_one ?(layout = layout) ~machine_config ~autotune ~config ~scale ~seed
    () =
  let params = synth_params ~scale in
  let max_heap = max (4 * 1024 * 1024) (5 * params.Synthetic.elements * 48) in
  let vm = Vm.create ~layout ~machine_config ~autotune ~config ~max_heap () in
  ignore (Synthetic.run vm { params with Synthetic.seed });
  Vm.finish vm;
  vm

(* Expand every (variant, seed) pair into one engine job, fan across the
   pool, then bootstrap each variant from its seed-ordered samples — the
   same ordered-aggregation determinism as Runner.run_configs. *)
let estimates ~jobs ~runs variants =
  let job_list =
    List.concat_map
      (fun (name, f) -> List.init runs (fun seed -> (name, f, seed)))
      variants
  in
  let samples =
    Pool.with_pool ~jobs (fun pool ->
        Pool.map_list pool (fun (_, f, seed) -> f ~seed) job_list)
  in
  List.mapi
    (fun i (name, _) ->
      let mine = List.filteri (fun j _ -> j / runs = i) samples in
      (name, Bootstrap.estimate ~seed:42 (Array.of_list mine)))
    variants

let table fmt ~title ~note rows =
  Format.fprintf fmt "=== Ablation — %s ===@.%s@.@." title note;
  let base =
    match rows with (_, e) :: _ -> e | [] -> invalid_arg "Ablations: no rows"
  in
  Render.table fmt
    ~headers:[ "variant"; "execution time [95% CI]"; "vs first row" ]
    ~rows:
      (List.map
         (fun (name, est) ->
           [
             name;
             Render.estimate_cell est;
             Render.pct (Bootstrap.relative_to ~baseline:base est);
           ])
         rows);
  Format.pp_print_newline fmt ()

let prefetcher ?(runs = 3) ?(scale = 2) ?(jobs = 1) fmt =
  let go ~prefetch ~config_id ~seed =
    let machine_config = { Scaled_machine.config with H.prefetch } in
    float_of_int
      (Vm.wall_cycles
         (run_one ~machine_config ~autotune:false
            ~config:(Config.of_id config_id) ~scale ~seed ()))
  in
  let rows =
    estimates ~jobs ~runs
      [
        ("zgc, prefetch on", go ~prefetch:true ~config_id:0);
        ("cfg 16, prefetch on", go ~prefetch:true ~config_id:16);
        ("zgc, prefetch off", go ~prefetch:false ~config_id:0);
        ("cfg 16, prefetch off", go ~prefetch:false ~config_id:16);
      ]
  in
  table fmt ~title:"hardware prefetching"
    ~note:
      "expectation: HCSGC's win shrinks substantially without the stream \
       prefetcher — access-order layout pays off mainly by making \
       prefetching effective"
    rows;
  (* Also print the win with/without prefetching explicitly. *)
  (match rows with
  | [ (_, on0); (_, on16); (_, off0); (_, off16) ] ->
      let win a b = Bootstrap.relative_to ~baseline:a b in
      Format.fprintf fmt "HCSGC win with prefetch: %s; without: %s@.@."
        (Render.pct (win on0 on16))
        (Render.pct (win off0 off16))
  | _ -> ())

let tlb ?(runs = 3) ?(scale = 2) ?(jobs = 1) fmt =
  let go ~config_id ~seed =
    let machine_config = { Scaled_machine.config with H.tlb = true } in
    let vm =
      run_one ~machine_config ~autotune:false ~config:(Config.of_id config_id)
        ~scale ~seed ()
    in
    float_of_int (Vm.wall_cycles vm)
  in
  table fmt ~title:"dTLB pressure"
    ~note:
      "expectation: with the dTLB model on, HCSGC's packing of hot objects \
       onto fewer pages also cuts page walks (the page-locality effect)"
    (estimates ~jobs ~runs
       [
         ("zgc, tlb on", go ~config_id:0);
         ("cfg 16, tlb on", go ~config_id:16);
       ])

let autotuner ?(runs = 3) ?(scale = 2) ?(jobs = 1) fmt =
  let fixed cc ~seed =
    let config =
      if cc = 0.0 then Config.make ~hotness:true ~lazy_relocate:true ()
      else Config.make ~hotness:true ~cold_confidence:cc ~lazy_relocate:true ()
    in
    float_of_int
      (Vm.wall_cycles
         (run_one ~machine_config:Scaled_machine.config ~autotune:false ~config
            ~scale ~seed ()))
  in
  let tuned ~seed =
    let config = Config.make ~hotness:true ~lazy_relocate:true () in
    float_of_int
      (Vm.wall_cycles
         (run_one ~machine_config:Scaled_machine.config ~autotune:true ~config
            ~scale ~seed ()))
  in
  table fmt ~title:"COLDCONFIDENCE feedback loop (§4.8 future work)"
    ~note:
      "expectation: the autotuner approaches the best fixed setting without \
       being told it"
    (estimates ~jobs ~runs
       [
         ("fixed cc=0.0 (+lazy)", fixed 0.0);
         ("fixed cc=0.5 (+lazy)", fixed 0.5);
         ("fixed cc=1.0 (+lazy)", fixed 1.0);
         ("autotuned (+lazy)", tuned);
       ])

let page_size ?(runs = 3) ?(scale = 2) ?(jobs = 1) fmt =
  (* §3.4 / §4.8: smaller pages mean finer relocation granularity — EC
     selection can isolate hot objects more precisely, at the cost of more
     page bookkeeping. *)
  let go ~small_page ~config_id ~seed =
    float_of_int
      (Vm.wall_cycles
         (run_one
            ~layout:(Layout.scaled ~small_page)
            ~machine_config:Scaled_machine.config ~autotune:false
            ~config:(Config.of_id config_id) ~scale ~seed ()))
  in
  table fmt ~title:"page size class granularity (§3.4 future work)"
    ~note:
      "expectation: under cfg 16 (WLB selection), smaller pages excavate hot \
       objects more precisely; the baseline is largely insensitive"
    (estimates ~jobs ~runs
       [
         ("zgc, 64K pages", go ~small_page:(64 * 1024) ~config_id:0);
         ("cfg 16, 64K pages", go ~small_page:(64 * 1024) ~config_id:16);
         ("cfg 16, 32K pages", go ~small_page:(32 * 1024) ~config_id:16);
         ("cfg 16, 16K pages", go ~small_page:(16 * 1024) ~config_id:16);
       ])
