module Layout = Hcsgc_heap.Layout
module Config = Hcsgc_core.Config
module Dataset = Hcsgc_graph.Dataset
module Render = Hcsgc_stats.Render

let mb b = Printf.sprintf "%d Mb" (b / 1024 / 1024)
let kb b = Printf.sprintf "%d Kb" (b / 1024)

let t1 fmt =
  let l = Layout.paper in
  Format.fprintf fmt "=== Table 1 — ZGC page size classes ===@.";
  Render.table fmt
    ~headers:[ "Page Size Class"; "Page Size"; "Object Size" ]
    ~rows:
      [
        [ "Small"; mb l.Layout.small_page;
          Printf.sprintf "[0, %s]" (kb l.Layout.small_obj_max) ];
        [ "Medium"; mb l.Layout.medium_page;
          Printf.sprintf "(%s, %s]" (kb l.Layout.small_obj_max)
            (mb l.Layout.medium_obj_max) ];
        [ "Large"; "N x 2 (> 4) Mb"; Printf.sprintf "> %s" (mb l.Layout.medium_obj_max) ];
      ];
  Format.pp_print_newline fmt ()

let onoff b = if b then "1" else "0"

let t2 fmt =
  Format.fprintf fmt "=== Table 2 — benchmark configurations ===@.";
  let row name get =
    name
    :: List.map
         (fun (id, c) -> if id = 0 then "n/a" else get c)
         Config.table2
  in
  Render.table fmt
    ~headers:("Tuning Knobs" :: List.map (fun (id, _) -> string_of_int id) Config.table2)
    ~rows:
      [
        row "Hotness" (fun c -> onoff c.Config.hotness);
        row "ColdPage" (fun c -> onoff c.Config.coldpage);
        row "ColdConfidence" (fun c ->
            Printf.sprintf "%.1f" c.Config.cold_confidence);
        row "RelocateAllSmallPages" (fun c ->
            onoff c.Config.relocate_all_small_pages);
        row "LazyRelocate" (fun c -> onoff c.Config.lazy_relocate);
      ];
  Format.pp_print_newline fmt ()

let t3 ?(scale = 1) fmt =
  Format.fprintf fmt "=== Table 3 — LAW graph nodes and edges ===@.";
  Render.table fmt
    ~headers:[ "Dataset"; "Nodes"; "Edges"; "Heap (MB)"; "as run (/scale)" ]
    ~rows:
      (List.map
         (fun (d : Dataset.t) ->
           let s = Dataset.scaled d ~factor:scale in
           [
             d.Dataset.name;
             string_of_int d.Dataset.nodes;
             string_of_int d.Dataset.edges;
             (if d.Dataset.heap_mb = 0 then "n/a" else string_of_int d.Dataset.heap_mb);
             Printf.sprintf "%d nodes / %d edges" s.Dataset.nodes s.Dataset.edges;
           ])
         Dataset.table3);
  Format.fprintf fmt
    "(generator stand-ins: preferential attachment at the same counts — see \
     DESIGN.md)@.@."
