(** Reproductions of the synthetic-benchmark figures.

    - {!fig4}: single stable access phase (§4.4, Fig. 4);
    - {!fig5}: three phases with per-phase seeds (Fig. 5);
    - {!fig6}: ample-relocation overhead — 1:10 hot/cold population on a
      saturated single core (Fig. 6).

    [runs] is the sample size per configuration (the paper uses 30; the
    default here is 5 to keep the full suite minutes-scale — raise it for
    tighter intervals).  [scale] divides workload size.  [jobs] fans the
    sweep's (configuration, run) jobs across a {!Hcsgc_exec.Pool} of
    domains (default 1 = in-process); results are aggregated in job order,
    so the rendered figure is identical at any [jobs].  [cache] serves
    repeats from a {!Hcsgc_store.Result_store} and [scheduling] picks the
    pool submission order (see {!Runner.run_configs}); neither changes a
    byte of output.  [shard_domains] selects the VM execution model (see
    {!Hcsgc_runtime.Vm.create}): [0] (default) is the inline interleave,
    [n >= 1] epoch-sharded execution — results are byte-identical at any
    [n >= 1] and content-addressed under a distinct [;em=1] key.  {!fig6}
    is saturated (single core) and has no [?shard_domains]. *)

val fig4 :
  ?runs:int -> ?scale:int -> ?jobs:int -> ?shard_domains:int ->
  ?cache:Runner.cache -> ?scheduling:[ `Cost | `Fifo ] ->
  Format.formatter -> unit

val fig5 :
  ?runs:int -> ?scale:int -> ?jobs:int -> ?shard_domains:int ->
  ?cache:Runner.cache -> ?scheduling:[ `Cost | `Fifo ] ->
  Format.formatter -> unit

val fig6 :
  ?runs:int -> ?scale:int -> ?jobs:int -> ?cache:Runner.cache ->
  ?scheduling:[ `Cost | `Fifo ] -> Format.formatter -> unit

val experiment :
  ?phases:int ->
  ?cold_ratio:int ->
  ?saturated:bool ->
  ?heap_mult:int ->
  ?shard_domains:int ->
  scale:int ->
  unit ->
  Runner.experiment
(** The underlying experiment, exposed for tests and the CLI. *)
