(** Reproduction of the SPECjbb2015 figure (§4.7, Fig. 13): throughput
    (max-jOPS-like) and latency (critical-jOPS-like) scores per
    configuration, plus the baseline heap-usage-over-time series.

    Expected shape: overlapping confidence intervals (no conclusive HCSGC
    effect — survival rate ≈ 1 %), and heap usage that grows over the run
    as the injector ramps the allocation rate. *)

val fig13 : ?runs:int -> ?scale:int -> ?jobs:int -> Format.formatter -> unit

val experiment_params : scale:int -> Hcsgc_workloads.Specjbb_sim.params
