(** Reproduction of the SPECjbb2015 figure (§4.7, Fig. 13): throughput
    (max-jOPS-like) and latency (critical-jOPS-like) scores per
    configuration, plus the baseline heap-usage-over-time series.

    Expected shape: overlapping confidence intervals (no conclusive HCSGC
    effect — survival rate ≈ 1 %), and heap usage that grows over the run
    as the injector ramps the allocation rate.

    The transaction handlers are real VM mutator threads, so this is the
    figure that most exercises [shard_domains] ([n >= 1] = epoch-sharded
    execution, byte-identical at any [n >= 1]; see
    {!Hcsgc_runtime.Vm.create}). *)

val fig13 :
  ?runs:int -> ?scale:int -> ?jobs:int -> ?shard_domains:int ->
  Format.formatter -> unit

val experiment_params : scale:int -> Hcsgc_workloads.Specjbb_sim.params
