module Vm = Hcsgc_runtime.Vm
module Layout = Hcsgc_heap.Layout
module Rng = Hcsgc_util.Rng
module Dataset = Hcsgc_graph.Dataset
module Generator = Hcsgc_graph.Generator
module Connectivity = Hcsgc_graph.Connectivity
module Bron_kerbosch = Hcsgc_graph.Bron_kerbosch

let layout = Layout.scaled ~small_page:(64 * 1024)

(* Estimated live bytes of a materialised graph: node objects + root table
   + one edge object per edge + adjacency cells (a 64-byte cell per
   ~cell_arity arcs). *)
let graph_bytes (d : Dataset.t) =
  (d.Dataset.nodes * 48) + (d.Dataset.edges * 40)
  + (2 * d.Dataset.edges / 4 * 64)

let make_vm_for ?(heap_mult = 6) ?(shard_domains = 0) d config =
  (* Sized so GC cycles are driven by the loader's and the algorithm's
     allocation (the paper's heaps are generous; ours scale with the graph
     so cycle counts stay comparable at reduced run lengths). *)
  let max_heap = max (6 * 1024 * 1024) (heap_mult * graph_bytes d) in
  Vm.create ~layout ~machine_config:Scaled_machine.config ~shard_domains
    ~config ~max_heap ()

let build_graph vm (d : Dataset.t) ~run =
  let rng = Rng.create (0x9e37 + run) in
  Generator.build vm ~rng ~model:d.Dataset.model ~nodes:d.Dataset.nodes
    ~edges:d.Dataset.edges

(* Content-addressing key: the scaled dataset's actual shape (not just its
   display name) plus the algorithm's own knobs. *)
let dataset_key (d : Dataset.t) =
  Printf.sprintf "%s;nodes=%d;edges=%d" d.Dataset.name d.Dataset.nodes
    d.Dataset.edges

let cc_experiment ?(shard_domains = 0) ~dataset ~scale () =
  let d = Dataset.scaled dataset ~factor:scale in
  {
    Runner.name = Printf.sprintf "CC %s /%d" d.Dataset.name scale;
    key =
      Printf.sprintf "cc;%s;passes=6%s" (dataset_key d)
        (Runner.em_tag shard_domains);
    make_vm = make_vm_for ~shard_domains d;
    workload =
      (fun vm ~run ->
        let g = build_graph vm d ~run in
        (* JGraphT's BiconnectivityInspector repeats the same traversal
           internally for its various queries; six component passes plus the
           articulation DFS model that recurring stable order. *)
        ignore (Connectivity.analyse ~passes:6 g);
        Hcsgc_graph.Mgraph.dispose g);
  }

let mc_experiment ?(max_expansions = 30_000) ?(shard_domains = 0) ~dataset
    ~scale () =
  let d = Dataset.scaled dataset ~factor:scale in
  {
    Runner.name = Printf.sprintf "MC %s /%d" d.Dataset.name scale;
    key =
      Printf.sprintf "mc;%s;maxexp=%d%s" (dataset_key d) max_expansions
        (Runner.em_tag shard_domains);
    make_vm = make_vm_for ~heap_mult:4 ~shard_domains d;
    workload =
      (fun vm ~run ->
        let g = build_graph vm d ~run in
        ignore (Bron_kerbosch.run ~max_expansions g);
        Hcsgc_graph.Mgraph.dispose g);
  }

let render fmt ~title ~expectation ~runs ~jobs ?cache ?scheduling exp =
  let results =
    Runner.run_configs ~runs ~jobs ?cache ?scheduling
      ~progress:(fun msg -> Format.eprintf "[bench] %s@." msg)
      exp
  in
  Report.figure fmt ~title ~expectation results

let cc_expectation =
  "few GC cycles (mostly during graph loading), but enough to reorganise \
   objects into traversal order: reduced cache misses and execution time \
   for the big-EC configurations"

let mc_expectation =
  "periodic GC cycles driven by the algorithm's allocation; speedups up to \
   ~20-45%; staircase as COLDCONFIDENCE rises in configs 5-7, 8-10, 11-13, \
   14-16; config 3 well ahead of config 2 (hot objects on well-populated \
   pages need the bigger EC)"

let fig7 ?(runs = 3) ?(scale = 8) ?(jobs = 1) ?(shard_domains = 0) ?cache
    ?scheduling fmt =
  render fmt ~title:"Fig. 7 — connected components, uk dataset"
    ~expectation:cc_expectation ~runs ~jobs ?cache ?scheduling
    (cc_experiment ~shard_domains ~dataset:Dataset.uk_cc ~scale ())

let fig8 ?(runs = 3) ?(scale = 8) ?(jobs = 1) ?(shard_domains = 0) ?cache
    ?scheduling fmt =
  render fmt ~title:"Fig. 8 — connected components, enwiki dataset"
    ~expectation:cc_expectation ~runs ~jobs ?cache ?scheduling
    (cc_experiment ~shard_domains ~dataset:Dataset.enwiki_cc ~scale ())

let fig9 ?(runs = 3) ?(scale = 2) ?(jobs = 1) ?(shard_domains = 0) ?cache
    ?scheduling fmt =
  render fmt ~title:"Fig. 9 — Bron-Kerbosch (MC), uk dataset"
    ~expectation:mc_expectation ~runs ~jobs ?cache ?scheduling
    (mc_experiment ~shard_domains ~dataset:Dataset.uk_mc ~scale ())

let fig10 ?(runs = 3) ?(scale = 2) ?(jobs = 1) ?(shard_domains = 0) ?cache
    ?scheduling fmt =
  render fmt ~title:"Fig. 10 — Bron-Kerbosch (MC), enwiki dataset"
    ~expectation:mc_expectation ~runs ~jobs ?cache ?scheduling
    (mc_experiment ~shard_domains ~dataset:Dataset.enwiki_mc ~scale ())
