(** The serving-tier figure: tail latency and SLO attribution across
    hotness configurations.

    Runs the {!Hcsgc_serve.Serve} KV workload under a set of Table 2
    configurations (default: ZGC baseline 0 and hotness configs 4, 16,
    18), [runs] repetitions each, and reports latency percentiles,
    SLO violations and their pause/service attribution per
    configuration.

    Jobs fan out over a {!Hcsgc_exec.Pool} and aggregate in job order,
    so output is byte-identical at any [--jobs].  With a [cache], each
    job's {!outcome} (SLO report + latency histogram + checksum + run
    metrics) is content-addressed in the {!Hcsgc_store.Result_store}
    under {!Runner.config_key} addressing, so warm re-renders skip the
    simulation entirely and stay byte-identical to cold ones. *)

module Serve = Hcsgc_serve.Serve
module Slo = Hcsgc_serve.Slo

val default_configs : int list
(** [\[0; 4; 16; 18\]] — baseline, relocate-all + lazy, COLDCONFIDENCE
    variants. *)

val default_slo : int
(** 15000 cycles (5 us at 3 GHz). *)

type outcome = {
  report : Slo.report;
  histogram : int array;  (** {!Slo.histogram} of the run's latencies *)
  checksum : int;
  metrics : Runner.run_metrics;
}

val outcome_to_string : outcome -> string
(** Versioned lossless payload codec (the cached representation). *)

val outcome_of_string : string -> outcome option

val experiment_key :
  ?heap:int ->
  params:Serve.params ->
  shard_domains:int ->
  slo:int ->
  unit ->
  string
(** The content-address experiment key: every result-affecting workload
    and machine knob (including the [heap] budget, default 8 MiB), seed
    normalised out (the run index is addressed separately), execution
    model tagged via {!Runner.em_tag}. *)

val sweep :
  ?config_ids:int list ->
  ?runs:int ->
  ?jobs:int ->
  ?verify:bool ->
  ?cache:Runner.cache ->
  ?shard_domains:int ->
  ?slo:int ->
  ?heap:int ->
  ?progress:(string -> unit) ->
  params:Serve.params ->
  unit ->
  (int * outcome array) list
(** Execute the sweep; outcomes per configuration in run order.
    Repetition [i] reseeds the workload with [seed = i] under every
    configuration.  [heap] is the VM heap budget in bytes (default
    8 MiB — shrink it alongside scaled-down [params] or the run never
    paces a GC cycle). *)

val scaled_params : scale:int -> Serve.params
(** {!Serve.default} with keys and duration divided by [scale] (floored
    at 2000 keys / 5 Mcycles) — the figure's and smoke tests' workload. *)

val scaled_heap : scale:int -> int
(** The heap budget matching [scaled_params ~scale]: [8 MiB / scale],
    floored at 2 MiB. *)

val figure :
  ?runs:int ->
  ?scale:int ->
  ?jobs:int ->
  ?verify:bool ->
  ?cache:Runner.cache ->
  ?shard_domains:int ->
  ?config_ids:int list ->
  ?slo:int ->
  Format.formatter ->
  unit
(** Render the figure: percentile table with bootstrap CIs on p99.9,
    violation attribution, and throughput.  [scale] divides the default
    workload's duration and key count (for quick smokes). *)
