module Vm = Hcsgc_runtime.Vm
module Layout = Hcsgc_heap.Layout
module Tradebeans = Hcsgc_workloads.Tradebeans_sim
module H2 = Hcsgc_workloads.H2_sim

let layout = Layout.scaled ~small_page:(64 * 1024)

let make_vm ?(shard_domains = 0) ~max_heap config =
  Vm.create ~layout ~machine_config:Scaled_machine.config ~shard_domains
    ~config ~max_heap ()

let tradebeans_experiment ?(shard_domains = 0) ~scale () =
  let base = Tradebeans.default in
  let params =
    {
      base with
      Tradebeans.accounts = max 100 (base.Tradebeans.accounts / scale);
      instruments = max 50 (base.Tradebeans.instruments / scale);
      orders = max 500 (base.Tradebeans.orders / scale);
      hot_accounts = max 10 (base.Tradebeans.hot_accounts / scale);
    }
  in
  {
    Runner.name = "tradebeans";
    key =
      Printf.sprintf "tradebeans;acct=%d;instr=%d;orders=%d;hot=%d;heap=%d%s"
        params.Tradebeans.accounts params.Tradebeans.instruments
        params.Tradebeans.orders params.Tradebeans.hot_accounts
        (12 * 1024 * 1024)
        (Runner.em_tag shard_domains);
    make_vm = make_vm ~shard_domains ~max_heap:(12 * 1024 * 1024);
    workload =
      (fun vm ~run ->
        ignore (Tradebeans.run vm { params with Tradebeans.seed = run }));
  }

let h2_experiment ?(shard_domains = 0) ~scale () =
  let base = H2.default in
  (* Scale shortens the run (fewer transactions) but keeps the table — the
     hot working set must stay larger than the LLC for the paper's effect
     to be visible. *)
  let params =
    { base with H2.transactions = max 200 (base.H2.transactions / scale) }
  in
  (* Heap sized a little over twice the table, so the steady transient
     allocation produces recurring GC cycles during the query phase (where
     relocation can capture the recurring access order). *)
  let max_heap = max (4 * 1024 * 1024) (3 * params.H2.rows * 64) in
  {
    Runner.name = "h2";
    key =
      Printf.sprintf "h2;rows=%d;txns=%d;heap=%d%s" params.H2.rows
        params.H2.transactions max_heap
        (Runner.em_tag shard_domains);
    make_vm = make_vm ~shard_domains ~max_heap;
    workload =
      (fun vm ~run -> ignore (H2.run vm { params with H2.seed = run }));
  }

let render fmt ~title ~expectation ~runs ~jobs ?cache ?scheduling exp =
  let results =
    Runner.run_configs ~runs ~jobs ?cache ?scheduling
      ~progress:(fun msg -> Format.eprintf "[bench] %s@." msg)
      exp
  in
  Report.figure fmt ~title ~expectation results

let fig11 ?(runs = 5) ?(scale = 1) ?(jobs = 1) ?(shard_domains = 0) ?cache
    ?scheduling fmt =
  render fmt ~title:"Fig. 11 — DaCapo tradebeans (simulated)" ?cache ?scheduling
    ~expectation:
      "little improvement (≤ ~5% at best): most objects are very short \
       lived, and HCSGC only improves locality for objects surviving a GC \
       cycle"
    ~runs ~jobs
    (tradebeans_experiment ~shard_domains ~scale ())

let fig12 ?(runs = 5) ?(scale = 1) ?(jobs = 1) ?(shard_domains = 0) ?cache
    ?scheduling fmt =
  render fmt ~title:"Fig. 12 — DaCapo h2 (simulated)" ?cache ?scheduling
    ~expectation:
      "5-9% improvement for several configurations; < 2% overhead for \
       hotness tracking alone (config 5); RELOCATEALLSMALLPAGES outperforms \
       COLDCONFIDENCE"
    ~runs ~jobs
    (h2_experiment ~shard_domains ~scale ())
