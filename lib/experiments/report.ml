module Config = Hcsgc_core.Config
module Descriptive = Hcsgc_stats.Descriptive
module Bootstrap = Hcsgc_stats.Bootstrap
module Render = Hcsgc_stats.Render

let bootstrap_seed = 42

let wall_samples metrics = Array.map (fun m -> m.Runner.wall) metrics

let wall_estimates results =
  List.map
    (fun (id, metrics) ->
      (id, Bootstrap.estimate ~seed:bootstrap_seed (wall_samples metrics)))
    results

let mean xs = Descriptive.mean xs

let metric_mean f metrics = mean (Array.map f metrics)

let norm baseline v =
  if baseline = 0.0 then 0.0 else (v -. baseline) /. baseline

let figure fmt ~title ~expectation results =
  let baseline_metrics =
    match List.assoc_opt 0 results with
    | Some m -> m
    | None -> invalid_arg "Report.figure: config 0 (the ZGC baseline) missing"
  in
  Format.fprintf fmt "=== %s ===@." title;
  Format.fprintf fmt "paper: %s@.@." expectation;
  let estimates = wall_estimates results in
  let base_est = List.assoc 0 estimates in
  (* Panel 1: execution time. *)
  Format.fprintf fmt "-- execution time (simulated cycles) --@.";
  Render.table fmt
    ~headers:
      [ "cfg"; "knobs"; "boxplot (q1|med|q3)"; "mean [95% CI]"; "vs ZGC" ]
    ~rows:
      (List.map
         (fun (id, metrics) ->
           let est = List.assoc id estimates in
           let box = Descriptive.boxplot (wall_samples metrics) in
           [
             string_of_int id;
             Config.to_string (Config.of_id id);
             Render.boxplot_line box;
             Render.estimate_cell est;
             (if id = 0 then "--"
              else Render.pct (Bootstrap.relative_to ~baseline:base_est est));
           ])
         results);
  (* Significance notes: which configs differ from baseline with 95%
     confidence (non-overlapping CIs), as in the paper's methodology. *)
  let significant =
    List.filter_map
      (fun (id, est) ->
        if id <> 0 && not (Bootstrap.overlaps est base_est) then Some id
        else None)
      estimates
  in
  Format.fprintf fmt "significant vs ZGC (non-overlapping 95%% CIs): %s@.@."
    (if significant = [] then "none"
     else String.concat ", " (List.map string_of_int significant));
  (* Panel 2: cache statistics normalised against ZGC. *)
  Format.fprintf fmt
    "-- cache statistics, normalised vs ZGC (negative = fewer) --@.";
  let base_loads = metric_mean (fun m -> m.Runner.loads) baseline_metrics in
  let base_l1 = metric_mean (fun m -> m.Runner.l1_misses) baseline_metrics in
  let base_llc = metric_mean (fun m -> m.Runner.llc_misses) baseline_metrics in
  let base_ml1 =
    metric_mean (fun m -> m.Runner.mut_l1_misses) baseline_metrics
  in
  let base_mllc =
    metric_mean (fun m -> m.Runner.mut_llc_misses) baseline_metrics
  in
  Render.table fmt
    ~headers:[ "cfg"; "loads"; "L1 miss"; "LLC miss"; "mut L1"; "mut LLC" ]
    ~rows:
      (List.map
         (fun (id, metrics) ->
           [
             string_of_int id;
             Render.pct (norm base_loads (metric_mean (fun m -> m.Runner.loads) metrics));
             Render.pct (norm base_l1 (metric_mean (fun m -> m.Runner.l1_misses) metrics));
             Render.pct
               (norm base_llc (metric_mean (fun m -> m.Runner.llc_misses) metrics));
             Render.pct
               (norm base_ml1
                  (metric_mean (fun m -> m.Runner.mut_l1_misses) metrics));
             Render.pct
               (norm base_mllc
                  (metric_mean (fun m -> m.Runner.mut_llc_misses) metrics));
           ])
         results);
  Format.fprintf fmt
    "(whole-process counters include GC-thread copying; 'mut' columns are \
     the mutator core only)@.@.";
  (* Panel 3: GC statistics. *)
  Format.fprintf fmt "-- GC statistics --@.";
  Render.table fmt
    ~headers:
      [ "cfg"; "cycles/run"; "EC median (small pages)"; "reloc by mutator";
        "reloc by GC" ]
    ~rows:
      (List.map
         (fun (id, metrics) ->
           [
             string_of_int id;
             Printf.sprintf "%.1f"
               (metric_mean (fun m -> float_of_int m.Runner.gc_cycle_count) metrics);
             Printf.sprintf "%.1f"
               (metric_mean (fun m -> m.Runner.ec_median) metrics);
             Render.si (metric_mean (fun m -> float_of_int m.Runner.reloc_mut) metrics);
             Render.si (metric_mean (fun m -> float_of_int m.Runner.reloc_gc) metrics);
           ])
         results);
  Format.pp_print_newline fmt ()

let heap_usage_series fmt ~max_heap samples =
  match samples with
  | [] -> Format.fprintf fmt "(no heap samples)@."
  | _ ->
      let samples = Array.of_list samples in
      let n = Array.length samples in
      let points = min 24 n in
      Format.fprintf fmt "heap usage over time (%% of %s):@."
        (Render.si (float_of_int max_heap));
      for i = 0 to points - 1 do
        let wall, used = samples.(i * n / points) in
        let pct = 100.0 *. float_of_int used /. float_of_int max_heap in
        let bar = String.make (int_of_float (pct /. 4.0)) '#' in
        Format.fprintf fmt "  t=%-10s %5.1f%% %s@."
          (Render.si (float_of_int wall))
          pct bar
      done
