module Vm = Hcsgc_runtime.Vm
module Layout = Hcsgc_heap.Layout
module Config = Hcsgc_core.Config
module Gc_stats = Hcsgc_core.Gc_stats
module Specjbb = Hcsgc_workloads.Specjbb_sim
module Bootstrap = Hcsgc_stats.Bootstrap
module Render = Hcsgc_stats.Render
module Pool = Hcsgc_exec.Pool
module Reporter = Hcsgc_exec.Reporter

let layout = Layout.scaled ~small_page:(64 * 1024)

let max_heap = 24 * 1024 * 1024

let experiment_params ~scale =
  let base = Specjbb.default in
  {
    base with
    Specjbb.warehouses = max 2 (base.Specjbb.warehouses / scale);
    items_per_warehouse = max 200 (base.Specjbb.items_per_warehouse / scale);
    txns_per_step = max 100 (base.Specjbb.txns_per_step / scale);
  }

let fig13 ?(runs = 3) ?(scale = 1) ?(jobs = 1) ?(shard_domains = 0) fmt =
  let params = experiment_params ~scale in
  Format.fprintf fmt "=== Fig. 13 — SPECjbb2015 (simulated composite) ===@.";
  Format.fprintf fmt
    "paper: overlapping CIs — no conclusive effect (survival ~1%%); heap \
     usage grows as the injector ramps@.@.";
  (* Fig. 13 keeps the workload's own result record alongside run_metrics,
     so it drives the execution engine directly rather than through
     Runner.run_configs: same (config, run) job expansion, same job-order
     aggregation, hence the same determinism guarantee. *)
  let reporter = Reporter.create () in
  let job_list =
    List.concat_map
      (fun (id, config) ->
        List.init runs (fun run -> (id, config, run)))
      Config.table2
  in
  let run_job (id, config, run) =
    if run = 0 then Reporter.sayf reporter "[bench] specjbb: config %d" id;
    let vm =
      Vm.create ~layout ~machine_config:Scaled_machine.config
        ~mutators:params.Specjbb.handlers ~shard_domains ~config ~max_heap ()
    in
    let r = Specjbb.run vm { params with Specjbb.seed = run } in
    Vm.finish vm;
    (r, Runner.collect vm)
  in
  let flat =
    Pool.with_pool ~jobs (fun pool -> Pool.map_list pool run_job job_list)
  in
  let per_config =
    List.mapi
      (fun i (id, _) ->
        (id, List.filteri (fun j _ -> j / runs = i) flat))
      Config.table2
  in
  let seed = 42 in
  let estimate f samples =
    Bootstrap.estimate ~seed (Array.of_list (List.map f samples))
  in
  let base = List.assoc 0 per_config in
  let base_tp = estimate (fun (r, _) -> r.Specjbb.max_jops) base in
  let base_lat = estimate (fun (r, _) -> r.Specjbb.critical_jops) base in
  Render.table fmt
    ~headers:
      [ "cfg"; "throughput (max-jOPS) [CI]"; "latency (critical-jOPS) [CI]";
        "overlap vs ZGC?"; "survival" ]
    ~rows:
      (List.map
         (fun (id, samples) ->
           let tp = estimate (fun (r, _) -> r.Specjbb.max_jops) samples in
           let lat = estimate (fun (r, _) -> r.Specjbb.critical_jops) samples in
           let surv =
             List.fold_left (fun acc (r, _) -> acc +. r.Specjbb.survival_rate)
               0.0 samples
             /. float_of_int (List.length samples)
           in
           [
             string_of_int id;
             Render.estimate_cell tp;
             Render.estimate_cell lat;
             (if Bootstrap.overlaps tp base_tp && Bootstrap.overlaps lat base_lat
              then "yes (inconclusive)"
              else "no");
             Printf.sprintf "%.1f%%" (100.0 *. surv);
           ])
         per_config);
  Format.pp_print_newline fmt ();
  (* Heap usage over time, config 0, first run (Fig. 13 rightmost). *)
  (match base with
  | (_, m) :: _ -> Report.heap_usage_series fmt ~max_heap m.Runner.heap_samples
  | [] -> ());
  Format.pp_print_newline fmt ()
