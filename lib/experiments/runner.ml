module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Gc_stats = Hcsgc_core.Gc_stats
module H = Hcsgc_memsim.Hierarchy
module Pool = Hcsgc_exec.Pool
module Reporter = Hcsgc_exec.Reporter

type run_metrics = {
  wall : float;
  loads : float;
  l1_misses : float;
  llc_misses : float;
  mut_l1_misses : float;
  mut_llc_misses : float;
  gc_cycle_count : int;
  ec_median : float;
  reloc_mut : int;
  reloc_gc : int;
  heap_samples : (int * int) list;
}

let collect vm =
  let c = Vm.counters vm in
  let mc = Vm.mutator_counters vm in
  let st = Vm.gc_stats vm in
  {
    wall = float_of_int (Vm.wall_cycles vm);
    loads = float_of_int c.H.loads;
    l1_misses = float_of_int c.H.l1_misses;
    llc_misses = float_of_int c.H.llc_misses;
    mut_l1_misses = float_of_int mc.H.l1_misses;
    mut_llc_misses = float_of_int mc.H.llc_misses;
    gc_cycle_count = Gc_stats.cycles st;
    ec_median = Gc_stats.median_small_pages_in_ec st;
    reloc_mut = Gc_stats.objects_relocated_by_mutator st;
    reloc_gc = Gc_stats.objects_relocated_by_gc st;
    heap_samples = Gc_stats.heap_samples st;
  }

type experiment = {
  name : string;
  make_vm : Config.t -> Vm.t;
  workload : Vm.t -> run:int -> unit;
}

type job = { exp : experiment; config_id : int; run : int }

let jobs_of ?config_ids ~runs exp =
  let ids =
    match config_ids with
    | Some ids -> ids
    | None -> List.map fst Config.table2
  in
  List.concat_map
    (fun id -> List.init runs (fun run -> { exp; config_id = id; run }))
    ids

let execute ?(verify = false) { exp; config_id; run } =
  let config = Config.of_id config_id in
  let vm = exp.make_vm config in
  if verify then Vm.enable_verification vm;
  exp.workload vm ~run;
  Vm.finish vm;
  collect vm

let profile ?sample_interval ?(verify = false) { exp; config_id; run } =
  let config = Config.of_id config_id in
  let vm = exp.make_vm config in
  if verify then Vm.enable_verification vm;
  let recorder = Vm.enable_telemetry ?sample_interval vm in
  exp.workload vm ~run;
  Vm.finish vm;
  (collect vm, recorder)

(* Group a job-ordered flat metrics list back into per-configuration
   arrays.  [jobs_of] emits [runs] consecutive jobs per id, so this is a
   plain in-order split — no reordering, hence deterministic. *)
let regroup ~ids ~runs metrics =
  let rec split n = function
    | rest when n = 0 -> ([], rest)
    | [] -> invalid_arg "Runner.regroup: short metrics list"
    | m :: rest ->
        let chunk, rest = split (n - 1) rest in
        (m :: chunk, rest)
  in
  let rec go ids metrics =
    match ids with
    | [] -> []
    | id :: ids ->
        let chunk, rest = split runs metrics in
        (id, Array.of_list chunk) :: go ids rest
  in
  go ids metrics

let run_configs ?config_ids ?(progress = fun _ -> ()) ?(jobs = 1)
    ?(verify = false) ~runs exp =
  let ids =
    match config_ids with
    | Some ids -> ids
    | None -> List.map fst Config.table2
  in
  let job_list = jobs_of ~config_ids:ids ~runs exp in
  (* Progress lines go through a Reporter so concurrent workers cannot
     interleave them mid-line; each configuration is announced once, by
     whichever of its jobs starts first. *)
  let reporter = Reporter.create ~emit:progress () in
  let announced = Array.map (fun _ -> Atomic.make false) (Array.of_list ids) in
  let index_of = Hashtbl.create 32 in
  List.iteri (fun i id -> Hashtbl.replace index_of id i) ids;
  let run_job job =
    (match Hashtbl.find_opt index_of job.config_id with
    | Some i when Atomic.compare_and_set announced.(i) false true ->
        Reporter.sayf reporter "%s: config %d (%s)" job.exp.name job.config_id
          (Config.to_string (Config.of_id job.config_id))
    | _ -> ());
    execute ~verify job
  in
  let metrics =
    Pool.with_pool ~jobs (fun pool -> Pool.map_list pool run_job job_list)
  in
  regroup ~ids ~runs metrics
