module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Gc_stats = Hcsgc_core.Gc_stats
module H = Hcsgc_memsim.Hierarchy
module Pool = Hcsgc_exec.Pool
module Reporter = Hcsgc_exec.Reporter
module Fingerprint = Hcsgc_store.Fingerprint
module Result_store = Hcsgc_store.Result_store
module Scheduler = Hcsgc_store.Scheduler

type run_metrics = {
  wall : float;
  loads : float;
  l1_misses : float;
  llc_misses : float;
  mut_l1_misses : float;
  mut_llc_misses : float;
  far_loads : float;
  gc_cycle_count : int;
  ec_median : float;
  reloc_mut : int;
  reloc_gc : int;
  pages_demoted : int;
  pages_promoted : int;
  heap_samples : (int * int) list;
}

let collect vm =
  let c = Vm.counters vm in
  let mc = Vm.mutator_counters vm in
  let st = Vm.gc_stats vm in
  {
    wall = float_of_int (Vm.wall_cycles vm);
    loads = float_of_int c.H.loads;
    l1_misses = float_of_int c.H.l1_misses;
    llc_misses = float_of_int c.H.llc_misses;
    mut_l1_misses = float_of_int mc.H.l1_misses;
    mut_llc_misses = float_of_int mc.H.llc_misses;
    far_loads = float_of_int (Vm.far_loads vm);
    gc_cycle_count = Gc_stats.cycles st;
    ec_median = Gc_stats.median_small_pages_in_ec st;
    reloc_mut = Gc_stats.objects_relocated_by_mutator st;
    reloc_gc = Gc_stats.objects_relocated_by_gc st;
    pages_demoted = Gc_stats.pages_demoted st;
    pages_promoted = Gc_stats.pages_promoted st;
    heap_samples = Gc_stats.heap_samples st;
  }

type experiment = {
  name : string;
  key : string;
  make_vm : Config.t -> Vm.t;
  workload : Vm.t -> run:int -> unit;
}

let em_tag shard_domains = if shard_domains > 0 then ";em=1" else ""

type job = { exp : experiment; config_id : int; run : int }

let jobs_of ?config_ids ~runs exp =
  let ids =
    match config_ids with
    | Some ids -> ids
    | None -> List.map fst Config.table2
  in
  List.concat_map
    (fun id -> List.init runs (fun run -> { exp; config_id = id; run }))
    ids

(* ------------------------------------------------------------------ *)
(* Result-store integration: fingerprints, metrics codec, cache handle *)
(* ------------------------------------------------------------------ *)

(* Lossless knob rendering ([%h] floats), deliberately excluding the
   config {e id}: ids 0 and 1 are the same knob vector, so by content
   addressing they share one cache entry — which is exactly right, their
   metrics are bit-identical. *)
let config_value_key (c : Config.t) =
  Printf.sprintf "h=%b;cp=%b;cc=%h;ra=%b;lz=%b;tc=%d;lf=%d;tp=%b"
    c.Config.hotness c.Config.coldpage c.Config.cold_confidence
    c.Config.relocate_all_small_pages c.Config.lazy_relocate
    c.Config.tier_capacity_pages c.Config.lat_far c.Config.tier_promote

let config_fingerprint_key config_id = config_value_key (Config.of_id config_id)

let config_key = config_fingerprint_key

let fingerprint ~verify job =
  Fingerprint.make ~experiment:job.exp.key
    ~config:(config_fingerprint_key job.config_id)
    ~run:job.run ~verify

(* Cost-model granularity: one key per (experiment, knob vector).  Run
   seeds barely move a job's duration, but configurations move it a lot
   (relocate-all vs baseline), so this is the level the scheduler can
   usefully distinguish. *)
let cost_key job = job.exp.key ^ "#" ^ config_fingerprint_key job.config_id

let metrics_magic = "hcsgc-metrics 2"

let metrics_to_string m =
  let buf = Buffer.create 256 in
  Buffer.add_string buf metrics_magic;
  Buffer.add_char buf '\n';
  (* [%h] round-trips every finite float exactly through float_of_string. *)
  Printf.bprintf buf "%h %h %h %h %h %h %h %d %h %d %d %d %d\n" m.wall m.loads
    m.l1_misses m.llc_misses m.mut_l1_misses m.mut_llc_misses m.far_loads
    m.gc_cycle_count m.ec_median m.reloc_mut m.reloc_gc m.pages_demoted
    m.pages_promoted;
  List.iter
    (fun (wall, used) -> Printf.bprintf buf "%d,%d " wall used)
    m.heap_samples;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let metrics_of_string s =
  let ( let* ) = Option.bind in
  match String.split_on_char '\n' s with
  | [ magic; scalars; samples; "" ] when magic = metrics_magic ->
      let* wall, loads, l1, llc, mut_l1, mut_llc, far, gc_cycles, ec, rm, rg,
           pd, pp =
        match String.split_on_char ' ' scalars with
        | [ w; lo; l1; ll; m1; ml; fr; gc; ec; rm; rg; pd; pp ] ->
            let* w = float_of_string_opt w in
            let* lo = float_of_string_opt lo in
            let* l1 = float_of_string_opt l1 in
            let* ll = float_of_string_opt ll in
            let* m1 = float_of_string_opt m1 in
            let* ml = float_of_string_opt ml in
            let* fr = float_of_string_opt fr in
            let* gc = int_of_string_opt gc in
            let* ec = float_of_string_opt ec in
            let* rm = int_of_string_opt rm in
            let* rg = int_of_string_opt rg in
            let* pd = int_of_string_opt pd in
            let* pp = int_of_string_opt pp in
            Some (w, lo, l1, ll, m1, ml, fr, gc, ec, rm, rg, pd, pp)
        | _ -> None
      in
      let* heap_samples =
        String.split_on_char ' ' samples
        |> List.filter (fun p -> p <> "")
        |> List.fold_left
             (fun acc pair ->
               let* acc = acc in
               match String.split_on_char ',' pair with
               | [ w; u ] ->
                   let* w = int_of_string_opt w in
                   let* u = int_of_string_opt u in
                   Some ((w, u) :: acc)
               | _ -> None)
             (Some [])
        |> Option.map List.rev
      in
      Some
        {
          wall;
          loads;
          l1_misses = l1;
          llc_misses = llc;
          mut_l1_misses = mut_l1;
          mut_llc_misses = mut_llc;
          far_loads = far;
          gc_cycle_count = gc_cycles;
          ec_median = ec;
          reloc_mut = rm;
          reloc_gc = rg;
          pages_demoted = pd;
          pages_promoted = pp;
          heap_samples;
        }
  | _ -> None

type cache = { store : Result_store.t; refresh : bool }

let cache ?(refresh = false) ~dir () = { store = Result_store.open_ ~dir; refresh }

let default_cache_dir = "_hcsgc_cache"

(* A cache lookup that only ever says yes with a fully decoded payload:
   an entry passing the store checksum but failing the metrics decoder is
   counted invalid and treated as a miss, so it gets recomputed and
   overwritten rather than crashing the sweep. *)
let try_cached c ~verify job =
  if c.refresh then None
  else
    match Result_store.find c.store (fingerprint ~verify job) with
    | None -> None
    | Some payload -> (
        match metrics_of_string payload with
        | Some m -> Some m
        | None ->
            Result_store.note_invalid c.store;
            None)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let execute_vm ~verify { exp; config_id; run } =
  let config = Config.of_id config_id in
  let vm = exp.make_vm config in
  if verify then Vm.enable_verification vm;
  exp.workload vm ~run;
  Vm.finish vm;
  collect vm

let compute_and_store c ~verify job =
  let t0 = Unix.gettimeofday () in
  let m = execute_vm ~verify job in
  let cost = Unix.gettimeofday () -. t0 in
  Result_store.add c.store (fingerprint ~verify job) ~cost_key:(cost_key job)
    ~cost (metrics_to_string m);
  m

let execute ?(verify = false) ?cache job =
  match cache with
  | None -> execute_vm ~verify job
  | Some c -> (
      match try_cached c ~verify job with
      | Some m -> m
      | None -> compute_and_store c ~verify job)

let profile ?sample_interval ?(verify = false) ?cache { exp; config_id; run } =
  let config = Config.of_id config_id in
  let vm = exp.make_vm config in
  if verify then Vm.enable_verification vm;
  let recorder = Vm.enable_telemetry ?sample_interval vm in
  let t0 = Unix.gettimeofday () in
  exp.workload vm ~run;
  Vm.finish vm;
  let cost = Unix.gettimeofday () -. t0 in
  let m = collect vm in
  (* A profiled run's metrics are bit-identical to an unprofiled one
     (telemetry charges no simulated cycles), so profiling may seed the
     store for later sweeps.  The trace itself is not cached. *)
  (match cache with
  | None -> ()
  | Some c ->
      let job = { exp; config_id; run } in
      Result_store.add c.store (fingerprint ~verify job)
        ~cost_key:(cost_key job) ~cost (metrics_to_string m));
  (m, recorder)

(* Group a job-ordered flat metrics list back into per-configuration
   arrays.  [jobs_of] emits [runs] consecutive jobs per id, so this is a
   plain in-order split — no reordering, hence deterministic. *)
let regroup ~ids ~runs metrics =
  let rec split n = function
    | rest when n = 0 -> ([], rest)
    | [] -> invalid_arg "Runner.regroup: short metrics list"
    | m :: rest ->
        let chunk, rest = split (n - 1) rest in
        (m :: chunk, rest)
  in
  let rec go ids metrics =
    match ids with
    | [] -> []
    | id :: ids ->
        let chunk, rest = split runs metrics in
        (id, Array.of_list chunk) :: go ids rest
  in
  go ids metrics

let run_configs ?config_ids ?(progress = fun _ -> ()) ?(jobs = 1)
    ?(verify = false) ?cache ?(scheduling = `Cost) ~runs exp =
  let ids =
    match config_ids with
    | Some ids -> ids
    | None -> List.map fst Config.table2
  in
  let job_arr = Array.of_list (jobs_of ~config_ids:ids ~runs exp) in
  let n = Array.length job_arr in
  (* Progress lines go through a Reporter so concurrent workers cannot
     interleave them mid-line; each configuration that actually computes
     is announced once, by whichever of its jobs starts first (fully
     cached configurations stay silent). *)
  let reporter = Reporter.create ~emit:progress () in
  let announced = Array.map (fun _ -> Atomic.make false) (Array.of_list ids) in
  let index_of = Hashtbl.create 32 in
  List.iteri (fun i id -> Hashtbl.replace index_of id i) ids;
  let announce job =
    match Hashtbl.find_opt index_of job.config_id with
    | Some i when Atomic.compare_and_set announced.(i) false true ->
        Reporter.sayf reporter "%s: config %d (%s)" job.exp.name job.config_id
          (Config.to_string (Config.of_id job.config_id))
    | _ -> ()
  in
  (* Resolve cache hits up front on the calling domain: hits cost
     milliseconds, and knowing the miss set lets the scheduler order real
     work only. *)
  let cached =
    match cache with
    | Some c -> Array.map (fun job -> try_cached c ~verify job) job_arr
    | None -> Array.make n None
  in
  let hit_idx, miss_idx =
    List.init n Fun.id
    |> List.partition (fun i -> Option.is_some cached.(i))
  in
  let miss = Array.of_list miss_idx in
  let scheduled_misses =
    match (scheduling, cache) with
    | `Cost, Some c ->
        let estimate k =
          Result_store.estimate c.store ~cost_key:(cost_key job_arr.(miss.(k)))
        in
        Array.map (fun k -> miss.(k))
          (Scheduler.order ~estimate (Array.length miss))
    | _ -> miss
  in
  (* Hits resolve instantly, so submitting them first never delays a
     worker; the computing jobs follow in scheduled order. *)
  let order = Array.append (Array.of_list hit_idx) scheduled_misses in
  let run_one i =
    match cached.(i) with
    | Some m -> m
    | None ->
        let job = job_arr.(i) in
        announce job;
        (match cache with
        | Some c -> compute_and_store c ~verify job
        | None -> execute_vm ~verify job)
  in
  let metrics =
    Pool.with_pool ~jobs (fun pool ->
        Pool.map_array_in_order pool ~order run_one (Array.init n Fun.id))
  in
  regroup ~ids ~runs (Array.to_list metrics)
