module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Gc_stats = Hcsgc_core.Gc_stats
module H = Hcsgc_memsim.Hierarchy

type run_metrics = {
  wall : float;
  loads : float;
  l1_misses : float;
  llc_misses : float;
  mut_l1_misses : float;
  mut_llc_misses : float;
  gc_cycle_count : int;
  ec_median : float;
  reloc_mut : int;
  reloc_gc : int;
  heap_samples : (int * int) list;
}

let collect vm =
  let c = Vm.counters vm in
  let mc = Vm.mutator_counters vm in
  let st = Vm.gc_stats vm in
  {
    wall = float_of_int (Vm.wall_cycles vm);
    loads = float_of_int c.H.loads;
    l1_misses = float_of_int c.H.l1_misses;
    llc_misses = float_of_int c.H.llc_misses;
    mut_l1_misses = float_of_int mc.H.l1_misses;
    mut_llc_misses = float_of_int mc.H.llc_misses;
    gc_cycle_count = Gc_stats.cycles st;
    ec_median = Gc_stats.median_small_pages_in_ec st;
    reloc_mut = Gc_stats.objects_relocated_by_mutator st;
    reloc_gc = Gc_stats.objects_relocated_by_gc st;
    heap_samples = Gc_stats.heap_samples st;
  }

type experiment = {
  name : string;
  make_vm : Config.t -> Vm.t;
  workload : Vm.t -> run:int -> unit;
}

let run_configs ?config_ids ?(progress = fun _ -> ()) ~runs exp =
  let ids =
    match config_ids with
    | Some ids -> ids
    | None -> List.map fst Config.table2
  in
  List.map
    (fun id ->
      let config = Config.of_id id in
      progress (Printf.sprintf "%s: config %d (%s)" exp.name id
                  (Config.to_string config));
      let samples =
        Array.init runs (fun run ->
            let vm = exp.make_vm config in
            exp.workload vm ~run;
            Vm.finish vm;
            collect vm)
      in
      (id, samples))
    ids
