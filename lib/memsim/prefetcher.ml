type stream = {
  mutable last : int;  (* last line seen in this stream; -1 = free slot *)
  mutable dir : int;  (* +1 ascending, -1 descending, 0 undecided *)
  mutable hits : int;  (* consecutive stride confirmations *)
  mutable lru : int;
}

type t = {
  streams : stream array;
  degree : int;
  confirm : int;
  mutable clock : int;
}

let create ?(streams = 16) ?(degree = 4) ?(confirm = 2) () =
  {
    streams =
      Array.init streams (fun _ -> { last = -1; dir = 0; hits = 0; lru = 0 });
    degree;
    confirm;
    clock = 0;
  }

let degree t = t.degree

let reset t =
  Array.iter
    (fun s ->
      s.last <- -1;
      s.dir <- 0;
      s.hits <- 0;
      s.lru <- 0)
    t.streams;
  t.clock <- 0

(* The hot path: called once per demand access by the cache simulators.
   Writes at most [degree t] prefetch line addresses into [buf] and returns
   how many were written; allocation-free (the scans are index loops, no
   closures or options). *)
let observe_into t line buf =
  if Array.length buf < t.degree then
    invalid_arg "Prefetcher.observe_into: buffer shorter than degree";
  t.clock <- t.clock + 1;
  let streams = t.streams in
  let n = Array.length streams in
  (* Look for a stream whose expected next line matches. *)
  let matched = ref (-1) in
  let mdelta = ref 0 in
  let i = ref 0 in
  while !matched < 0 && !i < n do
    let s = Array.unsafe_get streams !i in
    if s.last >= 0 then begin
      let delta = line - s.last in
      if (delta = 1 || delta = -1) && (s.dir = 0 || s.dir = delta) then begin
        matched := !i;
        mdelta := delta
      end
    end;
    incr i
  done;
  if !matched >= 0 then begin
    let s = Array.unsafe_get streams !matched in
    let delta = !mdelta in
    s.last <- line;
    s.dir <- delta;
    s.hits <- s.hits + 1;
    s.lru <- t.clock;
    if s.hits >= t.confirm then begin
      for i = 0 to t.degree - 1 do
        Array.unsafe_set buf i (line + (delta * (i + 1)))
      done;
      t.degree
    end
    else 0
  end
  else begin
    (* Allocate (or steal LRU) a slot for a potential new stream. *)
    let victim = ref streams.(0) in
    for i = 0 to n - 1 do
      let s = Array.unsafe_get streams i in
      if s.last = -1 && !victim.last <> -1 then victim := s
      else if s.last <> -1 && !victim.last <> -1 && s.lru < !victim.lru then
        victim := s
    done;
    let v = !victim in
    v.last <- line;
    v.dir <- 0;
    v.hits <- 0;
    v.lru <- t.clock;
    0
  end

let observe t line =
  let buf = Array.make t.degree 0 in
  let n = observe_into t line buf in
  List.init n (fun i -> buf.(i))
