type stream = {
  mutable last : int;  (* last line seen in this stream; -1 = free slot *)
  mutable dir : int;  (* +1 ascending, -1 descending, 0 undecided *)
  mutable hits : int;  (* consecutive stride confirmations *)
  mutable lru : int;
}

type t = {
  streams : stream array;
  degree : int;
  confirm : int;
  mutable clock : int;
}

let create ?(streams = 16) ?(degree = 4) ?(confirm = 2) () =
  {
    streams =
      Array.init streams (fun _ -> { last = -1; dir = 0; hits = 0; lru = 0 });
    degree;
    confirm;
    clock = 0;
  }

let reset t =
  Array.iter
    (fun s ->
      s.last <- -1;
      s.dir <- 0;
      s.hits <- 0;
      s.lru <- 0)
    t.streams;
  t.clock <- 0

let observe t line =
  t.clock <- t.clock + 1;
  (* Look for a stream whose expected next line matches. *)
  let matched = ref None in
  Array.iter
    (fun s ->
      if !matched = None && s.last >= 0 then begin
        let delta = line - s.last in
        if delta = 1 || delta = -1 then
          if s.dir = 0 || s.dir = delta then matched := Some (s, delta)
      end)
    t.streams;
  match !matched with
  | Some (s, delta) ->
      s.last <- line;
      s.dir <- delta;
      s.hits <- s.hits + 1;
      s.lru <- t.clock;
      if s.hits >= t.confirm then
        List.init t.degree (fun i -> line + (delta * (i + 1)))
      else []
  | None ->
      (* Allocate (or steal LRU) a slot for a potential new stream. *)
      let victim = ref t.streams.(0) in
      Array.iter
        (fun s ->
          if s.last = -1 && !victim.last <> -1 then victim := s
          else if s.last <> -1 && !victim.last <> -1 && s.lru < !victim.lru then
            victim := s)
        t.streams;
      !victim.last <- line;
      !victim.dir <- 0;
      !victim.hits <- 0;
      !victim.lru <- t.clock;
      []
