(** A hardware-style stream prefetcher.

    The paper's core claim is that laying objects out in mutator access order
    is "prefetching friendly" (§1, §3): sequential line accesses let the
    hardware prefetcher hide memory latency.  This module models a
    multi-stream next-N-line prefetcher: it watches the demand-access line
    stream, detects monotone (ascending or descending) strides of one line,
    and once a stream is confirmed issues prefetches [degree] lines ahead. *)

type t

val create : ?streams:int -> ?degree:int -> ?confirm:int -> unit -> t
(** [create ()] uses 16 stream slots, degree 4, and 2 accesses to confirm a
    stream — roughly an L2 stream prefetcher on a client core. *)

val observe : t -> int -> int list
(** [observe t line] records a demand access to line-address [line] and
    returns the list of line addresses to prefetch (empty if no stream
    matched).  The caller inserts those lines into the cache levels. *)

val reset : t -> unit
(** Forget all streams (between benchmark runs). *)
