(** A hardware-style stream prefetcher.

    The paper's core claim is that laying objects out in mutator access order
    is "prefetching friendly" (§1, §3): sequential line accesses let the
    hardware prefetcher hide memory latency.  This module models a
    multi-stream next-N-line prefetcher: it watches the demand-access line
    stream, detects monotone (ascending or descending) strides of one line,
    and once a stream is confirmed issues prefetches [degree] lines ahead. *)

type t

val create : ?streams:int -> ?degree:int -> ?confirm:int -> unit -> t
(** [create ()] uses 16 stream slots, degree 4, and 2 accesses to confirm a
    stream — roughly an L2 stream prefetcher on a client core. *)

val degree : t -> int
(** Prefetch distance: the maximum number of line addresses one
    {!observe_into} call can produce (the minimum caller buffer size). *)

val observe_into : t -> int -> int array -> int
(** [observe_into t line buf] records a demand access to line-address
    [line]; when a confirmed stream matches, the line addresses to prefetch
    are written into [buf.(0 .. n-1)] (in issue order, nearest first) and
    [n] is returned, else 0.  This is the allocation-free hot path the cache
    simulators drive once per demand access — the caller owns [buf]
    (preallocated, at least [degree t] long) and inserts the returned lines
    into the cache levels.
    @raise Invalid_argument if [buf] is shorter than [degree t]. *)

val observe : t -> int -> int list
(** [observe t line] is {!observe_into} with the result as a list (empty if
    no stream matched) — convenience for tests; allocates, so simulators
    use {!observe_into}. *)

val reset : t -> unit
(** Forget all streams (between benchmark runs). *)
