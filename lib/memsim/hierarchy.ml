type config = {
  l1 : Cache.geometry;
  l2 : Cache.geometry;
  llc : Cache.geometry;
  lat_l1 : int;
  lat_l2 : int;
  lat_llc : int;
  lat_mem : int;
  lat_store : int;
  prefetch : bool;
  tlb : bool;
  tlb_entries : int;
  tlb_ways : int;
  tlb_page_bytes : int;
  lat_tlb_miss : int;
}

let default_config =
  {
    l1 = { Cache.size_bytes = 32 * 1024; ways = 8; line_bytes = 64 };
    l2 = { Cache.size_bytes = 256 * 1024; ways = 8; line_bytes = 64 };
    llc = { Cache.size_bytes = 4 * 1024 * 1024; ways = 16; line_bytes = 64 };
    lat_l1 = 4;
    lat_l2 = 12;
    lat_llc = 40;
    lat_mem = 200;
    lat_store = 2;
    prefetch = true;
    tlb = false;
    tlb_entries = 64;
    tlb_ways = 4;
    tlb_page_bytes = 4096;
    lat_tlb_miss = 25;
  }

type counters = {
  loads : int;
  stores : int;
  l1_misses : int;
  l2_misses : int;
  llc_misses : int;
  prefetches : int;
}

type t = {
  cfg : config;
  c1 : Cache.t;
  c2 : Cache.t;
  c3 : Cache.t;
  pf : Prefetcher.t;
  pf_buf : int array;  (* preallocated Prefetcher.observe_into target *)
  mutable loads : int;
  mutable stores : int;
  mutable l1_misses : int;
  mutable l2_misses : int;
  mutable llc_misses : int;
  mutable prefetches : int;
}

let create cfg =
  if
    cfg.l1.Cache.line_bytes <> cfg.l2.Cache.line_bytes
    || cfg.l2.Cache.line_bytes <> cfg.llc.Cache.line_bytes
  then invalid_arg "Hierarchy.create: all levels must share a line size";
  let pf = Prefetcher.create () in
  {
    cfg;
    c1 = Cache.create cfg.l1;
    c2 = Cache.create cfg.l2;
    c3 = Cache.create cfg.llc;
    pf;
    pf_buf = Array.make (Prefetcher.degree pf) 0;
    loads = 0;
    stores = 0;
    l1_misses = 0;
    l2_misses = 0;
    llc_misses = 0;
    prefetches = 0;
  }

let config t = t.cfg

let line_bytes t = t.cfg.l1.Cache.line_bytes

(* Fill [line] into every level without demand accounting. *)
let[@inline] prefetch_fill t line =
  Cache.insert t.c3 line;
  Cache.insert t.c2 line;
  Cache.insert t.c1 line;
  t.prefetches <- t.prefetches + 1

let run_prefetcher t line =
  if t.cfg.prefetch then begin
    let n = Prefetcher.observe_into t.pf line t.pf_buf in
    for i = 0 to n - 1 do
      let l = Array.unsafe_get t.pf_buf i in
      if l >= 0 then prefetch_fill t l
    done
  end

(* Demand access for the line; returns latency and maintains inclusion. *)
let demand t line ~is_load =
  if Cache.access t.c1 line then t.cfg.lat_l1
  else begin
    if is_load then t.l1_misses <- t.l1_misses + 1;
    if Cache.access t.c2 line then t.cfg.lat_l2
    else begin
      if is_load then t.l2_misses <- t.l2_misses + 1;
      if Cache.access t.c3 line then t.cfg.lat_llc
      else begin
        if is_load then t.llc_misses <- t.llc_misses + 1;
        t.cfg.lat_mem
      end
    end
  end

let load t addr =
  let line = Cache.line_of_addr t.c1 addr in
  t.loads <- t.loads + 1;
  let lat = demand t line ~is_load:true in
  run_prefetcher t line;
  lat

let store t addr =
  let line = Cache.line_of_addr t.c1 addr in
  t.stores <- t.stores + 1;
  ignore (demand t line ~is_load:false);
  run_prefetcher t line;
  t.cfg.lat_store

(* Direct loops over the line range, repeating the exact per-line sequence
   of [load]/[store]; replaces a closure-per-call [range_fold]. *)
let load_range t addr bytes =
  if bytes <= 0 then 0
  else begin
    let lb = line_bytes t in
    let first = addr / lb and last = (addr + bytes - 1) / lb in
    let total = ref 0 in
    for line = first to last do
      t.loads <- t.loads + 1;
      let lat = demand t line ~is_load:true in
      run_prefetcher t line;
      total := !total + lat
    done;
    !total
  end

let store_range t addr bytes =
  if bytes <= 0 then 0
  else begin
    let lb = line_bytes t in
    let first = addr / lb and last = (addr + bytes - 1) / lb in
    let lat_store = t.cfg.lat_store in
    let total = ref 0 in
    for line = first to last do
      t.stores <- t.stores + 1;
      ignore (demand t line ~is_load:false);
      run_prefetcher t line;
      total := !total + lat_store
    done;
    !total
  end

let counters t =
  {
    loads = t.loads;
    stores = t.stores;
    l1_misses = t.l1_misses;
    l2_misses = t.l2_misses;
    llc_misses = t.llc_misses;
    prefetches = t.prefetches;
  }

let reset_counters t =
  t.loads <- 0;
  t.stores <- 0;
  t.l1_misses <- 0;
  t.l2_misses <- 0;
  t.llc_misses <- 0;
  t.prefetches <- 0

let flush t =
  Cache.invalidate_all t.c1;
  Cache.invalidate_all t.c2;
  Cache.invalidate_all t.c3;
  Prefetcher.reset t.pf;
  reset_counters t
