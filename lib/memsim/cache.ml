type geometry = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
}

type t = {
  geom : geometry;
  sets : int;
  set_mask : int;
  line_shift : int;
  (* tags.(set * ways + way); -1 = invalid *)
  tags : int array;
  (* LRU stamps, same indexing; larger = more recent *)
  stamps : int array;
  mutable clock : int;
  (* Last-access memo: the slot where [last_line] was last found.  Purely an
     accelerator — a hit is validated against [tags] (the line may have been
     evicted since), and the fast path performs exactly the LRU [touch] the
     full associative probe would, so cache state evolution is bit-identical
     with or without memo hits. *)
  mutable last_line : int;
  mutable last_slot : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create geom =
  if not (is_pow2 geom.line_bytes) then
    invalid_arg "Cache.create: line size must be a power of two";
  if geom.ways <= 0 then invalid_arg "Cache.create: ways must be positive";
  let sets = geom.size_bytes / (geom.ways * geom.line_bytes) in
  if sets <= 0 || not (is_pow2 sets) then
    invalid_arg "Cache.create: geometry must yield a power-of-two set count";
  {
    geom;
    sets;
    set_mask = sets - 1;
    line_shift = log2 geom.line_bytes;
    tags = Array.make (sets * geom.ways) (-1);
    stamps = Array.make (sets * geom.ways) 0;
    clock = 0;
    last_line = -1;
    last_slot = 0;
  }

let geometry t = t.geom

let[@inline] line_of_addr t addr = addr lsr t.line_shift

let[@inline] base_of_line t line = (line land t.set_mask) * t.geom.ways

(* A plain counting loop, not a local recursive function: a [let rec]
   closure here captures [t]/[line]/[base] and is allocated per probe, which
   dominated the host-side allocation of the whole simulation hot path.
   (The refs below compile to mutable locals — no allocation.) *)
let find t line =
  let base = base_of_line t line in
  let ways = t.geom.ways in
  let slot = ref (-1) in
  let w = ref 0 in
  while !slot < 0 && !w < ways do
    if Array.unsafe_get t.tags (base + !w) = line then slot := base + !w;
    incr w
  done;
  !slot

let[@inline] touch t slot =
  t.clock <- t.clock + 1;
  Array.unsafe_set t.stamps slot t.clock

let victim t line =
  let base = base_of_line t line in
  let best = ref base and best_stamp = ref max_int in
  for w = 0 to t.geom.ways - 1 do
    let slot = base + w in
    if Array.unsafe_get t.tags slot = -1 then begin
      (* Invalid way: take it immediately by forcing the minimum. *)
      if !best_stamp > min_int then begin
        best := slot;
        best_stamp := min_int
      end
    end
    else if Array.unsafe_get t.stamps slot < !best_stamp then begin
      best := slot;
      best_stamp := Array.unsafe_get t.stamps slot
    end
  done;
  !best

let access t line =
  (* Memo fast path: repeated access to the most recent line skips the
     associative probe; the tag check catches eviction since. *)
  if line = t.last_line && Array.unsafe_get t.tags t.last_slot = line then begin
    touch t t.last_slot;
    true
  end
  else begin
    let slot = find t line in
    if slot >= 0 then begin
      t.last_line <- line;
      t.last_slot <- slot;
      touch t slot;
      true
    end
    else begin
      let slot = victim t line in
      Array.unsafe_set t.tags slot line;
      t.last_line <- line;
      t.last_slot <- slot;
      touch t slot;
      false
    end
  end

let probe t line = find t line >= 0

let insert t line =
  if line = t.last_line && Array.unsafe_get t.tags t.last_slot = line then
    touch t t.last_slot
  else begin
    let slot = find t line in
    if slot >= 0 then begin
      t.last_line <- line;
      t.last_slot <- slot;
      touch t slot
    end
    else begin
      let slot = victim t line in
      Array.unsafe_set t.tags slot line;
      t.last_line <- line;
      t.last_slot <- slot;
      touch t slot
    end
  end

let invalidate_all t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.clock <- 0;
  t.last_line <- -1;
  t.last_slot <- 0
