(** The three-level cache hierarchy with latencies and event counters.

    Stands in for the paper's `perf` measurements (§4.2 "Cache Statistics"):
    it exposes the same three counters the paper plots — total loads
    ([L1-dcache-loads]), L1 load misses and LLC load misses — plus latency
    accounting that feeds the simulated execution clock. *)

type t

type config = {
  l1 : Cache.geometry;
  l2 : Cache.geometry;
  llc : Cache.geometry;
  lat_l1 : int;  (** cycles on an L1 hit *)
  lat_l2 : int;  (** cycles on an L2 hit *)
  lat_llc : int;  (** cycles on an LLC hit *)
  lat_mem : int;  (** cycles on a full miss *)
  lat_store : int;
      (** cycles charged per store: stores update cache state but are
          write-buffered, so they cost a small fixed latency instead of the
          miss penalty *)
  prefetch : bool;  (** enable the stream prefetcher *)
  tlb : bool;
      (** enable the per-core data TLB model: misses add [lat_tlb_miss]
          (a page-table walk).  Off by default — the paper's counters do
          not include dTLB events, but relocation's page-locality benefit
          (packing hot objects onto fewer pages) can be studied with it
          (see the bench ablation). *)
  tlb_entries : int;  (** dTLB capacity in pages (64, like a client core) *)
  tlb_ways : int;  (** dTLB associativity *)
  tlb_page_bytes : int;  (** virtual page size (4 KiB) *)
  lat_tlb_miss : int;  (** page-walk cycles added on a dTLB miss *)
}

val default_config : config
(** The paper's client machine (§4): 32 KB L1d / 256 KB L2 / 4 MB LLC, 64 B
    lines, prefetching on, latencies 4/12/40/200 cycles. *)

type counters = {
  loads : int;  (** demand loads (L1-dcache-loads) *)
  stores : int;
  l1_misses : int;  (** demand loads missing L1 *)
  l2_misses : int;
  llc_misses : int;  (** demand loads missing LLC (served by memory) *)
  prefetches : int;  (** prefetch fills issued *)
}

val create : config -> t

val config : t -> config

val line_bytes : t -> int

val load : t -> int -> int
(** [load t addr] performs a demand load of the line containing byte address
    [addr]; returns the latency in cycles and updates counters.  Drives the
    prefetcher. *)

val store : t -> int -> int
(** [store t addr] models a write-allocate store: the line is filled into
    the hierarchy, but the returned latency is the fixed [lat_store]
    (write buffers hide miss latency).  Counted separately from loads
    (perf's L1-dcache-loads excludes stores). *)

val load_range : t -> int -> int -> int
(** [load_range t addr bytes] loads every line overlapped by
    [\[addr, addr+bytes)]; returns total latency. *)

val store_range : t -> int -> int -> int

val counters : t -> counters

val reset_counters : t -> unit
(** Zero the counters but keep cache contents (used at the warm-up boundary,
    mirroring the paper's DaCapo methodology). *)

val flush : t -> unit
(** Invalidate all levels and reset the prefetcher and counters. *)
