(** Per-shard deferred traffic buffers for epoch-sharded simulation.

    One [t] per shard core of a sharded {!Machine}: the shard's logged
    accesses for the current epoch, the LLC-bound request stream its replay
    produced, the privately-resolved latency, and the machine-wide counter
    deltas awaiting the sequential merge.  The record is exposed because
    {!Machine} is its only real client and the replay loop is hot; treat it
    as {!Machine}'s internals elsewhere. *)

type t = {
  mutable log : int array;  (** access log: [(addr lsl 2) lor op] entries *)
  mutable log_len : int;
  mutable llc : int array;  (** LLC stream: [(line lsl 2) lor kind] entries *)
  mutable llc_len : int;
  mutable lat : int;  (** latency resolved privately during replay *)
  mutable d_loads : int;  (** machine-wide counter deltas, folded at merge *)
  mutable d_stores : int;
  mutable d_l1m : int;
  mutable d_l2m : int;
  mutable d_pf : int;
  mutable d_tlbm : int;
}

(** Access-log op tags. Range ops are followed by a bare byte count. *)

val op_load : int
val op_store : int
val op_load_range : int
val op_store_range : int

(** LLC-stream kind tags: demand loads carry latency back to the shard and
    count misses; demand stores only install; inserts are prefetch fills. *)

val llc_demand_load : int
val llc_demand_store : int
val llc_insert : int

val create : unit -> t

val log_access : t -> op:int -> int -> unit
(** Append a single-address access to the epoch's log. *)

val log_range : t -> op:int -> int -> int -> unit
(** [log_range t ~op addr bytes] appends a range access. *)

val push_llc : t -> kind:int -> int -> unit
(** Append to the LLC request stream (called by replay). *)

val pending : t -> bool
(** Whether the epoch has logged, not-yet-merged accesses. *)

val reset_epoch : t -> unit
(** Clear log, LLC stream, latency and deltas (done by merge). *)
