(** A single level of set-associative cache with LRU replacement.

    Addresses are byte addresses in the simulated virtual address space; the
    cache operates on line-granular tags.  This module is purely about
    hit/miss bookkeeping — latencies and inter-level traffic live in
    {!Hierarchy}. *)

type t

type geometry = {
  size_bytes : int;  (** total capacity *)
  ways : int;  (** associativity *)
  line_bytes : int;  (** cache line size, a power of two (64 in the paper) *)
}

val create : geometry -> t
(** @raise Invalid_argument if the geometry is not a power-of-two number of
    sets or the line size is not a power of two. *)

val geometry : t -> geometry

val line_of_addr : t -> int -> int
(** [line_of_addr t addr] is the line-granular address ([addr / line_bytes]). *)

val access : t -> int -> bool
(** [access t line] looks up line-address [line]; on hit, refreshes LRU and
    returns [true]; on miss, inserts [line] (evicting the LRU way) and returns
    [false]. *)

val probe : t -> int -> bool
(** [probe t line] is a lookup with no side effects (no LRU update, no fill). *)

val insert : t -> int -> unit
(** [insert t line] fills [line] without counting as a demand access (used for
    prefetches).  No-op if already present (but refreshes LRU). *)

val invalidate_all : t -> unit
(** Empty the cache (between benchmark runs). *)
