(** A simulated far-memory tier (CXL/NVM-style) behind the shared LLC.

    The tier is a capacity-bounded set of {e resident} address granules
    with one flat access latency, [lat_far].  {!Machine} consults it on
    every demand-load LLC miss: a miss whose line falls in a resident
    granule is served at [lat_far] instead of [lat_mem] (stores stay
    write-buffered and never pay far latency, matching the inline store
    model).

    Residency is keyed by raw byte address — the tier knows nothing about
    heap pages, keeping this module below [hcsgc_heap] in the dependency
    order.  The collector drives demotion/promotion of whole pages and
    mirrors residency into [Page.tier]/[Heap.far_bytes]; the tiering
    property tests check the two stay in lock-step.

    Determinism: residency is only mutated by the collector (on the
    logical instruction stream) and only read inline on the simulating
    domain or during the sequential LLC merge of sharded execution, so
    tiered runs are byte-identical at any [--shard-domains] count. *)

type t

val create :
  granule_bytes:int -> capacity_bytes:int -> lat_far:int -> unit -> t
(** [create ~granule_bytes ~capacity_bytes ~lat_far ()] builds an empty
    tier.  [capacity_bytes] must be a whole number of granules.
    @raise Invalid_argument on a non-positive granule or latency, or a
    misaligned capacity. *)

val granule_bytes : t -> int
val capacity_bytes : t -> int

val lat_far : t -> int
(** Cycles charged for a demand load that misses the LLC into a resident
    granule (replaces [lat_mem]). *)

val used_bytes : t -> int
(** Bytes currently resident, in O(1). *)

val peak_bytes : t -> int
(** High-water mark of {!used_bytes} — the run's DRAM-footprint saving. *)

val resident : t -> int -> bool
(** [resident t addr] — whether the granule containing byte address
    [addr] is far-resident.  O(1); called on the LLC-miss path. *)

val would_fit : t -> bytes:int -> bool

val demote : t -> addr:int -> bytes:int -> bool
(** Mark the granule-aligned range resident.  Returns [false] (changing
    nothing) if it would exceed capacity.
    @raise Invalid_argument on a misaligned range or double demotion. *)

val promote : t -> addr:int -> bytes:int -> unit
(** Remove the granule-aligned range from the tier.
    @raise Invalid_argument if any granule is not resident. *)

val reset : t -> unit
(** Empty the tier and zero {!used_bytes}/{!peak_bytes}. *)
