(** A multi-core machine model: per-core L1/L2 and stream prefetcher, shared
    LLC.

    The paper's client machine runs mutator and GC threads on separate
    (hyper)cores: GC work "stays hidden in an unloaded system" but still
    pollutes the shared LLC and shows up in whole-process perf counters
    (§4.2, §4.4).

    {2 Counter scopes}

    Two counter families coexist and it matters which one a reading comes
    from:

    - {b Machine-wide} ({!counters}, {!tlb_misses}): all cores summed —
      what process-level perf reports (§4.2: "the statistics is for the
      whole process").  In sharded mode these are maintained by the merging
      domain only and therefore include a shard's traffic {e only after}
      that shard's epoch has been merged.
    - {b Per-shard / per-core} ({!core_counters}, {!shard_counters},
      {!core_tlb_misses}): one private hierarchy's view, for attributing
      traffic to mutator vs GC threads.  Loads, stores, L1/L2/TLB misses
      and prefetches are private-state facts and are updated during replay;
      LLC misses need the shared LLC and land at merge.

    {2 Epoch sharding}

    {!attach_shards} puts cores [0 .. n-1] into {e deferred} mode: their
    {!load}/{!store}/{!load_range}/{!store_range} calls return latency [0]
    and append to a per-shard access log instead of simulating.  The log is
    later simulated in two phases: {!replay_shard} (parallel-safe — touches
    only the shard's private caches, prefetcher and counters, emitting the
    accesses that fall through to the LLC into a per-shard request stream)
    and {!merge_shard} (sequential — resolves the stream against the shared
    LLC and returns the shard's total deferred latency).  Merging shards in
    a fixed order makes the machine's evolution a pure function of the
    logged traffic: byte-identical results at any worker-domain count.
    Cores [>= n] (the GC core) keep the classic inline behaviour. *)

type t

val create : ?cfg:Hierarchy.config -> cores:int -> unit -> t
(** [create ~cores ()] builds [cores] private L1/L2 pairs sharing one LLC.
    @raise Invalid_argument if [cores < 1]. *)

val cores : t -> int

val line_bytes : t -> int

val load : t -> core:int -> int -> int
(** Demand load of the line containing the byte address, on the given core;
    returns latency in cycles.  On a shard core the access is logged and
    the result is [0] — the latency is returned by {!merge_shard}. *)

val store : t -> core:int -> int -> int

val load_range : t -> core:int -> int -> int -> int
(** [load_range t ~core addr bytes] touches every line of the range. *)

val store_range : t -> core:int -> int -> int -> int

(** {2 Epoch sharding} *)

val attach_shards : t -> int -> unit
(** [attach_shards t n] defers cores [0 .. n-1] (see module doc).  [0]
    restores fully-inline simulation.  Discards any previous shard logs.
    @raise Invalid_argument if [n < 0] or [n > cores t]. *)

val shards : t -> int
(** Attached shard count (0 = classic inline machine). *)

val shards_dirty : t -> bool
(** Whether any shard has logged accesses awaiting replay + merge. *)

val replay_shard : t -> shard:int -> unit
(** Simulate the shard's logged epoch against its private state only.
    Distinct shards may replay concurrently from different domains (the
    caller provides the happens-before edges, e.g. via
    {!Hcsgc_exec.Pool.fork_join}). *)

val merge_shard : t -> shard:int -> int
(** Resolve the shard's LLC request stream against the shared LLC, fold
    its counter deltas into the machine-wide totals, clear its epoch, and
    return the shard's total deferred latency.  Must be called from one
    domain at a time, after {!replay_shard}, in a fixed shard order for
    deterministic results. *)

val flush_shards : t -> int array
(** Replay then merge every shard inline (shard order); returns the
    per-shard latencies.  The single-domain convenience used by direct
    Machine clients and tests. *)

val shard_counters : t -> shard:int -> Hierarchy.counters
(** Per-shard counters — the shard's private hierarchy view (equals
    {!core_counters} of the same index; see {e Counter scopes} above).
    @raise Invalid_argument outside [0 .. shards t - 1]. *)

(** {2 Counters} *)

val counters : t -> Hierarchy.counters
(** Machine-wide counters (all cores summed) — what process-level perf
    reports.  In sharded mode, merged epochs only. *)

val core_counters : t -> core:int -> Hierarchy.counters
(** Per-core counters, for attributing traffic to mutator vs GC threads
    (not available to the paper's methodology, but useful for analysis). *)

val tlb_misses : t -> int
(** Machine-wide dTLB misses (0 unless the config enables the TLB model). *)

val core_tlb_misses : t -> core:int -> int

(** {2 Far-memory tier} *)

val set_tier : t -> Tier.t option -> unit
(** Attach (or detach with [None]) a far-memory tier.  With a tier
    attached, every demand-load LLC miss whose line falls in a resident
    {!Tier} granule is served at [Tier.lat_far] instead of [lat_mem] and
    counted in {!far_loads}.  Stores are unaffected (write-buffered).
    Residency lookups happen inline on unsharded cores and during the
    sequential {!merge_shard} on sharded ones, so tiered runs stay
    byte-identical at any shard-domain count. *)

val tier : t -> Tier.t option

val far_loads : t -> int
(** Machine-wide count of demand loads served from the far tier (a
    subset of the LLC misses in {!counters}).  Same scope discipline as
    {!tlb_misses}: in sharded mode, merged epochs only. *)

val core_far_loads : t -> core:int -> int

val reset_counters : t -> unit

val flush : t -> unit
(** Invalidate all caches and prefetchers, zero counters, and discard any
    pending shard logs. *)
