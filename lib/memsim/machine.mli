(** A multi-core machine model: per-core L1/L2 and stream prefetcher, shared
    LLC.

    The paper's client machine runs mutator and GC threads on separate
    (hyper)cores: GC work "stays hidden in an unloaded system" but still
    pollutes the shared LLC and shows up in whole-process perf counters
    (§4.2, §4.4).  Counters here are machine-wide, like perf's process-level
    events. *)

type t

val create : ?cfg:Hierarchy.config -> cores:int -> unit -> t
(** [create ~cores ()] builds [cores] private L1/L2 pairs sharing one LLC.
    @raise Invalid_argument if [cores < 1]. *)

val cores : t -> int

val line_bytes : t -> int

val load : t -> core:int -> int -> int
(** Demand load of the line containing the byte address, on the given core;
    returns latency in cycles. *)

val store : t -> core:int -> int -> int

val load_range : t -> core:int -> int -> int -> int
(** [load_range t ~core addr bytes] touches every line of the range. *)

val store_range : t -> core:int -> int -> int -> int

val counters : t -> Hierarchy.counters
(** Machine-wide counters (all cores summed) — what process-level perf
    reports (§4.2: "the statistics is for the whole process"). *)

val core_counters : t -> core:int -> Hierarchy.counters
(** Per-core counters, for attributing traffic to mutator vs GC threads
    (not available to the paper's methodology, but useful for analysis). *)

val tlb_misses : t -> int
(** Machine-wide dTLB misses (0 unless the config enables the TLB model). *)

val core_tlb_misses : t -> core:int -> int

val reset_counters : t -> unit

val flush : t -> unit
(** Invalidate all caches and prefetchers, zero counters. *)
