type core = {
  l1 : Cache.t;
  l2 : Cache.t;
  pf : Prefetcher.t;
  pf_buf : int array;  (* preallocated Prefetcher.observe_into target *)
  tlb : Cache.t option;
  mutable c_tlbm : int;
  mutable c_loads : int;
  mutable c_stores : int;
  mutable c_l1m : int;
  mutable c_l2m : int;
  mutable c_llcm : int;
  mutable c_pf : int;
}

type t = {
  cfg : Hierarchy.config;
  llc : Cache.t;
  core_arr : core array;
  mutable loads : int;
  mutable stores : int;
  mutable l1_misses : int;
  mutable l2_misses : int;
  mutable llc_misses : int;
  mutable prefetches : int;
  mutable tlb_misses_ : int;
}

let create ?(cfg = Hierarchy.default_config) ~cores () =
  if cores < 1 then invalid_arg "Machine.create: need at least one core";
  {
    cfg;
    llc = Cache.create cfg.Hierarchy.llc;
    core_arr =
      Array.init cores (fun _ ->
          let pf = Prefetcher.create () in
          {
            l1 = Cache.create cfg.Hierarchy.l1;
            l2 = Cache.create cfg.Hierarchy.l2;
            pf;
            pf_buf = Array.make (Prefetcher.degree pf) 0;
            tlb =
              (if cfg.Hierarchy.tlb then
                 (* A TLB is a cache of page translations: model it as a
                    cache whose "line" is one virtual page. *)
                 Some
                   (Cache.create
                      {
                        Cache.size_bytes =
                          cfg.Hierarchy.tlb_entries * cfg.Hierarchy.tlb_page_bytes;
                        ways = cfg.Hierarchy.tlb_ways;
                        line_bytes = cfg.Hierarchy.tlb_page_bytes;
                      })
               else None);
            c_tlbm = 0;
            c_loads = 0;
            c_stores = 0;
            c_l1m = 0;
            c_l2m = 0;
            c_llcm = 0;
            c_pf = 0;
          });
    loads = 0;
    stores = 0;
    l1_misses = 0;
    l2_misses = 0;
    llc_misses = 0;
    prefetches = 0;
    tlb_misses_ = 0;
  }

let cores t = Array.length t.core_arr

let line_bytes t = t.cfg.Hierarchy.l1.Cache.line_bytes

let core t i =
  if i < 0 || i >= Array.length t.core_arr then
    invalid_arg "Machine: core index out of range";
  t.core_arr.(i)

let[@inline] prefetch_fill t c line =
  Cache.insert t.llc line;
  Cache.insert c.l2 line;
  Cache.insert c.l1 line;
  t.prefetches <- t.prefetches + 1;
  c.c_pf <- c.c_pf + 1

let run_prefetcher t c line =
  if t.cfg.Hierarchy.prefetch then begin
    let n = Prefetcher.observe_into c.pf line c.pf_buf in
    for i = 0 to n - 1 do
      let l = Array.unsafe_get c.pf_buf i in
      if l >= 0 then prefetch_fill t c l
    done
  end

let demand t c line ~is_load =
  if Cache.access c.l1 line then t.cfg.Hierarchy.lat_l1
  else begin
    if is_load then begin
      t.l1_misses <- t.l1_misses + 1;
      c.c_l1m <- c.c_l1m + 1
    end;
    if Cache.access c.l2 line then t.cfg.Hierarchy.lat_l2
    else begin
      if is_load then begin
        t.l2_misses <- t.l2_misses + 1;
        c.c_l2m <- c.c_l2m + 1
      end;
      if Cache.access t.llc line then t.cfg.Hierarchy.lat_llc
      else begin
        if is_load then begin
          t.llc_misses <- t.llc_misses + 1;
          c.c_llcm <- c.c_llcm + 1
        end;
        t.cfg.Hierarchy.lat_mem
      end
    end
  end

(* Translate [addr]: 0 extra cycles on a dTLB hit, a page walk on a miss. *)
let[@inline] translate t c addr =
  match c.tlb with
  | None -> 0
  | Some tlb ->
      if Cache.access tlb (Cache.line_of_addr tlb addr) then 0
      else begin
        t.tlb_misses_ <- t.tlb_misses_ + 1;
        c.c_tlbm <- c.c_tlbm + 1;
        t.cfg.Hierarchy.lat_tlb_miss
      end

let load t ~core:i addr =
  let c = core t i in
  let line = Cache.line_of_addr c.l1 addr in
  t.loads <- t.loads + 1;
  c.c_loads <- c.c_loads + 1;
  let walk = translate t c addr in
  let lat = demand t c line ~is_load:true in
  run_prefetcher t c line;
  walk + lat

let store t ~core:i addr =
  let c = core t i in
  let line = Cache.line_of_addr c.l1 addr in
  t.stores <- t.stores + 1;
  c.c_stores <- c.c_stores + 1;
  let walk = translate t c addr in
  ignore (demand t c line ~is_load:false);
  run_prefetcher t c line;
  walk + t.cfg.Hierarchy.lat_store

(* The range walks repeat the exact per-line sequence of [load]/[store]
   (counters, translation, demand, prefetcher), but resolve the core once
   and run a direct loop — the closure-per-call [range_fold]/partial
   application this replaces dominated the GC relocation copy path. *)
let load_range t ~core:i addr bytes =
  if bytes <= 0 then 0
  else begin
    let c = core t i in
    let lb = line_bytes t in
    let first = addr / lb and last = (addr + bytes - 1) / lb in
    let total = ref 0 in
    for line = first to last do
      t.loads <- t.loads + 1;
      c.c_loads <- c.c_loads + 1;
      let walk = translate t c (line * lb) in
      let lat = demand t c line ~is_load:true in
      run_prefetcher t c line;
      total := !total + walk + lat
    done;
    !total
  end

let store_range t ~core:i addr bytes =
  if bytes <= 0 then 0
  else begin
    let c = core t i in
    let lb = line_bytes t in
    let first = addr / lb and last = (addr + bytes - 1) / lb in
    let lat_store = t.cfg.Hierarchy.lat_store in
    let total = ref 0 in
    for line = first to last do
      t.stores <- t.stores + 1;
      c.c_stores <- c.c_stores + 1;
      let walk = translate t c (line * lb) in
      ignore (demand t c line ~is_load:false);
      run_prefetcher t c line;
      total := !total + walk + lat_store
    done;
    !total
  end

let counters t =
  {
    Hierarchy.loads = t.loads;
    stores = t.stores;
    l1_misses = t.l1_misses;
    l2_misses = t.l2_misses;
    llc_misses = t.llc_misses;
    prefetches = t.prefetches;
  }

let core_counters t ~core:i =
  let c = core t i in
  {
    Hierarchy.loads = c.c_loads;
    stores = c.c_stores;
    l1_misses = c.c_l1m;
    l2_misses = c.c_l2m;
    llc_misses = c.c_llcm;
    prefetches = c.c_pf;
  }

let tlb_misses t = t.tlb_misses_

let core_tlb_misses t ~core:i = (core t i).c_tlbm

let reset_counters t =
  t.loads <- 0;
  t.stores <- 0;
  t.l1_misses <- 0;
  t.l2_misses <- 0;
  t.llc_misses <- 0;
  t.prefetches <- 0;
  t.tlb_misses_ <- 0;
  Array.iter
    (fun c ->
      c.c_loads <- 0;
      c.c_stores <- 0;
      c.c_l1m <- 0;
      c.c_l2m <- 0;
      c.c_llcm <- 0;
      c.c_pf <- 0;
      c.c_tlbm <- 0)
    t.core_arr

let flush t =
  Cache.invalidate_all t.llc;
  Array.iter
    (fun c ->
      Cache.invalidate_all c.l1;
      Cache.invalidate_all c.l2;
      Option.iter Cache.invalidate_all c.tlb;
      Prefetcher.reset c.pf)
    t.core_arr;
  reset_counters t
