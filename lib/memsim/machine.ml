type core = {
  l1 : Cache.t;
  l2 : Cache.t;
  pf : Prefetcher.t;
  pf_buf : int array;  (* preallocated Prefetcher.observe_into target *)
  tlb : Cache.t option;
  mutable c_tlbm : int;
  mutable c_loads : int;
  mutable c_stores : int;
  mutable c_l1m : int;
  mutable c_l2m : int;
  mutable c_llcm : int;
  mutable c_pf : int;
  mutable c_far : int;
}

type t = {
  cfg : Hierarchy.config;
  llc : Cache.t;
  core_arr : core array;
  (* Machine-wide counter totals.  In sharded mode these are only updated
     on the merging domain (inline for non-shard cores, via the buffered
     deltas for shard cores), so they stay race-free. *)
  mutable loads : int;
  mutable stores : int;
  mutable l1_misses : int;
  mutable l2_misses : int;
  mutable llc_misses : int;
  mutable prefetches : int;
  mutable tlb_misses_ : int;
  mutable far_loads_ : int;
  (* Optional far-memory tier behind the LLC.  Consulted only on the
     demand-load LLC-miss path — inline (unsharded cores / GC core) or in
     the sequential [merge_shard] — so tiered results stay byte-identical
     at any shard-domain count.  [None] (the default) charges [lat_mem]
     for every LLC miss, exactly the pre-tier machine. *)
  mutable tier : Tier.t option;
  (* Epoch sharding: cores [0 .. nshards-1] defer their traffic into
     per-shard logs instead of simulating inline ([nshards = 0] is the
     classic fully-inline machine).  See {!attach_shards}. *)
  mutable nshards : int;
  mutable shard_arr : Shard_cache.t array;
}

let create ?(cfg = Hierarchy.default_config) ~cores () =
  if cores < 1 then invalid_arg "Machine.create: need at least one core";
  {
    cfg;
    llc = Cache.create cfg.Hierarchy.llc;
    core_arr =
      Array.init cores (fun _ ->
          let pf = Prefetcher.create () in
          {
            l1 = Cache.create cfg.Hierarchy.l1;
            l2 = Cache.create cfg.Hierarchy.l2;
            pf;
            pf_buf = Array.make (Prefetcher.degree pf) 0;
            tlb =
              (if cfg.Hierarchy.tlb then
                 (* A TLB is a cache of page translations: model it as a
                    cache whose "line" is one virtual page. *)
                 Some
                   (Cache.create
                      {
                        Cache.size_bytes =
                          cfg.Hierarchy.tlb_entries * cfg.Hierarchy.tlb_page_bytes;
                        ways = cfg.Hierarchy.tlb_ways;
                        line_bytes = cfg.Hierarchy.tlb_page_bytes;
                      })
               else None);
            c_tlbm = 0;
            c_loads = 0;
            c_stores = 0;
            c_l1m = 0;
            c_l2m = 0;
            c_llcm = 0;
            c_pf = 0;
            c_far = 0;
          });
    loads = 0;
    stores = 0;
    l1_misses = 0;
    l2_misses = 0;
    llc_misses = 0;
    prefetches = 0;
    tlb_misses_ = 0;
    far_loads_ = 0;
    tier = None;
    nshards = 0;
    shard_arr = [||];
  }

let cores t = Array.length t.core_arr

let attach_shards t n =
  if n < 0 || n > Array.length t.core_arr then
    invalid_arg "Machine.attach_shards: shard count out of range";
  t.nshards <- n;
  t.shard_arr <- Array.init n (fun _ -> Shard_cache.create ())

let shards t = t.nshards

let set_tier t tier = t.tier <- tier

let tier t = t.tier

let shards_dirty t =
  let dirty = ref false in
  for i = 0 to t.nshards - 1 do
    if Shard_cache.pending t.shard_arr.(i) then dirty := true
  done;
  !dirty

let line_bytes t = t.cfg.Hierarchy.l1.Cache.line_bytes

let core t i =
  if i < 0 || i >= Array.length t.core_arr then
    invalid_arg "Machine: core index out of range";
  t.core_arr.(i)

let[@inline] prefetch_fill t c line =
  Cache.insert t.llc line;
  Cache.insert c.l2 line;
  Cache.insert c.l1 line;
  t.prefetches <- t.prefetches + 1;
  c.c_pf <- c.c_pf + 1

let run_prefetcher t c line =
  if t.cfg.Hierarchy.prefetch then begin
    let n = Prefetcher.observe_into c.pf line c.pf_buf in
    for i = 0 to n - 1 do
      let l = Array.unsafe_get c.pf_buf i in
      if l >= 0 then prefetch_fill t c l
    done
  end

(* Memory-level latency of a demand load that missed the whole cache
   hierarchy: [lat_far] when the line is far-tier resident, else
   [lat_mem].  (Stores never reach here for latency — they are
   write-buffered and charged [lat_store].) *)
let[@inline] far_or_mem t c line =
  match t.tier with
  | Some tier when Tier.resident tier (line * t.cfg.Hierarchy.l1.Cache.line_bytes)
    ->
      t.far_loads_ <- t.far_loads_ + 1;
      c.c_far <- c.c_far + 1;
      Tier.lat_far tier
  | _ -> t.cfg.Hierarchy.lat_mem

let demand t c line ~is_load =
  if Cache.access c.l1 line then t.cfg.Hierarchy.lat_l1
  else begin
    if is_load then begin
      t.l1_misses <- t.l1_misses + 1;
      c.c_l1m <- c.c_l1m + 1
    end;
    if Cache.access c.l2 line then t.cfg.Hierarchy.lat_l2
    else begin
      if is_load then begin
        t.l2_misses <- t.l2_misses + 1;
        c.c_l2m <- c.c_l2m + 1
      end;
      if Cache.access t.llc line then t.cfg.Hierarchy.lat_llc
      else begin
        if is_load then begin
          t.llc_misses <- t.llc_misses + 1;
          c.c_llcm <- c.c_llcm + 1;
          far_or_mem t c line
        end
        else t.cfg.Hierarchy.lat_mem
      end
    end
  end

(* Translate [addr]: 0 extra cycles on a dTLB hit, a page walk on a miss. *)
let[@inline] translate t c addr =
  match c.tlb with
  | None -> 0
  | Some tlb ->
      if Cache.access tlb (Cache.line_of_addr tlb addr) then 0
      else begin
        t.tlb_misses_ <- t.tlb_misses_ + 1;
        c.c_tlbm <- c.c_tlbm + 1;
        t.cfg.Hierarchy.lat_tlb_miss
      end

let load t ~core:i addr =
  if i < t.nshards then begin
    Shard_cache.log_access t.shard_arr.(i) ~op:Shard_cache.op_load addr;
    0
  end
  else begin
    let c = core t i in
    let line = Cache.line_of_addr c.l1 addr in
    t.loads <- t.loads + 1;
    c.c_loads <- c.c_loads + 1;
    let walk = translate t c addr in
    let lat = demand t c line ~is_load:true in
    run_prefetcher t c line;
    walk + lat
  end

let store t ~core:i addr =
  if i < t.nshards then begin
    Shard_cache.log_access t.shard_arr.(i) ~op:Shard_cache.op_store addr;
    0
  end
  else begin
    let c = core t i in
    let line = Cache.line_of_addr c.l1 addr in
    t.stores <- t.stores + 1;
    c.c_stores <- c.c_stores + 1;
    let walk = translate t c addr in
    ignore (demand t c line ~is_load:false);
    run_prefetcher t c line;
    walk + t.cfg.Hierarchy.lat_store
  end

(* The range walks repeat the exact per-line sequence of [load]/[store]
   (counters, translation, demand, prefetcher), but resolve the core once
   and run a direct loop — the closure-per-call [range_fold]/partial
   application this replaces dominated the GC relocation copy path. *)
let load_range t ~core:i addr bytes =
  if bytes <= 0 then 0
  else if i < t.nshards then begin
    Shard_cache.log_range t.shard_arr.(i) ~op:Shard_cache.op_load_range addr
      bytes;
    0
  end
  else begin
    let c = core t i in
    let lb = line_bytes t in
    let first = addr / lb and last = (addr + bytes - 1) / lb in
    let total = ref 0 in
    for line = first to last do
      t.loads <- t.loads + 1;
      c.c_loads <- c.c_loads + 1;
      let walk = translate t c (line * lb) in
      let lat = demand t c line ~is_load:true in
      run_prefetcher t c line;
      total := !total + walk + lat
    done;
    !total
  end

let store_range t ~core:i addr bytes =
  if bytes <= 0 then 0
  else if i < t.nshards then begin
    Shard_cache.log_range t.shard_arr.(i) ~op:Shard_cache.op_store_range addr
      bytes;
    0
  end
  else begin
    let c = core t i in
    let lb = line_bytes t in
    let first = addr / lb and last = (addr + bytes - 1) / lb in
    let lat_store = t.cfg.Hierarchy.lat_store in
    let total = ref 0 in
    for line = first to last do
      t.stores <- t.stores + 1;
      c.c_stores <- c.c_stores + 1;
      let walk = translate t c (line * lb) in
      ignore (demand t c line ~is_load:false);
      run_prefetcher t c line;
      total := !total + walk + lat_store
    done;
    !total
  end

(* ------------------------------------------------------------------ *)
(* Epoch replay: the deferred half of sharded simulation.               *)
(*                                                                      *)
(* [replay_shard] walks one shard's access log against that shard's     *)
(* private core state only — no shared LLC, no machine-wide counters —  *)
(* so any number of shards replay concurrently.  The accesses that miss *)
(* both private levels are emitted, in program order, into the shard's  *)
(* LLC request stream; [merge_shard] then resolves streams against the  *)
(* shared LLC strictly one shard at a time.  Calling merge in a fixed   *)
(* shard order makes the machine's evolution a pure function of the     *)
(* logged traffic, independent of which domains replayed what.          *)
(* ------------------------------------------------------------------ *)

module S = Shard_cache

let[@inline] replay_translate t c s addr =
  match c.tlb with
  | None -> 0
  | Some tlb ->
      if Cache.access tlb (Cache.line_of_addr tlb addr) then 0
      else begin
        c.c_tlbm <- c.c_tlbm + 1;
        s.S.d_tlbm <- s.S.d_tlbm + 1;
        t.cfg.Hierarchy.lat_tlb_miss
      end

(* Private levels of [demand]: an access that misses L1 and L2 is deferred
   to the merge as an LLC request and contributes no latency here. *)
let replay_demand t c s line ~is_load =
  if Cache.access c.l1 line then t.cfg.Hierarchy.lat_l1
  else begin
    if is_load then begin
      c.c_l1m <- c.c_l1m + 1;
      s.S.d_l1m <- s.S.d_l1m + 1
    end;
    if Cache.access c.l2 line then t.cfg.Hierarchy.lat_l2
    else begin
      if is_load then begin
        c.c_l2m <- c.c_l2m + 1;
        s.S.d_l2m <- s.S.d_l2m + 1
      end;
      S.push_llc s line
        ~kind:(if is_load then S.llc_demand_load else S.llc_demand_store);
      0
    end
  end

let replay_prefetcher t c s line =
  if t.cfg.Hierarchy.prefetch then begin
    let n = Prefetcher.observe_into c.pf line c.pf_buf in
    for i = 0 to n - 1 do
      let l = Array.unsafe_get c.pf_buf i in
      if l >= 0 then begin
        S.push_llc s ~kind:S.llc_insert l;
        Cache.insert c.l2 l;
        Cache.insert c.l1 l;
        c.c_pf <- c.c_pf + 1;
        s.S.d_pf <- s.S.d_pf + 1
      end
    done
  end

(* One logged single-address access: the exact [load]/[store] sequence with
   the LLC level deferred.  Stores take [lat_store] and ignore the demand
   latency, as inline stores do. *)
let[@inline] replay_one t c s ~is_load addr =
  if is_load then begin
    c.c_loads <- c.c_loads + 1;
    s.S.d_loads <- s.S.d_loads + 1
  end
  else begin
    c.c_stores <- c.c_stores + 1;
    s.S.d_stores <- s.S.d_stores + 1
  end;
  let line = Cache.line_of_addr c.l1 addr in
  let walk = replay_translate t c s addr in
  let lat = replay_demand t c s line ~is_load in
  replay_prefetcher t c s line;
  s.S.lat <-
    s.S.lat + walk
    + (if is_load then lat else t.cfg.Hierarchy.lat_store)

let check_shard t i =
  if i < 0 || i >= t.nshards then
    invalid_arg "Machine: shard index out of range"

let replay_shard t ~shard:i =
  check_shard t i;
  let s = t.shard_arr.(i) in
  let c = t.core_arr.(i) in
  let log = s.S.log in
  let n = s.S.log_len in
  let lb = line_bytes t in
  let j = ref 0 in
  while !j < n do
    let e = Array.unsafe_get log !j in
    let op = e land 3 and addr = e lsr 2 in
    if op = S.op_load then begin
      replay_one t c s ~is_load:true addr;
      incr j
    end
    else if op = S.op_store then begin
      replay_one t c s ~is_load:false addr;
      incr j
    end
    else begin
      (* Range walk: per line, same as the inline ranges. *)
      let bytes = Array.unsafe_get log (!j + 1) in
      let is_load = op = S.op_load_range in
      let first = addr / lb and last = (addr + bytes - 1) / lb in
      for line = first to last do
        replay_one t c s ~is_load (line * lb)
      done;
      j := !j + 2
    end
  done

let merge_shard t ~shard:i =
  check_shard t i;
  let s = t.shard_arr.(i) in
  let c = t.core_arr.(i) in
  t.loads <- t.loads + s.S.d_loads;
  t.stores <- t.stores + s.S.d_stores;
  t.l1_misses <- t.l1_misses + s.S.d_l1m;
  t.l2_misses <- t.l2_misses + s.S.d_l2m;
  t.prefetches <- t.prefetches + s.S.d_pf;
  t.tlb_misses_ <- t.tlb_misses_ + s.S.d_tlbm;
  let lat = ref s.S.lat in
  let lat_llc = t.cfg.Hierarchy.lat_llc in
  for k = 0 to s.S.llc_len - 1 do
    let e = Array.unsafe_get s.S.llc k in
    let kind = e land 3 and line = e lsr 2 in
    if kind = S.llc_demand_load then begin
      if Cache.access t.llc line then lat := !lat + lat_llc
      else begin
        t.llc_misses <- t.llc_misses + 1;
        c.c_llcm <- c.c_llcm + 1;
        lat := !lat + far_or_mem t c line
      end
    end
    else if kind = S.llc_demand_store then ignore (Cache.access t.llc line)
    else Cache.insert t.llc line
  done;
  S.reset_epoch s;
  !lat

let flush_shards t =
  let lats = Array.make t.nshards 0 in
  for i = 0 to t.nshards - 1 do
    replay_shard t ~shard:i
  done;
  for i = 0 to t.nshards - 1 do
    lats.(i) <- merge_shard t ~shard:i
  done;
  lats

let counters t =
  {
    Hierarchy.loads = t.loads;
    stores = t.stores;
    l1_misses = t.l1_misses;
    l2_misses = t.l2_misses;
    llc_misses = t.llc_misses;
    prefetches = t.prefetches;
  }

let core_counters t ~core:i =
  let c = core t i in
  {
    Hierarchy.loads = c.c_loads;
    stores = c.c_stores;
    l1_misses = c.c_l1m;
    l2_misses = c.c_l2m;
    llc_misses = c.c_llcm;
    prefetches = c.c_pf;
  }

let shard_counters t ~shard:i =
  check_shard t i;
  core_counters t ~core:i

let tlb_misses t = t.tlb_misses_

let core_tlb_misses t ~core:i = (core t i).c_tlbm

let far_loads t = t.far_loads_

let core_far_loads t ~core:i = (core t i).c_far

let reset_counters t =
  t.loads <- 0;
  t.stores <- 0;
  t.l1_misses <- 0;
  t.l2_misses <- 0;
  t.llc_misses <- 0;
  t.prefetches <- 0;
  t.tlb_misses_ <- 0;
  t.far_loads_ <- 0;
  Array.iter
    (fun c ->
      c.c_loads <- 0;
      c.c_stores <- 0;
      c.c_l1m <- 0;
      c.c_l2m <- 0;
      c.c_llcm <- 0;
      c.c_pf <- 0;
      c.c_tlbm <- 0;
      c.c_far <- 0)
    t.core_arr

let flush t =
  Cache.invalidate_all t.llc;
  Array.iter
    (fun c ->
      Cache.invalidate_all c.l1;
      Cache.invalidate_all c.l2;
      Option.iter Cache.invalidate_all c.tlb;
      Prefetcher.reset c.pf)
    t.core_arr;
  (* Logged-but-unmerged epoch traffic is discarded along with the cache
     state it would have touched. *)
  Array.iter S.reset_epoch t.shard_arr;
  reset_counters t
