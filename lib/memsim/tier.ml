(* A far-memory tier behind the LLC (CXL/NVM-style): a capacity-bounded
   set of resident granules with a single flat access latency.  The tier
   knows nothing about heap pages — residency is keyed by raw byte
   address, granule-aligned — so the module stays below hcsgc_heap in the
   dependency order and Machine can consult it at LLC-miss time. *)

type t = {
  granule_bytes : int;
  capacity_bytes : int;
  lat_far : int;
  resident : (int, unit) Hashtbl.t;  (* granule index -> present *)
  mutable used_bytes : int;
  mutable peak_bytes : int;
}

let create ~granule_bytes ~capacity_bytes ~lat_far () =
  if granule_bytes <= 0 then
    invalid_arg "Tier.create: granule_bytes must be positive";
  if capacity_bytes < 0 then
    invalid_arg "Tier.create: capacity_bytes must be non-negative";
  if capacity_bytes mod granule_bytes <> 0 then
    invalid_arg "Tier.create: capacity must be a whole number of granules";
  if lat_far <= 0 then invalid_arg "Tier.create: lat_far must be positive";
  {
    granule_bytes;
    capacity_bytes;
    lat_far;
    resident = Hashtbl.create 64;
    used_bytes = 0;
    peak_bytes = 0;
  }

let granule_bytes t = t.granule_bytes
let capacity_bytes t = t.capacity_bytes
let lat_far t = t.lat_far
let used_bytes t = t.used_bytes
let peak_bytes t = t.peak_bytes

let[@inline] resident t addr = Hashtbl.mem t.resident (addr / t.granule_bytes)

let check_range name t ~addr ~bytes =
  if addr < 0 || bytes <= 0 then
    invalid_arg (name ^ ": range must be non-empty and non-negative");
  if addr mod t.granule_bytes <> 0 || bytes mod t.granule_bytes <> 0 then
    invalid_arg (name ^ ": range must be granule-aligned")

let would_fit t ~bytes = t.used_bytes + bytes <= t.capacity_bytes

let demote t ~addr ~bytes =
  check_range "Tier.demote" t ~addr ~bytes;
  if not (would_fit t ~bytes) then false
  else begin
    let first = addr / t.granule_bytes in
    let last = (addr + bytes - 1) / t.granule_bytes in
    for g = first to last do
      if Hashtbl.mem t.resident g then
        invalid_arg "Tier.demote: granule already resident";
      Hashtbl.replace t.resident g ()
    done;
    t.used_bytes <- t.used_bytes + bytes;
    if t.used_bytes > t.peak_bytes then t.peak_bytes <- t.used_bytes;
    true
  end

let promote t ~addr ~bytes =
  check_range "Tier.promote" t ~addr ~bytes;
  let first = addr / t.granule_bytes in
  let last = (addr + bytes - 1) / t.granule_bytes in
  for g = first to last do
    if not (Hashtbl.mem t.resident g) then
      invalid_arg "Tier.promote: granule not resident";
    Hashtbl.remove t.resident g
  done;
  t.used_bytes <- t.used_bytes - bytes

let reset t =
  Hashtbl.reset t.resident;
  t.used_bytes <- 0;
  t.peak_bytes <- 0
