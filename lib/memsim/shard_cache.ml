(* Per-shard deferred memory traffic for epoch-sharded simulation.

   A sharded {!Machine} does not simulate a shard core's accesses at the
   moment they are issued.  Instead each access is appended to the shard's
   [log] — a flat int buffer, two tag bits per entry — and simulated later
   by {!Machine.replay_shard}, which walks the log against the shard's
   private L1/L2/TLB/prefetcher and emits the accesses that would reach the
   shared LLC into [llc] (same encoding idea: two kind bits per entry).
   Replay touches only this record and the shard's own core state, so any
   number of shards replay concurrently on worker domains; the LLC stream
   is then resolved sequentially, in shard-id order, by
   {!Machine.merge_shard} — which is what makes the result independent of
   how many domains did the replaying.

   Counter deltas ([d_*]) buffer the machine-wide counter increments replay
   would have made: the per-core counters are shard-private and updated
   during replay, but the machine totals are shared, so their increments
   are folded in at merge time. *)

type t = {
  mutable log : int array;
  mutable log_len : int;
  mutable llc : int array;
  mutable llc_len : int;
  mutable lat : int;  (* latency resolved privately during replay *)
  mutable d_loads : int;
  mutable d_stores : int;
  mutable d_l1m : int;
  mutable d_l2m : int;
  mutable d_pf : int;
  mutable d_tlbm : int;
}

(* Access-log entry: [(addr lsl 2) lor op].  Range ops are followed by a
   bare byte count.  Addresses are simulated heap offsets (well under
   2^40), so the shift never overflows a 63-bit int. *)
let op_load = 0
let op_store = 1
let op_load_range = 2
let op_store_range = 3

(* LLC-stream entry: [(line lsl 2) lor kind]. *)
let llc_demand_load = 0
let llc_demand_store = 1
let llc_insert = 2

let create () =
  {
    log = Array.make 1024 0;
    log_len = 0;
    llc = Array.make 256 0;
    llc_len = 0;
    lat = 0;
    d_loads = 0;
    d_stores = 0;
    d_l1m = 0;
    d_l2m = 0;
    d_pf = 0;
    d_tlbm = 0;
  }

let[@inline] push_raw t v =
  let n = Array.length t.log in
  if t.log_len = n then begin
    let bigger = Array.make (2 * n) 0 in
    Array.blit t.log 0 bigger 0 n;
    t.log <- bigger
  end;
  Array.unsafe_set t.log t.log_len v;
  t.log_len <- t.log_len + 1

let[@inline] log_access t ~op addr = push_raw t ((addr lsl 2) lor op)

let[@inline] log_range t ~op addr bytes =
  push_raw t ((addr lsl 2) lor op);
  push_raw t bytes

let[@inline] push_llc t ~kind line =
  let n = Array.length t.llc in
  if t.llc_len = n then begin
    let bigger = Array.make (2 * n) 0 in
    Array.blit t.llc 0 bigger 0 n;
    t.llc <- bigger
  end;
  Array.unsafe_set t.llc t.llc_len ((line lsl 2) lor kind);
  t.llc_len <- t.llc_len + 1

let pending t = t.log_len > 0

let reset_epoch t =
  t.log_len <- 0;
  t.llc_len <- 0;
  t.lat <- 0;
  t.d_loads <- 0;
  t.d_stores <- 0;
  t.d_l1m <- 0;
  t.d_l2m <- 0;
  t.d_pf <- 0;
  t.d_tlbm <- 0
