module Vm = Hcsgc_runtime.Vm
module Rng = Hcsgc_util.Rng

type params = {
  capacity : int;
  buckets : int;
  operations : int;
  key_space : int;
  hot_keys : int;
  hot_bias : float;
  value_words : int;
  seed : int;
}

type result = {
  gets : int;
  hits : int;
  puts : int;
  evictions : int;
  checksum : int;
}

let default =
  {
    capacity = 20_000;
    buckets = 2_048;
    operations = 150_000;
    key_space = 60_000;
    hot_keys = 4_000;
    hot_bias = 0.85;
    value_words = 4;
    seed = 0;
  }

(* Entry object shape:
   refs    = [hash_next; lru_prev; lru_next]
   payload = [key; value...] *)
let f_hash_next = 0
let f_prev = 1
let f_next = 2
let w_key = 0

(* The cache root object: refs = [lru_head; lru_tail] + one slot per hash
   bucket. *)
let r_head = 0
let r_tail = 1
let bucket_slot b = 2 + b

let run vm p =
  if p.capacity <= 0 || p.buckets <= 0 then invalid_arg "Lru_sim.run: bad params";
  let rng = Rng.create p.seed in
  (* The skewed request stream now comes from the shared generator; the
     Hotset distribution consumes the RNG exactly as the old inline code
     did, so results are pinned byte-identical by the regression tests. *)
  let dist =
    Keydist.create
      (Keydist.Hotset { hot_keys = p.hot_keys; hot_bias = p.hot_bias })
      ~key_space:p.key_space
  in
  let root = Vm.alloc vm ~nrefs:(2 + p.buckets) ~nwords:1 in
  Vm.add_root vm root;
  let size = ref 0 in
  let bucket_of key = key mod p.buckets in
  let find key =
    let rec walk = function
      | None -> None
      | Some e ->
          if Vm.load_word vm e w_key = key then Some e
          else walk (Vm.load_ref vm e f_hash_next)
    in
    walk (Vm.load_ref vm root (bucket_slot (bucket_of key)))
  in
  (* Unlink [e] from the LRU list (leaves hash chain untouched). *)
  let lru_unlink e =
    let prev = Vm.load_ref vm e f_prev and next = Vm.load_ref vm e f_next in
    (match prev with
    | Some prev -> Vm.store_ref vm prev f_next next
    | None -> Vm.store_ref vm root r_head next);
    (match next with
    | Some next -> Vm.store_ref vm next f_prev prev
    | None -> Vm.store_ref vm root r_tail prev);
    Vm.store_ref vm e f_prev None;
    Vm.store_ref vm e f_next None
  in
  (* Push [e] at the head of the LRU list. *)
  let lru_push_front e =
    let head = Vm.load_ref vm root r_head in
    Vm.store_ref vm e f_next head;
    Vm.store_ref vm e f_prev None;
    (match head with
    | Some head -> Vm.store_ref vm head f_prev (Some e)
    | None -> Vm.store_ref vm root r_tail (Some e));
    Vm.store_ref vm root r_head (Some e)
  in
  let hash_unlink key e =
    let b = bucket_slot (bucket_of key) in
    let rec walk prev cur =
      match cur with
      | None -> ()
      | Some c ->
          if c == e then begin
            let next = Vm.load_ref vm c f_hash_next in
            match prev with
            | Some prev -> Vm.store_ref vm prev f_hash_next next
            | None -> Vm.store_ref vm root b next
          end
          else walk cur (Vm.load_ref vm c f_hash_next)
    in
    walk None (Vm.load_ref vm root b)
  in
  let evictions = ref 0 in
  let evict_tail () =
    match Vm.load_ref vm root r_tail with
    | None -> ()
    | Some tail ->
        let key = Vm.load_word vm tail w_key in
        lru_unlink tail;
        hash_unlink key tail;
        incr evictions;
        decr size
  in
  let insert key =
    if !size >= p.capacity then evict_tail ();
    let e = Vm.alloc vm ~nrefs:3 ~nwords:(1 + p.value_words) in
    Vm.store_word vm e w_key key;
    for wv = 1 to p.value_words do
      Vm.store_word vm e wv (key + wv)
    done;
    let b = bucket_slot (bucket_of key) in
    Vm.store_ref vm e f_hash_next (Vm.load_ref vm root b);
    Vm.store_ref vm root b (Some e);
    lru_push_front e;
    incr size
  in
  let gets = ref 0 and hits = ref 0 and puts = ref 0 and checksum = ref 0 in
  for _ = 1 to p.operations do
    let key = Keydist.sample dist rng in
    incr gets;
    match find key with
    | Some e ->
        incr hits;
        checksum := !checksum lxor Vm.load_word vm e 1;
        (* Touch-to-front: the LRU pointer surgery. *)
        lru_unlink e;
        lru_push_front e
    | None ->
        incr puts;
        insert key
  done;
  Vm.remove_root vm root;
  {
    gets = !gets;
    hits = !hits;
    puts = !puts;
    evictions = !evictions;
    checksum = !checksum;
  }
