(** An in-memory relational-database workload standing in for DaCapo's {e h2}
    (§4.6, Fig. 12).

    The substitution preserves what made h2 responsive to HCSGC: a large
    population of {e long-lived} rows, a skewed and {e recurring} query mix
    (the same hot keys are probed batch after batch), hash-index bucket
    chains interleaving hot and cold rows on the same pages, and steady
    transient allocation (result sets, temporary tuples) that both triggers
    GC and dilutes row pages with garbage. *)

module Vm = Hcsgc_runtime.Vm

type params = {
  rows : int;  (** table cardinality (long-lived row objects) *)
  row_words : int;  (** payload words per row *)
  buckets : int;  (** hash-index width *)
  transactions : int;
  ops_per_txn : int;  (** point queries/updates per transaction *)
  hot_keys : int;  (** size of the skewed hot key set *)
  hot_bias : float;  (** probability a query hits the hot set *)
  scan_every : int;  (** transactions between full index scans (0 = never) *)
  seed : int;
}

type result = {
  queries : int;
  hits : int;  (** point queries that found their row *)
  checksum : int;
}

val default : params

val run : Vm.t -> params -> result
