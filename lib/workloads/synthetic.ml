module Vm = Hcsgc_runtime.Vm
module Rng = Hcsgc_util.Rng

type params = {
  elements : int;
  element_words : int;
  accesses_per_loop : int;
  loops : int;
  phases : int;
  garbage_every : int;
  garbage_words : int;
  cold_elements : int;
  seed : int;
}

type result = {
  checksum : int;
  accesses : int;
}

let default =
  {
    elements = 100_000;
    element_words = 2;
    accesses_per_loop = 40_000;
    loops = 20;
    phases = 1;
    garbage_every = 1;
    garbage_words = 30;
    cold_elements = 0;
    seed = 0;
  }

let populate vm ~slots ~words =
  let arr = Vm.alloc vm ~nrefs:slots ~nwords:0 in
  Vm.add_root vm arr;
  for i = 0 to slots - 1 do
    let o = Vm.alloc vm ~nrefs:0 ~nwords:words in
    Vm.store_word vm o 0 i;
    Vm.store_ref vm arr i (Some o)
  done;
  arr

let run vm p =
  if p.elements <= 0 || p.loops <= 0 || p.phases <= 0 then
    invalid_arg "Synthetic.run: non-positive parameter";
  let arr =
    Vm.with_span vm "populate" (fun () ->
        let arr = populate vm ~slots:p.elements ~words:p.element_words in
        (* Fig. 6's cold population: allocated up front, never accessed
           again. *)
        if p.cold_elements > 0 then
          ignore (populate vm ~slots:p.cold_elements ~words:p.element_words);
        arr)
  in
  let checksum = ref 0 in
  let accesses = ref 0 in
  let loops_per_phase = max 1 (p.loops / p.phases) in
  for phase = 0 to p.phases - 1 do
    Vm.with_span vm (Printf.sprintf "phase %d" phase) (fun () ->
        for _loop = 1 to loops_per_phase do
          (* Same seed each loop within a phase: the access sequence repeats
             exactly; a new seed per phase changes the pattern (Fig. 5). *)
          let rng = Rng.create (p.seed + phase) in
          for j = 1 to p.accesses_per_loop do
            let idx = Rng.int rng p.elements in
            (match Vm.load_ref vm arr idx with
            | Some o ->
                checksum := !checksum lxor (Vm.load_word vm o 0 + j)
            | None -> assert false);
            incr accesses;
            if p.garbage_every > 0 && j mod p.garbage_every = 0 then
              ignore (Vm.alloc vm ~nrefs:0 ~nwords:p.garbage_words)
          done
        done)
  done;
  Vm.remove_root vm arr;
  { checksum = !checksum; accesses = !accesses }
