(** A many-mutator synthetic workload: [mutators] cooperative threads, each
    with a private element array (sized to overflow a private L1 but fit
    the shared hierarchy), walked in a per-thread pseudo-random order with
    a trickle of garbage allocation.

    Threads interleave in round-robin slices — thread [m] runs its whole
    slice of a round before thread [m+1] — so the logical schedule is
    deterministic by construction.  Per-thread checksums make any
    cross-thread mixup observable.  This is the stress workload for the
    epoch-sharded execution model ({!Hcsgc_runtime.Vm.create}'s
    [shard_domains]) and the [bench/shard] scaling microbench. *)

type params = {
  mutators : int;  (** cooperative threads; must be <= the VM's mutators *)
  elements_per_mutator : int;
  element_words : int;  (** payload words per element *)
  rounds : int;
  accesses_per_round : int;  (** per thread per round *)
  garbage_every : int;  (** allocate garbage every n accesses (0 = never) *)
  garbage_words : int;
  seed : int;
}

type result = {
  checksums : int array;  (** one per mutator; order- and value-sensitive *)
  accesses : int;  (** total element accesses across all threads *)
}

val default : params
(** 8 mutators, 4k elements each — a working set per thread that misses a
    scaled L1 while the 8-thread union pressures the shared LLC. *)

val run : Hcsgc_runtime.Vm.t -> params -> result
(** Deterministic in [params] (and the VM's configuration) alone.
    @raise Invalid_argument on non-positive sizes or [mutators] exceeding
    [Vm.mutator_count]. *)
