module Vm = Hcsgc_runtime.Vm
module Rng = Hcsgc_util.Rng

type params = {
  accounts : int;
  instruments : int;
  orders : int;
  quotes_per_order : int;
  hot_accounts : int;
  hot_bias : float;
  seed : int;
}

type result = {
  processed : int;
  volume : int;
}

let default =
  {
    accounts = 12_000;
    instruments = 2_000;
    orders = 30_000;
    quotes_per_order = 6;
    hot_accounts = 1_200;
    hot_bias = 0.85;
    seed = 0;
  }

(* Account: payload = [id; balance; trades].  Instrument: [id; last_price]. *)

let run vm p =
  if p.accounts <= 0 || p.instruments <= 0 then
    invalid_arg "Tradebeans_sim.run: bad params";
  let rng = Rng.create p.seed in
  let accounts_tbl = Vm.alloc vm ~nrefs:p.accounts ~nwords:0 in
  Vm.add_root vm accounts_tbl;
  for i = 0 to p.accounts - 1 do
    let a = Vm.alloc vm ~nrefs:0 ~nwords:3 in
    Vm.store_word vm a 0 i;
    Vm.store_word vm a 1 10_000;
    Vm.store_ref vm accounts_tbl i (Some a)
  done;
  let instruments_tbl = Vm.alloc vm ~nrefs:p.instruments ~nwords:0 in
  Vm.add_root vm instruments_tbl;
  for i = 0 to p.instruments - 1 do
    let ins = Vm.alloc vm ~nrefs:0 ~nwords:2 in
    Vm.store_word vm ins 0 i;
    Vm.store_word vm ins 1 100;
    Vm.store_ref vm instruments_tbl i (Some ins)
  done;
  let volume = ref 0 in
  for _order = 1 to p.orders do
    (* Session-bean / transaction plumbing: per-order compute that object
       layout cannot affect (the bulk of real tradebeans time). *)
    Vm.work vm 1_000;
    let account_id =
      if Rng.float rng 1.0 < p.hot_bias then Rng.int rng (max 1 p.hot_accounts)
      else Rng.int rng p.accounts
    in
    let instrument_id = Rng.int rng p.instruments in
    let account = Option.get (Vm.load_ref vm accounts_tbl account_id) in
    let instrument = Option.get (Vm.load_ref vm instruments_tbl instrument_id) in
    (* The short-lived cluster: an order holding quotes and a trade record.
       All of it is dropped when the transaction commits. *)
    Vm.local_frame vm (fun () ->
        let order = Vm.alloc vm ~nrefs:(2 + p.quotes_per_order) ~nwords:3 in
        Vm.push_local vm order;
        Vm.store_ref vm order 0 (Some account);
        Vm.store_ref vm order 1 (Some instrument);
        for q = 0 to p.quotes_per_order - 1 do
          let quote = Vm.alloc vm ~nrefs:0 ~nwords:3 in
          Vm.store_word vm quote 0 (Vm.load_word vm instrument 1 + q);
          Vm.store_ref vm order (2 + q) (Some quote)
        done;
        (* Pick the best quote: touch them all. *)
        let best = ref max_int in
        for q = 0 to p.quotes_per_order - 1 do
          match Vm.load_ref vm order (2 + q) with
          | Some quote ->
              let px = Vm.load_word vm quote 0 in
              if px < !best then best := px
          | None -> ()
        done;
        let trade = Vm.alloc vm ~nrefs:2 ~nwords:2 in
        Vm.store_ref vm trade 0 (Some account);
        Vm.store_ref vm trade 1 (Some instrument);
        Vm.store_word vm trade 0 !best;
        (* Commit: update the long-lived state; the cluster becomes garbage. *)
        Vm.store_word vm account 1 (Vm.load_word vm account 1 - !best);
        Vm.store_word vm account 2 (Vm.load_word vm account 2 + 1);
        Vm.store_word vm instrument 1 !best;
        volume := !volume + !best)
  done;
  Vm.remove_root vm accounts_tbl;
  Vm.remove_root vm instruments_tbl;
  { processed = p.orders; volume = !volume }
