module Vm = Hcsgc_runtime.Vm
module Rng = Hcsgc_util.Rng

type params = {
  warehouses : int;
  items_per_warehouse : int;
  handlers : int;
  ramp_steps : int;
  txns_per_step : int;
  base_interarrival : int;
  lines_per_txn : int;
  sla_factor : float;
  seed : int;
}

type result = {
  max_jops : float;
  critical_jops : float;
  mean_latency : float;
  survival_rate : float;
}

let default =
  {
    warehouses = 8;
    items_per_warehouse = 4_000;
    handlers = 2;
    ramp_steps = 12;
    txns_per_step = 800;
    base_interarrival = 24_000;
    lines_per_txn = 12;
    sla_factor = 3.0;
    seed = 0;
  }

let run vm p =
  if p.warehouses <= 0 || p.ramp_steps <= 0 then
    invalid_arg "Specjbb_sim.run: bad params";
  let handlers = max 1 (min p.handlers (Vm.mutator_count vm)) in
  let rng = Rng.create p.seed in
  (* Long-lived inventory: one item table per warehouse. *)
  let company = Vm.alloc vm ~nrefs:p.warehouses ~nwords:0 in
  Vm.add_root vm company;
  for w = 0 to p.warehouses - 1 do
    let items = Vm.alloc vm ~nrefs:p.items_per_warehouse ~nwords:0 in
    Vm.store_ref vm company w (Some items);
    for i = 0 to p.items_per_warehouse - 1 do
      let item = Vm.alloc vm ~nrefs:0 ~nwords:3 in
      Vm.store_word vm item 0 i;
      Vm.store_word vm item 1 100;
      Vm.store_ref vm items i (Some item)
    done
  done;
  let live_baseline = Hcsgc_heap.Heap.used_bytes (Vm.heap vm) in
  let allocated_baseline =
    Hcsgc_core.Gc_stats.bytes_allocated (Vm.gc_stats vm)
  in
  (* A transaction on handler thread [m]: pick a warehouse, order
     [lines_per_txn] random items, allocating an order-line object per item
     — all garbage after commit.  Returns its service time in simulated
     cycles on that handler's clock. *)
  let run_txn ~m =
    let t0 = Vm.mutator_clock vm ~m in
    let w = Rng.int rng p.warehouses in
    let items = Option.get (Vm.load_ref ~m vm company w) in
    Vm.local_frame vm (fun () ->
        let order = Vm.alloc ~m vm ~nrefs:p.lines_per_txn ~nwords:2 in
        Vm.push_local vm order;
        let total = ref 0 in
        for l = 0 to p.lines_per_txn - 1 do
          let i = Rng.int rng p.items_per_warehouse in
          let item = Option.get (Vm.load_ref ~m vm items i) in
          let line = Vm.alloc ~m vm ~nrefs:1 ~nwords:3 in
          Vm.store_ref ~m vm line 0 (Some item);
          Vm.store_word ~m vm line 0 (Vm.load_word ~m vm item 1);
          Vm.store_ref ~m vm order l (Some line);
          total := !total + Vm.load_word ~m vm item 1;
          (* Occasionally restock: a write to long-lived state. *)
          if Rng.int rng 50 = 0 then
            Vm.store_word ~m vm item 1 (100 + Rng.int rng 20)
        done;
        Vm.store_word ~m vm order 0 !total);
    Vm.mutator_clock vm ~m - t0
  in
  (* Calibrate base service time on a warm-up plateau. *)
  let calibrate n =
    let total = ref 0 in
    for i = 1 to n do
      total := !total + run_txn ~m:(i mod handlers)
    done;
    !total / n
  in
  let base_service = max 1 (calibrate 200) in
  let sla = float_of_int base_service *. p.sla_factor in
  (* Ramp: at each step the inter-arrival time shrinks.  The simulator runs
     transactions back to back; the injector's queueing behaviour is modelled
     with a virtual single-server clock — each transaction's measured service
     time (simulated cycles) is replayed against its Poisson arrival time,
     giving queueing latency.  Injection rate is transactions per megacycle. *)
  let max_jops = ref 0.0 and critical_jops = ref 0.0 in
  let total_latency = ref 0.0 and total_txns = ref 0 in
  let total_service = ref 0.0 in
  for step = 1 to p.ramp_steps do
    let interarrival = max 1 (p.base_interarrival / step) in
    let rate = 1e6 /. float_of_int interarrival in
    let arrival = ref 0.0 in
    (* Multi-server queue: each handler thread has its own virtual
       free-at; an arrival is dispatched to the earliest-free handler. *)
    let free_at = Array.make handlers 0.0 in
    let earliest () =
      let best = ref 0 in
      for h = 1 to handlers - 1 do
        if free_at.(h) < free_at.(!best) then best := h
      done;
      !best
    in
    let step_latency = ref 0.0 in
    for _ = 1 to p.txns_per_step do
      arrival := !arrival +. Rng.exponential rng (float_of_int interarrival);
      let h = earliest () in
      let service = float_of_int (run_txn ~m:h) in
      total_service := !total_service +. service;
      let begin_service = Float.max !arrival free_at.(h) in
      free_at.(h) <- begin_service +. service;
      step_latency := !step_latency +. (free_at.(h) -. !arrival)
    done;
    let mean = !step_latency /. float_of_int (max 1 p.txns_per_step) in
    total_latency := !total_latency +. !step_latency;
    total_txns := !total_txns + p.txns_per_step;
    if mean <= sla then critical_jops := Float.max !critical_jops rate
  done;
  (* max-jOPS: the measured processing capacity (transactions per megacycle
     across the handler pool) — continuous, rather than quantised to the
     ramp's plateau rates. *)
  max_jops :=
    float_of_int handlers *. 1e6
    /. (!total_service /. float_of_int (max 1 !total_txns));
  (* Measure the true live set: drain floating garbage first. *)
  Vm.full_gc vm;
  let live_end = Hcsgc_heap.Heap.used_bytes (Vm.heap vm) in
  let allocated =
    Hcsgc_core.Gc_stats.bytes_allocated (Vm.gc_stats vm) - allocated_baseline
  in
  let survival_rate =
    Float.max 0.0 (float_of_int (live_end - live_baseline))
    /. float_of_int (max 1 allocated)
  in
  Vm.remove_root vm company;
  {
    max_jops = !max_jops;
    critical_jops = !critical_jops;
    mean_latency = !total_latency /. float_of_int (max 1 !total_txns);
    survival_rate;
  }
