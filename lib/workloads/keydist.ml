module Rng = Hcsgc_util.Rng

type spec =
  | Uniform
  | Hotset of { hot_keys : int; hot_bias : float }
  | Zipfian of { theta : float }
  | Sequential of { stride : int }

type t = {
  spec : spec;
  key_space : int;
  (* Zipfian constants (Gray et al.'s incremental generator, as in YCSB):
     precomputed once so sampling is two float draws and a power. *)
  zetan : float;
  eta : float;
  theta : float;
  (* Sequential cursor. *)
  mutable cursor : int;
}

let zeta n theta =
  let sum = ref 0.0 in
  for i = 1 to n do
    sum := !sum +. (1.0 /. (float_of_int i ** theta))
  done;
  !sum

let create spec ~key_space =
  if key_space <= 0 then invalid_arg "Keydist.create: key_space must be positive";
  (match spec with
  | Uniform -> ()
  | Hotset { hot_keys; hot_bias } ->
      if hot_keys <= 0 then invalid_arg "Keydist.create: hot_keys must be positive";
      if hot_bias < 0.0 || hot_bias > 1.0 then
        invalid_arg "Keydist.create: hot_bias outside [0, 1]"
  | Zipfian { theta } ->
      if theta < 0.0 || theta >= 1.0 then
        invalid_arg "Keydist.create: zipfian theta outside [0, 1)"
  | Sequential { stride } ->
      if stride <= 0 then invalid_arg "Keydist.create: stride must be positive");
  let zetan, eta, theta =
    match spec with
    | Zipfian { theta } ->
        let zetan = zeta key_space theta in
        let zeta2 = zeta 2 theta in
        let eta =
          (1.0 -. ((2.0 /. float_of_int key_space) ** (1.0 -. theta)))
          /. (1.0 -. (zeta2 /. zetan))
        in
        (zetan, eta, theta)
    | _ -> (0.0, 0.0, 0.0)
  in
  { spec; key_space; zetan; eta; theta; cursor = 0 }

let spec t = t.spec
let key_space t = t.key_space

let sample t rng =
  match t.spec with
  | Uniform -> Rng.int rng t.key_space
  | Hotset { hot_keys; hot_bias } ->
      (* Bit-for-bit the LRU service's historical inline generator: one
         float draw for the bias coin, one int draw either way. *)
      if Rng.float rng 1.0 < hot_bias then
        Rng.int rng (max 1 hot_keys) * 31 mod t.key_space
      else Rng.int rng t.key_space
  | Zipfian _ ->
      let u = Rng.float rng 1.0 in
      let uz = u *. t.zetan in
      if uz < 1.0 then 0
      else if uz < 1.0 +. (0.5 ** t.theta) then 1
      else
        let rank =
          float_of_int t.key_space
          *. (((t.eta *. u) -. t.eta +. 1.0) ** (1.0 /. (1.0 -. t.theta)))
        in
        min (t.key_space - 1) (int_of_float rank)
  | Sequential { stride } ->
      let k = t.cursor in
      t.cursor <- (t.cursor + stride) mod t.key_space;
      k

let spec_key t =
  match t.spec with
  | Uniform -> "uniform"
  | Hotset { hot_keys; hot_bias } ->
      Printf.sprintf "hotset(%d,%h)" hot_keys hot_bias
  | Zipfian { theta } -> Printf.sprintf "zipf(%h)" theta
  | Sequential { stride } -> Printf.sprintf "seq(%d)" stride

let spec_of_string s =
  let parts = String.split_on_char ':' s in
  match parts with
  | [ "uniform" ] -> Ok Uniform
  | [ "zipf" ] -> Ok (Zipfian { theta = 0.99 })
  | [ "zipf"; theta ] -> (
      match float_of_string_opt theta with
      | Some theta when theta >= 0.0 && theta < 1.0 -> Ok (Zipfian { theta })
      | _ -> Error (Printf.sprintf "bad zipf theta %S (want [0, 1))" theta))
  | [ "seq" ] -> Ok (Sequential { stride = 1 })
  | [ "seq"; stride ] -> (
      match int_of_string_opt stride with
      | Some stride when stride > 0 -> Ok (Sequential { stride })
      | _ -> Error (Printf.sprintf "bad seq stride %S (want > 0)" stride))
  | [ "hotset"; args ] -> (
      match String.split_on_char ',' args with
      | [ hot; bias ] -> (
          match (int_of_string_opt hot, float_of_string_opt bias) with
          | Some hot_keys, Some hot_bias
            when hot_keys > 0 && hot_bias >= 0.0 && hot_bias <= 1.0 ->
              Ok (Hotset { hot_keys; hot_bias })
          | _ -> Error (Printf.sprintf "bad hotset args %S (want HOT,BIAS)" args))
      | _ -> Error (Printf.sprintf "bad hotset args %S (want HOT,BIAS)" args))
  | _ ->
      Error
        (Printf.sprintf
           "unknown key distribution %S (want uniform | hotset:HOT,BIAS | \
            zipf[:THETA] | seq[:STRIDE])"
           s)
