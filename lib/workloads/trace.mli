(** Access-trace workloads: record a sequence of abstract heap operations
    and replay it against any VM configuration.

    This is the "bring your own access pattern" entry point: a trace is a
    deterministic program over numbered registers, so the same trace can be
    replayed under every Table 2 configuration to measure how HCSGC treats
    a custom pattern — the methodology of the paper's synthetic benchmark,
    generalised.  Traces are pure data: they can be generated (see
    {!synthesize}), stored, pretty-printed and replayed any number of
    times. *)

module Vm = Hcsgc_runtime.Vm

type op =
  | Alloc of { reg : int; nrefs : int; nwords : int }
      (** allocate into register [reg] (registers are trace-managed roots) *)
  | Load of { reg : int; from_reg : int; slot : int }
      (** [reg := from_reg.refs[slot]]; null loads leave [reg] unchanged *)
  | Store of { to_reg : int; slot : int; from_reg : int }
  | Store_null of { to_reg : int; slot : int }
  | Read_word of { reg : int; word : int }
  | Write_word of { reg : int; word : int; value : int }
  | Drop of { reg : int }  (** forget the register's object *)
  | Work of int  (** pure compute cycles *)

type t = { registers : int; ops : op array }

type result = {
  executed : int;  (** operations replayed *)
  checksum : int;  (** digest of every word read *)
}

val validate : t -> (unit, string) Stdlib.result
(** Check register indices and obvious bounds are plausible. *)

val replay : Vm.t -> t -> result
(** Execute the trace.  Registers are rooted for the duration, so traces
    never violate the rooting discipline.
    @raise Invalid_argument on a trace that [validate] rejects. *)

val synthesize :
  rng:Hcsgc_util.Rng.t ->
  ops:int ->
  registers:int ->
  ?nrefs:int ->
  ?nwords:int ->
  ?churn:float ->
  unit ->
  t
(** Generate a random-but-deterministic trace: a mix of allocations, loads,
    stores, word traffic and (with probability [churn], default 0.2) drops
    and garbage allocation. *)

val pp_op : Format.formatter -> op -> unit
