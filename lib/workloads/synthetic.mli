(** The paper's synthetic micro-benchmark (§4.4).

    An array of [elements] slots, each pointing to a small object; the inner
    loop accesses random slots with a fixed seed, so every loop repeats the
    identical access sequence (stable but unpredictable pattern); periodic
    garbage allocation drives GC cycles.  Variants: multiple phases with
    per-phase seeds (Fig. 5) and a never-accessed cold array that inflates
    the cold object population (Fig. 6). *)

module Vm = Hcsgc_runtime.Vm

type params = {
  elements : int;  (** live array length (paper: 2×10⁶) *)
  element_words : int;  (** payload words per element (2 → 32-byte objects) *)
  accesses_per_loop : int;  (** inner-loop length (paper: 8×10⁵) *)
  loops : int;  (** outer repetitions (paper: 200) *)
  phases : int;  (** access-pattern phases, each with its own seed (Fig. 5) *)
  garbage_every : int;  (** accesses between garbage allocations (paper: 10) *)
  garbage_words : int;  (** payload words of each garbage object *)
  cold_elements : int;  (** extra never-accessed elements (Fig. 6; paper 2×10⁷) *)
  seed : int;
}

type result = {
  checksum : int;  (** deterministic digest of all loaded values *)
  accesses : int;
}

val default : params
(** Scaled-down Fig. 4 defaults (working set larger than the scaled LLC). *)

val run : Vm.t -> params -> result
(** Execute the benchmark on the given VM.  Deterministic given
    [params.seed] and the VM configuration. *)
