(** Shared key-distribution generators for request-driven workloads.

    Every workload that asks "which key next?" — the LRU cache service, the
    multi-mutator array walker, the serving tier — draws from one of these
    distributions, so skew is specified once and content-address keys can
    name it unambiguously ({!spec_key}).

    Sampling consumes randomness only from the {!Hcsgc_util.Rng} the caller
    passes, in a fixed number of draws per sample, so a migrated workload
    that previously in-lined the same arithmetic produces byte-identical
    key sequences (pinned by the regression tests). *)

type spec =
  | Uniform  (** every key equally likely *)
  | Hotset of { hot_keys : int; hot_bias : float }
      (** with probability [hot_bias], a key from the [hot_keys]-sized
          scattered hot set ([rank * 31 mod key_space] — the LRU service's
          historical generator, kept bit-for-bit); otherwise uniform *)
  | Zipfian of { theta : float }
      (** YCSB-style Zipf over ranks 0..key_space-1 (rank 0 hottest);
          [theta] in [\[0, 1)], typically 0.99 *)
  | Sequential of { stride : int }
      (** deterministic cyclic sweep: consecutive samples advance the
          cursor by [stride] (scan-heavy request streams); consumes no
          randomness *)

type t

val create : spec -> key_space:int -> t
(** @raise Invalid_argument on [key_space <= 0], a [Hotset] with
    non-positive [hot_keys] or bias outside [\[0, 1\]], a [Zipfian] theta
    outside [\[0, 1)], or a [Sequential] stride that is not positive. *)

val spec : t -> spec
val key_space : t -> int

val sample : t -> Hcsgc_util.Rng.t -> int
(** The next key, in [\[0, key_space)].  [Sequential] ignores the RNG and
    advances its internal cursor. *)

val spec_key : t -> string
(** Stable rendering for content-address keys, e.g. ["zipf(0x1.fae1...)"];
    two distributions that can produce different key streams render
    differently. *)

val spec_of_string : string -> (spec, string) result
(** Parse a CLI spelling: ["uniform"], ["hotset:HOT,BIAS"],
    ["zipf"] / ["zipf:THETA"], ["seq"] / ["seq:STRIDE"]. *)
