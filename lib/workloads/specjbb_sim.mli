(** A SPECjbb2015-style workload (§4.7, Fig. 13): supermarket-company
    transactions under a ramping injection rate.

    The properties that made SPECjbb inconclusive for HCSGC are preserved:
    almost nothing survives a GC cycle (the paper measures ~1 % survival),
    there is no stable access order over long-lived data, and the injector
    keeps raising the arrival rate, so heap usage after each GC grows over
    the run (Fig. 13 right).  Scores follow the benchmark's shape:
    {e max-jOPS} is the highest injection rate the system sustains at all,
    and {e critical-jOPS} the highest rate meeting latency SLAs. *)

module Vm = Hcsgc_runtime.Vm

type params = {
  warehouses : int;
  items_per_warehouse : int;
  handlers : int;
      (** backend handler threads (the VM must have at least this many
          mutators); transactions are dispatched to the earliest-free
          handler, SPECjbb-backend style *)
  ramp_steps : int;  (** injection-rate plateaus *)
  txns_per_step : int;
  base_interarrival : int;  (** mean cycles between arrivals at step 1 *)
  lines_per_txn : int;  (** order lines (short-lived objects) per txn *)
  sla_factor : float;  (** latency SLA as a multiple of base service time *)
  seed : int;
}

type result = {
  max_jops : float;  (** highest sustained injection rate (txns/Mcycle) *)
  critical_jops : float;  (** highest rate meeting the latency SLA *)
  mean_latency : float;  (** cycles, over the whole run *)
  survival_rate : float;  (** fraction of allocated bytes still live at end *)
}

val default : params

val run : Vm.t -> params -> result
