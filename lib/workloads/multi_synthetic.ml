module Vm = Hcsgc_runtime.Vm
module Rng = Hcsgc_util.Rng

type params = {
  mutators : int;
  elements_per_mutator : int;
  element_words : int;
  rounds : int;
  accesses_per_round : int;
  garbage_every : int;
  garbage_words : int;
  seed : int;
}

type result = {
  checksums : int array;
  accesses : int;
}

let default =
  {
    mutators = 8;
    elements_per_mutator = 4_000;
    element_words = 6;
    rounds = 40;
    accesses_per_round = 4_000;
    garbage_every = 4;
    garbage_words = 16;
    seed = 0;
  }

let run vm p =
  if p.mutators <= 0 || p.elements_per_mutator <= 0 || p.rounds <= 0 then
    invalid_arg "Multi_synthetic.run: non-positive parameter";
  if p.mutators > Vm.mutator_count vm then
    invalid_arg "Multi_synthetic.run: more mutators than VM threads";
  (* One element array per mutator, all hanging off a shared root: each
     thread's working set is private (its own pages, its own cache
     footprint) while the heap, GC schedule and LLC stay shared — the
     shape sharded execution is built for. *)
  let root = Vm.alloc vm ~nrefs:p.mutators ~nwords:0 in
  Vm.add_root vm root;
  for m = 0 to p.mutators - 1 do
    let arr = Vm.alloc ~m vm ~nrefs:p.elements_per_mutator ~nwords:0 in
    Vm.store_ref ~m vm root m (Some arr);
    for i = 0 to p.elements_per_mutator - 1 do
      let o = Vm.alloc ~m vm ~nrefs:0 ~nwords:p.element_words in
      Vm.store_word ~m vm o 0 ((m lsl 16) + i);
      Vm.store_ref ~m vm arr i (Some o)
    done
  done;
  let checksums = Array.make p.mutators 0 in
  let accesses = ref 0 in
  (* Uniform over each mutator's private array, via the shared generator
     (one [Rng.int] per sample — byte-identical to the old inline draw). *)
  let dist = Keydist.create Keydist.Uniform ~key_space:p.elements_per_mutator in
  (* Round-robin slices: thread m performs its whole slice of a round
     before thread m+1 — a deterministic cooperative interleaving, with
     each thread walking its own array in a private pseudo-random order. *)
  for round = 1 to p.rounds do
    for m = 0 to p.mutators - 1 do
      match Vm.load_ref ~m vm root m with
      | None -> assert false
      | Some arr ->
          let rng = Rng.create (p.seed + (round * p.mutators) + m) in
          for j = 1 to p.accesses_per_round do
            let idx = Keydist.sample dist rng in
            (match Vm.load_ref ~m vm arr idx with
            | Some o ->
                checksums.(m) <-
                  checksums.(m) lxor (Vm.load_word ~m vm o 0 + j);
                Vm.store_word ~m vm o (p.element_words - 1) (round + j)
            | None -> assert false);
            incr accesses;
            if p.garbage_every > 0 && j mod p.garbage_every = 0 then
              ignore (Vm.alloc ~m vm ~nrefs:0 ~nwords:p.garbage_words)
          done
    done
  done;
  Vm.remove_root vm root;
  { checksums; accesses = !accesses }
