module Vm = Hcsgc_runtime.Vm
module Rng = Hcsgc_util.Rng

type op =
  | Alloc of { reg : int; nrefs : int; nwords : int }
  | Load of { reg : int; from_reg : int; slot : int }
  | Store of { to_reg : int; slot : int; from_reg : int }
  | Store_null of { to_reg : int; slot : int }
  | Read_word of { reg : int; word : int }
  | Write_word of { reg : int; word : int; value : int }
  | Drop of { reg : int }
  | Work of int

type t = { registers : int; ops : op array }

type result = {
  executed : int;
  checksum : int;
}

let validate t =
  if t.registers <= 0 then Error "trace needs at least one register"
  else begin
    let bad = ref None in
    let reg_ok r = r >= 0 && r < t.registers in
    Array.iteri
      (fun i op ->
        if !bad = None then
          let ok =
            match op with
            | Alloc { reg; nrefs; nwords } ->
                reg_ok reg && nrefs >= 0 && nwords >= 0
            | Load { reg; from_reg; slot } ->
                reg_ok reg && reg_ok from_reg && slot >= 0
            | Store { to_reg; slot; from_reg } ->
                reg_ok to_reg && reg_ok from_reg && slot >= 0
            | Store_null { to_reg; slot } -> reg_ok to_reg && slot >= 0
            | Read_word { reg; word } | Write_word { reg; word; value = _ } ->
                reg_ok reg && word >= 0
            | Drop { reg } -> reg_ok reg
            | Work n -> n >= 0
          in
          if not ok then bad := Some i)
      t.ops;
    match !bad with
    | None -> Ok ()
    | Some i -> Error (Printf.sprintf "invalid operation at index %d" i)
  end

let replay vm t =
  (match validate t with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Trace.replay: " ^ msg));
  (* The register file is a managed object: its slots root everything the
     trace holds, so replay respects the rooting discipline for free. *)
  let file = Vm.alloc vm ~nrefs:t.registers ~nwords:0 in
  Vm.add_root vm file;
  let checksum = ref 0 in
  let executed = ref 0 in
  let in_bounds obj slot = slot < Hcsgc_heap.Heap_obj.nrefs obj in
  let word_in_bounds obj w = w < Hcsgc_heap.Heap_obj.nwords obj in
  Array.iter
    (fun op ->
      incr executed;
      match op with
      | Alloc { reg; nrefs; nwords } ->
          let o = Vm.alloc vm ~nrefs ~nwords in
          Vm.store_ref vm file reg (Some o)
      | Load { reg; from_reg; slot } -> (
          match Vm.load_ref vm file from_reg with
          | Some src when in_bounds src slot -> (
              match Vm.load_ref vm src slot with
              | Some _ as target -> Vm.store_ref vm file reg target
              | None -> ())
          | _ -> ())
      | Store { to_reg; slot; from_reg } -> (
          match (Vm.load_ref vm file to_reg, Vm.load_ref vm file from_reg) with
          | Some dst, (Some _ as src) when in_bounds dst slot ->
              Vm.store_ref vm dst slot src
          | _ -> ())
      | Store_null { to_reg; slot } -> (
          match Vm.load_ref vm file to_reg with
          | Some dst when in_bounds dst slot -> Vm.store_ref vm dst slot None
          | _ -> ())
      | Read_word { reg; word } -> (
          match Vm.load_ref vm file reg with
          | Some o when word_in_bounds o word ->
              checksum := !checksum lxor (Vm.load_word vm o word + !executed)
          | _ -> ())
      | Write_word { reg; word; value } -> (
          match Vm.load_ref vm file reg with
          | Some o when word_in_bounds o word -> Vm.store_word vm o word value
          | _ -> ())
      | Drop { reg } -> Vm.store_ref vm file reg None
      | Work n -> Vm.work vm n)
    t.ops;
  Vm.remove_root vm file;
  { executed = !executed; checksum = !checksum }

let synthesize ~rng ~ops ~registers ?(nrefs = 2) ?(nwords = 2) ?(churn = 0.2)
    () =
  if registers <= 0 || ops < 0 then
    invalid_arg "Trace.synthesize: bad parameters";
  let reg () = Rng.int rng registers in
  let body =
    Array.init ops (fun _ ->
        if Rng.float rng 1.0 < churn then
          match Rng.int rng 2 with
          | 0 -> Drop { reg = reg () }
          | _ -> Alloc { reg = reg (); nrefs; nwords }
        else
          match Rng.int rng 5 with
          | 0 -> Alloc { reg = reg (); nrefs; nwords }
          | 1 -> Load { reg = reg (); from_reg = reg (); slot = Rng.int rng nrefs }
          | 2 ->
              Store
                { to_reg = reg (); slot = Rng.int rng nrefs; from_reg = reg () }
          | 3 -> Read_word { reg = reg (); word = Rng.int rng nwords }
          | _ ->
              Write_word
                { reg = reg (); word = Rng.int rng nwords;
                  value = Rng.int rng 1_000_000 })
  in
  (* Seed every register so early loads have something to find. *)
  let prologue = Array.init registers (fun reg -> Alloc { reg; nrefs; nwords }) in
  { registers; ops = Array.append prologue body }

let pp_op fmt = function
  | Alloc { reg; nrefs; nwords } ->
      Format.fprintf fmt "r%d := alloc(refs=%d, words=%d)" reg nrefs nwords
  | Load { reg; from_reg; slot } ->
      Format.fprintf fmt "r%d := r%d.[%d]" reg from_reg slot
  | Store { to_reg; slot; from_reg } ->
      Format.fprintf fmt "r%d.[%d] := r%d" to_reg slot from_reg
  | Store_null { to_reg; slot } -> Format.fprintf fmt "r%d.[%d] := null" to_reg slot
  | Read_word { reg; word } -> Format.fprintf fmt "read r%d.w%d" reg word
  | Write_word { reg; word; value } ->
      Format.fprintf fmt "r%d.w%d := %d" reg word value
  | Drop { reg } -> Format.fprintf fmt "drop r%d" reg
  | Work n -> Format.fprintf fmt "work %d" n
