(** An in-memory LRU object-cache service.

    Not one of the paper's benchmarks, but the kind of long-running,
    pointer-chasing application its introduction motivates: a hash index
    over cache entries threaded onto a doubly-linked LRU list.  Every [get]
    performs pointer surgery (unlink + relink at the head) through the
    write barriers, and a skewed key distribution keeps a stable hot set —
    so it doubles as a stress test for reference updates under concurrent
    relocation and as a realistic HCSGC beneficiary. *)

module Vm = Hcsgc_runtime.Vm

type params = {
  capacity : int;  (** cache entries kept live (LRU evicts beyond this) *)
  buckets : int;  (** hash-index width *)
  operations : int;
  key_space : int;  (** distinct keys requested *)
  hot_keys : int;  (** size of the skewed hot set *)
  hot_bias : float;
  value_words : int;  (** payload words per entry *)
  seed : int;
}

type result = {
  gets : int;
  hits : int;
  puts : int;
  evictions : int;
  checksum : int;
}

val default : params

val run : Vm.t -> params -> result
(** Drive the cache: each operation requests a key (hot-biased); a miss
    inserts a freshly allocated entry, evicting the LRU tail when full. *)
