(** A trading-session workload standing in for DaCapo's {e tradebeans}
    (§4.6, Fig. 11).

    The paper attributes tradebeans' flat response to HCSGC to its
    allocation profile: "so many objects are very short lived ... HCSGC may
    only improve locality for objects that live more than one GC cycle."
    This stand-in reproduces that profile — per-order object clusters
    (order, quotes, trade records) that die within the transaction, over a
    comparatively small long-lived account/instrument set. *)

module Vm = Hcsgc_runtime.Vm

type params = {
  accounts : int;  (** long-lived account objects *)
  instruments : int;  (** long-lived instrument objects *)
  orders : int;  (** transactions to process *)
  quotes_per_order : int;  (** short-lived quote objects per order *)
  hot_accounts : int;  (** size of the frequently trading account set *)
  hot_bias : float;
  seed : int;
}

type result = {
  processed : int;
  volume : int;  (** deterministic aggregate for validation *)
}

val default : params

val run : Vm.t -> params -> result
