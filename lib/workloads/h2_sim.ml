module Vm = Hcsgc_runtime.Vm
module Rng = Hcsgc_util.Rng

type params = {
  rows : int;
  row_words : int;
  buckets : int;
  transactions : int;
  ops_per_txn : int;
  hot_keys : int;
  hot_bias : float;
  scan_every : int;
  seed : int;
}

type result = {
  queries : int;
  hits : int;
  checksum : int;
}

let default =
  {
    rows = 60_000;
    row_words = 6;
    buckets = 4_096;
    transactions = 2_000;
    ops_per_txn = 24;
    hot_keys = 6_000;
    hot_bias = 0.7;
    scan_every = 250;
    seed = 0;
  }

(* Row object: refs = [next-in-bucket]; payload = [key; version; data...].
   Bucket chains are classic hash-map pointer chains: following one touches
   every row on the way — hot rows buried between cold ones, the situation
   §3.1.3's weighted live bytes is designed to excavate. *)
let row_next = 0
let row_key = 0
let row_version = 1

let bucket_of p key = key mod p.buckets

let insert_row vm index p ~key ~words =
  let row = Vm.alloc vm ~nrefs:1 ~nwords:(max 2 words) in
  Vm.store_word vm row row_key key;
  Vm.store_word vm row row_version 0;
  let b = bucket_of p key in
  let head = Vm.load_ref vm index b in
  Vm.store_ref vm row row_next head;
  Vm.store_ref vm index b (Some row);
  row

let find_row vm index p ~key =
  let rec walk = function
    | None -> None
    | Some row ->
        if Vm.load_word vm row row_key = key then Some row
        else walk (Vm.load_ref vm row row_next)
  in
  walk (Vm.load_ref vm index (bucket_of p key))

let run vm p =
  if p.rows <= 0 || p.buckets <= 0 then invalid_arg "H2_sim.run: bad params";
  let rng = Rng.create p.seed in
  let index = Vm.alloc vm ~nrefs:p.buckets ~nwords:0 in
  Vm.add_root vm index;
  (* Load phase: populate the table in key order (allocation order !=
     bucket-chain traversal order). *)
  for key = 0 to p.rows - 1 do
    ignore (insert_row vm index p ~key ~words:p.row_words)
  done;
  let queries = ref 0 and hits = ref 0 and checksum = ref 0 in
  (* The hot key set is fixed for the whole run: the recurring pattern. *)
  let hot_key k = k mod p.rows in
  for txn = 1 to p.transactions do
    for _op = 1 to p.ops_per_txn do
      let key =
        if Rng.float rng 1.0 < p.hot_bias then
          hot_key (Rng.int rng (max 1 p.hot_keys) * 7919)
        else Rng.int rng p.rows
      in
      incr queries;
      (* SQL parsing / planning / expression evaluation: per-query compute
         that heap locality cannot touch (keeps the locality upside in the
         paper's 5-9% band rather than a pointer-chasing microbenchmark's). *)
      Vm.work vm 8_000;
      (match find_row vm index p ~key with
      | Some row ->
          incr hits;
          checksum := !checksum lxor Vm.load_word vm row row_key;
          (* A tenth of point queries are updates. *)
          if Rng.int rng 10 = 0 then
            Vm.store_word vm row row_version
              (Vm.load_word vm row row_version + 1)
      | None -> ());
      (* Result-set / temporary-tuple garbage (copied row + wrapper). *)
      ignore (Vm.alloc vm ~nrefs:0 ~nwords:30)
    done;
    (* Periodic full scan: a reporting query touching every chain. *)
    if p.scan_every > 0 && txn mod p.scan_every = 0 then
      for b = 0 to p.buckets - 1 do
        let rec walk = function
          | None -> ()
          | Some row ->
              checksum := !checksum + Vm.load_word vm row row_version;
              walk (Vm.load_ref vm row row_next)
        in
        walk (Vm.load_ref vm index b)
      done
  done;
  Vm.remove_root vm index;
  { queries = !queries; hits = !hits; checksum = !checksum }
