(** A simulated KV-store serving tier on the {!Hcsgc_runtime.Vm}.

    The store is a dense, statically sharded index: key [k] lives on
    mutator [k mod mutators] at slot [k / mutators], each shard an index
    array of reference slots pointing at heap-allocated entry objects
    ([1 + value_words] payload words: the key, then the value).  Gets
    pointer-chase index → entry and read the value; updates allocate a
    fresh entry and swing the index slot through the write barrier (the
    old entry becomes garbage — the churn that drives GC); scans read a
    run of consecutive slots within one shard.

    Requests are driven {e open-loop}: an {!Arrival} timeline is fixed up
    front, service times are measured on the owning mutator's simulated
    clock with requests run back to back, and each service time is
    replayed against its arrival on a per-mutator virtual queue
    ([start = max arrival free_at]).  STW pauses do not advance mutator
    clocks, so the pause cycles absorbed while a request executed are
    charged separately as its {e stall} and added to the queue like
    service time.  A request's latency is therefore queueing delay plus
    service plus stall, free of coordinated omission: a GC pause inflates
    not just the request it lands on but everything queued behind it on
    the shard.

    Each request also records its wall-clock service window
    [\[w0, w1\]] ({!Vm.wall_cycles} before/after execution), which the
    {!Slo} analyzer intersects with STW-pause intervals to attribute
    violations.  When telemetry is enabled on the VM, every request is
    recorded as a completed span on its mutator's track at zero simulated
    cost. *)

module Vm = Hcsgc_runtime.Vm
module Keydist = Hcsgc_workloads.Keydist

type kind = Get | Update | Scan

type mix = {
  gets : int;  (** percent of requests *)
  updates : int;
  scans : int;  (** the three must sum to 100 *)
  scan_len : int;  (** slots read per scan *)
}

type params = {
  keys : int;
  value_words : int;  (** payload words per entry (beyond the key word) *)
  mutators : int;  (** serving threads; clamped to the VM's mutator count *)
  dist : Keydist.spec;
  mix : mix;
  process : Arrival.process;
  load : float;  (** offered load, requests per megacycle *)
  duration : int;  (** arrival-window length in simulated cycles *)
  seed : int;
}

type request = {
  arrival : int;  (** simulated cycle the request entered the system *)
  mutator : int;  (** owning shard *)
  kind : kind;
  wait : int;  (** queueing delay on the shard's virtual queue *)
  service : int;  (** owning mutator's clock delta across execution *)
  stall : int;
      (** STW-pause cycles absorbed during execution (the VM's STW-cycle
          delta, so it is identical with and without telemetry) *)
  latency : int;  (** [wait + service + stall] — enqueue to completion *)
  w0 : int;  (** wall clock when execution began *)
  w1 : int;  (** wall clock when execution finished *)
}

type result = {
  requests : request array;  (** in arrival order *)
  gets : int;
  updates : int;
  scans : int;
  checksum : int;  (** xor of every value word read *)
}

val default : params
(** 20k keys, 16 value words, 4 mutators, zipf(0.99), 60/35/5 mix with
    32-slot scans, constant arrivals at 400 req/Mcycle over 50 Mcycles —
    calibrated so the update churn drives several GC cycles through an
    8 MiB heap and the tail shows pause stalls. *)

val run : Vm.t -> params -> result
(** Prepopulate every key, then drive the arrival timeline to exhaustion.
    Deterministic for fixed params on a fixed VM configuration — including
    across [shard_domains] counts and instrumented vs. plain runs.
    @raise Invalid_argument on non-positive sizes or a mix that does not
    sum to 100. *)

val params_key : params -> string
(** Stable one-line rendering of every result-affecting parameter, for
    content-address fingerprints (floats in hex). *)
