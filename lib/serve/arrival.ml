module Rng = Hcsgc_util.Rng

type process =
  | Constant
  | Diurnal of { trough : float }
  | Bursty of { period : int; burst : int; mult : float }

type t = {
  process : process;
  rate : float;  (* requests per megacycle *)
  duration : int;
  rng : Rng.t;
  mutable clock : float;  (* next-arrival candidate, fractional cycles *)
  mutable exhausted : bool;
}

let validate process ~rate ~duration =
  if rate <= 0.0 then invalid_arg "Arrival.create: rate must be positive";
  if duration <= 0 then invalid_arg "Arrival.create: duration must be positive";
  match process with
  | Constant -> ()
  | Diurnal { trough } ->
      if trough <= 0.0 || trough > 1.0 then
        invalid_arg "Arrival.create: diurnal trough outside (0, 1]"
  | Bursty { period; burst; mult } ->
      if period <= 0 then invalid_arg "Arrival.create: bursty period <= 0";
      if burst < 0 || burst > period then
        invalid_arg "Arrival.create: bursty burst outside [0, period]";
      if mult <= 0.0 then invalid_arg "Arrival.create: bursty mult <= 0"

let create process ~rate ~duration ~seed =
  validate process ~rate ~duration;
  {
    process;
    rate;
    duration;
    rng = Rng.create seed;
    clock = 0.0;
    exhausted = false;
  }

(* Instantaneous rate at wall time [at], in requests per megacycle.  A
   non-homogeneous Poisson process approximated by sampling each gap at
   the rate in force when the gap starts — exact for Constant, and for
   the others accurate to one inter-arrival time, which is far below the
   modulation period. *)
let rate_at t at =
  match t.process with
  | Constant -> t.rate
  | Diurnal { trough } ->
      let phase = Float.pi *. float_of_int at /. float_of_int t.duration in
      t.rate *. (trough +. ((1.0 -. trough) *. sin phase))
  | Bursty { period; burst; mult } ->
      if at mod period < burst then t.rate *. mult else t.rate

let next t =
  if t.exhausted then None
  else begin
    let at = int_of_float t.clock in
    let mean = 1e6 /. rate_at t (min at (t.duration - 1)) in
    t.clock <- t.clock +. Rng.exponential t.rng mean;
    let arrival = int_of_float t.clock in
    if arrival >= t.duration then begin
      t.exhausted <- true;
      None
    end
    else Some arrival
  end

let process_key = function
  | Constant -> "constant"
  | Diurnal { trough } -> Printf.sprintf "diurnal(%h)" trough
  | Bursty { period; burst; mult } ->
      Printf.sprintf "bursty(%d,%d,%h)" period burst mult

let process_of_string s =
  let invalid () = Error (Printf.sprintf "bad arrival process %S" s) in
  match String.index_opt s ':' with
  | None -> (
      match s with
      | "constant" -> Ok Constant
      | "diurnal" -> Ok (Diurnal { trough = 0.25 })
      | "bursty" ->
          Ok (Bursty { period = 1_000_000; burst = 100_000; mult = 4.0 })
      | _ -> invalid ())
  | Some i -> (
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "diurnal" -> (
          match float_of_string_opt rest with
          | Some trough when trough > 0.0 && trough <= 1.0 ->
              Ok (Diurnal { trough })
          | _ -> invalid ())
      | "bursty" -> (
          match String.split_on_char ',' rest with
          | [ a; b; c ] -> (
              match
                (int_of_string_opt a, int_of_string_opt b,
                 float_of_string_opt c)
              with
              | Some period, Some burst, Some mult
                when period > 0 && burst >= 0 && burst <= period && mult > 0.0
                ->
                  Ok (Bursty { period; burst; mult })
              | _ -> invalid ())
          | _ -> invalid ())
      | _ -> invalid ())
