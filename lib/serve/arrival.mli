(** Deterministic open-loop arrival processes on the simulated clock.

    A serving-tier run replays measured service times against an arrival
    timeline that does not depend on how fast requests complete — the
    open-loop (coordinated-omission-free) methodology: a slow request does
    not delay the generation of the next one, so queueing delay behind GC
    pauses is measured instead of silently omitted.

    Arrivals are a Poisson process whose rate is modulated over the run:
    constant, a diurnal ramp (sine from trough to peak and back), or
    periodic bursts.  All randomness comes from one {!Hcsgc_util.Rng}
    stream seeded explicitly, so the timeline is a pure function of
    [(process, rate, duration, seed)]. *)

type process =
  | Constant
  | Diurnal of { trough : float }
      (** rate multiplier at the run's edges, in (0, 1]; the rate follows
          [trough + (1 - trough) * sin(pi * t / duration)], peaking at the
          nominal rate mid-run *)
  | Bursty of { period : int; burst : int; mult : float }
      (** every [period] cycles, the first [burst] cycles run at
          [mult * rate]; the remainder at the nominal rate *)

type t

val create : process -> rate:float -> duration:int -> seed:int -> t
(** [rate] is nominal requests per megacycle; arrivals are generated for
    simulated wall times in [\[0, duration)].
    @raise Invalid_argument on non-positive [rate] or [duration], a
    [Diurnal] trough outside (0, 1], or a [Bursty] with non-positive
    [period]/[mult] or [burst] outside [\[0, period\]]. *)

val next : t -> int option
(** The next arrival's simulated wall cycle (non-decreasing), or [None]
    once the timeline passes [duration]. *)

val process_key : process -> string
(** Stable rendering for content-address keys (floats in hex). *)

val process_of_string : string -> (process, string) result
(** Parse a CLI spelling: ["constant"], ["diurnal"] / ["diurnal:TROUGH"],
    ["bursty"] / ["bursty:PERIOD,BURST,MULT"]. *)
