module Vm = Hcsgc_runtime.Vm
module Rng = Hcsgc_util.Rng
module Keydist = Hcsgc_workloads.Keydist
module Recorder = Hcsgc_telemetry.Recorder

type kind = Get | Update | Scan

type mix = { gets : int; updates : int; scans : int; scan_len : int }

type params = {
  keys : int;
  value_words : int;
  mutators : int;
  dist : Keydist.spec;
  mix : mix;
  process : Arrival.process;
  load : float;
  duration : int;
  seed : int;
}

type request = {
  arrival : int;
  mutator : int;
  kind : kind;
  wait : int;
  service : int;
  stall : int;
  latency : int;
  w0 : int;
  w1 : int;
}

type result = {
  requests : request array;
  gets : int;
  updates : int;
  scans : int;
  checksum : int;
}

let default =
  {
    keys = 20_000;
    value_words = 16;
    mutators = 4;
    dist = Keydist.Zipfian { theta = 0.99 };
    mix = { gets = 60; updates = 35; scans = 5; scan_len = 32 };
    process = Arrival.Constant;
    load = 400.0;
    duration = 50_000_000;
    seed = 0;
  }

let validate p =
  if p.keys <= 0 then invalid_arg "Serve.run: keys must be positive";
  if p.value_words <= 0 then
    invalid_arg "Serve.run: value_words must be positive";
  if p.mutators <= 0 then invalid_arg "Serve.run: mutators must be positive";
  if p.mix.gets < 0 || p.mix.updates < 0 || p.mix.scans < 0 then
    invalid_arg "Serve.run: negative mix percentage";
  if p.mix.gets + p.mix.updates + p.mix.scans <> 100 then
    invalid_arg "Serve.run: mix percentages must sum to 100";
  if p.mix.scans > 0 && p.mix.scan_len <= 0 then
    invalid_arg "Serve.run: scan_len must be positive"

let span_name = function
  | Get -> "req:get"
  | Update -> "req:update"
  | Scan -> "req:scan"

let run vm p =
  validate p;
  let m_count = max 1 (min p.mutators (Vm.mutator_count vm)) in
  (* Keys with [k mod m_count = m], i.e. shard m's slot count. *)
  let shard_size m =
    if m >= p.keys then 0 else (p.keys - m + m_count - 1) / m_count
  in
  let rng = Rng.create p.seed in
  let dist = Keydist.create p.dist ~key_space:p.keys in
  let recorder = Vm.telemetry vm in
  (* Prepopulate: per-mutator index arrays under one root, every slot
     filled, so the serving phase never misses. *)
  Vm.span_begin vm "serve:load";
  let root = Vm.alloc vm ~nrefs:m_count ~nwords:0 in
  Vm.add_root vm root;
  let index =
    Array.init m_count (fun m ->
        let idx = Vm.alloc ~m vm ~nrefs:(max 1 (shard_size m)) ~nwords:0 in
        Vm.store_ref vm root m (Some idx);
        idx)
  in
  for k = 0 to p.keys - 1 do
    let m = k mod m_count in
    let e = Vm.alloc ~m vm ~nrefs:0 ~nwords:(1 + p.value_words) in
    Vm.store_word ~m vm e 0 k;
    for w = 1 to p.value_words do
      Vm.store_word ~m vm e w (k + w)
    done;
    Vm.store_ref ~m vm index.(m) (k / m_count) (Some e)
  done;
  Vm.span_end vm;
  (* Serve: fixed arrival timeline, requests executed back to back on the
     simulated machine, latencies from per-shard virtual-time queues. *)
  Vm.span_begin vm "serve:drive";
  let arrivals =
    Arrival.create p.process ~rate:p.load ~duration:p.duration
      ~seed:(p.seed + 1)
  in
  let free_at = Array.make m_count 0 in
  let reqs = ref [] in
  let gets = ref 0 and updates = ref 0 and scans = ref 0 in
  let checksum = ref 0 in
  let rec loop () =
    match Arrival.next arrivals with
    | None -> ()
    | Some arrival ->
        let roll = Rng.int rng 100 in
        let kind =
          if roll < p.mix.gets then Get
          else if roll < p.mix.gets + p.mix.updates then Update
          else Scan
        in
        let key = Keydist.sample dist rng in
        let m = key mod m_count in
        let slot = key / m_count in
        let w0 = Vm.wall_cycles vm in
        let t0 = Vm.mutator_clock vm ~m in
        let stw0 = Vm.stw_cycles vm in
        (match kind with
        | Get ->
            incr gets;
            let e = Option.get (Vm.load_ref ~m vm index.(m) slot) in
            for w = 1 to p.value_words do
              checksum := !checksum lxor Vm.load_word ~m vm e w
            done
        | Update ->
            incr updates;
            let e = Vm.alloc ~m vm ~nrefs:0 ~nwords:(1 + p.value_words) in
            Vm.store_word ~m vm e 0 key;
            for w = 1 to p.value_words do
              Vm.store_word ~m vm e w (key + w + !updates)
            done;
            Vm.store_ref ~m vm index.(m) slot (Some e)
        | Scan ->
            incr scans;
            let size = shard_size m in
            for j = 0 to p.mix.scan_len - 1 do
              let s = (slot + j) mod size in
              let e = Option.get (Vm.load_ref ~m vm index.(m) s) in
              checksum := !checksum lxor Vm.load_word ~m vm e 1
            done);
        let t1 = Vm.mutator_clock vm ~m in
        let w1 = Vm.wall_cycles vm in
        let service = t1 - t0 in
        (* An STW pause during execution stops the serving thread too: it
           stretches this request and everything queued behind it.  The
           STW-cycle delta is read from the VM directly so latencies do
           not depend on whether telemetry is attached. *)
        let stall = Vm.stw_cycles vm - stw0 in
        let start = max arrival free_at.(m) in
        free_at.(m) <- start + service + stall;
        let wait = start - arrival in
        let latency = wait + service + stall in
        (match recorder with
        | Some r ->
            Recorder.complete_span r (Recorder.Mutator m)
              ~name:(span_name kind) ~wall:w0 ~dur:(w1 - w0)
              ~args:
                [ ("arrival", arrival); ("wait", wait); ("stall", stall);
                  ("latency", latency) ]
        | None -> ());
        reqs :=
          { arrival; mutator = m; kind; wait; service; stall; latency; w0; w1 }
          :: !reqs;
        loop ()
  in
  loop ();
  Vm.span_end vm;
  Vm.remove_root vm root;
  {
    requests = Array.of_list (List.rev !reqs);
    gets = !gets;
    updates = !updates;
    scans = !scans;
    checksum = !checksum;
  }

let params_key p =
  Printf.sprintf
    "serve(keys=%d,vw=%d,mut=%d,dist=%s,mix=%d/%d/%d x%d,proc=%s,load=%h,dur=%d,seed=%d)"
    p.keys p.value_words p.mutators
    (Keydist.spec_key (Keydist.create p.dist ~key_space:p.keys))
    p.mix.gets p.mix.updates p.mix.scans p.mix.scan_len
    (Arrival.process_key p.process)
    p.load p.duration p.seed
