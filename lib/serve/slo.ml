module Analyzer = Hcsgc_telemetry.Analyzer

let cycles_per_us = 3000

type report = {
  requests : int;
  gets : int;
  updates : int;
  scans : int;
  duration : int;
  throughput : float;
  mean : float;
  p50 : int;
  p95 : int;
  p99 : int;
  p999 : int;
  max_latency : int;
  slo : int;
  violations : int;
  pause_attributed : int;
  service_attributed : int;
  pause_cycles : int;
}

let analyze ~slo ~duration ~pauses (result : Serve.result) =
  if duration <= 0 then invalid_arg "Slo.analyze: duration must be positive";
  if slo < 0 then invalid_arg "Slo.analyze: slo must be non-negative";
  let requests = result.Serve.requests in
  let n = Array.length requests in
  let zero =
    {
      requests = n;
      gets = result.Serve.gets;
      updates = result.Serve.updates;
      scans = result.Serve.scans;
      duration;
      throughput = float_of_int n *. 1e6 /. float_of_int duration;
      mean = 0.0;
      p50 = 0;
      p95 = 0;
      p99 = 0;
      p999 = 0;
      max_latency = 0;
      slo;
      violations = 0;
      pause_attributed = 0;
      service_attributed = 0;
      pause_cycles = 0;
    }
  in
  if n = 0 then zero
  else begin
    let pauses = Analyzer.coalesce pauses in
    let latencies =
      Array.to_list (Array.map (fun r -> r.Serve.latency) requests)
    in
    let total =
      Array.fold_left (fun acc r -> acc + r.Serve.latency) 0 requests
    in
    (* Busy-period pause attribution, per shard: pause overlap absorbed by
       a request's wall window carries to everything queued behind it; a
       request that starts with zero wait opens a fresh busy period. *)
    let mutators =
      1 + Array.fold_left (fun acc r -> max acc r.Serve.mutator) 0 requests
    in
    let carry = Array.make mutators 0 in
    let violations = ref 0 in
    let pause_attributed = ref 0 in
    let service_attributed = ref 0 in
    let pause_cycles = ref 0 in
    Array.iter
      (fun (r : Serve.request) ->
        let m = r.Serve.mutator in
        if r.Serve.wait = 0 then carry.(m) <- 0;
        let own =
          Analyzer.overlap ~coalesced:true ~window:(r.Serve.w0, r.Serve.w1)
            pauses
        in
        if slo > 0 && r.Serve.latency > slo then begin
          incr violations;
          let charged = own + carry.(m) in
          if charged > 0 then begin
            incr pause_attributed;
            pause_cycles := !pause_cycles + charged
          end
          else incr service_attributed
        end;
        carry.(m) <- carry.(m) + own)
      requests;
    {
      zero with
      mean = float_of_int total /. float_of_int n;
      p50 = Analyzer.percentile latencies ~pct:50.0;
      p95 = Analyzer.percentile latencies ~pct:95.0;
      p99 = Analyzer.percentile latencies ~pct:99.0;
      p999 = Analyzer.percentile latencies ~pct:99.9;
      max_latency = Array.fold_left (fun acc r -> max acc r.Serve.latency) 0 requests;
      violations = !violations;
      pause_attributed = !pause_attributed;
      service_attributed = !service_attributed;
      pause_cycles = !pause_cycles;
    }
  end

let histogram_buckets = 40

let histogram requests =
  let counts = Array.make histogram_buckets 0 in
  let rec log2 n = if n <= 1 then 0 else 1 + log2 (n lsr 1) in
  Array.iter
    (fun (r : Serve.request) ->
      let b = min (histogram_buckets - 1) (log2 (max 0 r.Serve.latency)) in
      counts.(b) <- counts.(b) + 1)
    requests;
  counts

let histogram_to_string counts =
  String.concat " " (Array.to_list (Array.map string_of_int counts))

let to_line r =
  Printf.sprintf
    "slo1 n=%d g=%d u=%d s=%d dur=%d thr=%h mean=%h p50=%d p95=%d p99=%d \
     p999=%d max=%d slo=%d viol=%d pause=%d service=%d pcycles=%d"
    r.requests r.gets r.updates r.scans r.duration r.throughput r.mean r.p50
    r.p95 r.p99 r.p999 r.max_latency r.slo r.violations r.pause_attributed
    r.service_attributed r.pause_cycles

let of_line line =
  match
    Scanf.sscanf_opt line
      "slo1 n=%d g=%d u=%d s=%d dur=%d thr=%h mean=%h p50=%d p95=%d p99=%d \
       p999=%d max=%d slo=%d viol=%d pause=%d service=%d pcycles=%d"
      (fun requests gets updates scans duration throughput mean p50 p95 p99
           p999 max_latency slo violations pause_attributed service_attributed
           pause_cycles ->
        {
          requests;
          gets;
          updates;
          scans;
          duration;
          throughput;
          mean;
          p50;
          p95;
          p99;
          p999;
          max_latency;
          slo;
          violations;
          pause_attributed;
          service_attributed;
          pause_cycles;
        })
  with
  | Some r -> Ok r
  | None -> Error (Printf.sprintf "Slo.of_line: unparseable %S" line)

let pp_histogram fmt counts =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then Format.fprintf fmt "(no requests)@."
  else begin
    let peak = Array.fold_left max 0 counts in
    Format.fprintf fmt "latency histogram (log2 buckets, %d requests):@." total;
    Array.iteri
      (fun i n ->
        if n > 0 then begin
          let lo = if i = 0 then 0 else 1 lsl i in
          let bar = String.make (max 1 (40 * n / peak)) '#' in
          Format.fprintf fmt "  [%9d, %9d) %7d %s@." lo (1 lsl (i + 1)) n bar
        end)
      counts
  end

let us c = float_of_int c /. float_of_int cycles_per_us

let pp fmt r =
  Format.fprintf fmt "== serve SLO report ==@\n";
  Format.fprintf fmt
    "requests: %d (%d get / %d update / %d scan) over %.1f Mcycles — %.1f \
     req/Mc served@\n"
    r.requests r.gets r.updates r.scans
    (float_of_int r.duration /. 1e6)
    r.throughput;
  Format.fprintf fmt
    "latency: mean=%.0fc p50=%dc p95=%dc p99=%dc p99.9=%dc max=%dc@\n" r.mean
    r.p50 r.p95 r.p99 r.p999 r.max_latency;
  Format.fprintf fmt
    "         (at 3 GHz: p50=%.2fus p99=%.2fus p99.9=%.2fus max=%.2fus)@\n"
    (us r.p50) (us r.p99) (us r.p999) (us r.max_latency);
  if r.slo = 0 then Format.fprintf fmt "SLO: not configured@\n"
  else
    Format.fprintf fmt
      "SLO %dc (%.0fus): %d violations (%.3f%%) — %d pause-attributed (%d \
       pause cycles absorbed), %d service-attributed@\n"
      r.slo (us r.slo) r.violations
      (100.0 *. float_of_int r.violations /. float_of_int (max 1 r.requests))
      r.pause_attributed r.pause_cycles r.service_attributed
