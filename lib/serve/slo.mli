(** Tail-latency SLO accounting over a serving run.

    Layered on {!Hcsgc_telemetry.Analyzer}: latency percentiles are
    nearest-rank over the per-request enqueue→completion latencies, and
    each violation is attributed to GC by intersecting the request's
    wall-clock service window with the run's coalesced STW-pause
    intervals ({!Analyzer.overlap}).  Attribution follows busy periods: a
    pause's cycles carry forward to every request queued behind it on the
    same shard (the queue only drains when a request starts with zero
    wait), so a violation is {e pause-attributed} when its own window or
    its busy period absorbed pause time, and {e service-attributed}
    otherwise. *)

val cycles_per_us : int
(** 3000 — the 3 GHz convention used to convert [--slo-us] to cycles and
    to annotate reports in microseconds. *)

type report = {
  requests : int;
  gets : int;
  updates : int;
  scans : int;
  duration : int;  (** the arrival window, cycles *)
  throughput : float;  (** served requests per megacycle of the window *)
  mean : float;  (** mean latency, cycles *)
  p50 : int;
  p95 : int;
  p99 : int;
  p999 : int;
  max_latency : int;
  slo : int;  (** threshold in cycles; 0 = no SLO configured *)
  violations : int;
  pause_attributed : int;
  service_attributed : int;
  pause_cycles : int;
      (** total pause overlap charged to violating busy periods *)
}

val analyze :
  slo:int -> duration:int -> pauses:(int * int) list ->
  Serve.result -> report
(** [pauses] are the run's STW intervals
    ({!Hcsgc_telemetry.Analyzer.pause_intervals}); they are coalesced
    here.  [slo = 0] disables violation counting (all violation fields
    zero). *)

val histogram : Serve.request array -> int array
(** Log2-bucketed latency histogram: bucket [i] counts requests with
    latency in [\[2^i, 2^(i+1))] (bucket 0 also counts 0 and 1); fixed
    length so equal workloads compare byte-for-byte. *)

val histogram_to_string : int array -> string
(** Space-joined counts — the determinism tests' byte-compare form. *)

val pp_histogram : Format.formatter -> int array -> unit
(** Render the non-empty buckets as cycle ranges with scaled bars. *)

val to_line : report -> string
(** One-line machine-readable codec (floats in hex), inverse of
    {!of_line}. *)

val of_line : string -> (report, string) result

val pp : Format.formatter -> report -> unit
(** Human-readable report: percentiles in cycles and microseconds (at
    {!cycles_per_us}), violation counts with attribution. *)
