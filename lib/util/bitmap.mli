(** Fixed-capacity bit sets.

    Used for the per-page {e livemap} and {e hotmap} (§3.1.2 of the paper):
    one bit per minimum object alignment granule on a page.  Reset must be
    O(words), not O(bits), because both maps are cleared at the start of every
    M/R phase. *)

type t

val create : int -> t
(** [create n] is a bitmap of [n] bits, all clear.
    @raise Invalid_argument if [n < 0]. *)

val length : t -> int
(** Capacity in bits. *)

val get : t -> int -> bool
(** [get t i] reads bit [i].  @raise Invalid_argument if out of range. *)

val set : t -> int -> unit
(** [set t i] sets bit [i]. *)

val clear : t -> int -> unit
(** [clear t i] clears bit [i]. *)

val test_and_set : t -> int -> bool
(** [test_and_set t i] sets bit [i] and returns whether it was previously set.
    Models the CAS used by the paper's hotmap update (the return value lets a
    caller charge the CAS cost only once per object). *)

val reset : t -> unit
(** Clear every bit (word-wise). *)

val pop_count : t -> int
(** Number of set bits. *)

val iter_set : t -> (int -> unit) -> unit
(** [iter_set t f] applies [f] to the index of every set bit, ascending. *)

val next_set : t -> int -> int
(** [next_set t i] is the index of the first set bit at or after [i], or
    -1 if there is none.  Allocation-free — the cursor form of
    {!iter_set} for callers that cannot afford a closure per scan.
    @raise Invalid_argument if [i < 0]. *)

val fold_set : t -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Fold over set-bit indices, ascending. *)
