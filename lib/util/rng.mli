(** Deterministic pseudo-random number generation.

    All randomness in the simulator flows through this module so that an
    experiment is a pure function of its seed: two runs with equal seeds are
    bit-identical.  The generator is SplitMix64 (Steele, Lea & Flood 2014),
    chosen for speed, a one-word state that is cheap to fork, and good
    statistical quality for simulation purposes. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds give equal streams. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val split : t -> t
(** [split t] derives a statistically independent generator from [t],
    advancing [t].  Used to give each mutator thread / workload phase its own
    stream without correlating them. *)

val next : t -> int
(** [next t] returns a uniformly distributed non-negative int (62 bits). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** A fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** Fisher–Yates in-place shuffle. *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential distribution (inter-arrival
    times for the SPECjbb-style injector). *)
