(** Open-addressed linear-probing int → int hash table.

    The GC-phase replacement for [(int, int) Hashtbl.t]: flat parallel
    int arrays (no buckets, no boxing), power-of-two capacity, and a
    {!clear} that keeps the backing store — so a table reused across GC
    cycles allocates nothing once it has reached its high-water size.
    Keys must be non-negative (the empty-slot sentinel is -1); there is
    no removal, which keeps probe chains tombstone-free (the collector's
    users only add, look up and bulk-clear). *)

type t

val create : ?capacity:int -> unit -> t
(** An empty table; [capacity] (default 16) is rounded up to a power of
    two. *)

val length : t -> int
(** Number of bindings. *)

val capacity : t -> int
(** Current slot count (a power of two); grows when the load factor
    passes 3/4 and never shrinks. *)

val set : t -> key:int -> value:int -> unit
(** Bind [key] to [value], replacing any previous binding.
    @raise Invalid_argument on a negative key. *)

val add_if_absent : t -> key:int -> value:int -> int
(** Bind [key] to [value] only if unbound, returning -1; if already
    bound, return the existing value unchanged.  The flat-table
    equivalent of {!Hcsgc_heap.Fwd_table.claim}'s first-claimant-wins
    CAS, without an intermediate variant allocation (values are
    addresses, hence non-negative — -1 is unambiguous).
    @raise Invalid_argument on a negative key. *)

val get : t -> key:int -> default:int -> int
(** The value bound to [key], or [default] if unbound (negative keys are
    unbound by definition).  Allocation-free. *)

val mem : t -> key:int -> bool

val clear : t -> unit
(** Remove every binding, retaining the backing arrays (O(capacity)). *)

val iter : t -> (int -> int -> unit) -> unit
(** [iter t f] applies [f key value] to every binding, in slot order
    (deterministic for a given insertion history, but not sorted). *)
