(* Open-addressed linear-probing int -> int hash table.

   Flat parallel int arrays, power-of-two capacity, Fibonacci hashing.
   No boxing anywhere: lookups return an int sentinel instead of an
   option, and [clear] keeps the backing arrays, so a table reused
   across GC cycles allocates only when it grows past its high-water
   capacity.  There is deliberately no [remove] — the GC-side users
   (forwarding tables, the collector's forwarding index) only ever add,
   look up and bulk-clear, and leaving deletion out keeps probe chains
   tombstone-free. *)

type t = {
  mutable keys : int array;  (* empty slots hold [empty] *)
  mutable vals : int array;
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
  mutable count : int;
}

let empty = -1

(* Fibonacci-style odd multiplier (the 64-bit 2^64/phi constant truncated
   to OCaml's 63-bit int range); [land mask] keeps the result
   non-negative. *)
let fib = 0x1E3779B97F4A7C15

let[@inline] slot_of t key = key * fib land t.mask

let default_capacity = 16

let create ?(capacity = default_capacity) () =
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    keys = Array.make !cap empty;
    vals = Array.make !cap 0;
    mask = !cap - 1;
    count = 0;
  }

let length t = t.count

(* Probe for [key]: the slot holding it, or the empty slot where it
   would go.  The load factor stays below 3/4, so an empty slot always
   exists. *)
let rec probe_loop keys mask i key =
  let k = Array.unsafe_get keys i in
  if k = key || k = empty then i else probe_loop keys mask ((i + 1) land mask) key

let[@inline] probe t key = probe_loop t.keys t.mask (slot_of t key) key

let rec insert_fresh keys mask i =
  if Array.unsafe_get keys i = empty then i
  else insert_fresh keys mask ((i + 1) land mask)

let grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let ncap = (t.mask + 1) * 2 in
  t.keys <- Array.make ncap empty;
  t.vals <- Array.make ncap 0;
  t.mask <- ncap - 1;
  for i = 0 to Array.length old_keys - 1 do
    let k = Array.unsafe_get old_keys i in
    if k <> empty then begin
      let j = insert_fresh t.keys t.mask (slot_of t k) in
      Array.unsafe_set t.keys j k;
      Array.unsafe_set t.vals j (Array.unsafe_get old_vals i)
    end
  done

let set t ~key ~value =
  if key < 0 then invalid_arg "Int_tbl.set: negative key";
  let i = probe t key in
  if Array.unsafe_get t.keys i = empty then begin
    Array.unsafe_set t.keys i key;
    Array.unsafe_set t.vals i value;
    t.count <- t.count + 1;
    if 4 * t.count > 3 * (t.mask + 1) then grow t
  end
  else Array.unsafe_set t.vals i value

let add_if_absent t ~key ~value =
  if key < 0 then invalid_arg "Int_tbl.add_if_absent: negative key";
  let i = probe t key in
  if Array.unsafe_get t.keys i = empty then begin
    Array.unsafe_set t.keys i key;
    Array.unsafe_set t.vals i value;
    t.count <- t.count + 1;
    if 4 * t.count > 3 * (t.mask + 1) then grow t;
    -1
  end
  else Array.unsafe_get t.vals i

let get t ~key ~default =
  if key < 0 then default
  else
    let i = probe t key in
    if Array.unsafe_get t.keys i = empty then default
    else Array.unsafe_get t.vals i

let mem t ~key =
  key >= 0 && Array.unsafe_get t.keys (probe t key) <> empty

let clear t =
  if t.count > 0 then begin
    Array.fill t.keys 0 (Array.length t.keys) empty;
    t.count <- 0
  end

let iter t f =
  for i = 0 to Array.length t.keys - 1 do
    let k = Array.unsafe_get t.keys i in
    if k <> empty then f k (Array.unsafe_get t.vals i)
  done

let capacity t = t.mask + 1
