type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create () = { data = [||]; len = 0 }

let make n x = { data = Array.make n x; len = n }

let length t = t.len

let is_empty t = t.len = 0

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Vec: index out of range"

let get t i =
  check t i;
  Array.unsafe_get t.data i

let unsafe_get t i = Array.unsafe_get t.data i

let set t i x =
  check t i;
  Array.unsafe_set t.data i x

let grow t x =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let ndata = Array.make ncap x in
  Array.blit t.data 0 ndata 0 t.len;
  t.data <- ndata

let push t x =
  if t.len = Array.length t.data then grow t x;
  Array.unsafe_set t.data t.len x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    Some (Array.unsafe_get t.data t.len)
  end

let clear t = t.len <- 0

let remove t x =
  (* Compact the survivors leftwards in one pass; relative order is
     preserved (callers rely on it for deterministic iteration). *)
  let j = ref 0 in
  for i = 0 to t.len - 1 do
    let v = Array.unsafe_get t.data i in
    if v != x then begin
      if !j < i then Array.unsafe_set t.data !j v;
      incr j
    end
  done;
  t.len <- !j

let iter f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.data i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i (Array.unsafe_get t.data i)
  done

let fold_left f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let exists p t =
  let rec go i = i < t.len && (p (Array.unsafe_get t.data i) || go (i + 1)) in
  go 0

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (get t i :: acc) in
  go (t.len - 1) []

let to_array t = Array.sub t.data 0 t.len

let of_list xs =
  let t = create () in
  List.iter (push t) xs;
  t

let sort cmp t =
  let a = to_array t in
  Array.sort cmp a;
  Array.blit a 0 t.data 0 t.len
