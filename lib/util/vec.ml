type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create () = { data = [||]; len = 0 }

let make n x = { data = Array.make n x; len = n }

let length t = t.len

let is_empty t = t.len = 0

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Vec: index out of range"

let get t i =
  check t i;
  Array.unsafe_get t.data i

let unsafe_get t i = Array.unsafe_get t.data i

let set t i x =
  check t i;
  Array.unsafe_set t.data i x

let grow t x =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let ndata = Array.make ncap x in
  Array.blit t.data 0 ndata 0 t.len;
  t.data <- ndata

let push t x =
  if t.len = Array.length t.data then grow t x;
  Array.unsafe_set t.data t.len x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    Some (Array.unsafe_get t.data t.len)
  end

let pop_last t =
  if t.len = 0 then invalid_arg "Vec.pop_last: empty";
  t.len <- t.len - 1;
  Array.unsafe_get t.data t.len

let clear t = t.len <- 0

let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Vec.truncate: bad length";
  t.len <- n

let remove t x =
  (* Compact the survivors leftwards in one pass; relative order is
     preserved (callers rely on it for deterministic iteration). *)
  let j = ref 0 in
  for i = 0 to t.len - 1 do
    let v = Array.unsafe_get t.data i in
    if v != x then begin
      if !j < i then Array.unsafe_set t.data !j v;
      incr j
    end
  done;
  t.len <- !j

let iter f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.data i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i (Array.unsafe_get t.data i)
  done

let fold_left f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let exists p t =
  let rec go i = i < t.len && (p (Array.unsafe_get t.data i) || go (i + 1)) in
  go 0

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (get t i :: acc) in
  go (t.len - 1) []

let to_array t = Array.sub t.data 0 t.len

let of_list xs =
  let t = create () in
  List.iter (push t) xs;
  t

(* In-place bottom-up heapsort over the live prefix: O(n log n), no
   scratch array, no allocation.  Not stable — callers that need a
   deterministic result (EC selection does) must supply a total order,
   under which every sort agrees with [List.sort] anyway. *)
let rec sift_down data cmp root len =
  let child = (2 * root) + 1 in
  if child < len then begin
    let child =
      if
        child + 1 < len
        && cmp (Array.unsafe_get data child) (Array.unsafe_get data (child + 1))
           < 0
      then child + 1
      else child
    in
    if cmp (Array.unsafe_get data root) (Array.unsafe_get data child) < 0
    then begin
      let tmp = Array.unsafe_get data root in
      Array.unsafe_set data root (Array.unsafe_get data child);
      Array.unsafe_set data child tmp;
      sift_down data cmp child len
    end
  end

let sort cmp t =
  let data = t.data in
  for root = (t.len / 2) - 1 downto 0 do
    sift_down data cmp root t.len
  done;
  for last = t.len - 1 downto 1 do
    let tmp = Array.unsafe_get data 0 in
    Array.unsafe_set data 0 (Array.unsafe_get data last);
    Array.unsafe_set data last tmp;
    sift_down data cmp 0 last
  done

(* [remove] generalised to a predicate: keep the elements satisfying
   [p], compacting leftwards in one order-preserving pass. *)
let rec retain_loop data p i j len =
  if i >= len then j
  else
    let v = Array.unsafe_get data i in
    if p v then begin
      if j < i then Array.unsafe_set data j v;
      retain_loop data p (i + 1) (j + 1) len
    end
    else retain_loop data p (i + 1) j len

let retain p t = t.len <- retain_loop t.data p 0 0 t.len
