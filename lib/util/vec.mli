(** Growable arrays (OCaml 5.1 predates [Dynarray] in the stdlib).

    Used throughout the simulator for page tables, work lists and per-page
    object vectors. *)

type 'a t

val create : unit -> 'a t
(** An empty vector. *)

val make : int -> 'a -> 'a t
(** [make n x] is a vector of [n] copies of [x]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** @raise Invalid_argument if out of range. *)

val unsafe_get : 'a t -> int -> 'a
(** [get] without the bounds check — for hot loops over [0, length); the
    behaviour on an out-of-range index is undefined. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument if out of range. *)

val push : 'a t -> 'a -> unit
(** Append at the end, growing geometrically. *)

val pop : 'a t -> 'a option
(** Remove and return the last element, or [None] if empty. *)

val pop_last : 'a t -> 'a
(** [pop] without the option box — for allocation-free work-list loops;
    callers check {!is_empty} first.
    @raise Invalid_argument if empty. *)

val clear : 'a t -> unit
(** Logical reset to length 0; capacity is retained. *)

val truncate : 'a t -> int -> unit
(** [truncate t n] drops all but the first [n] elements (capacity is
    retained).  @raise Invalid_argument unless [0 <= n <= length t]. *)

val remove : 'a t -> 'a -> unit
(** [remove t x] deletes every element physically equal ([==]) to [x],
    in place, preserving the relative order of the survivors.  O(length),
    allocation-free. *)

val retain : ('a -> bool) -> 'a t -> unit
(** [retain p t] keeps exactly the elements satisfying [p], in place,
    preserving their relative order — the predicate form of {!remove}.
    O(length), allocation-free. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val of_list : 'a list -> 'a t
val sort : ('a -> 'a -> int) -> 'a t -> unit
(** In-place, allocation-free heapsort of the live prefix.  Not stable:
    callers needing a deterministic result must supply a total order (under
    which the outcome equals [List.sort]'s). *)
