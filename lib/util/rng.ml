type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  (* Derive a new state from the parent's next output, re-mixed so parent and
     child streams do not overlap. *)
  let s = next64 t in
  { state = mix64 (Int64.add s golden_gamma) }

let next t =
  (* Keep results non-negative and within OCaml's int range. *)
  Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = next t in
    let v = r mod bound in
    if r - v > (max_int lsr 1) * 2 - bound + 1 then go () else v
  in
  go ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let exponential t mean =
  let u = Float.max 1e-12 (float t 1.0) in
  -.mean *. Float.log u
