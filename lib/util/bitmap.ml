type t = { bits : Bytes.t; length : int }

let create n =
  if n < 0 then invalid_arg "Bitmap.create: negative size";
  { bits = Bytes.make ((n + 7) / 8) '\000'; length = n }

let length t = t.length

let check t i =
  if i < 0 || i >= t.length then invalid_arg "Bitmap: index out of range"

let get t i =
  check t i;
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  check t i;
  let byte = i lsr 3 in
  let v = Char.code (Bytes.unsafe_get t.bits byte) lor (1 lsl (i land 7)) in
  Bytes.unsafe_set t.bits byte (Char.unsafe_chr v)

let clear t i =
  check t i;
  let byte = i lsr 3 in
  let v = Char.code (Bytes.unsafe_get t.bits byte) land lnot (1 lsl (i land 7)) in
  Bytes.unsafe_set t.bits byte (Char.unsafe_chr v)

let test_and_set t i =
  let was = get t i in
  if not was then set t i;
  was

let reset t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

(* Byte-wise popcount table: livemap/hotmap accounting pop-counts every
   page's maps once per GC cycle, so this runs one table load per byte
   instead of one loop iteration per set bit. *)
let byte_pop_count =
  let table = Bytes.create 256 in
  for byte = 0 to 255 do
    let v = ref byte and n = ref 0 in
    while !v <> 0 do
      v := !v land (!v - 1);
      incr n
    done;
    Bytes.unsafe_set table byte (Char.unsafe_chr !n)
  done;
  table

let pop_count t =
  let count = ref 0 in
  for b = 0 to Bytes.length t.bits - 1 do
    count :=
      !count
      + Char.code
          (Bytes.unsafe_get byte_pop_count (Char.code (Bytes.unsafe_get t.bits b)))
  done;
  !count

let iter_set t f =
  for b = 0 to Bytes.length t.bits - 1 do
    let v = Char.code (Bytes.unsafe_get t.bits b) in
    if v <> 0 then
      for bit = 0 to 7 do
        if v land (1 lsl bit) <> 0 then
          let i = (b lsl 3) lor bit in
          if i < t.length then f i
      done
  done

(* First set bit at index >= i within byte [b] (whose value is [v]),
   else recurse into the following bytes.  Tail-recursive with int-only
   state so [next_set] scans without allocating. *)
let rec next_in_byte t b v bit =
  if bit > 7 then next_from_byte t (b + 1)
  else if v land (1 lsl bit) <> 0 then
    let i = (b lsl 3) lor bit in
    if i < t.length then i else -1
  else next_in_byte t b v (bit + 1)

and next_from_byte t b =
  if b >= Bytes.length t.bits then -1
  else
    let v = Char.code (Bytes.unsafe_get t.bits b) in
    if v = 0 then next_from_byte t (b + 1) else next_in_byte t b v 0

let next_set t i =
  if i < 0 then invalid_arg "Bitmap.next_set: negative index";
  if i >= t.length then -1
  else
    let b = i lsr 3 in
    let v = Char.code (Bytes.unsafe_get t.bits b) in
    let masked = v land lnot ((1 lsl (i land 7)) - 1) in
    if masked <> 0 then next_in_byte t b masked (i land 7)
    else next_from_byte t (b + 1)

let fold_set t ~init ~f =
  let acc = ref init in
  iter_set t (fun i -> acc := f !acc i);
  !acc
