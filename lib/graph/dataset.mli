(** The graph inputs of Table 3, as generator parameters.

    The paper processes subsets of the LAW {e uk-2007-05@100000} and
    {e enwiki-2018} graphs; the proprietary data is replaced by the
    preferential-attachment generator at the same node/edge counts (see
    DESIGN.md).  [scale] divides the counts for quick runs; heap sizes are
    scaled alongside. *)

type t = {
  name : string;
  nodes : int;
  edges : int;
  heap_mb : int;  (** the paper's heap size for this input, in MB *)
  model : Generator.model;
}

val uk_complete : t
(** The full uk graph (Table 3 row 1; only listed, never processed). *)

val uk_cc : t
val uk_mc : t
val enwiki_complete : t
val enwiki_cc : t
val enwiki_mc : t

val table3 : t list
(** All six rows in the paper's order. *)

val scaled : t -> factor:int -> t
(** Divide node/edge counts (and heap) by [factor], keeping at least two
    vertices and one edge.  @raise Invalid_argument if factor < 1. *)
