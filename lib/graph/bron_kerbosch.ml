module Vm = Hcsgc_runtime.Vm

type stats = {
  cliques : int;
  max_size : int;
  expansions : int;
}

(* Sorted, deduplicated int arrays as sets. *)
let sorted_of_list xs = List.sort_uniq compare xs |> Array.of_list

let inter a b =
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length a && !j < Array.length b do
    let c = compare a.(!i) b.(!j) in
    if c = 0 then begin
      out := a.(!i) :: !out;
      incr i;
      incr j
    end
    else if c < 0 then incr i
    else incr j
  done;
  Array.of_list (List.rev !out)

let remove set x = Array.of_list (List.filter (fun y -> y <> x) (Array.to_list set))

let add set x = sorted_of_list (x :: Array.to_list set)

let mem set x = Array.exists (fun y -> y = x) set

(* The paper uses JGraphT's plain [BronKerboschCliqueFinder] — the
   non-pivoting variant — so this follows it: every vertex of P branches.
   Like the Java implementation, each recursion copies its candidate and
   exclusion sets and each branch materialises two intersections; those
   copies are modelled as managed allocation (the "some allocation done by
   the Bron-Kerbosch algorithm, which triggers GC often" of §4.5). *)
let run ?(max_expansions = max_int) ?(garbage_every = 1) g =
  let vm = Mgraph.vm g in
  let cliques = ref 0 and max_size = ref 0 and expansions = ref 0 in
  let charge_sets words =
    if garbage_every > 0 && !expansions mod garbage_every = 0 && words > 0 then
      ignore (Vm.alloc vm ~nrefs:0 ~nwords:(min 512 (max 4 words)))
  in
  let neighbors v =
    (* Graphs.neighborSetOf: a fresh set per call, reading the adjacency
       through the barriers. *)
    let ns = sorted_of_list (Mgraph.neighbors g v) in
    charge_sets (Array.length ns);
    ns
  in
  let rec bk r_size p x =
    if !expansions < max_expansions then begin
      incr expansions;
      charge_sets (Array.length p + Array.length x);
      if Array.length p = 0 && Array.length x = 0 then begin
        incr cliques;
        if r_size > !max_size then max_size := r_size
      end
      else begin
        let p_ref = ref p and x_ref = ref x in
        Array.iter
          (fun v ->
            if !expansions < max_expansions && mem !p_ref v then begin
              let nv = neighbors v in
              bk (r_size + 1) (inter !p_ref nv) (inter !x_ref nv);
              p_ref := remove !p_ref v;
              x_ref := add !x_ref v
            end)
          p
      end
    end
  in
  let all = Array.init (Mgraph.n g) (fun i -> i) in
  bk 0 all [||];
  { cliques = !cliques; max_size = !max_size; expansions = !expansions }
