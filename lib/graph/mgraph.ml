module Vm = Hcsgc_runtime.Vm
module Heap_obj = Hcsgc_heap.Heap_obj

(* Like JGraphT, every edge is reified as its own object holding the two
   endpoint references; adjacency cells hold [cell_arity] edge refs plus a
   next pointer (one cache line each, like hash-set nodes).  Reading a
   neighbour therefore chases cell -> edge -> endpoint objects, and the
   per-edge objects give graphs the same memory footprint blow-up real
   JGraphT heaps have. *)
let cell_arity = 4

(* Edge object shape: refs = [source; target]; payload = [weight]. *)
let edge_src = 0
let edge_dst = 1

(* Node object shape: refs = [adjacency head]; payload = [id; scratch]. *)
let node_adj_slot = 0
let node_id_word = 0
let node_scratch_word = 1

let _ = node_scratch_word

type t = {
  vm : Vm.t;
  root : Heap_obj.t;  (* managed table of node refs; registered as root *)
  nodes : Heap_obj.t array;  (* OCaml-side handles, index = id *)
  mutable arcs : int;
}

let create vm ~n =
  if n <= 0 then invalid_arg "Mgraph.create: need at least one vertex";
  let root = Vm.alloc vm ~nrefs:n ~nwords:0 in
  Vm.add_root vm root;
  let nodes =
    Array.init n (fun i ->
        let node = Vm.alloc vm ~nrefs:1 ~nwords:2 in
        Vm.store_word vm node node_id_word i;
        Vm.store_ref vm root i (Some node);
        node)
  in
  { vm; root; nodes; arcs = 0 }

let vm t = t.vm

let n t = Array.length t.nodes

let node t i =
  if i < 0 || i >= Array.length t.nodes then
    invalid_arg "Mgraph.node: vertex out of range";
  t.nodes.(i)

let node_id t handle = Vm.load_word t.vm handle node_id_word

let edge_count t = t.arcs

(* Append an edge object to a vertex's adjacency: find the head cell with
   spare capacity or prepend a fresh one (O(1), like a linked bucket). *)
let append_to_adjacency t vertex edge =
  let vm = t.vm in
  let head = Vm.load_ref vm vertex node_adj_slot in
  let cell =
    match head with
    | Some cell when Vm.load_word vm cell 0 < cell_arity -> cell
    | _ ->
        let cell = Vm.alloc vm ~nrefs:(1 + cell_arity) ~nwords:1 in
        Vm.store_ref vm cell 0 head;
        Vm.store_word vm cell 0 0;
        Vm.store_ref vm vertex node_adj_slot (Some cell);
        cell
  in
  let used = Vm.load_word vm cell 0 in
  Vm.store_ref vm cell (1 + used) (Some edge);
  Vm.store_word vm cell 0 (used + 1)

let make_edge t a b =
  let vm = t.vm in
  let e = Vm.alloc vm ~nrefs:2 ~nwords:1 in
  Vm.store_ref vm e edge_src (Some (node t a));
  Vm.store_ref vm e edge_dst (Some (node t b));
  e

let add_arc t src dst =
  let e = make_edge t src dst in
  append_to_adjacency t (node t src) e;
  t.arcs <- t.arcs + 1

let add_edge t a b =
  (* One shared edge object, registered in both adjacency sets — the
     JGraphT undirected representation. *)
  let e = make_edge t a b in
  append_to_adjacency t (node t a) e;
  append_to_adjacency t (node t b) e;
  t.arcs <- t.arcs + 2

let iter_neighbors t v f =
  let vm = t.vm in
  let self = node t v in
  let other edge =
    (* Touch the edge object and pick the endpoint that is not [v]. *)
    match (Vm.load_ref vm edge edge_src, Vm.load_ref vm edge edge_dst) with
    | Some s, Some d -> if s == self then d else s
    | _ -> invalid_arg "Mgraph: malformed edge object"
  in
  let rec walk = function
    | None -> ()
    | Some cell ->
        let used = Vm.load_word vm cell 0 in
        for k = 1 to used do
          match Vm.load_ref vm cell k with
          | Some edge -> f (node_id t (other edge))
          | None -> ()
        done;
        walk (Vm.load_ref vm cell 0)
  in
  walk (Vm.load_ref vm self node_adj_slot)

let neighbors t v =
  let acc = ref [] in
  iter_neighbors t v (fun id -> acc := id :: !acc);
  List.rev !acc

let degree t v =
  let c = ref 0 in
  iter_neighbors t v (fun _ -> incr c);
  !c

let dispose t = Vm.remove_root t.vm t.root
