module Vm = Hcsgc_runtime.Vm

type result = {
  components : int;
  largest : int;
  cut_points : int;
  visits : int;
}

(* JGraphT-style transient allocation: iterators, boxed ints, map nodes. *)
let gc_pressure vm ~garbage_every ~counter =
  incr counter;
  if garbage_every > 0 && !counter mod garbage_every = 0 then
    ignore (Vm.alloc vm ~nrefs:0 ~nwords:6)

let connected_components_counted ?(garbage_every = 2) g ~visits =
  let vm = Mgraph.vm g in
  let n = Mgraph.n g in
  let label = Array.make n (-1) in
  let queue = Queue.create () in
  let components = ref 0 in
  let largest = ref 0 in
  for start = 0 to n - 1 do
    if label.(start) < 0 then begin
      incr components;
      let size = ref 0 in
      label.(start) <- start;
      Queue.push start queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        incr size;
        gc_pressure vm ~garbage_every ~counter:visits;
        (* Like JGraphT's iterators, every edge visit allocates transient
           bookkeeping (boxed vertices, iterator state). *)
        Mgraph.iter_neighbors g v (fun w ->
            gc_pressure vm ~garbage_every ~counter:visits;
            if label.(w) < 0 then begin
              label.(w) <- start;
              Queue.push w queue
            end)
      done;
      if !size > !largest then largest := !size
    end
  done;
  (!components, !largest)

let connected_components ?garbage_every g =
  let visits = ref 0 in
  connected_components_counted ?garbage_every g ~visits

(* Iterative Hopcroft–Tarjan articulation points. *)
let articulation_points ?(garbage_every = 2) g ~visits =
  let vm = Mgraph.vm g in
  let n = Mgraph.n g in
  let disc = Array.make n (-1) in
  let low = Array.make n 0 in
  let parent = Array.make n (-1) in
  let is_cut = Array.make n false in
  let timer = ref 0 in
  for start = 0 to n - 1 do
    if disc.(start) < 0 then begin
      (* Explicit DFS stack of (vertex, unprocessed neighbour list). *)
      let stack = ref [ (start, ref (Mgraph.neighbors g start)) ] in
      disc.(start) <- !timer;
      low.(start) <- !timer;
      incr timer;
      let root_children = ref 0 in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (v, rest) :: tl -> (
            gc_pressure vm ~garbage_every ~counter:visits;
            match !rest with
            | [] ->
                stack := tl;
                (match tl with
                | (u, _) :: _ ->
                    if low.(v) < low.(u) then low.(u) <- low.(v);
                    if parent.(v) = u && u <> start && low.(v) >= disc.(u) then
                      is_cut.(u) <- true
                | [] -> ())
            | w :: ws -> (
                rest := ws;
                gc_pressure vm ~garbage_every ~counter:visits;
                if disc.(w) < 0 then begin
                  parent.(w) <- v;
                  if v = start then incr root_children;
                  disc.(w) <- !timer;
                  low.(w) <- !timer;
                  incr timer;
                  stack := (w, ref (Mgraph.neighbors g w)) :: !stack
                end
                else if w <> parent.(v) && disc.(w) < low.(v) then
                  low.(v) <- disc.(w)))
      done;
      if !root_children > 1 then is_cut.(start) <- true
    end
  done;
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 is_cut

let analyse ?(passes = 3) ?(garbage_every = 2) g =
  let visits = ref 0 in
  let components = ref 0 and largest = ref 0 in
  for _ = 1 to max 1 passes do
    let c, l = connected_components_counted ~garbage_every g ~visits in
    components := c;
    largest := l
  done;
  let cut_points = articulation_points ~garbage_every g ~visits in
  { components = !components; largest = !largest; cut_points; visits = !visits }
