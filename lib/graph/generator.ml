module Vm = Hcsgc_runtime.Vm
module Rng = Hcsgc_util.Rng

type model = Preferential | Uniform | Web

(* Preferential endpoint pool shared by the Preferential and Web models. *)
let preferential_edges ~rng ~nodes ~m =
  let pool = Array.make (2 * (m + nodes)) 0 in
  let pool_len = ref 0 in
  let push v =
    pool.(!pool_len) <- v;
    incr pool_len
  in
  for v = 0 to nodes - 1 do
    push v;
    push ((v + 1) mod nodes)
  done;
  let draw a =
    let b = pool.(Rng.int rng !pool_len) in
    push a;
    push b;
    b
  in
  draw

let edges ~rng ~model ~nodes ~edges:m =
  if nodes <= 1 then invalid_arg "Generator.edges: need at least two vertices";
  if m < 0 then invalid_arg "Generator.edges: negative edge count";
  match model with
  | Uniform ->
      Array.init m (fun _ ->
          let a = Rng.int rng nodes in
          let b = Rng.int rng nodes in
          (a, b))
  | Preferential ->
      (* Endpoint-repetition sampling: each inserted edge's endpoints join a
         pool; sampling an endpoint from the pool is proportional to current
         degree.  Seed the pool with a small ring so early vertices do not
         monopolise. *)
      let draw = preferential_edges ~rng ~nodes ~m in
      Array.init m (fun i ->
          (* Walk new vertices in round-robin so every vertex exists; attach
             to a degree-proportional target. *)
          let a = i mod nodes in
          (a, draw a))
  | Web ->
      (* Assign vertices to communities of 8-56 members, scattered over the
         id space by shuffling; 3/4 of edges are intra-community (dense
         clusters, near-cliques when the edge budget saturates them), the
         rest preferential cross links. *)
      let order = Array.init nodes (fun i -> i) in
      Rng.shuffle rng order;
      let community = Array.make nodes 0 in
      let starts = ref [] in
      let pos = ref 0 in
      let ncomm = ref 0 in
      while !pos < nodes do
        let size = min (nodes - !pos) (8 + Rng.int rng 49) in
        starts := (!pos, size) :: !starts;
        for k = !pos to !pos + size - 1 do
          community.(order.(k)) <- !ncomm
        done;
        incr ncomm;
        pos := !pos + size
      done;
      let spans = Array.of_list (List.rev !starts) in
      let comm_of v = spans.(community.(v)) in
      let draw = preferential_edges ~rng ~nodes ~m in
      Array.init m (fun i ->
          let a = if i < nodes then i else Rng.int rng nodes in
          let start, size = comm_of a in
          if size >= 2 && Rng.float rng 1.0 < 0.75 then
            (* Intra-community link: another member of [a]'s community. *)
            let b = order.(start + Rng.int rng size) in
            (a, b)
          else (a, draw a))

let build vm ~rng ~model ~nodes ~edges:m =
  let es = edges ~rng ~model ~nodes ~edges:m in
  Rng.shuffle rng es;
  let g = Mgraph.create vm ~n:nodes in
  Array.iter (fun (a, b) -> if a <> b then Mgraph.add_edge g a b) es;
  g
