(** Deterministic graph generators standing in for the LAW datasets.

    The paper's inputs ({e uk-2007-05@100000}, {e enwiki-2018}) are web/wiki
    graphs with heavy-tailed degree distributions.  We reproduce that shape
    with preferential attachment, and offer a uniform model for contrast.
    Edge insertion order is shuffled so that allocation order does not
    accidentally match traversal order — the gap HCSGC exploits. *)

module Vm = Hcsgc_runtime.Vm

type model =
  | Preferential  (** Barabási–Albert-style, power-law degrees *)
  | Uniform  (** Erdős–Rényi-style *)
  | Web
      (** The LAW-dataset stand-in: dense communities (host-local link
          clusters, which is where real web graphs get their large cliques
          and their BFS/DFS temporal locality) plus preferential cross
          links for the heavy-tailed degree distribution.  Community
          membership is scattered across the id space, so allocation in id
          order does {e not} give community locality — the layout gap
          HCSGC's access-order relocation closes. *)

val edges :
  rng:Hcsgc_util.Rng.t -> model:model -> nodes:int -> edges:int -> (int * int) array
(** Generate an undirected edge list (self-loops and duplicate endpoints
    possible but rare, matching real crawls).  Deterministic given the RNG
    state. *)

val build :
  Vm.t -> rng:Hcsgc_util.Rng.t -> model:model -> nodes:int -> edges:int -> Mgraph.t
(** Generate and materialise on the managed heap, inserting edges in
    shuffled order. *)
