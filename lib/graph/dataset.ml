type t = {
  name : string;
  nodes : int;
  edges : int;
  heap_mb : int;
  model : Generator.model;
}

let uk_complete =
  { name = "uk (complete)"; nodes = 100_000; edges = 3_050_615; heap_mb = 0;
    model = Generator.Web }

let uk_cc =
  { name = "uk (CC)"; nodes = 28_128; edges = 900_002; heap_mb = 1_024;
    model = Generator.Web }

let uk_mc =
  { name = "uk (MC)"; nodes = 5_099; edges = 239_294; heap_mb = 4_096;
    model = Generator.Web }

let enwiki_complete =
  { name = "enwiki (complete)"; nodes = 5_616_717; edges = 128_835_798;
    heap_mb = 0; model = Generator.Web }

let enwiki_cc =
  { name = "enwiki (CC)"; nodes = 28_126; edges = 80_002; heap_mb = 600;
    model = Generator.Web }

let enwiki_mc =
  { name = "enwiki (MC)"; nodes = 43_354; edges = 170_660; heap_mb = 4_096;
    model = Generator.Web }

let table3 =
  [ uk_complete; uk_cc; uk_mc; enwiki_complete; enwiki_cc; enwiki_mc ]

let scaled t ~factor =
  if factor < 1 then invalid_arg "Dataset.scaled: factor must be >= 1";
  {
    t with
    nodes = max 2 (t.nodes / factor);
    edges = max 1 (t.edges / factor);
    heap_mb = max 1 (t.heap_mb / factor);
  }
