(** Graphs stored on the managed heap.

    The representation mirrors what JGraphT materialises: one node object
    per vertex, one {e edge object} per edge (holding the two endpoint
    references; shared between both endpoints' adjacency sets), and chunked
    adjacency cells, all reached through barriered reference loads.  Traversals therefore produce exactly the
    irregular pointer-chasing access patterns over long-lived objects that
    HCSGC targets (§4.5): reading a neighbour's id touches the neighbour's
    node object, so a traversal's access order is what mutator-driven
    relocation captures.

    Node objects are kept reachable from a managed root table, so workloads
    may hold node handles freely. *)

module Vm = Hcsgc_runtime.Vm
module Heap_obj = Hcsgc_heap.Heap_obj

type t

val create : Vm.t -> n:int -> t
(** [create vm ~n] materialises [n] isolated vertices (ids [0..n-1]) and the
    root table.  Registers the root with the VM. *)

val vm : t -> Vm.t

val n : t -> int

val node : t -> int -> Heap_obj.t
(** The node handle for an id.  @raise Invalid_argument if out of range. *)

val node_id : t -> Heap_obj.t -> int
(** Read a node's id from its payload ({e touches} the node object — this is
    the locality-sensitive access of every traversal). *)

val add_arc : t -> int -> int -> unit
(** Directed edge: a fresh edge object appended to the source's adjacency. *)

val add_edge : t -> int -> int -> unit
(** Undirected edge: one shared edge object appended to both endpoints'
    adjacency lists (counts as 2 in {!edge_count}). *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Walk the adjacency cells of a vertex through the load barrier, reading
    each neighbour's id from the neighbour object itself. *)

val neighbors : t -> int -> int list
(** Neighbour ids in insertion order. *)

val degree : t -> int -> int
(** Number of out-neighbours (walks the chain). *)

val edge_count : t -> int
(** Total arcs inserted (an undirected edge counts 2). *)

val dispose : t -> unit
(** Unregister the root (lets the collector reclaim the graph). *)
