(** Connectivity algorithms over managed graphs: the (weakly) connected
    components / biconnectivity workload of §4.5 (JGraphT's
    [BiconnectivityInspector], Hopcroft–Tarjan).

    Both run entirely through the managed heap's load barriers.  Like the
    JGraphT implementation, they allocate short-lived iterator/bookkeeping
    objects per vertex and edge visit ([garbage_every] visits per
    allocation, default 2), which is what drives GC cycles during
    processing. *)

module Vm = Hcsgc_runtime.Vm

type result = {
  components : int;
  largest : int;  (** size of the largest component *)
  cut_points : int;  (** articulation vertices (biconnectivity pass) *)
  visits : int;  (** vertices visited across all passes *)
}

val connected_components : ?garbage_every:int -> Mgraph.t -> int * int
(** BFS labelling; returns (component count, largest size). *)

val analyse : ?passes:int -> ?garbage_every:int -> Mgraph.t -> result
(** The full inspector workload: [passes] (default 3) rounds of component
    labelling plus one articulation-point DFS — recurring traversals with a
    stable access pattern, which is what HCSGC's relocation captures. *)
