(** Bron–Kerbosch maximal-clique enumeration (§4.5's MC workload,
    JGraphT's plain, non-pivoting [BronKerboschCliqueFinder]).

    Candidate/excluded sets are manipulated as sorted id arrays OCaml-side,
    but every neighbourhood is fetched from the managed graph, so the
    algorithm repeatedly touches the same long-lived node and adjacency
    objects — the recurring pointer-chasing pattern the paper's Figs. 9–10
    exploit.  Like the JGraphT finder it allocates transient set copies,
    generating steady garbage ("some allocation is done by the Bron–Kerbosch
    algorithm, which triggers GC often"). *)

type stats = {
  cliques : int;  (** maximal cliques reported *)
  max_size : int;  (** largest clique size seen *)
  expansions : int;  (** recursion nodes explored *)
}

val run : ?max_expansions:int -> ?garbage_every:int -> Mgraph.t -> stats
(** Enumerate maximal cliques, stopping after [max_expansions] recursion
    nodes (default unlimited) — clique counts explode on dense graphs and
    the paper itself processes only graph subsets for the same reason. *)
