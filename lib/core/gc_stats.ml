module Vec = Hcsgc_util.Vec

type cycle_record = {
  cycle : int;
  small_pages_in_ec : int;
  medium_pages_in_ec : int;
  wall_at_start : int;
}

(* Per-cycle and per-sample history is kept in parallel int vectors
   (cycle number = index + 1) rather than vectors of records/tuples:
   recording on the GC phase paths then allocates nothing — int array
   stores only.  The vectors are pre-reserved so steady-state runs never
   even grow them; accessors materialise records on demand. *)
type t = {
  rec_small : int Vec.t;  (* small_pages_in_ec, per cycle *)
  rec_medium : int Vec.t;  (* medium_pages_in_ec, per cycle *)
  rec_wall : int Vec.t;  (* wall_at_start, per cycle *)
  mutable allocated : int;
  mutable relocated_mutator : int;
  mutable relocated_gc : int;
  mutable bytes_relocated : int;
  mutable pages_freed : int;
  mutable marked : int;
  mutable hot_flags : int;
  mutable stw : int;
  mutable barrier_fast : int;
  mutable barrier_slow : int;
  mutable pages_demoted : int;
  mutable pages_promoted : int;
  sample_wall : int Vec.t;
  sample_used : int Vec.t;
}

let reserved n =
  let v = Vec.make n 0 in
  Vec.clear v;
  v

let create () =
  {
    rec_small = reserved 1024;
    rec_medium = reserved 1024;
    rec_wall = reserved 1024;
    allocated = 0;
    relocated_mutator = 0;
    relocated_gc = 0;
    bytes_relocated = 0;
    pages_freed = 0;
    marked = 0;
    hot_flags = 0;
    stw = 0;
    barrier_fast = 0;
    barrier_slow = 0;
    pages_demoted = 0;
    pages_promoted = 0;
    sample_wall = reserved 4096;
    sample_used = reserved 4096;
  }

let on_cycle_start t ~wall =
  Vec.push t.rec_small 0;
  Vec.push t.rec_medium 0;
  Vec.push t.rec_wall wall;
  Vec.length t.rec_wall

let on_ec_selected t ~small ~medium =
  let n = Vec.length t.rec_wall in
  if n = 0 then invalid_arg "Gc_stats.on_ec_selected: no cycle in progress";
  Vec.set t.rec_small (n - 1) small;
  Vec.set t.rec_medium (n - 1) medium

let on_alloc t ~bytes = t.allocated <- t.allocated + bytes

let on_relocate t ~by_mutator ~bytes =
  if by_mutator then t.relocated_mutator <- t.relocated_mutator + 1
  else t.relocated_gc <- t.relocated_gc + 1;
  t.bytes_relocated <- t.bytes_relocated + bytes

let on_page_freed t = t.pages_freed <- t.pages_freed + 1
let on_mark t = t.marked <- t.marked + 1
let on_hot_flag t = t.hot_flags <- t.hot_flags + 1
let on_stw t = t.stw <- t.stw + 1

let on_barrier t ~slow =
  if slow then t.barrier_slow <- t.barrier_slow + 1
  else t.barrier_fast <- t.barrier_fast + 1

let on_heap_sample t ~wall ~used =
  Vec.push t.sample_wall wall;
  Vec.push t.sample_used used

let on_page_demoted t = t.pages_demoted <- t.pages_demoted + 1
let on_page_promoted t = t.pages_promoted <- t.pages_promoted + 1

let cycles t = Vec.length t.rec_wall

let cycle_records t =
  List.init (Vec.length t.rec_wall) (fun i ->
      {
        cycle = i + 1;
        small_pages_in_ec = Vec.get t.rec_small i;
        medium_pages_in_ec = Vec.get t.rec_medium i;
        wall_at_start = Vec.get t.rec_wall i;
      })

let median_small_pages_in_ec t =
  if Vec.is_empty t.rec_small then 0.0
  else begin
    let xs = Vec.to_array t.rec_small in
    Array.sort compare xs;
    let n = Array.length xs in
    if n mod 2 = 1 then float_of_int xs.(n / 2)
    else float_of_int (xs.((n / 2) - 1) + xs.(n / 2)) /. 2.0
  end

let bytes_allocated t = t.allocated

let objects_relocated_by_mutator t = t.relocated_mutator
let objects_relocated_by_gc t = t.relocated_gc
let bytes_relocated t = t.bytes_relocated
let pages_freed t = t.pages_freed
let objects_marked t = t.marked
let hot_flags t = t.hot_flags
let stw_pauses t = t.stw
let barrier_fast_paths t = t.barrier_fast
let barrier_slow_paths t = t.barrier_slow
let pages_demoted t = t.pages_demoted
let pages_promoted t = t.pages_promoted

let heap_samples t =
  List.init (Vec.length t.sample_wall) (fun i ->
      (Vec.get t.sample_wall i, Vec.get t.sample_used i))

let pp fmt t =
  Format.fprintf fmt
    "gc{cycles=%d ec_median=%.1f reloc_mut=%d reloc_gc=%d freed=%d marked=%d \
     hot=%d stw=%d}"
    (cycles t)
    (median_small_pages_in_ec t)
    t.relocated_mutator t.relocated_gc t.pages_freed t.marked t.hot_flags t.stw
