module Vec = Hcsgc_util.Vec

type cycle_record = {
  cycle : int;
  small_pages_in_ec : int;
  medium_pages_in_ec : int;
  wall_at_start : int;
}

type t = {
  records : cycle_record Vec.t;
  mutable allocated : int;
  mutable relocated_mutator : int;
  mutable relocated_gc : int;
  mutable bytes_relocated : int;
  mutable pages_freed : int;
  mutable marked : int;
  mutable hot_flags : int;
  mutable stw : int;
  mutable barrier_fast : int;
  mutable barrier_slow : int;
  mutable pages_demoted : int;
  mutable pages_promoted : int;
  samples : (int * int) Vec.t;
}

let create () =
  {
    records = Vec.create ();
    allocated = 0;
    relocated_mutator = 0;
    relocated_gc = 0;
    bytes_relocated = 0;
    pages_freed = 0;
    marked = 0;
    hot_flags = 0;
    stw = 0;
    barrier_fast = 0;
    barrier_slow = 0;
    pages_demoted = 0;
    pages_promoted = 0;
    samples = Vec.create ();
  }

let on_cycle_start t ~wall =
  let cycle = Vec.length t.records + 1 in
  Vec.push t.records
    { cycle; small_pages_in_ec = 0; medium_pages_in_ec = 0; wall_at_start = wall };
  cycle

let on_ec_selected t ~small ~medium =
  let n = Vec.length t.records in
  if n = 0 then invalid_arg "Gc_stats.on_ec_selected: no cycle in progress";
  let r = Vec.get t.records (n - 1) in
  Vec.set t.records (n - 1)
    { r with small_pages_in_ec = small; medium_pages_in_ec = medium }

let on_alloc t ~bytes = t.allocated <- t.allocated + bytes

let on_relocate t ~by_mutator ~bytes =
  if by_mutator then t.relocated_mutator <- t.relocated_mutator + 1
  else t.relocated_gc <- t.relocated_gc + 1;
  t.bytes_relocated <- t.bytes_relocated + bytes

let on_page_freed t = t.pages_freed <- t.pages_freed + 1
let on_mark t = t.marked <- t.marked + 1
let on_hot_flag t = t.hot_flags <- t.hot_flags + 1
let on_stw t = t.stw <- t.stw + 1

let on_barrier t ~slow =
  if slow then t.barrier_slow <- t.barrier_slow + 1
  else t.barrier_fast <- t.barrier_fast + 1
let on_heap_sample t ~wall ~used = Vec.push t.samples (wall, used)
let on_page_demoted t = t.pages_demoted <- t.pages_demoted + 1
let on_page_promoted t = t.pages_promoted <- t.pages_promoted + 1

let cycles t = Vec.length t.records
let cycle_records t = Vec.to_list t.records

let median_small_pages_in_ec t =
  if Vec.is_empty t.records then 0.0
  else begin
    let xs =
      Vec.to_array t.records |> Array.map (fun r -> r.small_pages_in_ec)
    in
    Array.sort compare xs;
    let n = Array.length xs in
    if n mod 2 = 1 then float_of_int xs.(n / 2)
    else float_of_int (xs.((n / 2) - 1) + xs.(n / 2)) /. 2.0
  end

let bytes_allocated t = t.allocated

let objects_relocated_by_mutator t = t.relocated_mutator
let objects_relocated_by_gc t = t.relocated_gc
let bytes_relocated t = t.bytes_relocated
let pages_freed t = t.pages_freed
let objects_marked t = t.marked
let hot_flags t = t.hot_flags
let stw_pauses t = t.stw
let barrier_fast_paths t = t.barrier_fast
let barrier_slow_paths t = t.barrier_slow
let pages_demoted t = t.pages_demoted
let pages_promoted t = t.pages_promoted
let heap_samples t = Vec.to_list t.samples

let pp fmt t =
  Format.fprintf fmt
    "gc{cycles=%d ec_median=%.1f reloc_mut=%d reloc_gc=%d freed=%d marked=%d \
     hot=%d stw=%d}"
    (cycles t)
    (median_small_pages_in_ec t)
    t.relocated_mutator t.relocated_gc t.pages_freed t.marked t.hot_flags t.stw
