module Heap = Hcsgc_heap.Heap
module Heap_obj = Hcsgc_heap.Heap_obj
module Page = Hcsgc_heap.Page
module Addr = Hcsgc_heap.Addr
module Layout = Hcsgc_heap.Layout
module Fwd_table = Hcsgc_heap.Fwd_table
module Alloc_region = Hcsgc_heap.Alloc_region
module Machine = Hcsgc_memsim.Machine
module Tier = Hcsgc_memsim.Tier
module Vec = Hcsgc_util.Vec
module Int_tbl = Hcsgc_util.Int_tbl
module Bitmap = Hcsgc_util.Bitmap

type phase = Idle | Marking | Relocating

type phase_edge = Stw1_done | Mark_done | Stw3_done | Cycle_done

let phase_edge_name = function
  | Stw1_done -> "stw1-done"
  | Mark_done -> "mark-done"
  | Stw3_done -> "stw3-done"
  | Cycle_done -> "cycle-done"

type who = Mutator of int | Gc

exception Out_of_memory
exception Invalid_handle of string

let t_cap (config : Config.t) = config.Config.tier_capacity_pages

(* Bump-target identifiers for [target_bump]: an int code instead of
   get/set closures, so picking a target allocates nothing.  Mutator
   allocation and relocation targets are per core (the [core] argument
   selects the slot); GC and medium targets ignore it. *)
let tgt_mut_alloc = 0
let tgt_mut_relo = 1
let tgt_medium_alloc = 2
let tgt_medium_relo = 3
let tgt_gc_hot = 4
let tgt_gc_cold = 5

type t = {
  heap : Heap.t;
  machine : Machine.t;
  config : Config.t;
  (* Far-memory tier shared with the machine ([Machine.set_tier]); [None]
     unless [config.tier_capacity_pages > 0].  The collector owns all
     residency transitions: demotion of cold small pages at sweep,
     promotion on barrier access, and removal when a page is freed. *)
  tier : Tier.t option;
  gc_core : int;
  (* Root enumeration as an iterator: the VM applies the callback to every
     root in a fixed order.  Unlike the list-returning callback this
     replaces, enumerating allocates nothing per root (the old one rebuilt
     a list — with a list append — on every STW pause and every verify). *)
  roots : (Heap_obj.t -> unit) -> unit;
  stats : Gc_stats.t;
  mutable sink : Gc_log.sink;
  mutable marked_at_cycle_start : int;
  mutable good : Addr.color;
  mutable mark_color : Addr.color;  (* the M0/M1 colour of the current cycle *)
  mutable phase : phase;
  mutable cycle_no : int;
  (* Mark work items: an object plus the slot index scanning resumes from,
     as two parallel arenas (pushing a pair vector entry would box a tuple
     per mark).  Large objects (e.g. big reference arrays) are traced in
     bounded chunks so GC work interleaves with mutator progress at
     realistic granularity — otherwise one work unit could atomically
     relocate everything a big array points into, erasing the mutator/GC
     relocation race of §3.2. *)
  mark_objs : Heap_obj.t Vec.t;
  mark_from : int Vec.t;
  relo_queue : Page.t Vec.t;  (* pages awaiting the GC relocation pass *)
  (* The page currently being evacuated by the GC relocation pass: its
     live-object snapshot (from the livemap) lives in the reused
     [relo_victims] arena, [relo_next] is the cursor.  [relo_page] holds a
     dummy page while [relo_active] is false — an option here would box a
     [Some] per evacuated page. *)
  mutable relo_active : bool;
  mutable relo_page : Page.t;
  relo_victims : Heap_obj.t Vec.t;
  mutable relo_next : int;
  pending_ec : Page.t Vec.t;  (* LAZYRELOCATE: EC deferred to next cycle *)
  (* Freed pages whose forwarding tables are still live, as parallel
     queues ([retire_cycles.(i)] is the cycle [retire_pages.(i)] was
     freed in), plus a flat granule -> queue-index map for stale-pointer
     resolution.  [fwd_index] is rebuilt from the compacted queue at each
     retirement sweep; granule ranges in the queue are disjoint (a range
     is only recycled at retirement, so it cannot be re-freed while
     queued), making the rebuild order-insensitive. *)
  fwd_index : Int_tbl.t;
  retire_cycles : int Vec.t;
  retire_pages : Page.t Vec.t;
  (* Bump targets.  Mutator allocation and relocation pages are per core
     — array-backed so each shard core owns exactly one slot and reads
     allocate nothing (shard-safe allocation regions); GC threads keep a
     hot and a cold target (§3.3); medium-object targets are shared. *)
  mut_alloc : Alloc_region.t;
  mut_relo : Alloc_region.t;
  mutable medium_alloc : Page.t option;
  mutable medium_relo : Page.t option;
  mutable gc_hot : Page.t option;
  mutable gc_cold : Page.t option;
  (* [target_bump] results: destination page and address of the last
     successful bump (written instead of returned so the relocation path
     never boxes a tuple). *)
  mutable bump_page : Page.t;
  mutable bump_addr : int;
  (* COLDCONFIDENCE in effect; starts at the configured value and may be
     retuned at run time by a feedback loop (Autotuner). *)
  mutable dyn_cold_confidence : float;
  (* wall-clock view for heap samples; updated by the VM via set_wall *)
  mutable wall_hint : int;
  (* object bytes allocated since the last cycle start; drives cycle
     scheduling the way ZGC's allocation-rate heuristics do *)
  mutable allocated_since_cycle : int;
  (* phase-boundary hook (the heap sanitizer's entry point); must be
     read-only — it runs inside pauses and charges nothing *)
  mutable phase_hook : (phase_edge -> unit) option;
  (* Heap.obj_ids_issued at the last STW1 (see mark_watermark) *)
  mutable mark_watermark : int;
  (* Cycle cost of the most recent [load_ref] (see [last_cost] below);
     written instead of returned so the hot path never boxes a tuple. *)
  mutable last_cost : int;
  (* Cumulative GC-thread and STW cycle totals.  [start_cycle]/[gc_work]/
     [drain] add here instead of returning per-call records (which boxed a
     two-field struct per pump); the VM tracks its own last-seen snapshot
     and routes the deltas. *)
  mutable gc_work_total : int;
  mutable stw_work_total : int;
  (* Scratch cost accumulator for the phase paths: [resolve] and the
     hoisted root/selection callbacks add here.  Owned by one phase entry
     point at a time (callers snapshot it around the call); replaces the
     per-call [int ref] cells the phase paths used to allocate. *)
  mutable acc_cost : int;
  (* EC-selection arenas and parameters for the hoisted callbacks below:
     candidate collection and filtering run through closures created once
     at [create], parameterised via these fields per invocation. *)
  select_cands : Page.t Vec.t;
  demote_cands : Page.t Vec.t;
  ec_scratch : Page.t Vec.t;  (* this cycle's EC, small then medium *)
  mutable select_cls : Layout.size_class;
  mutable ec_threshold : int;
  debug_ec : bool;  (* HCSGC_DEBUG_EC=1, read once at create *)
  mutable collect_candidate_fn : Page.t -> unit;
  mutable ec_filter_fn : Page.t -> bool;
  mutable ec_cmp_fn : Page.t -> Page.t -> int;
  mutable collect_demote_fn : Page.t -> unit;
  mutable reset_page_fn : Page.t -> unit;
  mutable seed_root_fn : Heap_obj.t -> unit;
  mutable fixup_root_fn : Heap_obj.t -> unit;
}

(* Placeholder for [relo_page]/[bump_page] while inactive; never read. *)
let dummy_page layout =
  Page.create ~layout ~id:(-1) ~cls:Layout.Small ~start:0 ~size:0
    ~birth_cycle:0

let heap t = t.heap
let config t = t.config
let tier t = t.tier
let set_sink t sink = t.sink <- sink
let stats t = t.stats
let phase t = t.phase
let good_color t = t.good
let cycle_number t = t.cycle_no

let layout t = Heap.layout t.heap

let set_phase_hook t hook = t.phase_hook <- hook

let at_edge t edge =
  match t.phase_hook with None -> () | Some hook -> hook edge

let roots_list t =
  let acc = ref [] in
  t.roots (fun root -> acc := root :: !acc);
  List.rev !acc

let last_cost t = t.last_cost

let total_gc_work t = t.gc_work_total
let total_stw_work t = t.stw_work_total

let mark_watermark t = t.mark_watermark

let iter_stale_fwd_pages t f =
  (* The retire queue holds each freed-but-unretired page exactly once. *)
  Vec.iter f t.retire_pages

let stale_fwd_page_at t ~addr =
  match
    Int_tbl.get t.fwd_index
      ~key:(addr / Layout.granule (layout t))
      ~default:(-1)
  with
  | -1 -> None
  | idx -> Some (Vec.get t.retire_pages idx)

let who_core t who = match who with Mutator c -> c | Gc -> t.gc_core

let set_wall_hint t wall = t.wall_hint <- wall

let cold_confidence t = t.dyn_cold_confidence

let set_cold_confidence t v =
  if not t.config.Config.hotness then
    invalid_arg "Collector.set_cold_confidence: requires HOTNESS";
  if v < 0.0 || v > 1.0 then
    invalid_arg "Collector.set_cold_confidence: outside [0,1]";
  t.dyn_cold_confidence <- v

(* ------------------------------------------------------------------ *)
(* Target pages                                                        *)
(* ------------------------------------------------------------------ *)

(* Relocation and allocation targets are allocated with [force] so that
   compaction can always make progress (ZGC's relocation headroom). *)
let fresh_target t ~cls ~force =
  match
    Heap.alloc_page ~force t.heap ~cls ~bytes:0 ~birth_cycle:t.cycle_no
  with
  | Some page ->
      page.Page.is_alloc_target <- true;
      Some page
  | None -> None

let retire_target (page : Page.t) = page.Page.is_alloc_target <- false

let get_target t ~which ~core =
  if which = tgt_mut_alloc then Alloc_region.get t.mut_alloc ~core
  else if which = tgt_mut_relo then Alloc_region.get t.mut_relo ~core
  else if which = tgt_medium_alloc then t.medium_alloc
  else if which = tgt_medium_relo then t.medium_relo
  else if which = tgt_gc_hot then t.gc_hot
  else t.gc_cold

let set_target t ~which ~core p =
  if which = tgt_mut_alloc then Alloc_region.set t.mut_alloc ~core p
  else if which = tgt_mut_relo then Alloc_region.set t.mut_relo ~core p
  else if which = tgt_medium_alloc then t.medium_alloc <- p
  else if which = tgt_medium_relo then t.medium_relo <- p
  else if which = tgt_gc_hot then t.gc_hot <- p
  else t.gc_cold <- p

let cls_of_which which =
  if which = tgt_medium_alloc || which = tgt_medium_relo then Layout.Medium
  else Layout.Small

(* Only plain mutator/medium allocation respects the heap cap; every
   relocation target is forced (relocation headroom). *)
let force_of_which which = which <> tgt_mut_alloc && which <> tgt_medium_alloc

(* Bump [bytes] in the target identified by [which], replacing a full
   target page.  Returns the accumulated page-allocation cost (>= 0), or
   -1 if the heap is exhausted; the destination lands in
   [t.bump_page]/[t.bump_addr]. *)
let rec target_bump t ~which ~core bytes cost =
  match get_target t ~which ~core with
  | Some page ->
      let offset = Page.bump_try page bytes in
      if offset >= 0 then begin
        t.bump_page <- page;
        t.bump_addr <- page.Page.start + offset;
        cost
      end
      else begin
        retire_target page;
        set_target t ~which ~core None;
        target_bump t ~which ~core bytes cost
      end
  | None -> (
      match
        fresh_target t ~cls:(cls_of_which which) ~force:(force_of_which which)
      with
      | None -> -1
      | Some page ->
          set_target t ~which ~core (Some page);
          target_bump t ~which ~core bytes (cost + Cost.alloc_page))

(* ------------------------------------------------------------------ *)
(* Relocation                                                          *)
(* ------------------------------------------------------------------ *)

(* Copy [obj] out of the in-EC page [src].  Returns the cycle cost charged
   to [who].  The forwarding-table insertion is the linearisation point. *)
let relocate t ~who (obj : Heap_obj.t) (src : Page.t) =
  assert (src.Page.state = Page.In_ec);
  let offset = obj.Heap_obj.addr - src.Page.start in
  let bytes = obj.Heap_obj.size in
  (* Pick the destination bump target (§3.3: with COLDPAGE on, GC threads
     send cold objects to a dedicated cold page; hot objects — and
     everything, when the knob is off — go to the hot page). *)
  let which =
    match src.Page.cls with
    | Layout.Medium -> tgt_medium_relo
    | Layout.Large -> assert false (* large pages are never in EC *)
    | Layout.Small -> (
        match who with
        | Mutator _ -> tgt_mut_relo
        | Gc ->
            if
              t.config.Config.coldpage
              && t.config.Config.hotness
              && not (Page.is_hot src obj)
            then tgt_gc_cold
            else tgt_gc_hot)
  in
  let core = who_core t who in
  let page_cost = target_bump t ~which ~core bytes 0 in
  if page_cost < 0 then raise Out_of_memory;
  let dst = t.bump_page and new_addr = t.bump_addr in
  match Fwd_table.claim src.Page.fwd ~offset ~new_addr with
  | Fwd_table.Already _ ->
      (* Cannot happen in the deterministic simulator: an object still
         registered on its source page has not been claimed. *)
      assert false
  | Fwd_table.Claimed ->
      let copy_cost =
        Machine.load_range t.machine ~core obj.Heap_obj.addr bytes
        + Machine.store_range t.machine ~core new_addr bytes
      in
      Page.remove_object src obj;
      obj.Heap_obj.addr <- new_addr;
      obj.Heap_obj.relocations <- obj.Heap_obj.relocations + 1;
      Page.add_object dst obj;
      Gc_stats.on_relocate t.stats
        ~by_mutator:(match who with Mutator _ -> true | Gc -> false)
        ~bytes;
      page_cost + copy_cost + Cost.relocate_fixed + Cost.fwd_insert

(* ------------------------------------------------------------------ *)
(* Resolution: coloured address -> current object                      *)
(* ------------------------------------------------------------------ *)

(* Follow forwarding chains and relocate on demand until [addr] names an
   object at its current location.  Accumulates cost in [t.acc_cost]
   (callers own the accumulator around the call). *)
let rec resolve t ~who addr =
  let granule = addr / Layout.granule (layout t) in
  match Int_tbl.get t.fwd_index ~key:granule ~default:(-1) with
  | -1 -> (
      match Heap.page_of_addr t.heap addr with
      | None ->
          raise
            (Invalid_handle (Printf.sprintf "pointer 0x%x maps to no page" addr))
      | Some page -> (
          let offset = addr - page.Page.start in
          match Page.find_object page ~offset with
          | Some obj ->
              if page.Page.state = Page.In_ec then begin
                t.acc_cost <- t.acc_cost + relocate t ~who obj page;
                obj
              end
              else obj
          | None -> (
              (* Relocated out of an in-EC page: follow its forwarding. *)
              t.acc_cost <- t.acc_cost + Cost.fwd_lookup;
              match Fwd_table.get page.Page.fwd ~offset with
              | -1 ->
                  raise
                    (Invalid_handle
                       (Printf.sprintf "no object at 0x%x on page #%d" addr
                          page.Page.id))
              | new_addr -> resolve t ~who new_addr)))
  | idx -> (
      let old_page = Vec.unsafe_get t.retire_pages idx in
      t.acc_cost <- t.acc_cost + Cost.fwd_lookup;
      let offset = addr - old_page.Page.start in
      match Fwd_table.get old_page.Page.fwd ~offset with
      | -1 ->
          raise
            (Invalid_handle
               (Printf.sprintf
                  "stale pointer 0x%x into freed page #%d with no forwarding"
                  addr old_page.Page.id))
      | new_addr -> resolve t ~who new_addr)

(* ------------------------------------------------------------------ *)
(* Marking                                                             *)
(* ------------------------------------------------------------------ *)

let page_of_obj t (obj : Heap_obj.t) =
  match Heap.page_of_addr t.heap obj.Heap_obj.addr with
  | Some page -> page
  | None ->
      raise
        (Invalid_handle
           (Printf.sprintf "object #%d at unmapped address 0x%x"
              obj.Heap_obj.id obj.Heap_obj.addr))

(* Mark [obj] live on its (to-space) page; push for tracing when newly
   marked.  Only meaningful during the marking phase. *)
let mark_object t (obj : Heap_obj.t) =
  let page = page_of_obj t obj in
  assert (page.Page.state <> Page.In_ec);
  if Page.mark_live page obj then begin
    Gc_stats.on_mark t.stats;
    Vec.push t.mark_objs obj;
    Vec.push t.mark_from 0;
    Cost.mark_object
  end
  else 0

(* Promote a far-resident page back to DRAM.  Called only with
   [page.tier = Far], which implies a tier exists (demotion is the only
   way to set the bit).  Returns the cycle cost (0 when the promote
   policy is off — the page then stays far and keeps paying [lat_far]). *)
let promote_page t (page : Page.t) =
  match t.tier with
  | Some tier when t.config.Config.tier_promote ->
      Heap.set_tier_dram t.heap page;
      Tier.promote tier ~addr:page.Page.start ~bytes:page.Page.size;
      Gc_stats.on_page_promoted t.stats;
      Cost.tier_promote
  | _ -> 0

let flag_hot t ~(page : Page.t) (obj : Heap_obj.t) =
  (* Hot-flagging a far page promotes it first: with the promote policy
     on, "resident far" implies "no hot bytes" at every phase edge. *)
  let promo =
    if page.Page.tier = Page.Far then promote_page t page else 0
  in
  promo
  +
  if t.config.Config.hotness && page.Page.cls = Layout.Small then
    if Heap.flag_hot t.heap page obj then begin
      Gc_stats.on_hot_flag t.stats;
      Cost.hotmap_cas
    end
    else 0
  else 0

(* ------------------------------------------------------------------ *)
(* Mutator interface                                                   *)
(* ------------------------------------------------------------------ *)

(* The handle-validity check shared by both [use_handle] paths: [obj] must
   still be the object registered at its own address on [page].  Because an
   object's table key is always its current address offset, registration is
   equivalent to [page_id] matching — one integer compare, no hash walk. *)
let[@inline] check_handle (page : Page.t) (obj : Heap_obj.t) =
  if obj.Heap_obj.page_id <> page.Page.id then
    raise
      (Invalid_handle
         (Printf.sprintf "handle to reclaimed object #%d" obj.Heap_obj.id))

let use_handle t ~core (obj : Heap_obj.t) =
  let page = page_of_obj t obj in
  let relocated = page.Page.state = Page.In_ec in
  Gc_stats.on_barrier t.stats ~slow:relocated;
  if relocated || t.phase = Marking then begin
    (* Slow path: relocation work and/or marking may be charged. *)
    let cost = ref 0 in
    let page =
      if relocated then begin
        cost := !cost + relocate t ~who:(Mutator core) obj page;
        page_of_obj t obj
      end
      else page
    in
    check_handle page obj;
    (* Hotness is recorded on barrier slow paths only (§3.1.2): a handle use
       flags the object just when it forced relocation work — freshly
       allocated objects reached through good-coloured pointers are never
       flagged, exactly as in ZGC. *)
    if relocated then cost := !cost + flag_hot t ~page obj;
    if t.phase = Marking then cost := !cost + mark_object t obj;
    if page.Page.tier = Page.Far then cost := !cost + promote_page t page;
    !cost
  end
  else begin
    (* Fast path — the steady-state barrier: validate the handle, charge
       nothing, allocate nothing.  The tier-bit compare is the only
       tiering footprint here; it is always [Dram] when tiering is off. *)
    check_handle page obj;
    if page.Page.tier = Page.Far then promote_page t page else 0
  end

let slot_addr t obj slot = Heap_obj.ref_slot_addr ~layout:(layout t) obj slot

let load_ref t ~core (src : Heap_obj.t) ~slot =
  let c0 = use_handle t ~core src in
  let c1 = Machine.load t.machine ~core (slot_addr t src slot) in
  let ptr = Heap_obj.get_ref src slot in
  if Addr.is_null ptr then begin
    t.last_cost <- c0 + c1;
    None
  end
  else if Addr.has_color t.good ptr then begin
    Gc_stats.on_barrier t.stats ~slow:false;
    (* Fast path: the good colour guarantees a current, to-space address.
       The only allocation left on this path is the [Some] return itself
       (the public API is option-shaped). *)
    match Heap.page_of_addr t.heap (Addr.addr ptr) with
    | None ->
        raise
          (Invalid_handle
             (Printf.sprintf "good-coloured pointer 0x%x has no object"
                (Addr.addr ptr)))
    | Some page -> (
        match
          Page.find_object_exn page ~offset:(Addr.addr ptr - page.Page.start)
        with
        | obj ->
            t.last_cost <- c0 + c1;
            Some obj
        | exception Not_found ->
            raise
              (Invalid_handle
                 (Printf.sprintf "good-coloured pointer 0x%x has no object"
                    (Addr.addr ptr))))
  end
  else begin
    (* Slow path: remap / mark / relocate, flag hotness, self-heal. *)
    Gc_stats.on_barrier t.stats ~slow:true;
    t.acc_cost <- c0 + c1 + Cost.barrier_slow;
    let obj = resolve t ~who:(Mutator core) (Addr.addr ptr) in
    if t.phase = Marking then t.acc_cost <- t.acc_cost + mark_object t obj;
    t.acc_cost <- t.acc_cost + flag_hot t ~page:(page_of_obj t obj) obj;
    Heap_obj.set_ref src slot (Addr.make t.good obj.Heap_obj.addr);
    t.acc_cost <-
      t.acc_cost + Machine.store t.machine ~core (slot_addr t src slot);
    t.last_cost <- t.acc_cost;
    Some obj
  end

let store_ref t ~core (src : Heap_obj.t) ~slot target =
  let c0 = use_handle t ~core src in
  let c1 =
    match target with
    | None ->
        Heap_obj.set_ref src slot Addr.null;
        0
    | Some obj ->
        let cu = use_handle t ~core obj in
        (* Keep handle-published objects from hiding during marking. *)
        let cm = if t.phase = Marking then mark_object t obj else 0 in
        Heap_obj.set_ref src slot (Addr.make t.good obj.Heap_obj.addr);
        cu + cm
  in
  c0 + c1 + Machine.store t.machine ~core (slot_addr t src slot)

let alloc t ~core ~nrefs ~nwords =
  let lay = layout t in
  let bytes = Layout.object_bytes lay ~nrefs ~nwords in
  t.allocated_since_cycle <- t.allocated_since_cycle + bytes;
  Gc_stats.on_alloc t.stats ~bytes;
  let finish obj page_cost =
    let header_cost =
      Machine.store_range t.machine ~core obj.Heap_obj.addr
        lay.Layout.header_bytes
    in
    Some (obj, Cost.alloc + page_cost + header_cost)
  in
  match Layout.class_of_object_size lay bytes with
  | Layout.Large -> (
      match
        Heap.alloc_large_object t.heap ~nrefs ~nwords ~birth_cycle:t.cycle_no
      with
      | Some obj -> finish obj Cost.alloc_page
      | None -> None)
  | Layout.Medium ->
      let page_cost = target_bump t ~which:tgt_medium_alloc ~core bytes 0 in
      if page_cost < 0 then None
      else begin
        let obj =
          Heap_obj.create ~layout:lay ~id:(Heap.fresh_obj_id t.heap)
            ~addr:t.bump_addr ~nrefs ~nwords
        in
        Page.add_object t.bump_page obj;
        finish obj page_cost
      end
  | Layout.Small ->
      let page_cost = target_bump t ~which:tgt_mut_alloc ~core bytes 0 in
      if page_cost < 0 then None
      else begin
        let obj =
          Heap_obj.create ~layout:lay ~id:(Heap.fresh_obj_id t.heap)
            ~addr:t.bump_addr ~nrefs ~nwords
        in
        Page.add_object t.bump_page obj;
        finish obj page_cost
      end

(* ------------------------------------------------------------------ *)
(* The GC cycle                                                        *)
(* ------------------------------------------------------------------ *)

(* Cycle scheduling.  ZGC paces cycles from allocation-rate prediction; we
   use the deterministic equivalent: start a cycle once [trigger] × max-heap
   bytes have been allocated since the last cycle started, with a
   high-usage backstop (the allocation-stall path covers the rest). *)
let hard_usage_trigger = 0.85

let needs_cycle t ~trigger =
  t.phase = Idle
  && (t.allocated_since_cycle
      >= int_of_float (trigger *. float_of_int (Heap.max_bytes t.heap))
     || Heap.used_ratio t.heap >= hard_usage_trigger)

let sample_heap t =
  Gc_stats.on_heap_sample t.stats ~wall:t.wall_hint ~used:(Heap.used_bytes t.heap)

(* STW1. *)
let start_cycle t =
  if t.phase <> Idle then invalid_arg "Collector.start_cycle: cycle in progress";
  t.cycle_no <- t.cycle_no + 1;
  t.allocated_since_cycle <- 0;
  t.mark_watermark <- Heap.obj_ids_issued t.heap;
  t.marked_at_cycle_start <- Gc_stats.objects_marked t.stats;
  if not (Gc_log.is_null t.sink) then
    t.sink
      (Gc_log.Cycle_start
         { cycle = t.cycle_no; wall = t.wall_hint;
           heap_used = Heap.used_bytes t.heap });
  ignore (Gc_stats.on_cycle_start t.stats ~wall:t.wall_hint);
  Gc_stats.on_stw t.stats;
  t.mark_color <- Addr.next_mark_color t.mark_color;
  t.good <- t.mark_color;
  (* Reset per-page mark state (livemap, counters, hotmap epoch flip) for
     pages that will be re-marked; pages still in EC keep their snapshot —
     it drives their pending evacuation. *)
  Heap.iter_pages t.heap t.reset_page_fn;
  (* Fig. 3: under LAZYRELOCATE the deferred relocation pass runs at the
     start of this cycle. *)
  for i = 0 to Vec.length t.pending_ec - 1 do
    Vec.push t.relo_queue (Vec.unsafe_get t.pending_ec i)
  done;
  Vec.clear t.pending_ec;
  (* Seed marking from roots.  Roots on in-EC pages are relocated first
     (the STW pause heals all roots). *)
  t.acc_cost <- Cost.stw_pause;
  t.roots t.seed_root_fn;
  t.phase <- Marking;
  if not (Gc_log.is_null t.sink) then
    t.sink
      (Gc_log.Pause
         { cycle = t.cycle_no; pause = Gc_log.STW1; cost = t.acc_cost;
           wall = t.wall_hint });
  sample_heap t;
  at_edge t Stw1_done;
  t.stw_work_total <- t.stw_work_total + t.acc_cost

(* How many reference slots one GC work unit traces. *)
let scan_chunk = 64

(* Trace (a chunk of) an object popped from the mark stack.  Returns the
   chunk's cost ([t.acc_cost] is used as the accumulator — [resolve] adds
   to it directly). *)
let scan_object t (obj : Heap_obj.t) from_slot =
  let lay = layout t in
  let nrefs = Heap_obj.nrefs obj in
  let upto = min nrefs (from_slot + scan_chunk) in
  t.acc_cost <-
    (if from_slot = 0 then
       Machine.load_range t.machine ~core:t.gc_core obj.Heap_obj.addr
         lay.Layout.header_bytes
     else 0);
  if upto < nrefs then begin
    Vec.push t.mark_objs obj;
    Vec.push t.mark_from upto
  end;
  if upto > from_slot then
    t.acc_cost <-
      t.acc_cost
      + Machine.load_range t.machine ~core:t.gc_core
          (Heap_obj.ref_slot_addr ~layout:lay obj from_slot)
          ((upto - from_slot) * lay.Layout.word_bytes);
  for slot = from_slot to upto - 1 do
    t.acc_cost <- t.acc_cost + Cost.scan_slot;
    let ptr = Heap_obj.get_ref obj slot in
    if not (Addr.is_null ptr) then begin
      (* The R colour proves a mutator touched this pointer since STW3 of
         the previous cycle — the referent is hot (§3.1.2). *)
      let was_r = Addr.has_color Addr.R ptr in
      let target = resolve t ~who:Gc (Addr.addr ptr) in
      if was_r then
        t.acc_cost <-
          t.acc_cost + flag_hot t ~page:(page_of_obj t target) target;
      t.acc_cost <- t.acc_cost + mark_object t target;
      let healed = Addr.make t.good target.Heap_obj.addr in
      if healed <> ptr then begin
        Heap_obj.set_ref obj slot healed;
        t.acc_cost <-
          t.acc_cost + Machine.store t.machine ~core:t.gc_core (slot_addr t obj slot)
      end
    end
  done;
  t.acc_cost

(* ------------------------------------------------------------------ *)
(* EC selection (§3.1)                                                 *)
(* ------------------------------------------------------------------ *)

let ec_key t (page : Page.t) =
  if t.config.Config.hotness && t.dyn_cold_confidence > 0.0 then
    Page.weighted_live_bytes page ~cold_confidence:t.dyn_cold_confidence
  else page.Page.live_bytes

(* Select evacuation candidates among pages of [cls], marking them In_ec
   and appending them (sparsest first) to [t.ec_scratch].  Returns the
   number selected; the selection cost is added to [t.acc_cost]. *)
let select_class t ~cls ~page_size =
  Vec.clear t.select_cands;
  t.select_cls <- cls;
  Heap.iter_pages t.heap t.collect_candidate_fn;
  t.acc_cost <-
    t.acc_cost + (Vec.length t.select_cands * Cost.ec_select_per_page);
  (* Debug aid: HCSGC_DEBUG_EC=1 dumps per-candidate liveness/hotness and
     the selection outcome to stderr each cycle; snapshot the candidate
     list before filtering destroys it (debug mode may allocate). *)
  let debug_cands =
    if t.debug_ec && cls = Layout.Small then Vec.to_list t.select_cands
    else []
  in
  let relocate_all =
    cls = Layout.Small && t.config.Config.relocate_all_small_pages
  in
  if not relocate_all then begin
    (* ZGC baseline, with WLB substituted for live bytes under HOTNESS +
       COLDCONFIDENCE (§3.1.3): every page whose (weighted) occupancy is
       below the 75% threshold is selected, sorted sparsest first so the
       cheapest reclamation happens earliest.  (The paper also states a
       prefix-budget formula; taken literally it would cap the relocated
       live bytes at 3/4 of a single page, which contradicts the EC sizes
       its own Fig. 4 reports, so we follow ZGC's
       threshold-filter-selects-all behaviour — see DESIGN.md.)

       The filter and sort run in place on the candidate arena; the
       comparator's (key, id) order is total, so the in-place heapsort
       yields exactly the sequence the old [List.sort] pipeline did. *)
    t.ec_threshold <- 3 * page_size / 4;
    Vec.retain t.ec_filter_fn t.select_cands;
    Vec.sort t.ec_cmp_fn t.select_cands
  end;
  let selected = Vec.length t.select_cands in
  for i = 0 to selected - 1 do
    let page = Vec.unsafe_get t.select_cands i in
    page.Page.state <- Page.In_ec;
    Vec.push t.ec_scratch page
  done;
  if t.debug_ec && cls = Layout.Small then begin
    Printf.eprintf "cycle %d: %d candidates\n" t.cycle_no
      (List.length debug_cands);
    List.iter
      (fun (p : Page.t) ->
        Printf.eprintf "  page#%d birth=%d live=%d hot=%d key=%d sel=%b tgt=%b\n"
          p.Page.id p.Page.birth_cycle p.Page.live_bytes p.Page.hot_bytes
          (ec_key t p) (p.Page.state = Page.In_ec) p.Page.is_alloc_target)
      debug_cands
  end;
  selected

(* Demote cold small pages to the far tier, capacity permitting.  Runs on
   the GC core at sweep (after EC selection, so freshly-selected In_ec
   pages are excluded).  A page is demotable when it survived marking with
   no hot bytes this epoch — and, below full COLDCONFIDENCE, none the
   previous epoch either (less confidence in the hotmap means demanding a
   longer cold streak before paying the migration).  Candidates are taken
   in page-id order so the choice under capacity pressure is
   deterministic. *)

let page_id_cmp (a : Page.t) (b : Page.t) = compare a.Page.id b.Page.id

let rec demote_loop t tier i demoted =
  if i >= Vec.length t.demote_cands then demoted
  else begin
    let page = Vec.unsafe_get t.demote_cands i in
    if Tier.would_fit tier ~bytes:page.Page.size then begin
      let ok = Tier.demote tier ~addr:page.Page.start ~bytes:page.Page.size in
      assert ok;
      Heap.set_tier_far t.heap page;
      Gc_stats.on_page_demoted t.stats;
      t.acc_cost <- t.acc_cost + Cost.tier_demote;
      demote_loop t tier (i + 1) (demoted + 1)
    end
    else demote_loop t tier (i + 1) demoted
  end

(* Demotion cost is added to [t.acc_cost]. *)
let demote_cold_pages t tier =
  Vec.clear t.demote_cands;
  Heap.iter_pages t.heap t.collect_demote_fn;
  (* Unique page ids make this a total order: the in-place heapsort
     agrees with the [Array.sort] it replaces. *)
  Vec.sort page_id_cmp t.demote_cands;
  let demoted = demote_loop t tier 0 0 in
  if demoted > 0 && not (Gc_log.is_null t.sink) then
    t.sink
      (Gc_log.Pages_demoted
         { cycle = t.cycle_no; pages = demoted; wall = t.wall_hint })

(* Retire forwarding tables installed before this cycle: marking has
   remapped every live pointer into them, so their address ranges can be
   recycled.  The queue is compacted in place and the granule index
   rebuilt from the survivors (their granule ranges are disjoint — see
   the [fwd_index] field note — so rebuild order is immaterial). *)
let rec retire_compact t i j =
  if i >= Vec.length t.retire_cycles then j
  else begin
    let freed_cycle = Vec.unsafe_get t.retire_cycles i in
    let page = Vec.unsafe_get t.retire_pages i in
    if freed_cycle < t.cycle_no then begin
      Heap.recycle_range t.heap page;
      retire_compact t (i + 1) j
    end
    else begin
      Vec.set t.retire_cycles j freed_cycle;
      Vec.set t.retire_pages j page;
      retire_compact t (i + 1) (j + 1)
    end
  end

let index_fwd_granules t (page : Page.t) idx =
  let granule_bytes = Layout.granule (layout t) in
  let first = page.Page.start / granule_bytes in
  let last = (page.Page.start + page.Page.size - 1) / granule_bytes in
  for g = first to last do
    Int_tbl.set t.fwd_index ~key:g ~value:idx
  done

let retire_fwd_tables t =
  let kept = retire_compact t 0 0 in
  Vec.truncate t.retire_cycles kept;
  Vec.truncate t.retire_pages kept;
  Int_tbl.clear t.fwd_index;
  for idx = 0 to kept - 1 do
    index_fwd_granules t (Vec.unsafe_get t.retire_pages idx) idx
  done

(* STW2 + EC selection + STW3, performed when marking has drained. *)
let finish_mark t =
  assert (t.phase = Marking);
  assert (Vec.is_empty t.mark_objs);
  at_edge t Mark_done;
  Gc_stats.on_stw t.stats;
  Gc_stats.on_stw t.stats;
  if not (Gc_log.is_null t.sink) then begin
    t.sink
      (Gc_log.Pause
         { cycle = t.cycle_no; pause = Gc_log.STW2; cost = Cost.stw_pause;
           wall = t.wall_hint });
    t.sink
      (Gc_log.Mark_end
         { cycle = t.cycle_no;
           marked_objects =
             Gc_stats.objects_marked t.stats - t.marked_at_cycle_start;
           wall = t.wall_hint })
  end;
  t.acc_cost <- 2 * Cost.stw_pause;
  retire_fwd_tables t;
  (* EC selection. *)
  Vec.clear t.ec_scratch;
  let small =
    select_class t ~cls:Layout.Small ~page_size:(layout t).Layout.small_page
  in
  let medium =
    select_class t ~cls:Layout.Medium ~page_size:(layout t).Layout.medium_page
  in
  Gc_stats.on_ec_selected t.stats ~small ~medium;
  if not (Gc_log.is_null t.sink) then
    t.sink
      (Gc_log.Ec_selected
         { cycle = t.cycle_no; small; medium; wall = t.wall_hint });
  (* Far-tier demotion rides the same sweep, after EC selection so pages
     headed for evacuation are not pointlessly migrated first. *)
  (match t.tier with
  | Some tier -> demote_cold_pages t tier
  | None -> ());
  (* STW3: flip good colour to R; relocate roots pointing into EC. *)
  t.good <- Addr.R;
  t.roots t.fixup_root_fn;
  if not (Gc_log.is_null t.sink) then
    t.sink
      (Gc_log.Pause
         { cycle = t.cycle_no; pause = Gc_log.STW3; cost = Cost.stw_pause;
           wall = t.wall_hint });
  (if t.config.Config.lazy_relocate then begin
     (* Fig. 3: hand the whole relocation set to the mutators until the next
        cycle starts. *)
     for i = 0 to Vec.length t.ec_scratch - 1 do
       Vec.push t.pending_ec (Vec.unsafe_get t.ec_scratch i)
     done;
     if not (Gc_log.is_null t.sink) then
       t.sink
         (Gc_log.Relocation_deferred
            { cycle = t.cycle_no; pages = Vec.length t.ec_scratch;
              wall = t.wall_hint });
     at_edge t Stw3_done;
     t.phase <- Idle;
     if not (Gc_log.is_null t.sink) then
       t.sink
         (Gc_log.Cycle_end
            { cycle = t.cycle_no; wall = t.wall_hint;
              heap_used = Heap.used_bytes t.heap });
     sample_heap t;
     at_edge t Cycle_done
   end
   else begin
     for i = 0 to Vec.length t.ec_scratch - 1 do
       Vec.push t.relo_queue (Vec.unsafe_get t.ec_scratch i)
     done;
     t.phase <- Relocating;
     at_edge t Stw3_done
   end);
  t.stw_work_total <- t.stw_work_total + t.acc_cost

(* Free a fully evacuated page and keep its forwarding table reachable for
   stale-pointer remapping until retirement. *)
let release_page t (page : Page.t) =
  if not (Gc_log.is_null t.sink) then
    t.sink
      (Gc_log.Page_freed
         { cycle = t.cycle_no; page_id = page.Page.id; bytes = page.Page.size;
           wall = t.wall_hint });
  (* Drop far-tier residency before the range can be recycled: a later
     page reusing these granules must start DRAM-resident. *)
  (if page.Page.tier = Page.Far then
     match t.tier with
     | Some tier ->
         Tier.promote tier ~addr:page.Page.start ~bytes:page.Page.size
     | None -> assert false);
  Heap.free_page t.heap page;
  Vec.push t.retire_cycles t.cycle_no;
  Vec.push t.retire_pages page;
  index_fwd_granules t page (Vec.length t.retire_pages - 1);
  Gc_stats.on_page_freed t.stats

(* Fill the victim arena with the live objects of [page], in livemap
   (address) order — the same order [Page.iter_live] yields, via an
   allocation-free bit cursor. *)
let rec collect_victims t (page : Page.t) bit =
  let bit = Bitmap.next_set page.Page.livemap bit in
  if bit >= 0 then begin
    (match Page.find_object_exn page ~offset:(bit * 8) with
    | obj -> Vec.push t.relo_victims obj
    | exception Not_found -> ());
    collect_victims t page (bit + 1)
  end

(* One GC relocation step: evacuate the next live object of the current
   page, or finish the page.  Returns the step's cost, or -1 when there is
   no relocation work. *)

let relo_step t =
  if not t.relo_active then
    if Vec.is_empty t.relo_queue then -1
    else begin
      let page = Vec.pop_last t.relo_queue in
      Vec.clear t.relo_victims;
      collect_victims t page 0;
      t.relo_page <- page;
      t.relo_next <- 0;
      t.relo_active <- true;
      Cost.fwd_lookup
    end
  else if t.relo_next >= Vec.length t.relo_victims then begin
    release_page t t.relo_page;
    t.relo_active <- false;
    Cost.fwd_lookup
  end
  else begin
    let obj = Vec.unsafe_get t.relo_victims t.relo_next in
    t.relo_next <- t.relo_next + 1;
    (* The mutator may have beaten us to it (the relocation race). *)
    if Page.contains t.relo_page obj.Heap_obj.addr then
      relocate t ~who:Gc obj t.relo_page
    else Cost.fwd_lookup
  end

let end_cycle t =
  t.phase <- Idle;
  if not (Gc_log.is_null t.sink) then
    t.sink
      (Gc_log.Cycle_end
         { cycle = t.cycle_no; wall = t.wall_hint;
           heap_used = Heap.used_bytes t.heap });
  sample_heap t;
  at_edge t Cycle_done

(* The budgeted GC-work loop, as a tail recursion over the accumulated
   concurrent cost (a [while] with refs would allocate the refs per
   pump).  STW costs (finish_mark) land in [stw_work_total] and do not
   consume the concurrent budget, exactly as before. *)
let rec gc_loop t ~budget gc_acc =
  if gc_acc >= budget then gc_acc
  else begin
    (* Relocation first (Fig. 3: a cycle starts by releasing memory). *)
    let cost = relo_step t in
    if cost >= 0 then gc_loop t ~budget (gc_acc + cost)
    else
      match t.phase with
      | Marking ->
          if Vec.is_empty t.mark_objs then begin
            finish_mark t;
            gc_loop t ~budget gc_acc
          end
          else begin
            let obj = Vec.pop_last t.mark_objs in
            let from_slot = Vec.pop_last t.mark_from in
            gc_loop t ~budget (gc_acc + scan_object t obj from_slot)
          end
      | Relocating ->
          (* Queue drained and no page in progress: the cycle is done. *)
          end_cycle t;
          gc_acc
      | Idle -> gc_acc
  end

let gc_work t ~budget =
  t.gc_work_total <- t.gc_work_total + gc_loop t ~budget 0

let in_cycle t = t.phase <> Idle

let pending_relocation_pages t =
  Vec.length t.pending_ec + Vec.length t.relo_queue
  + (if t.relo_active then 1 else 0)

(* ------------------------------------------------------------------ *)
(* Hoisted per-phase callbacks (built once at [create])                 *)
(* ------------------------------------------------------------------ *)

let init_callbacks t =
  t.reset_page_fn <-
    (fun page ->
      if page.Page.state = Page.Active then Heap.reset_mark_state t.heap page);
  t.seed_root_fn <-
    (fun root ->
      t.acc_cost <- t.acc_cost + Cost.root_fixup;
      let page = page_of_obj t root in
      if page.Page.state = Page.In_ec then
        t.acc_cost <- t.acc_cost + relocate t ~who:Gc root page;
      t.acc_cost <- t.acc_cost + mark_object t root);
  t.fixup_root_fn <-
    (fun root ->
      t.acc_cost <- t.acc_cost + Cost.root_fixup;
      let page = page_of_obj t root in
      if page.Page.state = Page.In_ec then
        t.acc_cost <- t.acc_cost + relocate t ~who:Gc root page);
  t.collect_candidate_fn <-
    (fun page ->
      if
        page.Page.cls = t.select_cls
        && page.Page.state = Page.Active
        && page.Page.birth_cycle < t.cycle_no
        && not page.Page.is_alloc_target
      then Vec.push t.select_cands page);
  t.ec_filter_fn <- (fun page -> ec_key t page < t.ec_threshold);
  t.ec_cmp_fn <-
    (fun p1 p2 ->
      match compare (ec_key t p1) (ec_key t p2) with
      | 0 -> compare p1.Page.id p2.Page.id
      | c -> c);
  t.collect_demote_fn <-
    (fun page ->
      if
        page.Page.cls = Layout.Small
        && page.Page.state = Page.Active
        && page.Page.birth_cycle < t.cycle_no
        && (not page.Page.is_alloc_target)
        && page.Page.tier = Page.Dram
        && page.Page.live_bytes > 0
        && page.Page.hot_bytes = 0
        && (t.dyn_cold_confidence >= 1.0 || page.Page.prev_hot_bytes = 0)
      then Vec.push t.demote_cands page)

let create ?(sink = Gc_log.null_sink) ?tier ~heap ~machine ~config ~gc_core
    ~roots () =
  (match Config.validate config with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Collector.create: " ^ msg));
  (match tier with
  | Some _ when t_cap config = 0 ->
      invalid_arg "Collector.create: tier supplied but tiering disabled"
  | None when t_cap config > 0 ->
      invalid_arg "Collector.create: tiering enabled but no tier supplied"
  | _ -> ());
  let dummy = dummy_page (Heap.layout heap) in
  let t =
    {
      heap;
      machine;
      config;
      tier;
      gc_core;
      roots;
      stats = Gc_stats.create ();
      sink;
      marked_at_cycle_start = 0;
      good = Addr.M1;
      mark_color = Addr.M1;
      phase = Idle;
      cycle_no = 0;
      mark_objs = Vec.create ();
      mark_from = Vec.create ();
      relo_queue = Vec.create ();
      relo_active = false;
      relo_page = dummy;
      relo_victims = Vec.create ();
      relo_next = 0;
      pending_ec = Vec.create ();
      fwd_index = Int_tbl.create ~capacity:256 ();
      retire_cycles = Vec.create ();
      retire_pages = Vec.create ();
      mut_alloc = Alloc_region.create ~cores:(Machine.cores machine) ();
      mut_relo = Alloc_region.create ~cores:(Machine.cores machine) ();
      medium_alloc = None;
      medium_relo = None;
      gc_hot = None;
      gc_cold = None;
      bump_page = dummy;
      bump_addr = 0;
      dyn_cold_confidence = config.Config.cold_confidence;
      wall_hint = 0;
      allocated_since_cycle = 0;
      phase_hook = None;
      mark_watermark = 0;
      last_cost = 0;
      gc_work_total = 0;
      stw_work_total = 0;
      acc_cost = 0;
      select_cands = Vec.create ();
      demote_cands = Vec.create ();
      ec_scratch = Vec.create ();
      select_cls = Layout.Small;
      ec_threshold = 0;
      debug_ec =
        (try Sys.getenv "HCSGC_DEBUG_EC" = "1" with Not_found -> false);
      collect_candidate_fn = ignore;
      ec_filter_fn = (fun _ -> false);
      ec_cmp_fn = (fun _ _ -> 0);
      collect_demote_fn = ignore;
      reset_page_fn = ignore;
      seed_root_fn = ignore;
      fixup_root_fn = ignore;
    }
  in
  (* The per-phase callbacks are built once here and reused every cycle;
     their per-invocation parameters travel through the scratch fields
     above, so the phase paths never construct a closure. *)
  init_callbacks t;
  t

(* ------------------------------------------------------------------ *)
(* Invariant verification (tests & debugging)                          *)
(* ------------------------------------------------------------------ *)

let verify t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let granule_bytes = Layout.granule (layout t) in
  (* Page-level invariants. *)
  let used = ref 0 in
  Heap.iter_pages t.heap (fun page ->
      used := !used + page.Page.size;
      (match Heap.page_of_addr t.heap page.Page.start with
      | Some p when p == page -> ()
      | _ -> err "page #%d not mapped at its own start" page.Page.id);
      Hashtbl.iter
        (fun offset (obj : Heap_obj.t) ->
          if obj.Heap_obj.addr <> page.Page.start + offset then
            err "object #%d registered at offset %d but addr=0x%x on page #%d"
              obj.Heap_obj.id offset obj.Heap_obj.addr page.Page.id;
          if obj.Heap_obj.addr + obj.Heap_obj.size > page.Page.start + page.Page.top
          then
            err "object #%d extends past the bump pointer of page #%d"
              obj.Heap_obj.id page.Page.id)
        page.Page.objects);
  if !used <> Heap.used_bytes t.heap then
    err "used_bytes accounting: pages sum to %d, heap reports %d" !used
      (Heap.used_bytes t.heap);
  (* Forwarding-index granules must be unmapped until retirement, and
     must point at their queued page. *)
  Int_tbl.iter t.fwd_index (fun granule idx ->
      (match Heap.page_of_addr t.heap (granule * granule_bytes) with
      | Some p ->
          err "fwd-index granule %d still mapped to live page #%d" granule
            p.Page.id
      | None -> ());
      if idx < 0 || idx >= Vec.length t.retire_pages then
        err "fwd-index granule %d points at retired slot %d (of %d)" granule
          idx
          (Vec.length t.retire_pages));
  (* Reachability: every ref slot of every reachable object must resolve to
     a registered object, possibly through forwarding. *)
  let seen = Hashtbl.create 1024 in
  let stale_page_at addr =
    match Int_tbl.get t.fwd_index ~key:(addr / granule_bytes) ~default:(-1) with
    | -1 -> None
    | idx when idx >= 0 && idx < Vec.length t.retire_pages ->
        Some (Vec.get t.retire_pages idx)
    | _ -> None
  in
  let rec trace (obj : Heap_obj.t) =
    if not (Hashtbl.mem seen obj.Heap_obj.id) then begin
      Hashtbl.add seen obj.Heap_obj.id ();
      Array.iteri
        (fun slot ptr ->
          if not (Addr.is_null ptr) then begin
            (match Addr.color ptr with
            | (_ : Addr.color) -> ()
            | exception Invalid_argument _ ->
                err "object #%d slot %d holds a malformed pointer"
                  obj.Heap_obj.id slot);
            let rec chase addr depth =
              if depth > 4 then
                err "forwarding chain too deep from object #%d slot %d"
                  obj.Heap_obj.id slot
              else
                match stale_page_at addr with
                | Some old_page -> (
                    match
                      Fwd_table.find old_page.Page.fwd
                        ~offset:(addr - old_page.Page.start)
                    with
                    | Some fwd -> chase fwd (depth + 1)
                    | None ->
                        err "object #%d slot %d: stale 0x%x has no forwarding"
                          obj.Heap_obj.id slot addr)
                | None -> (
                    match Heap.page_of_addr t.heap addr with
                    | None ->
                        err "object #%d slot %d points at unmapped 0x%x"
                          obj.Heap_obj.id slot addr
                    | Some page -> (
                        match
                          Page.find_object page ~offset:(addr - page.Page.start)
                        with
                        | Some target -> trace target
                        | None -> (
                            match
                              Fwd_table.find page.Page.fwd
                                ~offset:(addr - page.Page.start)
                            with
                            | Some fwd -> chase fwd (depth + 1)
                            | None ->
                                err
                                  "object #%d slot %d points at 0x%x with no \
                                   object or forwarding"
                                  obj.Heap_obj.id slot addr)))
            in
            chase (Addr.addr ptr) 0
          end)
        obj.Heap_obj.refs
    end
  in
  t.roots trace;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let drain t =
  (* Complete the in-flight cycle, then — if a LAZYRELOCATE set is pending —
     run one more full cycle so its leading RE pass releases the floating
     garbage.  Deliberately bounded: under RELOCATEALLSMALLPAGES + LAZY
     every cycle ends with a fresh pending set, so "drain until nothing is
     pending" would never terminate. *)
  while in_cycle t do
    gc_work t ~budget:max_int
  done;
  if pending_relocation_pages t > 0 then begin
    start_cycle t;
    while in_cycle t do
      gc_work t ~budget:max_int
    done
  end
