module Heap = Hcsgc_heap.Heap
module Heap_obj = Hcsgc_heap.Heap_obj
module Page = Hcsgc_heap.Page
module Addr = Hcsgc_heap.Addr
module Layout = Hcsgc_heap.Layout
module Fwd_table = Hcsgc_heap.Fwd_table
module Alloc_region = Hcsgc_heap.Alloc_region
module Machine = Hcsgc_memsim.Machine
module Tier = Hcsgc_memsim.Tier
module Vec = Hcsgc_util.Vec

type phase = Idle | Marking | Relocating

type phase_edge = Stw1_done | Mark_done | Stw3_done | Cycle_done

let phase_edge_name = function
  | Stw1_done -> "stw1-done"
  | Mark_done -> "mark-done"
  | Stw3_done -> "stw3-done"
  | Cycle_done -> "cycle-done"

type work = { gc : int; stw : int }

type who = Mutator of int | Gc

exception Out_of_memory
exception Invalid_handle of string

let t_cap (config : Config.t) = config.Config.tier_capacity_pages

(* A page being evacuated by the GC relocation pass: the live objects
   snapshot (from the livemap) and a cursor. *)
type relo_cursor = {
  relo_page : Page.t;
  victims : Heap_obj.t array;
  mutable next : int;
}

type t = {
  heap : Heap.t;
  machine : Machine.t;
  config : Config.t;
  (* Far-memory tier shared with the machine ([Machine.set_tier]); [None]
     unless [config.tier_capacity_pages > 0].  The collector owns all
     residency transitions: demotion of cold small pages at sweep,
     promotion on barrier access, and removal when a page is freed. *)
  tier : Tier.t option;
  gc_core : int;
  (* Root enumeration as an iterator: the VM applies the callback to every
     root in a fixed order.  Unlike the list-returning callback this
     replaces, enumerating allocates nothing per root (the old one rebuilt
     a list — with a list append — on every STW pause and every verify). *)
  roots : (Heap_obj.t -> unit) -> unit;
  stats : Gc_stats.t;
  mutable sink : Gc_log.sink;
  mutable marked_at_cycle_start : int;
  mutable good : Addr.color;
  mutable mark_color : Addr.color;  (* the M0/M1 colour of the current cycle *)
  mutable phase : phase;
  mutable cycle_no : int;
  (* Mark work items: an object plus the slot index scanning resumes from.
     Large objects (e.g. big reference arrays) are traced in bounded chunks
     so GC work interleaves with mutator progress at realistic granularity —
     otherwise one work unit could atomically relocate everything a big
     array points into, erasing the mutator/GC relocation race of §3.2. *)
  mark_stack : (Heap_obj.t * int) Vec.t;
  relo_queue : Page.t Vec.t;  (* pages awaiting the GC relocation pass *)
  mutable relo_cur : relo_cursor option;
  pending_ec : Page.t Vec.t;  (* LAZYRELOCATE: EC deferred to next cycle *)
  fwd_index : (int, Page.t) Hashtbl.t;  (* granule -> freed page w/ live fwd *)
  retire_queue : (int * Page.t) Vec.t;  (* (cycle freed, page) *)
  (* Bump targets.  Mutator allocation and relocation pages are per core
     — array-backed so each shard core owns exactly one slot and reads
     allocate nothing (shard-safe allocation regions); GC threads keep a
     hot and a cold target (§3.3); medium-object targets are shared. *)
  mut_alloc : Alloc_region.t;
  mut_relo : Alloc_region.t;
  mutable medium_alloc : Page.t option;
  mutable medium_relo : Page.t option;
  mutable gc_hot : Page.t option;
  mutable gc_cold : Page.t option;
  (* COLDCONFIDENCE in effect; starts at the configured value and may be
     retuned at run time by a feedback loop (Autotuner). *)
  mutable dyn_cold_confidence : float;
  (* wall-clock view for heap samples; updated by the VM via set_wall *)
  mutable wall_hint : int;
  (* object bytes allocated since the last cycle start; drives cycle
     scheduling the way ZGC's allocation-rate heuristics do *)
  mutable allocated_since_cycle : int;
  (* phase-boundary hook (the heap sanitizer's entry point); must be
     read-only — it runs inside pauses and charges nothing *)
  mutable phase_hook : (phase_edge -> unit) option;
  (* Heap.obj_ids_issued at the last STW1 (see mark_watermark) *)
  mutable mark_watermark : int;
  (* Cycle cost of the most recent [load_ref] (see [last_cost] below);
     written instead of returned so the hot path never boxes a tuple. *)
  mutable last_cost : int;
}

let create ?(sink = Gc_log.null_sink) ?tier ~heap ~machine ~config ~gc_core
    ~roots () =
  (match Config.validate config with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Collector.create: " ^ msg));
  (match tier with
  | Some _ when t_cap config = 0 ->
      invalid_arg "Collector.create: tier supplied but tiering disabled"
  | None when t_cap config > 0 ->
      invalid_arg "Collector.create: tiering enabled but no tier supplied"
  | _ -> ());
  {
    heap;
    machine;
    config;
    tier;
    gc_core;
    roots;
    stats = Gc_stats.create ();
    sink;
    marked_at_cycle_start = 0;
    good = Addr.M1;
    mark_color = Addr.M1;
    phase = Idle;
    cycle_no = 0;
    mark_stack = Vec.create ();
    relo_queue = Vec.create ();
    relo_cur = None;
    pending_ec = Vec.create ();
    fwd_index = Hashtbl.create 256;
    retire_queue = Vec.create ();
    mut_alloc = Alloc_region.create ~cores:(Machine.cores machine) ();
    mut_relo = Alloc_region.create ~cores:(Machine.cores machine) ();
    medium_alloc = None;
    medium_relo = None;
    gc_hot = None;
    gc_cold = None;
    dyn_cold_confidence = config.Config.cold_confidence;
    wall_hint = 0;
    allocated_since_cycle = 0;
    phase_hook = None;
    mark_watermark = 0;
    last_cost = 0;
  }

let heap t = t.heap
let config t = t.config
let tier t = t.tier
let set_sink t sink = t.sink <- sink
let stats t = t.stats
let phase t = t.phase
let good_color t = t.good
let cycle_number t = t.cycle_no

let layout t = Heap.layout t.heap

let set_phase_hook t hook = t.phase_hook <- hook

let at_edge t edge =
  match t.phase_hook with None -> () | Some hook -> hook edge

let roots_list t =
  let acc = ref [] in
  t.roots (fun root -> acc := root :: !acc);
  List.rev !acc

let last_cost t = t.last_cost

let mark_watermark t = t.mark_watermark

let iter_stale_fwd_pages t f =
  (* The retire queue holds each freed-but-unretired page exactly once. *)
  Vec.iter (fun (_, page) -> f page) t.retire_queue

let stale_fwd_page_at t ~addr =
  Hashtbl.find_opt t.fwd_index (addr / Layout.granule (layout t))

let who_core t who = match who with Mutator c -> c | Gc -> t.gc_core

let set_wall_hint t wall = t.wall_hint <- wall

let cold_confidence t = t.dyn_cold_confidence

let set_cold_confidence t v =
  if not t.config.Config.hotness then
    invalid_arg "Collector.set_cold_confidence: requires HOTNESS";
  if v < 0.0 || v > 1.0 then
    invalid_arg "Collector.set_cold_confidence: outside [0,1]";
  t.dyn_cold_confidence <- v

(* ------------------------------------------------------------------ *)
(* Target pages                                                        *)
(* ------------------------------------------------------------------ *)

(* Relocation and allocation targets are allocated with [force] so that
   compaction can always make progress (ZGC's relocation headroom). *)
let fresh_target t ~cls ~force =
  match
    Heap.alloc_page ~force t.heap ~cls ~bytes:0 ~birth_cycle:t.cycle_no
  with
  | Some page ->
      page.Page.is_alloc_target <- true;
      Some page
  | None -> None

let retire_target (page : Page.t) = page.Page.is_alloc_target <- false

(* Bump [bytes] in the target identified by [get]/[set], replacing a full
   target page.  Returns the destination address and a page-allocation cost
   (0 if the current target sufficed). *)
let target_bump t ~cls ~force ~get ~set bytes =
  let rec go cost =
    match get () with
    | Some page -> (
        match Page.bump_alloc page bytes with
        | Some offset -> Some (page, page.Page.start + offset, cost)
        | None ->
            retire_target page;
            set None;
            go cost)
    | None -> (
        match fresh_target t ~cls ~force with
        | None -> None
        | Some page ->
            set (Some page);
            go (cost + Cost.alloc_page))
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Relocation                                                          *)
(* ------------------------------------------------------------------ *)

(* Pick the destination bump target for relocating [obj] off [src]. *)
let relo_target t ~who ~(src : Page.t) (obj : Heap_obj.t) bytes =
  match src.Page.cls with
  | Layout.Medium ->
      target_bump t ~cls:Layout.Medium ~force:true
        ~get:(fun () -> t.medium_relo)
        ~set:(fun p -> t.medium_relo <- p)
        bytes
  | Layout.Large -> assert false (* large pages are never in EC *)
  | Layout.Small -> (
      match who with
      | Mutator core ->
          target_bump t ~cls:Layout.Small ~force:true
            ~get:(fun () -> Alloc_region.get t.mut_relo ~core)
            ~set:(fun p -> Alloc_region.set t.mut_relo ~core p)
            bytes
      | Gc ->
          (* §3.3: with COLDPAGE on, GC threads send cold objects to a
             dedicated cold page; hot objects (and everything, when the knob
             is off) go to the hot page. *)
          let cold =
            t.config.Config.coldpage
            && t.config.Config.hotness
            && not (Page.is_hot src obj)
          in
          if cold then
            target_bump t ~cls:Layout.Small ~force:true
              ~get:(fun () -> t.gc_cold)
              ~set:(fun p -> t.gc_cold <- p)
              bytes
          else
            target_bump t ~cls:Layout.Small ~force:true
              ~get:(fun () -> t.gc_hot)
              ~set:(fun p -> t.gc_hot <- p)
              bytes)

(* Copy [obj] out of the in-EC page [src].  Returns the cycle cost charged
   to [who].  The forwarding-table insertion is the linearisation point. *)
let relocate t ~who (obj : Heap_obj.t) (src : Page.t) =
  assert (src.Page.state = Page.In_ec);
  let offset = obj.Heap_obj.addr - src.Page.start in
  let bytes = obj.Heap_obj.size in
  match relo_target t ~who ~src obj bytes with
  | None -> raise Out_of_memory
  | Some (dst, new_addr, page_cost) -> (
      match Fwd_table.claim src.Page.fwd ~offset ~new_addr with
      | Fwd_table.Already _ ->
          (* Cannot happen in the deterministic simulator: an object still
             registered on its source page has not been claimed. *)
          assert false
      | Fwd_table.Claimed ->
          let core = who_core t who in
          let copy_cost =
            Machine.load_range t.machine ~core obj.Heap_obj.addr bytes
            + Machine.store_range t.machine ~core new_addr bytes
          in
          Page.remove_object src obj;
          obj.Heap_obj.addr <- new_addr;
          obj.Heap_obj.relocations <- obj.Heap_obj.relocations + 1;
          Page.add_object dst obj;
          Gc_stats.on_relocate t.stats
            ~by_mutator:(match who with Mutator _ -> true | Gc -> false)
            ~bytes;
          page_cost + copy_cost + Cost.relocate_fixed + Cost.fwd_insert)

(* ------------------------------------------------------------------ *)
(* Resolution: coloured address -> current object                      *)
(* ------------------------------------------------------------------ *)

(* Follow forwarding chains and relocate on demand until [addr] names an
   object at its current location.  Accumulates cost in [cost]. *)
let rec resolve t ~who ~cost addr =
  let granule = addr / Layout.granule (layout t) in
  match Hashtbl.find_opt t.fwd_index granule with
  | Some old_page -> (
      cost := !cost + Cost.fwd_lookup;
      let offset = addr - old_page.Page.start in
      match Fwd_table.find old_page.Page.fwd ~offset with
      | Some new_addr -> resolve t ~who ~cost new_addr
      | None ->
          raise
            (Invalid_handle
               (Printf.sprintf
                  "stale pointer 0x%x into freed page #%d with no forwarding"
                  addr old_page.Page.id)))
  | None -> (
      match Heap.page_of_addr t.heap addr with
      | None ->
          raise
            (Invalid_handle (Printf.sprintf "pointer 0x%x maps to no page" addr))
      | Some page -> (
          let offset = addr - page.Page.start in
          match Page.find_object page ~offset with
          | Some obj ->
              if page.Page.state = Page.In_ec then begin
                cost := !cost + relocate t ~who obj page;
                obj
              end
              else obj
          | None -> (
              (* Relocated out of an in-EC page: follow its forwarding. *)
              cost := !cost + Cost.fwd_lookup;
              match Fwd_table.find page.Page.fwd ~offset with
              | Some new_addr -> resolve t ~who ~cost new_addr
              | None ->
                  raise
                    (Invalid_handle
                       (Printf.sprintf "no object at 0x%x on page #%d" addr
                          page.Page.id)))))

(* ------------------------------------------------------------------ *)
(* Marking                                                             *)
(* ------------------------------------------------------------------ *)

let page_of_obj t (obj : Heap_obj.t) =
  match Heap.page_of_addr t.heap obj.Heap_obj.addr with
  | Some page -> page
  | None ->
      raise
        (Invalid_handle
           (Printf.sprintf "object #%d at unmapped address 0x%x"
              obj.Heap_obj.id obj.Heap_obj.addr))

(* Mark [obj] live on its (to-space) page; push for tracing when newly
   marked.  Only meaningful during the marking phase. *)
let mark_object t (obj : Heap_obj.t) =
  let page = page_of_obj t obj in
  assert (page.Page.state <> Page.In_ec);
  if Page.mark_live page obj then begin
    Gc_stats.on_mark t.stats;
    Vec.push t.mark_stack (obj, 0);
    Cost.mark_object
  end
  else 0

(* Promote a far-resident page back to DRAM.  Called only with
   [page.tier = Far], which implies a tier exists (demotion is the only
   way to set the bit).  Returns the cycle cost (0 when the promote
   policy is off — the page then stays far and keeps paying [lat_far]). *)
let promote_page t (page : Page.t) =
  match t.tier with
  | Some tier when t.config.Config.tier_promote ->
      Heap.set_tier_dram t.heap page;
      Tier.promote tier ~addr:page.Page.start ~bytes:page.Page.size;
      Gc_stats.on_page_promoted t.stats;
      Cost.tier_promote
  | _ -> 0

let flag_hot t ~(page : Page.t) (obj : Heap_obj.t) =
  (* Hot-flagging a far page promotes it first: with the promote policy
     on, "resident far" implies "no hot bytes" at every phase edge. *)
  let promo =
    if page.Page.tier = Page.Far then promote_page t page else 0
  in
  promo
  +
  if t.config.Config.hotness && page.Page.cls = Layout.Small then
    if Heap.flag_hot t.heap page obj then begin
      Gc_stats.on_hot_flag t.stats;
      Cost.hotmap_cas
    end
    else 0
  else 0

(* ------------------------------------------------------------------ *)
(* Mutator interface                                                   *)
(* ------------------------------------------------------------------ *)

(* The handle-validity check shared by both [use_handle] paths: [obj] must
   still be the object registered at its own address on [page].  Because an
   object's table key is always its current address offset, registration is
   equivalent to [page_id] matching — one integer compare, no hash walk. *)
let[@inline] check_handle (page : Page.t) (obj : Heap_obj.t) =
  if obj.Heap_obj.page_id <> page.Page.id then
    raise
      (Invalid_handle
         (Printf.sprintf "handle to reclaimed object #%d" obj.Heap_obj.id))

let use_handle t ~core (obj : Heap_obj.t) =
  let page = page_of_obj t obj in
  let relocated = page.Page.state = Page.In_ec in
  Gc_stats.on_barrier t.stats ~slow:relocated;
  if relocated || t.phase = Marking then begin
    (* Slow path: relocation work and/or marking may be charged. *)
    let cost = ref 0 in
    let page =
      if relocated then begin
        cost := !cost + relocate t ~who:(Mutator core) obj page;
        page_of_obj t obj
      end
      else page
    in
    check_handle page obj;
    (* Hotness is recorded on barrier slow paths only (§3.1.2): a handle use
       flags the object just when it forced relocation work — freshly
       allocated objects reached through good-coloured pointers are never
       flagged, exactly as in ZGC. *)
    if relocated then cost := !cost + flag_hot t ~page obj;
    if t.phase = Marking then cost := !cost + mark_object t obj;
    if page.Page.tier = Page.Far then cost := !cost + promote_page t page;
    !cost
  end
  else begin
    (* Fast path — the steady-state barrier: validate the handle, charge
       nothing, allocate nothing.  The tier-bit compare is the only
       tiering footprint here; it is always [Dram] when tiering is off. *)
    check_handle page obj;
    if page.Page.tier = Page.Far then promote_page t page else 0
  end

let slot_addr t obj slot = Heap_obj.ref_slot_addr ~layout:(layout t) obj slot

let load_ref t ~core (src : Heap_obj.t) ~slot =
  let c0 = use_handle t ~core src in
  let c1 = Machine.load t.machine ~core (slot_addr t src slot) in
  let ptr = Heap_obj.get_ref src slot in
  if Addr.is_null ptr then begin
    t.last_cost <- c0 + c1;
    None
  end
  else if Addr.has_color t.good ptr then begin
    Gc_stats.on_barrier t.stats ~slow:false;
    (* Fast path: the good colour guarantees a current, to-space address.
       The only allocation left on this path is the [Some] return itself
       (the public API is option-shaped). *)
    match Heap.page_of_addr t.heap (Addr.addr ptr) with
    | None ->
        raise
          (Invalid_handle
             (Printf.sprintf "good-coloured pointer 0x%x has no object"
                (Addr.addr ptr)))
    | Some page -> (
        match
          Page.find_object_exn page ~offset:(Addr.addr ptr - page.Page.start)
        with
        | obj ->
            t.last_cost <- c0 + c1;
            Some obj
        | exception Not_found ->
            raise
              (Invalid_handle
                 (Printf.sprintf "good-coloured pointer 0x%x has no object"
                    (Addr.addr ptr))))
  end
  else begin
    (* Slow path: remap / mark / relocate, flag hotness, self-heal. *)
    Gc_stats.on_barrier t.stats ~slow:true;
    let cost = ref (c0 + c1 + Cost.barrier_slow) in
    let obj = resolve t ~who:(Mutator core) ~cost (Addr.addr ptr) in
    if t.phase = Marking then cost := !cost + mark_object t obj;
    cost := !cost + flag_hot t ~page:(page_of_obj t obj) obj;
    Heap_obj.set_ref src slot (Addr.make t.good obj.Heap_obj.addr);
    cost := !cost + Machine.store t.machine ~core (slot_addr t src slot);
    t.last_cost <- !cost;
    Some obj
  end

let store_ref t ~core (src : Heap_obj.t) ~slot target =
  let c0 = use_handle t ~core src in
  let c1 =
    match target with
    | None ->
        Heap_obj.set_ref src slot Addr.null;
        0
    | Some obj ->
        let cu = use_handle t ~core obj in
        (* Keep handle-published objects from hiding during marking. *)
        let cm = if t.phase = Marking then mark_object t obj else 0 in
        Heap_obj.set_ref src slot (Addr.make t.good obj.Heap_obj.addr);
        cu + cm
  in
  c0 + c1 + Machine.store t.machine ~core (slot_addr t src slot)

let alloc t ~core ~nrefs ~nwords =
  let lay = layout t in
  let bytes = Layout.object_bytes lay ~nrefs ~nwords in
  t.allocated_since_cycle <- t.allocated_since_cycle + bytes;
  Gc_stats.on_alloc t.stats ~bytes;
  let finish obj page_cost =
    let header_cost =
      Machine.store_range t.machine ~core obj.Heap_obj.addr
        lay.Layout.header_bytes
    in
    Some (obj, Cost.alloc + page_cost + header_cost)
  in
  match Layout.class_of_object_size lay bytes with
  | Layout.Large -> (
      match
        Heap.alloc_large_object t.heap ~nrefs ~nwords ~birth_cycle:t.cycle_no
      with
      | Some obj -> finish obj Cost.alloc_page
      | None -> None)
  | Layout.Medium -> (
      match
        target_bump t ~cls:Layout.Medium ~force:false
          ~get:(fun () -> t.medium_alloc)
          ~set:(fun p -> t.medium_alloc <- p)
          bytes
      with
      | None -> None
      | Some (page, addr, page_cost) ->
          let obj =
            Heap_obj.create ~layout:lay ~id:(Heap.fresh_obj_id t.heap) ~addr
              ~nrefs ~nwords
          in
          Page.add_object page obj;
          finish obj page_cost)
  | Layout.Small -> (
      match
        target_bump t ~cls:Layout.Small ~force:false
          ~get:(fun () -> Alloc_region.get t.mut_alloc ~core)
          ~set:(fun p -> Alloc_region.set t.mut_alloc ~core p)
          bytes
      with
      | None -> None
      | Some (page, addr, page_cost) ->
          let obj =
            Heap_obj.create ~layout:lay ~id:(Heap.fresh_obj_id t.heap) ~addr
              ~nrefs ~nwords
          in
          Page.add_object page obj;
          finish obj page_cost)

(* ------------------------------------------------------------------ *)
(* The GC cycle                                                        *)
(* ------------------------------------------------------------------ *)

(* Cycle scheduling.  ZGC paces cycles from allocation-rate prediction; we
   use the deterministic equivalent: start a cycle once [trigger] × max-heap
   bytes have been allocated since the last cycle started, with a
   high-usage backstop (the allocation-stall path covers the rest). *)
let hard_usage_trigger = 0.85

let needs_cycle t ~trigger =
  t.phase = Idle
  && (t.allocated_since_cycle
      >= int_of_float (trigger *. float_of_int (Heap.max_bytes t.heap))
     || Heap.used_ratio t.heap >= hard_usage_trigger)

let sample_heap t =
  Gc_stats.on_heap_sample t.stats ~wall:t.wall_hint ~used:(Heap.used_bytes t.heap)

(* STW1. *)
let start_cycle t =
  if t.phase <> Idle then invalid_arg "Collector.start_cycle: cycle in progress";
  t.cycle_no <- t.cycle_no + 1;
  t.allocated_since_cycle <- 0;
  t.mark_watermark <- Heap.obj_ids_issued t.heap;
  t.marked_at_cycle_start <- Gc_stats.objects_marked t.stats;
  if not (Gc_log.is_null t.sink) then
    t.sink
      (Gc_log.Cycle_start
         { cycle = t.cycle_no; wall = t.wall_hint;
           heap_used = Heap.used_bytes t.heap });
  ignore (Gc_stats.on_cycle_start t.stats ~wall:t.wall_hint);
  Gc_stats.on_stw t.stats;
  t.mark_color <- Addr.next_mark_color t.mark_color;
  t.good <- t.mark_color;
  (* Reset per-page mark state (livemap, counters, hotmap epoch flip) for
     pages that will be re-marked; pages still in EC keep their snapshot —
     it drives their pending evacuation. *)
  Heap.iter_pages t.heap (fun page ->
      if page.Page.state = Page.Active then Heap.reset_mark_state t.heap page);
  (* Fig. 3: under LAZYRELOCATE the deferred relocation pass runs at the
     start of this cycle. *)
  Vec.iter (fun page -> Vec.push t.relo_queue page) t.pending_ec;
  Vec.clear t.pending_ec;
  (* Seed marking from roots.  Roots on in-EC pages are relocated first
     (the STW pause heals all roots). *)
  let cost = ref Cost.stw_pause in
  t.roots (fun root ->
      cost := !cost + Cost.root_fixup;
      let page = page_of_obj t root in
      if page.Page.state = Page.In_ec then
        cost := !cost + relocate t ~who:Gc root page;
      cost := !cost + mark_object t root);
  t.phase <- Marking;
  if not (Gc_log.is_null t.sink) then
    t.sink
      (Gc_log.Pause
         { cycle = t.cycle_no; pause = Gc_log.STW1; cost = !cost;
           wall = t.wall_hint });
  sample_heap t;
  at_edge t Stw1_done;
  { gc = 0; stw = !cost }

(* How many reference slots one GC work unit traces. *)
let scan_chunk = 64

(* Trace (a chunk of) an object popped from the mark stack. *)
let scan_object t (obj : Heap_obj.t) from_slot =
  let lay = layout t in
  let nrefs = Heap_obj.nrefs obj in
  let upto = min nrefs (from_slot + scan_chunk) in
  let cost =
    ref
      (if from_slot = 0 then
         Machine.load_range t.machine ~core:t.gc_core obj.Heap_obj.addr
           lay.Layout.header_bytes
       else 0)
  in
  if upto < nrefs then Vec.push t.mark_stack (obj, upto);
  if upto > from_slot then
    cost :=
      !cost
      + Machine.load_range t.machine ~core:t.gc_core
          (Heap_obj.ref_slot_addr ~layout:lay obj from_slot)
          ((upto - from_slot) * lay.Layout.word_bytes);
  for slot = from_slot to upto - 1 do
    cost := !cost + Cost.scan_slot;
    let ptr = Heap_obj.get_ref obj slot in
    if not (Addr.is_null ptr) then begin
      (* The R colour proves a mutator touched this pointer since STW3 of
         the previous cycle — the referent is hot (§3.1.2). *)
      let was_r = Addr.has_color Addr.R ptr in
      let target = resolve t ~who:Gc ~cost (Addr.addr ptr) in
      if was_r then
        cost := !cost + flag_hot t ~page:(page_of_obj t target) target;
      cost := !cost + mark_object t target;
      let healed = Addr.make t.good target.Heap_obj.addr in
      if healed <> ptr then begin
        Heap_obj.set_ref obj slot healed;
        cost :=
          !cost + Machine.store t.machine ~core:t.gc_core (slot_addr t obj slot)
      end
    end
  done;
  !cost

(* ------------------------------------------------------------------ *)
(* EC selection (§3.1)                                                 *)
(* ------------------------------------------------------------------ *)

let ec_key t (page : Page.t) =
  if t.config.Config.hotness && t.dyn_cold_confidence > 0.0 then
    Page.weighted_live_bytes page ~cold_confidence:t.dyn_cold_confidence
  else page.Page.live_bytes

(* Select evacuation candidates among pages of [cls], marking them In_ec.
   Returns the number selected and the selection cost. *)
let select_class t ~cls ~page_size =
  let candidates = Vec.create () in
  Heap.iter_pages t.heap (fun page ->
      if
        page.Page.cls = cls
        && page.Page.state = Page.Active
        && page.Page.birth_cycle < t.cycle_no
        && not page.Page.is_alloc_target
      then Vec.push candidates page);
  let cost = ref (Vec.length candidates * Cost.ec_select_per_page) in
  let relocate_all =
    cls = Layout.Small && t.config.Config.relocate_all_small_pages
  in
  let selected = Vec.create () in
  if relocate_all then Vec.iter (fun p -> Vec.push selected p) candidates
  else begin
    (* ZGC baseline, with WLB substituted for live bytes under HOTNESS +
       COLDCONFIDENCE (§3.1.3): every page whose (weighted) occupancy is
       below the 75% threshold is selected, sorted sparsest first so the
       cheapest reclamation happens earliest.  (The paper also states a
       prefix-budget formula; taken literally it would cap the relocated
       live bytes at 3/4 of a single page, which contradicts the EC sizes
       its own Fig. 4 reports, so we follow ZGC's
       threshold-filter-selects-all behaviour — see DESIGN.md.) *)
    let threshold = 3 * page_size / 4 in
    let eligible =
      Vec.to_list candidates
      |> List.filter_map (fun p ->
             let key = ec_key t p in
             if key < threshold then Some (key, p) else None)
    in
    let sorted =
      List.sort
        (fun (k1, (p1 : Page.t)) (k2, (p2 : Page.t)) ->
          match compare k1 k2 with 0 -> compare p1.Page.id p2.Page.id | c -> c)
        eligible
    in
    List.iter (fun (_, page) -> Vec.push selected page) sorted
  end;
  Vec.iter (fun (page : Page.t) -> page.Page.state <- Page.In_ec) selected;
  (* Debug aid: HCSGC_DEBUG_EC=1 dumps per-candidate liveness/hotness and
     the selection outcome to stderr each cycle. *)
  if (try Sys.getenv "HCSGC_DEBUG_EC" = "1" with Not_found -> false)
     && cls = Layout.Small then begin
    Printf.eprintf "cycle %d: %d candidates\n" t.cycle_no (Vec.length candidates);
    Vec.iter (fun (p : Page.t) ->
      Printf.eprintf "  page#%d birth=%d live=%d hot=%d key=%d sel=%b tgt=%b\n"
        p.Page.id p.Page.birth_cycle p.Page.live_bytes p.Page.hot_bytes
        (ec_key t p) (p.Page.state = Page.In_ec) p.Page.is_alloc_target)
      candidates
  end;
  (Vec.to_list selected, !cost)

(* Demote cold small pages to the far tier, capacity permitting.  Runs on
   the GC core at sweep (after EC selection, so freshly-selected In_ec
   pages are excluded).  A page is demotable when it survived marking with
   no hot bytes this epoch — and, below full COLDCONFIDENCE, none the
   previous epoch either (less confidence in the hotmap means demanding a
   longer cold streak before paying the migration).  Candidates are taken
   in page-id order so the choice under capacity pressure is
   deterministic. *)
let demote_cold_pages t tier =
  let candidates = Vec.create () in
  Heap.iter_pages t.heap (fun (page : Page.t) ->
      if
        page.Page.cls = Layout.Small
        && page.Page.state = Page.Active
        && page.Page.birth_cycle < t.cycle_no
        && (not page.Page.is_alloc_target)
        && page.Page.tier = Page.Dram
        && page.Page.live_bytes > 0
        && page.Page.hot_bytes = 0
        && (t.dyn_cold_confidence >= 1.0 || page.Page.prev_hot_bytes = 0)
      then Vec.push candidates page);
  let pages = Vec.to_array candidates in
  Array.sort
    (fun (a : Page.t) (b : Page.t) -> compare a.Page.id b.Page.id)
    pages;
  let cost = ref 0 in
  let demoted = ref 0 in
  Array.iter
    (fun (page : Page.t) ->
      if Tier.would_fit tier ~bytes:page.Page.size then begin
        let ok = Tier.demote tier ~addr:page.Page.start ~bytes:page.Page.size in
        assert ok;
        Heap.set_tier_far t.heap page;
        Gc_stats.on_page_demoted t.stats;
        incr demoted;
        cost := !cost + Cost.tier_demote
      end)
    pages;
  if !demoted > 0 && not (Gc_log.is_null t.sink) then
    t.sink
      (Gc_log.Pages_demoted
         { cycle = t.cycle_no; pages = !demoted; wall = t.wall_hint });
  !cost

(* STW2 + EC selection + STW3, performed when marking has drained. *)
let finish_mark t =
  assert (t.phase = Marking);
  assert (Vec.is_empty t.mark_stack);
  at_edge t Mark_done;
  Gc_stats.on_stw t.stats;
  Gc_stats.on_stw t.stats;
  if not (Gc_log.is_null t.sink) then begin
    t.sink
      (Gc_log.Pause
         { cycle = t.cycle_no; pause = Gc_log.STW2; cost = Cost.stw_pause;
           wall = t.wall_hint });
    t.sink
      (Gc_log.Mark_end
         { cycle = t.cycle_no;
           marked_objects =
             Gc_stats.objects_marked t.stats - t.marked_at_cycle_start;
           wall = t.wall_hint })
  end;
  let cost = ref (2 * Cost.stw_pause) in
  (* Retire forwarding tables installed before this cycle: marking has
     remapped every live pointer into them, so their address ranges can be
     recycled. *)
  let keep = Vec.create () in
  Vec.iter
    (fun (freed_cycle, page) ->
      if freed_cycle < t.cycle_no then begin
        let granule_bytes = Layout.granule (layout t) in
        let first = page.Page.start / granule_bytes in
        let last = (page.Page.start + page.Page.size - 1) / granule_bytes in
        for g = first to last do
          match Hashtbl.find_opt t.fwd_index g with
          | Some p when p == page -> Hashtbl.remove t.fwd_index g
          | _ -> ()
        done;
        Heap.recycle_range t.heap page
      end
      else Vec.push keep (freed_cycle, page))
    t.retire_queue;
  Vec.clear t.retire_queue;
  Vec.iter (fun e -> Vec.push t.retire_queue e) keep;
  (* EC selection. *)
  let small, small_cost =
    select_class t ~cls:Layout.Small ~page_size:(layout t).Layout.small_page
  in
  let medium, medium_cost =
    select_class t ~cls:Layout.Medium ~page_size:(layout t).Layout.medium_page
  in
  cost := !cost + small_cost + medium_cost;
  Gc_stats.on_ec_selected t.stats ~small:(List.length small)
    ~medium:(List.length medium);
  if not (Gc_log.is_null t.sink) then
    t.sink
      (Gc_log.Ec_selected
         { cycle = t.cycle_no; small = List.length small;
           medium = List.length medium; wall = t.wall_hint });
  (* Far-tier demotion rides the same sweep, after EC selection so pages
     headed for evacuation are not pointlessly migrated first. *)
  (match t.tier with
  | Some tier -> cost := !cost + demote_cold_pages t tier
  | None -> ());
  (* STW3: flip good colour to R; relocate roots pointing into EC. *)
  t.good <- Addr.R;
  t.roots (fun root ->
      cost := !cost + Cost.root_fixup;
      let page = page_of_obj t root in
      if page.Page.state = Page.In_ec then
        cost := !cost + relocate t ~who:Gc root page);
  let ec = small @ medium in
  if not (Gc_log.is_null t.sink) then
    t.sink
      (Gc_log.Pause
         { cycle = t.cycle_no; pause = Gc_log.STW3; cost = Cost.stw_pause;
           wall = t.wall_hint });
  if t.config.Config.lazy_relocate then begin
    (* Fig. 3: hand the whole relocation set to the mutators until the next
       cycle starts. *)
    List.iter (fun p -> Vec.push t.pending_ec p) ec;
    if not (Gc_log.is_null t.sink) then
      t.sink
        (Gc_log.Relocation_deferred
           { cycle = t.cycle_no; pages = List.length ec; wall = t.wall_hint });
    at_edge t Stw3_done;
    t.phase <- Idle;
    if not (Gc_log.is_null t.sink) then
      t.sink
        (Gc_log.Cycle_end
           { cycle = t.cycle_no; wall = t.wall_hint;
             heap_used = Heap.used_bytes t.heap });
    sample_heap t;
    at_edge t Cycle_done
  end
  else begin
    List.iter (fun p -> Vec.push t.relo_queue p) ec;
    t.phase <- Relocating;
    at_edge t Stw3_done
  end;
  !cost

(* Free a fully evacuated page and keep its forwarding table reachable for
   stale-pointer remapping until retirement. *)
let release_page t (page : Page.t) =
  if not (Gc_log.is_null t.sink) then
    t.sink
      (Gc_log.Page_freed
         { cycle = t.cycle_no; page_id = page.Page.id; bytes = page.Page.size;
           wall = t.wall_hint });
  (* Drop far-tier residency before the range can be recycled: a later
     page reusing these granules must start DRAM-resident. *)
  (if page.Page.tier = Page.Far then
     match t.tier with
     | Some tier ->
         Tier.promote tier ~addr:page.Page.start ~bytes:page.Page.size
     | None -> assert false);
  Heap.free_page t.heap page;
  let granule_bytes = Layout.granule (layout t) in
  let first = page.Page.start / granule_bytes in
  let last = (page.Page.start + page.Page.size - 1) / granule_bytes in
  for g = first to last do
    Hashtbl.replace t.fwd_index g page
  done;
  Vec.push t.retire_queue (t.cycle_no, page);
  Gc_stats.on_page_freed t.stats

(* One GC relocation step: evacuate the next live object of the current
   page, or finish the page.  Returns (cost, made_progress). *)
let relo_step t =
  match t.relo_cur with
  | None -> (
      match Vec.pop t.relo_queue with
      | None -> (0, false)
      | Some page ->
          let victims = Vec.create () in
          Page.iter_live page (fun obj -> Vec.push victims obj);
          t.relo_cur <-
            Some { relo_page = page; victims = Vec.to_array victims; next = 0 };
          (Cost.fwd_lookup, true))
  | Some cur ->
      if cur.next >= Array.length cur.victims then begin
        release_page t cur.relo_page;
        t.relo_cur <- None;
        (Cost.fwd_lookup, true)
      end
      else begin
        let obj = cur.victims.(cur.next) in
        cur.next <- cur.next + 1;
        (* The mutator may have beaten us to it (the relocation race). *)
        if Page.contains cur.relo_page obj.Heap_obj.addr then
          (relocate t ~who:Gc obj cur.relo_page, true)
        else (Cost.fwd_lookup, true)
      end

let gc_work t ~budget =
  let gc = ref 0 and stw = ref 0 in
  let continue_ = ref true in
  while !continue_ && !gc < budget do
    (* Relocation first (Fig. 3: a cycle starts by releasing memory). *)
    let cost, progressed = relo_step t in
    gc := !gc + cost;
    if progressed then ()
    else begin
      match t.phase with
      | Marking -> (
          match Vec.pop t.mark_stack with
          | Some (obj, from_slot) -> gc := !gc + scan_object t obj from_slot
          | None -> stw := !stw + finish_mark t)
      | Relocating ->
          (* Queue drained and no page in progress: the cycle is done. *)
          t.phase <- Idle;
          if not (Gc_log.is_null t.sink) then
            t.sink
              (Gc_log.Cycle_end
                 { cycle = t.cycle_no; wall = t.wall_hint;
                   heap_used = Heap.used_bytes t.heap });
          sample_heap t;
          at_edge t Cycle_done;
          continue_ := false
      | Idle -> continue_ := false
    end
  done;
  { gc = !gc; stw = !stw }

let in_cycle t = t.phase <> Idle

let pending_relocation_pages t =
  Vec.length t.pending_ec + Vec.length t.relo_queue
  + (match t.relo_cur with Some _ -> 1 | None -> 0)

(* ------------------------------------------------------------------ *)
(* Invariant verification (tests & debugging)                          *)
(* ------------------------------------------------------------------ *)

let verify t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let granule_bytes = Layout.granule (layout t) in
  (* Page-level invariants. *)
  let used = ref 0 in
  Heap.iter_pages t.heap (fun page ->
      used := !used + page.Page.size;
      (match Heap.page_of_addr t.heap page.Page.start with
      | Some p when p == page -> ()
      | _ -> err "page #%d not mapped at its own start" page.Page.id);
      Hashtbl.iter
        (fun offset (obj : Heap_obj.t) ->
          if obj.Heap_obj.addr <> page.Page.start + offset then
            err "object #%d registered at offset %d but addr=0x%x on page #%d"
              obj.Heap_obj.id offset obj.Heap_obj.addr page.Page.id;
          if obj.Heap_obj.addr + obj.Heap_obj.size > page.Page.start + page.Page.top
          then
            err "object #%d extends past the bump pointer of page #%d"
              obj.Heap_obj.id page.Page.id)
        page.Page.objects);
  if !used <> Heap.used_bytes t.heap then
    err "used_bytes accounting: pages sum to %d, heap reports %d" !used
      (Heap.used_bytes t.heap);
  (* Forwarding-index granules must be unmapped until retirement. *)
  Hashtbl.iter
    (fun granule (_ : Page.t) ->
      match Heap.page_of_addr t.heap (granule * granule_bytes) with
      | Some p ->
          err "fwd-index granule %d still mapped to live page #%d" granule
            p.Page.id
      | None -> ())
    t.fwd_index;
  (* Reachability: every ref slot of every reachable object must resolve to
     a registered object, possibly through forwarding. *)
  let seen = Hashtbl.create 1024 in
  let rec trace (obj : Heap_obj.t) =
    if not (Hashtbl.mem seen obj.Heap_obj.id) then begin
      Hashtbl.add seen obj.Heap_obj.id ();
      Array.iteri
        (fun slot ptr ->
          if not (Addr.is_null ptr) then begin
            (match Addr.color ptr with
            | (_ : Addr.color) -> ()
            | exception Invalid_argument _ ->
                err "object #%d slot %d holds a malformed pointer"
                  obj.Heap_obj.id slot);
            let rec chase addr depth =
              if depth > 4 then
                err "forwarding chain too deep from object #%d slot %d"
                  obj.Heap_obj.id slot
              else
                match Hashtbl.find_opt t.fwd_index (addr / granule_bytes) with
                | Some old_page -> (
                    match
                      Fwd_table.find old_page.Page.fwd
                        ~offset:(addr - old_page.Page.start)
                    with
                    | Some fwd -> chase fwd (depth + 1)
                    | None ->
                        err "object #%d slot %d: stale 0x%x has no forwarding"
                          obj.Heap_obj.id slot addr)
                | None -> (
                    match Heap.page_of_addr t.heap addr with
                    | None ->
                        err "object #%d slot %d points at unmapped 0x%x"
                          obj.Heap_obj.id slot addr
                    | Some page -> (
                        match
                          Page.find_object page ~offset:(addr - page.Page.start)
                        with
                        | Some target -> trace target
                        | None -> (
                            match
                              Fwd_table.find page.Page.fwd
                                ~offset:(addr - page.Page.start)
                            with
                            | Some fwd -> chase fwd (depth + 1)
                            | None ->
                                err
                                  "object #%d slot %d points at 0x%x with no \
                                   object or forwarding"
                                  obj.Heap_obj.id slot addr)))
            in
            chase (Addr.addr ptr) 0
          end)
        obj.Heap_obj.refs
    end
  in
  t.roots trace;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let drain t =
  (* Complete the in-flight cycle, then — if a LAZYRELOCATE set is pending —
     run one more full cycle so its leading RE pass releases the floating
     garbage.  Deliberately bounded: under RELOCATEALLSMALLPAGES + LAZY
     every cycle ends with a fresh pending set, so "drain until nothing is
     pending" would never terminate. *)
  let gc = ref 0 and stw = ref 0 in
  let absorb (w : work) =
    gc := !gc + w.gc;
    stw := !stw + w.stw
  in
  let finish_cycle () =
    while in_cycle t do
      absorb (gc_work t ~budget:max_int)
    done
  in
  finish_cycle ();
  if pending_relocation_pages t > 0 then begin
    absorb (start_cycle t);
    finish_cycle ()
  end;
  { gc = !gc; stw = !stw }
