(** The HCSGC collector: ZGC's concurrent mark-compact cycle (§2) extended
    with hotness tracking, weighted-live-bytes EC selection, lazy relocation
    and hot/cold segregation (§3).

    The collector owns the good-colour state machine, the mark work list, EC
    selection and the relocation machinery.  "Concurrency" is cooperative:
    the embedding VM calls {!gc_work} with a cycle budget whenever the
    mutator passes a safepoint, which models GC threads running on a spare
    core.  Mutator loads and stores enter through the barrier functions
    here; every function returns the simulated cycle cost it incurred on the
    calling thread.

    {2 Colour windows (Fig. 2)}

    STW1 flips the good colour to the next mark colour (M0/M1 alternating);
    STW3 flips it to R.  A pointer whose colour is not good traps in the
    slow path: during marking it is remapped, marked and (for mutators)
    hotness-flagged; during relocation it triggers copying of objects on
    evacuation-candidate pages — by whichever thread gets there first, which
    for mutators lays objects out in access order (§3.2). *)

module Heap = Hcsgc_heap.Heap
module Heap_obj = Hcsgc_heap.Heap_obj
module Page = Hcsgc_heap.Page
module Addr = Hcsgc_heap.Addr
module Machine = Hcsgc_memsim.Machine

type t

type phase =
  | Idle  (** between cycles (relocation may still be pending under
              LAZYRELOCATE — mutators keep copying on access) *)
  | Marking  (** between STW1 and STW2 *)
  | Relocating  (** between STW3 and the end of the RE pass *)

exception Out_of_memory
exception Invalid_handle of string
(** Raised when a workload uses a handle to an object the collector has
    reclaimed — i.e. the workload broke the rooting discipline. *)

val create :
  ?sink:Gc_log.sink ->
  ?tier:Hcsgc_memsim.Tier.t ->
  heap:Heap.t ->
  machine:Machine.t ->
  config:Config.t ->
  gc_core:int ->
  roots:((Heap_obj.t -> unit) -> unit) ->
  unit ->
  t
(** [sink] receives structured GC events ({!Gc_log}); defaults to
    {!Gc_log.null_sink}.  Fan out to several consumers (event log,
    telemetry, ...) with {!Gc_log.tee}.

    [tier] is the far-memory tier the collector manages (the same value
    the embedder passes to {!Machine.set_tier}).  Required exactly when
    [config.tier_capacity_pages > 0]: the collector demotes cold small
    pages into it at sweep, promotes far pages back to DRAM on barrier
    access (under [config.tier_promote]), and clears residency when a
    far page is freed.
    @raise Invalid_argument if [tier]'s presence disagrees with the
    config's [tier_capacity_pages], or the config is invalid.

    [roots] enumerates the current root set by applying its callback to
    every root, in a stable order (determinism depends on it).  An iterator
    rather than a list so enumeration allocates nothing per root — STW
    pauses walk roots on the simulation hot path. *)

val set_sink : t -> Gc_log.sink -> unit
(** Replace the event sink.  Lets instrumentation (e.g.
    {!Hcsgc_telemetry}) attach to a collector after creation; recording
    costs zero simulated cycles either way. *)

val heap : t -> Heap.t
val config : t -> Config.t

val tier : t -> Hcsgc_memsim.Tier.t option
(** The far-memory tier, when tiering is on — read-only access for the
    verifier (per-tier byte totals round-trip against {!Heap.far_bytes}). *)

val stats : t -> Gc_stats.t
val phase : t -> phase
val good_color : t -> Addr.color
val cycle_number : t -> int
(** Number of the last started cycle (0 before the first). *)

(** {2 Phase-boundary hook (heap sanitizer)}

    Every GC cycle crosses four well-defined edges at which the heap is in
    a quiescent, checkable state.  An installed hook is invoked
    synchronously at each edge — the intended consumer is
    [Hcsgc_verify.Invariants], which walks the whole heap there.  Hooks
    must only {e read} collector/heap state: they are charged no simulated
    cycles and touch no simulated caches, so a hooked run is byte-identical
    to an unhooked one. *)

type phase_edge =
  | Stw1_done  (** STW1 finished: good colour flipped to the mark colour,
                   roots seeded, phase is [Marking] *)
  | Mark_done  (** mark stack drained, still before STW2's retirement and
                   EC selection: the livemap is complete and every
                   reachable slot has been healed to the good colour *)
  | Stw3_done  (** STW3 finished: good colour is R, the EC is selected
                   (and, under LAZYRELOCATE, handed to the mutators) *)
  | Cycle_done  (** the cycle's relocation pass completed (or was deferred)
                    and the phase returned to [Idle] *)

val phase_edge_name : phase_edge -> string

val set_phase_hook : t -> (phase_edge -> unit) option -> unit
(** Install (or, with [None], remove) the phase-boundary hook.  At most one
    hook is installed at a time; installing replaces the previous one. *)

(** {2 Read-only state accessors (for the verifier)} *)

val roots_list : t -> Heap_obj.t list
(** The current root set, exactly as the collector sees it (materialised
    from the root iterator — convenience for the verifier and tests). *)

val mark_watermark : t -> int
(** The heap's {!Heap.obj_ids_issued} snapshot taken at the last STW1:
    objects with [id < mark_watermark] existed when marking started and
    must be covered by the livemap at [Mark_done]; younger objects are
    allocated during the cycle and are kept alive by roots/barriers
    instead. *)

val iter_stale_fwd_pages : t -> (Page.t -> unit) -> unit
(** Iterate the freed pages whose forwarding tables are still live (i.e.
    not yet retired at a Mark End pause) — the pages stale coloured
    pointers may still resolve through. *)

val stale_fwd_page_at : t -> addr:int -> Page.t option
(** The freed-but-unretired page whose recycled address range covers
    [addr], if any (the forwarding-index lookup of the barrier slow path,
    minus the relocation side effects). *)

(** {2 Mutator interface} *)

val alloc :
  t -> core:int -> nrefs:int -> nwords:int -> (Heap_obj.t * int) option
(** Allocate an object (choosing the page class per Table 1) from the
    per-core bump page.  Returns the object and the mutator cycle cost, or
    [None] if the heap limit is hit — the caller should force a collection
    and retry. *)

val use_handle : t -> core:int -> Heap_obj.t -> int
(** The {e handle barrier}: declares that the mutator is about to access the
    object through a VM-level handle (the analogue of a register-held
    pointer).  Maintains the to-space invariant — if the object sits on an
    evacuation-candidate page the mutator relocates it now, in access order —
    and flags hotness.  Returns the cycle cost. *)

val load_ref : t -> core:int -> Heap_obj.t -> slot:int -> Heap_obj.t option
(** [load_ref t ~core src ~slot] loads reference slot [slot] of [src] through
    the load barrier: good colour is the no-extra-work fast path; otherwise
    the slow path remaps/marks/relocates, flags hotness, and self-heals the
    slot.  Returns the referent (None for null); the cycle cost is left in
    {!last_cost} rather than returned, so the hot path never boxes a
    tuple. *)

val last_cost : t -> int
(** Cycle cost of the most recent {!load_ref} call.  Read it immediately
    after the call — any later barrier overwrites it. *)

val store_ref :
  t -> core:int -> Heap_obj.t -> slot:int -> Heap_obj.t option -> int
(** [store_ref t ~core src ~slot target] writes [target] (or null) into
    [src.refs.(slot)] with the good colour.  During marking the stored
    referent is marked (keeping unregistered handles from hiding objects).
    Returns the cycle cost. *)

(** {2 GC driving (called from VM safepoints)} *)

val needs_cycle : t -> trigger:float -> bool
(** True when idle and either [trigger] × max-heap bytes have been allocated
    since the last cycle started (the deterministic stand-in for ZGC's
    allocation-rate pacing) or heap usage passed a high-water backstop. *)

val start_cycle : t -> unit
(** Perform STW1: flip the mark colour, reset per-page mark state, seed the
    mark stack from roots, and (under LAZYRELOCATE) enqueue the previous
    cycle's pending relocation set.  The pause's cost lands in
    {!total_stw_work}.
    @raise Invalid_argument if a cycle is in progress. *)

val gc_work : t -> budget:int -> unit
(** Run GC-thread work (relocation first — Fig. 3 — then marking) for up to
    [budget] cycles; performs the STW2 / EC-selection / STW3 transition and
    the end-of-cycle transition when work runs out.  Idempotent when there is
    nothing to do.  Concurrent work accumulates in {!total_gc_work}, pause
    work in {!total_stw_work}. *)

val drain : t -> unit
(** Complete the in-flight cycle; if a LAZYRELOCATE evacuation set is still
    pending afterwards, run one more full cycle so its leading RE pass
    releases the floating garbage.  Bounded by design — under
    RELOCATEALLSMALLPAGES + LAZY every cycle ends with a fresh pending set,
    so an unbounded drain would not terminate. *)

val total_gc_work : t -> int
(** Cumulative cycles of concurrent GC-thread work since creation.  The
    driving VM snapshots this (and {!total_stw_work}) around each pump and
    charges the delta — cumulative counters instead of per-call work
    records, so driving the collector allocates nothing on the host. *)

val total_stw_work : t -> int
(** Cumulative cycles of stop-the-world pause work since creation (STW
    pauses always hit wall time). *)

val in_cycle : t -> bool

val set_wall_hint : t -> int -> unit
(** Let the VM tell the collector the current wall clock, so heap-usage
    samples (§4.2's heap-usage-over-time plot) carry timestamps. *)

val cold_confidence : t -> float
(** The COLDCONFIDENCE currently in effect (the configured value unless a
    feedback loop has retuned it). *)

val set_cold_confidence : t -> float -> unit
(** Retune COLDCONFIDENCE at run time (the {!Autotuner} feedback loop,
    §4.8).  @raise Invalid_argument if HOTNESS is off or the value is
    outside [0, 1]. *)

val pending_relocation_pages : t -> int
(** Pages selected for evacuation and not yet fully evacuated (includes the
    LAZYRELOCATE carry-over while idle). *)

val verify : t -> (unit, string list) result
(** Walk the heap and check structural invariants: object registration
    matches addresses, page accounting is consistent, forwarding-table
    index granules are unmapped, reachable reference slots resolve to
    registered objects, and coloured pointers are well-formed.  Intended
    for tests and debugging; O(heap). *)
