(** The cycle-cost model.

    Memory latencies come from the cache simulator; everything else an
    operation does (barrier checks, CAS, table operations, copying loop
    overhead) is charged from these constants.  Values are rough
    client-core figures; the *relative* magnitudes are what matters for
    reproducing the paper's shapes (e.g. a hotmap CAS is noticeable but
    small, a STW pause is large but amortised). *)

val op_base : int
(** Base cost of one mutator operation besides its memory accesses. *)

val alloc : int
(** Bump-pointer allocation fast path. *)

val alloc_page : int
(** Fetching a fresh page (map + zeroing amortisation). *)

val barrier_slow : int
(** Load-barrier slow-path entry (branch miss + call). *)

val hotmap_cas : int
(** First-touch hotness CAS (§4.1: "the overhead of updating the hotmap
    which in its current implementation involves a CAS operation"). *)

val fwd_lookup : int
(** Forwarding-table probe. *)

val fwd_insert : int
(** Forwarding-table CAS insertion (the relocation linearisation point). *)

val relocate_fixed : int
(** Per-object relocation overhead besides the copy itself. *)

val mark_object : int
(** Marking an object (livemap bit + bookkeeping). *)

val scan_slot : int
(** Per-slot work while the GC traces an object. *)

val stw_pause : int
(** Fixed cost of one stop-the-world pause, charged to wall time. *)

val root_fixup : int
(** Per-root work inside a STW pause. *)

val ec_select_per_page : int
(** Per-candidate-page work during EC selection. *)

val tier_demote : int
(** Per-page cost of demoting a cold page to the far tier (page-table
    remap + TLB shootdown amortisation), charged to the GC core. *)

val tier_promote : int
(** Per-page cost of promoting a far page back to DRAM, charged to the
    accessing mutator's slow path. *)
