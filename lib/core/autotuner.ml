type t = {
  mutable setting : float;
  mutable step : float;
  mutable direction : float;  (* +1.0 or -1.0 *)
  mutable last_rate : float option;
  mutable count : int;
  deadband : float;
  min_step : float;
}

let create ?(initial = 0.5) ?(step = 0.25) ?(deadband = 0.01) () =
  if initial < 0.0 || initial > 1.0 then
    invalid_arg "Autotuner.create: initial outside [0,1]";
  if step <= 0.0 then invalid_arg "Autotuner.create: step must be positive";
  {
    setting = initial;
    step;
    direction = 1.0;
    last_rate = None;
    count = 0;
    deadband;
    min_step = 0.02;
  }

let cold_confidence t = t.setting

let epochs t = t.count

let clamp x = Float.max 0.0 (Float.min 1.0 x)

let observe t ~miss_rate =
  if Float.is_nan miss_rate || miss_rate < 0.0 then ()
  else begin
    t.count <- t.count + 1;
    (match t.last_rate with
    | None -> ()
    | Some prev ->
        let relative =
          if prev <= 0.0 then 0.0 else (miss_rate -. prev) /. prev
        in
        if relative > t.deadband then begin
          (* The last move hurt: back off and probe more cautiously. *)
          t.direction <- -.t.direction;
          t.step <- Float.max t.min_step (t.step /. 2.0)
        end
        else if relative < -.t.deadband then
          (* The move helped: press on, growing confidence slightly. *)
          t.step <- Float.min 0.25 (t.step *. 1.25)
        (* Within the deadband: keep the current direction and step. *));
    t.last_rate <- Some miss_rate;
    t.setting <- clamp (t.setting +. (t.direction *. t.step))
  end

let pp fmt t =
  Format.fprintf fmt "autotuner{cc=%.2f step=%.2f dir=%+.0f epochs=%d}"
    t.setting t.step t.direction t.count
