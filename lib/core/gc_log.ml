type pause = STW1 | STW2 | STW3

type event =
  | Cycle_start of { cycle : int; wall : int; heap_used : int }
  | Pause of { cycle : int; pause : pause; cost : int; wall : int }
  | Mark_end of { cycle : int; marked_objects : int; wall : int }
  | Ec_selected of { cycle : int; small : int; medium : int; wall : int }
  | Relocation_deferred of { cycle : int; pages : int; wall : int }
  | Pages_demoted of { cycle : int; pages : int; wall : int }
  | Page_freed of { cycle : int; page_id : int; bytes : int; wall : int }
  | Cycle_end of { cycle : int; wall : int; heap_used : int }

type sink = event -> unit

let null_sink (_ : event) = ()

let is_null (s : sink) = s == null_sink

(* Every sink sees every event even when an earlier sink raises: a
   diagnostic consumer (e.g. a verifier reporting a violation) must not be
   able to starve the consumers after it in the list.  The first exception
   is re-raised once the fan-out completes. *)
let tee sinks event =
  let first_exn = ref None in
  List.iter
    (fun sink ->
      try sink event
      with exn ->
        if !first_exn = None then
          first_exn := Some (exn, Printexc.get_raw_backtrace ()))
    sinks;
  match !first_exn with
  | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None -> ()

type recorder = {
  buf : event option array;
  mutable next : int;
  mutable total : int;
}

let recorder ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Gc_log.recorder: capacity must be positive";
  { buf = Array.make capacity None; next = 0; total = 0 }

let listen r event =
  r.buf.(r.next) <- Some event;
  r.next <- (r.next + 1) mod Array.length r.buf;
  r.total <- r.total + 1

let sink_of_recorder r = listen r

let events r =
  let cap = Array.length r.buf in
  let out = ref [] in
  for i = 0 to cap - 1 do
    match r.buf.((r.next + i) mod cap) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  List.rev !out

let count r = r.total

let dropped r = max 0 (r.total - Array.length r.buf)

let clear r =
  Array.fill r.buf 0 (Array.length r.buf) None;
  r.next <- 0;
  r.total <- 0

let pause_name = function
  | STW1 -> "Pause Mark Start"
  | STW2 -> "Pause Mark End"
  | STW3 -> "Pause Relocate Start"

let pp_event fmt = function
  | Cycle_start { cycle; wall; heap_used } ->
      Format.fprintf fmt "[gc] GC(%d) Garbage Collection start (wall=%d used=%dK)"
        cycle wall (heap_used / 1024)
  | Pause { cycle; pause; cost; wall = _ } ->
      Format.fprintf fmt "[gc] GC(%d) %s %dc" cycle (pause_name pause) cost
  | Mark_end { cycle; marked_objects; wall = _ } ->
      Format.fprintf fmt "[gc] GC(%d) Concurrent Mark end: %d objects" cycle
        marked_objects
  | Ec_selected { cycle; small; medium; wall = _ } ->
      Format.fprintf fmt
        "[gc] GC(%d) Relocation Set: %d small, %d medium pages" cycle small
        medium
  | Relocation_deferred { cycle; pages; wall = _ } ->
      Format.fprintf fmt
        "[gc] GC(%d) Relocation deferred to next cycle (%d pages, lazy)" cycle
        pages
  | Pages_demoted { cycle; pages; wall = _ } ->
      Format.fprintf fmt "[gc] GC(%d) Demoted %d cold pages to far tier" cycle
        pages
  | Page_freed { cycle; page_id; bytes; wall = _ } ->
      Format.fprintf fmt "[gc] GC(%d) Page freed: #%d (%dK)" cycle page_id
        (bytes / 1024)
  | Cycle_end { cycle; wall; heap_used } ->
      Format.fprintf fmt "[gc] GC(%d) Garbage Collection end (wall=%d used=%dK)"
        cycle wall (heap_used / 1024)

let pp fmt r =
  if dropped r > 0 then
    Format.fprintf fmt "[gc] ... %d older events dropped (buffer capacity %d)@."
      (dropped r) (Array.length r.buf);
  List.iter (fun e -> Format.fprintf fmt "%a@." pp_event e) (events r)
