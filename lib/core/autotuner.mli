(** A feedback loop that auto-tunes COLDCONFIDENCE — the paper's first
    "future work" item (§4.8): "collecting cache miss rate, which can be
    used for more aggressive segregation if the result is positive or
    backing off otherwise".

    The tuner is a bounded hill climber over the mutator's cache miss rate,
    observed once per GC cycle: while nudging COLDCONFIDENCE in some
    direction keeps lowering the miss rate, keep going; when the miss rate
    worsens, reverse and shrink the step.  The controller is deliberately
    conservative (relative improvements below [deadband] are treated as
    noise) so it cannot oscillate on a flat objective. *)

type t

val create :
  ?initial:float -> ?step:float -> ?deadband:float -> unit -> t
(** Defaults: start at COLDCONFIDENCE 0.5, step 0.25, deadband 1 % relative
    miss-rate change.
    @raise Invalid_argument if [initial] is outside [0, 1] or [step <= 0]. *)

val cold_confidence : t -> float
(** The current setting (always within [0, 1]). *)

val observe : t -> miss_rate:float -> unit
(** Feed the mutator miss rate measured over the epoch that ran with the
    current setting; the tuner updates its setting for the next epoch.
    Non-finite or negative miss rates are ignored. *)

val epochs : t -> int
(** Number of observations consumed. *)

val pp : Format.formatter -> t -> unit
