type t = {
  hotness : bool;
  coldpage : bool;
  cold_confidence : float;
  relocate_all_small_pages : bool;
  lazy_relocate : bool;
  tier_capacity_pages : int;
  lat_far : int;
  tier_promote : bool;
}

let zgc =
  {
    hotness = false;
    coldpage = false;
    cold_confidence = 0.0;
    relocate_all_small_pages = false;
    lazy_relocate = false;
    tier_capacity_pages = 0;
    lat_far = 800;
    tier_promote = true;
  }

let validate t =
  if t.coldpage && not t.hotness then
    Error "COLDPAGE requires HOTNESS to be enabled"
  else if t.cold_confidence < 0.0 || t.cold_confidence > 1.0 then
    Error "COLDCONFIDENCE must lie in [0, 1]"
  else if t.cold_confidence > 0.0 && not t.hotness then
    Error "COLDCONFIDENCE requires HOTNESS to be enabled"
  else if t.tier_capacity_pages < 0 then
    Error "TIER capacity must be non-negative"
  else if t.tier_capacity_pages > 0 && not t.hotness then
    Error "TIER requires HOTNESS to be enabled"
  else if t.lat_far <= 0 then Error "LATFAR must be positive"
  else Ok t

let make ?(hotness = false) ?(coldpage = false) ?(cold_confidence = 0.0)
    ?(relocate_all_small_pages = false) ?(lazy_relocate = false)
    ?(tier_capacity_pages = 0) ?(lat_far = 800) ?(tier_promote = true) () =
  let t =
    { hotness; coldpage; cold_confidence; relocate_all_small_pages;
      lazy_relocate; tier_capacity_pages; lat_far; tier_promote }
  in
  match validate t with Ok t -> t | Error msg -> invalid_arg ("Config: " ^ msg)

(* Table 2, columns 0–18.  h = hotness, cp = coldpage, cc = cold confidence,
   ra = relocate all small pages, lz = lazy relocate. *)
let row ~h ~cp ~cc ~ra ~lz =
  make ~hotness:h ~coldpage:cp ~cold_confidence:cc ~relocate_all_small_pages:ra
    ~lazy_relocate:lz ()

let table2 =
  [
    (0, zgc);
    (1, zgc);
    (2, row ~h:false ~cp:false ~cc:0.0 ~ra:false ~lz:true);
    (3, row ~h:false ~cp:false ~cc:0.0 ~ra:true ~lz:false);
    (4, row ~h:false ~cp:false ~cc:0.0 ~ra:true ~lz:true);
    (5, row ~h:true ~cp:false ~cc:0.0 ~ra:false ~lz:false);
    (6, row ~h:true ~cp:false ~cc:0.5 ~ra:false ~lz:false);
    (7, row ~h:true ~cp:false ~cc:1.0 ~ra:false ~lz:false);
    (8, row ~h:true ~cp:false ~cc:0.0 ~ra:false ~lz:true);
    (9, row ~h:true ~cp:false ~cc:0.5 ~ra:false ~lz:true);
    (10, row ~h:true ~cp:false ~cc:1.0 ~ra:false ~lz:true);
    (11, row ~h:true ~cp:true ~cc:0.0 ~ra:false ~lz:false);
    (12, row ~h:true ~cp:true ~cc:0.5 ~ra:false ~lz:false);
    (13, row ~h:true ~cp:true ~cc:1.0 ~ra:false ~lz:false);
    (14, row ~h:true ~cp:true ~cc:0.0 ~ra:false ~lz:true);
    (15, row ~h:true ~cp:true ~cc:0.5 ~ra:false ~lz:true);
    (16, row ~h:true ~cp:true ~cc:1.0 ~ra:false ~lz:true);
    (17, row ~h:true ~cp:true ~cc:0.0 ~ra:true ~lz:false);
    (18, row ~h:true ~cp:true ~cc:0.0 ~ra:true ~lz:true);
  ]

let id_count = 19

let of_id n =
  match List.assoc_opt n table2 with
  | Some t -> t
  | None -> invalid_arg "Config.of_id: id must be in 0-18"

let equal a b =
  a.hotness = b.hotness && a.coldpage = b.coldpage
  && Float.equal a.cold_confidence b.cold_confidence
  && a.relocate_all_small_pages = b.relocate_all_small_pages
  && a.lazy_relocate = b.lazy_relocate
  && a.tier_capacity_pages = b.tier_capacity_pages
  && a.lat_far = b.lat_far
  && a.tier_promote = b.tier_promote

let to_string t =
  let parts =
    List.filter_map
      (fun x -> x)
      [
        (if t.hotness then Some "hot" else None);
        (if t.coldpage then Some "cp" else None);
        (if t.cold_confidence > 0.0 then
           Some (Printf.sprintf "cc%.1f" t.cold_confidence)
         else None);
        (if t.relocate_all_small_pages then Some "ra" else None);
        (if t.lazy_relocate then Some "lazy" else None);
        (* Tier parts appear only with tiering on, so every pre-tier
           configuration keeps its exact historical name. *)
        (if t.tier_capacity_pages > 0 then
           Some (Printf.sprintf "tier%d" t.tier_capacity_pages)
         else None);
        (if t.tier_capacity_pages > 0 && t.lat_far <> zgc.lat_far then
           Some (Printf.sprintf "far%d" t.lat_far)
         else None);
        (if t.tier_capacity_pages > 0 && not t.tier_promote then
           Some "nopromote"
         else None);
      ]
  in
  match parts with [] -> "zgc" | _ -> String.concat "+" parts

let pp fmt t = Format.pp_print_string fmt (to_string t)
