(** HCSGC tuning knobs (§3, §4.1) and the 19 benchmark configurations of
    Table 2.

    Knob semantics, quoting the paper:

    - [hotness] — record per-object hotness in the hotmap (a CAS per first
      touch per cycle).
    - [coldpage] — GC threads relocate cold objects to a separate
      thread-local target page.  Requires [hotness].
    - [cold_confidence] — weight of cold bytes in weighted-live-bytes EC
      selection, in [0, 1]; 0 degrades to ZGC's plain live bytes.  Requires
      [hotness] to have any effect (and Table 2 only sets it with hotness
      on).
    - [relocate_all_small_pages] — put every eligible small page in EC.
    - [lazy_relocate] — defer the GC threads' relocation pass to the start of
      the next GC cycle (Fig. 3), giving mutators the whole inter-cycle
      window to relocate objects in access order.

    Far-memory tiering knobs (not in the paper; the ROADMAP's CXL/NVM
    extension — cold pages demoted behind DRAM, hot data kept near):

    - [tier_capacity_pages] — far-tier capacity in small pages; [0]
      (default) disables tiering entirely, leaving every existing
      configuration byte-identical.  Requires [hotness]: demotion is driven
      by the hotmap.
    - [lat_far] — cycles for a demand load served by the far tier (replaces
      [lat_mem] for resident lines).  Only meaningful with tiering on.
    - [tier_promote] — promote a far page back to DRAM when the mutator
      touches it via the barrier path (default).  Off = demote-only, for
      measuring the cost of stranded pages. *)

type t = {
  hotness : bool;
  coldpage : bool;
  cold_confidence : float;
  relocate_all_small_pages : bool;
  lazy_relocate : bool;
  tier_capacity_pages : int;
  lat_far : int;
  tier_promote : bool;
}

val zgc : t
(** All knobs off: the unmodified-ZGC baseline behaviour (Config 0/1). *)

val make :
  ?hotness:bool ->
  ?coldpage:bool ->
  ?cold_confidence:float ->
  ?relocate_all_small_pages:bool ->
  ?lazy_relocate:bool ->
  ?tier_capacity_pages:int ->
  ?lat_far:int ->
  ?tier_promote:bool ->
  unit ->
  t
(** Build a configuration; all knobs default to off.
    @raise Invalid_argument if the combination is invalid (see {!validate}). *)

val validate : t -> (t, string) result
(** Check the dependency rules: [coldpage] requires [hotness];
    [cold_confidence] must be in [0, 1] and non-zero only with [hotness];
    [tier_capacity_pages] must be non-negative and positive only with
    [hotness]; [lat_far] must be positive. *)

val table2 : (int * t) list
(** The benchmark configurations of Table 2, as [(config_id, config)].
    Config 0 is the unmodified-ZGC baseline and Config 1 the modified build
    with all knobs off; both map to {!zgc} (the paper expects no significant
    difference between them, which our identical encoding makes exact). *)

val of_id : int -> t
(** [of_id n] is Table 2's Config [n].  @raise Invalid_argument if [n] is not
    in 0–18. *)

val id_count : int
(** 19. *)

val equal : t -> t -> bool

val to_string : t -> string
(** Compact knob listing, e.g. ["hot+cp+cc0.5+lazy"].  Tier parts
    ([tier64], [far1200], [nopromote]) appear only when tiering is on, so
    pre-tier configurations keep their historical names. *)

val pp : Format.formatter -> t -> unit
