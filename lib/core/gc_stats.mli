(** GC statistics, mirroring §4.2 "GC Statistics": GC cycles per run, small
    pages selected for evacuation per cycle (the paper reports the median
    over cycles, averaged over runs), plus relocation attribution
    (mutator vs GC threads) and heap-usage samples over time. *)

type t

type cycle_record = {
  cycle : int;  (** sequence number, 1-based *)
  small_pages_in_ec : int;
  medium_pages_in_ec : int;
  wall_at_start : int;  (** wall clock (cycles) when the GC cycle began *)
}

val create : unit -> t

val on_cycle_start : t -> wall:int -> int
(** Record a cycle start; returns the new cycle sequence number. *)

val on_ec_selected : t -> small:int -> medium:int -> unit
(** Record the EC size chosen in the current cycle. *)

val on_alloc : t -> bytes:int -> unit
(** Record an object allocation (cumulative bytes). *)

val on_relocate : t -> by_mutator:bool -> bytes:int -> unit
val on_page_freed : t -> unit
val on_mark : t -> unit
val on_hot_flag : t -> unit
val on_stw : t -> unit
val on_heap_sample : t -> wall:int -> used:int -> unit

val on_barrier : t -> slow:bool -> unit
(** Record a mutator barrier execution (handle or load barrier): [slow]
    when the slow path ran (bad colour, or the object sat on an in-EC
    page).  Feeds the telemetry counter samples. *)

val on_page_demoted : t -> unit
(** Record a cold page demoted to the far tier at sweep. *)

val on_page_promoted : t -> unit
(** Record a far page promoted back to DRAM on mutator access. *)

val cycles : t -> int
(** Completed-or-started GC cycles. *)

val cycle_records : t -> cycle_record list
(** Oldest first. *)

val median_small_pages_in_ec : t -> float
(** Median over cycles of small pages selected for evacuation (the per-run
    number the paper averages). 0 if no cycles ran. *)

val bytes_allocated : t -> int
(** Cumulative object bytes allocated over the run. *)

val objects_relocated_by_mutator : t -> int
val objects_relocated_by_gc : t -> int
val bytes_relocated : t -> int
val pages_freed : t -> int
val objects_marked : t -> int
val hot_flags : t -> int
val stw_pauses : t -> int

val barrier_fast_paths : t -> int
(** Mutator barriers that stayed on the no-extra-work fast path. *)

val barrier_slow_paths : t -> int
(** Mutator barriers that took the slow path (remap / mark / relocate). *)

val pages_demoted : t -> int
(** Cold pages demoted to the far tier over the run. *)

val pages_promoted : t -> int
(** Far pages promoted back to DRAM over the run. *)

val heap_samples : t -> (int * int) list
(** [(wall, used_bytes)] samples, oldest first. *)

val pp : Format.formatter -> t -> unit
