(** Structured GC event log — the analogue of ZGC's [-Xlog:gc*] output,
    which the paper extends to report per-cycle EC sizes (§4.2).

    The collector emits events through an optional listener; this module
    provides the event type, a bounded in-memory recorder, and ZGC-style
    one-line rendering.  Recording is off unless a listener is installed,
    so the default fast path pays nothing. *)

type pause = STW1 | STW2 | STW3

type event =
  | Cycle_start of { cycle : int; wall : int; heap_used : int }
  | Pause of { cycle : int; pause : pause; cost : int }
  | Mark_end of { cycle : int; marked_objects : int }
  | Ec_selected of { cycle : int; small : int; medium : int }
  | Relocation_deferred of { cycle : int; pages : int }
      (** LAZYRELOCATE handed the evacuation set to the mutators. *)
  | Page_freed of { cycle : int; page_id : int; bytes : int }
  | Cycle_end of { cycle : int; wall : int; heap_used : int }

type recorder

val recorder : ?capacity:int -> unit -> recorder
(** A bounded recorder (default capacity 4096 events; older events are
    dropped first). *)

val listen : recorder -> event -> unit
(** The listener to hand to {!Collector.create}. *)

val events : recorder -> event list
(** Recorded events, oldest first. *)

val count : recorder -> int
(** Events recorded (including any that were dropped). *)

val clear : recorder -> unit

val pp_event : Format.formatter -> event -> unit
(** One line per event, ZGC-log style: ["[gc] GC(3) Pause Mark Start 20000c"]. *)

val pp : Format.formatter -> recorder -> unit
(** Render every recorded event. *)
