(** Structured GC event log — the analogue of ZGC's [-Xlog:gc*] output,
    which the paper extends to report per-cycle EC sizes (§4.2).

    The collector emits events through an optional {!sink}; this module
    provides the event type, a bounded in-memory recorder, and ZGC-style
    one-line rendering.  Recording is off unless a sink is installed, so
    the default fast path pays nothing.

    Every event carries [wall], the simulated wall clock at emission (the
    collector's latest {!Collector.set_wall_hint}), so downstream consumers
    — notably {!Hcsgc_telemetry} — can place events on a timeline without a
    second callback channel. *)

type pause = STW1 | STW2 | STW3

type event =
  | Cycle_start of { cycle : int; wall : int; heap_used : int }
  | Pause of { cycle : int; pause : pause; cost : int; wall : int }
  | Mark_end of { cycle : int; marked_objects : int; wall : int }
  | Ec_selected of { cycle : int; small : int; medium : int; wall : int }
  | Relocation_deferred of { cycle : int; pages : int; wall : int }
      (** LAZYRELOCATE handed the evacuation set to the mutators. *)
  | Pages_demoted of { cycle : int; pages : int; wall : int }
      (** Cold pages demoted to the far-memory tier at sweep (only emitted
          with tiering on). *)
  | Page_freed of { cycle : int; page_id : int; bytes : int; wall : int }
  | Cycle_end of { cycle : int; wall : int; heap_used : int }

type sink = event -> unit
(** What {!Collector.create} consumes: one callback, however many
    consumers.  Compose consumers with {!tee} rather than growing the
    collector a second optional callback. *)

val null_sink : sink
(** Drops every event (the collector's default). *)

val is_null : sink -> bool
(** [is_null s] is true iff [s] is physically {!null_sink}.  Emitters use
    it to skip constructing event records nobody will see, keeping the
    no-sink path allocation-free. *)

val tee : sink list -> sink
(** Fan one event stream out to several sinks, called in list order.
    Delivery is all-or-nothing per sink, not per event: if a sink raises,
    the remaining sinks still receive the event, and the first exception
    raised is re-thrown (with its backtrace) once every sink has run.
    Later exceptions are dropped in favour of the first. *)

type recorder

val recorder : ?capacity:int -> unit -> recorder
(** A bounded recorder (default capacity 4096 events; older events are
    dropped first). *)

val listen : recorder -> event -> unit
(** Record one event; the oldest event is dropped when full. *)

val sink_of_recorder : recorder -> sink
(** [listen] partially applied — the sink to hand to {!Collector.create}
    (directly, or through {!tee}). *)

val events : recorder -> event list
(** Recorded events, oldest surviving first. *)

val count : recorder -> int
(** Total events ever recorded — {b including} events that have since been
    dropped from the bounded buffer, so [count r] may exceed
    [List.length (events r)].  Use {!dropped} for the difference. *)

val dropped : recorder -> int
(** Events evicted from the buffer so far ([count] minus the events still
    retrievable via {!events}). *)

val clear : recorder -> unit

val pause_name : pause -> string
(** ZGC's pause names: ["Pause Mark Start"] etc. *)

val pp_event : Format.formatter -> event -> unit
(** One line per event, ZGC-log style: ["[gc] GC(3) Pause Mark Start 20000c"]. *)

val pp : Format.formatter -> recorder -> unit
(** Render every recorded event; when events were dropped, a leading line
    notes the truncation. *)
