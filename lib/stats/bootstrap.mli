(** Bootstrap mean estimates with confidence intervals (§4.2).

    The paper resamples with replacement 10 000 times, takes the mean of
    each resample, and reports the mean of the bootstrap means with the
    2.5 / 97.5 percentiles as the 95 % confidence interval.  Two
    configurations differ significantly when their intervals do not
    overlap. *)

type estimate = {
  mean : float;  (** mean of the bootstrap means *)
  ci_lo : float;  (** 2.5th percentile *)
  ci_hi : float;  (** 97.5th percentile *)
  resamples : int;
}

val estimate :
  ?resamples:int -> ?confidence:float -> seed:int -> float array -> estimate
(** [estimate ~seed xs] bootstraps the mean of [xs].  Defaults: 10 000
    resamples, 95 % confidence.  Deterministic given [seed].
    @raise Invalid_argument on an empty sample or confidence outside (0,1). *)

val overlaps : estimate -> estimate -> bool
(** Whether two confidence intervals overlap (no significant difference). *)

val relative_to : baseline:estimate -> estimate -> float
(** [(x.mean − baseline.mean) / baseline.mean] — the paper's
    normalised-against-ZGC delta (negative = speedup). *)
