type boxplot = {
  q1 : float;
  median : float;
  q3 : float;
  iqr : float;
  whisker_lo : float;
  whisker_hi : float;
  mild_outliers : float list;
  extreme_outliers : float list;
}

let check xs = if Array.length xs = 0 then invalid_arg "Descriptive: empty sample"

let mean xs =
  check xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let sorted xs =
  let c = Array.copy xs in
  Array.sort compare c;
  c

let quantile xs p =
  check xs;
  if p < 0.0 || p > 1.0 then invalid_arg "Descriptive.quantile: p outside [0,1]";
  let s = sorted xs in
  let n = Array.length s in
  if n = 1 then s.(0)
  else begin
    let pos = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    (s.(lo) *. (1.0 -. frac)) +. (s.(hi) *. frac)
  end

let median xs = quantile xs 0.5

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let boxplot xs =
  check xs;
  let q1 = quantile xs 0.25 in
  let q3 = quantile xs 0.75 in
  let iqr = q3 -. q1 in
  let fence_lo = q1 -. (1.5 *. iqr) and fence_hi = q3 +. (1.5 *. iqr) in
  let extreme_lo = q1 -. (3.0 *. iqr) and extreme_hi = q3 +. (3.0 *. iqr) in
  let s = sorted xs in
  let inliers =
    Array.to_list s |> List.filter (fun x -> x >= fence_lo && x <= fence_hi)
  in
  let whisker_lo =
    match inliers with [] -> q1 | x :: _ -> x
  in
  let whisker_hi =
    match List.rev inliers with [] -> q3 | x :: _ -> x
  in
  let mild, extreme =
    Array.to_list s
    |> List.filter (fun x -> x < fence_lo || x > fence_hi)
    |> List.partition (fun x -> x >= extreme_lo && x <= extreme_hi)
  in
  {
    q1;
    median = median xs;
    q3;
    iqr;
    whisker_lo;
    whisker_hi;
    mild_outliers = mild;
    extreme_outliers = extreme;
  }

let min xs =
  check xs;
  Array.fold_left Stdlib.min xs.(0) xs

let max xs =
  check xs;
  Array.fold_left Stdlib.max xs.(0) xs
