module Rng = Hcsgc_util.Rng

type estimate = {
  mean : float;
  ci_lo : float;
  ci_hi : float;
  resamples : int;
}

let estimate ?(resamples = 10_000) ?(confidence = 0.95) ~seed xs =
  if Array.length xs = 0 then invalid_arg "Bootstrap.estimate: empty sample";
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Bootstrap.estimate: confidence outside (0,1)";
  let n = Array.length xs in
  let rng = Rng.create seed in
  let means = Array.make resamples 0.0 in
  for r = 0 to resamples - 1 do
    let sum = ref 0.0 in
    for _ = 1 to n do
      sum := !sum +. xs.(Rng.int rng n)
    done;
    means.(r) <- !sum /. float_of_int n
  done;
  let alpha = (1.0 -. confidence) /. 2.0 in
  {
    mean = Descriptive.mean means;
    ci_lo = Descriptive.quantile means alpha;
    ci_hi = Descriptive.quantile means (1.0 -. alpha);
    resamples;
  }

let overlaps a b = a.ci_lo <= b.ci_hi && b.ci_lo <= a.ci_hi

let relative_to ~baseline e = (e.mean -. baseline.mean) /. baseline.mean
