let table fmt ~headers ~rows =
  let ncols = List.length headers in
  let pad row =
    let n = List.length row in
    if n >= ncols then row else row @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.map pad rows in
  let widths = Array.of_list (List.map String.length headers) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let print_row cells =
    List.iteri
      (fun i cell ->
        if i > 0 then Format.pp_print_string fmt "  ";
        Format.fprintf fmt "%-*s" widths.(i) cell)
      cells;
    Format.pp_print_newline fmt ()
  in
  print_row headers;
  let rule =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  Format.pp_print_string fmt rule;
  Format.pp_print_newline fmt ();
  List.iter print_row rows

let boxplot_line (b : Descriptive.boxplot) =
  Printf.sprintf "%.3g | %.3g | %.3g  (whisk %.3g..%.3g, %d mild, %d extreme)"
    b.Descriptive.q1 b.Descriptive.median b.Descriptive.q3
    b.Descriptive.whisker_lo b.Descriptive.whisker_hi
    (List.length b.Descriptive.mild_outliers)
    (List.length b.Descriptive.extreme_outliers)

let estimate_cell (e : Bootstrap.estimate) =
  Printf.sprintf "%.4g [%.4g, %.4g]" e.Bootstrap.mean e.Bootstrap.ci_lo
    e.Bootstrap.ci_hi

let pct x = Printf.sprintf "%+.2f%%" (100.0 *. x)

let si x =
  let ax = Float.abs x in
  if ax >= 1e9 then Printf.sprintf "%.2fG" (x /. 1e9)
  else if ax >= 1e6 then Printf.sprintf "%.2fM" (x /. 1e6)
  else if ax >= 1e3 then Printf.sprintf "%.2fk" (x /. 1e3)
  else Printf.sprintf "%.0f" x
