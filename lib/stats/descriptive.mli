(** Descriptive statistics for the paper's box plots (§4.2).

    Quartile convention follows the paper's description (Tukey box plots):
    Q1/Q3 split off the lowest/highest 25 %; outliers fall outside
    [Q1 − 1.5·IQR, Q3 + 1.5·IQR]; extreme outliers outside
    [Q1 − 3·IQR, Q3 + 3·IQR]; whiskers reach the furthest non-outliers. *)

type boxplot = {
  q1 : float;
  median : float;
  q3 : float;
  iqr : float;
  whisker_lo : float;
  whisker_hi : float;
  mild_outliers : float list;
  extreme_outliers : float list;
}

val mean : float array -> float
(** @raise Invalid_argument on an empty array. *)

val median : float array -> float
(** @raise Invalid_argument on an empty array. *)

val quantile : float array -> float -> float
(** [quantile xs p] with linear interpolation, [p] in [0, 1].
    @raise Invalid_argument on an empty array or p outside [0, 1]. *)

val stddev : float array -> float
(** Sample standard deviation; 0 for arrays shorter than 2. *)

val boxplot : float array -> boxplot
(** @raise Invalid_argument on an empty array. *)

val min : float array -> float
val max : float array -> float
