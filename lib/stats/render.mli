(** Plain-text rendering of the paper's figure panels: aligned tables and
    one-line box-plot summaries. *)

val table :
  Format.formatter -> headers:string list -> rows:string list list -> unit
(** Render an aligned table with a header rule.  Rows shorter than the
    header are padded with empty cells. *)

val boxplot_line : Descriptive.boxplot -> string
(** ["q1 .. med .. q3 (whiskers lo..hi, m mild, e extreme)"]. *)

val estimate_cell : Bootstrap.estimate -> string
(** ["mean [lo, hi]"]. *)

val pct : float -> string
(** Signed percentage with two decimals, e.g. [-30.25%]. *)

val si : float -> string
(** Human-scaled number (k/M/G). *)
