module Vm = Hcsgc_runtime.Vm
module Collector = Hcsgc_core.Collector
module Config = Hcsgc_core.Config
module Gc_stats = Hcsgc_core.Gc_stats
module Heap = Hcsgc_heap.Heap
module Heap_obj = Hcsgc_heap.Heap_obj
module Page = Hcsgc_heap.Page
module Addr = Hcsgc_heap.Addr
module Layout = Hcsgc_heap.Layout
module Fwd_table = Hcsgc_heap.Fwd_table
module Rng = Hcsgc_util.Rng
module Invariants = Hcsgc_verify.Invariants

type action =
  | Alloc of { slot : int }
  | Link of { src_slot : int; field : int; dst_slot : int }
  | Unlink of { slot : int; field : int }
  | Write_word of { slot : int; word : int; value : int }
  | Read_path of { slot : int; fields : int list }
  | Drop of { slot : int }
  | Churn of { count : int }
  | Force_gc
  | Corrupt_color of { slot : int; field : int }
  | Corrupt_fwd of { slot : int }
  | Corrupt_tier

type failure = {
  action_index : int;
  action : action option;
  message : string;
}

type outcome = Pass of { gc_cycles : int } | Fail of failure

type counterexample = {
  seed : int;
  ops : int;
  slots : int;
  kept : int list;
  actions : action list;
  failure : failure;
}

exception Mismatch of string

let mismatchf fmt = Printf.ksprintf (fun m -> raise (Mismatch m)) fmt

(* Same scaled geometry and object shape as the historical model fuzz: a
   16 KB granule over a 1 MB heap gives enough pages for EC selection to
   bite at a few thousand operations. *)
let layout = Layout.scaled ~small_page:(16 * 1024)
let max_heap = 1024 * 1024
let nrefs_per_obj = 3
let nwords_per_obj = 2

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let generate ~seed ~ops ~slots =
  let rng = Rng.create seed in
  Array.init ops (fun _ ->
      match Rng.int rng 100 with
      | r when r < 25 -> Alloc { slot = Rng.int rng slots }
      | r when r < 40 ->
          let src_slot = Rng.int rng slots in
          let field = Rng.int rng nrefs_per_obj in
          let dst_slot = Rng.int rng slots in
          Link { src_slot; field; dst_slot }
      | r when r < 48 ->
          let slot = Rng.int rng slots in
          let field = Rng.int rng nrefs_per_obj in
          Unlink { slot; field }
      | r when r < 56 ->
          let slot = Rng.int rng slots in
          let word = 1 + Rng.int rng (nwords_per_obj - 1) in
          let value = Rng.int rng 1_000_000 in
          Write_word { slot; word; value }
      | r when r < 64 -> Drop { slot = Rng.int rng slots }
      | r when r < 72 -> Churn { count = 6 }
      | r when r < 74 -> Force_gc
      | _ ->
          let slot = Rng.int rng slots in
          let n = Rng.int rng 4 in
          let fields = ref [] in
          for _ = 1 to n do
            fields := Rng.int rng nrefs_per_obj :: !fields
          done;
          Read_path { slot; fields = !fields })

(* ------------------------------------------------------------------ *)
(* Execution against the mirror model                                  *)
(* ------------------------------------------------------------------ *)

type mirror = {
  table : int option array;
  refs : (int, int option array) Hashtbl.t;
  words : (int, int array) Hashtbl.t;
  mutable next_id : int;
}

(* [cur_m] is the mutator thread issuing the current action: the driver
   deals actions round-robin over the VM's mutators, so a multi-mutator
   fuzz exercises per-thread clocks, bump targets and (sharded) epoch
   logs without changing the logical action sequence. *)
type st = {
  vm : Vm.t;
  root : Heap_obj.t;
  m : mirror;
  slots : int;
  mutable cur_m : int;
}

let norm n bound = ((n mod bound) + bound) mod bound

let load_slot st slot =
  match (Vm.load_ref ~m:st.cur_m st.vm st.root slot, st.m.table.(slot)) with
  | None, None -> None
  | Some obj, Some id -> Some (id, obj)
  | Some _, None -> mismatchf "table slot %d: managed set, mirror empty" slot
  | None, Some id -> mismatchf "table slot %d: mirror has #%d, managed empty" slot id

let check_words st id obj =
  let mwords = Hashtbl.find st.m.words id in
  for w = 0 to nwords_per_obj - 1 do
    let got = Vm.load_word ~m:st.cur_m st.vm obj w in
    if got <> mwords.(w) then
      mismatchf "object %d word %d: mirror %d, managed %d" id w mwords.(w) got
  done

let exec st = function
  | Alloc { slot } ->
      let slot = norm slot st.slots in
      let obj =
        Vm.alloc ~m:st.cur_m st.vm ~nrefs:nrefs_per_obj
          ~nwords:nwords_per_obj
      in
      let id = st.m.next_id in
      st.m.next_id <- id + 1;
      Vm.store_word ~m:st.cur_m st.vm obj 0 id;
      Vm.store_ref ~m:st.cur_m st.vm st.root slot (Some obj);
      st.m.table.(slot) <- Some id;
      Hashtbl.replace st.m.refs id (Array.make nrefs_per_obj None);
      Hashtbl.replace st.m.words id
        (Array.init nwords_per_obj (fun i -> if i = 0 then id else 0))
  | Link { src_slot; field; dst_slot } -> (
      let src_slot = norm src_slot st.slots in
      let dst_slot = norm dst_slot st.slots in
      let field = norm field nrefs_per_obj in
      match (load_slot st src_slot, load_slot st dst_slot) with
      | Some (ida, a), Some (idb, b) ->
          Vm.store_ref ~m:st.cur_m st.vm a field (Some b);
          (Hashtbl.find st.m.refs ida).(field) <- Some idb
      | _ -> ())
  | Unlink { slot; field } -> (
      let slot = norm slot st.slots in
      let field = norm field nrefs_per_obj in
      match load_slot st slot with
      | Some (id, obj) ->
          Vm.store_ref ~m:st.cur_m st.vm obj field None;
          (Hashtbl.find st.m.refs id).(field) <- None
      | None -> ())
  | Write_word { slot; word; value } -> (
      let slot = norm slot st.slots in
      let word = 1 + norm word (nwords_per_obj - 1) in
      match load_slot st slot with
      | Some (id, obj) ->
          Vm.store_word ~m:st.cur_m st.vm obj word value;
          (Hashtbl.find st.m.words id).(word) <- value
      | None -> ())
  | Read_path { slot; fields } -> (
      let slot = norm slot st.slots in
      match load_slot st slot with
      | None -> ()
      | Some (id0, obj0) ->
          let rec walk id obj = function
            | [] -> check_words st id obj
            | f :: rest -> (
                check_words st id obj;
                let f = norm f nrefs_per_obj in
                match
                  ( Vm.load_ref ~m:st.cur_m st.vm obj f,
                    (Hashtbl.find st.m.refs id).(f) )
                with
                | None, None -> ()
                | Some o', Some id' -> walk id' o' rest
                | Some _, None ->
                    mismatchf "object %d field %d: managed set, mirror null" id f
                | None, Some id' ->
                    mismatchf "object %d field %d: mirror has %d, managed null"
                      id f id')
          in
          walk id0 obj0 fields)
  | Drop { slot } ->
      let slot = norm slot st.slots in
      Vm.store_ref ~m:st.cur_m st.vm st.root slot None;
      st.m.table.(slot) <- None
  | Churn { count } ->
      for _ = 1 to max 0 count do
        ignore (Vm.alloc ~m:st.cur_m st.vm ~nrefs:0 ~nwords:12)
      done
  | Force_gc -> Vm.full_gc st.vm
  | Corrupt_color { slot; field } -> (
      let slot = norm slot st.slots in
      let field = norm field nrefs_per_obj in
      match Vm.load_ref ~m:st.cur_m st.vm st.root slot with
      | None -> ()
      | Some obj ->
          let ptr = Heap_obj.get_ref obj field in
          if not (Addr.is_null ptr) then
            (* Both mark bits set at once: no colour is ever encoded that
               way, so the sanitizer's walk must flag the slot. *)
            Heap_obj.set_ref obj field
              (Addr.retint Addr.M0 ptr lor Addr.retint Addr.M1 ptr))
  | Corrupt_fwd { slot = _ } -> (
      (* Forge a dangling forwarding entry on the root table's page.  The
         offset is word-unaligned, so it can never collide with a real
         relocation, and nothing ever retires an active page's table: the
         damage persists to every subsequent phase edge. *)
      let heap = Vm.heap st.vm in
      match Heap.page_of_addr heap st.root.Heap_obj.addr with
      | None -> ()
      | Some page ->
          ignore (Fwd_table.claim page.Page.fwd ~offset:4 ~new_addr:0xdead0))
  | Corrupt_tier -> (
      (* Flip the root table's page tier bit behind the accounting: the
         page bit, the heap far-byte total and the machine tier residency
         set fall out of lock-step, so the sanitizer's far-sum round-trip
         must flag it at the next phase edge. *)
      let heap = Vm.heap st.vm in
      match Heap.page_of_addr heap st.root.Heap_obj.addr with
      | None -> ()
      | Some page ->
          page.Page.tier <-
            (if page.Page.tier = Page.Dram then Page.Far else Page.Dram))

let final_validation st =
  st.cur_m <- 0;
  let seen = Hashtbl.create 64 in
  let rec validate id obj =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      check_words st id obj;
      let mrefs = Hashtbl.find st.m.refs id in
      for f = 0 to nrefs_per_obj - 1 do
        match (Vm.load_ref ~m:st.cur_m st.vm obj f, mrefs.(f)) with
        | None, None -> ()
        | Some o', Some id' -> validate id' o'
        | Some _, None ->
            mismatchf "final: object %d field %d managed set, mirror null" id f
        | None, Some id' ->
            mismatchf "final: object %d field %d mirror has %d, managed null"
              id f id'
      done
    end
  in
  Array.iteri
    (fun s id_opt ->
      match (id_opt, Vm.load_ref ~m:st.cur_m st.vm st.root s) with
      | Some id, Some obj -> validate id obj
      | None, None -> ()
      | Some id, None -> mismatchf "final: table slot %d lost object %d" s id
      | None, Some _ -> mismatchf "final: table slot %d has a ghost object" s)
    st.m.table

let message_of_exn = function
  | Mismatch m -> "mirror mismatch: " ^ m
  | e -> Printexc.to_string e

let run ?(verify = true) ?(oracle = true) ?(mutators = 1)
    ?(shard_domains = 0) ~config ~slots actions =
  let vm = Vm.create ~layout ~mutators ~shard_domains ~config ~max_heap () in
  if verify then Invariants.install ~oracle (Vm.collector vm);
  let root = Vm.alloc vm ~nrefs:slots ~nwords:0 in
  Vm.add_root vm root;
  let st =
    {
      vm;
      root;
      m =
        {
          table = Array.make slots None;
          refs = Hashtbl.create 256;
          words = Hashtbl.create 256;
          next_id = 0;
        };
      slots;
      cur_m = 0;
    }
  in
  let current = ref (-1, None) in
  try
    List.iteri
      (fun i a ->
        current := (i, Some a);
        st.cur_m <- i mod mutators;
        exec st a)
      actions;
    current := (List.length actions, None);
    final_validation st;
    Vm.finish vm;
    if verify then begin
      (match Collector.verify (Vm.collector vm) with
      | Ok () -> ()
      | Error errors -> raise (Mismatch (String.concat "; " errors)));
      if Collector.cycle_number (Vm.collector vm) > 0 then
        Invariants.check_exn (Vm.collector vm) ~edge:Collector.Cycle_done
    end;
    Pass { gc_cycles = Gc_stats.cycles (Vm.gc_stats vm) }
  with e ->
    let action_index, action = !current in
    Fail { action_index; action; message = message_of_exn e }

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

let remove_block l start len =
  List.filteri (fun j _ -> j < start || j >= start + len) l

let shrink ?(budget = 400) ~fails indexed =
  let runs = ref 0 in
  let try_fails l =
    if !runs >= budget then false
    else begin
      incr runs;
      fails (List.map snd l)
    end
  in
  let current = ref indexed in
  let chunk = ref (max 1 (List.length indexed / 2)) in
  let finished = ref (indexed = []) in
  while not !finished do
    let removed = ref false in
    let i = ref 0 in
    while !i * !chunk < List.length !current do
      let cand = remove_block !current (!i * !chunk) !chunk in
      if List.length cand < List.length !current && try_fails cand then begin
        current := cand;
        removed := true
        (* the block at position i now holds fresh actions: retry it *)
      end
      else incr i
    done;
    if (!chunk = 1 && not !removed) || !runs >= budget then finished := true
    else chunk := max 1 (!chunk / 2)
  done;
  !current

let splice inject base =
  let inj =
    List.stable_sort (fun (a, (_ : action)) (b, _) -> compare a b) inject
  in
  let rec go i base inj =
    match inj with
    | (p, a) :: rest when p <= i || base = [] -> a :: go i base rest
    | _ -> (
        match base with [] -> [] | b :: tl -> b :: go (i + 1) tl inj)
  in
  go 0 base inj

let check_seed ?(verify = true) ?(oracle = true) ?(mutators = 1)
    ?(shard_domains = 0) ?(shrink_budget = 400) ?(inject = []) ~config
    ~slots ~ops ~seed () =
  let base = Array.to_list (generate ~seed ~ops ~slots) in
  let all = splice inject base in
  let indexed = List.mapi (fun i a -> (i, a)) all in
  let run = run ~verify ~oracle ~mutators ~shard_domains ~config ~slots in
  match run all with
  | Pass _ -> None
  | Fail first ->
      let fails l = match run l with Fail _ -> true | Pass _ -> false in
      let minimal = shrink ~budget:shrink_budget ~fails indexed in
      let actions = List.map snd minimal in
      let failure =
        match run actions with
        | Fail f -> f
        | Pass _ -> first (* shrink raced the budget; keep the original *)
      in
      Some
        { seed; ops; slots; kept = List.map fst minimal; actions; failure }

let replay ?(verify = true) ?(oracle = true) ?(mutators = 1)
    ?(shard_domains = 0) ~config (cex : counterexample) =
  run ~verify ~oracle ~mutators ~shard_domains ~config ~slots:cex.slots
    cex.actions

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_action fmt = function
  | Alloc { slot } -> Format.fprintf fmt "Alloc{slot=%d}" slot
  | Link { src_slot; field; dst_slot } ->
      Format.fprintf fmt "Link{src=%d;field=%d;dst=%d}" src_slot field dst_slot
  | Unlink { slot; field } ->
      Format.fprintf fmt "Unlink{slot=%d;field=%d}" slot field
  | Write_word { slot; word; value } ->
      Format.fprintf fmt "Write_word{slot=%d;word=%d;value=%d}" slot word value
  | Read_path { slot; fields } ->
      Format.fprintf fmt "Read_path{slot=%d;fields=[%s]}" slot
        (String.concat ";" (List.map string_of_int fields))
  | Drop { slot } -> Format.fprintf fmt "Drop{slot=%d}" slot
  | Churn { count } -> Format.fprintf fmt "Churn{count=%d}" count
  | Force_gc -> Format.fprintf fmt "Force_gc"
  | Corrupt_color { slot; field } ->
      Format.fprintf fmt "Corrupt_color{slot=%d;field=%d}" slot field
  | Corrupt_fwd { slot } -> Format.fprintf fmt "Corrupt_fwd{slot=%d}" slot
  | Corrupt_tier -> Format.fprintf fmt "Corrupt_tier"

let pp_failure fmt { action_index; action; message } =
  match action with
  | Some a ->
      Format.fprintf fmt "action %d (%a): %s" action_index pp_action a message
  | None -> Format.fprintf fmt "end-of-run validation: %s" message

let pp_counterexample fmt cex =
  Format.fprintf fmt "fuzz counterexample: seed=%d ops=%d slots=%d@." cex.seed
    cex.ops cex.slots;
  Format.fprintf fmt "kept indices: [%s]@."
    (String.concat ";" (List.map string_of_int cex.kept));
  Format.fprintf fmt "minimal actions (%d):@." (List.length cex.actions);
  List.iteri
    (fun i a -> Format.fprintf fmt "  %3d: %a@." i pp_action a)
    cex.actions;
  Format.fprintf fmt "failure: %a@." pp_failure cex.failure
