(** Phase-boundary heap sanitizer.

    A full-heap walker invoked at the four {!Collector.phase_edge}s of every
    GC cycle, where the heap is quiescent and each invariant has a sharp
    truth value.  Everything here is {e read-only}: a verified run is
    byte-identical (results, traces, costs) to an unverified one.

    What is checked, and when:

    - {b always}: page-table mapping round-trips; object registration
      matches addresses and stays under the bump pointer; per-page
      [live_bytes]/[live_objects] equal the sum over livemap bits (exactly
      on [Active] pages, as an upper bound on [In_ec] snapshots); [Active]
      pages have empty forwarding tables; every forwarding entry resolves to
      a registered object that fits both its source slot and destination
      page; freed-but-unretired pages are unmapped, indexed for
      stale-pointer remapping, and forward {e every} live bit; the in-EC
      page population matches {!Collector.pending_relocation_pages}; the
      good colour and phase match the edge; and the object graph reachable
      from the roots is well formed — colours are valid and good-coloured
      slots resolve {e directly} (the to-space invariant behind the load
      barrier's fast path).
    - {b at [Stw1_done]}: every root is marked, off in-EC pages.
    - {b at [Mark_done]}: no in-EC page survives; every reachable slot has
      been healed to the good colour; every reachable pre-watermark object
      is in the livemap; the hotmap is a subset of the livemap and
      [hot_bytes] equals the sum over hot bits.
    - {b at [Cycle_done]}: phase is [Idle]; without LAZYRELOCATE no in-EC
      page remains.

    {!install} wires these checks (plus, optionally, the {!Oracle} diff at
    [Mark_done]) into a collector's phase hook; a failure raises
    {!Violation} with every message collected during the walk. *)

module Collector = Hcsgc_core.Collector

exception
  Violation of {
    edge : Collector.phase_edge;
    cycle : int;
    errors : string list;
  }

val check :
  Collector.t -> edge:Collector.phase_edge -> (unit, string list) result
(** Run every invariant valid at [edge].  At most {!max_errors} messages are
    collected before the walk gives up (a corrupted heap can otherwise
    produce one error per object). *)

val check_exn : Collector.t -> edge:Collector.phase_edge -> unit
(** @raise Violation when {!check} returns [Error]. *)

val max_errors : int
(** Cap on collected messages per check (the count of further suppressed
    errors is appended as a final message). *)

val install : ?oracle:bool -> Collector.t -> unit
(** Install the sanitizer as the collector's phase hook: {!check_exn} at
    every edge and — when [oracle] is [true], the default — {!Oracle.check}
    at [Mark_done].  Replaces any previously installed hook. *)

val uninstall : Collector.t -> unit
