module Collector = Hcsgc_core.Collector
module Config = Hcsgc_core.Config
module Heap = Hcsgc_heap.Heap
module Heap_obj = Hcsgc_heap.Heap_obj
module Page = Hcsgc_heap.Page
module Addr = Hcsgc_heap.Addr
module Layout = Hcsgc_heap.Layout
module Fwd_table = Hcsgc_heap.Fwd_table
module Bitmap = Hcsgc_util.Bitmap

exception
  Violation of {
    edge : Collector.phase_edge;
    cycle : int;
    errors : string list;
  }

let () =
  Printexc.register_printer (function
    | Violation { edge; cycle; errors } ->
        Some
          (Format.asprintf
             "heap invariant violation at %s of cycle %d (%d errors):@.%a"
             (Collector.phase_edge_name edge)
             cycle (List.length errors)
             (Format.pp_print_list ~pp_sep:Format.pp_print_newline
                (fun fmt e -> Format.fprintf fmt "  - %s" e))
             errors)
    | _ -> None)

let max_errors = 25

(* Livemap/hotmap bit index -> byte offset factor; must match Page.bit_of,
   which hard-codes the 8-byte word. *)
let bit_bytes = 8

type ctx = {
  col : Collector.t;
  edge : Collector.phase_edge;
  mutable errors : string list;  (* newest first *)
  mutable n_errors : int;  (* including suppressed ones *)
}

let err ctx fmt =
  Printf.ksprintf
    (fun m ->
      ctx.n_errors <- ctx.n_errors + 1;
      if ctx.n_errors <= max_errors then ctx.errors <- m :: ctx.errors)
    fmt

(* ------------------------------------------------------------------ *)
(* Colour / phase state machine                                        *)
(* ------------------------------------------------------------------ *)

let check_state ctx =
  let edge_name = Collector.phase_edge_name ctx.edge in
  let good = Collector.good_color ctx.col in
  (match (ctx.edge, good) with
  | (Collector.Stw1_done | Collector.Mark_done), (Addr.M0 | Addr.M1) -> ()
  | (Collector.Stw1_done | Collector.Mark_done), Addr.R ->
      err ctx "good colour is R at %s (expected a mark colour)" edge_name
  | (Collector.Stw3_done | Collector.Cycle_done), Addr.R -> ()
  | (Collector.Stw3_done | Collector.Cycle_done), c ->
      err ctx "good colour is %s at %s (expected R)" (Addr.color_to_string c)
        edge_name);
  match (ctx.edge, Collector.phase ctx.col) with
  | (Collector.Stw1_done | Collector.Mark_done), Collector.Marking -> ()
  | (Collector.Stw1_done | Collector.Mark_done), _ ->
      err ctx "phase is not Marking at %s" edge_name
  | Collector.Cycle_done, Collector.Idle -> ()
  | Collector.Cycle_done, _ -> err ctx "phase is not Idle at cycle-done"
  | Collector.Stw3_done, _ -> ()

(* ------------------------------------------------------------------ *)
(* Forwarding entries                                                  *)
(* ------------------------------------------------------------------ *)

(* A forwarding entry must name a real source slot and chase (read-only) to
   a registered object whose size fits where the entry says it came from.
   [allow_dead_chain] tolerates chains whose object died after relocation
   and whose destination page was then itself relocated and freed — legal
   on stale tables (nothing reachable routes through a dead object's
   chain; the reachable walk separately enforces that), but corruption on
   the in-flight cycle's tables, whose targets cannot have been freed. *)
let check_fwd_entry ?(allow_dead_chain = false) ctx (src : Page.t) ~offset
    ~new_addr =
  if offset < 0 || offset >= src.Page.size then
    err ctx "page #%d forwarding entry at offset %d outside the page"
      src.Page.id offset
  else if offset mod bit_bytes <> 0 then
    err ctx "page #%d forwarding entry at unaligned offset %d" src.Page.id
      offset
  else
    match Oracle.resolve_ro ctx.col new_addr with
    | Error e when e.Oracle.dead_chain && allow_dead_chain -> ()
    | Error e ->
        err ctx "page #%d forwarding entry %d->0x%x dangles: %s" src.Page.id
          offset new_addr e.Oracle.msg
    | Ok obj ->
        if offset + obj.Heap_obj.size > src.Page.size then
          err ctx
            "page #%d forwarding entry %d->0x%x: object #%d (%d bytes) could \
             not have fit its source slot"
            src.Page.id offset new_addr obj.Heap_obj.id obj.Heap_obj.size

(* ------------------------------------------------------------------ *)
(* Pages: structure, accounting, livemap, hotmap                       *)
(* ------------------------------------------------------------------ *)

let check_pages ctx =
  let heap = Collector.heap ctx.col in
  let lay = Heap.layout heap in
  let granule = Layout.granule lay in
  let ids_issued = Heap.obj_ids_issued heap in
  let used = ref 0 in
  let in_ec = ref 0 in
  Heap.iter_pages heap (fun page ->
      used := !used + page.Page.size;
      if page.Page.state = Page.In_ec then incr in_ec;
      if page.Page.start mod granule <> 0 then
        err ctx "page #%d start 0x%x is not granule-aligned" page.Page.id
          page.Page.start;
      (match Heap.page_of_addr heap page.Page.start with
      | Some p when p == page -> ()
      | _ -> err ctx "page #%d is not mapped at its own start" page.Page.id);
      (match Heap.page_of_addr heap (page.Page.start + page.Page.size - 1) with
      | Some p when p == page -> ()
      | _ -> err ctx "page #%d is not mapped at its last byte" page.Page.id);
      if page.Page.top < 0 || page.Page.top > page.Page.size then
        err ctx "page #%d bump pointer %d outside [0, %d]" page.Page.id
          page.Page.top page.Page.size;
      Hashtbl.iter
        (fun offset (obj : Heap_obj.t) ->
          if obj.Heap_obj.addr <> page.Page.start + offset then
            err ctx
              "object #%d registered at offset %d of page #%d but addr=0x%x"
              obj.Heap_obj.id offset page.Page.id obj.Heap_obj.addr;
          if offset mod bit_bytes <> 0 then
            err ctx "object #%d at unaligned offset %d on page #%d"
              obj.Heap_obj.id offset page.Page.id;
          if
            obj.Heap_obj.addr + obj.Heap_obj.size
            > page.Page.start + page.Page.top
          then
            err ctx "object #%d extends past the bump pointer of page #%d"
              obj.Heap_obj.id page.Page.id;
          if obj.Heap_obj.id >= ids_issued then
            err ctx "object #%d on page #%d exceeds the issued-id watermark %d"
              obj.Heap_obj.id page.Page.id ids_issued)
        page.Page.objects;
      (* Livemap vs object registration vs byte accounting. *)
      let live_bytes = ref 0 in
      let live_objects = ref 0 in
      let orphan_bits = ref 0 in
      Bitmap.iter_set page.Page.livemap (fun bit ->
          match Page.find_object page ~offset:(bit * bit_bytes) with
          | Some obj ->
              live_bytes := !live_bytes + obj.Heap_obj.size;
              incr live_objects
          | None ->
              incr orphan_bits;
              if Fwd_table.find page.Page.fwd ~offset:(bit * bit_bytes) = None
              then
                err ctx
                  "page #%d live bit %d has neither an object nor a \
                   forwarding entry"
                  page.Page.id bit);
      (match page.Page.state with
      | Page.Active ->
          if !orphan_bits > 0 then
            err ctx "active page #%d has %d live bits without objects"
              page.Page.id !orphan_bits;
          if !live_bytes <> page.Page.live_bytes then
            err ctx "page #%d live_bytes=%d but live objects sum to %d"
              page.Page.id page.Page.live_bytes !live_bytes;
          if !live_objects <> page.Page.live_objects then
            err ctx "page #%d live_objects=%d but livemap covers %d objects"
              page.Page.id page.Page.live_objects !live_objects;
          if Fwd_table.entries page.Page.fwd <> 0 then
            err ctx "active page #%d has %d forwarding entries" page.Page.id
              (Fwd_table.entries page.Page.fwd)
      | Page.In_ec ->
          (* The livemap is a frozen snapshot; evacuated objects leave it. *)
          if !live_bytes > page.Page.live_bytes then
            err ctx
              "in-ec page #%d: remaining live objects sum to %d, above the \
               frozen live_bytes=%d"
              page.Page.id !live_bytes page.Page.live_bytes
      | Page.Freed -> assert false (* iter_pages skips freed pages *));
      (* Hotmap: only sharp at mark end, where every hot flag was paired
         with a mark on the same (unmoved) object. *)
      if ctx.edge = Collector.Mark_done && page.Page.state = Page.Active then begin
        let hot_bytes = ref 0 in
        Bitmap.iter_set page.Page.hot_cur (fun bit ->
            if not (Bitmap.get page.Page.livemap bit) then
              err ctx "page #%d hot bit %d is not in the livemap at mark-done"
                page.Page.id bit
            else
              match Page.find_object page ~offset:(bit * bit_bytes) with
              | Some obj -> hot_bytes := !hot_bytes + obj.Heap_obj.size
              | None -> ());
        if !hot_bytes <> page.Page.hot_bytes then
          err ctx "page #%d hot_bytes=%d but hot objects sum to %d"
            page.Page.id page.Page.hot_bytes !hot_bytes
      end;
      Fwd_table.iter page.Page.fwd (fun ~offset ~new_addr ->
          check_fwd_entry ctx page ~offset ~new_addr));
  if !used <> Heap.used_bytes heap then
    err ctx "heap reports used_bytes=%d but pages sum to %d"
      (Heap.used_bytes heap) !used;
  (* EC population bookkeeping. *)
  let pending = Collector.pending_relocation_pages ctx.col in
  if !in_ec <> pending then
    err ctx "%d pages are in-ec but the collector tracks %d pending" !in_ec
      pending;
  if ctx.edge = Collector.Mark_done && !in_ec > 0 then
    err ctx "%d in-ec pages survive at mark-done (relocation must drain first)"
      !in_ec;
  if
    ctx.edge = Collector.Cycle_done
    && (not (Collector.config ctx.col).Config.lazy_relocate)
    && !in_ec > 0
  then err ctx "%d in-ec pages remain at cycle-done without LAZYRELOCATE" !in_ec

(* ------------------------------------------------------------------ *)
(* Freed-but-unretired pages (live forwarding tables)                  *)
(* ------------------------------------------------------------------ *)

let check_stale_fwd_pages ctx =
  let heap = Collector.heap ctx.col in
  let granule = Layout.granule (Heap.layout heap) in
  Collector.iter_stale_fwd_pages ctx.col (fun page ->
      if page.Page.state <> Page.Freed then
        err ctx "page #%d awaits forwarding retirement but is not freed"
          page.Page.id;
      let first = page.Page.start / granule in
      let last = (page.Page.start + page.Page.size - 1) / granule in
      for g = first to last do
        (match Heap.page_of_addr heap (g * granule) with
        | Some p ->
            err ctx "freed page #%d granule %d already remapped to page #%d"
              page.Page.id g p.Page.id
        | None -> ());
        match Collector.stale_fwd_page_at ctx.col ~addr:(g * granule) with
        | Some p when p == page -> ()
        | _ ->
            err ctx
              "freed page #%d granule %d is not indexed for stale-pointer \
               remapping"
              page.Page.id g
      done;
      (* Release requires every live object to have been copied out. *)
      Bitmap.iter_set page.Page.livemap (fun bit ->
          if Fwd_table.find page.Page.fwd ~offset:(bit * bit_bytes) = None then
            err ctx "freed page #%d live bit %d has no forwarding entry"
              page.Page.id bit);
      Fwd_table.iter page.Page.fwd (fun ~offset ~new_addr ->
          check_fwd_entry ~allow_dead_chain:true ctx page ~offset ~new_addr))

(* ------------------------------------------------------------------ *)
(* The reachable object graph                                          *)
(* ------------------------------------------------------------------ *)

(* A good-coloured pointer must name the object's current address with no
   forwarding hop and no pending evacuation — the to-space invariant the
   load barrier's fast path relies on. *)
let check_direct ctx (obj : Heap_obj.t) slot addr =
  let heap = Collector.heap ctx.col in
  match Heap.page_of_addr heap addr with
  | None ->
      err ctx "object #%d slot %d: good-coloured 0x%x maps to no page"
        obj.Heap_obj.id slot addr;
      None
  | Some page -> (
      match Page.find_object page ~offset:(addr - page.Page.start) with
      | None ->
          err ctx
            "object #%d slot %d: good-coloured 0x%x does not resolve directly"
            obj.Heap_obj.id slot addr;
          None
      | Some target ->
          if page.Page.state = Page.In_ec then
            err ctx
              "object #%d slot %d: good-coloured 0x%x points into in-ec page \
               #%d"
              obj.Heap_obj.id slot addr page.Page.id;
          Some target)

let check_reachable ctx =
  let heap = Collector.heap ctx.col in
  let good = Collector.good_color ctx.col in
  let watermark = Collector.mark_watermark ctx.col in
  let seen = Hashtbl.create 4096 in
  let stack = ref [] in
  let visit (obj : Heap_obj.t) =
    if not (Hashtbl.mem seen obj.Heap_obj.id) then begin
      Hashtbl.add seen obj.Heap_obj.id ();
      stack := obj :: !stack;
      match Heap.page_of_addr heap obj.Heap_obj.addr with
      | None ->
          err ctx "reachable object #%d sits at unmapped 0x%x" obj.Heap_obj.id
            obj.Heap_obj.addr
      | Some page -> (
          (match
             Page.find_object page
               ~offset:(obj.Heap_obj.addr - page.Page.start)
           with
          | Some o when o == obj -> ()
          | _ ->
              err ctx "reachable object #%d is not registered at its 0x%x"
                obj.Heap_obj.id obj.Heap_obj.addr);
          if ctx.edge = Collector.Mark_done then begin
            if page.Page.state = Page.In_ec then
              err ctx "reachable object #%d is on in-ec page #%d at mark-done"
                obj.Heap_obj.id page.Page.id;
            if
              obj.Heap_obj.id < watermark
              && not (Page.is_marked_live page obj)
            then
              err ctx
                "reachable object #%d (born before STW1) is unmarked at \
                 mark-done"
                obj.Heap_obj.id
          end)
    end
  in
  let roots = Collector.roots_list ctx.col in
  List.iter
    (fun (root : Heap_obj.t) ->
      if ctx.edge = Collector.Stw1_done then (
        match Heap.page_of_addr heap root.Heap_obj.addr with
        | None -> () (* reported by visit *)
        | Some page ->
            if page.Page.state = Page.In_ec then
              err ctx "root #%d still on in-ec page #%d after STW1"
                root.Heap_obj.id page.Page.id
            else if not (Page.is_marked_live page root) then
              err ctx "root #%d not marked by STW1 root seeding"
                root.Heap_obj.id);
      visit root)
    roots;
  let continue_ = ref true in
  while !continue_ do
    match !stack with
    | [] -> continue_ := false
    | obj :: rest ->
        stack := rest;
        Array.iteri
          (fun slot ptr ->
            if not (Addr.is_null ptr) then
              match Addr.color ptr with
              | exception Invalid_argument _ ->
                  err ctx "object #%d slot %d holds malformed pointer 0x%x"
                    obj.Heap_obj.id slot ptr
              | c ->
                  if c = good then (
                    match check_direct ctx obj slot (Addr.addr ptr) with
                    | Some target -> visit target
                    | None -> ())
                  else begin
                    if ctx.edge = Collector.Mark_done then
                      err ctx
                        "object #%d slot %d: colour %s survives mark-done \
                         (all reachable slots must be healed to %s)"
                        obj.Heap_obj.id slot (Addr.color_to_string c)
                        (Addr.color_to_string good);
                    match Oracle.resolve_ro ctx.col (Addr.addr ptr) with
                    | Ok target -> visit target
                    | Error e ->
                        err ctx "object #%d slot %d: %s" obj.Heap_obj.id slot
                          e.Oracle.msg
                  end)
          obj.Heap_obj.refs
  done

(* ------------------------------------------------------------------ *)
(* Far-memory tier residency                                           *)
(* ------------------------------------------------------------------ *)

module Tier = Hcsgc_memsim.Tier

(* Page tier bits, the heap's O(1) far-byte total and the machine-level
   Tier residency set are three views of the same state; they must agree
   at every phase edge.  These checks run even when no Tier is attached
   (capacity 0): a page flagged Far then is itself corruption. *)
let check_tier ctx =
  let heap = Collector.heap ctx.col in
  let tier = Collector.tier ctx.col in
  let config = Collector.config ctx.col in
  let far_sum = ref 0 in
  Heap.iter_pages heap (fun page ->
      match page.Page.tier with
      | Page.Dram -> (
          match tier with
          | Some t when Tier.resident t page.Page.start ->
              err ctx "DRAM page #%d is resident in the far tier" page.Page.id
          | _ -> ())
      | Page.Far ->
          far_sum := !far_sum + page.Page.size;
          (match tier with
          | None ->
              err ctx "page #%d is Far but no tier is configured" page.Page.id
          | Some t ->
              if
                not
                  (Tier.resident t page.Page.start
                  && Tier.resident t (page.Page.start + page.Page.size - 1))
              then
                err ctx "far page #%d is not fully tier-resident" page.Page.id);
          if config.Config.tier_promote && page.Page.hot_bytes > 0 then
            err ctx "far page #%d holds %d hot bytes (promotion leak)"
              page.Page.id page.Page.hot_bytes);
  if !far_sum <> Heap.far_bytes heap then
    err ctx "heap reports far_bytes=%d but far pages sum to %d"
      (Heap.far_bytes heap) !far_sum;
  Collector.iter_stale_fwd_pages ctx.col (fun page ->
      if page.Page.tier <> Page.Dram then
        err ctx "freed page #%d still flagged far-resident" page.Page.id);
  match tier with
  | None -> ()
  | Some t ->
      if Tier.used_bytes t <> !far_sum then
        err ctx "tier tracks %d resident bytes but far pages sum to %d"
          (Tier.used_bytes t) !far_sum;
      if Tier.used_bytes t > Tier.capacity_bytes t then
        err ctx "tier residency %d exceeds capacity %d" (Tier.used_bytes t)
          (Tier.capacity_bytes t)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let check col ~edge =
  let ctx = { col; edge; errors = []; n_errors = 0 } in
  check_state ctx;
  check_pages ctx;
  check_stale_fwd_pages ctx;
  check_tier ctx;
  check_reachable ctx;
  if ctx.n_errors = 0 then Ok ()
  else begin
    let errors = List.rev ctx.errors in
    let errors =
      if ctx.n_errors > max_errors then
        errors
        @ [ Printf.sprintf "... and %d more errors suppressed"
              (ctx.n_errors - max_errors) ]
      else errors
    in
    Error errors
  end

let check_exn col ~edge =
  match check col ~edge with
  | Ok () -> ()
  | Error errors ->
      raise (Violation { edge; cycle = Collector.cycle_number col; errors })

let install ?(oracle = true) col =
  Collector.set_phase_hook col
    (Some
       (fun edge ->
         check_exn col ~edge;
         if oracle && edge = Collector.Mark_done then
           match Oracle.check col with
           | Ok _ -> ()
           | Error errors ->
               raise
                 (Violation
                    { edge; cycle = Collector.cycle_number col; errors })))

let uninstall col = Collector.set_phase_hook col None
