(** Deterministic random-mutator fuzzing with shrinking.

    A fuzz run interprets a sequence of {!action}s against a fresh VM while
    maintaining an OCaml-side mirror of the managed object graph (the model
    of {!Hcsgc_runtime.Vm} semantics): a root table whose slots reach
    objects with reference fields and payload words.  Every managed read is
    compared against the mirror, and — unless disabled — {!Invariants} (with
    the {!Oracle} diff) runs at every GC phase edge, so graph corruption and
    heap-metadata corruption both surface, attributed to the action that
    exposed them.

    Everything is a pure function of the inputs: {!generate} derives the
    action sequence from a {!Hcsgc_util.Rng} seed, and {!run} replays any
    action list, so a failure is reproducible from [(config, slots, seed,
    ops)] alone.  {!check_seed} additionally {e shrinks} a failing sequence
    by greedy chunked deletion (ddmin-style) to a minimal counterexample —
    minimal in the sense that removing any single remaining action makes the
    failure disappear (or the shrink budget ran out).

    Actions are total: an action naming an empty table slot degrades to a
    no-op instead of failing, which is what makes deleting arbitrary subsets
    during shrinking sound.

    The [Corrupt_*] actions are deliberate fault injection for testing the
    verifier itself — {!generate} never emits them; tests splice them into a
    generated sequence and assert that the run fails and that the shrinker
    isolates them. *)

module Config = Hcsgc_core.Config

type action =
  | Alloc of { slot : int }  (** new object into a table slot *)
  | Link of { src_slot : int; field : int; dst_slot : int }
      (** [table.(src).field <- table.(dst)] *)
  | Unlink of { slot : int; field : int }
  | Write_word of { slot : int; word : int; value : int }
  | Read_path of { slot : int; fields : int list }
      (** walk managed pointers, checking ids/payloads against the mirror *)
  | Drop of { slot : int }  (** clear a root-table slot *)
  | Churn of { count : int }  (** allocate unreferenced garbage *)
  | Force_gc  (** {!Hcsgc_runtime.Vm.full_gc} *)
  | Corrupt_color of { slot : int; field : int }
      (** fault injection: make a reference slot's colour bits malformed *)
  | Corrupt_fwd of { slot : int }
      (** fault injection: forge a dangling forwarding entry on the page
          holding the slot's object *)
  | Corrupt_tier
      (** fault injection: flip the root table page's far-tier bit behind
          the byte accounting *)

type failure = {
  action_index : int;  (** index into the {e executed} list *)
  action : action option;  (** [None]: the end-of-run validation failed *)
  message : string;
}

type outcome = Pass of { gc_cycles : int } | Fail of failure

type counterexample = {
  seed : int;
  ops : int;
  slots : int;
  kept : int list;
      (** indices into [generate ~seed ~ops ~slots] (plus any spliced
          corruption) that survived shrinking — the replay recipe *)
  actions : action list;  (** the minimal failing sequence itself *)
  failure : failure;  (** the (possibly different) failure it now produces *)
}

val generate : seed:int -> ops:int -> slots:int -> action array
(** The deterministic action sequence for a seed.  Never contains
    [Corrupt_*]. *)

val run :
  ?verify:bool ->
  ?oracle:bool ->
  ?mutators:int ->
  ?shard_domains:int ->
  config:Config.t ->
  slots:int ->
  action list ->
  outcome
(** Execute an action list on a fresh VM.  [verify] (default [true])
    installs {!Invariants.install} (with [oracle], default [true]) for the
    whole run; a {!Invariants.Violation}, mirror mismatch, or any other
    exception becomes [Fail] attributed to the in-flight action.  A final
    full-graph validation, {!Hcsgc_runtime.Vm.finish} and a last invariant
    sweep run after the list is exhausted.
    [mutators] (default 1) deals the actions round-robin over that many VM
    mutator threads (action [i] runs on thread [i mod mutators]) — the
    logical sequence is unchanged, but clocks, allocation targets and cache
    traffic spread across cores.  [shard_domains] (default 0) selects the
    VM execution model ({!Hcsgc_runtime.Vm.create}); outcomes are identical
    at any [shard_domains >= 1]. *)

val shrink :
  ?budget:int ->
  fails:(action list -> bool) ->
  (int * action) list ->
  (int * action) list
(** [shrink ~fails indexed] minimises an indexed action list under the
    predicate by chunked deletion, halving the chunk size down to single
    actions; at most [budget] (default 400) predicate evaluations. *)

val check_seed :
  ?verify:bool ->
  ?oracle:bool ->
  ?mutators:int ->
  ?shard_domains:int ->
  ?shrink_budget:int ->
  ?inject:(int * action) list ->
  config:Config.t ->
  slots:int ->
  ops:int ->
  seed:int ->
  unit ->
  counterexample option
(** Generate, run, and — on failure — shrink.  [inject] splices extra
    actions (position, action) into the generated sequence before running
    (the hook for seeded-corruption tests).  [None] means the seed passed. *)

val replay : ?verify:bool -> ?oracle:bool -> ?mutators:int ->
  ?shard_domains:int -> config:Config.t -> counterexample -> outcome
(** Re-run a counterexample's minimal action list (under the same
    [mutators]/[shard_domains] as the original run, or the failure may not
    reproduce). *)

val pp_action : Format.formatter -> action -> unit
val pp_failure : Format.formatter -> failure -> unit

val pp_counterexample : Format.formatter -> counterexample -> unit
(** Render the full replay recipe (seed, sizes, kept indices and the
    rendered minimal action list) — what the CI job uploads on failure. *)
