(** Differential mark-sweep oracle.

    An independent, stop-the-world reachability computation over the managed
    heap, written against the collector's {e read-only} accessors and sharing
    no code with the concurrent marking path.  Where {!Invariants} checks
    local consistency (colours, accounting, forwarding), the oracle answers
    the global question: {e did concurrent marking find everything it had
    to?}

    The comparison is asymmetric, mirroring what a concurrent collector
    actually guarantees:

    - every object that is reachable at Mark End {e and existed when marking
      started} (its id is below {!Collector.mark_watermark}) must be in the
      livemap — anything else is a lost object, reported in {!diff.missed};
    - the livemap may cover {e more} than the reachable set: objects that
      died during the cycle stay marked until the next cycle ({e floating
      garbage}, counted in {!diff.floating} but never an error);
    - objects allocated during the cycle are exempt — they are kept alive by
      roots and store barriers, not the livemap.

    Only meaningful at the {!Collector.Mark_done} edge, where the livemap is
    complete and no page is mid-evacuation. *)

module Collector = Hcsgc_core.Collector
module Heap_obj = Hcsgc_heap.Heap_obj

type resolve_error = {
  dead_chain : bool;
      (** The chain ended at a retired destination page with no entry for
          it — the shape a forwarding entry legally takes when its object
          died {e after} relocation and the destination page was itself
          relocated and freed.  Harmless when auditing whole tables
          (nothing reachable routes through a dead object's chain), but
          still corruption when the pointer being chased must be alive. *)
  msg : string;
}

val resolve_ro : Collector.t -> int -> (Heap_obj.t, resolve_error) result
(** [resolve_ro c addr] follows forwarding chains from the uncoloured
    address [addr] to the object currently living there — the barrier slow
    path's remapping logic, minus every side effect (no relocation, no
    marking, no healing, no simulated cycles).  [Error] describes a dangling
    pointer: an unmapped address, a missing forwarding entry, or a chain
    deeper than any the collector can produce. *)

val reachable : Collector.t -> (int, Heap_obj.t) Hashtbl.t * string list
(** [reachable c] walks the object graph from {!Collector.roots_list}
    through {!resolve_ro}, returning every reachable object keyed by id,
    plus one message per slot that failed to resolve.  Read-only. *)

type diff = {
  reachable_count : int;  (** objects reachable from the roots *)
  marked_count : int;  (** livemap population, summed over active pages *)
  floating : int;
      (** marked but unreachable — garbage that died during the cycle and
          will be reclaimed next cycle; legal, reported for visibility *)
  missed : string list;
      (** reachable, pre-watermark, but unmarked — each entry is a lost
          object and a collector bug *)
  errors : string list;  (** slots that failed to resolve during the walk *)
}

val diff : Collector.t -> diff
(** Compare oracle reachability against the collector's livemap.  Call at
    {!Collector.Mark_done}; at any other edge the livemap is legitimately
    stale and the comparison is meaningless. *)

val check : Collector.t -> (diff, string list) result
(** [Ok] when {!diff} found no missed objects and no resolution errors. *)

val pp_diff : Format.formatter -> diff -> unit
