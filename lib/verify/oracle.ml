module Collector = Hcsgc_core.Collector
module Heap = Hcsgc_heap.Heap
module Heap_obj = Hcsgc_heap.Heap_obj
module Page = Hcsgc_heap.Page
module Addr = Hcsgc_heap.Addr

(* The collector's own chains are at most two hops (one relocation per
   cycle, tables retired after one cycle); anything deeper is corruption. *)
let max_chain = 8

type resolve_error = { dead_chain : bool; msg : string }

let corrupt msg = Error { dead_chain = false; msg }

let resolve_ro c addr0 =
  let heap = Collector.heap c in
  let rec go addr depth =
    if depth > max_chain then
      corrupt
        (Printf.sprintf "forwarding chain from 0x%x deeper than %d hops" addr0
           max_chain)
    else
      match Collector.stale_fwd_page_at c ~addr with
      | Some old_page -> (
          match
            Hcsgc_heap.Fwd_table.find old_page.Page.fwd
              ~offset:(addr - old_page.Page.start)
          with
          | Some fwd -> go fwd (depth + 1)
          | None ->
              (* Only live-at-relocation objects get entries, so a chain
                 can legally end here — iff the object died after the hop
                 that created [addr].  Callers chasing pointers that must
                 be alive (the reachable walk) treat this as corruption;
                 callers auditing whole tables may tolerate it. *)
              Error
                {
                  dead_chain = true;
                  msg =
                    Printf.sprintf
                      "stale pointer 0x%x into freed page #%d has no \
                       forwarding"
                      addr old_page.Page.id;
                })
      | None -> (
          match Heap.page_of_addr heap addr with
          | None -> corrupt (Printf.sprintf "pointer 0x%x maps to no page" addr)
          | Some page -> (
              let offset = addr - page.Page.start in
              match Page.find_object page ~offset with
              | Some obj -> Ok obj
              | None -> (
                  match Hcsgc_heap.Fwd_table.find page.Page.fwd ~offset with
                  | Some fwd -> go fwd (depth + 1)
                  | None ->
                      corrupt
                        (Printf.sprintf
                           "no object or forwarding at 0x%x on page #%d" addr
                           page.Page.id))))
  in
  go addr0 0

let reachable c =
  let errors = ref [] in
  let seen : (int, Heap_obj.t) Hashtbl.t = Hashtbl.create 4096 in
  let stack = ref [] in
  let visit (obj : Heap_obj.t) =
    if not (Hashtbl.mem seen obj.Heap_obj.id) then begin
      Hashtbl.add seen obj.Heap_obj.id obj;
      stack := obj :: !stack
    end
  in
  List.iter visit (Collector.roots_list c);
  let continue_ = ref true in
  while !continue_ do
    match !stack with
    | [] -> continue_ := false
    | obj :: rest ->
        stack := rest;
        Array.iteri
          (fun slot ptr ->
            if not (Addr.is_null ptr) then
              match resolve_ro c (Addr.addr ptr) with
              | Ok target -> visit target
              | Error e ->
                  errors :=
                    Printf.sprintf "object #%d slot %d: %s" obj.Heap_obj.id
                      slot e.msg
                    :: !errors)
          obj.Heap_obj.refs
  done;
  (seen, List.rev !errors)

type diff = {
  reachable_count : int;
  marked_count : int;
  floating : int;
  missed : string list;
  errors : string list;
}

let diff c =
  let heap = Collector.heap c in
  let watermark = Collector.mark_watermark c in
  let reach, errors = reachable c in
  let missed = ref [] in
  let reachable_marked = ref 0 in
  Hashtbl.iter
    (fun _ (obj : Heap_obj.t) ->
      match Heap.page_of_addr heap obj.Heap_obj.addr with
      | None -> () (* already reported by [reachable] via a dangling slot *)
      | Some page ->
          if Page.is_marked_live page obj then incr reachable_marked
          else if obj.Heap_obj.id < watermark then
            missed :=
              Printf.sprintf
                "object #%d at 0x%x (born before STW1, reachable) is not in \
                 the livemap"
                obj.Heap_obj.id obj.Heap_obj.addr
              :: !missed)
    reach;
  let marked_count = ref 0 in
  Heap.iter_pages heap (fun page ->
      if page.Page.state = Page.Active then
        marked_count := !marked_count + page.Page.live_objects);
  {
    reachable_count = Hashtbl.length reach;
    marked_count = !marked_count;
    floating = !marked_count - !reachable_marked;
    missed = List.rev !missed;
    errors;
  }

let check c =
  let d = diff c in
  match (d.missed, d.errors) with
  | [], [] -> Ok d
  | missed, errors -> Error (missed @ errors)

let pp_diff fmt d =
  Format.fprintf fmt
    "oracle{reachable=%d marked=%d floating=%d missed=%d errors=%d}"
    d.reachable_count d.marked_count d.floating (List.length d.missed)
    (List.length d.errors)
