(* The §4.8 feedback loop in action: run the same skewed workload with
   fixed COLDCONFIDENCE settings and with the autotuner, and watch the
   tuner land near the best setting without being told it.

   Run with:  dune exec examples/autotune.exe *)

module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Layout = Hcsgc_heap.Layout
module Synthetic = Hcsgc_workloads.Synthetic
module Scaled_machine = Hcsgc_experiments.Scaled_machine

let params =
  {
    Synthetic.default with
    Synthetic.elements = 50_000;
    accesses_per_loop = 20_000;
  }

let run ?(autotune = false) config =
  let vm =
    Vm.create
      ~layout:(Layout.scaled ~small_page:(64 * 1024))
      ~machine_config:Scaled_machine.config ~autotune ~config
      ~max_heap:(5 * 50_000 * 48) ()
  in
  ignore (Synthetic.run vm params);
  Vm.finish vm;
  (Vm.wall_cycles vm, Vm.autotuned_cold_confidence vm)

let () =
  print_endline "synthetic workload under fixed vs auto-tuned COLDCONFIDENCE";
  let fixed cc =
    if cc = 0.0 then Config.make ~hotness:true ~lazy_relocate:true ()
    else Config.make ~hotness:true ~cold_confidence:cc ~lazy_relocate:true ()
  in
  let base, _ = run (fixed 0.0) in
  let show name (wall, tuned) =
    Printf.printf "  %-18s wall=%12d (%+6.1f%%)%s\n" name wall
      (100.0 *. (float_of_int wall -. float_of_int base) /. float_of_int base)
      (match tuned with
      | Some cc -> Printf.sprintf "  [tuner settled at cc=%.2f]" cc
      | None -> "")
  in
  show "fixed cc=0.0" (base, None);
  show "fixed cc=0.5" (run (fixed 0.5));
  show "fixed cc=1.0" (run (fixed 1.0));
  show "autotuned" (run ~autotune:true (fixed 0.0));
  print_endline
    "\nthe tuner raises COLDCONFIDENCE while the observed miss rate keeps\n\
     improving and backs off when it does not (paper section 4.8)."
