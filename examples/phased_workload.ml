(* A multi-phase application (the paper's Fig. 5 scenario): the access
   pattern over the same long-lived objects changes completely between
   phases.  HCSGC re-captures each phase's order because mutators relocate
   objects as they touch them — no bookkeeping of the new order is needed.

   Run with:  dune exec examples/phased_workload.exe *)

module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Gc_stats = Hcsgc_core.Gc_stats
module Layout = Hcsgc_heap.Layout
module Synthetic = Hcsgc_workloads.Synthetic
module Scaled_machine = Hcsgc_experiments.Scaled_machine

let run config =
  let vm =
    Vm.create
      ~layout:(Layout.scaled ~small_page:(64 * 1024))
      ~machine_config:Scaled_machine.config ~config
      ~max_heap:(24 * 1024 * 1024)
      ()
  in
  let params =
    {
      Synthetic.default with
      Synthetic.elements = 50_000;
      accesses_per_loop = 20_000;
      phases = 3;  (* three different seeds = three access patterns *)
      loops = 15;  (* five loops per phase *)
    }
  in
  ignore (Synthetic.run vm params);
  Vm.finish vm;
  (Vm.wall_cycles vm, Gc_stats.objects_relocated_by_mutator (Vm.gc_stats vm))

let () =
  Printf.printf
    "three-phase workload (same objects, different access order per phase)\n%!";
  let configs = [ (0, "ZGC baseline"); (4, "ra+lazy"); (16, "hot+cp+cc1.0+lazy") ] in
  let results =
    List.map (fun (id, name) -> (name, run (Config.of_id id))) configs
  in
  let base = fst (snd (List.hd results)) in
  List.iter
    (fun (name, (wall, mut_reloc)) ->
      Printf.printf "  %-20s wall=%12d (%+6.1f%%)  mutator relocations=%d\n"
        name wall
        (100.0 *. (float_of_int wall -. float_of_int base) /. float_of_int base)
        mut_reloc)
    results;
  print_endline
    "\nmutator relocations track the phase changes: each new pattern is\n\
     re-captured during the GC cycles that follow the phase boundary."
