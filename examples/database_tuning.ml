(* Tuning HCSGC's knobs for a database-style workload (the paper's h2
   scenario, §4.6): long-lived rows, skewed recurring queries, steady
   transient allocation.  Sweeps COLDCONFIDENCE to show the EC-enlargement
   staircase, and contrasts RELOCATEALLSMALLPAGES.

   Run with:  dune exec examples/database_tuning.exe *)

module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Gc_stats = Hcsgc_core.Gc_stats
module Layout = Hcsgc_heap.Layout
module H2 = Hcsgc_workloads.H2_sim
module Scaled_machine = Hcsgc_experiments.Scaled_machine

let run config =
  let vm =
    Vm.create
      ~layout:(Layout.scaled ~small_page:(64 * 1024))
      ~machine_config:Scaled_machine.config ~config
      ~max_heap:(12 * 1024 * 1024)
      ()
  in
  let params = { H2.default with H2.transactions = 1_500 } in
  let r = H2.run vm params in
  Vm.finish vm;
  (r, Vm.wall_cycles vm, Gc_stats.median_small_pages_in_ec (Vm.gc_stats vm))

let () =
  print_endline "h2-style database: sweeping HCSGC knobs";
  let sweep =
    [
      ("ZGC baseline", Config.zgc);
      ("hotness only", Config.make ~hotness:true ());
      ("cc=0.25", Config.make ~hotness:true ~cold_confidence:0.25 ());
      ("cc=0.5", Config.make ~hotness:true ~cold_confidence:0.5 ());
      ("cc=0.75", Config.make ~hotness:true ~cold_confidence:0.75 ());
      ("cc=1.0", Config.make ~hotness:true ~cold_confidence:1.0 ());
      ("cc=1.0 + lazy",
       Config.make ~hotness:true ~cold_confidence:1.0 ~lazy_relocate:true ());
      ("relocate-all + lazy",
       Config.make ~relocate_all_small_pages:true ~lazy_relocate:true ());
    ]
  in
  let results = List.map (fun (name, c) -> (name, run c)) sweep in
  let _, (_, base, _) = List.hd results in
  Printf.printf "%-22s %14s %8s %12s\n" "knobs" "wall (cycles)" "vs base"
    "EC median";
  List.iter
    (fun (name, ((r : H2.result), wall, ec)) ->
      ignore r.H2.checksum;
      Printf.printf "%-22s %14d %+7.1f%% %12.1f\n" name wall
        (100.0 *. (float_of_int wall -. float_of_int base) /. float_of_int base)
        ec)
    results;
  print_endline
    "\nlarger COLDCONFIDENCE values excavate hot rows buried on pages full\n\
     of cold-but-live rows (bigger EC median), at the cost of more copying."
