(* Quickstart: create a VM, allocate a managed object graph, watch HCSGC
   relocate it, and read the statistics the paper's evaluation is built on.

   Run with:  dune exec examples/quickstart.exe *)

module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Gc_stats = Hcsgc_core.Gc_stats
module Layout = Hcsgc_heap.Layout
module H = Hcsgc_memsim.Hierarchy

let () =
  (* 1. Pick a configuration.  [Config.zgc] is the unmodified baseline;
     Table 2's rows are available as [Config.of_id 0..18]; or build your
     own knob combination with [Config.make]. *)
  let config =
    Config.make ~hotness:true ~coldpage:true ~cold_confidence:1.0
      ~lazy_relocate:true ()
  in
  Printf.printf "configuration: %s\n" (Config.to_string config);

  (* 2. Create a VM: a simulated heap + cache hierarchy + the collector.
     The scaled layout uses 64 KB "small pages" so a 16 MB heap spans
     hundreds of pages, like a real multi-GB ZGC heap. *)
  let vm =
    Vm.create
      ~layout:(Layout.scaled ~small_page:(64 * 1024))
      ~config
      ~max_heap:(16 * 1024 * 1024)
      ()
  in

  (* 3. Allocate a managed object graph.  An object has reference slots and
     scalar payload words; handles survive relocation.  Anything held across
     allocations must be reachable from a registered root. *)
  let table = Vm.alloc vm ~nrefs:10_000 ~nwords:0 in
  Vm.add_root vm table;
  for i = 0 to 9_999 do
    let item = Vm.alloc vm ~nrefs:0 ~nwords:2 in
    Vm.store_word vm item 0 i;
    Vm.store_ref vm table i (Some item)
  done;

  (* 4. Exercise a stable access pattern and allocate garbage: the garbage
     triggers GC cycles, and the accesses teach HCSGC which objects are hot
     (and in what order the mutator wants them laid out). *)
  let rng = Hcsgc_util.Rng.create 1 in
  let checksum = ref 0 in
  for _loop = 1 to 10 do
    let rng = Hcsgc_util.Rng.copy rng in
    for _ = 1 to 5_000 do
      let i = Hcsgc_util.Rng.int rng 2_500 (* hot quarter of the table *) in
      (match Vm.load_ref vm table i with
      | Some item -> checksum := !checksum + (Vm.load_word vm item 0 land 0xff)
      | None -> assert false);
      ignore (Vm.alloc vm ~nrefs:0 ~nwords:16) (* transient garbage *)
    done
  done;
  Vm.finish vm;

  (* 5. Read the results: simulated execution time, perf-style cache
     counters, and the GC statistics of §4.2. *)
  let st = Vm.gc_stats vm in
  let c = Vm.counters vm in
  Printf.printf "checksum:          %d\n" !checksum;
  Printf.printf "execution time:    %d simulated cycles\n" (Vm.wall_cycles vm);
  Printf.printf "GC cycles:         %d\n" (Gc_stats.cycles st);
  Printf.printf "EC median:         %.1f small pages/cycle\n"
    (Gc_stats.median_small_pages_in_ec st);
  Printf.printf "relocated:         %d by mutator (access order), %d by GC\n"
    (Gc_stats.objects_relocated_by_mutator st)
    (Gc_stats.objects_relocated_by_gc st);
  Printf.printf "hotness flags:     %d\n" (Gc_stats.hot_flags st);
  Printf.printf "loads / L1m / LLCm: %d / %d / %d\n" c.H.loads c.H.l1_misses
    c.H.llc_misses
