(* Graph analytics on the managed heap: the workload family of the paper's
   §4.5 (JGraphT).  Builds a web-like power-law graph, runs connected
   components and Bron-Kerbosch under the ZGC baseline and under an HCSGC
   configuration, and compares locality.

   Run with:  dune exec examples/graph_analytics.exe *)

module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Layout = Hcsgc_heap.Layout
module Rng = Hcsgc_util.Rng
module Generator = Hcsgc_graph.Generator
module Mgraph = Hcsgc_graph.Mgraph
module Connectivity = Hcsgc_graph.Connectivity
module Bron_kerbosch = Hcsgc_graph.Bron_kerbosch
module H = Hcsgc_memsim.Hierarchy
module Scaled_machine = Hcsgc_experiments.Scaled_machine

let analyse config =
  let vm =
    Vm.create
      ~layout:(Layout.scaled ~small_page:(64 * 1024))
      ~machine_config:Scaled_machine.config ~config
      ~max_heap:(24 * 1024 * 1024)
      ()
  in
  (* A web-graph stand-in: community clusters + heavy-tailed cross links,
     shuffled insertion order. *)
  let g =
    Generator.build vm ~rng:(Rng.create 7) ~model:Generator.Web ~nodes:4_000
      ~edges:60_000
  in
  let cc = Connectivity.analyse ~passes:3 g in
  let mc = Bron_kerbosch.run ~max_expansions:400 g in
  Vm.finish vm;
  let c = Vm.mutator_counters vm in
  ( cc, mc, Vm.wall_cycles vm, c.H.l1_misses, c.H.llc_misses )

let () =
  Printf.printf "building a 4k-node / 60k-edge power-law graph twice...\n%!";
  let cc0, mc0, wall0, l1m0, llcm0 = analyse Config.zgc in
  let cc1, mc1, wall1, l1m1, llcm1 = analyse (Config.of_id 16) in
  (* The algorithms' results must be identical — only locality differs. *)
  assert (cc0.Connectivity.components = cc1.Connectivity.components);
  assert (mc0.Bron_kerbosch.cliques = mc1.Bron_kerbosch.cliques);
  Printf.printf "components: %d (largest %d), articulation points: %d\n"
    cc0.Connectivity.components cc0.Connectivity.largest
    cc0.Connectivity.cut_points;
  Printf.printf "maximal cliques found: %d (max size %d)\n\n"
    mc0.Bron_kerbosch.cliques mc0.Bron_kerbosch.max_size;
  let pct a b = 100.0 *. (float_of_int b -. float_of_int a) /. float_of_int a in
  Printf.printf "%-28s %14s %14s %9s\n" "" "ZGC (cfg 0)" "HCSGC (cfg 16)" "delta";
  Printf.printf "%-28s %14d %14d %+8.1f%%\n" "execution time (cycles)" wall0
    wall1 (pct wall0 wall1);
  Printf.printf "%-28s %14d %14d %+8.1f%%\n" "mutator L1 misses" l1m0 l1m1
    (pct l1m0 l1m1);
  Printf.printf "%-28s %14d %14d %+8.1f%%\n" "mutator LLC misses" llcm0 llcm1
    (pct llcm0 llcm1)
