(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (§4) plus bechamel micro-benchmarks of HCSGC's primitives.

   Usage:
     dune exec bench/main.exe                    # everything, fast settings
     dune exec bench/main.exe -- --only f4,f12   # selected artefacts
     dune exec bench/main.exe -- --runs 10       # bigger samples
     dune exec bench/main.exe -- -j 4            # 4 worker domains per sweep
     dune exec bench/main.exe -- --full          # paper-closer sizes (slow)
     dune exec bench/main.exe -- --list          # artefact ids *)

module E = Hcsgc_experiments

let fmt = Format.std_formatter

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (one Bechamel test per primitive)                   *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let module Machine = Hcsgc_memsim.Machine in
  let module Bitmap = Hcsgc_util.Bitmap in
  let module Prefetcher = Hcsgc_memsim.Prefetcher in
  let module Vm = Hcsgc_runtime.Vm in
  let module Config = Hcsgc_core.Config in
  (* Barrier fast path: repeated loads of a good-coloured slot. *)
  let vm = Vm.create ~config:Config.zgc ~max_heap:(32 * 1024 * 1024) () in
  let src = Vm.alloc vm ~nrefs:1 ~nwords:0 in
  Vm.add_root vm src;
  let target = Vm.alloc vm ~nrefs:0 ~nwords:1 in
  Vm.store_ref vm src 0 (Some target);
  let machine = Machine.create ~cores:1 () in
  let bitmap = Bitmap.create 4096 in
  let pf = Prefetcher.create () in
  let addr = ref 0 in
  let bit = ref 0 in
  let tests =
    [
      Test.make ~name:"barrier-fast-path"
        (Staged.stage (fun () -> ignore (Vm.load_ref vm src 0)));
      Test.make ~name:"hotmap-test-and-set"
        (Staged.stage (fun () ->
             bit := (!bit + 1) land 4095;
             ignore (Bitmap.test_and_set bitmap !bit)));
      Test.make ~name:"cache-hierarchy-load"
        (Staged.stage (fun () ->
             addr := (!addr + 64) land 0xFFFFF;
             ignore (Machine.load machine ~core:0 !addr)));
      Test.make ~name:"prefetcher-observe"
        (Staged.stage (fun () ->
             incr bit;
             ignore (Prefetcher.observe pf !bit)));
    ]
  in
  Format.fprintf fmt "=== Micro-benchmarks (bechamel, ns/run via OLS) ===@.";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let m = Benchmark.run cfg Toolkit.Instance.[ monotonic_clock ] elt in
          let ols =
            Analyze.OLS.ols ~bootstrap:0 ~r_square:true
              ~responder:"monotonic-clock" ~predictors:[| "run" |]
              m.Benchmark.lr
          in
          let est =
            match Analyze.OLS.estimates ols with
            | Some (x :: _) -> Printf.sprintf "%.1f ns" x
            | _ -> "n/a"
          in
          Format.fprintf fmt "  %-24s %s@." (Test.Elt.name elt) est)
        (Test.elements test))
    tests;
  Format.pp_print_newline fmt ()

(* ------------------------------------------------------------------ *)
(* Artefact registry                                                   *)
(* ------------------------------------------------------------------ *)

type artefact = {
  id : string;
  what : string;
  run :
    runs:int option ->
    full:bool ->
    jobs:int ->
    shard_domains:int ->
    cache:E.Runner.cache option ->
    scheduling:[ `Cost | `Fifo ] ->
    unit;
}

let scale_or ~full fast_scale full_scale = if full then full_scale else fast_scale

let or_runs r d = match r with Some r -> r | None -> d

(* [cache]/[scheduling] reach the figure sweeps (which run through
   Runner.run_configs); tables, micro-benchmarks, the ablations and the
   SPECjbb composite (which keeps a workload-specific result record the
   store does not model) simply ignore them. *)
let artefacts =
  [
    { id = "t1"; what = "Table 1: ZGC page size classes";
      run = (fun ~runs:_ ~full:_ ~jobs:_ ~shard_domains:_ ~cache:_ ~scheduling:_ -> E.Tables.t1 fmt) };
    { id = "t2"; what = "Table 2: the 19 benchmark configurations";
      run = (fun ~runs:_ ~full:_ ~jobs:_ ~shard_domains:_ ~cache:_ ~scheduling:_ -> E.Tables.t2 fmt) };
    { id = "t3"; what = "Table 3: LAW graph datasets (generator stand-ins)";
      run =
        (fun ~runs:_ ~full:_ ~jobs:_ ~shard_domains:_ ~cache:_ ~scheduling:_ ->
          E.Tables.t3 ~scale:4 fmt) };
    { id = "f4"; what = "Fig. 4: synthetic, single phase";
      run =
        (fun ~runs ~full ~jobs ~shard_domains ~cache ~scheduling ->
          E.Fig_synthetic.fig4 ~runs:(or_runs runs (if full then 10 else 3)) ~jobs
            ~shard_domains ?cache ~scheduling ~scale:(scale_or ~full 2 1) fmt) };
    { id = "f5"; what = "Fig. 5: synthetic, three phases";
      run =
        (fun ~runs ~full ~jobs ~shard_domains ~cache ~scheduling ->
          E.Fig_synthetic.fig5 ~runs:(or_runs runs (if full then 10 else 3)) ~jobs
            ~shard_domains ?cache ~scheduling ~scale:(scale_or ~full 2 1) fmt) };
    { id = "f6"; what = "Fig. 6: ample relocation, saturated core";
      run =
        (* saturated single core: sharded execution does not apply *)
        (fun ~runs ~full ~jobs ~shard_domains:_ ~cache ~scheduling ->
          E.Fig_synthetic.fig6 ~runs:(or_runs runs (if full then 5 else 2)) ~jobs
            ?cache ~scheduling ~scale:(scale_or ~full 4 2) fmt) };
    { id = "f7"; what = "Fig. 7: CC on uk";
      run =
        (fun ~runs ~full ~jobs ~shard_domains ~cache ~scheduling ->
          E.Fig_graph.fig7 ~runs:(or_runs runs 3) ~jobs ~shard_domains ?cache
            ~scheduling ~scale:(scale_or ~full 16 8) fmt) };
    { id = "f8"; what = "Fig. 8: CC on enwiki";
      run =
        (fun ~runs ~full ~jobs ~shard_domains ~cache ~scheduling ->
          E.Fig_graph.fig8 ~runs:(or_runs runs 3) ~jobs ~shard_domains ?cache
            ~scheduling ~scale:(scale_or ~full 16 8) fmt) };
    { id = "f9"; what = "Fig. 9: MC on uk";
      run =
        (fun ~runs ~full ~jobs ~shard_domains ~cache ~scheduling ->
          E.Fig_graph.fig9 ~runs:(or_runs runs 2) ~jobs ~shard_domains ?cache
            ~scheduling ~scale:(scale_or ~full 4 2) fmt) };
    { id = "f10"; what = "Fig. 10: MC on enwiki";
      run =
        (fun ~runs ~full ~jobs ~shard_domains ~cache ~scheduling ->
          E.Fig_graph.fig10 ~runs:(or_runs runs 2) ~jobs ~shard_domains ?cache
            ~scheduling ~scale:(scale_or ~full 4 2) fmt) };
    { id = "f11"; what = "Fig. 11: DaCapo tradebeans (simulated)";
      run =
        (fun ~runs ~full ~jobs ~shard_domains ~cache ~scheduling ->
          E.Fig_dacapo.fig11 ~runs:(or_runs runs (if full then 5 else 3)) ~jobs
            ~shard_domains ?cache ~scheduling ~scale:(scale_or ~full 2 1) fmt) };
    { id = "f12"; what = "Fig. 12: DaCapo h2 (simulated)";
      run =
        (fun ~runs ~full ~jobs ~shard_domains ~cache ~scheduling ->
          E.Fig_dacapo.fig12 ~runs:(or_runs runs (if full then 5 else 2)) ~jobs
            ~shard_domains ?cache ~scheduling ~scale:(scale_or ~full 2 1) fmt) };
    { id = "f13"; what = "Fig. 13: SPECjbb2015 (simulated)";
      run =
        (fun ~runs ~full ~jobs ~shard_domains ~cache:_ ~scheduling:_ ->
          E.Fig_specjbb.fig13 ~runs:(or_runs runs 2) ~jobs ~shard_domains
            ~scale:(scale_or ~full 2 1) fmt) };
    { id = "abl-prefetch"; what = "ablation: access-order layout needs prefetching";
      run =
        (fun ~runs ~full ~jobs ~shard_domains:_ ~cache:_ ~scheduling:_ ->
          E.Ablations.prefetcher ~runs:(or_runs runs 3) ~jobs
            ~scale:(scale_or ~full 2 1) fmt) };
    { id = "abl-tlb"; what = "ablation: page-locality (dTLB) effect";
      run =
        (fun ~runs ~full ~jobs ~shard_domains:_ ~cache:_ ~scheduling:_ ->
          E.Ablations.tlb ~runs:(or_runs runs 3) ~jobs ~scale:(scale_or ~full 2 1)
            fmt) };
    { id = "abl-pagesize"; what = "ablation: page-size-class granularity";
      run =
        (fun ~runs ~full ~jobs ~shard_domains:_ ~cache:_ ~scheduling:_ ->
          E.Ablations.page_size ~runs:(or_runs runs 3) ~jobs
            ~scale:(scale_or ~full 2 1) fmt) };
    { id = "abl-autotune"; what = "ablation: COLDCONFIDENCE feedback loop";
      run =
        (fun ~runs ~full ~jobs ~shard_domains:_ ~cache:_ ~scheduling:_ ->
          E.Ablations.autotuner ~runs:(or_runs runs 3) ~jobs
            ~scale:(scale_or ~full 2 1) fmt) };
    { id = "micro"; what = "bechamel micro-benchmarks of HCSGC primitives";
      run = (fun ~runs:_ ~full:_ ~jobs:_ ~shard_domains:_ ~cache:_ ~scheduling:_ -> micro ()) };
  ]

let () =
  let only = ref [] in
  let runs = ref None in
  let full = ref false in
  let list_only = ref false in
  let jobs = ref (Hcsgc_exec.Pool.default_jobs ()) in
  let shard_domains = ref 0 in
  let cache_dir = ref E.Runner.default_cache_dir in
  let no_cache = ref false in
  let refresh = ref false in
  let fifo = ref false in
  let set_jobs n =
    if n < 1 then raise (Arg.Bad "--jobs must be >= 1");
    jobs := n
  in
  let spec =
    [
      ( "--only",
        Arg.String
          (fun s -> only := String.split_on_char ',' s |> List.map String.trim),
        "IDS comma-separated artefact ids (see --list)" );
      ("--runs", Arg.Int (fun n -> runs := Some n), "N sample size per config");
      ( "--jobs",
        Arg.Int set_jobs,
        Printf.sprintf
          "N worker domains for sweeps (default: cores, clamped; here %d); \
           output is identical at any N"
          !jobs );
      ("-j", Arg.Int set_jobs, "N short for --jobs");
      ( "--shard-domains",
        Arg.Int
          (fun n ->
            if n < 0 then raise (Arg.Bad "--shard-domains must be >= 0");
            shard_domains := n),
        "N epoch-sharded execution inside each run: mutator cache traffic \
         replays across up to N worker domains (0 = classic inline model; \
         results are byte-identical at any N >= 1)" );
      ("--full", Arg.Set full, " paper-closer sizes (much slower)");
      ( "--cache-dir",
        Arg.Set_string cache_dir,
        Printf.sprintf
          "DIR persistent result store for sweep jobs (default %s); warm \
           runs are byte-identical to cold ones"
          !cache_dir );
      ("--no-cache", Arg.Set no_cache, " disable the result store entirely");
      ( "--refresh",
        Arg.Set refresh,
        " recompute every job and overwrite its store entry" );
      ( "--fifo",
        Arg.Set fifo,
        " submit jobs in expansion order instead of longest-estimated-first \
         (for measuring the scheduler; output is identical either way)" );
      ("--list", Arg.Set list_only, " list artefact ids and exit");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench/main.exe -- regenerate the paper's tables and figures";
  if !list_only then
    List.iter (fun a -> Printf.printf "%-6s %s\n" a.id a.what) artefacts
  else begin
    let selected =
      if !only = [] then artefacts
      else
        List.map
          (fun id ->
            match List.find_opt (fun a -> a.id = id) artefacts with
            | Some a -> a
            | None -> failwith ("unknown artefact id: " ^ id))
          !only
    in
    let cache =
      if !no_cache then None
      else Some (E.Runner.cache ~refresh:!refresh ~dir:!cache_dir ())
    in
    let scheduling = if !fifo then `Fifo else `Cost in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun a ->
        Format.eprintf "[bench] running %s (%s)@." a.id a.what;
        a.run ~runs:!runs ~full:!full ~jobs:!jobs ~shard_domains:!shard_domains
          ~cache ~scheduling)
      selected;
    (* One auditable cache line per sweep (stderr, like all progress
       output, so stdout panels stay byte-identical cold vs warm). *)
    (match cache with
    | None -> ()
    | Some c ->
        let s = Hcsgc_store.Result_store.counters c.E.Runner.store in
        Format.eprintf "[bench] %s@."
          (Hcsgc_telemetry.Summary.store_line
             ~dir:(Hcsgc_store.Result_store.dir c.E.Runner.store)
             ~hits:s.Hcsgc_store.Result_store.hits
             ~misses:s.Hcsgc_store.Result_store.misses
             ~corrupt:s.Hcsgc_store.Result_store.corrupt
             ~stored:s.Hcsgc_store.Result_store.stored
             ~bytes_read:s.Hcsgc_store.Result_store.bytes_read
             ~bytes_written:s.Hcsgc_store.Result_store.bytes_written));
    Format.eprintf "[bench] done in %.1fs@." (Unix.gettimeofday () -. t0)
  end
