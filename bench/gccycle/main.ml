(* bench/gccycle: GC-cycle kernels — the collector-side counterpart of
   bench/hotpath.

   Each kernel drives the collector directly (no VM pump) through repeated
   full GC cycles: a mutator phase runs outside the measured window, then
   one complete cycle (STW1 -> mark -> EC selection -> relocation -> sweep
   -> demotion) is timed and its host allocation measured via
   Gc.allocated_bytes deltas.  Reported are cycles/s and host words
   allocated per GC cycle; the latter backs the release-mode 0-words
   steady-state assertion in test/test_gccycle.ml.

   Usage:
     dune exec --profile release bench/gccycle/main.exe --
     dune exec --profile release bench/gccycle/main.exe -- --quick
     dune exec ... -- --only churn --rounds 500
     dune exec ... -- --out BENCH_gccycle.json --label post
     dune exec ... -- --write-baseline base.txt     # save numbers
     dune exec ... -- --baseline base.txt --out ... # embed speedups *)

module Heap = Hcsgc_heap.Heap
module Layout = Hcsgc_heap.Layout
module Machine = Hcsgc_memsim.Machine
module Tier = Hcsgc_memsim.Tier
module Collector = Hcsgc_core.Collector
module Config = Hcsgc_core.Config
module Gc_stats = Hcsgc_core.Gc_stats
module Vec = Hcsgc_util.Vec

type result = {
  name : string;
  rounds : int;
  cycles_per_sec : float;
  us_per_cycle : float;
  words_per_cycle : float;
  sim_gc_cycles : int;
}

(* Drive one full GC cycle to completion. *)
let run_cycle col =
  Collector.start_cycle col;
  while Collector.in_cycle col do
    Collector.gc_work col ~budget:max_int
  done

let small_page = 16 * 1024
let layout = Layout.scaled ~small_page

let mk ?(cores = 2) ?(config = Config.zgc) ?(max_pages = 128) () =
  let heap = Heap.create ~layout ~max_bytes:(max_pages * small_page) () in
  let machine = Machine.create ~cores () in
  let tier =
    if config.Config.tier_capacity_pages > 0 then
      Some
        (Tier.create ~granule_bytes:small_page
           ~capacity_bytes:(config.Config.tier_capacity_pages * small_page)
           ~lat_far:config.Config.lat_far ())
    else None
  in
  Machine.set_tier machine tier;
  let roots = Vec.create () in
  let col =
    Collector.create ?tier ~heap ~machine ~config ~gc_core:(cores - 1)
      ~roots:(fun f -> Vec.iter f roots)
      ()
  in
  (col, roots)

(* Mutator-phase allocation; falls back to a forced cycle if the cap is
   hit (never happens at the sizes below, but keeps the kernels total). *)
let alloc_obj col ~core ~nrefs ~nwords =
  match Collector.alloc col ~core ~nrefs ~nwords with
  | Some (obj, _cost) -> obj
  | None -> (
      run_cycle col;
      match Collector.alloc col ~core ~nrefs ~nwords with
      | Some (obj, _cost) -> obj
      | None -> failwith "bench/gccycle: heap exhausted")

(* ---- kernels ----------------------------------------------------- *)

(* All garbage: every cycle marks only roots (none), selects every page
   into the EC and releases it without copying a single object.  The
   steady-state floor of a cycle — this is the 0-words acceptance kernel. *)
let churn () =
  let col, _roots = mk () in
  let mutate _r =
    for _ = 1 to 4_000 do
      ignore (alloc_obj col ~core:0 ~nrefs:1 ~nwords:6)
    done
  in
  (col, mutate)

(* A large live set with a third replaced every round: pages hover below
   the 75% EC threshold, so each cycle relocates thousands of survivors. *)
let relocation_storm () =
  let col, roots = mk () in
  let n = 3_000 in
  for _ = 1 to n do
    Vec.push roots (alloc_obj col ~core:0 ~nrefs:1 ~nwords:6)
  done;
  run_cycle col;
  let mutate r =
    let i = ref (r mod 3) in
    while !i < n do
      Vec.set roots !i (alloc_obj col ~core:0 ~nrefs:1 ~nwords:6);
      i := !i + 3
    done
  in
  (col, mutate)

(* Cold live set under HOTNESS + tiering: even rounds touch everything
   (far pages promote back to DRAM), odd rounds leave it cold (the sweep
   demotes the pages again) — every cycle runs the demotion scan. *)
let tiered_demotion () =
  let config =
    Config.make ~hotness:true ~cold_confidence:1.0 ~tier_capacity_pages:64 ()
  in
  let col, roots = mk ~config () in
  let n = 2_000 in
  for _ = 1 to n do
    Vec.push roots (alloc_obj col ~core:0 ~nrefs:1 ~nwords:6)
  done;
  run_cycle col;
  let mutate r =
    if r land 1 = 0 then
      for i = 0 to n - 1 do
        ignore (Collector.use_handle col ~core:0 (Vec.get roots i))
      done;
    for _ = 1 to 1_500 do
      ignore (alloc_obj col ~core:0 ~nrefs:1 ~nwords:6)
    done
  in
  (col, mutate)

(* Four mutator cores churning garbage and replacing slices of a shared
   live set: exercises the per-core allocation regions and the relocation
   machinery under interleaved multi-core traffic. *)
let multi_mutator () =
  let col, roots = mk ~cores:5 () in
  let muts = 4 in
  let per = 600 in
  for m = 0 to muts - 1 do
    for _ = 1 to per do
      Vec.push roots (alloc_obj col ~core:m ~nrefs:1 ~nwords:6)
    done
  done;
  run_cycle col;
  let n = muts * per in
  let mutate r =
    for m = 0 to muts - 1 do
      for _ = 1 to 700 do
        ignore (alloc_obj col ~core:m ~nrefs:1 ~nwords:6)
      done
    done;
    let i = ref (r mod 4) in
    while !i < n do
      Vec.set roots !i (alloc_obj col ~core:(!i mod muts) ~nrefs:1 ~nwords:6);
      i := !i + 4
    done
  in
  (col, mutate)

(* ---- measurement -------------------------------------------------- *)

(* Gc.allocated_bytes itself allocates (its internal counter read and the
   boxed result land in the *next* call's delta); the per-call constant is
   deterministic, so calibrate it once and subtract it per window. *)
let overhead_per_call () =
  let a0 = Gc.allocated_bytes () in
  let a1 = Gc.allocated_bytes () in
  a1 -. a0

let measure ~name ~warmup ~rounds (col, mutate) =
  for r = 1 to warmup do
    mutate r;
    run_cycle col
  done;
  let ovh = overhead_per_call () in
  let words = ref 0.0 and secs = ref 0.0 in
  for r = warmup + 1 to warmup + rounds do
    mutate r;
    let t0 = Unix.gettimeofday () in
    let a0 = Gc.allocated_bytes () in
    run_cycle col;
    let a1 = Gc.allocated_bytes () in
    let t1 = Unix.gettimeofday () in
    words := !words +. (a1 -. a0 -. ovh);
    secs := !secs +. (t1 -. t0)
  done;
  let fr = float_of_int rounds in
  {
    name;
    rounds;
    cycles_per_sec = (if !secs > 0.0 then fr /. !secs else 0.0);
    us_per_cycle = !secs *. 1e6 /. fr;
    words_per_cycle = !words /. float_of_int (Sys.word_size / 8) /. fr;
    sim_gc_cycles = Gc_stats.cycles (Collector.stats col);
  }

let kernels =
  [
    ("churn", 30, 300, churn);
    ("relocation-storm", 15, 150, relocation_storm);
    ("tiered-demotion", 15, 150, tiered_demotion);
    ("multi-mutator", 10, 100, multi_mutator);
  ]

(* ---- baseline files and JSON -------------------------------------- *)

(* Baseline files are whitespace-separated "name cycles_per_sec
   words_per_cycle" lines — trivially parseable without a JSON reader. *)
let write_baseline file results =
  let oc = open_out file in
  List.iter
    (fun r ->
      Printf.fprintf oc "%s %.3f %.4f\n" r.name r.cycles_per_sec
        r.words_per_cycle)
    results;
  close_out oc

let read_baseline file =
  let ic = open_in file in
  let entries = ref [] in
  (try
     while true do
       let line = input_line ic in
       match String.split_on_char ' ' (String.trim line) with
       | [ name; cps; wpc ] ->
           entries :=
             (name, (float_of_string cps, float_of_string wpc)) :: !entries
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !entries

let json_of_results ~label ~baseline results =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"benchmark\": %S,\n" "bench/gccycle");
  Buffer.add_string b (Printf.sprintf "  \"label\": %S,\n" label);
  Buffer.add_string b (Printf.sprintf "  \"ocaml\": %S,\n" Sys.ocaml_version);
  Buffer.add_string b
    (Printf.sprintf "  \"word_bytes\": %d,\n" (Sys.word_size / 8));
  Buffer.add_string b "  \"kernels\": [\n";
  List.iteri
    (fun i r ->
      let base =
        match List.assoc_opt r.name baseline with
        | Some (cps, wpc) ->
            Printf.sprintf
              ", \"baseline_cycles_per_sec\": %.0f, \
               \"baseline_words_per_cycle\": %.4f, \"speedup\": %.2f"
              cps wpc
              (if cps > 0.0 then r.cycles_per_sec /. cps else 0.0)
        | None -> ""
      in
      Buffer.add_string b
        (Printf.sprintf
           "    { \"name\": %S, \"rounds\": %d, \"cycles_per_sec\": %.0f, \
            \"us_per_cycle\": %.2f, \"words_per_cycle\": %.4f, \
            \"sim_gc_cycles\": %d%s }%s\n"
           r.name r.rounds r.cycles_per_sec r.us_per_cycle r.words_per_cycle
           r.sim_gc_cycles base
           (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let () =
  let rounds_override = ref 0 in
  let quick = ref false in
  let out = ref None in
  let only = ref [] in
  let label = ref "current" in
  let baseline_in = ref None in
  let baseline_out = ref None in
  let spec =
    [
      ( "--rounds",
        Arg.Set_int rounds_override,
        "N measured cycles per kernel (default: per-kernel)" );
      ("--quick", Arg.Set quick, " CI smoke sizes (rounds / 8)");
      ( "--only",
        Arg.String
          (fun s -> only := String.split_on_char ',' s |> List.map String.trim),
        "NAMES comma-separated kernel names" );
      ("--out", Arg.String (fun s -> out := Some s), "FILE write JSON here");
      ("--label", Arg.Set_string label, "S label stored in the JSON output");
      ( "--baseline",
        Arg.String (fun s -> baseline_in := Some s),
        "FILE baseline numbers to embed (speedup column)" );
      ( "--write-baseline",
        Arg.String (fun s -> baseline_out := Some s),
        "FILE save this run's numbers as a baseline" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench/gccycle/main.exe -- GC-cycle kernels";
  let selected =
    if !only = [] then kernels
    else List.filter (fun (name, _, _, _) -> List.mem name !only) kernels
  in
  if selected = [] then failwith "no kernel matches --only";
  let baseline =
    match !baseline_in with Some f -> read_baseline f | None -> []
  in
  let results =
    List.map
      (fun (name, warmup, rounds, setup) ->
        let rounds =
          if !rounds_override > 0 then !rounds_override
          else if !quick then max 8 (rounds / 8)
          else rounds
        in
        let r = measure ~name ~warmup ~rounds (setup ()) in
        Printf.printf
          "%-18s %8.0f cycles/s  %8.2f us/cycle  %8.4f words/cycle%s\n%!"
          r.name r.cycles_per_sec r.us_per_cycle r.words_per_cycle
          (match List.assoc_opt r.name baseline with
          | Some (cps, _) when cps > 0.0 ->
              Printf.sprintf "  (%.2fx vs baseline)" (r.cycles_per_sec /. cps)
          | _ -> "");
        r)
      selected
  in
  (match !baseline_out with
  | Some file ->
      write_baseline file results;
      Printf.printf "wrote baseline %s\n%!" file
  | None -> ());
  match !out with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (json_of_results ~label:!label ~baseline results);
      close_out oc;
      Printf.printf "wrote %s\n%!" file
