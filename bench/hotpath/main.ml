(* bench/hotpath: microbenchmarks of the mutator-visible simulation hot path.

   Each kernel drives one primitive of the simulation stack (VM op -> barrier
   -> cache hierarchy -> prefetcher) in a steady state (no simulated
   allocation, so no GC cycles start) and reports host-side throughput
   (ops/sec) and host-side allocation per op (via Gc.allocated_bytes deltas).
   These are the numbers that bound how large the paper's experiments can
   get; the allocation figures back the hot-path allocation-regression test.

   Usage:
     dune exec bench/hotpath/main.exe --                 # default sizes
     dune exec bench/hotpath/main.exe -- --quick         # CI smoke sizes
     dune exec bench/hotpath/main.exe -- --ops 5000000
     dune exec bench/hotpath/main.exe -- --out BENCH_hotpath.json
     dune exec bench/hotpath/main.exe -- --only mixed-load-store *)

module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Machine = Hcsgc_memsim.Machine
module Prefetcher = Hcsgc_memsim.Prefetcher

type result = {
  name : string;
  ops : int;
  ns_per_op : float;
  ops_per_sec : float;
  alloc_words_per_op : float;
}

(* Time [f ops] and measure host allocation.  One warmup run (1/8 of the
   measured size) brings the simulated caches and the host branch predictors
   to steady state before the timed run. *)
let measure ~name ~ops f =
  f (max 1 (ops / 8));
  let a0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  f ops;
  let t1 = Unix.gettimeofday () in
  let a1 = Gc.allocated_bytes () in
  let dt = t1 -. t0 in
  let words_per_op =
    (a1 -. a0) /. float_of_int (Sys.word_size / 8) /. float_of_int ops
  in
  {
    name;
    ops;
    ns_per_op = dt *. 1e9 /. float_of_int ops;
    ops_per_sec = (if dt > 0.0 then float_of_int ops /. dt else 0.0);
    alloc_words_per_op = words_per_op;
  }

(* A VM with a small steady-state working set: [nobjs] objects, each with
   [nrefs] reference slots and [nwords] payload words, all rooted, and a
   reference ring through slot 0 so load_ref has non-null targets. *)
let mk_vm ?(nobjs = 64) ?(nrefs = 2) ?(nwords = 6) () =
  let vm = Vm.create ~config:Config.zgc ~max_heap:(64 * 1024 * 1024) () in
  let objs = Array.init nobjs (fun _ -> Vm.alloc vm ~nrefs ~nwords) in
  Array.iter (Vm.add_root vm) objs;
  Array.iteri
    (fun i o -> Vm.store_ref vm o 0 (Some objs.((i + 1) mod nobjs)))
    objs;
  (* Finish any in-flight cycle so the timed region is GC-quiescent. *)
  Vm.full_gc vm;
  (vm, objs)

let kernels =
  [
    ( "load-word",
      fun _ops ->
        let vm, objs = mk_vm () in
        let n = Array.length objs in
        fun k ->
          for i = 0 to k - 1 do
            ignore (Vm.load_word vm objs.(i mod n) (i land 3))
          done );
    ( "store-word",
      fun _ops ->
        let vm, objs = mk_vm () in
        let n = Array.length objs in
        fun k ->
          for i = 0 to k - 1 do
            Vm.store_word vm objs.(i mod n) (i land 3) i
          done );
    ( "mixed-load-store",
      (* The acceptance kernel: interleaved payload loads and stores over a
         multi-page working set, through the full barrier + cache stack. *)
      fun _ops ->
        let vm, objs = mk_vm ~nobjs:256 () in
        let n = Array.length objs in
        fun k ->
          for i = 0 to k - 1 do
            let o = objs.(i mod n) in
            if i land 1 = 0 then ignore (Vm.load_word vm o (i land 3))
            else Vm.store_word vm o (i land 3) i
          done );
    ( "touch",
      fun _ops ->
        let vm, objs = mk_vm () in
        let n = Array.length objs in
        fun k ->
          for i = 0 to k - 1 do
            Vm.touch vm objs.(i mod n)
          done );
    ( "barrier-load-ref",
      fun _ops ->
        let vm, objs = mk_vm () in
        let n = Array.length objs in
        fun k ->
          for i = 0 to k - 1 do
            ignore (Vm.load_ref vm objs.(i mod n) 0)
          done );
    ( "machine-load-seq",
      fun _ops ->
        let m = Machine.create ~cores:1 () in
        fun k ->
          for i = 0 to k - 1 do
            ignore (Machine.load m ~core:0 ((i * 64) land 0x3FFFFF))
          done );
    ( "machine-load-stride",
      (* A 4 KiB stride defeats the stream prefetcher: every access runs the
         full miss path. *)
      fun _ops ->
        let m = Machine.create ~cores:1 () in
        fun k ->
          for i = 0 to k - 1 do
            ignore (Machine.load m ~core:0 ((i * 4096) land 0xFFFFFF))
          done );
    ( "prefetcher-observe",
      fun _ops ->
        let pf = Prefetcher.create () in
        let buf = Array.make (Prefetcher.degree pf) 0 in
        fun k ->
          for i = 0 to k - 1 do
            (* Alternate two interleaved streams, as mark/evacuation scans
               do, so confirmed-stream hits dominate. *)
            let line = if i land 1 = 0 then i else 1_000_000 - i in
            ignore (Prefetcher.observe_into pf line buf)
          done );
  ]

let json_of_results ~label results =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"benchmark\": %S,\n" "bench/hotpath");
  Buffer.add_string b (Printf.sprintf "  \"label\": %S,\n" label);
  Buffer.add_string b (Printf.sprintf "  \"ocaml\": %S,\n" Sys.ocaml_version);
  Buffer.add_string b
    (Printf.sprintf "  \"word_bytes\": %d,\n" (Sys.word_size / 8));
  Buffer.add_string b "  \"kernels\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"name\": %S, \"ops\": %d, \"ns_per_op\": %.2f, \
            \"ops_per_sec\": %.0f, \"alloc_words_per_op\": %.4f }%s\n"
           r.name r.ops r.ns_per_op r.ops_per_sec r.alloc_words_per_op
           (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let () =
  let ops = ref 2_000_000 in
  let out = ref None in
  let only = ref [] in
  let label = ref "current" in
  let spec =
    [
      ("--ops", Arg.Set_int ops, "N operations per kernel (default 2000000)");
      ("--quick", Arg.Unit (fun () -> ops := 200_000), " CI smoke sizes");
      ( "--only",
        Arg.String
          (fun s -> only := String.split_on_char ',' s |> List.map String.trim),
        "NAMES comma-separated kernel names" );
      ("--out", Arg.String (fun s -> out := Some s), "FILE write JSON here");
      ("--label", Arg.Set_string label, "S label stored in the JSON output");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench/hotpath/main.exe -- simulation hot-path microbenchmarks";
  let selected =
    if !only = [] then kernels
    else
      List.filter (fun (name, _) -> List.mem name !only) kernels
  in
  if selected = [] then failwith "no kernel matches --only";
  let results =
    List.map
      (fun (name, setup) ->
        let f = setup !ops in
        let r = measure ~name ~ops:!ops f in
        Printf.printf "%-22s %10.0f ops/s  %7.1f ns/op  %8.4f alloc words/op\n%!"
          r.name r.ops_per_sec r.ns_per_op r.alloc_words_per_op;
        r)
      selected
  in
  match !out with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (json_of_results ~label:!label results);
      close_out oc;
      Printf.printf "wrote %s\n%!" file
