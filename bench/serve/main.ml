(* bench/serve: the KV serving tier under shard counts.

   Runs the default serving workload (hotness config 18) once per shard
   count, asserts every run's SLO report, latency histogram, checksum and
   run metrics are byte-identical (the determinism contract, checked even
   while benchmarking), and reports host wall-clock seconds plus the
   simulated tail percentiles.

   Usage:
     dune exec bench/serve/main.exe --                     # default sizes
     dune exec bench/serve/main.exe -- --quick             # CI smoke sizes
     dune exec bench/serve/main.exe -- --out BENCH_serve.json *)

module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Layout = Hcsgc_heap.Layout
module Serve = Hcsgc_serve.Serve
module Slo = Hcsgc_serve.Slo
module Analyzer = Hcsgc_telemetry.Analyzer
module Runner = Hcsgc_experiments.Runner

let layout = Layout.scaled ~small_page:(64 * 1024)
let slo = 5 * Slo.cycles_per_us
let params ~scale = Hcsgc_experiments.Fig_serve.scaled_params ~scale

let run_once ~shard_domains ~scale =
  let p = params ~scale in
  let vm =
    Vm.create ~layout
      ~machine_config:Hcsgc_experiments.Scaled_machine.config
      ~mutators:p.Serve.mutators ~shard_domains ~trigger:0.10
      ~config:(Config.of_id 18)
      ~max_heap:(Hcsgc_experiments.Fig_serve.scaled_heap ~scale)
      ()
  in
  let recorder = Vm.enable_telemetry vm in
  let t0 = Unix.gettimeofday () in
  let r = Serve.run vm p in
  Vm.finish vm;
  let dt = Unix.gettimeofday () -. t0 in
  let report =
    Slo.analyze ~slo ~duration:p.Serve.duration
      ~pauses:(Analyzer.pause_intervals recorder)
      r
  in
  let fingerprint =
    Slo.to_line report ^ "|"
    ^ Slo.histogram_to_string (Slo.histogram r.Serve.requests)
    ^ "|" ^ string_of_int r.Serve.checksum ^ "|"
    ^ Runner.metrics_to_string (Runner.collect vm)
  in
  (dt, report, fingerprint)

type sample = { domains : int; seconds : float; speedup : float }

let json_of ~label ~scale ~host_domains ~(report : Slo.report) samples =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"benchmark\": %S,\n" "bench/serve");
  Buffer.add_string b (Printf.sprintf "  \"label\": %S,\n" label);
  Buffer.add_string b (Printf.sprintf "  \"ocaml\": %S,\n" Sys.ocaml_version);
  Buffer.add_string b
    (Printf.sprintf "  \"host_recommended_domains\": %d,\n" host_domains);
  Buffer.add_string b (Printf.sprintf "  \"scale\": %d,\n" scale);
  Buffer.add_string b
    (Printf.sprintf "  \"requests\": %d,\n" report.Slo.requests);
  Buffer.add_string b
    (Printf.sprintf
       "  \"latency_cycles\": { \"p50\": %d, \"p99\": %d, \"p999\": %d, \
        \"max\": %d },\n"
       report.Slo.p50 report.Slo.p99 report.Slo.p999 report.Slo.max_latency);
  Buffer.add_string b
    (Printf.sprintf
       "  \"slo\": { \"cycles\": %d, \"violations\": %d, \
        \"pause_attributed\": %d, \"service_attributed\": %d },\n"
       report.Slo.slo report.Slo.violations report.Slo.pause_attributed
       report.Slo.service_attributed);
  Buffer.add_string b "  \"deterministic\": true,\n";
  Buffer.add_string b "  \"samples\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"shard_domains\": %d, \"seconds\": %.3f, \"speedup\": \
            %.2f }%s\n"
           s.domains s.seconds s.speedup
           (if i = List.length samples - 1 then "" else ",")))
    samples;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let () =
  let scale = ref 1 in
  let max_domains = ref 4 in
  let out = ref None in
  let label = ref "current" in
  let spec =
    [
      ("--scale", Arg.Set_int scale, "K divide workload size (default 1)");
      ("--quick", Arg.Unit (fun () -> scale := 8), " CI smoke sizes");
      ( "--max-domains",
        Arg.Set_int max_domains,
        "N largest shard count measured (default 4)" );
      ("--out", Arg.String (fun s -> out := Some s), "FILE write JSON here");
      ("--label", Arg.Set_string label, "S label stored in the JSON output");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench/serve/main.exe -- serving-tier determinism and scaling";
  let counts =
    let rec up n = if n > !max_domains then [] else n :: up (2 * n) in
    up 1
  in
  let host_domains = Domain.recommended_domain_count () in
  Printf.printf
    "serve scaling: scale /%d, shard counts %s, host recommends %d domain(s)\n%!"
    !scale
    (String.concat "," (List.map string_of_int counts))
    host_domains;
  let baseline = ref None in
  let last_report = ref None in
  let samples =
    List.map
      (fun domains ->
        let seconds, report, fp = run_once ~shard_domains:domains ~scale:!scale in
        last_report := Some report;
        (match !baseline with
        | None -> baseline := Some (seconds, fp)
        | Some (_, fp1) ->
            if fp <> fp1 then (
              Printf.eprintf
                "FATAL: --shard-domains %d diverged from --shard-domains %d\n%!"
                domains (List.hd counts);
              exit 1));
        let speedup =
          match !baseline with
          | Some (s1, _) when seconds > 0.0 -> s1 /. seconds
          | _ -> 1.0
        in
        Printf.printf "  shard-domains %d: %6.3f s  (speedup %.2fx)\n%!"
          domains seconds speedup;
        { domains; seconds; speedup })
      counts
  in
  let report = Option.get !last_report in
  Printf.printf
    "all shard counts byte-identical; %d requests, p99.9=%dc, %d violations \
     (%d pause-attributed)\n%!"
    report.Slo.requests report.Slo.p999 report.Slo.violations
    report.Slo.pause_attributed;
  match !out with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc
        (json_of ~label:!label ~scale:!scale ~host_domains ~report samples);
      close_out oc;
      Printf.printf "wrote %s\n%!" file
