(* bench/shard: wall-clock scaling of epoch-sharded execution.

   Runs the 8-mutator Multi_synthetic workload once per shard count (1, 2,
   4, ... up to --max-domains), asserts that every run's simulated metrics
   are byte-identical (the determinism contract, checked even while
   benchmarking), and reports host wall-clock time and speedup relative to
   --shard-domains 1.

   Speedup depends entirely on the host: a single-core container will show
   ~1.0x everywhere, which is expected and recorded honestly — the JSON
   includes the host's recommended domain count so readers can interpret
   the curve.

   Usage:
     dune exec bench/shard/main.exe --                     # default sizes
     dune exec bench/shard/main.exe -- --quick             # CI smoke sizes
     dune exec bench/shard/main.exe -- --out BENCH_shard.json *)

module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Layout = Hcsgc_heap.Layout
module Multi = Hcsgc_workloads.Multi_synthetic
module Runner = Hcsgc_experiments.Runner

let layout = Layout.scaled ~small_page:(64 * 1024)

let mutators = 8

let params ~rounds =
  { Multi.default with Multi.mutators; rounds }

let run_once ~shard_domains ~rounds =
  let vm =
    Vm.create ~layout
      ~machine_config:Hcsgc_experiments.Scaled_machine.config ~mutators
      ~shard_domains ~config:(Config.of_id 18) ~max_heap:(24 * 1024 * 1024)
      ()
  in
  let t0 = Unix.gettimeofday () in
  let r = Multi.run vm (params ~rounds) in
  Vm.finish vm;
  let dt = Unix.gettimeofday () -. t0 in
  let fingerprint =
    Runner.metrics_to_string (Runner.collect vm)
    ^ "|"
    ^ String.concat ","
        (Array.to_list (Array.map string_of_int r.Multi.checksums))
  in
  (dt, fingerprint)

type sample = { domains : int; seconds : float; speedup : float }

let json_of ~label ~rounds ~host_domains samples =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"benchmark\": %S,\n" "bench/shard");
  Buffer.add_string b (Printf.sprintf "  \"label\": %S,\n" label);
  Buffer.add_string b (Printf.sprintf "  \"ocaml\": %S,\n" Sys.ocaml_version);
  Buffer.add_string b
    (Printf.sprintf "  \"host_recommended_domains\": %d,\n" host_domains);
  Buffer.add_string b (Printf.sprintf "  \"mutators\": %d,\n" mutators);
  Buffer.add_string b (Printf.sprintf "  \"rounds\": %d,\n" rounds);
  Buffer.add_string b "  \"deterministic\": true,\n";
  Buffer.add_string b "  \"samples\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"shard_domains\": %d, \"seconds\": %.3f, \"speedup\": \
            %.2f }%s\n"
           s.domains s.seconds s.speedup
           (if i = List.length samples - 1 then "" else ",")))
    samples;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let () =
  let rounds = ref 60 in
  let max_domains = ref 8 in
  let out = ref None in
  let label = ref "current" in
  let spec =
    [
      ("--rounds", Arg.Set_int rounds, "N workload rounds (default 60)");
      ("--quick", Arg.Unit (fun () -> rounds := 10), " CI smoke sizes");
      ( "--max-domains",
        Arg.Set_int max_domains,
        "N largest shard count measured (default 8)" );
      ("--out", Arg.String (fun s -> out := Some s), "FILE write JSON here");
      ("--label", Arg.Set_string label, "S label stored in the JSON output");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench/shard/main.exe -- epoch-sharded execution scaling";
  let counts =
    let rec up n = if n > !max_domains then [] else n :: up (2 * n) in
    up 1
  in
  let host_domains = Domain.recommended_domain_count () in
  Printf.printf
    "shard scaling: %d mutators, %d rounds, host recommends %d domain(s)\n%!"
    mutators !rounds host_domains;
  let baseline = ref None in
  let samples =
    List.map
      (fun domains ->
        let seconds, fp = run_once ~shard_domains:domains ~rounds:!rounds in
        (match !baseline with
        | None -> baseline := Some (seconds, fp)
        | Some (_, fp1) ->
            if fp <> fp1 then (
              Printf.eprintf
                "FATAL: --shard-domains %d diverged from --shard-domains \
                 %d\n%!"
                domains (List.hd counts);
              exit 1));
        let speedup =
          match !baseline with
          | Some (s1, _) when seconds > 0.0 -> s1 /. seconds
          | _ -> 1.0
        in
        Printf.printf "  shard-domains %d: %6.3f s  (speedup %.2fx)\n%!"
          domains seconds speedup;
        { domains; seconds; speedup })
      counts
  in
  Printf.printf "all shard counts byte-identical\n%!";
  match !out with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc
        (json_of ~label:!label ~rounds:!rounds ~host_domains samples);
      close_out oc;
      Printf.printf "wrote %s\n%!" file
