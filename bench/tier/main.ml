(* bench/tier: the far-memory tier across capacities.

   Runs the cold-heavy tiered synthetic family once per tier capacity,
   asserts every capacity's run metrics are byte-identical between
   --shard-domains 1 and 4 (the determinism contract, checked even while
   benchmarking), and reports host wall-clock seconds plus the simulated
   far-tier effect: far-load share of LLC misses, peak far residency and
   the demotion/promotion counts.

   Usage:
     dune exec bench/tier/main.exe --                     # default sizes
     dune exec bench/tier/main.exe -- --quick             # CI smoke sizes
     dune exec bench/tier/main.exe -- --out BENCH_tier.json *)

module Vm = Hcsgc_runtime.Vm
module Tier = Hcsgc_memsim.Tier
module Runner = Hcsgc_experiments.Runner
module Fig_tier = Hcsgc_experiments.Fig_tier
module Fig_synthetic = Hcsgc_experiments.Fig_synthetic

let run_once ~capacity ~shard_domains ~scale =
  let config =
    Fig_tier.tier_config ~capacity ~lat_far:Fig_tier.default_lat_far
      ~promote:true
  in
  let exp = Fig_synthetic.experiment ~cold_ratio:4 ~shard_domains ~scale () in
  let vm = exp.Runner.make_vm config in
  let t0 = Unix.gettimeofday () in
  exp.Runner.workload vm ~run:0;
  Vm.finish vm;
  let dt = Unix.gettimeofday () -. t0 in
  let m = Runner.collect vm in
  let far_peak =
    match Vm.tier vm with Some t -> Tier.peak_bytes t | None -> 0
  in
  (dt, m, far_peak, Runner.metrics_to_string m)

type sample = {
  capacity : int;
  seconds : float;
  wall : float;
  far_share : float;  (* far loads / LLC misses *)
  far_peak : int;
  demoted : int;
  promoted : int;
}

let json_of ~label ~scale ~lat_far samples =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"benchmark\": %S,\n" "bench/tier");
  Buffer.add_string b (Printf.sprintf "  \"label\": %S,\n" label);
  Buffer.add_string b (Printf.sprintf "  \"ocaml\": %S,\n" Sys.ocaml_version);
  Buffer.add_string b (Printf.sprintf "  \"scale\": %d,\n" scale);
  Buffer.add_string b (Printf.sprintf "  \"lat_far\": %d,\n" lat_far);
  Buffer.add_string b "  \"deterministic\": true,\n";
  Buffer.add_string b "  \"samples\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"capacity_pages\": %d, \"seconds\": %.3f, \"sim_wall\": \
            %.0f, \"far_share\": %.4f, \"peak_far_bytes\": %d, \"demoted\": \
            %d, \"promoted\": %d }%s\n"
           s.capacity s.seconds s.wall s.far_share s.far_peak s.demoted
           s.promoted
           (if i = List.length samples - 1 then "" else ",")))
    samples;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let () =
  let scale = ref 1 in
  let out = ref None in
  let label = ref "current" in
  let capacities = ref Fig_tier.default_capacities in
  let spec =
    [
      ("--scale", Arg.Set_int scale, "K divide workload size (default 1)");
      ("--quick", Arg.Unit (fun () -> scale := 8), " CI smoke sizes");
      ( "--capacities",
        Arg.String
          (fun s ->
            capacities :=
              List.map int_of_string (String.split_on_char ',' s)),
        "C,C,... tier capacities in pages (default 0,4,16,64)" );
      ("--out", Arg.String (fun s -> out := Some s), "FILE write JSON here");
      ("--label", Arg.Set_string label, "S label stored in the JSON output");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench/tier/main.exe -- far-tier capacity sweep and determinism";
  Printf.printf "tier sweep: scale /%d, capacities %s, lat_far %dc\n%!" !scale
    (String.concat "," (List.map string_of_int !capacities))
    Fig_tier.default_lat_far;
  let samples =
    List.map
      (fun capacity ->
        let seconds, m, far_peak, fp1 =
          run_once ~capacity ~shard_domains:1 ~scale:!scale
        in
        let _, _, _, fp4 = run_once ~capacity ~shard_domains:4 ~scale:!scale in
        if fp1 <> fp4 then (
          Printf.eprintf
            "FATAL: capacity %d diverged between --shard-domains 1 and 4\n%!"
            capacity;
          exit 1);
        let far_share =
          if m.Runner.llc_misses > 0.0 then
            m.Runner.far_loads /. m.Runner.llc_misses
          else 0.0
        in
        Printf.printf
          "  capacity %3d: %6.3f s  wall %12.0f  far %4.1f%%  peak %5d KiB  \
           demoted %d promoted %d\n%!"
          capacity seconds m.Runner.wall (100.0 *. far_share) (far_peak / 1024)
          m.Runner.pages_demoted m.Runner.pages_promoted;
        {
          capacity;
          seconds;
          wall = m.Runner.wall;
          far_share;
          far_peak;
          demoted = m.Runner.pages_demoted;
          promoted = m.Runner.pages_promoted;
        })
      !capacities
  in
  Printf.printf "all capacities byte-identical across shard counts\n%!";
  match !out with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (json_of ~label:!label ~scale:!scale
                          ~lat_far:Fig_tier.default_lat_far samples);
      close_out oc;
      Printf.printf "wrote %s\n%!" file
