(* hcsgc-run: command-line driver for single experiments.

   Examples:
     hcsgc-run synthetic --config 16 --elements 50000
     hcsgc-run synthetic --all-configs --runs 5
     hcsgc-run graph --algo mc --dataset uk --config 4
     hcsgc-run h2 --config 7
     hcsgc-run specjbb --config 0
     hcsgc-run figure f9 --runs 5 --scale 2 *)

open Cmdliner
module E = Hcsgc_experiments
module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Gc_stats = Hcsgc_core.Gc_stats
module Layout = Hcsgc_heap.Layout
module H = Hcsgc_memsim.Hierarchy

let fmt = Format.std_formatter

(* ------------------------------------------------------------------ *)
(* Common options                                                      *)
(* ------------------------------------------------------------------ *)

let config_id =
  let doc = "Table 2 configuration id (0-18); 0 is unmodified ZGC." in
  Arg.(value & opt int 0 & info [ "config"; "c" ] ~docv:"ID" ~doc)

let all_configs =
  let doc = "Sweep all 19 configurations and print the figure panels." in
  Arg.(value & flag & info [ "all-configs"; "a" ] ~doc)

let runs =
  let doc = "Sample size per configuration (with --all-configs)." in
  Arg.(value & opt int 3 & info [ "runs" ] ~docv:"N" ~doc)

let jobs =
  let doc =
    "Worker domains for sweeps (with --all-configs). The default is the \
     machine's recommended domain count, clamped. Results are aggregated \
     in job order, so output is identical at any $(docv)."
  in
  Arg.(value
      & opt int (Hcsgc_exec.Pool.default_jobs ())
      & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let scale =
  let doc = "Divide workload size by $(docv)." in
  Arg.(value & opt int 1 & info [ "scale" ] ~docv:"K" ~doc)

let shard_domains =
  let doc =
    "Execution model for the memory-hierarchy simulation. 0 (default) is \
     the classic inline interleave. $(docv) >= 1 selects epoch-sharded \
     execution: each mutator core's cache traffic is deferred and replayed \
     across up to $(docv) worker domains at epoch barriers, then merged \
     into the shared LLC in mutator order. Results are byte-identical at \
     any $(docv) >= 1 (only wall-clock time changes); sharded and inline \
     runs are cached under distinct keys. Orthogonal to --jobs, which \
     parallelises across whole runs of a sweep; --shard-domains \
     parallelises inside a single many-mutator run."
  in
  Arg.(value & opt int 0 & info [ "shard-domains" ] ~docv:"N" ~doc)

let saturated =
  let doc = "Pin mutator and GC to a single core (Fig. 6 setup)." in
  Arg.(value & flag & info [ "saturated" ] ~doc)

let seed =
  let doc = "Workload seed." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)

let gc_log_flag =
  let doc = "Print the structured GC event log after the run." in
  Arg.(value & flag & info [ "gc-log" ] ~doc)

let trace_out =
  let doc =
    "Write a Chrome trace-event JSON profile of the run to $(docv) \
     (load it in Perfetto or chrome://tracing), plus a CSV counter \
     time-series and a plain-text summary next to it."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let trace_sample =
  let doc = "Counter sampling interval in simulated cycles (with --trace-out)." in
  Arg.(value & opt int 50_000 & info [ "trace-sample" ] ~docv:"N" ~doc)

let verify_flag =
  let doc =
    "Run under the heap sanitizer: full-heap invariant verification plus \
     the differential mark-sweep oracle at every GC phase boundary. \
     Verification is read-only, so results are byte-identical to an \
     unverified run; corruption aborts with a diagnostic. Also enabled by \
     HCSGC_VERIFY=1 in the environment."
  in
  Arg.(value & flag & info [ "verify" ] ~doc)

let cache_dir =
  let doc =
    "Persistent result store for sweep jobs (with --all-configs). Jobs \
     are content-addressed by experiment parameters, configuration \
     knobs, seed and verify flag; warm sweeps are byte-identical to cold \
     ones and only faster."
  in
  Arg.(value
      & opt string E.Runner.default_cache_dir
      & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let no_cache =
  let doc = "Disable the result store entirely." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let refresh_flag =
  let doc =
    "Recompute every job and overwrite its result-store entry (use after \
     changes the fingerprint cannot see, e.g. to re-measure timings)."
  in
  Arg.(value & flag & info [ "refresh" ] ~doc)

let cache_of ~no_cache ~refresh ~cache_dir =
  if no_cache then None
  else Some (E.Runner.cache ~refresh ~dir:cache_dir ())

(* Far-memory tier knobs, accepted by every workload command.  Default
   off (capacity 0), which leaves each command's output byte-identical to
   the tier-free build. *)

let tier_capacity =
  let doc =
    "Far-memory tier capacity in small pages; 0 (default) disables \
     tiering. Cold pages (no hot evidence across a GC cycle) are demoted \
     behind DRAM at mark end and promoted back on barrier access. \
     Requires a HOTNESS configuration."
  in
  Arg.(value & opt int 0 & info [ "tier-capacity" ] ~docv:"PAGES" ~doc)

let lat_far_arg =
  let doc =
    "Far-tier access latency in cycles (a demand load into a far-resident \
     line pays $(docv) instead of DRAM latency)."
  in
  Arg.(value & opt int 800 & info [ "lat-far" ] ~docv:"CYCLES" ~doc)

let tier_no_promote =
  let doc =
    "Leave far pages stranded on mutator access (demote-only tiering) \
     instead of promoting them back to DRAM."
  in
  Arg.(value & flag & info [ "tier-no-promote" ] ~doc)

let apply_tier ~capacity ~lat_far ~no_promote config =
  if capacity = 0 then config
  else
    match
      Config.validate
        {
          config with
          Config.tier_capacity_pages = capacity;
          lat_far;
          tier_promote = not no_promote;
        }
    with
    | Ok c -> c
    | Error e ->
        Format.eprintf "invalid tier flags: %s@." e;
        exit 2

(* ------------------------------------------------------------------ *)
(* Telemetry artefacts                                                 *)
(* ------------------------------------------------------------------ *)

module Tel = Hcsgc_telemetry

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let sibling path ext = Filename.remove_extension path ^ ext

(* One profiled run produces three artefacts: the trace itself, a CSV of
   the counter samples, and a perf-report-style text summary (also echoed
   to stdout). *)
let emit_artifacts ~trace_out recorder =
  let csv_path = sibling trace_out ".csv" in
  let summary_path = sibling trace_out ".summary.txt" in
  write_file trace_out (Tel.Chrome_trace.to_string recorder);
  write_file csv_path (Tel.Csv_export.to_string recorder);
  let summary = Tel.Summary.to_string recorder in
  write_file summary_path summary;
  Format.fprintf fmt "%s@." summary;
  Format.fprintf fmt "wrote %s, %s, %s@." trace_out csv_path summary_path

let report_single vm =
  let st = Vm.gc_stats vm in
  let c = Vm.counters vm in
  let mc = Vm.mutator_counters vm in
  Format.fprintf fmt "execution time: %d cycles@." (Vm.wall_cycles vm);
  Format.fprintf fmt "  mutator=%d stw=%d gc(concurrent)=%d@."
    (Vm.mutator_cycles vm) (Vm.stw_cycles vm) (Vm.gc_cycles vm);
  Format.fprintf fmt "GC: %d cycles, EC median %.1f small pages, %d freed pages@."
    (Gc_stats.cycles st)
    (Gc_stats.median_small_pages_in_ec st)
    (Gc_stats.pages_freed st);
  Format.fprintf fmt "relocation: %d by mutator, %d by GC (%d bytes)@."
    (Gc_stats.objects_relocated_by_mutator st)
    (Gc_stats.objects_relocated_by_gc st)
    (Gc_stats.bytes_relocated st);
  Format.fprintf fmt "hotness flags: %d@." (Gc_stats.hot_flags st);
  Format.fprintf fmt "cache (whole process): loads=%d l1m=%d llcm=%d@." c.H.loads
    c.H.l1_misses c.H.llc_misses;
  Format.fprintf fmt "cache (mutator only):  loads=%d l1m=%d llcm=%d@."
    mc.H.loads mc.H.l1_misses mc.H.llc_misses;
  match Vm.tier vm with
  | None -> ()
  | Some t ->
      Format.fprintf fmt
        "far tier: %d far loads, %d pages demoted, %d promoted, peak %d KiB@."
        (Vm.far_loads vm) (Gc_stats.pages_demoted st)
        (Gc_stats.pages_promoted st)
        (Hcsgc_memsim.Tier.peak_bytes t / 1024)

let store_line store =
  let s = Hcsgc_store.Result_store.counters store in
  Tel.Summary.store_line
    ~dir:(Hcsgc_store.Result_store.dir store)
    ~hits:s.Hcsgc_store.Result_store.hits
    ~misses:s.Hcsgc_store.Result_store.misses
    ~corrupt:s.Hcsgc_store.Result_store.corrupt
    ~stored:s.Hcsgc_store.Result_store.stored
    ~bytes_read:s.Hcsgc_store.Result_store.bytes_read
    ~bytes_written:s.Hcsgc_store.Result_store.bytes_written

let run_experiment ?trace_out ?(trace_sample = 50_000) ?(verify = false)
    ?cache ?(tier = (0, 800, false)) ~all ~runs ~jobs ~config_id
    (exp : E.Runner.experiment) =
  let tier_cap, tier_lat, tier_nop = tier in
  if all then begin
    if trace_out <> None then
      Format.eprintf "[run] --trace-out ignored with --all-configs@.";
    if tier_cap > 0 then
      Format.eprintf
        "[run] tier flags ignored with --all-configs (Table 2 sweep; use \
         the tier command for capacity sweeps)@.";
    let results =
      E.Runner.run_configs ~runs ~jobs ~verify ?cache
        ~progress:(fun m -> Format.eprintf "[run] %s@." m)
        exp
    in
    E.Report.figure fmt ~title:exp.E.Runner.name
      ~expectation:"(ad-hoc sweep; see bench/main.exe for paper figures)"
      results;
    match cache with
    | Some c -> Format.eprintf "[run] %s@." (store_line c.E.Runner.store)
    | None -> ()
  end
  else begin
    let config =
      apply_tier ~capacity:tier_cap ~lat_far:tier_lat ~no_promote:tier_nop
        (Config.of_id config_id)
    in
    Format.fprintf fmt "workload %s under config %d (%s)%s@." exp.E.Runner.name
      config_id (Config.to_string config)
      (if verify then " [verified]" else "");
    let vm = exp.E.Runner.make_vm config in
    if verify then Vm.enable_verification vm;
    let recorder =
      match trace_out with
      | None -> None
      | Some _ ->
          Some (Vm.enable_telemetry ~sample_interval:trace_sample vm)
    in
    exp.E.Runner.workload vm ~run:0;
    Vm.finish vm;
    report_single vm;
    match (trace_out, recorder) with
    | Some path, Some recorder -> emit_artifacts ~trace_out:path recorder
    | _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* synthetic                                                           *)
(* ------------------------------------------------------------------ *)

let synthetic_cmd =
  let elements =
    Arg.(value & opt int 100_000 & info [ "elements" ] ~docv:"N"
           ~doc:"Array length.")
  in
  let phases =
    Arg.(value & opt int 1 & info [ "phases" ] ~docv:"P"
           ~doc:"Access-pattern phases (Fig. 5 uses 3).")
  in
  let cold_ratio =
    Arg.(value & opt int 0 & info [ "cold-ratio" ] ~docv:"R"
           ~doc:"Never-accessed cold elements per hot element (Fig. 6 uses 10).")
  in
  let run config_id all runs jobs scale saturated shard_domains _seed elements
      phases cold_ratio trace_out trace_sample verify cache_dir no_cache
      refresh tier_cap tier_lat tier_nop =
    let scale = max 1 (scale * (100_000 / max 1 elements)) in
    let exp =
      E.Fig_synthetic.experiment ~phases ~cold_ratio ~saturated ~shard_domains
        ~scale ()
    in
    run_experiment ?trace_out ~trace_sample ~verify
      ?cache:(cache_of ~no_cache ~refresh ~cache_dir)
      ~tier:(tier_cap, tier_lat, tier_nop) ~all ~runs ~jobs ~config_id exp
  in
  Cmd.v
    (Cmd.info "synthetic" ~doc:"The paper's synthetic micro-benchmark (§4.4)")
    Term.(
      const run $ config_id $ all_configs $ runs $ jobs $ scale $ saturated
      $ shard_domains $ seed $ elements $ phases $ cold_ratio $ trace_out
      $ trace_sample $ verify_flag $ cache_dir $ no_cache $ refresh_flag
      $ tier_capacity $ lat_far_arg $ tier_no_promote)

(* ------------------------------------------------------------------ *)
(* graph                                                               *)
(* ------------------------------------------------------------------ *)

let graph_cmd =
  let algo =
    let parse = function
      | "cc" -> Ok `Cc
      | "mc" -> Ok `Mc
      | s -> Error (`Msg ("unknown algorithm: " ^ s))
    in
    let print fmt a =
      Format.pp_print_string fmt (match a with `Cc -> "cc" | `Mc -> "mc")
    in
    Arg.(value
        & opt (conv (parse, print)) `Cc
        & info [ "algo" ] ~docv:"cc|mc" ~doc:"Connected components or maximal cliques.")
  in
  let dataset =
    let parse = function
      | "uk" -> Ok `Uk
      | "enwiki" -> Ok `Enwiki
      | s -> Error (`Msg ("unknown dataset: " ^ s))
    in
    let print fmt d =
      Format.pp_print_string fmt (match d with `Uk -> "uk" | `Enwiki -> "enwiki")
    in
    Arg.(value
        & opt (conv (parse, print)) `Uk
        & info [ "dataset" ] ~docv:"uk|enwiki" ~doc:"Table 3 input (generator stand-in).")
  in
  let run config_id all runs jobs scale _saturated shard_domains _seed algo
      dataset trace_out trace_sample verify cache_dir no_cache refresh
      tier_cap tier_lat tier_nop =
    let module D = Hcsgc_graph.Dataset in
    let exp =
      match (algo, dataset) with
      | `Cc, `Uk ->
          E.Fig_graph.cc_experiment ~shard_domains ~dataset:D.uk_cc
            ~scale:(4 * scale) ()
      | `Cc, `Enwiki ->
          E.Fig_graph.cc_experiment ~shard_domains ~dataset:D.enwiki_cc
            ~scale:(4 * scale) ()
      | `Mc, `Uk ->
          E.Fig_graph.mc_experiment ~shard_domains ~dataset:D.uk_mc
            ~scale:(2 * scale) ()
      | `Mc, `Enwiki ->
          E.Fig_graph.mc_experiment ~shard_domains ~dataset:D.enwiki_mc
            ~scale:(2 * scale) ()
    in
    run_experiment ?trace_out ~trace_sample ~verify
      ?cache:(cache_of ~no_cache ~refresh ~cache_dir)
      ~tier:(tier_cap, tier_lat, tier_nop) ~all ~runs ~jobs ~config_id exp
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"JGraphT-style graph workloads (§4.5)")
    Term.(
      const run $ config_id $ all_configs $ runs $ jobs $ scale $ saturated
      $ shard_domains $ seed $ algo $ dataset $ trace_out $ trace_sample
      $ verify_flag $ cache_dir $ no_cache $ refresh_flag $ tier_capacity
      $ lat_far_arg $ tier_no_promote)

(* ------------------------------------------------------------------ *)
(* h2 / tradebeans / specjbb                                           *)
(* ------------------------------------------------------------------ *)

let h2_cmd =
  let run config_id all runs jobs scale _ shard_domains _ trace_out
      trace_sample verify cache_dir no_cache refresh tier_cap tier_lat
      tier_nop =
    run_experiment ?trace_out ~trace_sample ~verify
      ?cache:(cache_of ~no_cache ~refresh ~cache_dir)
      ~tier:(tier_cap, tier_lat, tier_nop) ~all ~runs ~jobs ~config_id
      (E.Fig_dacapo.h2_experiment ~shard_domains ~scale ())
  in
  Cmd.v
    (Cmd.info "h2" ~doc:"In-memory-database workload (DaCapo h2 stand-in, §4.6)")
    Term.(
      const run $ config_id $ all_configs $ runs $ jobs $ scale $ saturated
      $ shard_domains $ seed $ trace_out $ trace_sample $ verify_flag
      $ cache_dir $ no_cache $ refresh_flag $ tier_capacity $ lat_far_arg
      $ tier_no_promote)

let tradebeans_cmd =
  let run config_id all runs jobs scale _ shard_domains _ trace_out
      trace_sample verify cache_dir no_cache refresh tier_cap tier_lat
      tier_nop =
    run_experiment ?trace_out ~trace_sample ~verify
      ?cache:(cache_of ~no_cache ~refresh ~cache_dir)
      ~tier:(tier_cap, tier_lat, tier_nop) ~all ~runs ~jobs ~config_id
      (E.Fig_dacapo.tradebeans_experiment ~shard_domains ~scale ())
  in
  Cmd.v
    (Cmd.info "tradebeans"
       ~doc:"Trading-session workload (DaCapo tradebeans stand-in, §4.6)")
    Term.(
      const run $ config_id $ all_configs $ runs $ jobs $ scale $ saturated
      $ shard_domains $ seed $ trace_out $ trace_sample $ verify_flag
      $ cache_dir $ no_cache $ refresh_flag $ tier_capacity $ lat_far_arg
      $ tier_no_promote)

let specjbb_cmd =
  let run config_id _all _runs scale _ shard_domains seed verify =
    let module S = Hcsgc_workloads.Specjbb_sim in
    let config = Config.of_id config_id in
    let params = E.Fig_specjbb.experiment_params ~scale in
    let vm =
      Vm.create
        ~layout:(Layout.scaled ~small_page:(64 * 1024))
        ~machine_config:E.Scaled_machine.config
        ~mutators:params.S.handlers ~shard_domains ~config
        ~max_heap:(24 * 1024 * 1024) ()
    in
    if verify then Vm.enable_verification vm;
    let r = S.run vm { params with S.seed } in
    Vm.finish vm;
    Format.fprintf fmt "throughput (max-jOPS-like):    %.2f txn/Mcycle@."
      r.S.max_jops;
    Format.fprintf fmt "latency (critical-jOPS-like):  %.2f txn/Mcycle@."
      r.S.critical_jops;
    Format.fprintf fmt "mean latency: %.0f cycles; survival: %.2f%%@."
      r.S.mean_latency
      (100.0 *. r.S.survival_rate);
    report_single vm
  in
  Cmd.v
    (Cmd.info "specjbb" ~doc:"SPECjbb2015-style ramping workload (§4.7)")
    Term.(
      const run $ config_id $ all_configs $ runs $ scale $ saturated
      $ shard_domains $ seed $ verify_flag)

let lru_cmd =
  let run config_id gc_log seed verify =
    let module L = Hcsgc_workloads.Lru_sim in
    let config = Config.of_id config_id in
    let vm =
      Vm.create
        ~layout:(Layout.scaled ~small_page:(64 * 1024))
        ~machine_config:E.Scaled_machine.config ~gc_log ~config
        ~max_heap:(4 * 1024 * 1024) ()
    in
    if verify then Vm.enable_verification vm;
    let r = L.run vm { L.default with L.seed } in
    Vm.finish vm;
    Format.fprintf fmt "gets=%d hits=%d (%.1f%%) puts=%d evictions=%d@."
      r.L.gets r.L.hits
      (100.0 *. float_of_int r.L.hits /. float_of_int (max 1 r.L.gets))
      r.L.puts r.L.evictions;
    report_single vm;
    if gc_log then
      match Vm.gc_log vm with
      | Some recorder ->
          Format.fprintf fmt "@.-- GC event log (newest window) --@.%a"
            Hcsgc_core.Gc_log.pp recorder
      | None -> ()
  in
  Cmd.v
    (Cmd.info "lru" ~doc:"LRU object-cache service (pointer-surgery workload)")
    Term.(const run $ config_id $ gc_log_flag $ seed $ verify_flag)

(* ------------------------------------------------------------------ *)
(* serve: the KV serving tier with SLO accounting                      *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let module Serve = Hcsgc_serve.Serve in
  let module Slo = Hcsgc_serve.Slo in
  let module Arrival = Hcsgc_serve.Arrival in
  let module Keydist = Hcsgc_workloads.Keydist in
  let d = Serve.default in
  let keys =
    Arg.(value & opt int d.Serve.keys & info [ "keys" ] ~docv:"N"
           ~doc:"Distinct keys in the store (all prepopulated).")
  in
  let value_words =
    Arg.(value & opt int d.Serve.value_words & info [ "value-words" ]
           ~docv:"W" ~doc:"Payload words per entry.")
  in
  let mutators =
    Arg.(value & opt int d.Serve.mutators & info [ "mutators" ] ~docv:"N"
           ~doc:"Serving threads; keys are sharded across them by key mod N.")
  in
  let dist =
    Arg.(value & opt string "zipf:0.99" & info [ "dist" ] ~docv:"SPEC"
           ~doc:"Key distribution: uniform, hotset:HOT,BIAS, zipf[:THETA], \
                 seq[:STRIDE].")
  in
  let mix =
    Arg.(value & opt string "60,35,5" & info [ "mix" ] ~docv:"G,U,S"
           ~doc:"Request mix as get,update,scan percentages (sum 100).")
  in
  let scan_len =
    Arg.(value & opt int d.Serve.mix.Serve.scan_len & info [ "scan-len" ]
           ~docv:"L" ~doc:"Consecutive slots read per scan request.")
  in
  let arrivals =
    Arg.(value & opt string "constant" & info [ "arrivals" ] ~docv:"PROC"
           ~doc:"Arrival process: constant, diurnal[:TROUGH], \
                 bursty[:PERIOD,BURST,MULT].")
  in
  let load =
    Arg.(value & opt float d.Serve.load & info [ "load" ] ~docv:"R"
           ~doc:"Offered load in requests per megacycle (open loop).")
  in
  let duration =
    Arg.(value & opt int (d.Serve.duration / 1_000_000) & info [ "duration" ]
           ~docv:"MC" ~doc:"Arrival window in megacycles.")
  in
  let slo_us =
    Arg.(value & opt int 5 & info [ "slo-us" ] ~docv:"US"
           ~doc:"Latency SLO in microseconds (at 3 GHz); 0 disables \
                 violation accounting.")
  in
  let heap_mb =
    Arg.(value & opt int 8 & info [ "heap-mb" ] ~docv:"MB"
           ~doc:"Max heap in MiB.")
  in
  let run config_id keys value_words mutators dist mix scan_len arrivals load
      duration slo_us heap_mb seed shard_domains trace_out trace_sample
      verify tier_cap tier_lat tier_nop =
    let fail fmt_str = Format.kasprintf (fun m -> Format.eprintf "%s@." m; exit 2) fmt_str in
    let dist =
      match Keydist.spec_of_string dist with
      | Ok s -> s
      | Error e -> fail "%s" e
    in
    let process =
      match Arrival.process_of_string arrivals with
      | Ok p -> p
      | Error e -> fail "%s" e
    in
    let gets, updates, scans =
      match String.split_on_char ',' mix |> List.map int_of_string_opt with
      | [ Some g; Some u; Some s ] -> (g, u, s)
      | _ -> fail "bad --mix %S (expected G,U,S percentages)" mix
    in
    let p =
      {
        Serve.keys;
        value_words;
        mutators;
        dist;
        mix = { Serve.gets; updates; scans; scan_len };
        process;
        load;
        duration = duration * 1_000_000;
        seed;
      }
    in
    let config =
      apply_tier ~capacity:tier_cap ~lat_far:tier_lat ~no_promote:tier_nop
        (Config.of_id config_id)
    in
    Format.fprintf fmt "serve under config %d (%s)%s%s@." config_id
      (Config.to_string config)
      (if shard_domains > 0 then
         Printf.sprintf " [sharded x%d]" shard_domains
       else "")
      (if verify then " [verified]" else "");
    let vm =
      Vm.create
        ~layout:(Layout.scaled ~small_page:(64 * 1024))
        ~machine_config:E.Scaled_machine.config ~mutators ~shard_domains
        ~trigger:0.10 ~config
        ~max_heap:(heap_mb * 1024 * 1024)
        ()
    in
    if verify then Vm.enable_verification vm;
    (* Telemetry is always on here: pause intervals feed the SLO
       attribution (and it charges no simulated cycles). *)
    let recorder = Vm.enable_telemetry ~sample_interval:trace_sample vm in
    let r = Serve.run vm p in
    Vm.finish vm;
    let report =
      Slo.analyze
        ~slo:(slo_us * Slo.cycles_per_us)
        ~duration:p.Serve.duration
        ~pauses:(Hcsgc_telemetry.Analyzer.pause_intervals recorder)
        r
    in
    Format.fprintf fmt "%a@." Slo.pp report;
    Format.fprintf fmt "%a@." Slo.pp_histogram (Slo.histogram r.Serve.requests);
    Format.fprintf fmt "checksum: %d@.@." r.Serve.checksum;
    report_single vm;
    match trace_out with
    | Some path -> emit_artifacts ~trace_out:path recorder
    | None -> ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Simulated KV-store serving tier: open-loop arrivals, sharded \
          serving threads, tail-latency SLO accounting with GC-pause \
          attribution")
    Term.(
      const run $ config_id $ keys $ value_words $ mutators $ dist $ mix
      $ scan_len $ arrivals $ load $ duration $ slo_us $ heap_mb $ seed
      $ shard_domains $ trace_out $ trace_sample $ verify_flag
      $ tier_capacity $ lat_far_arg $ tier_no_promote)

(* ------------------------------------------------------------------ *)
(* profile: one (experiment, config) pair with full telemetry          *)
(* ------------------------------------------------------------------ *)

let profile_cmd =
  let exp_names =
    [ "f4"; "f5"; "f6"; "cc-uk"; "cc-enwiki"; "mc-uk"; "mc-enwiki"; "h2";
      "tradebeans" ]
  in
  let exp_arg =
    let doc =
      Printf.sprintf "Experiment to profile: %s."
        (String.concat ", " exp_names)
    in
    Arg.(value & opt string "f4" & info [ "exp" ] ~docv:"NAME" ~doc)
  in
  let experiment_of ~scale name =
    let module D = Hcsgc_graph.Dataset in
    match name with
    | "f4" -> Some (E.Fig_synthetic.experiment ~scale ())
    | "f5" -> Some (E.Fig_synthetic.experiment ~phases:3 ~scale ())
    | "f6" ->
        Some
          (E.Fig_synthetic.experiment ~cold_ratio:10 ~saturated:true
             ~heap_mult:2 ~scale ())
    | "cc-uk" ->
        Some (E.Fig_graph.cc_experiment ~dataset:D.uk_cc ~scale:(4 * scale) ())
    | "cc-enwiki" ->
        Some
          (E.Fig_graph.cc_experiment ~dataset:D.enwiki_cc ~scale:(4 * scale) ())
    | "mc-uk" -> Some (E.Fig_graph.mc_experiment ~dataset:D.uk_mc ~scale:(2 * scale) ())
    | "mc-enwiki" ->
        Some (E.Fig_graph.mc_experiment ~dataset:D.enwiki_mc ~scale:(2 * scale) ())
    | "h2" -> Some (E.Fig_dacapo.h2_experiment ~scale ())
    | "tradebeans" -> Some (E.Fig_dacapo.tradebeans_experiment ~scale ())
    | _ -> None
  in
  let run config_id scale exp_name trace_out trace_sample seed verify
      cache_dir no_cache refresh =
    match experiment_of ~scale exp_name with
    | None ->
        Format.eprintf "unknown experiment %S (expected one of: %s)@." exp_name
          (String.concat ", " exp_names);
        exit 2
    | Some exp ->
        let trace_out = Option.value trace_out ~default:"trace.json" in
        Format.fprintf fmt "profiling %s under config %d (%s)%s@."
          exp.E.Runner.name config_id
          (Config.to_string (Config.of_id config_id))
          (if verify then " [verified]" else "");
        let job = { E.Runner.exp; config_id; run = seed } in
        let cache = cache_of ~no_cache ~refresh ~cache_dir in
        let metrics, recorder =
          E.Runner.profile ~sample_interval:trace_sample ~verify ?cache job
        in
        Format.fprintf fmt "execution time: %.0f cycles, %d GC cycles@."
          metrics.E.Runner.wall metrics.E.Runner.gc_cycle_count;
        emit_artifacts ~trace_out recorder;
        Option.iter
          (fun c -> Format.eprintf "[profile] %s@." (store_line c.E.Runner.store))
          cache
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Profile one (experiment, configuration) pair: run it once with \
          telemetry attached and emit a Chrome trace-event JSON file, a CSV \
          counter time-series and a text summary (pause percentiles, MMU, \
          relocation attribution)")
    Term.(
      const run $ config_id $ scale $ exp_arg $ trace_out $ trace_sample
      $ seed $ verify_flag $ cache_dir $ no_cache $ refresh_flag)

(* ------------------------------------------------------------------ *)
(* fuzz: random-mutator smoke under full verification                  *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let module Fuzz = Hcsgc_fuzz.Fuzz in
  let seeds =
    Arg.(value & opt int 200 & info [ "seeds" ] ~docv:"N"
           ~doc:"Number of consecutive seeds to fuzz (starting at --seed).")
  in
  let ops =
    Arg.(value & opt int 1_500 & info [ "ops" ] ~docv:"N"
           ~doc:"Actions per seed.")
  in
  let slots =
    Arg.(value & opt int 24 & info [ "slots" ] ~docv:"N"
           ~doc:"Root-table slots.")
  in
  let out =
    Arg.(value
        & opt string "fuzz-counterexample.txt"
        & info [ "out" ] ~docv:"FILE"
            ~doc:"Where to write the shrunk counterexample on failure.")
  in
  let no_oracle =
    Arg.(value & flag & info [ "no-oracle" ]
           ~doc:"Skip the mark-sweep reachability oracle (invariants only).")
  in
  let mutators =
    Arg.(value & opt int 1 & info [ "mutators" ] ~docv:"N"
           ~doc:"Deal actions round-robin over $(docv) mutator threads.")
  in
  let run config_id seed seeds ops slots out no_oracle mutators shard_domains
      tier_cap tier_lat tier_nop =
    let config =
      apply_tier ~capacity:tier_cap ~lat_far:tier_lat ~no_promote:tier_nop
        (Config.of_id config_id)
    in
    Format.fprintf fmt
      "fuzzing %d seed(s) from %d: config %d (%s), %d ops x %d slots, %d \
       mutator(s)%s@."
      seeds seed config_id (Config.to_string config) ops slots mutators
      (if shard_domains > 0 then
         Printf.sprintf " [sharded x%d]" shard_domains
       else "");
    let failed = ref None in
    let i = ref 0 in
    while !failed = None && !i < seeds do
      let s = seed + !i in
      (match
         Fuzz.check_seed ~oracle:(not no_oracle) ~mutators ~shard_domains
           ~config ~slots ~ops ~seed:s ()
       with
      | None ->
          if (!i + 1) mod 25 = 0 || !i + 1 = seeds then
            Format.eprintf "[fuzz] %d/%d seeds ok@." (!i + 1) seeds
      | Some cex -> failed := Some cex);
      incr i
    done;
    match !failed with
    | None ->
        Format.fprintf fmt "all %d seeds passed under full verification@." seeds
    | Some cex ->
        let rendered = Format.asprintf "%a" Fuzz.pp_counterexample cex in
        write_file out rendered;
        Format.eprintf "[fuzz] FAILURE (seed %d); minimal counterexample:@.%s@."
          cex.Fuzz.seed rendered;
        Format.eprintf "[fuzz] wrote %s@." out;
        exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Fuzz the collector: drive a random mutator for many seeds with \
          phase-boundary invariant verification and the mark-sweep oracle \
          enabled, shrinking any failure to a minimal replayable action \
          sequence (written to --out)")
    Term.(
      const run $ config_id $ seed $ seeds $ ops $ slots $ out $ no_oracle
      $ mutators $ shard_domains $ tier_capacity $ lat_far_arg
      $ tier_no_promote)

(* ------------------------------------------------------------------ *)
(* tier: the far-memory capacity sweep                                 *)
(* ------------------------------------------------------------------ *)

let tier_cmd =
  let capacities =
    let doc =
      "Far-tier capacities to sweep, in small pages (64 KiB each at the \
       scaled layout); 0 is the tier-free baseline."
    in
    Arg.(value
        & opt (list int) E.Fig_tier.default_capacities
        & info [ "capacities" ] ~docv:"P1,P2,..." ~doc)
  in
  let run runs jobs scale shard_domains capacities lat_far no_promote verify
      cache_dir no_cache refresh =
    let cache = cache_of ~no_cache ~refresh ~cache_dir in
    E.Fig_tier.figure ~runs ~jobs ~scale ~shard_domains ~capacities ~lat_far
      ~promote:(not no_promote) ~verify ?cache fmt;
    Option.iter
      (fun c -> Format.eprintf "[tier] %s@." (store_line c.E.Runner.store))
      cache
  in
  Cmd.v
    (Cmd.info "tier"
       ~doc:
         "Sweep far-memory tier capacity across the workload families: far \
          hit rate, simulated wall time and DRAM-footprint savings per \
          capacity, under the strongest hotness configuration")
    Term.(
      const run $ runs $ jobs $ scale $ shard_domains $ capacities
      $ lat_far_arg $ tier_no_promote $ verify_flag $ cache_dir $ no_cache
      $ refresh_flag)

(* ------------------------------------------------------------------ *)
(* figure: delegate to the bench registry                              *)
(* ------------------------------------------------------------------ *)

let figure_cmd =
  let which =
    Arg.(required
        & pos 0 (some string) None
        & info [] ~docv:"FIG" ~doc:"t1 t2 t3 f4..f13 fserve ftier")
  in
  let run which runs jobs scale shard_domains cache_dir no_cache refresh =
    let cache = cache_of ~no_cache ~refresh ~cache_dir in
    let sd = shard_domains in
    (match which with
    | "t1" -> E.Tables.t1 fmt
    | "t2" -> E.Tables.t2 fmt
    | "t3" -> E.Tables.t3 ~scale fmt
    | "f4" -> E.Fig_synthetic.fig4 ~runs ~jobs ~scale ~shard_domains:sd ?cache fmt
    | "f5" -> E.Fig_synthetic.fig5 ~runs ~jobs ~scale ~shard_domains:sd ?cache fmt
    | "f6" ->
        (* saturated single core: no sharded execution model *)
        if sd > 0 then
          Format.eprintf "[figure] --shard-domains ignored for saturated f6@.";
        E.Fig_synthetic.fig6 ~runs ~jobs ~scale ?cache fmt
    | "f7" -> E.Fig_graph.fig7 ~runs ~jobs ~scale ~shard_domains:sd ?cache fmt
    | "f8" -> E.Fig_graph.fig8 ~runs ~jobs ~scale ~shard_domains:sd ?cache fmt
    | "f9" -> E.Fig_graph.fig9 ~runs ~jobs ~scale ~shard_domains:sd ?cache fmt
    | "f10" -> E.Fig_graph.fig10 ~runs ~jobs ~scale ~shard_domains:sd ?cache fmt
    | "f11" -> E.Fig_dacapo.fig11 ~runs ~jobs ~scale ~shard_domains:sd ?cache fmt
    | "f12" -> E.Fig_dacapo.fig12 ~runs ~jobs ~scale ~shard_domains:sd ?cache fmt
    | "f13" -> E.Fig_specjbb.fig13 ~runs ~jobs ~scale ~shard_domains:sd fmt
    | "fserve" ->
        E.Fig_serve.figure ~runs ~jobs ~scale ~shard_domains:sd ?cache fmt
    | "ftier" ->
        E.Fig_tier.figure ~runs ~jobs ~scale ~shard_domains:sd ?cache fmt
    | other -> Format.eprintf "unknown figure: %s@." other);
    Option.iter
      (fun c -> Format.eprintf "[figure] %s@." (store_line c.E.Runner.store))
      cache
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Regenerate one of the paper's tables or figures")
    Term.(
      const run $ which
      $ Arg.(value & opt int 3 & info [ "runs" ] ~docv:"N" ~doc:"Sample size.")
      $ jobs
      $ Arg.(value & opt int 2 & info [ "scale" ] ~docv:"K" ~doc:"Scale divisor.")
      $ shard_domains $ cache_dir $ no_cache $ refresh_flag)

let () =
  let info =
    Cmd.info "hcsgc-run" ~version:"1.0.0"
      ~doc:
        "Run HCSGC experiments: hotness-based GC relocation on a simulated \
         ZGC (PLDI 2020 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ synthetic_cmd; graph_cmd; h2_cmd; tradebeans_cmd; specjbb_cmd;
            lru_cmd; serve_cmd; profile_cmd; fuzz_cmd; tier_cmd; figure_cmd ]))
