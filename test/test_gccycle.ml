(* The steady-state allocation gate: a full GC cycle over all-garbage
   pages (bench/gccycle's churn kernel, scaled down) must allocate zero
   host words once arenas and tables have reached their high-water
   sizes.  This is the regression fence for the flat forwarding index,
   the reused phase arenas and the in-place heap bookkeeping — any
   reintroduced per-cycle boxing (an option, a tuple, a closure, a list)
   shows up here as a fraction of a word per cycle. *)

module Heap = Hcsgc_heap.Heap
module Layout = Hcsgc_heap.Layout
module Machine = Hcsgc_memsim.Machine
module Collector = Hcsgc_core.Collector
module Config = Hcsgc_core.Config
module Vec = Hcsgc_util.Vec

let check = Alcotest.check
let case = Alcotest.test_case

let small_page = 16 * 1024

let run_cycle col =
  Collector.start_cycle col;
  while Collector.in_cycle col do
    Collector.gc_work col ~budget:max_int
  done

let mk_churn () =
  let layout = Layout.scaled ~small_page in
  let heap = Heap.create ~layout ~max_bytes:(128 * small_page) () in
  let machine = Machine.create ~cores:2 () in
  let roots : Hcsgc_heap.Heap_obj.t Vec.t = Vec.create () in
  let col =
    Collector.create ~heap ~machine ~config:Config.zgc ~gc_core:1
      ~roots:(fun f -> Vec.iter f roots)
      ()
  in
  let mutate () =
    for _ = 1 to 2_000 do
      match Collector.alloc col ~core:0 ~nrefs:1 ~nwords:6 with
      | Some _ -> ()
      | None -> failwith "test_gccycle: heap exhausted"
    done
  in
  (col, mutate)

(* Gc.allocated_bytes allocates its own boxed result; the per-call
   constant is deterministic — calibrate and subtract (same scheme as
   bench/gccycle). *)
let overhead_per_call () =
  let a0 = Gc.allocated_bytes () in
  let a1 = Gc.allocated_bytes () in
  a1 -. a0

let churn_cycle_allocates_nothing () =
  let col, mutate = mk_churn () in
  (* Warmup: grow every arena, table and free list to steady state. *)
  for _ = 1 to 30 do
    mutate ();
    run_cycle col
  done;
  let ovh = overhead_per_call () in
  let rounds = 50 in
  let bytes = ref 0.0 in
  for _ = 1 to rounds do
    mutate ();
    let a0 = Gc.allocated_bytes () in
    run_cycle col;
    let a1 = Gc.allocated_bytes () in
    bytes := !bytes +. (a1 -. a0 -. ovh)
  done;
  let words_per_cycle =
    !bytes /. float_of_int (Sys.word_size / 8) /. float_of_int rounds
  in
  check Alcotest.bool
    (Printf.sprintf "steady-state churn cycle allocates (%.4f w/c, want < 0.05)"
       words_per_cycle)
    true
    (words_per_cycle < 0.05);
  (* The cycles measured were real ones: pages were freed and recycled. *)
  check Alcotest.bool "heap stayed bounded" true
    (Heap.used_bytes (Collector.heap col) < 128 * small_page);
  match Collector.verify col with
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "verify: %s" (String.concat "; " msgs)

(* The same drive loop must leave the simulated outcome untouched by the
   host-allocation discipline: two identical runs agree exactly (the
   cheap in-test stand-in for the cross-run byte-identity battery). *)
let churn_deterministic () =
  let run () =
    let col, mutate = mk_churn () in
    for _ = 1 to 20 do
      mutate ();
      run_cycle col
    done;
    let stats = Collector.stats col in
    ( Hcsgc_core.Gc_stats.cycles stats,
      Hcsgc_core.Gc_stats.pages_freed stats,
      Heap.used_bytes (Collector.heap col) )
  in
  let a = run () and b = run () in
  check
    (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int)
    "identical cycle/free/usage counters" a b

let suite =
  [
    ( "gccycle",
      [
        case "churn cycle allocates nothing" `Quick churn_cycle_allocates_nothing;
        case "churn deterministic" `Quick churn_deterministic;
      ] );
  ]
