(* Tests for the dTLB model. *)

module Hierarchy = Hcsgc_memsim.Hierarchy
module Machine = Hcsgc_memsim.Machine

let check = Alcotest.check
let case = Alcotest.test_case

let tlb_cfg =
  { Hierarchy.default_config with Hierarchy.tlb = true; prefetch = false }

let disabled_by_default () =
  let m = Machine.create ~cores:1 () in
  for i = 0 to 999 do
    ignore (Machine.load m ~core:0 (i * 4096))
  done;
  check Alcotest.int "no misses when disabled" 0 (Machine.tlb_misses m)

let first_touch_misses () =
  let m = Machine.create ~cfg:tlb_cfg ~cores:1 () in
  ignore (Machine.load m ~core:0 0);
  check Alcotest.int "cold page misses" 1 (Machine.tlb_misses m);
  ignore (Machine.load m ~core:0 64);
  check Alcotest.int "same page hits" 1 (Machine.tlb_misses m);
  ignore (Machine.load m ~core:0 4096);
  check Alcotest.int "next page misses" 2 (Machine.tlb_misses m)

let walk_latency_charged () =
  let m = Machine.create ~cfg:tlb_cfg ~cores:1 () in
  let cold = Machine.load m ~core:0 (1 lsl 20) in
  (* memory miss (200) + walk (25) *)
  check Alcotest.int "cold load includes walk" 225 cold;
  let warm = Machine.load m ~core:0 (1 lsl 20) in
  check Alcotest.int "warm load has no walk" 4 warm

let capacity_eviction () =
  let m = Machine.create ~cfg:tlb_cfg ~cores:1 () in
  (* Touch 128 pages (twice the 64-entry capacity), then re-touch page 0:
     it must have been evicted. *)
  for p = 0 to 127 do
    ignore (Machine.load m ~core:0 (p * 4096))
  done;
  let before = Machine.tlb_misses m in
  ignore (Machine.load m ~core:0 0);
  check Alcotest.int "page 0 re-walks" (before + 1) (Machine.tlb_misses m)

let dense_layout_fewer_walks () =
  (* The page-locality claim: the same 256 objects packed on few pages
     cause far fewer TLB misses than spread across many. *)
  let walks stride =
    let m = Machine.create ~cfg:tlb_cfg ~cores:1 () in
    for rounds = 1 to 4 do
      ignore rounds;
      for i = 0 to 255 do
        ignore (Machine.load m ~core:0 (i * stride))
      done
    done;
    Machine.tlb_misses m
  in
  let packed = walks 64 (* 256 objects on 4 pages *) in
  let sparse = walks 8192 (* one object every other page *) in
  check Alcotest.bool
    (Printf.sprintf "packed %d < sparse %d" packed sparse)
    true (packed * 8 < sparse)

let per_core_attribution () =
  let m = Machine.create ~cfg:tlb_cfg ~cores:2 () in
  ignore (Machine.load m ~core:0 0);
  ignore (Machine.load m ~core:1 0);
  (* Separate TLBs per core: both miss. *)
  check Alcotest.int "machine total" 2 (Machine.tlb_misses m);
  check Alcotest.int "core 0" 1 (Machine.core_tlb_misses m ~core:0);
  check Alcotest.int "core 1" 1 (Machine.core_tlb_misses m ~core:1)

let stores_also_translate () =
  let m = Machine.create ~cfg:tlb_cfg ~cores:1 () in
  ignore (Machine.store m ~core:0 8192);
  check Alcotest.int "store walked" 1 (Machine.tlb_misses m);
  ignore (Machine.load m ~core:0 8192);
  check Alcotest.int "load after store hits TLB" 1 (Machine.tlb_misses m)

let flush_resets () =
  let m = Machine.create ~cfg:tlb_cfg ~cores:1 () in
  ignore (Machine.load m ~core:0 0);
  Machine.flush m;
  check Alcotest.int "counter reset" 0 (Machine.tlb_misses m);
  ignore (Machine.load m ~core:0 0);
  check Alcotest.int "cold again" 1 (Machine.tlb_misses m)

let suite =
  [
    ( "memsim.tlb",
      [
        case "disabled by default" `Quick disabled_by_default;
        case "first touch misses" `Quick first_touch_misses;
        case "walk latency" `Quick walk_latency_charged;
        case "capacity eviction" `Quick capacity_eviction;
        case "dense layout fewer walks" `Quick dense_layout_fewer_walks;
        case "per-core attribution" `Quick per_core_attribution;
        case "stores translate" `Quick stores_also_translate;
        case "flush resets" `Quick flush_resets;
      ] );
  ]
