(* Tests for the far-memory tier: raw Tier residency against a naive
   reference model, heap tier-byte accounting against a reference, the
   far-counter scoping discipline at the machine level, end-to-end
   tiering effectiveness, the determinism battery (shard counts, worker
   counts, verified runs, warm store replay), and Corrupt_tier fault
   injection through the sanitizer. *)

module Tier = Hcsgc_memsim.Tier
module Machine = Hcsgc_memsim.Machine
module H = Hcsgc_memsim.Hierarchy
module Heap = Hcsgc_heap.Heap
module Page = Hcsgc_heap.Page
module Layout = Hcsgc_heap.Layout
module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Gc_stats = Hcsgc_core.Gc_stats
module Runner = Hcsgc_experiments.Runner
module Fig_tier = Hcsgc_experiments.Fig_tier
module Fig_synthetic = Hcsgc_experiments.Fig_synthetic
module Fuzz = Hcsgc_fuzz.Fuzz
module Result_store = Hcsgc_store.Result_store

let check = Alcotest.check
let case = Alcotest.test_case

let with_temp_dir f =
  let dir = Filename.temp_dir "hcsgc_tier_test" "" in
  Fun.protect (fun () -> f dir) ~finally:(fun () ->
      let rec rm path =
        if Sys.is_directory path then begin
          Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
          Sys.rmdir path
        end
        else Sys.remove path
      in
      try rm dir with Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Raw tier vs a naive reference model                                 *)
(* ------------------------------------------------------------------ *)

(* Operations over a 32-granule address window against a 12-granule
   tier; the model is a plain set of resident granule indices. *)
type tier_op = Demote of int * int | Promote of int * int | Reset

let granule = 64
let window = 32
let cap_granules = 12

let arbitrary_tier_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Demote (s, l) -> Printf.sprintf "D%d+%d" s l
             | Promote (s, l) -> Printf.sprintf "P%d+%d" s l
             | Reset -> "R")
           ops))
    QCheck.Gen.(
      list_size (int_range 0 200)
        (frequency
           [
             (10, map2 (fun s l -> Demote (s, 1 + l))
                (int_bound (window - 5)) (int_bound 3));
             (8, map2 (fun s l -> Promote (s, 1 + l))
                (int_bound (window - 5)) (int_bound 3));
             (1, return Reset);
           ]))

let prop_tier_matches_model =
  QCheck.Test.make ~name:"tier: residency/bytes/peak match a naive model"
    ~count:200 arbitrary_tier_ops (fun ops ->
      let t =
        Tier.create ~granule_bytes:granule
          ~capacity_bytes:(cap_granules * granule) ~lat_far:500 ()
      in
      let model = Hashtbl.create 32 in
      let peak = ref 0 in
      List.iter
        (fun op ->
          match op with
          | Reset ->
              Tier.reset t;
              Hashtbl.reset model;
              peak := 0
          | Demote (s, l) ->
              (* Mirror the API contract: only issue legal demotions
                 (no granule already resident); an over-capacity one
                 must return false and change nothing. *)
              let gs = List.init l (fun i -> s + i) in
              if List.for_all (fun g -> not (Hashtbl.mem model g)) gs then begin
                let fits = Hashtbl.length model + l <= cap_granules in
                let accepted =
                  Tier.demote t ~addr:(s * granule) ~bytes:(l * granule)
                in
                if accepted <> fits then
                  QCheck.Test.fail_reportf "demote %d+%d: accepted=%b fits=%b"
                    s l accepted fits;
                if accepted then begin
                  List.iter (fun g -> Hashtbl.replace model g ()) gs;
                  peak := max !peak (Hashtbl.length model)
                end
              end
          | Promote (s, l) ->
              let gs = List.init l (fun i -> s + i) in
              if List.for_all (Hashtbl.mem model) gs then begin
                Tier.promote t ~addr:(s * granule) ~bytes:(l * granule);
                List.iter (Hashtbl.remove model) gs
              end)
        ops;
      (* Final agreement: per-granule residency, used bytes, peak. *)
      for g = 0 to window - 1 do
        if Tier.resident t (g * granule) <> Hashtbl.mem model g then
          QCheck.Test.fail_reportf "granule %d residency diverged" g
      done;
      Tier.used_bytes t = Hashtbl.length model * granule
      && Tier.peak_bytes t = !peak * granule
      && Tier.would_fit t ~bytes:((cap_granules - Hashtbl.length model) * granule))

let tier_rejects_illegal_transitions () =
  let t =
    Tier.create ~granule_bytes:64 ~capacity_bytes:512 ~lat_far:500 ()
  in
  check Alcotest.bool "demote fits" true (Tier.demote t ~addr:0 ~bytes:128);
  Alcotest.check_raises "double demotion"
    (Invalid_argument "Tier.demote: granule already resident") (fun () ->
      ignore (Tier.demote t ~addr:64 ~bytes:64));
  Alcotest.check_raises "promote of non-resident"
    (Invalid_argument "Tier.promote: granule not resident") (fun () ->
      Tier.promote t ~addr:256 ~bytes:64);
  check Alcotest.bool "over-capacity demote refused" false
    (Tier.demote t ~addr:1024 ~bytes:1024);
  check Alcotest.int "refused demote left state alone" 128 (Tier.used_bytes t)

(* ------------------------------------------------------------------ *)
(* Heap tier-byte accounting vs a naive reference                      *)
(* ------------------------------------------------------------------ *)

let heap_accounting_matches_reference () =
  let layout = Layout.scaled ~small_page:(16 * 1024) in
  let heap = Heap.create ~layout ~max_bytes:(1024 * 1024) () in
  let rng = Hcsgc_util.Rng.create 7 in
  let pages = ref [] in
  let far = Hashtbl.create 16 in
  let reference () =
    Hashtbl.fold (fun _ size acc -> acc + size) far 0
  in
  let walked () =
    let sum = ref 0 in
    Heap.iter_pages heap (fun p ->
        if p.Page.tier = Page.Far then sum := !sum + p.Page.size);
    !sum
  in
  for _ = 1 to 400 do
    (match Hcsgc_util.Rng.int rng 4 with
    | 0 -> (
        match Heap.alloc_page heap ~cls:Layout.Small ~bytes:0 ~birth_cycle:0 with
        | Some p -> pages := p :: !pages
        | None -> ())
    | 1 -> (
        match !pages with
        | [] -> ()
        | l ->
            let p = List.nth l (Hcsgc_util.Rng.int rng (List.length l)) in
            if p.Page.tier = Page.Dram then begin
              Heap.set_tier_far heap p;
              Hashtbl.replace far p.Page.id p.Page.size
            end)
    | 2 -> (
        match !pages with
        | [] -> ()
        | l ->
            let p = List.nth l (Hcsgc_util.Rng.int rng (List.length l)) in
            if p.Page.tier = Page.Far then begin
              Heap.set_tier_dram heap p;
              Hashtbl.remove far p.Page.id
            end)
    | _ -> (
        match !pages with
        | [] -> ()
        | l ->
            let p = List.nth l (Hcsgc_util.Rng.int rng (List.length l)) in
            Heap.free_page heap p;
            Hashtbl.remove far p.Page.id;
            pages := List.filter (fun q -> q != p) !pages;
            (* Freeing must reset the tier bit so a recycled page never
               inherits far residency. *)
            check Alcotest.bool "freed page back to DRAM" true
              (p.Page.tier = Page.Dram)));
    check Alcotest.int "far_bytes = reference" (reference ())
      (Heap.far_bytes heap);
    check Alcotest.int "far_bytes = page walk" (walked ())
      (Heap.far_bytes heap)
  done;
  check Alcotest.bool "exercised the far path" true (Hashtbl.length far >= 0)

let heap_set_tier_far_rejects_freed () =
  let layout = Layout.scaled ~small_page:(16 * 1024) in
  let heap = Heap.create ~layout ~max_bytes:(256 * 1024) () in
  let p =
    Option.get (Heap.alloc_page heap ~cls:Layout.Small ~bytes:0 ~birth_cycle:0)
  in
  Heap.free_page heap p;
  Alcotest.check_raises "freed pages cannot go far"
    (Invalid_argument "Heap.set_tier_far: page is freed") (fun () ->
      Heap.set_tier_far heap p)

(* ------------------------------------------------------------------ *)
(* Machine-level far counters and latency                              *)
(* ------------------------------------------------------------------ *)

let machine_far_latency_and_counters () =
  let cfg = H.default_config in
  let mk () =
    let m = Machine.create ~cfg ~cores:2 () in
    let t =
      Tier.create ~granule_bytes:4096 ~capacity_bytes:8192
        ~lat_far:(cfg.H.lat_mem + 123) ()
    in
    check Alcotest.bool "demoted" true (Tier.demote t ~addr:0 ~bytes:4096);
    Machine.set_tier m (Some t);
    m
  in
  (* A cold demand load of a far-resident line costs lat_far where the
     DRAM line costs lat_mem; stores stay write-buffered and never pay
     far latency. *)
  let m = mk () in
  let far_cost = Machine.load m ~core:0 0 in
  let m2 = mk () in
  let dram_cost = Machine.load m2 ~core:0 8192 in
  check Alcotest.int "far load costs lat_far - lat_mem extra" 123
    (far_cost - dram_cost);
  let m3 = mk () in
  let far_store = Machine.store m3 ~core:0 0 in
  let m4 = mk () in
  let dram_store = Machine.store m4 ~core:0 8192 in
  check Alcotest.int "stores never pay far latency" dram_store far_store;
  (* Counter scoping: machine-wide far_loads is the sum of the per-core
     counters, and far loads are a subset of LLC misses. *)
  let m = mk () in
  ignore (Machine.load m ~core:0 0);
  ignore (Machine.load m ~core:1 512);
  ignore (Machine.load m ~core:1 8192);
  check Alcotest.int "two far loads" 2 (Machine.far_loads m);
  check Alcotest.int "machine = sum of cores" (Machine.far_loads m)
    (Machine.core_far_loads m ~core:0 + Machine.core_far_loads m ~core:1);
  check Alcotest.bool "far subset of LLC misses" true
    (Machine.far_loads m <= (Machine.counters m).H.llc_misses);
  Machine.reset_counters m;
  check Alcotest.int "reset zeroes far counters" 0
    (Machine.far_loads m + Machine.core_far_loads m ~core:0)

(* ------------------------------------------------------------------ *)
(* End-to-end effectiveness and the counter discipline on a VM         *)
(* ------------------------------------------------------------------ *)

let tiered_config ?(capacity = 16) () =
  Fig_tier.tier_config ~capacity ~lat_far:800 ~promote:true

(* One tiered cold-heavy synthetic run, shared across assertions. *)
let tiered_run =
  lazy
    (let exp = Fig_synthetic.experiment ~cold_ratio:4 ~scale:25 () in
     let vm = exp.Runner.make_vm (tiered_config ()) in
     exp.Runner.workload vm ~run:0;
     Vm.finish vm;
     vm)

let tiering_is_effective () =
  let vm = Lazy.force tiered_run in
  let st = Vm.gc_stats vm in
  let tier = Option.get (Vm.tier vm) in
  check Alcotest.bool "cold pages were demoted" true
    (Gc_stats.pages_demoted st > 0);
  check Alcotest.bool "far tier served loads" true (Vm.far_loads vm > 0);
  check Alcotest.bool "peak residency recorded" true (Tier.peak_bytes tier > 0);
  check Alcotest.bool "far loads subset of LLC misses" true
    (Vm.far_loads vm <= (Vm.counters vm).H.llc_misses);
  let m = Runner.collect vm in
  check Alcotest.int "metrics carry demotions" (Gc_stats.pages_demoted st)
    m.Runner.pages_demoted;
  check Alcotest.bool "metrics carry far loads" true
    (m.Runner.far_loads = float_of_int (Vm.far_loads vm))

let tiering_off_is_inert () =
  let exp = Fig_synthetic.experiment ~cold_ratio:4 ~scale:25 () in
  let vm = exp.Runner.make_vm (Config.of_id 16) in
  exp.Runner.workload vm ~run:0;
  Vm.finish vm;
  check Alcotest.bool "no tier attached" true (Vm.tier vm = None);
  check Alcotest.int "no far loads" 0 (Vm.far_loads vm);
  let m = Runner.collect vm in
  check Alcotest.int "no demotions" 0 m.Runner.pages_demoted;
  check Alcotest.int "no promotions" 0 m.Runner.pages_promoted;
  (* The knobs do not leak into untiered configuration names, so every
     historical figure label is unchanged. *)
  check Alcotest.string "config 16 name unchanged" "hot+cp+cc1.0+lazy"
    (Config.to_string (Config.of_id 16));
  check Alcotest.string "tier knobs visible when on" "hot+cp+cc1.0+lazy+tier16"
    (Config.to_string (tiered_config ()))

let config_validation () =
  Alcotest.check_raises "tier requires hotness"
    (Invalid_argument "Config: TIER requires HOTNESS to be enabled")
    (fun () -> ignore (Config.make ~tier_capacity_pages:4 ()));
  Alcotest.check_raises "capacity must be non-negative"
    (Invalid_argument "Config: TIER capacity must be non-negative")
    (fun () ->
      ignore (Config.make ~hotness:true ~tier_capacity_pages:(-1) ()));
  Alcotest.check_raises "lat_far must be positive"
    (Invalid_argument "Config: LATFAR must be positive") (fun () ->
      ignore (Config.make ~hotness:true ~tier_capacity_pages:4 ~lat_far:0 ()))

(* ------------------------------------------------------------------ *)
(* Determinism battery                                                 *)
(* ------------------------------------------------------------------ *)

let tiered_metrics ~shard_domains ~verify =
  let exp = Fig_synthetic.experiment ~cold_ratio:4 ~shard_domains ~scale:50 () in
  let vm = exp.Runner.make_vm (tiered_config ()) in
  if verify then Vm.enable_verification vm;
  exp.Runner.workload vm ~run:0;
  Vm.finish vm;
  Runner.metrics_to_string (Runner.collect vm)

let tiered_shard_counts_identical () =
  let reference = tiered_metrics ~shard_domains:1 ~verify:false in
  check Alcotest.string "shard 2 = shard 1" reference
    (tiered_metrics ~shard_domains:2 ~verify:false);
  check Alcotest.string "shard 4 = shard 1" reference
    (tiered_metrics ~shard_domains:4 ~verify:false)

let tiered_verified_equals_unverified () =
  check Alcotest.string "verified = unverified"
    (tiered_metrics ~shard_domains:0 ~verify:false)
    (tiered_metrics ~shard_domains:0 ~verify:true)

let render_sweep results =
  String.concat "\n"
    (List.concat_map
       (fun (fam, caps) ->
         List.concat_map
           (fun (cap, outcomes) ->
             Printf.sprintf "%s@%d" fam cap
             :: Array.to_list (Array.map Fig_tier.outcome_to_string outcomes))
           caps)
       results)

let tier_sweep_jobs_identical () =
  let sweep jobs = render_sweep (Fig_tier.sweep ~capacities:[ 8 ] ~runs:1 ~jobs ~scale:8 ()) in
  check Alcotest.string "-j4 sweep = -j1 sweep" (sweep 1) (sweep 4)

let tier_sweep_warm_store_identical () =
  with_temp_dir (fun dir ->
      let cache = Runner.cache ~dir () in
      let sweep () =
        render_sweep
          (Fig_tier.sweep ~capacities:[ 0; 8 ] ~runs:1 ~jobs:1 ~cache ~scale:8 ())
      in
      let cold = sweep () in
      let after_cold = Result_store.counters cache.Runner.store in
      check Alcotest.int "cold sweep computed everything" 8
        after_cold.Result_store.stored;
      let warm = sweep () in
      let after_warm = Result_store.counters cache.Runner.store in
      check Alcotest.string "warm replay byte-identical" cold warm;
      check Alcotest.int "warm sweep computed nothing" 8
        after_warm.Result_store.stored;
      check Alcotest.int "warm sweep all hits" 8
        (after_warm.Result_store.hits - after_cold.Result_store.hits))

let prop_outcome_roundtrip =
  QCheck.Test.make ~name:"tier: outcome codec round-trips bit-exactly"
    ~count:300
    (QCheck.make
       QCheck.Gen.(
         let f =
           map (fun (m, e) -> ldexp m e)
             (pair (float_bound_inclusive 1.0) (int_range (-30) 30))
         in
         let* wall = f and* loads = f and* llc_misses = f and* far_loads = f in
         let* far_peak = int_bound 1_000_000 in
         let* demoted = int_bound 10_000 and* promoted = int_bound 10_000 in
         return
           {
             Fig_tier.wall; loads; llc_misses; far_loads; far_peak; demoted;
             promoted;
           }))
    (fun o ->
      Fig_tier.outcome_of_string (Fig_tier.outcome_to_string o) = Some o)

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

let tiered_fuzz_clean_seeds_pass () =
  for seed = 1 to 3 do
    match
      Fuzz.check_seed
        ~config:(tiered_config ~capacity:8 ())
        ~slots:24 ~ops:1_000 ~seed ()
    with
    | None -> ()
    | Some cex ->
        Alcotest.failf "clean tiered seed %d failed:@.%a" seed
          Fuzz.pp_counterexample cex
  done

let corrupt_tier_detected () =
  (* Flip a page's tier bit behind the accounting mid-run: the sanitizer's
     far-sum round-trip must flag it at the next phase edge (forced right
     after the corruption), and the corruption must survive shrinking. *)
  match
    Fuzz.check_seed ~shrink_budget:200
      ~inject:[ (400, Fuzz.Corrupt_tier); (401, Fuzz.Force_gc) ]
      ~config:(tiered_config ~capacity:8 ())
      ~slots:16 ~ops:800 ~seed:11 ()
  with
  | None -> Alcotest.fail "tier corruption was not detected"
  | Some cex ->
      check Alcotest.bool "corruption survives shrinking" true
        (List.exists
           (function Fuzz.Corrupt_tier -> true | _ -> false)
           cex.Fuzz.actions);
      (match Fuzz.replay ~config:(tiered_config ~capacity:8 ()) cex with
      | Fuzz.Fail _ -> ()
      | Fuzz.Pass _ -> Alcotest.fail "minimal counterexample no longer fails")

let corrupt_tier_detected_without_tier () =
  (* A Far-flagged page in an untiered run is itself corruption: the
     checks run with no Tier attached too. *)
  match
    Fuzz.check_seed ~shrink_budget:100
      ~inject:[ (300, Fuzz.Corrupt_tier); (301, Fuzz.Force_gc) ]
      ~config:(Config.of_id 18) ~slots:16 ~ops:600 ~seed:3 ()
  with
  | None -> Alcotest.fail "untiered tier corruption was not detected"
  | Some _ -> ()

let suite =
  [
    ( "tier.model",
      [
        QCheck_alcotest.to_alcotest prop_tier_matches_model;
        case "illegal transitions rejected" `Quick
          tier_rejects_illegal_transitions;
        case "heap accounting matches reference" `Quick
          heap_accounting_matches_reference;
        case "freed pages cannot go far" `Quick heap_set_tier_far_rejects_freed;
        case "machine far latency and counter scoping" `Quick
          machine_far_latency_and_counters;
      ] );
    ( "tier.effect",
      [
        case "tiering demotes and serves far loads" `Quick tiering_is_effective;
        case "tiering off is inert" `Quick tiering_off_is_inert;
        case "config validation" `Quick config_validation;
      ] );
    ( "tier.determinism",
      [
        case "shard counts byte-identical" `Slow tiered_shard_counts_identical;
        case "verified = unverified" `Slow tiered_verified_equals_unverified;
        case "sweep -j4 = -j1" `Slow tier_sweep_jobs_identical;
        case "warm store replay byte-identical" `Slow
          tier_sweep_warm_store_identical;
        QCheck_alcotest.to_alcotest prop_outcome_roundtrip;
      ] );
    ( "tier.faults",
      [
        case "tiered fuzz seeds pass" `Slow tiered_fuzz_clean_seeds_pass;
        case "Corrupt_tier detected and shrunk" `Slow corrupt_tier_detected;
        case "Corrupt_tier detected without a tier" `Quick
          corrupt_tier_detected_without_tier;
      ] );
  ]
