(* Tests for hcsgc.heap: coloured pointers, layout (Table 1), pages,
   forwarding tables, page table, heap allocation. *)

module Addr = Hcsgc_heap.Addr
module Layout = Hcsgc_heap.Layout
module Heap_obj = Hcsgc_heap.Heap_obj
module Fwd_table = Hcsgc_heap.Fwd_table
module Page = Hcsgc_heap.Page
module Page_table = Hcsgc_heap.Page_table
module Heap = Hcsgc_heap.Heap

let check = Alcotest.check
let case = Alcotest.test_case

let test_layout = Layout.scaled ~small_page:(64 * 1024)

(* ------------------------------------------------------------------ *)
(* Addr                                                                *)
(* ------------------------------------------------------------------ *)

let addr_roundtrip () =
  List.iter
    (fun c ->
      let p = Addr.make c 0xdeadbeef in
      check Alcotest.int "address preserved" 0xdeadbeef (Addr.addr p);
      check Alcotest.bool "colour preserved" true (Addr.has_color c p))
    [ Addr.M0; Addr.M1; Addr.R ]

let addr_null () =
  check Alcotest.bool "null is null" true (Addr.is_null Addr.null);
  check Alcotest.bool "null has no colour" false (Addr.has_color Addr.M0 Addr.null)

let addr_single_color () =
  let p = Addr.make Addr.M0 42 in
  check Alcotest.bool "M0" true (Addr.has_color Addr.M0 p);
  check Alcotest.bool "not M1" false (Addr.has_color Addr.M1 p);
  check Alcotest.bool "not R" false (Addr.has_color Addr.R p)

let addr_retint () =
  let p = Addr.make Addr.M0 123 in
  let q = Addr.retint Addr.R p in
  check Alcotest.int "address preserved" 123 (Addr.addr q);
  check Alcotest.bool "retinted" true (Addr.has_color Addr.R q);
  check Alcotest.bool "old colour gone" false (Addr.has_color Addr.M0 q)

let addr_mark_alternation () =
  check Alcotest.bool "M0 -> M1" true (Addr.next_mark_color Addr.M0 = Addr.M1);
  check Alcotest.bool "M1 -> M0" true (Addr.next_mark_color Addr.M1 = Addr.M0);
  Alcotest.check_raises "R is not a mark colour"
    (Invalid_argument "Addr.next_mark_color: R is not a mark colour") (fun () ->
      ignore (Addr.next_mark_color Addr.R))

let addr_rejects_zero () =
  Alcotest.check_raises "zero address"
    (Invalid_argument "Addr.make: address out of range") (fun () ->
      ignore (Addr.make Addr.M0 0))

let prop_addr_roundtrip =
  QCheck.Test.make ~name:"addr: make/addr roundtrip" ~count:500
    QCheck.(int_range 1 ((1 lsl 47) - 1))
    (fun a ->
      Addr.addr (Addr.make Addr.M0 a) = a
      && Addr.addr (Addr.make Addr.R a) = a)

(* ------------------------------------------------------------------ *)
(* Layout (Table 1)                                                    *)
(* ------------------------------------------------------------------ *)

let layout_table1 () =
  let l = Layout.paper in
  check Alcotest.int "small page 2MB" (2 * 1024 * 1024) l.Layout.small_page;
  check Alcotest.int "medium page 32MB" (32 * 1024 * 1024) l.Layout.medium_page;
  check Alcotest.int "small objects up to 256KB" (256 * 1024)
    l.Layout.small_obj_max;
  check Alcotest.int "medium objects up to 4MB" (4 * 1024 * 1024)
    l.Layout.medium_obj_max

let layout_class_boundaries () =
  let l = Layout.paper in
  check Alcotest.bool "1 byte -> small" true
    (Layout.class_of_object_size l 1 = Layout.Small);
  check Alcotest.bool "256KB -> small" true
    (Layout.class_of_object_size l (256 * 1024) = Layout.Small);
  check Alcotest.bool "256KB+1 -> medium" true
    (Layout.class_of_object_size l ((256 * 1024) + 1) = Layout.Medium);
  check Alcotest.bool "4MB -> medium" true
    (Layout.class_of_object_size l (4 * 1024 * 1024) = Layout.Medium);
  check Alcotest.bool "4MB+1 -> large" true
    (Layout.class_of_object_size l ((4 * 1024 * 1024) + 1) = Layout.Large)

let layout_large_page_rounding () =
  let l = Layout.paper in
  let five_mb = 5 * 1024 * 1024 in
  let page = Layout.page_bytes_for l Layout.Large five_mb in
  check Alcotest.int "rounded to 2MB granules" (6 * 1024 * 1024) page;
  check Alcotest.bool "multiple of granule" true (page mod Layout.granule l = 0)

let layout_object_bytes () =
  let l = Layout.paper in
  (* 16-byte header + 2 refs + 3 words = 16 + 40 = 56 *)
  check Alcotest.int "object size" 56 (Layout.object_bytes l ~nrefs:2 ~nwords:3)

let layout_scaled_ratios () =
  let l = test_layout in
  check Alcotest.int "medium = 16x small" (16 * l.Layout.small_page)
    l.Layout.medium_page;
  check Alcotest.int "small max = small/8" (l.Layout.small_page / 8)
    l.Layout.small_obj_max;
  check Alcotest.int "medium max = medium/8" (l.Layout.medium_page / 8)
    l.Layout.medium_obj_max

let layout_rejects_bad_scale () =
  Alcotest.check_raises "too small"
    (Invalid_argument "Layout.scaled: small page must be a power of two >= 4096")
    (fun () -> ignore (Layout.scaled ~small_page:1024));
  Alcotest.check_raises "not a power of two"
    (Invalid_argument "Layout.scaled: small page must be a power of two >= 4096")
    (fun () -> ignore (Layout.scaled ~small_page:5000))

(* ------------------------------------------------------------------ *)
(* Heap_obj                                                            *)
(* ------------------------------------------------------------------ *)

let obj_field_addresses () =
  let o =
    Heap_obj.create ~layout:test_layout ~id:1 ~addr:0x1000 ~nrefs:2 ~nwords:2
  in
  check Alcotest.int "ref 0 after header" 0x1010
    (Heap_obj.ref_slot_addr ~layout:test_layout o 0);
  check Alcotest.int "ref 1" 0x1018 (Heap_obj.ref_slot_addr ~layout:test_layout o 1);
  check Alcotest.int "payload 0 after refs" 0x1020
    (Heap_obj.payload_addr ~layout:test_layout o 0);
  check Alcotest.int "size" 48 o.Heap_obj.size

let obj_accessors () =
  let o =
    Heap_obj.create ~layout:test_layout ~id:2 ~addr:0x2000 ~nrefs:1 ~nwords:1
  in
  check Alcotest.int "refs start null" Addr.null (Heap_obj.get_ref o 0);
  Heap_obj.set_ref o 0 (Addr.make Addr.M0 0x3000);
  check Alcotest.int "ref stored" 0x3000 (Addr.addr (Heap_obj.get_ref o 0));
  Heap_obj.set_word o 0 77;
  check Alcotest.int "word stored" 77 (Heap_obj.get_word o 0)

let obj_bounds () =
  let o =
    Heap_obj.create ~layout:test_layout ~id:3 ~addr:0x1000 ~nrefs:1 ~nwords:1
  in
  Alcotest.check_raises "ref slot oob"
    (Invalid_argument "Heap_obj.ref_slot_addr: slot out of range") (fun () ->
      ignore (Heap_obj.ref_slot_addr ~layout:test_layout o 1));
  Alcotest.check_raises "payload oob"
    (Invalid_argument "Heap_obj.payload_addr: word out of range") (fun () ->
      ignore (Heap_obj.payload_addr ~layout:test_layout o 1))

(* ------------------------------------------------------------------ *)
(* Fwd_table                                                           *)
(* ------------------------------------------------------------------ *)

let fwd_claim_semantics () =
  let f = Fwd_table.create () in
  check Alcotest.bool "first claim wins" true
    (Fwd_table.claim f ~offset:64 ~new_addr:0x9000 = Fwd_table.Claimed);
  check Alcotest.bool "second claim loses" true
    (Fwd_table.claim f ~offset:64 ~new_addr:0xA000 = Fwd_table.Already 0x9000);
  check (Alcotest.option Alcotest.int) "find" (Some 0x9000)
    (Fwd_table.find f ~offset:64);
  check (Alcotest.option Alcotest.int) "missing" None (Fwd_table.find f ~offset:0);
  check Alcotest.int "entries" 1 (Fwd_table.entries f)

(* ------------------------------------------------------------------ *)
(* Page                                                                *)
(* ------------------------------------------------------------------ *)

let make_page ?(birth = 0) () =
  Page.create ~layout:test_layout ~id:0 ~cls:Layout.Small
    ~start:(Layout.granule test_layout) ~size:test_layout.Layout.small_page
    ~birth_cycle:birth

let page_bump_alloc () =
  let p = make_page () in
  check (Alcotest.option Alcotest.int) "first at 0" (Some 0) (Page.bump_alloc p 64);
  check (Alcotest.option Alcotest.int) "second at 64" (Some 64)
    (Page.bump_alloc p 32);
  check Alcotest.int "used" 96 (Page.used_bytes p);
  check Alcotest.int "free" (p.Page.size - 96) (Page.free_bytes p)

let page_bump_full () =
  let p = make_page () in
  ignore (Page.bump_alloc p (p.Page.size - 32));
  check (Alcotest.option Alcotest.int) "fits exactly"
    (Some (p.Page.size - 32))
    (Page.bump_alloc p 32);
  check (Alcotest.option Alcotest.int) "full" None (Page.bump_alloc p 8)

let obj_on_page page offset =
  let o =
    Heap_obj.create ~layout:test_layout ~id:offset
      ~addr:(page.Page.start + offset) ~nrefs:0 ~nwords:2
  in
  Page.add_object page o;
  o

let page_object_registry () =
  let p = make_page () in
  let o = obj_on_page p 128 in
  check Alcotest.bool "found" true (Page.find_object p ~offset:128 = Some o);
  Page.remove_object p o;
  check Alcotest.bool "removed" true (Page.find_object p ~offset:128 = None)

let page_liveness_accounting () =
  let p = make_page () in
  let o1 = obj_on_page p 0 and o2 = obj_on_page p 64 in
  check Alcotest.bool "first marking" true (Page.mark_live p o1);
  check Alcotest.bool "re-marking is idempotent" false (Page.mark_live p o1);
  ignore (Page.mark_live p o2);
  check Alcotest.int "live bytes" (o1.Heap_obj.size + o2.Heap_obj.size)
    p.Page.live_bytes;
  check Alcotest.int "live objects" 2 p.Page.live_objects;
  check Alcotest.bool "is marked" true (Page.is_marked_live p o1)

let page_iter_live_order () =
  let p = make_page () in
  let o1 = obj_on_page p 192 and o2 = obj_on_page p 0 and o3 = obj_on_page p 64 in
  List.iter (fun o -> ignore (Page.mark_live p o)) [ o1; o2; o3 ];
  let order = ref [] in
  Page.iter_live p (fun o -> order := o.Heap_obj.addr :: !order);
  check (Alcotest.list Alcotest.int) "ascending address order"
    [ p.Page.start; p.Page.start + 64; p.Page.start + 192 ]
    (List.rev !order)

let page_hotness () =
  let p = make_page () in
  let o = obj_on_page p 0 in
  ignore (Page.mark_live p o);
  check Alcotest.bool "cold initially" false (Page.is_hot p o);
  check Alcotest.bool "first flag" true (Page.flag_hot p o);
  check Alcotest.bool "second flag is a no-op" false (Page.flag_hot p o);
  check Alcotest.bool "hot" true (Page.is_hot p o);
  check Alcotest.int "hot bytes" o.Heap_obj.size p.Page.hot_bytes;
  check Alcotest.int "cold bytes" 0 (Page.cold_bytes p)

let page_hot_epoch_flip () =
  let p = make_page () in
  let o = obj_on_page p 0 in
  ignore (Page.mark_live p o);
  ignore (Page.flag_hot p o);
  Page.reset_mark_state p;
  check Alcotest.bool "cold in new epoch" false (Page.is_hot p o);
  check Alcotest.bool "hot in previous epoch" true (Page.was_hot p o);
  check Alcotest.int "live reset" 0 p.Page.live_bytes;
  check Alcotest.int "hot bytes reset" 0 p.Page.hot_bytes

let page_wlb () =
  let p = make_page () in
  (* 10 live objects of 32 bytes; 4 hot. *)
  let objs = List.init 10 (fun i -> obj_on_page p (i * 64)) in
  List.iter (fun o -> ignore (Page.mark_live p o)) objs;
  List.iteri (fun i o -> if i < 4 then ignore (Page.flag_hot p o)) objs;
  let hot = 4 * 32 and cold = 6 * 32 in
  check Alcotest.int "cc=0 degrades to live bytes" (hot + cold)
    (Page.weighted_live_bytes p ~cold_confidence:0.0);
  check Alcotest.int "cc=1 counts only hot bytes" hot
    (Page.weighted_live_bytes p ~cold_confidence:1.0);
  check Alcotest.int "cc=0.5 discounts cold" (hot + (cold / 2))
    (Page.weighted_live_bytes p ~cold_confidence:0.5)

let page_wlb_all_cold () =
  let p = make_page () in
  let objs = List.init 5 (fun i -> obj_on_page p (i * 64)) in
  List.iter (fun o -> ignore (Page.mark_live p o)) objs;
  (* hot bytes = 0: WLB is plain cold bytes regardless of confidence. *)
  check Alcotest.int "all-cold page uses cold bytes" (5 * 32)
    (Page.weighted_live_bytes p ~cold_confidence:1.0)

let page_live_ratio () =
  let p = make_page () in
  let o = obj_on_page p 0 in
  ignore (Page.mark_live p o);
  check (Alcotest.float 1e-9) "ratio"
    (float_of_int o.Heap_obj.size /. float_of_int p.Page.size)
    (Page.live_ratio p)

(* ------------------------------------------------------------------ *)
(* Page_table                                                          *)
(* ------------------------------------------------------------------ *)

let page_table_register_lookup () =
  let pt = Page_table.create ~layout:test_layout in
  let p = make_page () in
  Page_table.register pt p;
  check Alcotest.bool "start" true (Page_table.page_of_addr pt p.Page.start = Some p);
  check Alcotest.bool "last byte" true
    (Page_table.page_of_addr pt (p.Page.start + p.Page.size - 1) = Some p);
  check Alcotest.bool "before" true (Page_table.page_of_addr pt 0 = None);
  Page_table.unregister pt p;
  check Alcotest.bool "unregistered" true
    (Page_table.page_of_addr pt p.Page.start = None)

let page_table_medium_spans_granules () =
  let pt = Page_table.create ~layout:test_layout in
  let p =
    Page.create ~layout:test_layout ~id:1 ~cls:Layout.Medium
      ~start:(4 * Layout.granule test_layout)
      ~size:test_layout.Layout.medium_page ~birth_cycle:0
  in
  Page_table.register pt p;
  (* Probe the middle granule. *)
  let mid = p.Page.start + (8 * Layout.granule test_layout) in
  check Alcotest.bool "middle granule mapped" true
    (Page_table.page_of_addr pt mid = Some p)

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let mk_heap ?(max = 8 * 1024 * 1024) () =
  Heap.create ~layout:test_layout ~max_bytes:max ()

let heap_page_allocation () =
  let h = mk_heap () in
  match Heap.alloc_page h ~cls:Layout.Small ~bytes:0 ~birth_cycle:0 with
  | None -> Alcotest.fail "allocation failed"
  | Some p ->
      check Alcotest.int "used" p.Page.size (Heap.used_bytes h);
      check Alcotest.bool "mapped" true (Heap.page_of_addr h p.Page.start = Some p);
      check Alcotest.int "one small page" 1 (Heap.page_count h Layout.Small)

let heap_respects_max () =
  let h = mk_heap ~max:(128 * 1024) () in
  let p1 = Heap.alloc_page h ~cls:Layout.Small ~bytes:0 ~birth_cycle:0 in
  let p2 = Heap.alloc_page h ~cls:Layout.Small ~bytes:0 ~birth_cycle:0 in
  let p3 = Heap.alloc_page h ~cls:Layout.Small ~bytes:0 ~birth_cycle:0 in
  check Alcotest.bool "two fit" true (p1 <> None && p2 <> None);
  check Alcotest.bool "third rejected" true (p3 = None);
  check Alcotest.bool "force overrides" true
    (Heap.alloc_page ~force:true h ~cls:Layout.Small ~bytes:0 ~birth_cycle:0
    <> None)

let heap_free_then_recycle () =
  let h = mk_heap () in
  let p = Option.get (Heap.alloc_page h ~cls:Layout.Small ~bytes:0 ~birth_cycle:0) in
  let start = p.Page.start in
  Heap.free_page h p;
  check Alcotest.int "memory released" 0 (Heap.used_bytes h);
  check Alcotest.bool "unmapped" true (Heap.page_of_addr h start = None);
  (* Address range not recycled yet: the next page gets a fresh range. *)
  let q = Option.get (Heap.alloc_page h ~cls:Layout.Small ~bytes:0 ~birth_cycle:0) in
  check Alcotest.bool "fresh range while quarantined" true (q.Page.start <> start);
  Heap.recycle_range h p;
  let r = Option.get (Heap.alloc_page h ~cls:Layout.Small ~bytes:0 ~birth_cycle:0) in
  check Alcotest.int "recycled range reused" start r.Page.start

let heap_double_free_rejected () =
  let h = mk_heap () in
  let p = Option.get (Heap.alloc_page h ~cls:Layout.Small ~bytes:0 ~birth_cycle:0) in
  Heap.free_page h p;
  Alcotest.check_raises "double free"
    (Invalid_argument "Heap.free_page: page already freed") (fun () ->
      Heap.free_page h p)

let heap_object_allocation () =
  let h = mk_heap () in
  let p = Option.get (Heap.alloc_page h ~cls:Layout.Small ~bytes:0 ~birth_cycle:0) in
  let o = Option.get (Heap.alloc_object_in h p ~nrefs:1 ~nwords:1) in
  check Alcotest.bool "object at page start" true (o.Heap_obj.addr = p.Page.start);
  check Alcotest.bool "obj_at finds it" true (Heap.obj_at h o.Heap_obj.addr = Some o);
  check Alcotest.bool "obj_at misses elsewhere" true
    (Heap.obj_at h (o.Heap_obj.addr + 8) = None)

let heap_object_fills_page () =
  let h = mk_heap () in
  let p = Option.get (Heap.alloc_page h ~cls:Layout.Small ~bytes:0 ~birth_cycle:0) in
  let n = ref 0 in
  let rec fill () =
    match Heap.alloc_object_in h p ~nrefs:0 ~nwords:2 with
    | Some _ ->
        incr n;
        fill ()
    | None -> ()
  in
  fill ();
  check Alcotest.int "page capacity in 32B objects"
    (test_layout.Layout.small_page / 32)
    !n

let heap_large_object () =
  let h = mk_heap ~max:(32 * 1024 * 1024) () in
  (* An object bigger than medium_obj_max must land on its own large page. *)
  let words = (test_layout.Layout.medium_obj_max / 8) + 16 in
  let o = Option.get (Heap.alloc_large_object h ~nrefs:0 ~nwords:words ~birth_cycle:0) in
  let p = Option.get (Heap.page_of_addr h o.Heap_obj.addr) in
  check Alcotest.bool "large class" true (p.Page.cls = Layout.Large);
  check Alcotest.bool "single object page" true (p.Page.size >= o.Heap_obj.size)

let heap_ids_monotone () =
  let h = mk_heap () in
  let p = Option.get (Heap.alloc_page h ~cls:Layout.Small ~bytes:0 ~birth_cycle:0) in
  let a = Option.get (Heap.alloc_object_in h p ~nrefs:0 ~nwords:1) in
  let b = Option.get (Heap.alloc_object_in h p ~nrefs:0 ~nwords:1) in
  check Alcotest.bool "ids increase" true (b.Heap_obj.id > a.Heap_obj.id)

let prop_object_bytes_aligned =
  QCheck.Test.make ~name:"layout: object sizes word-aligned and monotone"
    ~count:300
    QCheck.(pair (int_bound 64) (int_bound 64))
    (fun (nrefs, nwords) ->
      let b = Layout.object_bytes test_layout ~nrefs ~nwords in
      b mod 8 = 0
      && b >= test_layout.Layout.header_bytes
      && Layout.object_bytes test_layout ~nrefs:(nrefs + 1) ~nwords > b)

let prop_addr_retint_idempotent =
  QCheck.Test.make ~name:"addr: retint is idempotent and colour-sound"
    ~count:300
    QCheck.(pair (int_range 8 1_000_000) (int_bound 2))
    (fun (a, c) ->
      let color = match c with 0 -> Addr.M0 | 1 -> Addr.M1 | _ -> Addr.R in
      let p = Addr.make Addr.M0 a in
      let q = Addr.retint color p in
      Addr.retint color q = q && Addr.color q = color && Addr.addr q = a)

let prop_fwd_first_claim_wins =
  QCheck.Test.make ~name:"fwd: first claim wins for every offset" ~count:200
    QCheck.(small_list (pair (int_bound 100) (int_range 1 100000)))
    (fun claims ->
      let f = Fwd_table.create () in
      let expected = Hashtbl.create 16 in
      List.for_all
        (fun (offset, addr) ->
          match Fwd_table.claim f ~offset ~new_addr:addr with
          | Fwd_table.Claimed ->
              if Hashtbl.mem expected offset then false
              else begin
                Hashtbl.add expected offset addr;
                true
              end
          | Fwd_table.Already a -> Hashtbl.find_opt expected offset = Some a)
        claims)

let prop_heap_pages_disjoint =
  QCheck.Test.make ~name:"heap: live pages have disjoint ranges" ~count:50
    QCheck.(small_list (int_bound 2))
    (fun classes ->
      let h = Heap.create ~layout:test_layout ~max_bytes:(256 * 1024 * 1024) () in
      List.iter
        (fun c ->
          let cls =
            match c with 0 -> Layout.Small | 1 -> Layout.Medium | _ -> Layout.Large
          in
          ignore
            (Heap.alloc_page h ~cls ~bytes:(3 * test_layout.Layout.medium_obj_max)
               ~birth_cycle:0))
        classes;
      let ranges = ref [] in
      Heap.iter_pages h (fun p ->
          ranges := (p.Page.start, p.Page.start + p.Page.size) :: !ranges);
      let rec disjoint = function
        | [] -> true
        | (s1, e1) :: rest ->
            List.for_all (fun (s2, e2) -> e1 <= s2 || e2 <= s1) rest
            && disjoint rest
      in
      disjoint !ranges)

(* ------------------------------------------------------------------ *)
(* Large-range free list: in-place first-fit splitting                 *)
(* ------------------------------------------------------------------ *)

(* The recycled-large-range list is scanned newest-first with first-fit;
   a larger range is split in place (remainder keeps its slot), an exact
   fit is removed.  These pin the allocation addresses, which is what the
   byte-identity of large-object workloads rests on. *)
let heap_large_first_fit_newest () =
  let h = Heap.create ~layout:test_layout ~max_bytes:(64 * 1024 * 1024) () in
  let g = Layout.granule test_layout in
  let alloc ngranules =
    Option.get
      (Heap.alloc_page h ~cls:Layout.Large ~bytes:(ngranules * g)
         ~birth_cycle:0)
  in
  let a = alloc 4 in
  let b = alloc 2 in
  let c = alloc 3 in
  let free p =
    Heap.free_page h p;
    Heap.recycle_range h p
  in
  (* Recycle B then A: the list holds [B; A] with A newest. *)
  free b;
  free a;
  (* First-fit newest-first: a 2-granule request splits A in place. *)
  let p1 = alloc 2 in
  check Alcotest.int "reuses newest range (A) first" a.Page.start p1.Page.start;
  (* The remainder of A is still newest; exact fit removes it. *)
  let p2 = alloc 2 in
  check Alcotest.int "then A's remainder" (a.Page.start + (2 * g))
    p2.Page.start;
  (* Only B remains; exact fit. *)
  let p3 = alloc 2 in
  check Alcotest.int "then the older range (B)" b.Page.start p3.Page.start;
  (* The list is empty: a fresh request extends the address space. *)
  let p4 = alloc 1 in
  check Alcotest.bool "fresh extension past C" true
    (p4.Page.start >= c.Page.start + (3 * g))

let heap_large_skips_too_small () =
  let h = Heap.create ~layout:test_layout ~max_bytes:(64 * 1024 * 1024) () in
  let g = Layout.granule test_layout in
  let alloc ngranules =
    Option.get
      (Heap.alloc_page h ~cls:Layout.Large ~bytes:(ngranules * g)
         ~birth_cycle:0)
  in
  let a = alloc 5 in
  let b = alloc 1 in
  Heap.free_page h a;
  Heap.recycle_range h a;
  Heap.free_page h b;
  Heap.recycle_range h b;
  (* Newest (B, 1 granule) is too small: first-fit falls through to A. *)
  let p = alloc 3 in
  check Alcotest.int "skips too-small newest range" a.Page.start p.Page.start;
  let q = alloc 1 in
  check Alcotest.int "exact fit still served newest-first" b.Page.start
    q.Page.start

(* ------------------------------------------------------------------ *)
(* Page-vector compaction: iteration order survives tombstone sweeps   *)
(* ------------------------------------------------------------------ *)

(* [Heap.free_page] compacts the page vector in place once enough freed
   tombstones accumulate.  EC selection iterates pages in this vector's
   order, so the sweep must preserve the relative order of live pages —
   a reordering here would silently change every figure. *)
let heap_compaction_preserves_page_order () =
  let h = Heap.create ~layout:test_layout ~max_bytes:(1024 * 1024 * 1024) () in
  let g = Layout.granule test_layout in
  let pages =
    Array.init 400 (fun _ ->
        Option.get
          (Heap.alloc_page h ~cls:Layout.Small ~bytes:g ~birth_cycle:0))
  in
  (* Free enough to cross the compaction trigger (> 256 entries, more
     than half tombstones), in a scattered pattern. *)
  Array.iteri
    (fun i p -> if i mod 3 <> 1 then Heap.free_page h p)
    pages;
  let survivors = ref [] in
  Heap.iter_pages h (fun p -> survivors := p.Page.id :: !survivors);
  let expected =
    Array.to_list pages
    |> List.filteri (fun i _ -> i mod 3 = 1)
    |> List.map (fun (p : Page.t) -> p.Page.id)
  in
  check (Alcotest.list Alcotest.int) "survivors in creation order" expected
    (List.rev !survivors);
  (* Pages allocated after the sweep append after the survivors. *)
  let extra =
    Option.get (Heap.alloc_page h ~cls:Layout.Small ~bytes:g ~birth_cycle:1)
  in
  let after = ref [] in
  Heap.iter_pages h (fun p -> after := p.Page.id :: !after);
  check (Alcotest.list Alcotest.int) "new page appends at the end"
    (expected @ [ extra.Page.id ])
    (List.rev !after)

let suite =
  [
    ( "heap.addr",
      [
        case "roundtrip" `Quick addr_roundtrip;
        case "null" `Quick addr_null;
        case "single colour" `Quick addr_single_color;
        case "retint" `Quick addr_retint;
        case "mark alternation" `Quick addr_mark_alternation;
        case "rejects zero" `Quick addr_rejects_zero;
        QCheck_alcotest.to_alcotest prop_addr_roundtrip;
      ] );
    ( "heap.layout",
      [
        case "Table 1 sizes" `Quick layout_table1;
        case "class boundaries" `Quick layout_class_boundaries;
        case "large page rounding" `Quick layout_large_page_rounding;
        case "object bytes" `Quick layout_object_bytes;
        case "scaled ratios" `Quick layout_scaled_ratios;
        case "rejects bad scale" `Quick layout_rejects_bad_scale;
      ] );
    ( "heap.obj",
      [
        case "field addresses" `Quick obj_field_addresses;
        case "accessors" `Quick obj_accessors;
        case "bounds" `Quick obj_bounds;
      ] );
    ("heap.fwd", [ case "claim semantics" `Quick fwd_claim_semantics ]);
    ( "heap.page",
      [
        case "bump alloc" `Quick page_bump_alloc;
        case "bump full" `Quick page_bump_full;
        case "object registry" `Quick page_object_registry;
        case "liveness accounting" `Quick page_liveness_accounting;
        case "iter_live order" `Quick page_iter_live_order;
        case "hotness" `Quick page_hotness;
        case "hot epoch flip" `Quick page_hot_epoch_flip;
        case "weighted live bytes" `Quick page_wlb;
        case "WLB all-cold page" `Quick page_wlb_all_cold;
        case "live ratio" `Quick page_live_ratio;
      ] );
    ( "heap.page_table",
      [
        case "register/lookup" `Quick page_table_register_lookup;
        case "medium spans granules" `Quick page_table_medium_spans_granules;
      ] );
    ( "heap.heap",
      [
        case "page allocation" `Quick heap_page_allocation;
        case "respects max" `Quick heap_respects_max;
        case "free then recycle" `Quick heap_free_then_recycle;
        case "double free rejected" `Quick heap_double_free_rejected;
        case "object allocation" `Quick heap_object_allocation;
        case "objects fill page" `Quick heap_object_fills_page;
        case "large object" `Quick heap_large_object;
        case "ids monotone" `Quick heap_ids_monotone;
        case "large first-fit newest" `Quick heap_large_first_fit_newest;
        case "large skips too-small" `Quick heap_large_skips_too_small;
        case "compaction keeps page order" `Quick
          heap_compaction_preserves_page_order;
        QCheck_alcotest.to_alcotest prop_heap_pages_disjoint;
        QCheck_alcotest.to_alcotest prop_object_bytes_aligned;
        QCheck_alcotest.to_alcotest prop_addr_retint_idempotent;
        QCheck_alcotest.to_alcotest prop_fwd_first_claim_wins;
      ] );
  ]
