(* Tests for hcsgc.workloads: the synthetic micro-benchmark, the DaCapo
   stand-ins and the SPECjbb stand-in — determinism, GC-independence of
   results, and profile properties the paper relies on. *)

module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Gc_stats = Hcsgc_core.Gc_stats
module Layout = Hcsgc_heap.Layout
module Synthetic = Hcsgc_workloads.Synthetic
module H2 = Hcsgc_workloads.H2_sim
module Tradebeans = Hcsgc_workloads.Tradebeans_sim
module Specjbb = Hcsgc_workloads.Specjbb_sim

let check = Alcotest.check
let case = Alcotest.test_case

let layout = Layout.scaled ~small_page:(16 * 1024)

let mk_vm ?(config = Config.zgc) ?(max_heap = 16 * 1024 * 1024) () =
  Vm.create ~layout ~config ~max_heap ()

let small_synth =
  {
    Synthetic.default with
    Synthetic.elements = 2_000;
    accesses_per_loop = 1_000;
    loops = 6;
    garbage_words = 8;
  }

let synthetic_runs_and_counts () =
  let vm = mk_vm () in
  let r = Synthetic.run vm small_synth in
  check Alcotest.int "access count" 6_000 r.Synthetic.accesses

let synthetic_checksum_config_independent () =
  (* The computation's RESULT must not depend on the GC configuration —
     only its timing may. *)
  let checksum config =
    let vm = mk_vm ~config () in
    (Synthetic.run vm small_synth).Synthetic.checksum
  in
  let base = checksum Config.zgc in
  List.iter
    (fun id ->
      check Alcotest.int
        (Printf.sprintf "checksum under config %d" id)
        base
        (checksum (Config.of_id id)))
    [ 3; 7; 16; 18 ]

let synthetic_triggers_gc () =
  let vm = mk_vm ~max_heap:(1024 * 1024) () in
  ignore (Synthetic.run vm small_synth);
  check Alcotest.bool "GC cycles ran" true
    (Gc_stats.cycles (Vm.gc_stats vm) > 0)

let synthetic_phases () =
  let vm = mk_vm () in
  let r =
    Synthetic.run vm { small_synth with Synthetic.phases = 3; loops = 6 }
  in
  check Alcotest.bool "phased run completes" true (r.Synthetic.accesses > 0)

let synthetic_cold_array () =
  let vm = mk_vm ~max_heap:(32 * 1024 * 1024) () in
  let r =
    Synthetic.run vm { small_synth with Synthetic.cold_elements = 10_000 }
  in
  check Alcotest.int "accesses unaffected by cold population" 6_000
    r.Synthetic.accesses

let synthetic_rejects_bad_params () =
  let vm = mk_vm () in
  Alcotest.check_raises "zero elements"
    (Invalid_argument "Synthetic.run: non-positive parameter") (fun () ->
      ignore (Synthetic.run vm { small_synth with Synthetic.elements = 0 }))

let small_h2 =
  {
    H2.default with
    H2.rows = 2_000;
    buckets = 256;
    transactions = 60;
    ops_per_txn = 8;
    hot_keys = 200;
  }

let h2_hits_everything () =
  let vm = mk_vm () in
  let r = H2.run vm small_h2 in
  check Alcotest.int "every point query finds its row" r.H2.queries r.H2.hits;
  check Alcotest.int "query count" (60 * 8) r.H2.queries

let h2_deterministic_checksum () =
  let go config =
    let vm = mk_vm ~config () in
    (H2.run vm small_h2).H2.checksum
  in
  check Alcotest.int "checksum config-independent" (go Config.zgc)
    (go (Config.of_id 16))

let h2_triggers_gc () =
  let vm = mk_vm ~max_heap:(1024 * 1024) () in
  ignore (H2.run vm { small_h2 with H2.transactions = 400 });
  check Alcotest.bool "cycles" true (Gc_stats.cycles (Vm.gc_stats vm) > 0)

let small_tb =
  {
    Tradebeans.default with
    Tradebeans.accounts = 500;
    instruments = 100;
    orders = 800;
    hot_accounts = 50;
  }

let tradebeans_conserves () =
  let vm = mk_vm () in
  let r = Tradebeans.run vm small_tb in
  check Alcotest.int "orders processed" 800 r.Tradebeans.processed;
  check Alcotest.bool "volume accumulated" true (r.Tradebeans.volume > 0)

let tradebeans_short_lived_profile () =
  (* The point of tradebeans: almost everything allocated dies.  After the
     run plus a forced cycle, heap usage must be far below total allocation. *)
  let vm = mk_vm ~max_heap:(8 * 1024 * 1024) () in
  ignore (Tradebeans.run vm small_tb);
  (* Force a couple of cycles to drain floating garbage. *)
  for _ = 1 to 40_000 do
    ignore (Vm.alloc vm ~nrefs:0 ~nwords:4)
  done;
  Vm.finish vm;
  check Alcotest.bool "garbage was reclaimed" true
    (Gc_stats.pages_freed (Vm.gc_stats vm) > 0)

let tradebeans_deterministic () =
  let go config =
    let vm = mk_vm ~config () in
    (Tradebeans.run vm small_tb).Tradebeans.volume
  in
  check Alcotest.int "volume config-independent" (go Config.zgc)
    (go (Config.of_id 18))

let small_jbb =
  {
    Specjbb.default with
    Specjbb.warehouses = 2;
    items_per_warehouse = 300;
    ramp_steps = 4;
    txns_per_step = 120;
  }

let specjbb_scores () =
  let vm = mk_vm () in
  let r = Specjbb.run vm small_jbb in
  check Alcotest.bool "throughput positive" true (r.Specjbb.max_jops > 0.0);
  check Alcotest.bool "latency score bounded by throughput" true
    (r.Specjbb.critical_jops <= r.Specjbb.max_jops +. 1e-9);
  check Alcotest.bool "mean latency positive" true (r.Specjbb.mean_latency > 0.0)

let specjbb_low_survival () =
  let vm = mk_vm ~max_heap:(8 * 1024 * 1024) () in
  let r = Specjbb.run vm small_jbb in
  (* The paper measures ~1% survival; we only require "low". *)
  check Alcotest.bool "survival under 20%" true (r.Specjbb.survival_rate < 0.2)

let specjbb_heap_ramps () =
  let vm = mk_vm ~max_heap:(8 * 1024 * 1024) () in
  ignore (Specjbb.run vm small_jbb);
  check Alcotest.bool "heap samples recorded" true
    (List.length (Gc_stats.heap_samples (Vm.gc_stats vm)) > 0)

let suite =
  [
    ( "workloads.synthetic",
      [
        case "runs and counts" `Quick synthetic_runs_and_counts;
        case "checksum config-independent" `Slow
          synthetic_checksum_config_independent;
        case "triggers GC" `Quick synthetic_triggers_gc;
        case "phases" `Quick synthetic_phases;
        case "cold array" `Quick synthetic_cold_array;
        case "rejects bad params" `Quick synthetic_rejects_bad_params;
      ] );
    ( "workloads.h2",
      [
        case "all queries hit" `Quick h2_hits_everything;
        case "checksum config-independent" `Slow h2_deterministic_checksum;
        case "triggers GC" `Quick h2_triggers_gc;
      ] );
    ( "workloads.tradebeans",
      [
        case "orders processed" `Quick tradebeans_conserves;
        case "short-lived profile" `Quick tradebeans_short_lived_profile;
        case "volume config-independent" `Slow tradebeans_deterministic;
      ] );
    ( "workloads.specjbb",
      [
        case "scores" `Quick specjbb_scores;
        case "low survival" `Quick specjbb_low_survival;
        case "heap samples" `Quick specjbb_heap_ramps;
      ] );
  ]
