(* Model-based fuzzing of the whole VM + collector stack.

   A random mutator maintains an OCaml-side mirror of a managed object
   graph: a root table whose slots point at objects with reference fields
   and payload words.  Every read goes through the managed heap (load
   barriers, relocation, forwarding) and is checked against the mirror, so
   any corruption introduced by marking, evacuation-candidate selection,
   relocation racing, forwarding-table retirement or address-range
   recycling surfaces as a mismatch.  The walk only follows managed
   pointers from the root table, so the rooting discipline is respected by
   construction. *)

module Vm = Hcsgc_runtime.Vm
module Collector = Hcsgc_core.Collector
module Config = Hcsgc_core.Config
module Gc_stats = Hcsgc_core.Gc_stats
module Layout = Hcsgc_heap.Layout
module Heap_obj = Hcsgc_heap.Heap_obj
module Rng = Hcsgc_util.Rng

let check = Alcotest.check
let case = Alcotest.test_case

let layout = Layout.scaled ~small_page:(16 * 1024)

(* Mirror model: object ids are allocation order; the table maps slot ->
   object id; each object mirrors its ref slots (ids) and payload words. *)
type mirror = {
  table : int option array;
  refs : (int, int option array) Hashtbl.t;
  words : (int, int array) Hashtbl.t;
}

let nrefs_per_obj = 3
let nwords_per_obj = 2

let run_fuzz ~config ~seed ~ops ~slots =
  (* ~verify:true puts the whole fuzz under the hcsgc.verify sanitizer:
     full-heap invariants plus the mark-sweep oracle at every phase edge. *)
  let vm = Vm.create ~layout ~verify:true ~config ~max_heap:(1024 * 1024) () in
  let table = Vm.alloc vm ~nrefs:slots ~nwords:0 in
  Vm.add_root vm table;
  let m =
    {
      table = Array.make slots None;
      refs = Hashtbl.create 256;
      words = Hashtbl.create 256;
    }
  in
  let rng = Rng.create seed in
  let next_id = ref 0 in
  (* Load the managed object for a table slot, validating its id. *)
  let load_slot slot =
    match (Vm.load_ref vm table slot, m.table.(slot)) with
    | None, None -> None
    | Some obj, Some id -> Some (id, obj)
    | Some _, None -> Alcotest.fail "managed slot set, mirror empty"
    | None, Some _ -> Alcotest.fail "mirror slot set, managed empty"
  in
  for _op = 1 to ops do
    match Rng.int rng 100 with
    | r when r < 25 ->
        (* Allocate a fresh object into a random slot. *)
        let slot = Rng.int rng slots in
        let obj = Vm.alloc vm ~nrefs:nrefs_per_obj ~nwords:nwords_per_obj in
        let id = !next_id in
        incr next_id;
        Vm.store_word vm obj 0 id;
        Vm.store_ref vm table slot (Some obj);
        m.table.(slot) <- Some id;
        Hashtbl.replace m.refs id (Array.make nrefs_per_obj None);
        Hashtbl.replace m.words id (Array.init nwords_per_obj (fun i -> if i = 0 then id else 0))
    | r when r < 40 -> (
        (* Link: a.field <- b, both reached through the table. *)
        let sa = Rng.int rng slots and sb = Rng.int rng slots in
        match (load_slot sa, load_slot sb) with
        | Some (ida, a), Some (idb, b) ->
            let f = Rng.int rng nrefs_per_obj in
            Vm.store_ref vm a f (Some b);
            (Hashtbl.find m.refs ida).(f) <- Some idb
        | _ -> ())
    | r when r < 48 -> (
        (* Unlink a field. *)
        let s = Rng.int rng slots in
        match load_slot s with
        | Some (id, obj) ->
            let f = Rng.int rng nrefs_per_obj in
            Vm.store_ref vm obj f None;
            (Hashtbl.find m.refs id).(f) <- None
        | None -> ())
    | r when r < 56 -> (
        (* Mutate a payload word. *)
        let s = Rng.int rng slots in
        match load_slot s with
        | Some (id, obj) ->
            let w = 1 + Rng.int rng (nwords_per_obj - 1) in
            let v = Rng.int rng 1_000_000 in
            Vm.store_word vm obj w v;
            (Hashtbl.find m.words id).(w) <- v
        | None -> ())
    | r when r < 64 ->
        (* Drop a slot (objects may become garbage). *)
        let s = Rng.int rng slots in
        Vm.store_ref vm table s None;
        m.table.(s) <- None
    | r when r < 72 ->
        (* Garbage churn to force GC cycles. *)
        for _ = 1 to 6 do
          ignore (Vm.alloc vm ~nrefs:0 ~nwords:12)
        done
    | _ -> (
        (* Validate: walk a short random managed path and compare with the
           mirror at every step. *)
        let s = Rng.int rng slots in
        match load_slot s with
        | None -> ()
        | Some (id0, obj0) ->
            let rec walk depth id obj =
              check Alcotest.int "id word" id (Vm.load_word vm obj 0);
              let mwords = Hashtbl.find m.words id in
              for w = 0 to nwords_per_obj - 1 do
                check Alcotest.int "payload word" mwords.(w)
                  (Vm.load_word vm obj w)
              done;
              if depth > 0 then begin
                let f = Rng.int rng nrefs_per_obj in
                match (Vm.load_ref vm obj f, (Hashtbl.find m.refs id).(f)) with
                | None, None -> ()
                | Some o', Some id' -> walk (depth - 1) id' o'
                | Some _, None -> Alcotest.fail "managed ref set, mirror null"
                | None, Some _ -> Alcotest.fail "mirror ref set, managed null"
              end
            in
            walk 3 id0 obj0)
  done;
  (* Final full validation of everything reachable from the table. *)
  let seen = Hashtbl.create 64 in
  let rec validate id obj =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      let mwords = Hashtbl.find m.words id in
      for w = 0 to nwords_per_obj - 1 do
        check Alcotest.int "final payload" mwords.(w) (Vm.load_word vm obj w)
      done;
      let mrefs = Hashtbl.find m.refs id in
      for f = 0 to nrefs_per_obj - 1 do
        match (Vm.load_ref vm obj f, mrefs.(f)) with
        | None, None -> ()
        | Some o', Some id' -> validate id' o'
        | _ -> Alcotest.fail "final ref mismatch"
      done
    end
  in
  Array.iteri
    (fun s id_opt ->
      match (id_opt, Vm.load_ref vm table s) with
      | Some id, Some obj -> validate id obj
      | None, None -> ()
      | _ -> Alcotest.fail "final table mismatch")
    m.table;
  Vm.finish vm;
  (* Structural invariants must hold after the storm. *)
  (match Collector.verify (Vm.collector vm) with
  | Ok () -> ()
  | Error errors ->
      Alcotest.failf "heap invariants violated:\n%s"
        (String.concat "\n" errors));
  Gc_stats.cycles (Vm.gc_stats vm)

let fuzz_config id () =
  let cycles = run_fuzz ~config:(Config.of_id id) ~seed:(1000 + id) ~ops:15_000 ~slots:96 in
  (* The fuzz must actually exercise the collector. *)
  if cycles < 2 then Alcotest.failf "only %d GC cycles during fuzz" cycles

let fuzz_many_seeds () =
  (* Shorter runs across several seeds under the most aggressive config. *)
  for seed = 1 to 5 do
    ignore (run_fuzz ~config:(Config.of_id 18) ~seed ~ops:6_000 ~slots:64)
  done

let fuzz_relocation_counts () =
  (* Under relocate-all + lazy, the fuzz graph must survive heavy motion. *)
  let cycles = run_fuzz ~config:(Config.of_id 4) ~seed:77 ~ops:15_000 ~slots:96 in
  if cycles < 2 then Alcotest.failf "only %d GC cycles during fuzz" cycles

let suite =
  [
    ( "fuzz.model",
      [
        case "config 0 (ZGC)" `Slow (fuzz_config 0);
        case "config 3 (relocate-all)" `Slow (fuzz_config 3);
        case "config 4 (ra+lazy)" `Slow (fuzz_config 4);
        case "config 7 (cc=1.0)" `Slow (fuzz_config 7);
        case "config 10 (cc+lazy)" `Slow (fuzz_config 10);
        case "config 13 (cp+cc)" `Slow (fuzz_config 13);
        case "config 16 (cp+cc+lazy)" `Slow (fuzz_config 16);
        case "config 17 (cp+ra)" `Slow (fuzz_config 17);
        case "config 18 (everything)" `Slow (fuzz_config 18);
        case "many seeds (cfg 18)" `Slow fuzz_many_seeds;
        case "relocating fuzz (cfg 4)" `Slow fuzz_relocation_counts;
      ] );
  ]
