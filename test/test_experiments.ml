(* Tests for hcsgc.experiments: the runner, report rendering, and tiny
   end-to-end figure slices (subset of configs, miniature workloads). *)

module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Layout = Hcsgc_heap.Layout
module Runner = Hcsgc_experiments.Runner
module Report = Hcsgc_experiments.Report
module Tables = Hcsgc_experiments.Tables
module Fig_synthetic = Hcsgc_experiments.Fig_synthetic
module Fig_graph = Hcsgc_experiments.Fig_graph
module Synthetic = Hcsgc_workloads.Synthetic
module Dataset = Hcsgc_graph.Dataset

let check = Alcotest.check
let case = Alcotest.test_case

let layout = Layout.scaled ~small_page:(16 * 1024)

let tiny_experiment =
  {
    Runner.name = "tiny";
    key = "test-tiny;el=1000;apl=500;heap=4194304";
    make_vm =
      (fun config -> Vm.create ~layout ~config ~max_heap:(4 * 1024 * 1024) ());
    workload =
      (fun vm ~run ->
        ignore
          (Synthetic.run vm
             {
               Synthetic.default with
               Synthetic.elements = 1_000;
               accesses_per_loop = 500;
               loops = 4;
               garbage_words = 8;
               seed = run;
             }));
  }

let runner_shape () =
  let results = Runner.run_configs ~config_ids:[ 0; 4 ] ~runs:2 tiny_experiment in
  check Alcotest.int "two configs" 2 (List.length results);
  List.iter
    (fun (_, samples) ->
      check Alcotest.int "two runs" 2 (Array.length samples);
      Array.iter
        (fun m ->
          check Alcotest.bool "wall positive" true (m.Runner.wall > 0.0);
          check Alcotest.bool "loads positive" true (m.Runner.loads > 0.0))
        samples)
    results

let runner_repetition_deterministic () =
  let r1 = Runner.run_configs ~config_ids:[ 0 ] ~runs:2 tiny_experiment in
  let r2 = Runner.run_configs ~config_ids:[ 0 ] ~runs:2 tiny_experiment in
  let walls r = List.assoc 0 r |> Array.map (fun m -> m.Runner.wall) in
  check (Alcotest.array (Alcotest.float 1e-9)) "same walls" (walls r1) (walls r2)

let runner_run_index_varies_seed () =
  let r = Runner.run_configs ~config_ids:[ 0 ] ~runs:2 tiny_experiment in
  let samples = List.assoc 0 r in
  (* Different workload seeds give (almost surely) different walls. *)
  check Alcotest.bool "run 0 differs from run 1" true
    (samples.(0).Runner.wall <> samples.(1).Runner.wall)

let report_renders () =
  let results = Runner.run_configs ~config_ids:[ 0; 3 ] ~runs:2 tiny_experiment in
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Report.figure fmt ~title:"test figure" ~expectation:"n/a" results;
  Format.pp_print_flush fmt ();
  let s = Buffer.contents buf in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  check Alcotest.bool "title" true (contains "test figure");
  check Alcotest.bool "execution time panel" true (contains "execution time");
  check Alcotest.bool "cache panel" true (contains "cache statistics");
  check Alcotest.bool "gc panel" true (contains "GC statistics")

let report_requires_baseline () =
  let results = Runner.run_configs ~config_ids:[ 3 ] ~runs:1 tiny_experiment in
  let fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  Alcotest.check_raises "no config 0"
    (Invalid_argument "Report.figure: config 0 (the ZGC baseline) missing")
    (fun () -> Report.figure fmt ~title:"x" ~expectation:"y" results)

let wall_estimates_exposed () =
  let results = Runner.run_configs ~config_ids:[ 0; 4 ] ~runs:3 tiny_experiment in
  let ests = Report.wall_estimates results in
  check Alcotest.int "two estimates" 2 (List.length ests);
  List.iter
    (fun (_, e) ->
      check Alcotest.bool "CI ordered" true
        Hcsgc_stats.Bootstrap.(e.ci_lo <= e.mean && e.mean <= e.ci_hi))
    ests

let tables_render () =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Tables.t1 fmt;
  Tables.t2 fmt;
  Tables.t3 ~scale:4 fmt;
  Format.pp_print_flush fmt ();
  let s = Buffer.contents buf in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  check Alcotest.bool "t1 mentions 2 Mb small pages" true (contains "2 Mb");
  check Alcotest.bool "t2 mentions LazyRelocate" true (contains "LazyRelocate");
  check Alcotest.bool "t3 mentions enwiki" true (contains "enwiki")

let graph_experiment_slice () =
  (* A miniature CC figure: only configs 0 and 4, one run, tiny dataset. *)
  let exp =
    Fig_graph.cc_experiment ~dataset:(Dataset.scaled Dataset.uk_cc ~factor:64)
      ~scale:1 ()
  in
  let results = Runner.run_configs ~config_ids:[ 0; 4 ] ~runs:1 exp in
  List.iter
    (fun (_, samples) ->
      Array.iter
        (fun m -> check Alcotest.bool "ran" true (m.Runner.wall > 0.0))
        samples)
    results

let synthetic_experiment_accessor () =
  let exp = Fig_synthetic.experiment ~phases:2 ~scale:50 () in
  let results = Runner.run_configs ~config_ids:[ 0 ] ~runs:1 exp in
  check Alcotest.int "one config" 1 (List.length results)

let heap_series_renders () =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Report.heap_usage_series fmt ~max_heap:1000 [ (0, 100); (10, 500); (20, 900) ];
  Format.pp_print_flush fmt ();
  check Alcotest.bool "renders" true (String.length (Buffer.contents buf) > 0)

let suite =
  [
    ( "experiments.runner",
      [
        case "shape" `Quick runner_shape;
        case "deterministic" `Quick runner_repetition_deterministic;
        case "run index varies seed" `Quick runner_run_index_varies_seed;
      ] );
    ( "experiments.report",
      [
        case "renders all panels" `Quick report_renders;
        case "requires baseline" `Quick report_requires_baseline;
        case "wall estimates" `Quick wall_estimates_exposed;
        case "heap series" `Quick heap_series_renders;
      ] );
    ( "experiments.tables", [ case "t1/t2/t3 render" `Quick tables_render ] );
    ( "experiments.figures",
      [
        case "CC slice runs" `Slow graph_experiment_slice;
        case "synthetic accessor" `Quick synthetic_experiment_accessor;
      ] );
  ]
