(* Tests for hcsgc.runtime: the VM API, cost accounting, determinism,
   locals/rooting, saturated mode. *)

module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Collector = Hcsgc_core.Collector
module Gc_stats = Hcsgc_core.Gc_stats
module Layout = Hcsgc_heap.Layout
module H = Hcsgc_memsim.Hierarchy
module Rng = Hcsgc_util.Rng

let check = Alcotest.check
let case = Alcotest.test_case

let layout = Layout.scaled ~small_page:(16 * 1024)

let mk_vm ?(config = Config.zgc) ?(saturated = false)
    ?(max_heap = 4 * 1024 * 1024) () =
  Vm.create ~layout ~config ~saturated ~max_heap ()

let alloc_and_fields () =
  let vm = mk_vm () in
  let o = Vm.alloc vm ~nrefs:2 ~nwords:2 in
  check Alcotest.bool "refs start null" true (Vm.load_ref vm o 0 = None);
  check Alcotest.int "words start zero" 0 (Vm.load_word vm o 0);
  Vm.store_word vm o 1 42;
  check Alcotest.int "word roundtrip" 42 (Vm.load_word vm o 1);
  let p = Vm.alloc vm ~nrefs:0 ~nwords:1 in
  Vm.store_ref vm o 0 (Some p);
  (match Vm.load_ref vm o 0 with
  | Some q -> check Alcotest.bool "ref roundtrip" true (q == p)
  | None -> Alcotest.fail "ref lost");
  Vm.store_ref vm o 0 None;
  check Alcotest.bool "null store" true (Vm.load_ref vm o 0 = None)

let costs_accumulate () =
  let vm = mk_vm () in
  let o = Vm.alloc vm ~nrefs:1 ~nwords:1 in
  let w0 = Vm.wall_cycles vm in
  ignore (Vm.load_word vm o 0);
  check Alcotest.bool "loads cost cycles" true (Vm.wall_cycles vm > w0);
  let ops0 = Vm.ops vm in
  Vm.touch vm o;
  check Alcotest.int "ops counted" (ops0 + 1) (Vm.ops vm)

let work_charges_compute () =
  let vm = mk_vm () in
  let w0 = Vm.mutator_cycles vm in
  Vm.work vm 12_345;
  check Alcotest.int "work charged" (w0 + 12_345) (Vm.mutator_cycles vm)

let counters_track_loads () =
  let vm = mk_vm () in
  let o = Vm.alloc vm ~nrefs:0 ~nwords:1 in
  let c0 = (Vm.counters vm).H.loads in
  ignore (Vm.load_word vm o 0);
  check Alcotest.bool "load counted" true ((Vm.counters vm).H.loads > c0)

let determinism_across_runs () =
  (* The whole simulation is a pure function of (config, seed): two fresh
     VMs running the same program report identical wall cycles, counters and
     GC stats. *)
  let run () =
    let vm = mk_vm ~config:(Config.of_id 16) () in
    let keeper = Vm.alloc vm ~nrefs:256 ~nwords:0 in
    Vm.add_root vm keeper;
    let rng = Rng.create 11 in
    for i = 0 to 255 do
      let o = Vm.alloc vm ~nrefs:0 ~nwords:2 in
      Vm.store_ref vm keeper i (Some o)
    done;
    for _ = 1 to 20_000 do
      let i = Rng.int rng 256 in
      (match Vm.load_ref vm keeper i with
      | Some o -> ignore (Vm.load_word vm o 0)
      | None -> Alcotest.fail "lost");
      ignore (Vm.alloc vm ~nrefs:0 ~nwords:8)
    done;
    Vm.finish vm;
    ( Vm.wall_cycles vm,
      (Vm.counters vm).H.loads,
      (Vm.counters vm).H.l1_misses,
      Gc_stats.cycles (Vm.gc_stats vm) )
  in
  let a = run () and b = run () in
  check
    (Alcotest.pair
       (Alcotest.pair Alcotest.int Alcotest.int)
       (Alcotest.pair Alcotest.int Alcotest.int))
    "bit-identical runs"
    (let w, l, m, c = a in
     ((w, l), (m, c)))
    (let w, l, m, c = b in
     ((w, l), (m, c)))

let saturated_charges_gc_to_wall () =
  let run saturated =
    let vm = mk_vm ~saturated () in
    let keeper = Vm.alloc vm ~nrefs:128 ~nwords:0 in
    Vm.add_root vm keeper;
    for i = 0 to 127 do
      let o = Vm.alloc vm ~nrefs:0 ~nwords:2 in
      Vm.store_ref vm keeper i (Some o)
    done;
    for _ = 1 to 40_000 do
      ignore (Vm.alloc vm ~nrefs:0 ~nwords:8)
    done;
    Vm.finish vm;
    vm
  in
  let unsat = run false and sat = run true in
  check Alcotest.bool "GC work happened" true (Vm.gc_cycles unsat > 0);
  check Alcotest.int "saturated wall includes GC"
    (Vm.mutator_cycles sat + Vm.stw_cycles sat + Vm.gc_cycles sat)
    (Vm.wall_cycles sat);
  check Alcotest.int "unsaturated wall hides concurrent GC"
    (Vm.mutator_cycles unsat + Vm.stw_cycles unsat)
    (Vm.wall_cycles unsat)

let locals_protect_unrooted () =
  let vm = mk_vm () in
  (* An object held only in an OCaml variable, protected by a local frame,
     must survive cycles triggered inside the frame. *)
  Vm.local_frame vm (fun () ->
      let o = Vm.alloc vm ~nrefs:0 ~nwords:1 in
      Vm.push_local vm o;
      Vm.store_word vm o 0 7;
      for _ = 1 to 30_000 do
        ignore (Vm.alloc vm ~nrefs:0 ~nwords:8)
      done;
      check Alcotest.int "local survived GC" 7 (Vm.load_word vm o 0))

let with_local_scopes () =
  let vm = mk_vm () in
  let o = Vm.alloc vm ~nrefs:0 ~nwords:1 in
  let r = Vm.with_local vm o (fun () -> Vm.load_word vm o 0) in
  check Alcotest.int "with_local runs body" 0 r

let remove_root_allows_reclaim () =
  let vm = mk_vm () in
  let keeper = Vm.alloc vm ~nrefs:1 ~nwords:0 in
  Vm.add_root vm keeper;
  Vm.remove_root vm keeper;
  (* After removal the page population can be reclaimed; we only require
     that cycles still run cleanly. *)
  for _ = 1 to 30_000 do
    ignore (Vm.alloc vm ~nrefs:0 ~nwords:8)
  done;
  Vm.finish vm;
  check Alcotest.bool "cycles ran" true (Gc_stats.cycles (Vm.gc_stats vm) > 0)

let config_accessor () =
  let c = Config.of_id 9 in
  let vm = mk_vm ~config:c () in
  check Alcotest.bool "config preserved" true (Config.equal c (Vm.config vm))

let mutator_counters_subset () =
  let vm = mk_vm () in
  let o = Vm.alloc vm ~nrefs:0 ~nwords:1 in
  for _ = 1 to 100 do
    ignore (Vm.load_word vm o 0)
  done;
  let all = Vm.counters vm and mut = Vm.mutator_counters vm in
  check Alcotest.bool "mutator loads <= total" true (mut.H.loads <= all.H.loads);
  check Alcotest.bool "mutator misses <= total" true
    (mut.H.l1_misses <= all.H.l1_misses)

let suite =
  [
    ( "runtime.vm",
      [
        case "alloc and field access" `Quick alloc_and_fields;
        case "costs accumulate" `Quick costs_accumulate;
        case "work charges compute" `Quick work_charges_compute;
        case "counters track loads" `Quick counters_track_loads;
        case "determinism" `Slow determinism_across_runs;
        case "saturated accounting" `Slow saturated_charges_gc_to_wall;
        case "locals protect unrooted" `Quick locals_protect_unrooted;
        case "with_local" `Quick with_local_scopes;
        case "remove_root" `Quick remove_root_allows_reclaim;
        case "config accessor" `Quick config_accessor;
        case "mutator counters subset" `Quick mutator_counters_subset;
      ] );
  ]
