(* Tests for hcsgc.store and the incremental-sweep layer: fingerprint
   sensitivity, the metrics codec, store robustness (truncation,
   bit-flips, refresh), cost-aware scheduling, and the end-to-end
   guarantee that warm sweeps render byte-identical figures. *)

module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Layout = Hcsgc_heap.Layout
module Runner = Hcsgc_experiments.Runner
module Report = Hcsgc_experiments.Report
module Synthetic = Hcsgc_workloads.Synthetic
module Fingerprint = Hcsgc_store.Fingerprint
module Result_store = Hcsgc_store.Result_store
module Scheduler = Hcsgc_store.Scheduler
module Pool = Hcsgc_exec.Pool

let check = Alcotest.check
let case = Alcotest.test_case

let with_temp_dir f =
  let dir = Filename.temp_dir "hcsgc_store_test" "" in
  Fun.protect (fun () -> f dir) ~finally:(fun () ->
      let rec rm path =
        if Sys.is_directory path then begin
          Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
          Sys.rmdir path
        end
        else Sys.remove path
      in
      try rm dir with Sys_error _ -> ())

let layout = Layout.scaled ~small_page:(16 * 1024)

let tiny_experiment =
  {
    Runner.name = "store-tiny";
    key = "test-store-tiny;el=600;apl=300;heap=4194304";
    make_vm =
      (fun config -> Vm.create ~layout ~config ~max_heap:(4 * 1024 * 1024) ());
    workload =
      (fun vm ~run ->
        ignore
          (Synthetic.run vm
             {
               Synthetic.default with
               Synthetic.elements = 600;
               accesses_per_loop = 300;
               loops = 3;
               garbage_words = 8;
               seed = run;
             }));
  }

let job ?(config_id = 0) ?(run = 0) () =
  { Runner.exp = tiny_experiment; config_id; run }

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                        *)
(* ------------------------------------------------------------------ *)

let fingerprint_distinguishes_knob_vectors () =
  (* Every distinct Table 2 knob vector must have a distinct fingerprint.
     Ids 0 and 1 are the *same* knob vector (unmodified ZGC spelled two
     ways), so by design they share — 19 ids, 18 distinct addresses. *)
  let hexes =
    List.init 19 (fun config_id ->
        Fingerprint.to_hex (Runner.fingerprint ~verify:false (job ~config_id ())))
  in
  check Alcotest.int "19 configs" 19 (List.length hexes);
  check Alcotest.int "18 distinct (0 and 1 share)" 18
    (List.length (List.sort_uniq compare hexes));
  check Alcotest.string "config 0 = config 1"
    (List.nth hexes 0) (List.nth hexes 1)

let fingerprint_sensitive_to_each_input () =
  let base = Runner.fingerprint ~verify:false (job ()) in
  let differs name fp =
    check Alcotest.bool name false (Fingerprint.equal base fp)
  in
  differs "run seed" (Runner.fingerprint ~verify:false (job ~run:1 ()));
  differs "verify flag" (Runner.fingerprint ~verify:true (job ()));
  differs "config knobs" (Runner.fingerprint ~verify:false (job ~config_id:4 ()));
  let renamed =
    { (job ()) with exp = { tiny_experiment with key = tiny_experiment.key ^ ";x" } }
  in
  differs "experiment key" (Runner.fingerprint ~verify:false renamed);
  (* The display name is cosmetic: changing it must NOT move the address. *)
  let display =
    { (job ()) with exp = { tiny_experiment with name = "renamed" } }
  in
  check Alcotest.bool "display name is not hashed" true
    (Fingerprint.equal base (Runner.fingerprint ~verify:false display))

let fingerprint_sensitive_to_tier_knobs () =
  (* Each tier knob must move the content address on its own: a tiered
     sweep may never be served a tier-free (or differently-tiered) cached
     outcome.  Knobs are compared through the full knob-vector rendering,
     the same path fig_tier uses. *)
  let fp config =
    Fingerprint.make ~experiment:tiny_experiment.Runner.key
      ~config:(Runner.config_value_key config)
      ~run:0 ~verify:false
  in
  let tiered ?(capacity = 16) ?(lat_far = 800) ?(promote = true) () =
    Config.make ~hotness:true ~tier_capacity_pages:capacity ~lat_far
      ~tier_promote:promote ()
  in
  let base = fp (tiered ()) in
  let differs name other =
    check Alcotest.bool name false (Fingerprint.equal base (fp other))
  in
  differs "capacity" (tiered ~capacity:32 ());
  differs "tier off entirely" (Config.make ~hotness:true ());
  differs "far latency" (tiered ~lat_far:1200 ());
  differs "promotion" (tiered ~promote:false ());
  (* The tier knobs sit in the rendered vector even when tiering is off,
     so the untiered rendering is stable — pre-tier cache entries were
     already invalidated once by the code_version bump, and must not be
     invalidated again by incidental knob defaults. *)
  check Alcotest.string "untiered rendering is canonical"
    "h=false;cp=false;cc=0x0p+0;ra=false;lz=false;tc=0;lf=800;tp=true"
    (Runner.config_value_key (Config.of_id 0))

let fingerprint_no_concatenation_collisions () =
  (* Length-prefixed fields: moving a character across the field boundary
     must change the digest. *)
  let a = Fingerprint.make ~experiment:"ab" ~config:"c" ~run:0 ~verify:false in
  let b = Fingerprint.make ~experiment:"a" ~config:"bc" ~run:0 ~verify:false in
  check Alcotest.bool "ab|c <> a|bc" false (Fingerprint.equal a b)

(* ------------------------------------------------------------------ *)
(* Metrics codec                                                       *)
(* ------------------------------------------------------------------ *)

let arbitrary_metrics =
  QCheck.make
    QCheck.Gen.(
      let f = map (fun (m, e) -> ldexp m e) (pair (float_bound_inclusive 1.0) (int_range (-30) 30)) in
      let* wall = f and* loads = f and* l1 = f and* llc = f in
      let* ml1 = f and* mllc = f and* far = f and* ec = f in
      let* gc = int_bound 1000 and* rm = int_bound 10_000 and* rg = int_bound 10_000 in
      let* pd = int_bound 10_000 and* pp = int_bound 10_000 in
      let* samples = list_size (int_bound 20) (pair (int_bound 1_000_000) (int_bound 1_000_000)) in
      return
        {
          Runner.wall; loads; l1_misses = l1; llc_misses = llc;
          mut_l1_misses = ml1; mut_llc_misses = mllc; far_loads = far;
          gc_cycle_count = gc; ec_median = ec; reloc_mut = rm; reloc_gc = rg;
          pages_demoted = pd; pages_promoted = pp; heap_samples = samples;
        })

let prop_metrics_roundtrip =
  QCheck.Test.make ~name:"store: metrics codec round-trips bit-exactly"
    ~count:300 arbitrary_metrics (fun m ->
      Runner.metrics_of_string (Runner.metrics_to_string m) = Some m)

let codec_rejects_malformed () =
  let good = Runner.metrics_to_string (Runner.execute (job ())) in
  let reject name s =
    check Alcotest.bool name true (Runner.metrics_of_string s = None)
  in
  reject "empty" "";
  reject "wrong magic" ("nope\n" ^ good);
  reject "truncated" (String.sub good 0 (String.length good - 3));
  reject "trailing garbage" (good ^ "junk")

(* ------------------------------------------------------------------ *)
(* Store robustness                                                    *)
(* ------------------------------------------------------------------ *)

let store_roundtrip () =
  with_temp_dir (fun dir ->
      let store = Result_store.open_ ~dir in
      let fp = Runner.fingerprint ~verify:false (job ()) in
      check Alcotest.bool "absent" true (Result_store.find store fp = None);
      Result_store.add store fp ~cost_key:"k" ~cost:0.25 "payload";
      check (Alcotest.option Alcotest.string) "present" (Some "payload")
        (Result_store.find store fp);
      (* A fresh handle over the same directory sees the entry: the store
         is persistent, not per-process. *)
      let reopened = Result_store.open_ ~dir in
      check (Alcotest.option Alcotest.string) "persistent" (Some "payload")
        (Result_store.find reopened fp);
      let c = Result_store.counters store in
      check Alcotest.int "one hit" 1 c.Result_store.hits;
      check Alcotest.int "one miss" 1 c.Result_store.misses;
      check Alcotest.int "one store" 1 c.Result_store.stored)

let corrupt_entry name mutilate =
  case name `Quick (fun () ->
      with_temp_dir (fun dir ->
          let store = Result_store.open_ ~dir in
          let fp = Runner.fingerprint ~verify:false (job ()) in
          Result_store.add store fp ~cost:0.1 "the payload bytes";
          let path = Result_store.entry_path store fp in
          let contents = In_channel.with_open_bin path In_channel.input_all in
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc (mutilate contents));
          check Alcotest.bool "detected as miss" true
            (Result_store.find store fp = None);
          let c = Result_store.counters store in
          check Alcotest.int "counted corrupt" 1 c.Result_store.corrupt;
          check Alcotest.bool "entry dropped" false (Sys.file_exists path);
          (* The slot is reusable: a re-run overwrites cleanly. *)
          Result_store.add store fp ~cost:0.1 "the payload bytes";
          check (Alcotest.option Alcotest.string) "recovered"
            (Some "the payload bytes") (Result_store.find store fp)))

let truncated = corrupt_entry "truncated entry detected" (fun s ->
    String.sub s 0 (String.length s / 2))

let bitflipped = corrupt_entry "bit-flipped entry detected" (fun s ->
    let b = Bytes.of_string s in
    let i = Bytes.length b - 4 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
    Bytes.to_string b)

let execute_caches_and_refresh_recomputes () =
  with_temp_dir (fun dir ->
      let cache = Runner.cache ~dir () in
      let cold = Runner.execute ~cache (job ()) in
      let warm = Runner.execute ~cache (job ()) in
      check Alcotest.bool "warm = cold" true (cold = warm);
      let c = Result_store.counters cache.Runner.store in
      check Alcotest.int "computed once" 1 c.Result_store.stored;
      check Alcotest.int "served once" 1 c.Result_store.hits;
      (* --refresh: same store, but every job recomputes and overwrites. *)
      let refreshing = Runner.cache ~refresh:true ~dir () in
      let again = Runner.execute ~cache:refreshing (job ()) in
      check Alcotest.bool "refresh result unchanged" true (cold = again);
      let c = Result_store.counters refreshing.Runner.store in
      check Alcotest.int "refresh bypassed lookup" 0
        (c.Result_store.hits + c.Result_store.misses);
      check Alcotest.int "refresh re-stored" 1 c.Result_store.stored)

let cost_model_learns_and_persists () =
  with_temp_dir (fun dir ->
      let store = Result_store.open_ ~dir in
      check (Alcotest.option (Alcotest.float 0.0)) "unknown key" None
        (Result_store.estimate store ~cost_key:"k");
      let fp i = Fingerprint.make ~experiment:"e" ~config:"c" ~run:i ~verify:false in
      Result_store.add store (fp 0) ~cost_key:"k" ~cost:1.0 "a";
      Result_store.add store (fp 1) ~cost_key:"k" ~cost:3.0 "b";
      check (Alcotest.option (Alcotest.float 1e-9)) "mean of observations"
        (Some 2.0) (Result_store.estimate store ~cost_key:"k");
      let reopened = Result_store.open_ ~dir in
      check (Alcotest.option (Alcotest.float 1e-9)) "model persists"
        (Some 2.0) (Result_store.estimate reopened ~cost_key:"k"))

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)
(* ------------------------------------------------------------------ *)

let is_permutation order n =
  let seen = Array.make n false in
  Array.length order = n
  && Array.for_all
       (fun i ->
         i >= 0 && i < n && not seen.(i) && (seen.(i) <- true; true))
       order

let scheduler_orders_longest_first () =
  let costs = [| Some 2.0; None; Some 5.0; Some 2.0; None |] in
  let order = Scheduler.order ~estimate:(fun i -> costs.(i)) 5 in
  (* Unknowns first in index order, then descending cost, ties by index. *)
  check (Alcotest.array Alcotest.int) "LPT with unknowns first"
    [| 1; 4; 2; 0; 3 |] order;
  check Alcotest.bool "permutation" true (is_permutation order 5);
  check (Alcotest.array Alcotest.int) "no estimates = FIFO"
    (Scheduler.fifo 4)
    (Scheduler.order ~estimate:(fun _ -> None) 4);
  check (Alcotest.array Alcotest.int) "fifo is identity" [| 0; 1; 2; 3 |]
    (Scheduler.fifo 4)

let pool_in_order_respects_result_positions () =
  let xs = Array.init 8 Fun.id in
  Pool.with_pool ~jobs:3 (fun pool ->
      let order = [| 7; 6; 5; 4; 3; 2; 1; 0 |] in
      let ys = Pool.map_array_in_order pool ~order (fun x -> x * x) xs in
      check (Alcotest.array Alcotest.int) "results in original positions"
        (Array.map (fun x -> x * x) xs) ys;
      Alcotest.check_raises "rejects non-permutation"
        (Invalid_argument "Pool.map_array_in_order: order is not a permutation")
        (fun () ->
          ignore (Pool.map_array_in_order pool ~order:[| 0; 0 |] (fun x -> x) [| 1; 2 |])))

(* ------------------------------------------------------------------ *)
(* End to end: warm sweeps are byte-identical and cheaper              *)
(* ------------------------------------------------------------------ *)

let render results =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Report.figure fmt ~title:"store-tiny" ~expectation:"(test sweep)" results;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let sweep ?scheduling ~cache ~jobs () =
  Runner.run_configs ~config_ids:[ 0; 4; 16 ] ~runs:2 ~jobs ~cache ?scheduling
    tiny_experiment

let warm_sweep_byte_identical () =
  with_temp_dir (fun dir ->
      let cache = Runner.cache ~dir () in
      let cold = render (sweep ~cache ~jobs:1 ()) in
      let after_cold = Result_store.counters cache.Runner.store in
      check Alcotest.int "cold sweep computed everything" 6
        after_cold.Result_store.stored;
      let warm = render (sweep ~cache ~jobs:1 ()) in
      let after_warm = Result_store.counters cache.Runner.store in
      check Alcotest.string "warm render byte-identical" cold warm;
      check Alcotest.int "warm sweep computed nothing" 6
        after_warm.Result_store.stored;
      check Alcotest.int "warm sweep all hits" 6
        (after_warm.Result_store.hits - after_cold.Result_store.hits);
      (* Parallel warm sweep under cost-aware scheduling: still the same
         bytes, whatever order the pool ran things in. *)
      let parallel = render (sweep ~cache ~jobs:4 ~scheduling:`Cost ()) in
      check Alcotest.string "-j4 scheduled warm sweep identical" cold parallel;
      let fifo = render (sweep ~cache ~jobs:4 ~scheduling:`Fifo ()) in
      check Alcotest.string "-j4 fifo warm sweep identical" cold fifo)

let cold_scheduled_sweep_matches_uncached () =
  (* Cost-aware scheduling on a *cold* store (and on a store with a
     learned model) must not change result bytes either. *)
  let plain = render (Runner.run_configs ~config_ids:[ 0; 16 ] ~runs:2 tiny_experiment) in
  with_temp_dir (fun dir ->
      let cache = Runner.cache ~dir () in
      let seed =
        render (Runner.run_configs ~config_ids:[ 0; 16 ] ~runs:2 ~cache
                  ~scheduling:`Cost ~jobs:2 tiny_experiment)
      in
      check Alcotest.string "cold scheduled = uncached" plain seed;
      (* Drop the entries but keep costs.tsv: the next sweep is cold with
         a fully-informed cost model — the FIFO-vs-LPT benchmark setup. *)
      Array.iter
        (fun e ->
          if Filename.check_suffix e ".v1" then
            Sys.remove (Filename.concat dir e))
        (Sys.readdir dir);
      let informed =
        render (Runner.run_configs ~config_ids:[ 0; 16 ] ~runs:2 ~cache
                  ~scheduling:`Cost ~jobs:2 tiny_experiment)
      in
      check Alcotest.string "informed-model cold sweep = uncached" plain informed)

let corrupt_entry_rerun_end_to_end () =
  with_temp_dir (fun dir ->
      let cache = Runner.cache ~dir () in
      let cold = Runner.execute ~cache (job ()) in
      let path =
        Result_store.entry_path cache.Runner.store
          (Runner.fingerprint ~verify:false (job ()))
      in
      (* Truncate the only entry; the next execute must detect it, re-run
         the simulation, and heal the store. *)
      let contents = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub contents 0 10));
      let healed = Runner.execute ~cache (job ()) in
      check Alcotest.bool "re-run equals original" true (cold = healed);
      check Alcotest.int "corruption counted" 1
        (Result_store.counters cache.Runner.store).Result_store.corrupt;
      check Alcotest.bool "store healed" true
        (Result_store.mem cache.Runner.store
           (Runner.fingerprint ~verify:false (job ()))))

(* ------------------------------------------------------------------ *)
(* Sharded execution and the store                                     *)
(* ------------------------------------------------------------------ *)

module Fig_synthetic = Hcsgc_experiments.Fig_synthetic

let shard_job shard_domains =
  {
    Runner.exp = Fig_synthetic.experiment ~shard_domains ~scale:50 ();
    config_id = 18;
    run = 0;
  }

let shard_count_not_in_fingerprint () =
  (* The epoch model is deterministic at any shard count, so the count is
     an execution knob, not a parameter: fingerprints at counts >= 1 must
     coincide.  The inline model (count 0) is a different interleaving and
     must key separately — em_tag marks the model, not the width. *)
  let fp sd = Runner.fingerprint ~verify:false (shard_job sd) in
  check Alcotest.bool "shard 1 = shard 4" true (fp 1 = fp 4);
  check Alcotest.bool "shard 4 = shard 8" true (fp 4 = fp 8);
  check Alcotest.bool "inline /= sharded" true (fp 0 <> fp 1);
  check Alcotest.string "em_tag spells the model" ";em=1" (Runner.em_tag 4);
  check Alcotest.string "inline has no tag" "" (Runner.em_tag 0)

let cache_hit_across_shard_counts () =
  with_temp_dir (fun dir ->
      let cache = Runner.cache ~dir () in
      let cold = Runner.execute ~cache (shard_job 1) in
      let warm = Runner.execute ~cache (shard_job 4) in
      check Alcotest.bool "shard-4 job served from shard-1 entry" true
        (cold = warm);
      let c = Result_store.counters cache.Runner.store in
      check Alcotest.int "computed once" 1 c.Result_store.stored;
      check Alcotest.int "served once" 1 c.Result_store.hits;
      (* ... and the cached payload really is what shard 4 would compute:
         a fresh uncached run agrees byte for byte. *)
      let fresh = Runner.execute (shard_job 4) in
      check Alcotest.string "cached = recomputed at shard 4"
        (Runner.metrics_to_string cold)
        (Runner.metrics_to_string fresh))

(* ------------------------------------------------------------------ *)
(* Serving-tier experiment keys                                        *)
(* ------------------------------------------------------------------ *)

module Fig_serve = Hcsgc_experiments.Fig_serve
module Serve = Hcsgc_serve.Serve
module Arrival = Hcsgc_serve.Arrival
module Keydist = Hcsgc_workloads.Keydist

let serve_knobs_in_experiment_key () =
  (* Every result-affecting serving knob must move the content address;
     the run seed must not (repetitions are addressed via ~run), and the
     shard count must only key the execution model (0 vs >= 1). *)
  let p = Serve.default in
  let key ?heap ?(params = p) ?(shard_domains = 1)
      ?(slo = Fig_serve.default_slo) () =
    Fig_serve.experiment_key ?heap ~params ~shard_domains ~slo ()
  in
  let base = key () in
  let moved name k =
    check Alcotest.bool ("distinct under " ^ name) false (String.equal base k)
  in
  moved "keys" (key ~params:{ p with Serve.keys = p.Serve.keys + 1 } ());
  moved "value words"
    (key ~params:{ p with Serve.value_words = p.Serve.value_words + 1 } ());
  moved "mutators" (key ~params:{ p with Serve.mutators = p.Serve.mutators + 1 } ());
  moved "key distribution"
    (key ~params:{ p with Serve.dist = Keydist.Uniform } ());
  moved "mix"
    (key
       ~params:
         { p with Serve.mix = { p.Serve.mix with Serve.gets = p.Serve.mix.Serve.gets + 1; updates = p.Serve.mix.Serve.updates - 1 } }
       ());
  moved "scan length"
    (key
       ~params:
         { p with Serve.mix = { p.Serve.mix with Serve.scan_len = p.Serve.mix.Serve.scan_len * 2 } }
       ());
  moved "arrival process"
    (key ~params:{ p with Serve.process = Arrival.Diurnal { trough = 0.25 } } ());
  moved "offered load" (key ~params:{ p with Serve.load = p.Serve.load *. 2.0 } ());
  moved "duration"
    (key ~params:{ p with Serve.duration = p.Serve.duration + 1 } ());
  moved "slo threshold" (key ~slo:(Fig_serve.default_slo + 1) ());
  moved "heap budget" (key ~heap:(4 * 1024 * 1024) ());
  moved "execution model" (key ~shard_domains:0 ());
  check Alcotest.string "seed normalised out" base
    (key ~params:{ p with Serve.seed = 17 } ());
  check Alcotest.string "shard width not addressed" base (key ~shard_domains:4 ())

let suite =
  [
    ( "store.fingerprint",
      [
        case "knob vectors distinct; ids 0,1 share" `Quick
          fingerprint_distinguishes_knob_vectors;
        case "sensitive to every input" `Quick fingerprint_sensitive_to_each_input;
        case "sensitive to tier knobs" `Quick fingerprint_sensitive_to_tier_knobs;
        case "length-prefixed fields" `Quick fingerprint_no_concatenation_collisions;
      ] );
    ( "store.codec",
      [
        QCheck_alcotest.to_alcotest prop_metrics_roundtrip;
        case "rejects malformed payloads" `Quick codec_rejects_malformed;
      ] );
    ( "store.robustness",
      [
        case "round trip and persistence" `Quick store_roundtrip;
        truncated;
        bitflipped;
        case "execute caches; refresh recomputes" `Quick
          execute_caches_and_refresh_recomputes;
        case "cost model learns and persists" `Quick cost_model_learns_and_persists;
        case "corrupt entry re-runs end to end" `Quick corrupt_entry_rerun_end_to_end;
      ] );
    ( "store.scheduling",
      [
        case "LPT order" `Quick scheduler_orders_longest_first;
        case "pool preserves result positions" `Quick
          pool_in_order_respects_result_positions;
      ] );
    ( "store.sharding",
      [
        case "shard count not in fingerprint" `Quick
          shard_count_not_in_fingerprint;
        case "cache hit across shard counts" `Quick
          cache_hit_across_shard_counts;
        case "serve knobs in experiment key" `Quick
          serve_knobs_in_experiment_key;
      ] );
    ( "store.sweep",
      [
        case "warm sweep byte-identical" `Quick warm_sweep_byte_identical;
        case "cold scheduled sweep = uncached" `Quick
          cold_scheduled_sweep_matches_uncached;
      ] );
  ]
