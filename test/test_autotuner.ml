(* Tests for the §4.8 feedback loop: the Autotuner hill climber and its VM
   integration. *)

module Autotuner = Hcsgc_core.Autotuner
module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Collector = Hcsgc_core.Collector
module Gc_stats = Hcsgc_core.Gc_stats
module Layout = Hcsgc_heap.Layout
module Rng = Hcsgc_util.Rng

let check = Alcotest.check
let case = Alcotest.test_case

let tuner_bounds_respected () =
  let t = Autotuner.create ~initial:1.0 ~step:0.25 () in
  (* Keep rewarding: the setting must saturate at 1.0, never exceed it. *)
  for i = 1 to 20 do
    Autotuner.observe t ~miss_rate:(1.0 /. float_of_int i);
    let cc = Autotuner.cold_confidence t in
    check Alcotest.bool "within [0,1]" true (cc >= 0.0 && cc <= 1.0)
  done

let tuner_climbs_towards_optimum () =
  (* Objective: miss rate is minimised at cold confidence 0.8. *)
  let t = Autotuner.create ~initial:0.1 ~step:0.25 () in
  let objective cc = 0.1 +. Float.abs (cc -. 0.8) in
  for _ = 1 to 40 do
    Autotuner.observe t ~miss_rate:(objective (Autotuner.cold_confidence t))
  done;
  let final = Autotuner.cold_confidence t in
  check Alcotest.bool
    (Printf.sprintf "converged near 0.8 (got %.2f)" final)
    true
    (Float.abs (final -. 0.8) < 0.25)

let tuner_backs_off_when_hurting () =
  (* Objective strictly worsens as cc grows: the tuner must retreat to low
     settings. *)
  let t = Autotuner.create ~initial:0.9 ~step:0.25 () in
  for _ = 1 to 40 do
    Autotuner.observe t ~miss_rate:(0.1 +. Autotuner.cold_confidence t)
  done;
  check Alcotest.bool "retreats" true (Autotuner.cold_confidence t < 0.5)

let tuner_ignores_garbage_input () =
  let t = Autotuner.create () in
  let before = Autotuner.cold_confidence t in
  Autotuner.observe t ~miss_rate:Float.nan;
  Autotuner.observe t ~miss_rate:(-1.0);
  check (Alcotest.float 1e-9) "unchanged" before (Autotuner.cold_confidence t);
  check Alcotest.int "no epochs consumed" 0 (Autotuner.epochs t)

let tuner_deadband_stability () =
  (* A flat objective within the deadband must not flip the direction. *)
  let t = Autotuner.create ~initial:0.5 ~step:0.1 ~deadband:0.05 () in
  for _ = 1 to 10 do
    Autotuner.observe t ~miss_rate:0.2
  done;
  (* Monotone movement in one direction until clamped. *)
  check Alcotest.bool "stable progression" true
    (Autotuner.cold_confidence t >= 0.5)

let tuner_rejects_bad_args () =
  Alcotest.check_raises "initial out of range"
    (Invalid_argument "Autotuner.create: initial outside [0,1]") (fun () ->
      ignore (Autotuner.create ~initial:1.5 ()));
  Alcotest.check_raises "zero step"
    (Invalid_argument "Autotuner.create: step must be positive") (fun () ->
      ignore (Autotuner.create ~step:0.0 ()))

(* ------------------------------------------------------------------ *)
(* Collector / VM integration                                          *)
(* ------------------------------------------------------------------ *)

let layout = Layout.scaled ~small_page:(16 * 1024)

let collector_dynamic_cc () =
  let vm =
    Vm.create ~layout ~config:(Config.of_id 5) ~max_heap:(2 * 1024 * 1024) ()
  in
  let col = Vm.collector vm in
  check (Alcotest.float 1e-9) "starts at configured value" 0.0
    (Collector.cold_confidence col);
  Collector.set_cold_confidence col 0.75;
  check (Alcotest.float 1e-9) "retuned" 0.75 (Collector.cold_confidence col);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Collector.set_cold_confidence: outside [0,1]")
    (fun () -> Collector.set_cold_confidence col 2.0)

let collector_cc_requires_hotness () =
  let vm = Vm.create ~layout ~config:Config.zgc ~max_heap:(1024 * 1024) () in
  Alcotest.check_raises "requires hotness"
    (Invalid_argument "Collector.set_cold_confidence: requires HOTNESS")
    (fun () -> Collector.set_cold_confidence (Vm.collector vm) 0.5)

let vm_autotune_requires_hotness () =
  Alcotest.check_raises "vm rejects"
    (Invalid_argument "Vm.create: autotuning requires a HOTNESS-enabled config")
    (fun () ->
      ignore
        (Vm.create ~layout ~autotune:true ~config:Config.zgc
           ~max_heap:(1024 * 1024) ()))

let vm_autotune_runs () =
  (* A skewed recurring workload under autotuning: the loop must consume
     epochs and leave a valid setting. *)
  let vm =
    Vm.create ~layout ~autotune:true
      ~config:(Config.make ~hotness:true ~lazy_relocate:true ())
      ~max_heap:(2 * 1024 * 1024) ()
  in
  check Alcotest.bool "tuned value exposed" true
    (Vm.autotuned_cold_confidence vm <> None);
  let keeper = Vm.alloc vm ~nrefs:512 ~nwords:0 in
  Vm.add_root vm keeper;
  for i = 0 to 511 do
    let o = Vm.alloc vm ~nrefs:0 ~nwords:2 in
    Vm.store_ref vm keeper i (Some o)
  done;
  let rng = Rng.create 3 in
  for _ = 1 to 30_000 do
    (match Vm.load_ref vm keeper (Rng.int rng 128) with
    | Some o -> ignore (Vm.load_word vm o 0)
    | None -> Alcotest.fail "lost object");
    ignore (Vm.alloc vm ~nrefs:0 ~nwords:8)
  done;
  Vm.finish vm;
  check Alcotest.bool "cycles ran" true (Gc_stats.cycles (Vm.gc_stats vm) > 2);
  match Vm.autotuned_cold_confidence vm with
  | Some cc -> check Alcotest.bool "valid setting" true (cc >= 0.0 && cc <= 1.0)
  | None -> Alcotest.fail "tuner missing"

let vm_without_autotune_reports_none () =
  let vm = Vm.create ~layout ~config:Config.zgc ~max_heap:(1024 * 1024) () in
  check Alcotest.bool "no tuner" true (Vm.autotuned_cold_confidence vm = None)

let suite =
  [
    ( "core.autotuner",
      [
        case "bounds respected" `Quick tuner_bounds_respected;
        case "climbs to optimum" `Quick tuner_climbs_towards_optimum;
        case "backs off when hurting" `Quick tuner_backs_off_when_hurting;
        case "ignores garbage input" `Quick tuner_ignores_garbage_input;
        case "deadband stability" `Quick tuner_deadband_stability;
        case "rejects bad args" `Quick tuner_rejects_bad_args;
        case "collector dynamic cc" `Quick collector_dynamic_cc;
        case "cc requires hotness" `Quick collector_cc_requires_hotness;
        case "vm rejects autotune w/o hotness" `Quick vm_autotune_requires_hotness;
        case "vm autotune end-to-end" `Slow vm_autotune_runs;
        case "no tuner by default" `Quick vm_without_autotune_reports_none;
      ] );
  ]
