(* Tests for hcsgc.util: PRNG, bitmaps, growable vectors. *)

module Rng = Hcsgc_util.Rng
module Bitmap = Hcsgc_util.Bitmap
module Vec = Hcsgc_util.Vec

let check = Alcotest.check
let case = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.next a) (Rng.next b)
  done

let rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 16 do
    if Rng.next a <> Rng.next b then differs := true
  done;
  check Alcotest.bool "different seeds diverge" true !differs

let rng_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    check Alcotest.bool "0 <= v < 17" true (v >= 0 && v < 17)
  done

let rng_int_in () =
  let rng = Rng.create 11 in
  for _ = 1 to 1_000 do
    let v = Rng.int_in rng (-5) 5 in
    check Alcotest.bool "in [-5,5]" true (v >= -5 && v <= 5)
  done

let rng_float_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    check Alcotest.bool "0 <= v < 2.5" true (v >= 0.0 && v < 2.5)
  done

let rng_copy_independent () =
  let a = Rng.create 9 in
  ignore (Rng.next a);
  let b = Rng.copy a in
  check Alcotest.int "copy continues identically" (Rng.next a) (Rng.next b);
  ignore (Rng.next a);
  (* advancing one does not advance the other *)
  let va = Rng.next a and vb = Rng.next b in
  check Alcotest.bool "streams now offset" true (va <> vb || Rng.next a <> vb)

let rng_split_diverges () =
  let a = Rng.create 13 in
  let b = Rng.split a in
  let differs = ref false in
  for _ = 1 to 16 do
    if Rng.next a <> Rng.next b then differs := true
  done;
  check Alcotest.bool "split stream differs from parent" true !differs

let rng_uniformity_rough () =
  (* Chi-square-ish sanity: 10 buckets over 100k draws should each hold
     within 20% of the expected count. *)
  let rng = Rng.create 1234 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      check Alcotest.bool "bucket within 20% of mean" true
        (abs (c - (n / 10)) < n / 50))
    buckets

let rng_shuffle_is_permutation () =
  let rng = Rng.create 99 in
  let arr = Array.init 100 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation"
    (Array.init 100 (fun i -> i))
    sorted

let rng_exponential_positive () =
  let rng = Rng.create 21 in
  for _ = 1 to 1_000 do
    check Alcotest.bool "exponential >= 0" true (Rng.exponential rng 5.0 >= 0.0)
  done

let rng_exponential_mean () =
  let rng = Rng.create 22 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng 3.0
  done;
  let mean = !sum /. float_of_int n in
  check Alcotest.bool "mean close to 3.0" true (Float.abs (mean -. 3.0) < 0.15)

let rng_invalid_bound () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

(* ------------------------------------------------------------------ *)
(* Bitmap                                                              *)
(* ------------------------------------------------------------------ *)

let bitmap_basic () =
  let b = Bitmap.create 100 in
  check Alcotest.int "length" 100 (Bitmap.length b);
  check Alcotest.bool "initially clear" false (Bitmap.get b 42);
  Bitmap.set b 42;
  check Alcotest.bool "set" true (Bitmap.get b 42);
  Bitmap.clear b 42;
  check Alcotest.bool "cleared" false (Bitmap.get b 42)

let bitmap_test_and_set () =
  let b = Bitmap.create 8 in
  check Alcotest.bool "first returns false" false (Bitmap.test_and_set b 3);
  check Alcotest.bool "second returns true" true (Bitmap.test_and_set b 3)

let bitmap_reset () =
  let b = Bitmap.create 64 in
  for i = 0 to 63 do
    Bitmap.set b i
  done;
  check Alcotest.int "all set" 64 (Bitmap.pop_count b);
  Bitmap.reset b;
  check Alcotest.int "all clear" 0 (Bitmap.pop_count b)

let bitmap_iter_ascending () =
  let b = Bitmap.create 200 in
  List.iter (Bitmap.set b) [ 5; 190; 64; 7; 100 ];
  let seen = ref [] in
  Bitmap.iter_set b (fun i -> seen := i :: !seen);
  check
    (Alcotest.list Alcotest.int)
    "ascending order" [ 5; 7; 64; 100; 190 ] (List.rev !seen)

let bitmap_bounds () =
  let b = Bitmap.create 10 in
  Alcotest.check_raises "negative" (Invalid_argument "Bitmap: index out of range")
    (fun () -> ignore (Bitmap.get b (-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Bitmap: index out of range")
    (fun () -> Bitmap.set b 10)

let bitmap_boundary_bits () =
  (* Bits at byte boundaries must not interfere. *)
  let b = Bitmap.create 17 in
  Bitmap.set b 7;
  Bitmap.set b 8;
  Bitmap.set b 16;
  check Alcotest.bool "bit 7" true (Bitmap.get b 7);
  check Alcotest.bool "bit 8" true (Bitmap.get b 8);
  check Alcotest.bool "bit 9 untouched" false (Bitmap.get b 9);
  check Alcotest.bool "bit 16" true (Bitmap.get b 16);
  check Alcotest.int "pop count" 3 (Bitmap.pop_count b)

let bitmap_fold () =
  let b = Bitmap.create 32 in
  List.iter (Bitmap.set b) [ 1; 2; 30 ];
  let sum = Bitmap.fold_set b ~init:0 ~f:( + ) in
  check Alcotest.int "fold sum" 33 sum

(* QCheck properties. *)

let prop_bitmap_set_get =
  QCheck.Test.make ~name:"bitmap: set then get" ~count:200
    QCheck.(pair (int_bound 500) (list (int_bound 500)))
    (fun (extra, indices) ->
      let size = 501 in
      let b = Bitmap.create size in
      List.iter (fun i -> Bitmap.set b i) indices;
      List.for_all (fun i -> Bitmap.get b i) indices
      && (List.mem extra indices || not (Bitmap.get b extra)))

let prop_bitmap_popcount =
  QCheck.Test.make ~name:"bitmap: pop_count = distinct sets" ~count:200
    QCheck.(list (int_bound 300))
    (fun indices ->
      let b = Bitmap.create 301 in
      List.iter (fun i -> Bitmap.set b i) indices;
      Bitmap.pop_count b = List.length (List.sort_uniq compare indices))

(* The table-driven pop_count must agree with the naive bit-by-bit count
   on arbitrary set/clear histories and sizes (including sizes that are
   not multiples of 8, where the trailing byte is only partly used). *)
let prop_bitmap_popcount_matches_naive =
  QCheck.Test.make ~name:"bitmap: table pop_count = naive per-bit count"
    ~count:300
    QCheck.(triple (int_range 1 400) (list (int_bound 399)) (list (int_bound 399)))
    (fun (size, sets, clears) ->
      let b = Bitmap.create size in
      List.iter (fun i -> if i < size then Bitmap.set b i) sets;
      List.iter (fun i -> if i < size then Bitmap.clear b i) clears;
      let naive = ref 0 in
      for i = 0 to size - 1 do
        if Bitmap.get b i then incr naive
      done;
      Bitmap.pop_count b = !naive)

let prop_bitmap_clear_inverts_set =
  QCheck.Test.make ~name:"bitmap: clear undoes set, leaves the rest" ~count:200
    QCheck.(pair (list (int_bound 300)) (list (int_bound 300)))
    (fun (sets, clears) ->
      let b = Bitmap.create 301 in
      List.iter (Bitmap.set b) sets;
      List.iter (Bitmap.clear b) clears;
      let expected = List.filter (fun i -> not (List.mem i clears)) sets in
      List.for_all (Bitmap.get b) expected
      && List.for_all (fun i -> not (Bitmap.get b i)) clears)

let prop_bitmap_iter_fold_agree =
  QCheck.Test.make ~name:"bitmap: iter_set, fold_set and pop_count agree"
    ~count:200
    QCheck.(list (int_bound 300))
    (fun indices ->
      let b = Bitmap.create 301 in
      List.iter (Bitmap.set b) indices;
      let via_iter = ref [] in
      Bitmap.iter_set b (fun i -> via_iter := i :: !via_iter);
      let via_iter = List.rev !via_iter in
      let via_fold =
        List.rev (Bitmap.fold_set b ~init:[] ~f:(fun acc i -> i :: acc))
      in
      via_iter = via_fold
      && via_iter = List.sort_uniq compare indices
      && List.length via_iter = Bitmap.pop_count b)

let prop_bitmap_test_and_set_reports_prior =
  QCheck.Test.make ~name:"bitmap: test_and_set returns the prior state"
    ~count:200
    QCheck.(list (int_bound 100))
    (fun indices ->
      let b = Bitmap.create 101 in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun i ->
          let prior = Hashtbl.mem model i in
          Hashtbl.replace model i ();
          Bitmap.test_and_set b i = prior && Bitmap.get b i)
        indices)

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let vec_push_pop () =
  let v = Vec.create () in
  check Alcotest.bool "empty" true (Vec.is_empty v);
  Vec.push v 1;
  Vec.push v 2;
  Vec.push v 3;
  check Alcotest.int "length" 3 (Vec.length v);
  check (Alcotest.option Alcotest.int) "pop" (Some 3) (Vec.pop v);
  check Alcotest.int "length after pop" 2 (Vec.length v);
  check (Alcotest.option Alcotest.int) "pop" (Some 2) (Vec.pop v);
  check (Alcotest.option Alcotest.int) "pop" (Some 1) (Vec.pop v);
  check (Alcotest.option Alcotest.int) "pop empty" None (Vec.pop v)

let vec_get_set () =
  let v = Vec.make 5 0 in
  Vec.set v 2 42;
  check Alcotest.int "set/get" 42 (Vec.get v 2);
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index out of range")
    (fun () -> ignore (Vec.get v 5))

let vec_growth () =
  let v = Vec.create () in
  for i = 0 to 9_999 do
    Vec.push v i
  done;
  check Alcotest.int "length" 10_000 (Vec.length v);
  check Alcotest.int "first" 0 (Vec.get v 0);
  check Alcotest.int "last" 9_999 (Vec.get v 9_999)

let vec_clear_retains_nothing_visible () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Vec.clear v;
  check Alcotest.int "cleared" 0 (Vec.length v);
  Vec.push v 9;
  check Alcotest.int "push after clear" 9 (Vec.get v 0)

let vec_conversions () =
  let v = Vec.of_list [ 3; 1; 2 ] in
  check (Alcotest.list Alcotest.int) "to_list" [ 3; 1; 2 ] (Vec.to_list v);
  Vec.sort compare v;
  check (Alcotest.list Alcotest.int) "sorted" [ 1; 2; 3 ] (Vec.to_list v)

let vec_fold_iter () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  check Alcotest.int "fold" 10 (Vec.fold_left ( + ) 0 v);
  let idx_sum = ref 0 in
  Vec.iteri (fun i x -> idx_sum := !idx_sum + (i * x)) v;
  check Alcotest.int "iteri" 20 !idx_sum;
  check Alcotest.bool "exists" true (Vec.exists (fun x -> x = 3) v);
  check Alcotest.bool "not exists" false (Vec.exists (fun x -> x = 7) v)

let prop_vec_push_preserves =
  QCheck.Test.make ~name:"vec: of_list/to_list roundtrip" ~count:200
    QCheck.(list int)
    (fun xs -> Vec.to_list (Vec.of_list xs) = xs)

let prop_vec_stack_discipline =
  QCheck.Test.make ~name:"vec: push/pop is a stack" ~count:200
    QCheck.(list (option int))
    (fun script ->
      (* [Some x] pushes x, [None] pops; compare against a list model. *)
      let v = Vec.create () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some x ->
              Vec.push v x;
              model := x :: !model;
              true
          | None -> (
              let got = Vec.pop v in
              match !model with
              | [] -> got = None
              | x :: rest ->
                  model := rest;
                  got = Some x))
        script
      && Vec.to_list v = List.rev !model)

let prop_vec_sort_matches_list_sort =
  QCheck.Test.make ~name:"vec: sort matches List.sort" ~count:200
    QCheck.(list int)
    (fun xs ->
      let v = Vec.of_list xs in
      Vec.sort compare v;
      Vec.to_list v = List.sort compare xs)

let prop_vec_clear_then_push =
  QCheck.Test.make ~name:"vec: clear forgets, capacity reuse is invisible"
    ~count:200
    QCheck.(pair (list int) (list int))
    (fun (xs, ys) ->
      let v = Vec.of_list xs in
      Vec.clear v;
      List.iter (Vec.push v) ys;
      Vec.to_list v = ys)

let suite =
  [
    ( "util.rng",
      [
        case "deterministic" `Quick rng_deterministic;
        case "seed sensitivity" `Quick rng_seed_sensitivity;
        case "int bounds" `Quick rng_bounds;
        case "int_in bounds" `Quick rng_int_in;
        case "float bounds" `Quick rng_float_bounds;
        case "copy independent" `Quick rng_copy_independent;
        case "split diverges" `Quick rng_split_diverges;
        case "rough uniformity" `Quick rng_uniformity_rough;
        case "shuffle permutes" `Quick rng_shuffle_is_permutation;
        case "exponential positive" `Quick rng_exponential_positive;
        case "exponential mean" `Quick rng_exponential_mean;
        case "invalid bound" `Quick rng_invalid_bound;
      ] );
    ( "util.bitmap",
      [
        case "basic" `Quick bitmap_basic;
        case "test_and_set" `Quick bitmap_test_and_set;
        case "reset" `Quick bitmap_reset;
        case "iter ascending" `Quick bitmap_iter_ascending;
        case "bounds" `Quick bitmap_bounds;
        case "byte boundaries" `Quick bitmap_boundary_bits;
        case "fold" `Quick bitmap_fold;
        QCheck_alcotest.to_alcotest prop_bitmap_set_get;
        QCheck_alcotest.to_alcotest prop_bitmap_popcount;
        QCheck_alcotest.to_alcotest prop_bitmap_popcount_matches_naive;
        QCheck_alcotest.to_alcotest prop_bitmap_clear_inverts_set;
        QCheck_alcotest.to_alcotest prop_bitmap_iter_fold_agree;
        QCheck_alcotest.to_alcotest prop_bitmap_test_and_set_reports_prior;
      ] );
    ( "util.vec",
      [
        case "push/pop" `Quick vec_push_pop;
        case "get/set" `Quick vec_get_set;
        case "growth" `Quick vec_growth;
        case "clear" `Quick vec_clear_retains_nothing_visible;
        case "conversions" `Quick vec_conversions;
        case "fold/iter" `Quick vec_fold_iter;
        QCheck_alcotest.to_alcotest prop_vec_push_preserves;
        QCheck_alcotest.to_alcotest prop_vec_stack_discipline;
        QCheck_alcotest.to_alcotest prop_vec_sort_matches_list_sort;
        QCheck_alcotest.to_alcotest prop_vec_clear_then_push;
      ] );
  ]
