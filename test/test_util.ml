(* Tests for hcsgc.util: PRNG, bitmaps, growable vectors. *)

module Rng = Hcsgc_util.Rng
module Bitmap = Hcsgc_util.Bitmap
module Vec = Hcsgc_util.Vec
module Int_tbl = Hcsgc_util.Int_tbl

let check = Alcotest.check
let case = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.next a) (Rng.next b)
  done

let rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 16 do
    if Rng.next a <> Rng.next b then differs := true
  done;
  check Alcotest.bool "different seeds diverge" true !differs

let rng_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    check Alcotest.bool "0 <= v < 17" true (v >= 0 && v < 17)
  done

let rng_int_in () =
  let rng = Rng.create 11 in
  for _ = 1 to 1_000 do
    let v = Rng.int_in rng (-5) 5 in
    check Alcotest.bool "in [-5,5]" true (v >= -5 && v <= 5)
  done

let rng_float_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    check Alcotest.bool "0 <= v < 2.5" true (v >= 0.0 && v < 2.5)
  done

let rng_copy_independent () =
  let a = Rng.create 9 in
  ignore (Rng.next a);
  let b = Rng.copy a in
  check Alcotest.int "copy continues identically" (Rng.next a) (Rng.next b);
  ignore (Rng.next a);
  (* advancing one does not advance the other *)
  let va = Rng.next a and vb = Rng.next b in
  check Alcotest.bool "streams now offset" true (va <> vb || Rng.next a <> vb)

let rng_split_diverges () =
  let a = Rng.create 13 in
  let b = Rng.split a in
  let differs = ref false in
  for _ = 1 to 16 do
    if Rng.next a <> Rng.next b then differs := true
  done;
  check Alcotest.bool "split stream differs from parent" true !differs

let rng_uniformity_rough () =
  (* Chi-square-ish sanity: 10 buckets over 100k draws should each hold
     within 20% of the expected count. *)
  let rng = Rng.create 1234 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      check Alcotest.bool "bucket within 20% of mean" true
        (abs (c - (n / 10)) < n / 50))
    buckets

let rng_shuffle_is_permutation () =
  let rng = Rng.create 99 in
  let arr = Array.init 100 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation"
    (Array.init 100 (fun i -> i))
    sorted

let rng_exponential_positive () =
  let rng = Rng.create 21 in
  for _ = 1 to 1_000 do
    check Alcotest.bool "exponential >= 0" true (Rng.exponential rng 5.0 >= 0.0)
  done

let rng_exponential_mean () =
  let rng = Rng.create 22 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng 3.0
  done;
  let mean = !sum /. float_of_int n in
  check Alcotest.bool "mean close to 3.0" true (Float.abs (mean -. 3.0) < 0.15)

let rng_invalid_bound () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

(* ------------------------------------------------------------------ *)
(* Bitmap                                                              *)
(* ------------------------------------------------------------------ *)

let bitmap_basic () =
  let b = Bitmap.create 100 in
  check Alcotest.int "length" 100 (Bitmap.length b);
  check Alcotest.bool "initially clear" false (Bitmap.get b 42);
  Bitmap.set b 42;
  check Alcotest.bool "set" true (Bitmap.get b 42);
  Bitmap.clear b 42;
  check Alcotest.bool "cleared" false (Bitmap.get b 42)

let bitmap_test_and_set () =
  let b = Bitmap.create 8 in
  check Alcotest.bool "first returns false" false (Bitmap.test_and_set b 3);
  check Alcotest.bool "second returns true" true (Bitmap.test_and_set b 3)

let bitmap_reset () =
  let b = Bitmap.create 64 in
  for i = 0 to 63 do
    Bitmap.set b i
  done;
  check Alcotest.int "all set" 64 (Bitmap.pop_count b);
  Bitmap.reset b;
  check Alcotest.int "all clear" 0 (Bitmap.pop_count b)

let bitmap_iter_ascending () =
  let b = Bitmap.create 200 in
  List.iter (Bitmap.set b) [ 5; 190; 64; 7; 100 ];
  let seen = ref [] in
  Bitmap.iter_set b (fun i -> seen := i :: !seen);
  check
    (Alcotest.list Alcotest.int)
    "ascending order" [ 5; 7; 64; 100; 190 ] (List.rev !seen)

let bitmap_bounds () =
  let b = Bitmap.create 10 in
  Alcotest.check_raises "negative" (Invalid_argument "Bitmap: index out of range")
    (fun () -> ignore (Bitmap.get b (-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Bitmap: index out of range")
    (fun () -> Bitmap.set b 10)

let bitmap_boundary_bits () =
  (* Bits at byte boundaries must not interfere. *)
  let b = Bitmap.create 17 in
  Bitmap.set b 7;
  Bitmap.set b 8;
  Bitmap.set b 16;
  check Alcotest.bool "bit 7" true (Bitmap.get b 7);
  check Alcotest.bool "bit 8" true (Bitmap.get b 8);
  check Alcotest.bool "bit 9 untouched" false (Bitmap.get b 9);
  check Alcotest.bool "bit 16" true (Bitmap.get b 16);
  check Alcotest.int "pop count" 3 (Bitmap.pop_count b)

let bitmap_fold () =
  let b = Bitmap.create 32 in
  List.iter (Bitmap.set b) [ 1; 2; 30 ];
  let sum = Bitmap.fold_set b ~init:0 ~f:( + ) in
  check Alcotest.int "fold sum" 33 sum

(* QCheck properties. *)

let prop_bitmap_set_get =
  QCheck.Test.make ~name:"bitmap: set then get" ~count:200
    QCheck.(pair (int_bound 500) (list (int_bound 500)))
    (fun (extra, indices) ->
      let size = 501 in
      let b = Bitmap.create size in
      List.iter (fun i -> Bitmap.set b i) indices;
      List.for_all (fun i -> Bitmap.get b i) indices
      && (List.mem extra indices || not (Bitmap.get b extra)))

let prop_bitmap_popcount =
  QCheck.Test.make ~name:"bitmap: pop_count = distinct sets" ~count:200
    QCheck.(list (int_bound 300))
    (fun indices ->
      let b = Bitmap.create 301 in
      List.iter (fun i -> Bitmap.set b i) indices;
      Bitmap.pop_count b = List.length (List.sort_uniq compare indices))

(* The table-driven pop_count must agree with the naive bit-by-bit count
   on arbitrary set/clear histories and sizes (including sizes that are
   not multiples of 8, where the trailing byte is only partly used). *)
let prop_bitmap_popcount_matches_naive =
  QCheck.Test.make ~name:"bitmap: table pop_count = naive per-bit count"
    ~count:300
    QCheck.(triple (int_range 1 400) (list (int_bound 399)) (list (int_bound 399)))
    (fun (size, sets, clears) ->
      let b = Bitmap.create size in
      List.iter (fun i -> if i < size then Bitmap.set b i) sets;
      List.iter (fun i -> if i < size then Bitmap.clear b i) clears;
      let naive = ref 0 in
      for i = 0 to size - 1 do
        if Bitmap.get b i then incr naive
      done;
      Bitmap.pop_count b = !naive)

let prop_bitmap_clear_inverts_set =
  QCheck.Test.make ~name:"bitmap: clear undoes set, leaves the rest" ~count:200
    QCheck.(pair (list (int_bound 300)) (list (int_bound 300)))
    (fun (sets, clears) ->
      let b = Bitmap.create 301 in
      List.iter (Bitmap.set b) sets;
      List.iter (Bitmap.clear b) clears;
      let expected = List.filter (fun i -> not (List.mem i clears)) sets in
      List.for_all (Bitmap.get b) expected
      && List.for_all (fun i -> not (Bitmap.get b i)) clears)

let prop_bitmap_iter_fold_agree =
  QCheck.Test.make ~name:"bitmap: iter_set, fold_set and pop_count agree"
    ~count:200
    QCheck.(list (int_bound 300))
    (fun indices ->
      let b = Bitmap.create 301 in
      List.iter (Bitmap.set b) indices;
      let via_iter = ref [] in
      Bitmap.iter_set b (fun i -> via_iter := i :: !via_iter);
      let via_iter = List.rev !via_iter in
      let via_fold =
        List.rev (Bitmap.fold_set b ~init:[] ~f:(fun acc i -> i :: acc))
      in
      via_iter = via_fold
      && via_iter = List.sort_uniq compare indices
      && List.length via_iter = Bitmap.pop_count b)

let prop_bitmap_test_and_set_reports_prior =
  QCheck.Test.make ~name:"bitmap: test_and_set returns the prior state"
    ~count:200
    QCheck.(list (int_bound 100))
    (fun indices ->
      let b = Bitmap.create 101 in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun i ->
          let prior = Hashtbl.mem model i in
          Hashtbl.replace model i ();
          Bitmap.test_and_set b i = prior && Bitmap.get b i)
        indices)

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let vec_push_pop () =
  let v = Vec.create () in
  check Alcotest.bool "empty" true (Vec.is_empty v);
  Vec.push v 1;
  Vec.push v 2;
  Vec.push v 3;
  check Alcotest.int "length" 3 (Vec.length v);
  check (Alcotest.option Alcotest.int) "pop" (Some 3) (Vec.pop v);
  check Alcotest.int "length after pop" 2 (Vec.length v);
  check (Alcotest.option Alcotest.int) "pop" (Some 2) (Vec.pop v);
  check (Alcotest.option Alcotest.int) "pop" (Some 1) (Vec.pop v);
  check (Alcotest.option Alcotest.int) "pop empty" None (Vec.pop v)

let vec_get_set () =
  let v = Vec.make 5 0 in
  Vec.set v 2 42;
  check Alcotest.int "set/get" 42 (Vec.get v 2);
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index out of range")
    (fun () -> ignore (Vec.get v 5))

let vec_growth () =
  let v = Vec.create () in
  for i = 0 to 9_999 do
    Vec.push v i
  done;
  check Alcotest.int "length" 10_000 (Vec.length v);
  check Alcotest.int "first" 0 (Vec.get v 0);
  check Alcotest.int "last" 9_999 (Vec.get v 9_999)

let vec_clear_retains_nothing_visible () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Vec.clear v;
  check Alcotest.int "cleared" 0 (Vec.length v);
  Vec.push v 9;
  check Alcotest.int "push after clear" 9 (Vec.get v 0)

let vec_conversions () =
  let v = Vec.of_list [ 3; 1; 2 ] in
  check (Alcotest.list Alcotest.int) "to_list" [ 3; 1; 2 ] (Vec.to_list v);
  Vec.sort compare v;
  check (Alcotest.list Alcotest.int) "sorted" [ 1; 2; 3 ] (Vec.to_list v)

let vec_fold_iter () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  check Alcotest.int "fold" 10 (Vec.fold_left ( + ) 0 v);
  let idx_sum = ref 0 in
  Vec.iteri (fun i x -> idx_sum := !idx_sum + (i * x)) v;
  check Alcotest.int "iteri" 20 !idx_sum;
  check Alcotest.bool "exists" true (Vec.exists (fun x -> x = 3) v);
  check Alcotest.bool "not exists" false (Vec.exists (fun x -> x = 7) v)

let prop_vec_push_preserves =
  QCheck.Test.make ~name:"vec: of_list/to_list roundtrip" ~count:200
    QCheck.(list int)
    (fun xs -> Vec.to_list (Vec.of_list xs) = xs)

let prop_vec_stack_discipline =
  QCheck.Test.make ~name:"vec: push/pop is a stack" ~count:200
    QCheck.(list (option int))
    (fun script ->
      (* [Some x] pushes x, [None] pops; compare against a list model. *)
      let v = Vec.create () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some x ->
              Vec.push v x;
              model := x :: !model;
              true
          | None -> (
              let got = Vec.pop v in
              match !model with
              | [] -> got = None
              | x :: rest ->
                  model := rest;
                  got = Some x))
        script
      && Vec.to_list v = List.rev !model)

let prop_vec_sort_matches_list_sort =
  QCheck.Test.make ~name:"vec: sort matches List.sort" ~count:200
    QCheck.(list int)
    (fun xs ->
      let v = Vec.of_list xs in
      Vec.sort compare v;
      Vec.to_list v = List.sort compare xs)

let prop_vec_clear_then_push =
  QCheck.Test.make ~name:"vec: clear forgets, capacity reuse is invisible"
    ~count:200
    QCheck.(pair (list int) (list int))
    (fun (xs, ys) ->
      let v = Vec.of_list xs in
      Vec.clear v;
      List.iter (Vec.push v) ys;
      Vec.to_list v = ys)

(* ------------------------------------------------------------------ *)
(* Vec: in-place sort / retain / arena ops (the GC-phase arenas)       *)
(* ------------------------------------------------------------------ *)

let vec_pop_last () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  check Alcotest.int "pop_last" 3 (Vec.pop_last v);
  check Alcotest.int "pop_last" 2 (Vec.pop_last v);
  check Alcotest.int "length" 1 (Vec.length v);
  check Alcotest.int "pop_last" 1 (Vec.pop_last v);
  Alcotest.check_raises "empty" (Invalid_argument "Vec.pop_last: empty")
    (fun () -> ignore (Vec.pop_last v))

let vec_truncate () =
  let v = Vec.of_list [ 1; 2; 3; 4; 5 ] in
  Vec.truncate v 2;
  check (Alcotest.list Alcotest.int) "prefix kept" [ 1; 2 ] (Vec.to_list v);
  Vec.truncate v 2;
  check Alcotest.int "idempotent at length" 2 (Vec.length v);
  Vec.truncate v 0;
  check Alcotest.bool "empty" true (Vec.is_empty v);
  Alcotest.check_raises "bad length" (Invalid_argument "Vec.truncate: bad length")
    (fun () -> Vec.truncate v 1)

let vec_retain_basic () =
  let v = Vec.of_list [ 5; 2; 7; 2; 9 ] in
  Vec.retain (fun x -> x <> 2) v;
  check (Alcotest.list Alcotest.int) "order preserved" [ 5; 7; 9 ]
    (Vec.to_list v)

(* The arena contract the collector relies on: once a vector has grown,
   clear + refill up to the old length never reallocates the backing
   array (observable on the host as zero allocated bytes). *)
let vec_clear_keeps_capacity () =
  let v = Vec.create () in
  for i = 1 to 1024 do
    Vec.push v i
  done;
  let refill () =
    Vec.clear v;
    for i = 1 to 1024 do
      Vec.push v i
    done
  in
  refill ();
  (* Gc.allocated_bytes allocates its own boxed result; calibrate the
     per-call constant and subtract it from the window. *)
  let c0 = Gc.allocated_bytes () in
  let c1 = Gc.allocated_bytes () in
  let per_call = c1 -. c0 in
  let b0 = Gc.allocated_bytes () in
  refill ();
  let b1 = Gc.allocated_bytes () in
  let words = (b1 -. b0 -. per_call) /. float_of_int (Sys.word_size / 8) in
  check Alcotest.bool "no allocation on reuse" true (words < 1.0)

let prop_vec_retain_matches_filter =
  QCheck.Test.make ~name:"vec: retain matches List.filter" ~count:300
    QCheck.(pair (list int) int)
    (fun (xs, pivot) ->
      let p x = x < pivot in
      let v = Vec.of_list xs in
      Vec.retain p v;
      Vec.to_list v = List.filter p xs)

(* Heapsort is not stable, so agreement with List.sort needs a total
   order — which is exactly how the collector uses it (EC selection
   breaks ties on page id).  Pairs with distinct second components give
   a total order with many first-component collisions. *)
let prop_vec_sort_total_order_matches_list_sort =
  QCheck.Test.make ~name:"vec: sort under a total order matches List.sort"
    ~count:300
    QCheck.(list (int_bound 7))
    (fun keys ->
      let xs = List.mapi (fun i k -> (k, i)) keys in
      let v = Vec.of_list xs in
      Vec.sort compare v;
      Vec.to_list v = List.sort compare xs)

let prop_vec_truncate_is_prefix =
  QCheck.Test.make ~name:"vec: truncate keeps the prefix" ~count:200
    QCheck.(pair (list int) (int_bound 50))
    (fun (xs, n) ->
      let v = Vec.of_list xs in
      let n = min n (List.length xs) in
      Vec.truncate v n;
      Vec.to_list v = List.filteri (fun i _ -> i < n) xs)

(* ------------------------------------------------------------------ *)
(* Bitmap.next_set (the collector's allocation-free livemap cursor)    *)
(* ------------------------------------------------------------------ *)

let bitmap_next_set_basic () =
  let b = Bitmap.create 40 in
  check Alcotest.int "empty" (-1) (Bitmap.next_set b 0);
  List.iter (Bitmap.set b) [ 0; 7; 8; 31; 39 ];
  check Alcotest.int "from 0" 0 (Bitmap.next_set b 0);
  check Alcotest.int "from 1" 7 (Bitmap.next_set b 1);
  check Alcotest.int "at a set bit" 7 (Bitmap.next_set b 7);
  check Alcotest.int "byte boundary" 8 (Bitmap.next_set b 8);
  check Alcotest.int "from 9" 31 (Bitmap.next_set b 9);
  check Alcotest.int "last bit" 39 (Bitmap.next_set b 32);
  check Alcotest.int "past last" (-1) (Bitmap.next_set b 40);
  Alcotest.check_raises "negative" (Invalid_argument "Bitmap.next_set: negative index")
    (fun () -> ignore (Bitmap.next_set b (-1)))

let prop_bitmap_next_set_matches_iter_set =
  QCheck.Test.make ~name:"bitmap: next_set cursor walk = iter_set" ~count:300
    QCheck.(pair (int_range 1 300) (list (int_bound 299)))
    (fun (size, indices) ->
      let b = Bitmap.create size in
      List.iter (fun i -> if i < size then Bitmap.set b i) indices;
      let via_iter = ref [] in
      Bitmap.iter_set b (fun i -> via_iter := i :: !via_iter);
      let via_cursor = ref [] in
      let bit = ref (Bitmap.next_set b 0) in
      while !bit >= 0 do
        via_cursor := !bit :: !via_cursor;
        bit := if !bit + 1 >= size then -1 else Bitmap.next_set b (!bit + 1)
      done;
      !via_cursor = !via_iter)

(* ------------------------------------------------------------------ *)
(* Int_tbl: flat int -> int table vs a Hashtbl model                   *)
(* ------------------------------------------------------------------ *)

let int_tbl_basic () =
  let t = Int_tbl.create ~capacity:4 () in
  check Alcotest.int "empty" 0 (Int_tbl.length t);
  Int_tbl.set t ~key:3 ~value:30;
  Int_tbl.set t ~key:3 ~value:31;
  check Alcotest.int "replace keeps one binding" 1 (Int_tbl.length t);
  check Alcotest.int "latest value" 31 (Int_tbl.get t ~key:3 ~default:(-1));
  check Alcotest.int "miss" (-1) (Int_tbl.get t ~key:4 ~default:(-1));
  check Alcotest.bool "mem" true (Int_tbl.mem t ~key:3);
  Alcotest.check_raises "negative key"
    (Invalid_argument "Int_tbl.set: negative key") (fun () ->
      Int_tbl.set t ~key:(-1) ~value:0)

let int_tbl_add_if_absent () =
  let t = Int_tbl.create () in
  check Alcotest.int "first claim wins" (-1)
    (Int_tbl.add_if_absent t ~key:7 ~value:70);
  check Alcotest.int "second claim loses" 70
    (Int_tbl.add_if_absent t ~key:7 ~value:71);
  check Alcotest.int "binding untouched" 70 (Int_tbl.get t ~key:7 ~default:(-1))

let int_tbl_clear_keeps_capacity () =
  let t = Int_tbl.create ~capacity:4 () in
  for k = 0 to 99 do
    Int_tbl.set t ~key:k ~value:k
  done;
  let cap = Int_tbl.capacity t in
  check Alcotest.bool "grew" true (cap >= 128);
  Int_tbl.clear t;
  check Alcotest.int "emptied" 0 (Int_tbl.length t);
  check Alcotest.int "capacity retained" cap (Int_tbl.capacity t);
  check Alcotest.int "old bindings gone" (-1) (Int_tbl.get t ~key:5 ~default:(-1))

(* Scripted model check against [Hashtbl], including growth (scripts
   far exceed the initial capacity) and bulk clears.  Keys are drawn as
   [base * 64] with small jitter so many collide modulo the (power of
   two) capacity — the probe chains this exercises are the
   forwarding-index access pattern (granule numbers share low bits). *)
let prop_int_tbl_matches_hashtbl =
  let op =
    QCheck.(
      oneof
        [
          map
            (fun (k, v) -> `Set (k, v))
            (pair (int_bound 60) (int_bound 1000));
          map
            (fun (k, v) -> `Add (k, v))
            (pair (int_bound 60) (int_bound 1000));
          map (fun k -> `Get k) (int_bound 60);
          map (fun () -> `Clear) unit;
        ])
  in
  QCheck.Test.make ~name:"int_tbl: scripted ops match Hashtbl model" ~count:300
    QCheck.(list op)
    (fun script ->
      let t = Int_tbl.create ~capacity:4 () in
      let model : (int, int) Hashtbl.t = Hashtbl.create 16 in
      let collide k = k * 64 in
      List.for_all
        (fun operation ->
          match operation with
          | `Set (k, v) ->
              let k = collide k in
              Int_tbl.set t ~key:k ~value:v;
              Hashtbl.replace model k v;
              true
          | `Add (k, v) ->
              let k = collide k in
              let expect =
                match Hashtbl.find_opt model k with
                | Some existing -> existing
                | None ->
                    Hashtbl.replace model k v;
                    -1
              in
              Int_tbl.add_if_absent t ~key:k ~value:v = expect
          | `Get k ->
              let k = collide k in
              Int_tbl.get t ~key:k ~default:(-1)
              = (match Hashtbl.find_opt model k with
                | Some v -> v
                | None -> -1)
              && Int_tbl.mem t ~key:k = Hashtbl.mem model k
          | `Clear ->
              Int_tbl.clear t;
              Hashtbl.reset model;
              true)
        script
      && Int_tbl.length t = Hashtbl.length model
      &&
      (* iter visits exactly the model's bindings, once each *)
      let seen = Hashtbl.create 16 in
      Int_tbl.iter t (fun k v -> Hashtbl.add seen k v);
      Hashtbl.length seen = Hashtbl.length model
      && Hashtbl.fold
           (fun k v ok -> ok && Hashtbl.find_opt seen k = Some v)
           model true)

let suite =
  [
    ( "util.rng",
      [
        case "deterministic" `Quick rng_deterministic;
        case "seed sensitivity" `Quick rng_seed_sensitivity;
        case "int bounds" `Quick rng_bounds;
        case "int_in bounds" `Quick rng_int_in;
        case "float bounds" `Quick rng_float_bounds;
        case "copy independent" `Quick rng_copy_independent;
        case "split diverges" `Quick rng_split_diverges;
        case "rough uniformity" `Quick rng_uniformity_rough;
        case "shuffle permutes" `Quick rng_shuffle_is_permutation;
        case "exponential positive" `Quick rng_exponential_positive;
        case "exponential mean" `Quick rng_exponential_mean;
        case "invalid bound" `Quick rng_invalid_bound;
      ] );
    ( "util.bitmap",
      [
        case "basic" `Quick bitmap_basic;
        case "test_and_set" `Quick bitmap_test_and_set;
        case "reset" `Quick bitmap_reset;
        case "iter ascending" `Quick bitmap_iter_ascending;
        case "bounds" `Quick bitmap_bounds;
        case "byte boundaries" `Quick bitmap_boundary_bits;
        case "fold" `Quick bitmap_fold;
        QCheck_alcotest.to_alcotest prop_bitmap_set_get;
        QCheck_alcotest.to_alcotest prop_bitmap_popcount;
        QCheck_alcotest.to_alcotest prop_bitmap_popcount_matches_naive;
        QCheck_alcotest.to_alcotest prop_bitmap_clear_inverts_set;
        QCheck_alcotest.to_alcotest prop_bitmap_iter_fold_agree;
        QCheck_alcotest.to_alcotest prop_bitmap_test_and_set_reports_prior;
        case "next_set basic" `Quick bitmap_next_set_basic;
        QCheck_alcotest.to_alcotest prop_bitmap_next_set_matches_iter_set;
      ] );
    ( "util.vec",
      [
        case "push/pop" `Quick vec_push_pop;
        case "get/set" `Quick vec_get_set;
        case "growth" `Quick vec_growth;
        case "clear" `Quick vec_clear_retains_nothing_visible;
        case "conversions" `Quick vec_conversions;
        case "fold/iter" `Quick vec_fold_iter;
        QCheck_alcotest.to_alcotest prop_vec_push_preserves;
        QCheck_alcotest.to_alcotest prop_vec_stack_discipline;
        QCheck_alcotest.to_alcotest prop_vec_sort_matches_list_sort;
        QCheck_alcotest.to_alcotest prop_vec_clear_then_push;
        case "pop_last" `Quick vec_pop_last;
        case "truncate" `Quick vec_truncate;
        case "retain basic" `Quick vec_retain_basic;
        case "clear keeps capacity" `Quick vec_clear_keeps_capacity;
        QCheck_alcotest.to_alcotest prop_vec_retain_matches_filter;
        QCheck_alcotest.to_alcotest prop_vec_sort_total_order_matches_list_sort;
        QCheck_alcotest.to_alcotest prop_vec_truncate_is_prefix;
      ] );
    ( "util.int_tbl",
      [
        case "basic" `Quick int_tbl_basic;
        case "add_if_absent" `Quick int_tbl_add_if_absent;
        case "clear keeps capacity" `Quick int_tbl_clear_keeps_capacity;
        QCheck_alcotest.to_alcotest prop_int_tbl_matches_hashtbl;
      ] );
  ]
