(* Cross-cutting sanity tests: cost-model ordering, the scaled machine,
   miscellaneous API corners. *)

module Cost = Hcsgc_core.Cost
module Gc_log = Hcsgc_core.Gc_log
module Scaled_machine = Hcsgc_experiments.Scaled_machine
module H = Hcsgc_memsim.Hierarchy
module C = Hcsgc_memsim.Cache
module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Layout = Hcsgc_heap.Layout
module Connectivity = Hcsgc_graph.Connectivity
module Mgraph = Hcsgc_graph.Mgraph

let check = Alcotest.check
let case = Alcotest.test_case

let cost_model_ordering () =
  (* Relative magnitudes the reproduction depends on. *)
  check Alcotest.bool "fast ops are cheap" true
    (Cost.op_base < Cost.barrier_slow);
  check Alcotest.bool "CAS below slow path" true
    (Cost.hotmap_cas <= Cost.barrier_slow);
  check Alcotest.bool "pauses dominate everything per-object" true
    (Cost.stw_pause > 100 * Cost.relocate_fixed);
  check Alcotest.bool "page allocation amortised" true
    (Cost.alloc_page > Cost.alloc);
  List.iter
    (fun c -> check Alcotest.bool "positive" true (c > 0))
    [
      Cost.op_base; Cost.alloc; Cost.alloc_page; Cost.barrier_slow;
      Cost.hotmap_cas; Cost.fwd_lookup; Cost.fwd_insert; Cost.relocate_fixed;
      Cost.mark_object; Cost.scan_slot; Cost.stw_pause; Cost.root_fixup;
      Cost.ec_select_per_page;
    ]

let scaled_machine_proportions () =
  let c = Scaled_machine.config in
  let d = H.default_config in
  (* Same line size and associativity; capacities scaled down together. *)
  check Alcotest.int "line size" d.H.l1.C.line_bytes c.H.l1.C.line_bytes;
  check Alcotest.int "L1 ways" d.H.l1.C.ways c.H.l1.C.ways;
  check Alcotest.bool "L1 smaller" true (c.H.l1.C.size_bytes < d.H.l1.C.size_bytes);
  check Alcotest.bool "LLC/L1 ratio preserved within 2x" true
    (let r_d = d.H.llc.C.size_bytes / d.H.l1.C.size_bytes in
     let r_c = c.H.llc.C.size_bytes / c.H.l1.C.size_bytes in
     r_c >= r_d / 2 && r_c <= r_d * 2);
  check Alcotest.bool "same latencies" true
    (c.H.lat_l1 = d.H.lat_l1 && c.H.lat_mem = d.H.lat_mem)

let gc_log_rejects_bad_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Gc_log.recorder: capacity must be positive") (fun () ->
      ignore (Gc_log.recorder ~capacity:0 ()))

let connectivity_counts_visits () =
  let vm =
    Vm.create
      ~layout:(Layout.scaled ~small_page:(16 * 1024))
      ~config:Config.zgc ~max_heap:(8 * 1024 * 1024) ()
  in
  let g = Mgraph.create vm ~n:6 in
  List.iter (fun (a, b) -> Mgraph.add_edge g a b) [ (0, 1); (1, 2); (3, 4) ];
  let r = Connectivity.analyse ~passes:2 g in
  check Alcotest.bool "visits counted" true (r.Connectivity.visits > 0);
  check Alcotest.int "components stable across passes" 3 r.Connectivity.components

let mgraph_dispose_unroots () =
  let vm =
    Vm.create
      ~layout:(Layout.scaled ~small_page:(16 * 1024))
      ~config:Config.zgc ~max_heap:(1024 * 1024) ()
  in
  let g = Mgraph.create vm ~n:100 in
  for i = 0 to 98 do
    Mgraph.add_edge g i (i + 1)
  done;
  Mgraph.dispose g;
  (* The graph is now collectable: churn must not run out of memory. *)
  for _ = 1 to 60_000 do
    ignore (Vm.alloc vm ~nrefs:0 ~nwords:12)
  done;
  Vm.finish vm;
  check Alcotest.bool "heap survived churn after dispose" true
    (Hcsgc_heap.Heap.used_ratio (Vm.heap vm) <= 1.0)

let saturated_note_nonempty () =
  check Alcotest.bool "note text" true
    (String.length Scaled_machine.saturated_note > 0)

let suite =
  [
    ( "misc",
      [
        case "cost model ordering" `Quick cost_model_ordering;
        case "scaled machine proportions" `Quick scaled_machine_proportions;
        case "gc_log capacity validated" `Quick gc_log_rejects_bad_capacity;
        case "connectivity visit counting" `Quick connectivity_counts_visits;
        case "mgraph dispose unroots" `Quick mgraph_dispose_unroots;
        case "saturated note" `Quick saturated_note_nonempty;
      ] );
  ]
