(* Tests for epoch-sharded execution: the determinism contract (byte-equal
   simulated metrics at any shard-domain count, on every workload family),
   trace determinism, verifier transparency, multi-mutator fuzzing on the
   sharded engine, and the Vm.create argument validation around it.

   "Unsharded" here means [--shard-domains 1]: still the epoch execution
   model, but with zero worker domains — the reference every parallel count
   must match byte for byte.  (The legacy inline model, [shard_domains = 0],
   is a different interleaving by design and is covered by the existing
   golden tests.) *)

module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Layout = Hcsgc_heap.Layout
module Runner = Hcsgc_experiments.Runner
module Fig_synthetic = Hcsgc_experiments.Fig_synthetic
module Fig_dacapo = Hcsgc_experiments.Fig_dacapo
module Scaled_machine = Hcsgc_experiments.Scaled_machine
module Specjbb = Hcsgc_workloads.Specjbb_sim
module Lru = Hcsgc_workloads.Lru_sim
module Multi = Hcsgc_workloads.Multi_synthetic
module Chrome_trace = Hcsgc_telemetry.Chrome_trace
module Fuzz = Hcsgc_fuzz.Fuzz

let check = Alcotest.check
let case = Alcotest.test_case

let layout = Layout.scaled ~small_page:(16 * 1024)

(* Every simulated metric the runner aggregates, in canonical string form:
   wall cycles, GC stats, cache/TLB counters, heap samples, ... *)
let metrics vm = Runner.metrics_to_string (Runner.collect vm)

let run_experiment ?(config = Config.of_id 18) (exp : Runner.experiment) =
  let vm = exp.Runner.make_vm config in
  exp.Runner.workload vm ~run:0;
  Vm.finish vm;
  metrics vm

(* Assert a workload fingerprint is byte-identical at shard counts 1 and 4. *)
let identical name mk =
  check Alcotest.string (name ^ ": shard 4 = shard 1") (mk 1) (mk 4)

(* ------------------------------------------------------------------ *)
(* Byte-equality across the five workload families                     *)
(* ------------------------------------------------------------------ *)

let synthetic_identical () =
  identical "synthetic" (fun sd ->
      run_experiment (Fig_synthetic.experiment ~shard_domains:sd ~scale:50 ()))

let h2_identical () =
  identical "h2" (fun sd ->
      run_experiment (Fig_dacapo.h2_experiment ~shard_domains:sd ~scale:16 ()))

let tradebeans_identical () =
  identical "tradebeans" (fun sd ->
      run_experiment
        (Fig_dacapo.tradebeans_experiment ~shard_domains:sd ~scale:16 ()))

let tiered_identical () =
  (* With the far tier on, demotion/promotion decisions and far-load
     latencies enter the replayed traffic — the byte-equality contract
     must hold for them too (run_metrics includes far_loads and the
     demotion counters). *)
  let config =
    Hcsgc_experiments.Fig_tier.tier_config ~capacity:16 ~lat_far:800
      ~promote:true
  in
  identical "tiered synthetic" (fun sd ->
      run_experiment ~config
        (Fig_synthetic.experiment ~cold_ratio:4 ~shard_domains:sd ~scale:50 ()));
  identical "tiered h2" (fun sd ->
      run_experiment ~config
        (Fig_dacapo.h2_experiment ~shard_domains:sd ~scale:16 ()))

let specjbb_identical () =
  (* The only paper workload with several logical mutators (handlers = 2),
     so shard 4 actually replays on parallel domains here. *)
  let params =
    {
      Specjbb.default with
      Specjbb.warehouses = 2;
      items_per_warehouse = 200;
      ramp_steps = 4;
      txns_per_step = 50;
    }
  in
  identical "specjbb" (fun sd ->
      let vm =
        Vm.create
          ~layout:(Layout.scaled ~small_page:(64 * 1024))
          ~machine_config:Scaled_machine.config
          ~mutators:params.Specjbb.handlers ~shard_domains:sd
          ~config:(Config.of_id 18)
          ~max_heap:(24 * 1024 * 1024)
          ()
      in
      let r = Specjbb.run vm params in
      Vm.finish vm;
      Printf.sprintf "%s|%.6f|%.6f|%.6f" (metrics vm) r.Specjbb.max_jops
        r.Specjbb.critical_jops r.Specjbb.mean_latency)

let lru_identical () =
  let params =
    {
      Lru.default with
      Lru.capacity = 200;
      buckets = 64;
      operations = 8_000;
      key_space = 1_000;
      hot_keys = 100;
    }
  in
  identical "lru" (fun sd ->
      let vm =
        Vm.create ~layout ~shard_domains:sd ~config:(Config.of_id 18)
          ~max_heap:(8 * 1024 * 1024) ()
      in
      let r = Lru.run vm params in
      Vm.finish vm;
      Printf.sprintf "%s|%d" (metrics vm) r.Lru.checksum)

(* ------------------------------------------------------------------ *)
(* Multi-mutator stress: full shard-count ladder + workload checksums   *)
(* ------------------------------------------------------------------ *)

let multi_params =
  {
    Multi.default with
    Multi.mutators = 4;
    elements_per_mutator = 800;
    rounds = 10;
    accesses_per_round = 1_000;
  }

let run_multi ?verify sd =
  let vm =
    Vm.create ~layout ?verify ~mutators:multi_params.Multi.mutators
      ~shard_domains:sd ~config:(Config.of_id 18)
      ~max_heap:(16 * 1024 * 1024) ()
  in
  let r = Multi.run vm multi_params in
  Vm.finish vm;
  metrics vm ^ "|"
  ^ String.concat ","
      (List.map string_of_int (Array.to_list r.Multi.checksums))

let multi_synthetic_ladder () =
  (* shard counts both below, equal to and above the mutator count *)
  let base = run_multi 1 in
  List.iter
    (fun sd ->
      check Alcotest.string
        (Printf.sprintf "multi_synthetic: shard %d = shard 1" sd)
        base (run_multi sd))
    [ 2; 3; 4; 8 ]

let verifier_transparent_under_sharding () =
  (* HCSGC_VERIFY must not perturb sharded metrics: the verification mirror
     observes the heap, it never touches the memory hierarchy. *)
  check Alcotest.string "verify:true = verify:false at shard 4"
    (run_multi ~verify:false 4)
    (run_multi ~verify:true 4)

(* ------------------------------------------------------------------ *)
(* Telemetry: Chrome-trace byte determinism                            *)
(* ------------------------------------------------------------------ *)

let chrome_trace_identical () =
  let trace sd =
    let vm =
      Vm.create ~layout ~mutators:multi_params.Multi.mutators
        ~shard_domains:sd ~config:(Config.of_id 18)
        ~max_heap:(16 * 1024 * 1024) ()
    in
    let recorder = Vm.enable_telemetry ~sample_interval:50_000 vm in
    ignore (Multi.run vm multi_params);
    Vm.finish vm;
    Chrome_trace.to_string recorder
  in
  check Alcotest.string "chrome trace: shard 4 = shard 1" (trace 1) (trace 4)

(* ------------------------------------------------------------------ *)
(* Fuzz: random heap-op sequences on the sharded engine                *)
(* ------------------------------------------------------------------ *)

let fuzz_sharded_multi_mutator () =
  (* check_seed keeps verify (mirror + invariant sweeps) and the mark-sweep
     oracle on by default — the sharded engine must survive both. *)
  List.iter
    (fun seed ->
      match
        Fuzz.check_seed ~mutators:3 ~shard_domains:4
          ~config:(Config.of_id 18) ~slots:24 ~ops:1_200 ~seed ()
      with
      | None -> ()
      | Some cex ->
          Alcotest.failf "sharded seed %d failed:@.%a" seed
            Fuzz.pp_counterexample cex)
    [ 1; 2; 3 ]

let fuzz_sharded_tiered () =
  (* Same contract with the far tier active: demotion at mark end and
     promotion from the barrier must commute with epoch sharding. *)
  let config =
    Hcsgc_experiments.Fig_tier.tier_config ~capacity:8 ~lat_far:800
      ~promote:true
  in
  match
    Fuzz.check_seed ~mutators:3 ~shard_domains:4 ~config ~slots:24 ~ops:1_200
      ~seed:2 ()
  with
  | None -> ()
  | Some cex ->
      Alcotest.failf "sharded tiered seed failed:@.%a" Fuzz.pp_counterexample
        cex

let fuzz_outcome_matches_across_counts () =
  let actions =
    Array.to_list (Fuzz.generate ~seed:11 ~ops:1_000 ~slots:20)
  in
  let outcome sd =
    Fuzz.run ~mutators:3 ~shard_domains:sd ~config:(Config.of_id 18)
      ~slots:20 actions
  in
  match (outcome 1, outcome 4) with
  | Fuzz.Pass { gc_cycles = a }, Fuzz.Pass { gc_cycles = b } ->
      check Alcotest.int "gc cycles: shard 4 = shard 1" a b
  | _ -> Alcotest.fail "expected Pass at both shard counts"

(* ------------------------------------------------------------------ *)
(* Vm.create validation                                                *)
(* ------------------------------------------------------------------ *)

let create_validation () =
  Alcotest.check_raises "negative shard_domains"
    (Invalid_argument "Vm.create: shard_domains must be non-negative")
    (fun () ->
      ignore
        (Vm.create ~layout ~shard_domains:(-1) ~config:Config.zgc
           ~max_heap:(1024 * 1024) ()));
  Alcotest.check_raises "saturated + sharded"
    (Invalid_argument
       "Vm.create: sharded execution is incompatible with saturated mode")
    (fun () ->
      ignore
        (Vm.create ~layout ~saturated:true ~shard_domains:2
           ~config:Config.zgc ~max_heap:(1024 * 1024) ()));
  let vm =
    Vm.create ~layout ~shard_domains:3 ~config:Config.zgc
      ~max_heap:(1024 * 1024) ()
  in
  check Alcotest.int "shard_domains accessor" 3 (Vm.shard_domains vm);
  Vm.finish vm;
  let vm0 = Vm.create ~layout ~config:Config.zgc ~max_heap:(1024 * 1024) () in
  check Alcotest.int "default is inline model" 0 (Vm.shard_domains vm0);
  Vm.finish vm0

let suite =
  [
    ( "shard.determinism",
      [
        case "synthetic byte-identical" `Quick synthetic_identical;
        case "h2 byte-identical" `Quick h2_identical;
        case "tradebeans byte-identical" `Quick tradebeans_identical;
        case "tiered byte-identical" `Quick tiered_identical;
        case "specjbb byte-identical" `Quick specjbb_identical;
        case "lru byte-identical" `Quick lru_identical;
        case "multi-mutator shard ladder" `Quick multi_synthetic_ladder;
        case "chrome trace byte-identical" `Quick chrome_trace_identical;
      ] );
    ( "shard.verify",
      [
        case "verifier transparent" `Quick verifier_transparent_under_sharding;
        case "fuzz multi-mutator sharded" `Slow fuzz_sharded_multi_mutator;
        case "fuzz sharded with far tier" `Slow fuzz_sharded_tiered;
        case "fuzz outcome across counts" `Quick
          fuzz_outcome_matches_across_counts;
      ] );
    ("shard.create", [ case "argument validation" `Quick create_validation ]);
  ]
