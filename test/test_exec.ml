(* Tests for hcsgc.exec: the domain pool (ordering, exception transparency,
   sequential fallback), the serialized reporter, and the determinism
   guarantee the experiment runner builds on top of them. *)

module Pool = Hcsgc_exec.Pool
module Reporter = Hcsgc_exec.Reporter
module Runner = Hcsgc_experiments.Runner
module Fig_synthetic = Hcsgc_experiments.Fig_synthetic

let check = Alcotest.check
let case = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let results_in_submission_order () =
  let items = List.init 100 Fun.id in
  let got =
    Pool.with_pool ~jobs:4 (fun pool ->
        Pool.map_list pool
          (fun i ->
            (* Stagger work so completion order differs from submission
               order: early items spin longest. *)
            let spin = ref ((100 - i) * 50) in
            while !spin > 0 do
              decr spin;
              Domain.cpu_relax ()
            done;
            i * i)
          items)
  in
  check (Alcotest.list Alcotest.int) "squares in submission order"
    (List.map (fun i -> i * i) items)
    got

let map_array_ordered () =
  let got =
    Pool.with_pool ~jobs:3 (fun pool ->
        Pool.map_array pool (fun i -> 2 * i) (Array.init 37 Fun.id))
  in
  check (Alcotest.array Alcotest.int) "doubled, ordered"
    (Array.init 37 (fun i -> 2 * i))
    got

exception Boom of int

let exception_propagates () =
  Alcotest.check_raises "worker exception re-raised" (Boom 7) (fun () ->
      ignore
        (Pool.with_pool ~jobs:2 (fun pool ->
             Pool.map_list pool
               (fun i -> if i = 5 then raise (Boom 7) else i)
               (List.init 10 Fun.id))))

let exception_keeps_backtrace () =
  (* The re-raise must carry the worker's backtrace, not the awaiter's:
     raise_with_backtrace preserves the trace recorded at capture time. *)
  Printexc.record_backtrace true;
  let deep_raise () =
    let rec go n = if n = 0 then raise (Boom 1) else 1 + go (n - 1) in
    ignore (go 5)
  in
  match
    Pool.with_pool ~jobs:2 (fun pool ->
        Pool.map_list pool (fun () -> deep_raise ()) [ () ])
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom 1 -> ()

let jobs1_runs_on_calling_domain () =
  let caller = (Domain.self () :> int) in
  let seen =
    Pool.with_pool ~jobs:1 (fun pool ->
        Pool.map_list pool
          (fun _ -> (Domain.self () :> int))
          (List.init 8 Fun.id))
  in
  List.iter
    (fun d -> check Alcotest.int "no extra domain at jobs:1" caller d)
    seen

let jobsn_uses_worker_domains () =
  let caller = (Domain.self () :> int) in
  let seen =
    Pool.with_pool ~jobs:2 (fun pool ->
        Pool.map_list pool
          (fun _ -> (Domain.self () :> int))
          (List.init 8 Fun.id))
  in
  check Alcotest.bool "some job ran off the calling domain" true
    (List.exists (fun d -> d <> caller) seen)

let async_await_roundtrip () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let p = Pool.async pool (fun () -> 40 + 2) in
      let q = Pool.async pool (fun () -> "ok") in
      check Alcotest.int "int promise" 42 (Pool.await p);
      check Alcotest.string "string promise" "ok" (Pool.await q))

let submit_after_shutdown_rejected () =
  let pool = Pool.create ~jobs:2 in
  Pool.shutdown pool;
  Alcotest.check_raises "async on shut-down pool"
    (Invalid_argument "Pool.async: pool is shut down") (fun () ->
      ignore (Pool.await (Pool.async pool (fun () -> ()))))

let default_jobs_clamped () =
  let d = Pool.default_jobs () in
  check Alcotest.bool "1 <= default <= 16" true (d >= 1 && d <= 16)

(* Run [f] with HCSGC_JOBS set to [v] (Unix.putenv leaks into the process
   environment, so restore an innocuous value afterwards). *)
let with_jobs_env v f =
  let prev = Sys.getenv_opt "HCSGC_JOBS" in
  Unix.putenv "HCSGC_JOBS" v;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "HCSGC_JOBS" (Option.value prev ~default:""))
    f

let default_jobs_env_override () =
  with_jobs_env "3" (fun () ->
      check Alcotest.int "HCSGC_JOBS=3 honoured" 3 (Pool.default_jobs ()));
  with_jobs_env " 24 " (fun () ->
      check Alcotest.int "not clamped to 16" 24 (Pool.default_jobs ()));
  (* Malformed or non-positive values fall back to the clamped default. *)
  List.iter
    (fun v ->
      with_jobs_env v (fun () ->
          let d = Pool.default_jobs () in
          check Alcotest.bool
            (Printf.sprintf "HCSGC_JOBS=%S falls back" v)
            true
            (d >= 1 && d <= 16)))
    [ "0"; "-2"; "many"; "" ]

let fork_join_covers_all_indices () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let hits = Array.make 40 0 in
          Pool.fork_join pool ~n:40 (fun i ->
              hits.(i) <- hits.(i) + 1);
          check (Alcotest.array Alcotest.int)
            (Printf.sprintf "each index once at jobs:%d" jobs)
            (Array.make 40 1) hits;
          (* n = 0 is a no-op, not an error. *)
          Pool.fork_join pool ~n:0 (fun _ -> Alcotest.fail "called at n=0")))
    [ 1; 4 ]

let fork_join_propagates_exception () =
  Alcotest.check_raises "task exception re-raised" (Boom 3) (fun () ->
      Pool.with_pool ~jobs:2 (fun pool ->
          Pool.fork_join pool ~n:8 (fun i -> if i = 6 then raise (Boom 3))))

(* ------------------------------------------------------------------ *)
(* Reporter                                                            *)
(* ------------------------------------------------------------------ *)

let reporter_lines_stay_whole () =
  let buf = Buffer.create 4096 in
  let r = Reporter.create ~emit:(fun l -> Buffer.add_string buf (l ^ "\n")) () in
  let domains = 4 and lines = 50 in
  Pool.with_pool ~jobs:domains (fun pool ->
      ignore
        (Pool.map_list pool
           (fun d ->
             for i = 0 to lines - 1 do
               Reporter.sayf r "domain=%d line=%d tail" d i
             done)
           (List.init domains Fun.id)));
  let got = String.split_on_char '\n' (Buffer.contents buf) in
  let got = List.filter (fun l -> l <> "") got in
  check Alcotest.int "every line arrived" (domains * lines) (List.length got);
  List.iter
    (fun l ->
      let intact =
        String.length l > 5
        && String.sub l 0 7 = "domain="
        && String.sub l (String.length l - 4) 4 = "tail"
      in
      check Alcotest.bool ("line intact: " ^ l) true intact)
    got

(* ------------------------------------------------------------------ *)
(* Determinism of parallel sweeps                                      *)
(* ------------------------------------------------------------------ *)

let jobs_of_expansion () =
  let exp = Fig_synthetic.experiment ~scale:50 () in
  let jobs = Runner.jobs_of ~config_ids:[ 0; 4; 16 ] ~runs:2 exp in
  check Alcotest.int "3 configs x 2 runs" 6 (List.length jobs);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "deterministic (config, run) order"
    [ (0, 0); (0, 1); (4, 0); (4, 1); (16, 0); (16, 1) ]
    (List.map (fun j -> (j.Runner.config_id, j.Runner.run)) jobs)

let parallel_sweep_bit_identical () =
  (* A small Fig. 4 sweep: every run_metrics field (including the
     heap-sample series) must be byte-identical at -j 4 and -j 1. *)
  let exp = Fig_synthetic.experiment ~scale:50 () in
  let sweep jobs =
    Runner.run_configs ~config_ids:[ 0; 4; 16 ] ~runs:2 ~jobs exp
  in
  let seq = sweep 1 in
  let par = sweep 4 in
  check Alcotest.int "same config count" (List.length seq) (List.length par);
  let seq_bytes = Marshal.to_string seq [] in
  let par_bytes = Marshal.to_string par [] in
  check Alcotest.bool "byte-identical run_metrics" true (seq_bytes = par_bytes)

let suite =
  [
    ( "exec.pool",
      [
        case "results in submission order" `Quick results_in_submission_order;
        case "map_array ordered" `Quick map_array_ordered;
        case "exception propagates" `Quick exception_propagates;
        case "exception keeps backtrace" `Quick exception_keeps_backtrace;
        case "jobs:1 uses no domains" `Quick jobs1_runs_on_calling_domain;
        case "jobs:n uses worker domains" `Quick jobsn_uses_worker_domains;
        case "async/await" `Quick async_await_roundtrip;
        case "shutdown rejects submits" `Quick submit_after_shutdown_rejected;
        case "default_jobs clamped" `Quick default_jobs_clamped;
        case "default_jobs env override" `Quick default_jobs_env_override;
        case "fork_join covers indices" `Quick fork_join_covers_all_indices;
        case "fork_join propagates exception" `Quick
          fork_join_propagates_exception;
      ] );
    ("exec.reporter", [ case "lines stay whole" `Quick reporter_lines_stay_whole ]);
    ( "exec.determinism",
      [
        case "jobs_of expansion" `Quick jobs_of_expansion;
        case "parallel sweep bit-identical" `Slow parallel_sweep_bit_identical;
      ] );
  ]
