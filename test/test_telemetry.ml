(* Tests for hcsgc.telemetry: the recorder, the analyzer's percentile/MMU
   math (hand-computed fixtures), exporter output shape — including a
   strict mini JSON parser over the Chrome trace — and the two system
   guarantees: telemetry charges zero simulated cycles, and profiled
   parallel sweeps are byte-identical to sequential ones. *)

module Recorder = Hcsgc_telemetry.Recorder
module Analyzer = Hcsgc_telemetry.Analyzer
module Chrome_trace = Hcsgc_telemetry.Chrome_trace
module Csv_export = Hcsgc_telemetry.Csv_export
module Summary = Hcsgc_telemetry.Summary
module Runner = Hcsgc_experiments.Runner
module Fig_synthetic = Hcsgc_experiments.Fig_synthetic
module Fig_tier = Hcsgc_experiments.Fig_tier
module Pool = Hcsgc_exec.Pool
module Vm = Hcsgc_runtime.Vm
module Gc_log = Hcsgc_core.Gc_log

let check = Alcotest.check
let case = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* A strict (no trailing commas, fully consumed input) JSON parser —
   just enough to shape-check the Chrome trace without a JSON library.  *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let bad msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos >= n then bad "unexpected end" else s.[!pos] in
    let advance () = incr pos in
    let rec skip_ws () =
      if !pos < n then
        match s.[!pos] with
        | ' ' | '\t' | '\n' | '\r' ->
            advance ();
            skip_ws ()
        | _ -> ()
    in
    let expect c =
      if peek () <> c then bad (Printf.sprintf "expected '%c'" c);
      advance ()
    in
    let literal word v =
      String.iter expect word;
      v
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' ->
            advance ();
            Buffer.contents buf
        | '\\' ->
            advance ();
            (match peek () with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if !pos + 4 >= n then bad "truncated \\u escape";
                String.iter
                  (function
                    | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                    | _ -> bad "bad \\u escape")
                  (String.sub s (!pos + 1) 4);
                pos := !pos + 4;
                Buffer.add_char buf '?' (* codepoint value irrelevant here *)
            | _ -> bad "bad escape");
            advance ();
            go ()
        | c when Char.code c < 0x20 -> bad "raw control character in string"
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let numeric = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && numeric s.[!pos] do
        advance ()
      done;
      if !pos = start then bad "expected a value";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> bad "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
          advance ();
          skip_ws ();
          if peek () = '}' then (
            advance ();
            Obj [])
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | '}' ->
                  advance ();
                  Obj (List.rev ((k, v) :: acc))
              | _ -> bad "expected ',' or '}'"
            in
            members []
      | '[' ->
          advance ();
          skip_ws ();
          if peek () = ']' then (
            advance ();
            Arr [])
          else
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | ',' ->
                  advance ();
                  elements (v :: acc)
              | ']' ->
                  advance ();
                  Arr (List.rev (v :: acc))
              | _ -> bad "expected ',' or ']'"
            in
            elements []
      | '"' -> Str (parse_string ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then bad "trailing garbage";
    v

  let mem k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let sample0 =
  {
    Recorder.wall = 0;
    heap_used = 0;
    hot_bytes = 0;
    loads = 0;
    stores = 0;
    l1_misses = 0;
    l2_misses = 0;
    llc_misses = 0;
    barrier_fast = 0;
    barrier_slow = 0;
    reloc_mutator = 0;
    reloc_gc = 0;
    reloc_bytes = 0;
    far_loads = 0;
  }

(* A tiny but representative synthetic job: GC cycles, lazy relocation
   and phases all occur, yet it runs in well under a second. *)
let small_job ?(config_id = 4) () =
  let exp = Fig_synthetic.experiment ~phases:2 ~scale:16 () in
  { Runner.exp; config_id; run = 0 }

(* ------------------------------------------------------------------ *)
(* Recorder                                                            *)
(* ------------------------------------------------------------------ *)

let recorder_span_nesting () =
  let r = Recorder.create () in
  Recorder.begin_span r Recorder.Gc ~name:"outer" ~wall:0;
  Recorder.begin_span r Recorder.Gc ~name:"inner" ~wall:10;
  Recorder.end_span r Recorder.Gc ~wall:20;
  Recorder.end_span r Recorder.Gc ~wall:30;
  match Recorder.spans r with
  | [ inner; outer ] ->
      check Alcotest.string "inner closes first" "inner" inner.Recorder.name;
      check Alcotest.int "inner start" 10 inner.Recorder.start;
      check Alcotest.int "inner stop" 20 inner.Recorder.stop;
      check Alcotest.string "outer closes last" "outer" outer.Recorder.name;
      check Alcotest.int "outer stop" 30 outer.Recorder.stop
  | spans ->
      Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let recorder_ring_drops () =
  let r = Recorder.create ~span_capacity:2 ~sample_capacity:2 () in
  for i = 1 to 5 do
    Recorder.complete_span r Recorder.Gc ~name:(string_of_int i)
      ~wall:(i * 10) ~dur:1;
    Recorder.sample r { sample0 with Recorder.wall = i }
  done;
  check Alcotest.int "spans dropped" 3 (Recorder.dropped_spans r);
  check Alcotest.int "samples dropped" 3 (Recorder.dropped_samples r);
  check
    (Alcotest.list Alcotest.string)
    "newest spans survive" [ "4"; "5" ]
    (List.map (fun s -> s.Recorder.name) (Recorder.spans r));
  Recorder.clear r;
  check Alcotest.int "cleared" 0 (Recorder.dropped_spans r)

let recorder_close_all () =
  let r = Recorder.create () in
  Recorder.begin_span r (Recorder.Mutator 0) ~name:"phase" ~wall:0;
  Recorder.begin_span r Recorder.Gc ~name:"GC(1)" ~wall:5;
  Recorder.close_all r ~wall:50;
  check Alcotest.int "both closed" 2 (List.length (Recorder.spans r));
  List.iter
    (fun s -> check Alcotest.int "closed at the final wall" 50 s.Recorder.stop)
    (Recorder.spans r)

let recorder_gc_event_translation () =
  let r = Recorder.create () in
  Recorder.on_gc_event r
    (Gc_log.Cycle_start { cycle = 1; wall = 100; heap_used = 4096 });
  Recorder.on_gc_event r
    (Gc_log.Pause { cycle = 1; pause = Gc_log.STW1; cost = 20; wall = 100 });
  Recorder.on_gc_event r
    (Gc_log.Mark_end { cycle = 1; marked_objects = 7; wall = 300 });
  Recorder.on_gc_event r
    (Gc_log.Pause { cycle = 1; pause = Gc_log.STW2; cost = 20; wall = 320 });
  Recorder.on_gc_event r
    (Gc_log.Ec_selected { cycle = 1; small = 3; medium = 0; wall = 340 });
  Recorder.on_gc_event r
    (Gc_log.Pause { cycle = 1; pause = Gc_log.STW3; cost = 20; wall = 360 });
  Recorder.on_gc_event r
    (Gc_log.Cycle_end { cycle = 1; wall = 500; heap_used = 2048 });
  let names = List.map (fun s -> s.Recorder.name) (Recorder.spans r) in
  List.iter
    (fun expected ->
      check Alcotest.bool (expected ^ " present") true
        (List.mem expected names))
    [
      "GC(1)"; "Pause Mark Start"; "Concurrent Mark"; "Concurrent Mark end";
      "Pause Mark End"; "Relocation Set"; "Pause Relocate Start";
      "Concurrent Relocate";
    ];
  (* The cycle slice spans the whole cycle and closes last. *)
  let gc1 =
    List.find (fun s -> s.Recorder.name = "GC(1)") (Recorder.spans r)
  in
  check Alcotest.int "cycle start" 100 gc1.Recorder.start;
  check Alcotest.int "cycle stop" 500 gc1.Recorder.stop;
  (* Pauses are slices of exactly their cost. *)
  List.iter
    (fun s ->
      if String.length s.Recorder.name >= 6
         && String.sub s.Recorder.name 0 6 = "Pause " then
        check Alcotest.int (s.Recorder.name ^ " duration") 20
          (s.Recorder.stop - s.Recorder.start))
    (Recorder.spans r)

(* ------------------------------------------------------------------ *)
(* Analyzer: percentiles and MMU on hand-computed fixtures             *)
(* ------------------------------------------------------------------ *)

let percentile_fixtures () =
  check Alcotest.int "p50 of 4" 20
    (Analyzer.percentile [ 10; 20; 30; 40 ] ~pct:50.0);
  check Alcotest.int "p95 of 4" 40
    (Analyzer.percentile [ 10; 20; 30; 40 ] ~pct:95.0);
  let hundred = List.init 100 (fun i -> i + 1) in
  check Alcotest.int "p50 of 1..100" 50 (Analyzer.percentile hundred ~pct:50.0);
  check Alcotest.int "p95 of 1..100" 95 (Analyzer.percentile hundred ~pct:95.0);
  check Alcotest.int "p99 of 1..100" 99 (Analyzer.percentile hundred ~pct:99.0);
  check Alcotest.int "p100 of 1..100" 100
    (Analyzer.percentile hundred ~pct:100.0);
  check Alcotest.int "order-independent" 95
    (Analyzer.percentile (List.rev hundred) ~pct:95.0);
  check Alcotest.bool "empty list rejected" true
    (match Analyzer.percentile [] ~pct:50.0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* Nearest-rank p99.9: rank = ceil(99.9/100 * n), so every sample short of
   1000 yields the maximum, and exactly at n = 10000 the rank drops to
   9990 — the boundary the serving-tier SLO report sits on. *)
let p999_fixtures () =
  check Alcotest.int "p99.9 of 5 samples = max" 50
    (Analyzer.percentile [ 10; 20; 30; 40; 50 ] ~pct:99.9);
  check Alcotest.int "p99.9 of 999 = max" 999
    (Analyzer.percentile (List.init 999 (fun i -> i + 1)) ~pct:99.9);
  check Alcotest.int "p99.9 of 1000 = rank 999" 999
    (Analyzer.percentile (List.init 1_000 (fun i -> i + 1)) ~pct:99.9);
  check Alcotest.int "p99.9 of 10000 = rank 9990" 9_990
    (Analyzer.percentile (List.init 10_000 (fun i -> i + 1)) ~pct:99.9);
  check Alcotest.int "p99.9 order-independent" 9_990
    (Analyzer.percentile (List.init 10_000 (fun i -> 10_000 - i)) ~pct:99.9)

let overlap_fixtures () =
  let ov ?coalesced window intervals =
    Analyzer.overlap ?coalesced ~window intervals
  in
  check Alcotest.int "disjoint" 0 (ov (0, 10) [ (20, 30) ]);
  check Alcotest.int "touching edges do not overlap" 0 (ov (0, 10) [ (10, 20) ]);
  check Alcotest.int "interval inside window" 5 (ov (0, 100) [ (10, 15) ]);
  check Alcotest.int "window inside interval" 10 (ov (20, 30) [ (0, 100) ]);
  check Alcotest.int "partial left" 5 (ov (0, 15) [ (10, 30) ]);
  check Alcotest.int "partial right" 5 (ov (25, 40) [ (10, 30) ]);
  check Alcotest.int "several intervals sum" 15
    (ov (0, 100) [ (10, 15); (20, 30) ]);
  check Alcotest.int "duplicates coalesce" 5 (ov (0, 100) [ (10, 15); (10, 15) ]);
  check Alcotest.int "overlapping intervals coalesce" 15
    (ov (0, 100) [ (10, 20); (15, 25) ]);
  check Alcotest.int "already-coalesced fast path" 15
    (ov ~coalesced:true (0, 100) [ (10, 20); (20, 25) ]);
  check Alcotest.int "empty interval dropped" 0 (ov (0, 100) [ (50, 50) ]);
  check Alcotest.int "inverted window" 0 (ov (10, 10) [ (0, 100) ]);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "coalesce normal form"
    [ (0, 25); (40, 50) ]
    (Analyzer.coalesce [ (15, 25); (0, 10); (10, 20); (40, 50); (45, 45) ])

let close_to msg expected actual =
  if Float.abs (expected -. actual) > 1e-9 then
    Alcotest.failf "%s: expected %.12f, got %.12f" msg expected actual

let mmu_fixtures () =
  let pauses = [ (10, 20) ] in
  close_to "w=50, one 10c pause in 100c" 0.8
    (Analyzer.mmu ~window:50 ~total:100 ~pauses);
  close_to "w=10 fully swallowed by the pause" 0.0
    (Analyzer.mmu ~window:10 ~total:100 ~pauses);
  close_to "w=total degenerates to overall utilisation" 0.9
    (Analyzer.mmu ~window:100 ~total:100 ~pauses);
  close_to "no pauses" 1.0 (Analyzer.mmu ~window:10 ~total:100 ~pauses:[]);
  close_to "window larger than the run clamps" 0.9
    (Analyzer.mmu ~window:1000 ~total:100 ~pauses);
  (* Two pauses: a 30-cycle window can capture both. *)
  close_to "worst window spans both pauses" (1.0 /. 3.0)
    (Analyzer.mmu ~window:30 ~total:100 ~pauses:[ (10, 20); (30, 40) ]);
  check Alcotest.bool "window <= 0 rejected" true
    (match Analyzer.mmu ~window:0 ~total:100 ~pauses with
    | _ -> false
    | exception Invalid_argument _ -> true);
  (* Coincident/overlapping pause stamps are coalesced, not double-counted
     (simulated pauses can share a wall stamp): never below 0. *)
  close_to "duplicate pauses count once" 0.8
    (Analyzer.mmu ~window:50 ~total:100 ~pauses:[ (10, 20); (10, 20) ]);
  close_to "overlapping pauses coalesce" 0.7
    (Analyzer.mmu ~window:50 ~total:100 ~pauses:[ (10, 20); (15, 25) ]);
  close_to "window inside a long pause floors at 0" 0.0
    (Analyzer.mmu ~window:5 ~total:100 ~pauses:[ (10, 20); (10, 20) ])

let pause_stats_of_recorder () =
  let r = Recorder.create () in
  Recorder.complete_span r Recorder.Gc ~name:"GC(1)" ~wall:0 ~dur:1000;
  List.iteri
    (fun i dur ->
      Recorder.complete_span r Recorder.Gc ~name:"Pause Mark Start"
        ~wall:(100 * (i + 1)) ~dur)
    [ 10; 30; 20; 40 ];
  (* A mutator span is not a pause even if named like one. *)
  Recorder.complete_span r (Recorder.Mutator 0) ~name:"Pause impostor" ~wall:0
    ~dur:999;
  let st = Analyzer.pause_stats r in
  check Alcotest.int "count" 4 st.Analyzer.count;
  check Alcotest.int "total" 100 st.Analyzer.total;
  check Alcotest.int "p50" 20 st.Analyzer.p50;
  check Alcotest.int "p95" 40 st.Analyzer.p95;
  check Alcotest.int "max" 40 st.Analyzer.max;
  (* The pauses are >50 cycles apart, so the worst 50-cycle window contains
     exactly the longest pause (40 cycles): MMU = (50-40)/50. *)
  close_to "mmu_of agrees with mmu on the recorded pauses" 0.2
    (Analyzer.mmu_of r ~window:50)

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let golden_recorder () =
  let r = Recorder.create () in
  Recorder.begin_span r Recorder.Gc ~args:[ ("heap", 64) ] ~name:"GC(1)"
    ~wall:0;
  Recorder.complete_span r Recorder.Gc ~name:"Pause Mark Start" ~wall:10
    ~dur:5;
  Recorder.instant r (Recorder.Mutator 0) ~name:"marker" ~wall:12;
  Recorder.end_span r Recorder.Gc ~wall:100;
  Recorder.sample r
    { sample0 with Recorder.wall = 50; heap_used = 1024; hot_bytes = 64 };
  r

let chrome_trace_golden () =
  let expected =
    String.concat "\n"
      [
        {|{"displayTimeUnit":"ms","traceEvents":[|};
        {|{"ph":"M","ts":0,"pid":0,"tid":0,"name":"process_name","args":{"name":"hcsgc"}},|};
        {|{"ph":"M","ts":0,"pid":0,"tid":0,"name":"thread_name","args":{"name":"GC"}},|};
        {|{"ph":"M","ts":0,"pid":0,"tid":1,"name":"thread_name","args":{"name":"mutator 0"}},|};
        {|{"ph":"X","ts":10,"dur":5,"pid":0,"tid":0,"name":"Pause Mark Start","args":{}},|};
        {|{"ph":"i","ts":12,"pid":0,"tid":1,"s":"t","name":"marker","args":{}},|};
        {|{"ph":"X","ts":0,"dur":100,"pid":0,"tid":0,"name":"GC(1)","args":{"heap":64}},|};
        {|{"ph":"C","ts":50,"pid":0,"tid":0,"name":"heap","args":{"used":1024,"hot":64}}|};
        {|]}|};
        "";
      ]
  in
  check Alcotest.string "exact trace JSON" expected
    (Chrome_trace.to_string (golden_recorder ()))

let trace_events_of json =
  match Json.mem "traceEvents" json with
  | Some (Json.Arr events) -> events
  | _ -> Alcotest.fail "traceEvents array missing"

let required_keys_of_every_event events =
  List.iter
    (fun ev ->
      let str k =
        match Json.mem k ev with
        | Some (Json.Str s) -> s
        | _ -> Alcotest.failf "event missing string key %S" k
      in
      let num k =
        match Json.mem k ev with
        | Some (Json.Num f) -> f
        | _ -> Alcotest.failf "event missing numeric key %S" k
      in
      let ph = str "ph" in
      check Alcotest.bool "known phase" true
        (List.mem ph [ "X"; "i"; "M"; "C" ]);
      check Alcotest.bool "ts >= 0" true (num "ts" >= 0.0);
      check Alcotest.bool "pid 0" true (num "pid" = 0.0);
      check Alcotest.bool "tid >= 0" true (num "tid" >= 0.0);
      ignore (str "name");
      (match ph with
      | "X" -> check Alcotest.bool "dur >= 0" true (num "dur" >= 0.0)
      | "i" -> check Alcotest.string "instant scope" "t" (str "s")
      | _ -> ());
      match Json.mem "args" ev with
      | Some (Json.Obj _) -> ()
      | _ -> Alcotest.fail "event missing args object")
    events

let chrome_trace_shape_of_real_run () =
  let _, recorder = Runner.profile ~sample_interval:20_000 (small_job ()) in
  let json =
    match Json.parse (Chrome_trace.to_string recorder) with
    | json -> json
    | exception Json.Bad msg -> Alcotest.failf "trace is not valid JSON: %s" msg
  in
  let events = trace_events_of json in
  check Alcotest.bool "non-trivial trace" true (List.length events > 10);
  required_keys_of_every_event events;
  (* Exactly one process_name record, and a thread_name per track. *)
  let named n =
    List.length
      (List.filter (fun ev -> Json.mem "name" ev = Some (Json.Str n)) events)
  in
  check Alcotest.int "one process_name" 1 (named "process_name");
  check Alcotest.int "a thread_name per track"
    (List.length (Recorder.tracks recorder))
    (named "thread_name")

let csv_row_per_sample () =
  let _, recorder = Runner.profile ~sample_interval:20_000 (small_job ()) in
  let csv = Csv_export.to_string recorder in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)
  in
  check Alcotest.int "header + one row per sample"
    (1 + List.length (Recorder.samples recorder))
    (List.length lines);
  check Alcotest.string "header line" Csv_export.header (List.hd lines);
  let columns = List.length (String.split_on_char ',' Csv_export.header) in
  List.iter
    (fun line ->
      check Alcotest.int "column count" columns
        (List.length (String.split_on_char ',' line)))
    lines

let summary_mentions_everything () =
  let _, recorder = Runner.profile ~sample_interval:20_000 (small_job ()) in
  let text = Summary.to_string recorder in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i =
      i + n <= h && (String.sub text i n = needle || go (i + 1))
    in
    check Alcotest.bool (Printf.sprintf "summary mentions %S" needle) true
      (go 0)
  in
  List.iter contains
    [ "STW pauses"; "p50"; "p99"; "MMU"; "relocation attribution"; "GC(1)" ]

(* ------------------------------------------------------------------ *)
(* System guarantees                                                   *)
(* ------------------------------------------------------------------ *)

(* The acceptance-critical property: an instrumented run's simulated clock
   (and every other metric) is identical to an uninstrumented run of the
   same job, i.e. recording costs zero simulated cycles. *)
let telemetry_costs_zero_cycles () =
  let plain = Runner.execute (small_job ()) in
  let profiled, recorder = Runner.profile ~sample_interval:10_000 (small_job ()) in
  check Alcotest.bool "recorder saw activity" true
    (List.length (Recorder.spans recorder) > 0
    && List.length (Recorder.samples recorder) > 1);
  check (Alcotest.float 0.0) "identical wall cycles" plain.Runner.wall
    profiled.Runner.wall;
  check (Alcotest.float 0.0) "identical loads" plain.Runner.loads
    profiled.Runner.loads;
  check (Alcotest.float 0.0) "identical LLC misses" plain.Runner.llc_misses
    profiled.Runner.llc_misses;
  check Alcotest.int "identical GC cycle count" plain.Runner.gc_cycle_count
    profiled.Runner.gc_cycle_count;
  check Alcotest.bool "identical heap samples" true
    (plain.Runner.heap_samples = profiled.Runner.heap_samples)

(* Domain-local recorders: fanning profiled jobs across a pool changes
   nothing about any job's trace, byte for byte. *)
let parallel_traces_deterministic () =
  let exp = Fig_synthetic.experiment ~scale:16 () in
  let jobs = Runner.jobs_of ~config_ids:[ 0; 4; 9; 16 ] ~runs:1 exp in
  let trace job =
    let _, recorder = Runner.profile ~sample_interval:25_000 job in
    Chrome_trace.to_string recorder
  in
  let sequential =
    Pool.with_pool ~jobs:1 (fun pool -> Pool.map_list pool trace jobs)
  in
  let parallel =
    Pool.with_pool ~jobs:4 (fun pool -> Pool.map_list pool trace jobs)
  in
  check Alcotest.int "same job count" (List.length sequential)
    (List.length parallel);
  List.iteri
    (fun i (s, p) ->
      check Alcotest.bool
        (Printf.sprintf "job %d trace byte-identical" i)
        true (String.equal s p))
    (List.combine sequential parallel)

let attribution_of_real_run () =
  let metrics, recorder = Runner.profile ~sample_interval:20_000 (small_job ()) in
  let points = Analyzer.attribution recorder in
  check Alcotest.int "one point per GC cycle" metrics.Runner.gc_cycle_count
    (List.length points);
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) ->
        a.Analyzer.cycle < b.Analyzer.cycle && strictly_increasing rest
    | _ -> true
  in
  check Alcotest.bool "cycles strictly increase" true
    (strictly_increasing points);
  List.iter
    (fun p ->
      check Alcotest.bool "non-negative deltas" true
        (p.Analyzer.reloc_mutator >= 0
        && p.Analyzer.reloc_gc >= 0
        && p.Analyzer.reloc_bytes >= 0))
    points;
  let sum f = List.fold_left (fun acc p -> acc + f p) 0 points in
  check Alcotest.int "mutator relocations fully attributed"
    metrics.Runner.reloc_mut
    (sum (fun p -> p.Analyzer.reloc_mutator));
  check Alcotest.int "gc relocations fully attributed" metrics.Runner.reloc_gc
    (sum (fun p -> p.Analyzer.reloc_gc));
  (* MMU of a real run stays in [0, 1] at any window, including windows
     shorter than a pause. *)
  List.iter
    (fun window ->
      let u = Analyzer.mmu_of recorder ~window in
      check Alcotest.bool
        (Printf.sprintf "mmu in range at window %d" window)
        true
        (u >= 0.0 && u <= 1.0))
    [ 1; 1_000; 10_000; 100_000; 1_000_000 ]

(* ------------------------------------------------------------------ *)
(* Per-tier miss time series: far_loads on the sample cadence           *)
(* ------------------------------------------------------------------ *)

(* Each heap sample carries the cumulative far-tier load counter, so the
   far-memory experiments get their miss traffic over time on the same
   cadence as heap usage.  A tiered cold-heavy run must produce a
   non-decreasing series that ends at the VM's final counter; an
   untiered run pins the column to zero. *)
let far_loads_series_tiered () =
  let exp = Fig_synthetic.experiment ~cold_ratio:4 ~scale:25 () in
  let vm =
    exp.Runner.make_vm (Fig_tier.tier_config ~capacity:16 ~lat_far:800
                          ~promote:true)
  in
  let recorder = Vm.enable_telemetry ~sample_interval:20_000 vm in
  exp.Runner.workload vm ~run:0;
  Vm.finish vm;
  let samples = Recorder.samples recorder in
  check Alcotest.bool "several samples" true (List.length samples > 1);
  let last = ref 0 in
  List.iter
    (fun (s : Recorder.sample) ->
      check Alcotest.bool "far_loads non-decreasing" true
        (s.Recorder.far_loads >= !last);
      last := s.Recorder.far_loads)
    samples;
  check Alcotest.bool "series reaches a positive count" true (!last > 0);
  check Alcotest.bool "bounded by the VM's final counter" true
    (!last <= Vm.far_loads vm);
  (* The series survives export: the CSV carries the column and the
     final row ends with the last sample's counter. *)
  let csv = Csv_export.to_string recorder in
  let lines =
    String.split_on_char '\n' (String.trim csv)
    |> List.filter (fun l -> l <> "")
  in
  let header = List.hd lines in
  check Alcotest.bool "header has far_loads column" true
    (let n = String.length header in
     n >= 10 && String.sub header (n - 9) 9 = "far_loads");
  let last_row = List.nth lines (List.length lines - 1) in
  let last_field =
    match List.rev (String.split_on_char ',' last_row) with
    | f :: _ -> f
    | [] -> Alcotest.fail "empty CSV row"
  in
  check Alcotest.string "last row carries the final sample's far_loads"
    (string_of_int !last) last_field

let far_loads_series_untiered () =
  let _, recorder = Runner.profile ~sample_interval:20_000 (small_job ()) in
  let samples = Recorder.samples recorder in
  check Alcotest.bool "several samples" true (List.length samples > 1);
  List.iter
    (fun (s : Recorder.sample) ->
      check Alcotest.int "far_loads zero without a tier" 0
        s.Recorder.far_loads)
    samples

let suite =
  [
    ( "telemetry.recorder",
      [
        case "span nesting" `Quick recorder_span_nesting;
        case "ring drops" `Quick recorder_ring_drops;
        case "close_all" `Quick recorder_close_all;
        case "gc event translation" `Quick recorder_gc_event_translation;
      ] );
    ( "telemetry.analyzer",
      [
        case "percentile fixtures" `Quick percentile_fixtures;
        case "p99.9 nearest-rank fixtures" `Quick p999_fixtures;
        case "interval overlap fixtures" `Quick overlap_fixtures;
        case "mmu fixtures" `Quick mmu_fixtures;
        case "pause stats" `Quick pause_stats_of_recorder;
        case "relocation attribution" `Quick attribution_of_real_run;
      ] );
    ( "telemetry.export",
      [
        case "chrome trace golden" `Quick chrome_trace_golden;
        case "chrome trace shape" `Quick chrome_trace_shape_of_real_run;
        case "csv rows" `Quick csv_row_per_sample;
        case "summary content" `Quick summary_mentions_everything;
        case "far_loads series (tiered)" `Quick far_loads_series_tiered;
        case "far_loads series (untiered)" `Quick far_loads_series_untiered;
      ] );
    ( "telemetry.system",
      [
        case "zero simulated cost" `Quick telemetry_costs_zero_cycles;
        case "parallel determinism" `Quick parallel_traces_deterministic;
      ] );
  ]
