(* Tests for the structured GC event log (the -Xlog:gc analogue). *)

module Gc_log = Hcsgc_core.Gc_log
module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Gc_stats = Hcsgc_core.Gc_stats
module Layout = Hcsgc_heap.Layout

let check = Alcotest.check
let case = Alcotest.test_case

let layout = Layout.scaled ~small_page:(16 * 1024)

let recorder_ring_buffer () =
  let r = Gc_log.recorder ~capacity:3 () in
  for i = 1 to 5 do
    Gc_log.listen r
      (Gc_log.Mark_end { cycle = i; marked_objects = i; wall = i * 10 })
  done;
  check Alcotest.int "total counted" 5 (Gc_log.count r);
  check Alcotest.int "dropped counted" 2 (Gc_log.dropped r);
  let cycles =
    List.map
      (function Gc_log.Mark_end { cycle; _ } -> cycle | _ -> -1)
      (Gc_log.events r)
  in
  check (Alcotest.list Alcotest.int) "keeps the newest, in order" [ 3; 4; 5 ]
    cycles;
  Gc_log.clear r;
  check Alcotest.int "cleared" 0 (Gc_log.count r);
  check Alcotest.int "dropped cleared" 0 (Gc_log.dropped r);
  check (Alcotest.list Alcotest.int) "no events" []
    (List.map (fun _ -> 0) (Gc_log.events r))

let recorder_reports_truncation () =
  let r = Gc_log.recorder ~capacity:2 () in
  for i = 1 to 5 do
    Gc_log.listen r
      (Gc_log.Mark_end { cycle = i; marked_objects = i; wall = i * 10 })
  done;
  let rendered = Format.asprintf "%a" Gc_log.pp r in
  let contains ~needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  let first_line = List.hd (String.split_on_char '\n' rendered) in
  check Alcotest.bool "pp notes the dropped events" true
    (contains ~needle:"3 older events dropped" first_line);
  (* A recorder that never overflowed prints no truncation line. *)
  let small = Gc_log.recorder ~capacity:8 () in
  Gc_log.listen small
    (Gc_log.Mark_end { cycle = 1; marked_objects = 1; wall = 0 });
  check Alcotest.int "no drops" 0 (Gc_log.dropped small)

let event_rendering () =
  let line e = Format.asprintf "%a" Gc_log.pp_event e in
  check Alcotest.string "pause line" "[gc] GC(2) Pause Mark Start 20000c"
    (line
       (Gc_log.Pause
          { cycle = 2; pause = Gc_log.STW1; cost = 20_000; wall = 123 }));
  check Alcotest.string "ec line" "[gc] GC(1) Relocation Set: 5 small, 1 medium pages"
    (line (Gc_log.Ec_selected { cycle = 1; small = 5; medium = 1; wall = 0 }))

let vm_records_cycle_structure () =
  let vm =
    Vm.create ~layout ~gc_log:true ~config:Config.zgc
      ~max_heap:(1024 * 1024) ()
  in
  for _ = 1 to 40_000 do
    ignore (Vm.alloc vm ~nrefs:0 ~nwords:12)
  done;
  Vm.finish vm;
  let r = Option.get (Vm.gc_log vm) in
  let events = Gc_log.events r in
  let count p = List.length (List.filter p events) in
  let starts = count (function Gc_log.Cycle_start _ -> true | _ -> false) in
  let ends = count (function Gc_log.Cycle_end _ -> true | _ -> false) in
  let stw1 =
    count (function Gc_log.Pause { pause = Gc_log.STW1; _ } -> true | _ -> false)
  in
  let stw3 =
    count (function Gc_log.Pause { pause = Gc_log.STW3; _ } -> true | _ -> false)
  in
  let cycles = Gc_stats.cycles (Vm.gc_stats vm) in
  check Alcotest.bool "cycles happened" true (cycles > 0);
  check Alcotest.int "one start per cycle" cycles starts;
  check Alcotest.int "one STW1 per cycle" cycles stw1;
  check Alcotest.bool "three pauses per completed cycle" true (stw3 <= stw1);
  check Alcotest.bool "ends recorded" true (ends > 0);
  (* Event order within the first cycle: start before its STW1, STW1 before
     mark end, mark end before EC selection. *)
  let rec index ?(i = 0) p = function
    | [] -> -1
    | e :: rest -> if p e then i else index ~i:(i + 1) p rest
  in
  let first p = index p events in
  check Alcotest.bool "start < stw1" true
    (first (function Gc_log.Cycle_start { cycle = 1; _ } -> true | _ -> false)
    < first (function
        | Gc_log.Pause { cycle = 1; pause = Gc_log.STW1; _ } -> true
        | _ -> false));
  check Alcotest.bool "mark end < ec" true
    (first (function Gc_log.Mark_end { cycle = 1; _ } -> true | _ -> false)
    < first (function Gc_log.Ec_selected { cycle = 1; _ } -> true | _ -> false))

let lazy_deferral_logged () =
  let vm =
    Vm.create ~layout ~gc_log:true ~config:(Config.of_id 4)
      ~max_heap:(1024 * 1024) ()
  in
  let keeper = Vm.alloc vm ~nrefs:64 ~nwords:0 in
  Vm.add_root vm keeper;
  for i = 0 to 63 do
    let o = Vm.alloc vm ~nrefs:0 ~nwords:2 in
    Vm.store_ref vm keeper i (Some o)
  done;
  for _ = 1 to 40_000 do
    ignore (Vm.alloc vm ~nrefs:0 ~nwords:12)
  done;
  Vm.finish vm;
  let r = Option.get (Vm.gc_log vm) in
  check Alcotest.bool "lazy deferral events present" true
    (List.exists
       (function Gc_log.Relocation_deferred _ -> true | _ -> false)
       (Gc_log.events r))

let page_frees_logged () =
  let vm =
    Vm.create ~layout ~gc_log:true ~config:Config.zgc
      ~max_heap:(1024 * 1024) ()
  in
  for _ = 1 to 40_000 do
    ignore (Vm.alloc vm ~nrefs:0 ~nwords:12)
  done;
  Vm.finish vm;
  let r = Option.get (Vm.gc_log vm) in
  let freed_events =
    List.length
      (List.filter
         (function Gc_log.Page_freed _ -> true | _ -> false)
         (Gc_log.events r))
  in
  check Alcotest.bool "page frees logged" true (freed_events > 0)

let off_by_default () =
  let vm = Vm.create ~layout ~config:Config.zgc ~max_heap:(1024 * 1024) () in
  check Alcotest.bool "no recorder" true (Vm.gc_log vm = None)

exception Sink_boom

(* A sink raising must not starve the sinks after it: every sink sees every
   event, in sink order, and the first exception is re-raised once all sinks
   have run. *)
let tee_survives_raising_sink () =
  let log = ref [] in
  let sink name e = log := (name, e) :: !log in
  let raising e =
    sink "raising" e;
    raise Sink_boom
  in
  let ev cycle = Gc_log.Mark_end { cycle; marked_objects = 0; wall = 0 } in
  let tee = Gc_log.tee [ raising; sink "second"; sink "third" ] in
  (match tee (ev 1) with
  | () -> Alcotest.fail "tee swallowed the sink's exception"
  | exception Sink_boom -> ());
  check (Alcotest.list Alcotest.string) "all sinks ran, in order"
    [ "raising"; "second"; "third" ]
    (List.rev_map fst !log);
  (* The exception is per-event: the tee keeps working afterwards. *)
  log := [];
  (match tee (ev 2) with () -> () | exception Sink_boom -> ());
  check Alcotest.int "subsequent events still fan out" 3 (List.length !log)

let tee_reraises_first_exception () =
  let last_ran = ref false in
  let tee =
    Gc_log.tee
      [ (fun _ -> failwith "a"); (fun _ -> failwith "b");
        (fun _ -> last_ran := true) ]
  in
  match tee (Gc_log.Mark_end { cycle = 1; marked_objects = 0; wall = 0 }) with
  | () -> Alcotest.fail "expected an exception"
  | exception Failure msg ->
      check Alcotest.string "first sink's exception wins" "a" msg;
      check Alcotest.bool "later sinks still ran" true !last_ran

let suite =
  [
    ( "core.gc_log",
      [
        case "ring buffer" `Quick recorder_ring_buffer;
        case "truncation notice" `Quick recorder_reports_truncation;
        case "rendering" `Quick event_rendering;
        case "cycle structure" `Quick vm_records_cycle_structure;
        case "lazy deferral" `Quick lazy_deferral_logged;
        case "page frees" `Quick page_frees_logged;
        case "off by default" `Quick off_by_default;
        case "tee survives raising sink" `Quick tee_survives_raising_sink;
        case "tee re-raises first exception" `Quick tee_reraises_first_exception;
      ] );
  ]
