(* Tests for the LRU cache workload: model-based validation against an
   OCaml reference LRU, GC-config independence, and eviction accounting. *)

module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Gc_stats = Hcsgc_core.Gc_stats
module Layout = Hcsgc_heap.Layout
module Lru = Hcsgc_workloads.Lru_sim
module Rng = Hcsgc_util.Rng

let check = Alcotest.check
let case = Alcotest.test_case

let layout = Layout.scaled ~small_page:(16 * 1024)

let mk_vm ?(config = Config.zgc) ?(max_heap = 8 * 1024 * 1024) () =
  Vm.create ~layout ~config ~max_heap ()

let small =
  {
    Lru.default with
    Lru.capacity = 200;
    buckets = 64;
    operations = 8_000;
    key_space = 1_000;
    hot_keys = 100;
  }

(* OCaml reference LRU with the same key sequence. *)
let reference p =
  let order = Queue.create () in
  (* key -> generation stamp; an entry is live if stamps match *)
  let stamp = Hashtbl.create 64 in
  let live = Hashtbl.create 64 in
  let size = ref 0 in
  let gets = ref 0 and hits = ref 0 and puts = ref 0 and evictions = ref 0 in
  let gen = ref 0 in
  let rng = Rng.create p.Lru.seed in
  let touch key =
    incr gen;
    Hashtbl.replace stamp key !gen;
    Queue.push (key, !gen) order
  in
  let evict () =
    let rec go () =
      let key, g = Queue.pop order in
      if Hashtbl.mem live key && Hashtbl.find stamp key = g then begin
        Hashtbl.remove live key;
        incr evictions;
        decr size
      end
      else go ()
    in
    go ()
  in
  for _ = 1 to p.Lru.operations do
    let key =
      if Rng.float rng 1.0 < p.Lru.hot_bias then
        Rng.int rng (max 1 p.Lru.hot_keys) * 31 mod p.Lru.key_space
      else Rng.int rng p.Lru.key_space
    in
    incr gets;
    if Hashtbl.mem live key then begin
      incr hits;
      touch key
    end
    else begin
      incr puts;
      if !size >= p.Lru.capacity then evict ();
      Hashtbl.replace live key ();
      touch key;
      incr size
    end
  done;
  (!gets, !hits, !puts, !evictions)

let matches_reference () =
  let vm = mk_vm () in
  let r = Lru.run vm small in
  let gets, hits, puts, evictions = reference small in
  check Alcotest.int "gets" gets r.Lru.gets;
  check Alcotest.int "hits" hits r.Lru.hits;
  check Alcotest.int "puts" puts r.Lru.puts;
  check Alcotest.int "evictions" evictions r.Lru.evictions

let config_independent () =
  let go config =
    let vm = mk_vm ~config () in
    let r = Lru.run vm small in
    (r.Lru.hits, r.Lru.evictions, r.Lru.checksum)
  in
  let a = go Config.zgc in
  List.iter
    (fun id ->
      check
        (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int)
        (Printf.sprintf "identical behaviour under config %d" id)
        a
        (go (Config.of_id id)))
    [ 4; 16; 18 ]

let capacity_respected () =
  let vm = mk_vm () in
  let r = Lru.run vm { small with Lru.capacity = 50 } in
  (* puts - evictions = final size <= capacity *)
  check Alcotest.bool "final size within capacity" true
    (r.Lru.puts - r.Lru.evictions <= 50)

let hot_set_hits () =
  let vm = mk_vm () in
  let r = Lru.run vm small in
  (* With a hot set much smaller than capacity, the hit rate must be high. *)
  check Alcotest.bool "hot keys mostly hit" true
    (float_of_int r.Lru.hits /. float_of_int r.Lru.gets > 0.5)

let triggers_gc_under_churn () =
  let vm = mk_vm ~max_heap:(1024 * 1024) () in
  let r =
    Lru.run vm
      { small with Lru.operations = 30_000; capacity = 400; hot_bias = 0.2 }
  in
  check Alcotest.bool "cycles ran" true (Gc_stats.cycles (Vm.gc_stats vm) > 0);
  check Alcotest.bool "evictions happened" true (r.Lru.evictions > 0)

let suite =
  [
    ( "workloads.lru",
      [
        case "matches reference LRU" `Quick matches_reference;
        case "config independent" `Slow config_independent;
        case "capacity respected" `Quick capacity_respected;
        case "hot set hits" `Quick hot_set_hits;
        case "GC under churn" `Quick triggers_gc_under_churn;
      ] );
  ]
