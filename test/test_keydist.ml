(* Tests for the shared key-distribution module: the pinned byte-identical
   lru_sim regression (the Keydist extraction must not move a single draw),
   distribution shape properties, and the CLI spec parser. *)

module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Layout = Hcsgc_heap.Layout
module Lru = Hcsgc_workloads.Lru_sim
module Keydist = Hcsgc_workloads.Keydist
module Rng = Hcsgc_util.Rng

let check = Alcotest.check
let case = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Pinned lru_sim goldens: captured on the pre-extraction tree.  These
   runs flow every key draw through Keydist.Hotset, so any change in RNG
   consumption (an extra draw, a reordered draw) shows up here first.    *)
(* ------------------------------------------------------------------ *)

let small seed =
  {
    Lru.default with
    Lru.capacity = 200;
    buckets = 64;
    operations = 8_000;
    key_space = 1_000;
    hot_keys = 100;
    seed;
  }

let lru_golden ~seed ~gets ~hits ~puts ~evictions ~checksum ~wall () =
  let vm =
    Vm.create
      ~layout:(Layout.scaled ~small_page:(16 * 1024))
      ~config:Config.zgc
      ~max_heap:(8 * 1024 * 1024)
      ()
  in
  let r = Lru.run vm (small seed) in
  check Alcotest.int "gets" gets r.Lru.gets;
  check Alcotest.int "hits" hits r.Lru.hits;
  check Alcotest.int "puts" puts r.Lru.puts;
  check Alcotest.int "evictions" evictions r.Lru.evictions;
  check Alcotest.int "checksum" checksum r.Lru.checksum;
  check Alcotest.int "wall cycles" wall (Vm.wall_cycles vm)

let lru_pinned_seed0 () =
  lru_golden ~seed:0 ~gets:8000 ~hits:6929 ~puts:1071 ~evictions:871
    ~checksum:246 ~wall:669_176 ()

let lru_pinned_seed7 () =
  lru_golden ~seed:7 ~gets:8000 ~hits:6945 ~puts:1055 ~evictions:855
    ~checksum:409 ~wall:664_147 ()

let lru_pinned_default_c18 () =
  let vm =
    Vm.create
      ~layout:(Layout.scaled ~small_page:(64 * 1024))
      ~config:(Config.of_id 18)
      ~max_heap:(4 * 1024 * 1024)
      ()
  in
  let r = Lru.run vm Lru.default in
  check Alcotest.int "gets" 150_000 r.Lru.gets;
  check Alcotest.int "hits" 128_523 r.Lru.hits;
  check Alcotest.int "puts" 21_477 r.Lru.puts;
  check Alcotest.int "evictions" 1_477 r.Lru.evictions;
  check Alcotest.int "checksum" 51_618 r.Lru.checksum;
  check Alcotest.int "wall cycles" 55_935_416 (Vm.wall_cycles vm)

(* The Hotset sampler must consume the RNG exactly like the historical
   inline generator: one float draw, then one int draw. *)
let hotset_matches_inline_formula () =
  let key_space = 1_000 and hot_keys = 100 and hot_bias = 0.85 in
  let dist =
    Keydist.create (Keydist.Hotset { hot_keys; hot_bias }) ~key_space
  in
  let a = Rng.create 42 and b = Rng.create 42 in
  for i = 1 to 10_000 do
    let expected =
      if Rng.float b 1.0 < hot_bias then
        Rng.int b (max 1 hot_keys) * 31 mod key_space
      else Rng.int b key_space
    in
    check Alcotest.int (Printf.sprintf "draw %d" i) expected
      (Keydist.sample dist a)
  done

(* ------------------------------------------------------------------ *)
(* Distribution shape                                                  *)
(* ------------------------------------------------------------------ *)

let in_range_forall spec =
  let key_space = 257 in
  let dist = Keydist.create spec ~key_space in
  let rng = Rng.create 1 in
  for _ = 1 to 20_000 do
    let k = Keydist.sample dist rng in
    if k < 0 || k >= key_space then
      Alcotest.failf "key %d outside [0, %d)" k key_space
  done

let all_in_range () =
  List.iter in_range_forall
    [
      Keydist.Uniform;
      Keydist.Hotset { hot_keys = 31; hot_bias = 0.9 };
      Keydist.Zipfian { theta = 0.99 };
      Keydist.Zipfian { theta = 0.0 };
      Keydist.Sequential { stride = 13 };
    ]

let deterministic () =
  let go () =
    let dist = Keydist.create (Keydist.Zipfian { theta = 0.99 }) ~key_space:10_000 in
    let rng = Rng.create 5 in
    List.init 1_000 (fun _ -> Keydist.sample dist rng)
  in
  check (Alcotest.list Alcotest.int) "same seed, same stream" (go ()) (go ())

let zipfian_skew () =
  (* With theta = 0.99 over 10k keys, rank 0 must dominate: it should draw
     more than 5% of samples, and the head must beat the tail heavily. *)
  let n = 10_000 in
  let dist = Keydist.create (Keydist.Zipfian { theta = 0.99 }) ~key_space:n in
  let rng = Rng.create 3 in
  let counts = Array.make n 0 in
  let samples = 100_000 in
  for _ = 1 to samples do
    let k = Keydist.sample dist rng in
    counts.(k) <- counts.(k) + 1
  done;
  let head = ref 0 and tail = ref 0 in
  for k = 0 to 99 do
    head := !head + counts.(k)
  done;
  for k = n - 5_000 to n - 1 do
    tail := !tail + counts.(k)
  done;
  check Alcotest.bool "rank 0 above 5%" true
    (float_of_int counts.(0) /. float_of_int samples > 0.05);
  check Alcotest.bool "top-100 ranks above 50%" true
    (float_of_int !head /. float_of_int samples > 0.5);
  check Alcotest.bool "head (100 keys) beats tail (5000 keys)" true (!head > !tail)

let zipfian_theta0_roughly_uniform () =
  (* theta = 0 degenerates to uniform: top-1% of ranks should take about
     1% of the samples, far from Zipf head mass. *)
  let n = 1_000 in
  let dist = Keydist.create (Keydist.Zipfian { theta = 0.0 }) ~key_space:n in
  let rng = Rng.create 9 in
  let counts = Array.make n 0 in
  let samples = 100_000 in
  for _ = 1 to samples do
    let k = Keydist.sample dist rng in
    counts.(k) <- counts.(k) + 1
  done;
  let head = ref 0 in
  for k = 0 to 9 do
    head := !head + counts.(k)
  done;
  check Alcotest.bool "top-1% below 3% of samples" true
    (float_of_int !head /. float_of_int samples < 0.03)

let sequential_cycles () =
  let dist = Keydist.create (Keydist.Sequential { stride = 3 }) ~key_space:7 in
  let rng = Rng.create 0 in
  let got = List.init 8 (fun _ -> Keydist.sample dist rng) in
  check (Alcotest.list Alcotest.int) "stride-3 cycle over 7 keys"
    [ 0; 3; 6; 2; 5; 1; 4; 0 ] got

let uniform_matches_rng_int () =
  let dist = Keydist.create Keydist.Uniform ~key_space:997 in
  let a = Rng.create 11 and b = Rng.create 11 in
  for _ = 1 to 1_000 do
    check Alcotest.int "one Rng.int per sample" (Rng.int b 997)
      (Keydist.sample dist a)
  done

(* ------------------------------------------------------------------ *)
(* Spec parsing and keys                                               *)
(* ------------------------------------------------------------------ *)

let parse_roundtrip () =
  let ok s spec =
    match Keydist.spec_of_string s with
    | Ok got ->
        check Alcotest.bool (Printf.sprintf "parse %S" s) true (got = spec)
    | Error e -> Alcotest.failf "parse %S failed: %s" s e
  in
  ok "uniform" Keydist.Uniform;
  ok "zipf" (Keydist.Zipfian { theta = 0.99 });
  ok "zipf:0.5" (Keydist.Zipfian { theta = 0.5 });
  ok "seq" (Keydist.Sequential { stride = 1 });
  ok "seq:16" (Keydist.Sequential { stride = 16 });
  ok "hotset:400,0.9" (Keydist.Hotset { hot_keys = 400; hot_bias = 0.9 });
  List.iter
    (fun s ->
      match Keydist.spec_of_string s with
      | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" s
      | Error _ -> ())
    [ "zipfian"; "zipf:1.5"; "seq:0"; "hotset:0,0.5"; "hotset:nope"; "" ]

let spec_keys_distinct () =
  let keys =
    List.map
      (fun spec -> Keydist.spec_key (Keydist.create spec ~key_space:100))
      [
        Keydist.Uniform;
        Keydist.Hotset { hot_keys = 10; hot_bias = 0.9 };
        Keydist.Hotset { hot_keys = 10; hot_bias = 0.8 };
        Keydist.Hotset { hot_keys = 20; hot_bias = 0.9 };
        Keydist.Zipfian { theta = 0.99 };
        Keydist.Zipfian { theta = 0.5 };
        Keydist.Sequential { stride = 1 };
        Keydist.Sequential { stride = 2 };
      ]
  in
  check Alcotest.int "all spec keys distinct" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let create_validates () =
  let invalid f = Alcotest.check_raises "invalid" (Invalid_argument "") f in
  let invalid f =
    ignore invalid;
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  invalid (fun () -> Keydist.create Keydist.Uniform ~key_space:0);
  invalid (fun () ->
      Keydist.create (Keydist.Hotset { hot_keys = 0; hot_bias = 0.5 })
        ~key_space:10);
  invalid (fun () ->
      Keydist.create (Keydist.Hotset { hot_keys = 5; hot_bias = 1.5 })
        ~key_space:10);
  invalid (fun () ->
      Keydist.create (Keydist.Zipfian { theta = 1.0 }) ~key_space:10);
  invalid (fun () ->
      Keydist.create (Keydist.Sequential { stride = 0 }) ~key_space:10)

let suite =
  [
    ( "workloads.keydist",
      [
        case "lru pinned golden (seed 0)" `Quick lru_pinned_seed0;
        case "lru pinned golden (seed 7)" `Quick lru_pinned_seed7;
        case "lru pinned golden (default, config 18)" `Slow
          lru_pinned_default_c18;
        case "hotset = historical inline formula" `Quick
          hotset_matches_inline_formula;
        case "all kinds stay in range" `Quick all_in_range;
        case "deterministic per seed" `Quick deterministic;
        case "zipfian skew" `Quick zipfian_skew;
        case "zipfian theta=0 ~ uniform" `Quick zipfian_theta0_roughly_uniform;
        case "sequential cycles" `Quick sequential_cycles;
        case "uniform = one Rng.int" `Quick uniform_matches_rng_int;
        case "spec parser" `Quick parse_roundtrip;
        case "spec keys distinct" `Quick spec_keys_distinct;
        case "create validates" `Quick create_validates;
      ] );
  ]
