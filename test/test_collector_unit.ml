(* Direct collector-level tests: colour-window transitions (Fig. 2), cycle
   phase structure, allocation-budget pacing, forwarding-table retirement
   and address-space recycling, medium-object handling, and the rooting
   discipline's failure mode. *)

module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Collector = Hcsgc_core.Collector
module Gc_stats = Hcsgc_core.Gc_stats
module Layout = Hcsgc_heap.Layout
module Heap = Hcsgc_heap.Heap
module Addr = Hcsgc_heap.Addr
module Heap_obj = Hcsgc_heap.Heap_obj

let check = Alcotest.check
let case = Alcotest.test_case

let layout = Layout.scaled ~small_page:(16 * 1024)

let mk_vm ?(config = Config.zgc) ?(max_heap = 2 * 1024 * 1024) () =
  Vm.create ~layout ~config ~max_heap ()

let churn vm n =
  for _ = 1 to n do
    ignore (Vm.alloc vm ~nrefs:0 ~nwords:12)
  done

let churn_one_cycle vm =
  let col = Vm.collector vm in
  let start = Gc_stats.cycles (Vm.gc_stats vm) in
  while Gc_stats.cycles (Vm.gc_stats vm) = start || Collector.in_cycle col do
    churn vm 64
  done

(* ------------------------------------------------------------------ *)
(* Colour windows                                                      *)
(* ------------------------------------------------------------------ *)

let color_window_sequence () =
  (* Drive a bare collector directly so phases can be observed precisely. *)
  let heap = Heap.create ~layout ~max_bytes:(2 * 1024 * 1024) () in
  let machine = Hcsgc_memsim.Machine.create ~cores:1 () in
  let col =
    Collector.create ~heap ~machine ~config:Config.zgc ~gc_core:0
      ~roots:(fun _f -> ())
      ()
  in
  check Alcotest.int "no cycles yet" 0 (Collector.cycle_number col);
  let mark_colors = ref [] in
  for n = 1 to 2 do
    Collector.start_cycle col;
    check Alcotest.int "cycle number" n (Collector.cycle_number col);
    check Alcotest.bool "marking after STW1" true
      (Collector.phase col = Collector.Marking);
    mark_colors := Collector.good_color col :: !mark_colors;
    Collector.gc_work col ~budget:max_int;
    check Alcotest.bool "idle after drain" true
      (Collector.phase col = Collector.Idle);
    check Alcotest.bool "good colour is R between cycles" true
      (Collector.good_color col = Addr.R)
  done;
  match List.rev !mark_colors with
  | [ a; b ] ->
      check Alcotest.bool "mark colours alternate (M0/M1)" true
        (a <> b && a <> Addr.R && b <> Addr.R)
  | _ -> Alcotest.fail "expected two marking windows" 

let phase_progression () =
  let vm = mk_vm () in
  let col = Vm.collector vm in
  check Alcotest.bool "starts idle" true (Collector.phase col = Collector.Idle);
  churn_one_cycle vm;
  Vm.finish vm;
  check Alcotest.bool "idle after finish" true
    (Collector.phase col = Collector.Idle);
  check Alcotest.bool "cycle counted" true (Collector.cycle_number col >= 1)

(* ------------------------------------------------------------------ *)
(* Cycle pacing                                                        *)
(* ------------------------------------------------------------------ *)

let allocation_budget_pacing () =
  (* With a 2 MB heap and trigger 0.25, a cycle should start roughly every
     512 KB of allocation: allocating ~2 MB in small objects must produce
     3-6 cycles, not 1 and not 20. *)
  let vm = mk_vm () in
  let bytes_per = Layout.object_bytes layout ~nrefs:0 ~nwords:12 in
  let n = 2 * 1024 * 1024 / bytes_per in
  for _ = 1 to n do
    ignore (Vm.alloc vm ~nrefs:0 ~nwords:12)
  done;
  Vm.finish vm;
  let cycles = Gc_stats.cycles (Vm.gc_stats vm) in
  check Alcotest.bool
    (Printf.sprintf "pacing plausible (%d cycles)" cycles)
    true
    (cycles >= 3 && cycles <= 6)

let no_cycle_without_allocation () =
  let vm = mk_vm () in
  let o = Vm.alloc vm ~nrefs:0 ~nwords:1 in
  Vm.add_root vm o;
  (* Loads alone never start a cycle. *)
  for _ = 1 to 50_000 do
    ignore (Vm.load_word vm o 0)
  done;
  check Alcotest.int "no cycles from pure reads" 0
    (Gc_stats.cycles (Vm.gc_stats vm))

(* ------------------------------------------------------------------ *)
(* Address-space recycling (forwarding retirement)                     *)
(* ------------------------------------------------------------------ *)

let address_space_bounded () =
  (* Churn many heaps' worth of garbage: freed ranges must be recycled
     after forwarding-table retirement, so the claimed address space stays
     within a small multiple of the heap cap. *)
  let max_heap = 2 * 1024 * 1024 in
  let vm = mk_vm ~max_heap () in
  churn vm 200_000;
  (* ~22 MB allocated *)
  Vm.finish vm;
  let space = Heap.address_space_bytes (Vm.heap vm) in
  check Alcotest.bool
    (Printf.sprintf "address space %d within 4x heap" space)
    true
    (space <= 4 * max_heap)

let address_space_bounded_all_configs () =
  List.iter
    (fun id ->
      let max_heap = 2 * 1024 * 1024 in
      let vm = mk_vm ~config:(Config.of_id id) ~max_heap () in
      churn vm 120_000;
      Vm.finish vm;
      check Alcotest.bool
        (Printf.sprintf "config %d bounded" id)
        true
        (Heap.address_space_bytes (Vm.heap vm) <= 5 * max_heap))
    [ 3; 4; 16; 18 ]

(* ------------------------------------------------------------------ *)
(* Medium objects                                                      *)
(* ------------------------------------------------------------------ *)

let medium_objects_collected_and_relocated () =
  let vm = mk_vm ~max_heap:(8 * 1024 * 1024) () in
  (* Medium objects: bigger than small_obj_max. *)
  let medium_words = (layout.Layout.small_obj_max / 8) + 8 in
  let keeper = Vm.alloc vm ~nrefs:4 ~nwords:0 in
  Vm.add_root vm keeper;
  for i = 0 to 3 do
    let m = Vm.alloc vm ~nrefs:0 ~nwords:medium_words in
    Vm.store_word vm m 0 (100 + i);
    Vm.store_ref vm keeper i (Some m)
  done;
  (* Lots of medium garbage: sparse medium pages become EC candidates. *)
  for _ = 1 to 200 do
    ignore (Vm.alloc vm ~nrefs:0 ~nwords:medium_words)
  done;
  Vm.finish vm;
  for i = 0 to 3 do
    match Vm.load_ref vm keeper i with
    | Some m -> check Alcotest.int "medium payload survives" (100 + i) (Vm.load_word vm m 0)
    | None -> Alcotest.fail "lost medium object"
  done

(* ------------------------------------------------------------------ *)
(* Rooting discipline failure mode                                     *)
(* ------------------------------------------------------------------ *)

let stale_handle_detected () =
  let vm = mk_vm () in
  (* Hold a handle to an object that is never rooted, churn until its page
     is reclaimed, then use it: the collector must detect the bug rather
     than return garbage. *)
  let doomed = Vm.alloc vm ~nrefs:0 ~nwords:1 in
  churn vm 100_000;
  Vm.finish vm;
  let raised =
    try
      ignore (Vm.load_word vm doomed 0);
      false
    with Collector.Invalid_handle _ -> true
  in
  check Alcotest.bool "stale handle use raises Invalid_handle" true raised

(* ------------------------------------------------------------------ *)
(* Barrier behaviour                                                   *)
(* ------------------------------------------------------------------ *)

let self_healing_makes_loads_cheap () =
  (* After a colour flip, the first load of a slot takes the slow path; the
     second takes the fast path — visible as a cost difference. *)
  let vm = mk_vm () in
  let src = Vm.alloc vm ~nrefs:1 ~nwords:0 in
  Vm.add_root vm src;
  let target = Vm.alloc vm ~nrefs:0 ~nwords:1 in
  Vm.store_ref vm src 0 (Some target);
  churn_one_cycle vm;
  Vm.finish vm;
  (* Slot colour is now stale relative to the post-cycle good colour. *)
  let w0 = Vm.mutator_cycles vm in
  ignore (Vm.load_ref vm src 0);
  let slow = Vm.mutator_cycles vm - w0 in
  let w1 = Vm.mutator_cycles vm in
  ignore (Vm.load_ref vm src 0);
  let fast = Vm.mutator_cycles vm - w1 in
  check Alcotest.bool
    (Printf.sprintf "self-healed load cheaper (%d -> %d)" slow fast)
    true (fast < slow)

let ec_median_tracks_relocate_all () =
  (* RELOCATEALLSMALLPAGES must select more pages than the baseline on the
     same program. *)
  let run config =
    let vm = mk_vm ~config ~max_heap:(4 * 1024 * 1024) () in
    let keeper = Vm.alloc vm ~nrefs:8192 ~nwords:0 in
    Vm.add_root vm keeper;
    for i = 0 to 8191 do
      let o = Vm.alloc vm ~nrefs:0 ~nwords:2 in
      Vm.store_ref vm keeper i (Some o)
    done;
    churn vm 60_000;
    Vm.finish vm;
    Gc_stats.median_small_pages_in_ec (Vm.gc_stats vm)
  in
  let base = run Config.zgc in
  let ra = run (Config.of_id 3) in
  check Alcotest.bool
    (Printf.sprintf "EC median grows (%.1f -> %.1f)" base ra)
    true (ra > base)

let verify_clean_after_churn () =
  List.iter
    (fun id ->
      let vm = mk_vm ~config:(Config.of_id id) () in
      let keeper = Vm.alloc vm ~nrefs:128 ~nwords:0 in
      Vm.add_root vm keeper;
      for i = 0 to 127 do
        let o = Vm.alloc vm ~nrefs:1 ~nwords:1 in
        Vm.store_ref vm keeper i (Some o);
        if i > 0 then
          match Vm.load_ref vm keeper (i - 1) with
          | Some prev -> Vm.store_ref vm prev 0 (Some o)
          | None -> ()
      done;
      churn vm 60_000;
      Vm.finish vm;
      match Collector.verify (Vm.collector vm) with
      | Ok () -> ()
      | Error errors ->
          Alcotest.failf "config %d invariants: %s" id (List.hd errors))
    [ 0; 4; 16; 18 ]

let verify_detects_corruption () =
  (* Sanity: the verifier is not a rubber stamp — hand-corrupt a slot and
     it must object. *)
  let vm = mk_vm () in
  let keeper = Vm.alloc vm ~nrefs:1 ~nwords:0 in
  Vm.add_root vm keeper;
  let o = Vm.alloc vm ~nrefs:0 ~nwords:1 in
  Vm.store_ref vm keeper 0 (Some o);
  (* Bypass the VM and write a wild pointer. *)
  Heap_obj.set_ref keeper 0 (Hcsgc_heap.Addr.make Hcsgc_heap.Addr.M0 0xdead0000);
  (match Collector.verify (Vm.collector vm) with
  | Ok () -> Alcotest.fail "verifier accepted a wild pointer"
  | Error _ -> ());
  (* Restore sanity for a clean teardown. *)
  Heap_obj.set_ref keeper 0 Hcsgc_heap.Addr.null

let suite =
  [
    ( "core.collector_unit",
      [
        case "colour windows (Fig. 2)" `Quick color_window_sequence;
        case "phase progression" `Quick phase_progression;
        case "allocation-budget pacing" `Quick allocation_budget_pacing;
        case "no cycle without allocation" `Quick no_cycle_without_allocation;
        case "address space bounded" `Quick address_space_bounded;
        case "address space bounded (HCSGC configs)" `Slow
          address_space_bounded_all_configs;
        case "medium objects survive" `Quick medium_objects_collected_and_relocated;
        case "stale handle detected" `Quick stale_handle_detected;
        case "self-healing cheapens loads" `Quick self_healing_makes_loads_cheap;
        case "relocate-all enlarges EC" `Quick ec_median_tracks_relocate_all;
        case "verifier clean after churn" `Slow verify_clean_after_churn;
        case "verifier detects corruption" `Quick verify_detects_corruption;
      ] );
  ]
