(* Tests for hcsgc.stats: descriptive statistics, bootstrap, rendering. *)

module D = Hcsgc_stats.Descriptive
module B = Hcsgc_stats.Bootstrap
module R = Hcsgc_stats.Render

let check = Alcotest.check
let case = Alcotest.test_case
let approx = Alcotest.float 1e-9

let mean_median () =
  check approx "mean" 2.5 (D.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check approx "median even" 2.5 (D.median [| 1.0; 2.0; 3.0; 4.0 |]);
  check approx "median odd" 2.0 (D.median [| 3.0; 1.0; 2.0 |]);
  check approx "singleton" 7.0 (D.median [| 7.0 |])

let quantiles () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check approx "q0" 1.0 (D.quantile xs 0.0);
  check approx "q1" 2.0 (D.quantile xs 0.25);
  check approx "q3" 4.0 (D.quantile xs 0.75);
  check approx "q100" 5.0 (D.quantile xs 1.0);
  check approx "interpolated" 1.5 (D.quantile [| 1.0; 2.0 |] 0.5)

let empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Descriptive: empty sample")
    (fun () -> ignore (D.mean [||]))

let stddev_cases () =
  check approx "constant" 0.0 (D.stddev [| 5.0; 5.0; 5.0 |]);
  check approx "short" 0.0 (D.stddev [| 5.0 |]);
  check approx "known" (sqrt 2.5) (D.stddev [| 1.0; 2.0; 3.0; 4.0; 5.0 |])

let boxplot_quartiles () =
  let b = D.boxplot [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0 |] in
  check approx "median" 4.5 b.D.median;
  check Alcotest.bool "q1 < median < q3" true (b.D.q1 < b.D.median && b.D.median < b.D.q3);
  check (Alcotest.list approx) "no outliers" [] b.D.mild_outliers

let boxplot_outliers () =
  (* A cluster plus one mild and one extreme outlier. *)
  let xs = [| 10.0; 11.0; 12.0; 13.0; 14.0; 10.5; 11.5; 12.5; 19.5; 40.0 |] in
  let b = D.boxplot xs in
  check Alcotest.int "one mild" 1 (List.length b.D.mild_outliers);
  check Alcotest.int "one extreme" 1 (List.length b.D.extreme_outliers);
  check Alcotest.bool "whiskers inside fences" true
    (b.D.whisker_hi < 19.5 && b.D.whisker_lo >= 10.0)

let prop_boxplot_ordering =
  QCheck.Test.make ~name:"boxplot: q1 <= median <= q3, whiskers bracket"
    ~count:300
    QCheck.(list_of_size (Gen.int_range 1 40) (float_range (-1000.) 1000.))
    (fun xs ->
      let arr = Array.of_list xs in
      let b = D.boxplot arr in
      b.D.q1 <= b.D.median +. 1e-9
      && b.D.median <= b.D.q3 +. 1e-9
      && b.D.whisker_lo <= b.D.whisker_hi +. 1e-9)

let bootstrap_deterministic () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let a = B.estimate ~seed:7 xs and b = B.estimate ~seed:7 xs in
  check approx "same mean" a.B.mean b.B.mean;
  check approx "same lo" a.B.ci_lo b.B.ci_lo

let bootstrap_centering () =
  let xs = Array.init 30 (fun i -> 100.0 +. float_of_int (i mod 5)) in
  let e = B.estimate ~seed:3 xs in
  check Alcotest.bool "mean near sample mean" true (Float.abs (e.B.mean -. D.mean xs) < 0.5);
  check Alcotest.bool "CI brackets mean" true (e.B.ci_lo <= e.B.mean && e.B.mean <= e.B.ci_hi)

let bootstrap_constant_sample () =
  let e = B.estimate ~seed:1 [| 4.2; 4.2; 4.2 |] in
  check approx "degenerate CI lo" 4.2 e.B.ci_lo;
  check approx "degenerate CI hi" 4.2 e.B.ci_hi

let bootstrap_overlap () =
  let a = B.estimate ~seed:1 [| 1.0; 1.1; 0.9; 1.05 |] in
  let b = B.estimate ~seed:2 [| 5.0; 5.1; 4.9; 5.05 |] in
  check Alcotest.bool "distant samples do not overlap" false (B.overlaps a b);
  check Alcotest.bool "self overlap" true (B.overlaps a a)

let bootstrap_relative () =
  let base = B.estimate ~seed:1 [| 100.0; 100.0 |] in
  let e = B.estimate ~seed:1 [| 90.0; 90.0 |] in
  check approx "10% speedup" (-0.1) (B.relative_to ~baseline:base e)

let bootstrap_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Bootstrap.estimate: empty sample")
    (fun () -> ignore (B.estimate ~seed:1 [||]))

let render_table () =
  let buf = Buffer.create 64 in
  let fmt = Format.formatter_of_buffer buf in
  R.table fmt ~headers:[ "a"; "bb" ] ~rows:[ [ "1"; "2" ]; [ "333" ] ];
  Format.pp_print_flush fmt ();
  let s = Buffer.contents buf in
  check Alcotest.bool "contains header" true
    (String.length s > 0 && String.sub s 0 1 = "a");
  check Alcotest.bool "padded row" true
    (List.exists (fun line -> String.length line >= 3)
       (String.split_on_char '\n' s))

let render_pct_si () =
  check Alcotest.string "pct" "+12.50%" (R.pct 0.125);
  check Alcotest.string "neg pct" "-30.00%" (R.pct (-0.3));
  check Alcotest.string "si k" "1.50k" (R.si 1500.0);
  check Alcotest.string "si M" "2.00M" (R.si 2_000_000.0);
  check Alcotest.string "si unit" "999" (R.si 999.0)

let suite =
  [
    ( "stats.descriptive",
      [
        case "mean/median" `Quick mean_median;
        case "quantiles" `Quick quantiles;
        case "empty rejected" `Quick empty_rejected;
        case "stddev" `Quick stddev_cases;
        case "boxplot quartiles" `Quick boxplot_quartiles;
        case "boxplot outliers" `Quick boxplot_outliers;
        QCheck_alcotest.to_alcotest prop_boxplot_ordering;
      ] );
    ( "stats.bootstrap",
      [
        case "deterministic" `Quick bootstrap_deterministic;
        case "centering" `Quick bootstrap_centering;
        case "constant sample" `Quick bootstrap_constant_sample;
        case "overlap" `Quick bootstrap_overlap;
        case "relative delta" `Quick bootstrap_relative;
        case "rejects empty" `Quick bootstrap_rejects;
      ] );
    ( "stats.render",
      [ case "table" `Quick render_table; case "pct/si" `Quick render_pct_si ] );
  ]
