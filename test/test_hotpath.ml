(* Tests for the allocation-free hot path (perf PR): Vec.remove-based root
   removal, direct-loop range accesses, steady-state allocation bounds, and
   the buffered prefetcher interface.  These guard the *equivalence* claims
   the optimisations rest on — every fast path must simulate the exact same
   numbers as the code it replaced. *)

module Vec = Hcsgc_util.Vec
module Prefetcher = Hcsgc_memsim.Prefetcher
module Machine = Hcsgc_memsim.Machine
module Hierarchy = Hcsgc_memsim.Hierarchy
module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Collector = Hcsgc_core.Collector
module Layout = Hcsgc_heap.Layout

let check = Alcotest.check
let case = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Satellite 1: Vm.remove_root / Vec.remove regression.               *)
(* ------------------------------------------------------------------ *)

let vec_remove_semantics () =
  (* Boxed elements so physical equality is meaningful. *)
  let a = ref 1 and b = ref 2 and c = ref 3 and d = ref 4 in
  let v = Vec.of_list [ a; b; c; b; d ] in
  Vec.remove v b;
  check (Alcotest.list Alcotest.int) "duplicates removed, order kept"
    [ 1; 3; 4 ]
    (List.map ( ! ) (Vec.to_list v));
  Vec.remove v (ref 99);
  check Alcotest.int "absent element is a no-op" 3 (Vec.length v);
  Vec.remove v a;
  Vec.remove v c;
  Vec.remove v d;
  check Alcotest.bool "empties cleanly" true (Vec.is_empty v);
  Vec.remove v a;
  check Alcotest.bool "remove from empty is a no-op" true (Vec.is_empty v)

let remove_root_preserves_order () =
  let vm =
    Vm.create
      ~layout:(Layout.scaled ~small_page:(16 * 1024))
      ~config:Config.zgc
      ~max_heap:(4 * 1024 * 1024)
      ()
  in
  let o1 = Vm.alloc vm ~nrefs:0 ~nwords:1 in
  Vm.add_root vm o1;
  let o2 = Vm.alloc vm ~nrefs:0 ~nwords:1 in
  Vm.add_root vm o2;
  let o3 = Vm.alloc vm ~nrefs:0 ~nwords:1 in
  Vm.add_root vm o3;
  let o4 = Vm.alloc vm ~nrefs:0 ~nwords:1 in
  Vm.add_root vm o4;
  let ids () =
    List.map
      (fun (o : Vm.Heap_obj.t) -> o.Vm.Heap_obj.id)
      (Collector.roots_list (Vm.collector vm))
  in
  let before = ids () in
  check (Alcotest.list Alcotest.int) "registration order"
    [ o1.Vm.Heap_obj.id; o2.Vm.Heap_obj.id; o3.Vm.Heap_obj.id;
      o4.Vm.Heap_obj.id ]
    before;
  (* Removing a middle root must keep the survivors in their original
     relative order — root enumeration order feeds the mark queue, so a
     reordering here would silently change GC traversal determinism. *)
  Vm.remove_root vm o2;
  check (Alcotest.list Alcotest.int) "middle removal keeps order"
    [ o1.Vm.Heap_obj.id; o3.Vm.Heap_obj.id; o4.Vm.Heap_obj.id ]
    (ids ());
  Vm.remove_root vm o4;
  check (Alcotest.list Alcotest.int) "tail removal keeps order"
    [ o1.Vm.Heap_obj.id; o3.Vm.Heap_obj.id ]
    (ids ());
  (* Re-adding goes to the end, as before the Vec.remove rewrite. *)
  Vm.add_root vm o2;
  check (Alcotest.list Alcotest.int) "re-add appends"
    [ o1.Vm.Heap_obj.id; o3.Vm.Heap_obj.id; o2.Vm.Heap_obj.id ]
    (ids ())

(* ------------------------------------------------------------------ *)
(* Satellite 2: direct-loop ranges cost exactly what per-line          *)
(* load/store cost.                                                    *)
(* ------------------------------------------------------------------ *)

let counters_testable =
  let pp fmt (c : Hierarchy.counters) =
    Format.fprintf fmt "{loads=%d;stores=%d;l1=%d;l2=%d;llc=%d;pf=%d}"
      c.Hierarchy.loads c.Hierarchy.stores c.Hierarchy.l1_misses
      c.Hierarchy.l2_misses c.Hierarchy.llc_misses c.Hierarchy.prefetches
  in
  Alcotest.testable pp ( = )

(* Drive a range call on one machine and the equivalent per-line loop on a
   fresh identical machine; every simulated number must match. *)
let machine_range_equals_per_line () =
  let a = Machine.create ~cores:2 () in
  let b = Machine.create ~cores:2 () in
  let lb = Machine.line_bytes a in
  let ranges =
    [ (0, 0, 64); (0, 40, 200); (1, 4096 - 8, 4096); (0, 65536, 16384);
      (1, 7, 1); (0, 123456, 777) ]
  in
  List.iter
    (fun (core, addr, bytes) ->
      let cost_a = Machine.load_range a ~core addr bytes in
      let cost_b = ref 0 in
      let first = addr / lb and last = (addr + bytes - 1) / lb in
      for line = first to last do
        cost_b := !cost_b + Machine.load b ~core (line * lb)
      done;
      check Alcotest.int
        (Printf.sprintf "load_range cost @0x%x+%d" addr bytes)
        !cost_b cost_a;
      let scost_a = Machine.store_range a ~core addr bytes in
      let scost_b = ref 0 in
      for line = first to last do
        scost_b := !scost_b + Machine.store b ~core (line * lb)
      done;
      check Alcotest.int
        (Printf.sprintf "store_range cost @0x%x+%d" addr bytes)
        !scost_b scost_a)
    ranges;
  check counters_testable "machine counters identical" (Machine.counters b)
    (Machine.counters a);
  check Alcotest.int "tlb misses identical" (Machine.tlb_misses b)
    (Machine.tlb_misses a)

let hierarchy_range_equals_per_line () =
  let a = Hierarchy.create Hierarchy.default_config in
  let b = Hierarchy.create Hierarchy.default_config in
  let lb = Hierarchy.line_bytes a in
  let ranges =
    [ (0, 64); (40, 200); (4096 - 8, 4096); (65536, 16384); (7, 1);
      (123456, 777) ]
  in
  List.iter
    (fun (addr, bytes) ->
      let first = addr / lb and last = (addr + bytes - 1) / lb in
      let cost_a = Hierarchy.load_range a addr bytes in
      let cost_b = ref 0 in
      for line = first to last do
        cost_b := !cost_b + Hierarchy.load b (line * lb)
      done;
      check Alcotest.int
        (Printf.sprintf "load_range cost @0x%x+%d" addr bytes)
        !cost_b cost_a;
      let scost_a = Hierarchy.store_range a addr bytes in
      let scost_b = ref 0 in
      for line = first to last do
        scost_b := !scost_b + Hierarchy.store b (line * lb)
      done;
      check Alcotest.int
        (Printf.sprintf "store_range cost @0x%x+%d" addr bytes)
        !scost_b scost_a)
    ranges;
  check counters_testable "hierarchy counters identical"
    (Hierarchy.counters b) (Hierarchy.counters a)

(* ------------------------------------------------------------------ *)
(* Satellite 3: steady-state load/store ops allocate nothing.          *)
(* ------------------------------------------------------------------ *)

let steady_state_allocation_free () =
  let vm =
    Vm.create
      ~layout:(Layout.scaled ~small_page:(16 * 1024))
      ~config:Config.zgc
      ~max_heap:(16 * 1024 * 1024)
      ()
  in
  let n = 64 in
  let objs =
    Array.init n (fun _ -> Vm.alloc vm ~nrefs:2 ~nwords:6)
  in
  Array.iter (fun o -> Vm.add_root vm o) objs;
  (* Materialise every payload so store_word never hits its lazy
     first-write allocation during measurement. *)
  Array.iter (fun o -> Vm.store_word vm o 0 1) objs;
  (* Drain any in-flight GC cycle; nothing below allocates simulated
     memory, so no new cycle can start mid-measurement. *)
  Vm.full_gc vm;
  let ops = 100_000 in
  let kernel () =
    for i = 0 to ops - 1 do
      let o = Array.unsafe_get objs (i mod n) in
      if i land 1 = 0 then ignore (Vm.load_word vm o (i land 3) : int)
      else Vm.store_word vm o (i land 3) i;
      Vm.touch vm o
    done
  in
  kernel ();
  (* warm *)
  let before = Gc.allocated_bytes () in
  kernel ();
  let after = Gc.allocated_bytes () in
  let words_per_op = (after -. before) /. 8.0 /. float_of_int ops in
  (* The steady-state load/store path allocates 0 words per op.  The bound
     is 0.05 rather than exactly 0.0 to absorb (a) the boxed floats of the
     two [Gc.allocated_bytes] calls themselves and (b) the rare GC-pump
     housekeeping tick (runs once per ~4k charged ops, and in dev builds —
     without cross-module inlining of the float accessors — may box a
     couple of words).  Per *op* that is < 0.001 words; any real per-op
     allocation (a closure, an option, a list cell) costs >= 2 words/op
     and fails this loudly. *)
  if words_per_op >= 0.05 then
    Alcotest.failf "steady-state ops allocate: %.4f words/op" words_per_op

let load_ref_allocation_bounded () =
  let vm =
    Vm.create
      ~layout:(Layout.scaled ~small_page:(16 * 1024))
      ~config:Config.zgc
      ~max_heap:(16 * 1024 * 1024)
      ()
  in
  let n = 64 in
  let objs = Array.init n (fun _ -> Vm.alloc vm ~nrefs:2 ~nwords:2) in
  Array.iter (fun o -> Vm.add_root vm o) objs;
  for i = 0 to n - 1 do
    Vm.store_ref vm objs.(i) 0 (Some objs.((i + 1) mod n))
  done;
  Vm.full_gc vm;
  let ops = 100_000 in
  let kernel () =
    for i = 0 to ops - 1 do
      ignore
        (Vm.load_ref vm (Array.unsafe_get objs (i mod n)) 0
          : Vm.Heap_obj.t option)
    done
  in
  kernel ();
  let before = Gc.allocated_bytes () in
  kernel ();
  let after = Gc.allocated_bytes () in
  let words_per_op = (after -. before) /. 8.0 /. float_of_int ops in
  (* load_ref returns [Some obj] — one 2-word block per op by design (the
     documented exception to the zero-allocation rule).  Guard that it is
     *only* that: 3 words/op would mean a new hidden allocation. *)
  if words_per_op >= 3.0 then
    Alcotest.failf "load_ref allocates beyond its Some: %.4f words/op"
      words_per_op

(* ------------------------------------------------------------------ *)
(* Satellite 4: observe_into matches the list semantics.               *)
(* ------------------------------------------------------------------ *)

(* An independent reimplementation of the prefetcher's original
   list-returning semantics (closures, options and List.init — the
   allocating style observe_into replaced), used as the model. *)
module Model = struct
  type stream = {
    mutable last : int;
    mutable dir : int;
    mutable hits : int;
    mutable lru : int;
  }

  type t = {
    streams : stream array;
    degree : int;
    confirm : int;
    mutable clock : int;
  }

  let create ~streams ~degree ~confirm =
    {
      streams =
        Array.init streams (fun _ ->
            { last = -1; dir = 0; hits = 0; lru = 0 });
      degree;
      confirm;
      clock = 0;
    }

  let observe t line =
    t.clock <- t.clock + 1;
    let matched = ref None in
    Array.iter
      (fun s ->
        if !matched = None && s.last >= 0 then begin
          let delta = line - s.last in
          if (delta = 1 || delta = -1) && (s.dir = 0 || s.dir = delta) then
            matched := Some (s, delta)
        end)
      t.streams;
    match !matched with
    | Some (s, delta) ->
        s.last <- line;
        s.dir <- delta;
        s.hits <- s.hits + 1;
        s.lru <- t.clock;
        if s.hits >= t.confirm then
          List.init t.degree (fun i -> line + (delta * (i + 1)))
        else []
    | None ->
        let v =
          match
            Array.to_list t.streams
            |> List.find_opt (fun s -> s.last = -1)
          with
          | Some free -> free
          | None ->
              Array.fold_left
                (fun best s -> if s.lru < best.lru then s else best)
                t.streams.(0) t.streams
        in
        v.last <- line;
        v.dir <- 0;
        v.hits <- 0;
        v.lru <- t.clock;
        []
end

let prop_observe_into_matches_model =
  QCheck.Test.make ~name:"prefetcher: observe_into = list semantics"
    ~count:200
    QCheck.(
      quad (int_range 1 5) (int_range 1 6) (int_range 1 3)
        (small_list (int_bound 15)))
    (fun (streams, degree, confirm, raw) ->
      (* Stretch the raw input into line addresses with embedded runs so
         streams actually confirm: each element either extends the previous
         line by +/-1 or jumps. *)
      let lines =
        let last = ref 0 in
        List.concat_map
          (fun x ->
            let l =
              if x < 6 then !last + 1
              else if x < 10 then max 0 (!last - 1)
              else (x * 37) mod 256
            in
            last := l;
            [ l ])
          raw
      in
      let real = Prefetcher.create ~streams ~degree ~confirm () in
      let model = Model.create ~streams ~degree ~confirm in
      let buf = Array.make (Prefetcher.degree real) 0 in
      List.for_all
        (fun line ->
          let n = Prefetcher.observe_into real line buf in
          let got = List.init n (fun i -> buf.(i)) in
          got = Model.observe model line)
        lines)

let observe_wrapper_matches_into () =
  (* The compat wrapper and the buffered path, driven in lockstep on twin
     prefetchers, step for step. *)
  let a = Prefetcher.create () in
  let b = Prefetcher.create () in
  let buf = Array.make (Prefetcher.degree b) 0 in
  let stream =
    List.concat
      [ List.init 10 (fun i -> 100 + i);
        List.init 10 (fun i -> 500 - i);
        [ 3; 77; 3; 900 ];
        List.init 6 (fun i -> 100 + (10 - 1) + i + 1) ]
  in
  List.iter
    (fun line ->
      let via_list = Prefetcher.observe a line in
      let n = Prefetcher.observe_into b line buf in
      let via_buf = List.init n (fun i -> buf.(i)) in
      check (Alcotest.list Alcotest.int)
        (Printf.sprintf "line %d" line)
        via_list via_buf)
    stream

let suite =
  [
    ( "hotpath",
      [
        case "vec: remove semantics" `Quick vec_remove_semantics;
        case "vm: remove_root preserves root order" `Quick
          remove_root_preserves_order;
        case "machine: range = sum of per-line accesses" `Quick
          machine_range_equals_per_line;
        case "hierarchy: range = sum of per-line accesses" `Quick
          hierarchy_range_equals_per_line;
        case "vm: steady-state load/store allocates 0 words/op" `Quick
          steady_state_allocation_free;
        case "vm: load_ref allocates only its Some" `Quick
          load_ref_allocation_bounded;
        QCheck_alcotest.to_alcotest prop_observe_into_matches_model;
        case "prefetcher: observe wrapper = observe_into" `Quick
          observe_wrapper_matches_into;
      ] );
  ]
