(* Tests for the trace record/replay workload. *)

module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Layout = Hcsgc_heap.Layout
module Trace = Hcsgc_workloads.Trace
module Rng = Hcsgc_util.Rng

let check = Alcotest.check
let case = Alcotest.test_case

let mk_vm ?(config = Config.zgc) () =
  Vm.create
    ~layout:(Layout.scaled ~small_page:(16 * 1024))
    ~config ~max_heap:(4 * 1024 * 1024) ()

let hand_trace =
  {
    Trace.registers = 3;
    ops =
      [|
        Trace.Alloc { reg = 0; nrefs = 2; nwords = 1 };
        Trace.Alloc { reg = 1; nrefs = 0; nwords = 1 };
        Trace.Write_word { reg = 1; word = 0; value = 7 };
        Trace.Store { to_reg = 0; slot = 0; from_reg = 1 };
        Trace.Load { reg = 2; from_reg = 0; slot = 0 };
        Trace.Read_word { reg = 2; word = 0 };
        Trace.Store_null { to_reg = 0; slot = 0 };
        Trace.Drop { reg = 1 };
        Trace.Work 100;
      |];
  }

let replay_hand_trace () =
  let vm = mk_vm () in
  let r = Trace.replay vm hand_trace in
  check Alcotest.int "all ops executed" 9 r.Trace.executed;
  (* Read_word saw value 7 at executed=6: checksum = 7 lxor 6... keep it a
     determinism check instead of hard-coding the digest. *)
  let r2 = Trace.replay (mk_vm ()) hand_trace in
  check Alcotest.int "deterministic checksum" r.Trace.checksum r2.Trace.checksum

let validate_rejects () =
  let bad =
    { Trace.registers = 2; ops = [| Trace.Drop { reg = 5 } |] }
  in
  check Alcotest.bool "bad register rejected" true
    (Result.is_error (Trace.validate bad));
  Alcotest.check_raises "replay refuses"
    (Invalid_argument "Trace.replay: invalid operation at index 0") (fun () ->
      ignore (Trace.replay (mk_vm ()) bad))

let synthesized_traces_replay_everywhere () =
  let trace =
    Trace.synthesize ~rng:(Rng.create 5) ~ops:20_000 ~registers:32 ~churn:0.3 ()
  in
  check Alcotest.bool "validates" true (Result.is_ok (Trace.validate trace));
  let go config = (Trace.replay (mk_vm ~config ()) trace).Trace.checksum in
  let base = go Config.zgc in
  List.iter
    (fun id ->
      check Alcotest.int
        (Printf.sprintf "checksum identical under config %d" id)
        base
        (go (Config.of_id id)))
    [ 3; 4; 16; 18 ]

let synthesized_traces_trigger_gc () =
  let trace =
    Trace.synthesize ~rng:(Rng.create 9) ~ops:40_000 ~registers:16
      ~nwords:12 ~churn:0.5 ()
  in
  let vm = mk_vm ~config:(Config.of_id 4) () in
  ignore (Trace.replay vm trace);
  Vm.finish vm;
  check Alcotest.bool "cycles ran" true
    (Hcsgc_core.Gc_stats.cycles (Vm.gc_stats vm) > 0);
  match Hcsgc_core.Collector.verify (Vm.collector vm) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" (List.hd e)

let pp_smoke () =
  let s = Format.asprintf "%a" Trace.pp_op (Trace.Load { reg = 1; from_reg = 2; slot = 3 }) in
  check Alcotest.string "render" "r1 := r2.[3]" s

let suite =
  [
    ( "workloads.trace",
      [
        case "hand trace replay" `Quick replay_hand_trace;
        case "validation" `Quick validate_rejects;
        case "config-independent checksums" `Slow
          synthesized_traces_replay_everywhere;
        case "synthesized churn triggers GC" `Quick synthesized_traces_trigger_gc;
        case "pp" `Quick pp_smoke;
      ] );
  ]
