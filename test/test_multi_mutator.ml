(* Tests for multi-mutator VMs: per-thread clocks and caches, shared heap,
   relocation attribution per thread, determinism. *)

module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Gc_stats = Hcsgc_core.Gc_stats
module Layout = Hcsgc_heap.Layout
module H = Hcsgc_memsim.Hierarchy

let check = Alcotest.check
let case = Alcotest.test_case

let layout = Layout.scaled ~small_page:(16 * 1024)

(* All multi-mutator tests run under the phase-boundary sanitizer: the
   shared-heap interleavings are exactly where metadata corruption would
   hide.  Verification is read-only, so the clock/counter assertions below
   are unaffected. *)
let mk_vm ?(config = Config.zgc) ?(mutators = 2) () =
  Vm.create ~layout ~mutators ~verify:true ~config ~max_heap:(4 * 1024 * 1024)
    ()

let creation_rules () =
  check Alcotest.int "count" 3 (Vm.mutator_count (mk_vm ~mutators:3 ()));
  Alcotest.check_raises "zero mutators"
    (Invalid_argument "Vm.create: need at least one mutator") (fun () ->
      ignore (mk_vm ~mutators:0 ()));
  Alcotest.check_raises "saturated multi"
    (Invalid_argument "Vm.create: saturated mode models a single mutator core")
    (fun () ->
      ignore
        (Vm.create ~layout ~mutators:2 ~saturated:true ~config:Config.zgc
           ~max_heap:(1024 * 1024) ()))

let per_thread_clocks () =
  let vm = mk_vm () in
  Vm.work ~m:0 vm 1_000;
  Vm.work ~m:1 vm 5_000;
  check Alcotest.int "thread 0 clock" 1_000 (Vm.mutator_clock vm ~m:0);
  check Alcotest.int "thread 1 clock" 5_000 (Vm.mutator_clock vm ~m:1);
  check Alcotest.int "wall follows the slowest" 5_000 (Vm.wall_cycles vm);
  Alcotest.check_raises "bad index"
    (Invalid_argument "Vm: mutator index out of range") (fun () ->
      Vm.work ~m:2 vm 1)

let shared_heap_visible () =
  let vm = mk_vm () in
  let o = Vm.alloc ~m:0 vm ~nrefs:1 ~nwords:1 in
  Vm.add_root vm o;
  Vm.store_word ~m:0 vm o 0 42;
  (* Thread 1 reads what thread 0 wrote. *)
  check Alcotest.int "cross-thread read" 42 (Vm.load_word ~m:1 vm o 0);
  let p = Vm.alloc ~m:1 vm ~nrefs:0 ~nwords:1 in
  Vm.store_ref ~m:1 vm o 0 (Some p);
  check Alcotest.bool "cross-thread ref" true (Vm.load_ref ~m:0 vm o 0 <> None)

let private_l1_caches () =
  let vm = mk_vm () in
  let o = Vm.alloc ~m:0 vm ~nrefs:0 ~nwords:1 in
  Vm.add_root vm o;
  (* Warm thread 0's cache; thread 1 still misses its private L1. *)
  for _ = 1 to 8 do
    ignore (Vm.load_word ~m:0 vm o 0)
  done;
  let c0 = Vm.wall_cycles vm in
  ignore c0;
  let w0 = Vm.mutator_clock vm ~m:0 in
  ignore (Vm.load_word ~m:0 vm o 0);
  let hit_cost = Vm.mutator_clock vm ~m:0 - w0 in
  let w1 = Vm.mutator_clock vm ~m:1 in
  ignore (Vm.load_word ~m:1 vm o 0);
  let miss_cost = Vm.mutator_clock vm ~m:1 - w1 in
  check Alcotest.bool
    (Printf.sprintf "thread 1 pays more (%d vs %d)" miss_cost hit_cost)
    true (miss_cost > hit_cost)

let gc_with_multiple_mutators () =
  (* Both threads allocate and share structure across GC cycles. *)
  let vm = mk_vm ~config:(Config.of_id 18) () in
  let keeper = Vm.alloc ~m:0 vm ~nrefs:64 ~nwords:0 in
  Vm.add_root vm keeper;
  for i = 0 to 63 do
    let m = i mod 2 in
    let o = Vm.alloc ~m vm ~nrefs:0 ~nwords:1 in
    Vm.store_word ~m vm o 0 i;
    Vm.store_ref ~m vm keeper i (Some o)
  done;
  for round = 1 to 50_000 do
    let m = round mod 2 in
    ignore (Vm.alloc ~m vm ~nrefs:0 ~nwords:8);
    if round mod 100 = 0 then
      for i = 0 to 63 do
        match Vm.load_ref ~m vm keeper i with
        | Some o -> check Alcotest.int "payload" i (Vm.load_word ~m vm o 0)
        | None -> Alcotest.fail "lost object"
      done
  done;
  Vm.finish vm;
  check Alcotest.bool "cycles ran" true (Gc_stats.cycles (Vm.gc_stats vm) >= 2);
  match Hcsgc_core.Collector.verify (Vm.collector vm) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" (List.hd e)

let deterministic () =
  let go () =
    let vm = mk_vm () in
    let keeper = Vm.alloc vm ~nrefs:32 ~nwords:0 in
    Vm.add_root vm keeper;
    for i = 0 to 31 do
      let m = i mod 2 in
      let o = Vm.alloc ~m vm ~nrefs:0 ~nwords:2 in
      Vm.store_ref ~m vm keeper i (Some o)
    done;
    for round = 1 to 10_000 do
      let m = round mod 2 in
      ignore (Vm.alloc ~m vm ~nrefs:0 ~nwords:8);
      ignore (Vm.load_ref ~m vm keeper (round mod 32))
    done;
    Vm.finish vm;
    (Vm.wall_cycles vm, (Vm.counters vm).H.loads)
  in
  check (Alcotest.pair Alcotest.int Alcotest.int) "bit identical" (go ()) (go ())

let counters_cover_all_mutators () =
  let vm = mk_vm () in
  let o = Vm.alloc ~m:0 vm ~nrefs:0 ~nwords:1 in
  Vm.add_root vm o;
  ignore (Vm.load_word ~m:0 vm o 0);
  ignore (Vm.load_word ~m:1 vm o 0);
  let mc = Vm.mutator_counters vm in
  check Alcotest.bool "both threads' loads counted" true (mc.H.loads >= 2)

let suite =
  [
    ( "runtime.multi_mutator",
      [
        case "creation rules" `Quick creation_rules;
        case "per-thread clocks" `Quick per_thread_clocks;
        case "shared heap" `Quick shared_heap_visible;
        case "private L1 caches" `Quick private_l1_caches;
        case "GC with two mutators" `Slow gc_with_multiple_mutators;
        case "deterministic" `Quick deterministic;
        case "counters cover mutators" `Quick counters_cover_all_mutators;
      ] );
  ]
