(* Tests for the heap sanitizer stack (hcsgc.verify + hcsgc.fuzz):

   - seeded-corruption smoke tests: damage a known-good heap in one specific
     way and assert the matching Invariants check — and only a check, not a
     crash — reports it;
   - the differential mark-sweep oracle on clean heaps, at the only edge
     where it is meaningful;
   - Fwd_table model-based properties (first claim wins, find/iter agree);
   - the fuzz harness: clean seeds pass, a spliced corruption is detected,
     and the shrinker isolates it to a minimal replayable sequence;
   - determinism: verification is read-only, so verified metrics are
     structurally identical to unverified ones, sequentially and across a
     domain pool. *)

module Vm = Hcsgc_runtime.Vm
module Collector = Hcsgc_core.Collector
module Config = Hcsgc_core.Config
module Gc_stats = Hcsgc_core.Gc_stats
module Layout = Hcsgc_heap.Layout
module Heap = Hcsgc_heap.Heap
module Heap_obj = Hcsgc_heap.Heap_obj
module Page = Hcsgc_heap.Page
module Addr = Hcsgc_heap.Addr
module Fwd_table = Hcsgc_heap.Fwd_table
module Bitmap = Hcsgc_util.Bitmap
module Rng = Hcsgc_util.Rng
module Invariants = Hcsgc_verify.Invariants
module Oracle = Hcsgc_verify.Oracle
module Fuzz = Hcsgc_fuzz.Fuzz
module E = Hcsgc_experiments

let check = Alcotest.check
let case = Alcotest.test_case

let layout = Layout.scaled ~small_page:(16 * 1024)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* A ripe heap: live graph, at least one completed GC cycle, quiescent  *)
(* ------------------------------------------------------------------ *)

let ripe_vm ?(config = Config.of_id 16) () =
  let vm = Vm.create ~layout ~config ~max_heap:(1024 * 1024) () in
  let keeper = Vm.alloc vm ~nrefs:32 ~nwords:0 in
  Vm.add_root vm keeper;
  for i = 0 to 31 do
    let o = Vm.alloc vm ~nrefs:1 ~nwords:2 in
    Vm.store_word vm o 1 i;
    Vm.store_ref vm keeper i (Some o)
  done;
  for _ = 1 to 20_000 do
    ignore (Vm.alloc vm ~nrefs:0 ~nwords:12)
  done;
  Vm.finish vm;
  if Gc_stats.cycles (Vm.gc_stats vm) < 1 then
    Alcotest.fail "workload too small: no GC cycle completed";
  (vm, keeper)

let expect_violation ~what ~needle vm =
  match Invariants.check (Vm.collector vm) ~edge:Collector.Cycle_done with
  | Ok () -> Alcotest.failf "%s: sanitizer reported a clean heap" what
  | Error errors ->
      check Alcotest.bool
        (Printf.sprintf "%s: some error mentions %S (got: %s)" what needle
           (String.concat " | " errors))
        true
        (List.exists (fun e -> contains ~needle e) errors)

let clean_heap_passes () =
  let vm, _ = ripe_vm () in
  (match Invariants.check (Vm.collector vm) ~edge:Collector.Cycle_done with
  | Ok () -> ()
  | Error errors ->
      Alcotest.failf "clean heap flagged:\n%s" (String.concat "\n" errors));
  (* And the repo's own cheaper verifier agrees. *)
  match Collector.verify (Vm.collector vm) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "Collector.verify: %s" (List.hd e)

let corrupt_color_detected () =
  let vm, keeper = ripe_vm () in
  let ptr = Heap_obj.get_ref keeper 0 in
  check Alcotest.bool "slot 0 is populated" false (Addr.is_null ptr);
  (* Both mark bits at once is a colour no barrier ever writes. *)
  Heap_obj.set_ref keeper 0
    (Addr.retint Addr.M0 ptr lor Addr.retint Addr.M1 ptr);
  expect_violation ~what:"colour-bit flip" ~needle:"malformed pointer" vm

let corrupt_fwd_detected () =
  let vm, keeper = ripe_vm () in
  let page =
    Option.get (Heap.page_of_addr (Vm.heap vm) keeper.Heap_obj.addr)
  in
  check Alcotest.bool "keeper's page is active" true
    (page.Page.state = Page.Active);
  ignore (Fwd_table.claim page.Page.fwd ~offset:4 ~new_addr:0xdead0);
  expect_violation ~what:"forged forwarding entry" ~needle:"forwarding" vm

let corrupt_livemap_detected () =
  let vm, keeper = ripe_vm () in
  let page =
    Option.get (Heap.page_of_addr (Vm.heap vm) keeper.Heap_obj.addr)
  in
  check Alcotest.bool "keeper survived the cycle marked" true
    (Page.is_marked_live page keeper);
  let offset = Page.offset_of_addr page keeper.Heap_obj.addr in
  Bitmap.clear page.Page.livemap (offset / 8);
  expect_violation ~what:"cleared live bit" ~needle:"live objects sum" vm

let corrupt_live_objects_detected () =
  let vm, keeper = ripe_vm () in
  let page =
    Option.get (Heap.page_of_addr (Vm.heap vm) keeper.Heap_obj.addr)
  in
  page.Page.live_objects <- page.Page.live_objects + 1;
  expect_violation ~what:"skewed live_objects" ~needle:"livemap covers" vm

let check_exn_raises () =
  let vm, keeper = ripe_vm () in
  let ptr = Heap_obj.get_ref keeper 0 in
  Heap_obj.set_ref keeper 0
    (Addr.retint Addr.M0 ptr lor Addr.retint Addr.M1 ptr);
  match Invariants.check_exn (Vm.collector vm) ~edge:Collector.Cycle_done with
  | () -> Alcotest.fail "check_exn did not raise"
  | exception Invariants.Violation { edge; errors; _ } ->
      check Alcotest.string "edge recorded" "cycle-done"
        (Collector.phase_edge_name edge);
      check Alcotest.bool "errors collected" true (errors <> [])

let verified_run_is_clean () =
  (* End-to-end: ~verify:true wires the sanitizer (and oracle) into every
     phase edge of a real run, and a healthy collector never trips it. *)
  let vm =
    Vm.create ~layout ~verify:true ~config:(Config.of_id 18)
      ~max_heap:(1024 * 1024) ()
  in
  let keeper = Vm.alloc vm ~nrefs:16 ~nwords:0 in
  Vm.add_root vm keeper;
  for i = 0 to 15 do
    let o = Vm.alloc vm ~nrefs:0 ~nwords:2 in
    Vm.store_ref vm keeper i (Some o)
  done;
  for _ = 1 to 20_000 do
    ignore (Vm.alloc vm ~nrefs:0 ~nwords:12)
  done;
  Vm.finish vm;
  check Alcotest.bool "cycles ran verified" true
    (Gc_stats.cycles (Vm.gc_stats vm) >= 1)

(* ------------------------------------------------------------------ *)
(* Oracle                                                              *)
(* ------------------------------------------------------------------ *)

let oracle_reachability_walk () =
  let vm, _ = ripe_vm () in
  let reached, errors = Oracle.reachable (Vm.collector vm) in
  check (Alcotest.list Alcotest.string) "walk resolves everything" [] errors;
  (* keeper + its 32 children at minimum. *)
  check Alcotest.bool "reaches the live graph" true
    (Hashtbl.length reached >= 33)

let oracle_diff_at_mark_done () =
  let vm = Vm.create ~layout ~config:Config.zgc ~max_heap:(1024 * 1024) () in
  let col = Vm.collector vm in
  let diffs = ref [] in
  Collector.set_phase_hook col
    (Some
       (fun edge ->
         if edge = Collector.Mark_done then
           match Oracle.check col with
           | Ok d -> diffs := d :: !diffs
           | Error es ->
               Alcotest.failf "oracle at mark-done: %s"
                 (String.concat "; " es)));
  let keeper = Vm.alloc vm ~nrefs:16 ~nwords:0 in
  Vm.add_root vm keeper;
  for i = 0 to 15 do
    let o = Vm.alloc vm ~nrefs:0 ~nwords:2 in
    Vm.store_ref vm keeper i (Some o)
  done;
  for round = 1 to 20_000 do
    ignore (Vm.alloc vm ~nrefs:0 ~nwords:12);
    (* Keep replacing children so marked-then-dropped objects produce
       floating garbage for the oracle to classify (never an error). *)
    if round mod 500 = 0 then begin
      let o = Vm.alloc vm ~nrefs:0 ~nwords:2 in
      Vm.store_ref vm keeper (round / 500 mod 16) (Some o)
    end
  done;
  Vm.finish vm;
  check Alcotest.bool "oracle ran at least once" true (!diffs <> []);
  List.iter
    (fun d ->
      check Alcotest.bool "live graph seen" true (d.Oracle.reachable_count > 0);
      check Alcotest.bool "floating garbage is non-negative" true
        (d.Oracle.floating >= 0))
    !diffs

(* ------------------------------------------------------------------ *)
(* Fwd_table properties                                                *)
(* ------------------------------------------------------------------ *)

let prop_fwd_first_claim_wins =
  QCheck.Test.make ~name:"fwd_table: first claim wins, find agrees" ~count:200
    QCheck.(small_list (pair (int_bound 1000) (int_bound 100_000)))
    (fun pairs ->
      let t = Fwd_table.create () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (offset, new_addr) ->
          match Fwd_table.claim t ~offset ~new_addr with
          | Fwd_table.Claimed ->
              if Hashtbl.mem model offset then false
              else begin
                Hashtbl.add model offset new_addr;
                true
              end
          | Fwd_table.Already a -> Hashtbl.find_opt model offset = Some a)
        pairs
      && Fwd_table.entries t = Hashtbl.length model
      && Hashtbl.fold
           (fun offset addr ok ->
             ok && Fwd_table.find t ~offset = Some addr)
           model true)

let prop_fwd_iter_is_exactly_entries =
  QCheck.Test.make ~name:"fwd_table: iter visits each entry once" ~count:200
    QCheck.(small_list (int_bound 500))
    (fun offsets ->
      let t = Fwd_table.create () in
      List.iter
        (fun offset -> ignore (Fwd_table.claim t ~offset ~new_addr:offset))
        offsets;
      let seen = Hashtbl.create 16 in
      Fwd_table.iter t (fun ~offset ~new_addr ->
          if Hashtbl.mem seen offset then Alcotest.fail "duplicate visit";
          Hashtbl.add seen offset new_addr);
      Hashtbl.length seen = Fwd_table.entries t
      && List.for_all
           (fun offset -> Hashtbl.find_opt seen offset = Some offset)
           offsets)

let prop_fwd_find_miss =
  QCheck.Test.make ~name:"fwd_table: find misses unclaimed offsets" ~count:200
    QCheck.(pair (small_list (int_bound 200)) (int_bound 400))
    (fun (offsets, probe) ->
      let t = Fwd_table.create () in
      List.iter
        (fun offset -> ignore (Fwd_table.claim t ~offset ~new_addr:1))
        offsets;
      List.mem probe offsets || Fwd_table.find t ~offset:probe = None)

(* ------------------------------------------------------------------ *)
(* Fuzz harness                                                        *)
(* ------------------------------------------------------------------ *)

let fuzz_clean_seeds_pass () =
  for seed = 1 to 3 do
    match
      Fuzz.check_seed ~config:(Config.of_id 18) ~slots:24 ~ops:1_500 ~seed ()
    with
    | None -> ()
    | Some cex ->
        Alcotest.failf "clean seed %d failed:@.%a" seed Fuzz.pp_counterexample
          cex
  done

let fuzz_generation_is_deterministic () =
  let a = Fuzz.generate ~seed:5 ~ops:500 ~slots:16 in
  let b = Fuzz.generate ~seed:5 ~ops:500 ~slots:16 in
  check Alcotest.bool "same seed, same actions" true (a = b);
  let c = Fuzz.generate ~seed:6 ~ops:500 ~slots:16 in
  check Alcotest.bool "different seed diverges" true (a <> c)

let shrinker_isolates_seeded_corruption () =
  (* Splice one forged-forwarding corruption into an otherwise healthy
     800-action sequence; the harness must (a) fail, (b) keep the
     corruption through shrinking, and (c) end with a minimal sequence
     that still replays to a failure. *)
  match
    Fuzz.check_seed ~shrink_budget:200
      ~inject:[ (400, Fuzz.Corrupt_fwd { slot = 0 }) ]
      ~config:Config.zgc ~slots:16 ~ops:800 ~seed:11 ()
  with
  | None -> Alcotest.fail "seeded corruption was not detected"
  | Some cex ->
      check Alcotest.bool "corruption survives shrinking" true
        (List.exists
           (function Fuzz.Corrupt_fwd _ -> true | _ -> false)
           cex.Fuzz.actions);
      check Alcotest.bool
        (Printf.sprintf "minimal sequence is small (%d actions)"
           (List.length cex.Fuzz.actions))
        true
        (List.length cex.Fuzz.actions <= 10);
      (match Fuzz.replay ~config:Config.zgc cex with
      | Fuzz.Fail _ -> ()
      | Fuzz.Pass _ -> Alcotest.fail "minimal counterexample no longer fails")

let shrink_respects_predicate () =
  (* Pure shrinker unit test on a synthetic predicate: fails iff the list
     still holds allocations into both slot 3 and slot 7.  The minimum is
     exactly those two actions, at their original indices. *)
  let alloc s = Fuzz.Alloc { slot = s } in
  let indexed =
    List.mapi (fun i x -> (i, x)) (List.map alloc [ 1; 3; 5; 7; 9; 11; 13 ])
  in
  let fails l = List.mem (alloc 3) l && List.mem (alloc 7) l in
  let minimal = Fuzz.shrink ~fails indexed in
  check
    (Alcotest.list Alcotest.int)
    "minimal pair isolated" [ 1; 3 ]
    (List.map fst minimal);
  check Alcotest.bool "exactly the two culprits" true
    (List.map snd minimal = [ alloc 3; alloc 7 ])

(* ------------------------------------------------------------------ *)
(* Determinism: verification is observation only                       *)
(* ------------------------------------------------------------------ *)

let tiny_experiment () =
  {
    E.Runner.name = "verify-determinism";
    key = "test-verify-determinism;heap=1048576";
    make_vm =
      (fun config -> Vm.create ~layout ~config ~max_heap:(1024 * 1024) ());
    workload =
      (fun vm ~run ->
        let rng = Rng.create (run + 1) in
        let keeper = Vm.alloc vm ~nrefs:16 ~nwords:0 in
        Vm.add_root vm keeper;
        for i = 0 to 15 do
          let o = Vm.alloc vm ~nrefs:0 ~nwords:2 in
          Vm.store_word vm o 0 i;
          Vm.store_ref vm keeper i (Some o)
        done;
        for _ = 1 to 6_000 do
          match Rng.int rng 4 with
          | 0 -> ignore (Vm.alloc vm ~nrefs:0 ~nwords:8)
          | 1 -> (
              let s = Rng.int rng 16 in
              match Vm.load_ref vm keeper s with
              | Some o -> ignore (Vm.load_word vm o 0)
              | None -> ())
          | 2 ->
              let s = Rng.int rng 16 in
              let o = Vm.alloc vm ~nrefs:0 ~nwords:2 in
              Vm.store_ref vm keeper s (Some o)
          | _ -> Vm.work vm 5
        done);
  }

let verified_metrics_equal_unverified () =
  let exp = tiny_experiment () in
  List.iter
    (fun config_id ->
      let job = { E.Runner.exp; config_id; run = 0 } in
      let plain = E.Runner.execute job in
      let verified = E.Runner.execute ~verify:true job in
      check Alcotest.bool
        (Printf.sprintf "config %d metrics identical under verification"
           config_id)
        true (plain = verified))
    [ 0; 4; 16; 18 ]

let verified_sweep_deterministic_across_jobs () =
  let exp = tiny_experiment () in
  let sweep ~jobs =
    E.Runner.run_configs ~config_ids:[ 0; 16 ] ~runs:2 ~jobs ~verify:true exp
  in
  let sequential = sweep ~jobs:1 in
  let parallel = sweep ~jobs:4 in
  check Alcotest.bool "-j1 and -j4 verified sweeps identical" true
    (sequential = parallel)

let suite =
  [
    ( "verify.invariants",
      [
        case "clean heap passes" `Slow clean_heap_passes;
        case "colour-bit flip detected" `Slow corrupt_color_detected;
        case "forged forwarding detected" `Slow corrupt_fwd_detected;
        case "cleared live bit detected" `Slow corrupt_livemap_detected;
        case "skewed live_objects detected" `Slow corrupt_live_objects_detected;
        case "check_exn raises Violation" `Slow check_exn_raises;
        case "verified run stays clean" `Slow verified_run_is_clean;
      ] );
    ( "verify.oracle",
      [
        case "reachability walk" `Slow oracle_reachability_walk;
        case "diff at mark-done" `Slow oracle_diff_at_mark_done;
      ] );
    ( "verify.fwd_table",
      [
        QCheck_alcotest.to_alcotest prop_fwd_first_claim_wins;
        QCheck_alcotest.to_alcotest prop_fwd_iter_is_exactly_entries;
        QCheck_alcotest.to_alcotest prop_fwd_find_miss;
      ] );
    ( "verify.fuzz",
      [
        case "clean seeds pass" `Slow fuzz_clean_seeds_pass;
        case "generation deterministic" `Quick fuzz_generation_is_deterministic;
        case "shrinker isolates corruption" `Slow
          shrinker_isolates_seeded_corruption;
        case "shrinker minimises a predicate" `Quick shrink_respects_predicate;
      ] );
    ( "verify.determinism",
      [
        case "verified = unverified metrics" `Slow
          verified_metrics_equal_unverified;
        case "verified sweep at -j1 = -j4" `Slow
          verified_sweep_deterministic_across_jobs;
      ] );
  ]
