(* Tests for hcsgc.memsim: caches, prefetcher, hierarchy, machine. *)

module Cache = Hcsgc_memsim.Cache
module Prefetcher = Hcsgc_memsim.Prefetcher
module Hierarchy = Hcsgc_memsim.Hierarchy
module Machine = Hcsgc_memsim.Machine

let check = Alcotest.check
let case = Alcotest.test_case

let small_geom = { Cache.size_bytes = 1024; ways = 2; line_bytes = 64 }
(* 1024 / (2*64) = 8 sets *)

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let cache_miss_then_hit () =
  let c = Cache.create small_geom in
  check Alcotest.bool "first access misses" false (Cache.access c 100);
  check Alcotest.bool "second access hits" true (Cache.access c 100)

let cache_line_of_addr () =
  let c = Cache.create small_geom in
  check Alcotest.int "line granularity" (Cache.line_of_addr c 0)
    (Cache.line_of_addr c 63);
  check Alcotest.bool "next line differs" true
    (Cache.line_of_addr c 63 <> Cache.line_of_addr c 64)

let cache_lru_eviction () =
  let c = Cache.create small_geom in
  (* Three lines mapping to the same set (stride = 8 lines, 8 sets). *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 8);
  (* touch 0 so 8 is LRU *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 16);
  (* evicts 8 *)
  check Alcotest.bool "0 survives" true (Cache.probe c 0);
  check Alcotest.bool "8 evicted" false (Cache.probe c 8);
  check Alcotest.bool "16 present" true (Cache.probe c 16)

let cache_probe_no_side_effect () =
  let c = Cache.create small_geom in
  check Alcotest.bool "probe misses" false (Cache.probe c 5);
  check Alcotest.bool "still misses on access" false (Cache.access c 5)

let cache_insert () =
  let c = Cache.create small_geom in
  Cache.insert c 77;
  check Alcotest.bool "insert fills" true (Cache.probe c 77)

let cache_invalidate () =
  let c = Cache.create small_geom in
  ignore (Cache.access c 1);
  Cache.invalidate_all c;
  check Alcotest.bool "emptied" false (Cache.probe c 1)

let cache_bad_geometry () =
  Alcotest.check_raises "non-pow2 sets"
    (Invalid_argument "Cache.create: geometry must yield a power-of-two set count")
    (fun () ->
      ignore (Cache.create { Cache.size_bytes = 960; ways = 2; line_bytes = 64 }))

let cache_associativity_capacity () =
  let c = Cache.create small_geom in
  (* Two ways per set: both stay resident. *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 8);
  check Alcotest.bool "way 1" true (Cache.probe c 0);
  check Alcotest.bool "way 2" true (Cache.probe c 8)

let prop_cache_hit_after_access =
  QCheck.Test.make ~name:"cache: access makes line resident" ~count:300
    QCheck.(small_list (int_bound 10_000))
    (fun lines ->
      let c = Cache.create { Cache.size_bytes = 64 * 1024; ways = 8; line_bytes = 64 } in
      List.iter (fun l -> ignore (Cache.access c l)) lines;
      match List.rev lines with
      | [] -> true
      | last :: _ -> Cache.probe c last)

(* ------------------------------------------------------------------ *)
(* Prefetcher                                                          *)
(* ------------------------------------------------------------------ *)

let prefetcher_detects_ascending_stream () =
  let pf = Prefetcher.create ~confirm:2 ~degree:4 () in
  ignore (Prefetcher.observe pf 100);
  ignore (Prefetcher.observe pf 101);
  let p = Prefetcher.observe pf 102 in
  check (Alcotest.list Alcotest.int) "prefetch next 4" [ 103; 104; 105; 106 ] p

let prefetcher_detects_descending_stream () =
  let pf = Prefetcher.create ~confirm:2 ~degree:2 () in
  ignore (Prefetcher.observe pf 100);
  ignore (Prefetcher.observe pf 99);
  let p = Prefetcher.observe pf 98 in
  check (Alcotest.list Alcotest.int) "prefetch down" [ 97; 96 ] p

let prefetcher_ignores_random () =
  let pf = Prefetcher.create () in
  let rng = Hcsgc_util.Rng.create 4 in
  let fired = ref 0 in
  for _ = 1 to 1_000 do
    let l = Hcsgc_util.Rng.int rng 1_000_000 in
    if Prefetcher.observe pf l <> [] then incr fired
  done;
  check Alcotest.bool "few spurious prefetches" true (!fired < 20)

let prefetcher_tracks_interleaved_streams () =
  let pf = Prefetcher.create ~confirm:2 ~degree:1 () in
  (* Two interleaved ascending streams. *)
  ignore (Prefetcher.observe pf 1000);
  ignore (Prefetcher.observe pf 5000);
  ignore (Prefetcher.observe pf 1001);
  ignore (Prefetcher.observe pf 5001);
  let a = Prefetcher.observe pf 1002 in
  let b = Prefetcher.observe pf 5002 in
  check (Alcotest.list Alcotest.int) "stream A" [ 1003 ] a;
  check (Alcotest.list Alcotest.int) "stream B" [ 5003 ] b

let prefetcher_reset () =
  let pf = Prefetcher.create ~confirm:2 ~degree:1 () in
  ignore (Prefetcher.observe pf 10);
  ignore (Prefetcher.observe pf 11);
  Prefetcher.reset pf;
  check (Alcotest.list Alcotest.int) "no stream after reset" []
    (Prefetcher.observe pf 12)

(* ------------------------------------------------------------------ *)
(* Hierarchy                                                           *)
(* ------------------------------------------------------------------ *)

let no_prefetch_config =
  { Hierarchy.default_config with Hierarchy.prefetch = false }

let hierarchy_latencies () =
  let h = Hierarchy.create no_prefetch_config in
  let lat1 = Hierarchy.load h 4096 in
  check Alcotest.int "cold load pays memory latency" 200 lat1;
  let lat2 = Hierarchy.load h 4096 in
  check Alcotest.int "warm load pays L1 latency" 4 lat2

let hierarchy_counters () =
  let h = Hierarchy.create no_prefetch_config in
  ignore (Hierarchy.load h 0);
  ignore (Hierarchy.load h 0);
  ignore (Hierarchy.store h 64);
  let c = Hierarchy.counters h in
  check Alcotest.int "loads" 2 c.Hierarchy.loads;
  check Alcotest.int "stores" 1 c.Hierarchy.stores;
  check Alcotest.int "l1 misses" 1 c.Hierarchy.l1_misses;
  check Alcotest.int "llc misses" 1 c.Hierarchy.llc_misses

let hierarchy_l2_hit () =
  let h = Hierarchy.create no_prefetch_config in
  ignore (Hierarchy.load h 0);
  (* Evict from L1 (32KB, 8 ways, 64 sets): 8 conflicting lines at stride
     64*64 bytes. *)
  for i = 1 to 8 do
    ignore (Hierarchy.load h (i * 64 * 64))
  done;
  let lat = Hierarchy.load h 0 in
  check Alcotest.int "L2 hit latency" 12 lat

let hierarchy_store_fills () =
  let h = Hierarchy.create no_prefetch_config in
  let lat_store = Hierarchy.store h 128 in
  check Alcotest.int "store is write-buffered" 2 lat_store;
  check Alcotest.int "subsequent load hits L1" 4 (Hierarchy.load h 128)

let hierarchy_range () =
  let h = Hierarchy.create no_prefetch_config in
  (* 3 lines: 200 + 200 + 200 *)
  let lat = Hierarchy.load_range h 0 192 in
  check Alcotest.int "range latency" 600 lat;
  let c = Hierarchy.counters h in
  check Alcotest.int "range loads" 3 c.Hierarchy.loads

let hierarchy_range_partial_lines () =
  let h = Hierarchy.create no_prefetch_config in
  (* 32 bytes starting at 48 spans two lines. *)
  ignore (Hierarchy.load_range h 48 32);
  let c = Hierarchy.counters h in
  check Alcotest.int "two lines touched" 2 c.Hierarchy.loads

let hierarchy_prefetch_hides_stream () =
  let h = Hierarchy.create Hierarchy.default_config in
  (* Sequential walk: after the stream is confirmed, loads hit L1. *)
  let total_cold = ref 0 in
  for i = 0 to 63 do
    total_cold := !total_cold + Hierarchy.load h (i * 64)
  done;
  let c = Hierarchy.counters h in
  check Alcotest.bool "prefetches issued" true (c.Hierarchy.prefetches > 0);
  check Alcotest.bool "misses far below line count" true
    (c.Hierarchy.l1_misses < 16)

let hierarchy_flush () =
  let h = Hierarchy.create no_prefetch_config in
  ignore (Hierarchy.load h 0);
  Hierarchy.flush h;
  let c = Hierarchy.counters h in
  check Alcotest.int "counters zero" 0 c.Hierarchy.loads;
  check Alcotest.int "cold again" 200 (Hierarchy.load h 0)

(* ------------------------------------------------------------------ *)
(* Machine                                                             *)
(* ------------------------------------------------------------------ *)

let machine_cfg = { Hierarchy.default_config with Hierarchy.prefetch = false }

let machine_private_l1 () =
  let m = Machine.create ~cfg:machine_cfg ~cores:2 () in
  ignore (Machine.load m ~core:0 0);
  (* Core 1 misses its private L1/L2 but hits the shared LLC. *)
  let lat = Machine.load m ~core:1 0 in
  check Alcotest.int "core 1 hits shared LLC" 40 lat

let machine_shared_llc_counts () =
  let m = Machine.create ~cfg:machine_cfg ~cores:2 () in
  ignore (Machine.load m ~core:0 0);
  ignore (Machine.load m ~core:1 0);
  let c = Machine.counters m in
  check Alcotest.int "machine-wide loads" 2 c.Hierarchy.loads;
  check Alcotest.int "two L1 misses" 2 c.Hierarchy.l1_misses;
  check Alcotest.int "one LLC miss" 1 c.Hierarchy.llc_misses

let machine_core_bounds () =
  let m = Machine.create ~cores:1 () in
  Alcotest.check_raises "bad core"
    (Invalid_argument "Machine: core index out of range") (fun () ->
      ignore (Machine.load m ~core:1 0))

let machine_flush () =
  let m = Machine.create ~cfg:machine_cfg ~cores:2 () in
  ignore (Machine.load m ~core:0 0);
  Machine.flush m;
  check Alcotest.int "cold after flush" 200 (Machine.load m ~core:0 0)

(* ------------------------------------------------------------------ *)
(* Machine: epoch sharding                                             *)
(* ------------------------------------------------------------------ *)

let machine_shard_defers () =
  let m = Machine.create ~cfg:machine_cfg ~cores:2 () in
  Machine.attach_shards m 1;
  check Alcotest.int "one shard" 1 (Machine.shards m);
  check Alcotest.bool "clean before traffic" false (Machine.shards_dirty m);
  (* Shard core: logged, latency deferred to the merge. *)
  check Alcotest.int "deferred load returns 0" 0 (Machine.load m ~core:0 0);
  check Alcotest.bool "dirty after logging" true (Machine.shards_dirty m);
  (* Non-shard core (the GC core) stays inline. *)
  check Alcotest.int "core 1 still inline" 200 (Machine.load m ~core:1 4096);
  let lats = Machine.flush_shards m in
  check Alcotest.int "cold deferred load cost at merge" 200 lats.(0);
  check Alcotest.bool "clean after merge" false (Machine.shards_dirty m)

(* The single-shard oracle: with all mutator traffic on one shard core,
   replay order equals issue order, so an epoch must resolve to exactly
   the latencies and counters of the classic inline machine driven with
   the same sequence. *)
let machine_shard_matches_inline () =
  let drive load store =
    (* Mixed loads/stores/ranges with re-references (cache hits), spread
       wide enough to produce L1/L2/LLC misses. *)
    let lat = ref 0 in
    for i = 0 to 199 do
      lat := !lat + load (i * 8192);
      lat := !lat + store ((i * 8192) + 64);
      if i mod 3 = 0 then lat := !lat + load ((i / 2) * 8192)
    done;
    !lat
  in
  let inline_m = Machine.create ~cfg:machine_cfg ~cores:2 () in
  let inline_lat =
    drive (Machine.load inline_m ~core:0) (Machine.store inline_m ~core:0)
  in
  let sharded = Machine.create ~cfg:machine_cfg ~cores:2 () in
  Machine.attach_shards sharded 1;
  let zero =
    drive (Machine.load sharded ~core:0) (Machine.store sharded ~core:0)
  in
  check Alcotest.int "all latency deferred" 0 zero;
  let lats = Machine.flush_shards sharded in
  check Alcotest.int "epoch latency equals inline" inline_lat lats.(0);
  check Alcotest.bool "machine counters equal" true
    (Machine.counters sharded = Machine.counters inline_m);
  check Alcotest.bool "core counters equal" true
    (Machine.core_counters sharded ~core:0
    = Machine.core_counters inline_m ~core:0);
  check Alcotest.int "tlb equal" (Machine.tlb_misses inline_m)
    (Machine.tlb_misses sharded)

(* Mirror of the machine-wide counters test, through the per-shard view. *)
let machine_shard_counters () =
  let m = Machine.create ~cfg:machine_cfg ~cores:2 () in
  Machine.attach_shards m 2;
  ignore (Machine.load m ~core:0 0);
  ignore (Machine.load m ~core:1 0);
  ignore (Machine.flush_shards m);
  let s0 = Machine.shard_counters m ~shard:0 in
  let s1 = Machine.shard_counters m ~shard:1 in
  check Alcotest.int "shard 0 loads" 1 s0.Hierarchy.loads;
  check Alcotest.int "shard 1 loads" 1 s1.Hierarchy.loads;
  check Alcotest.int "shard 0 misses L1" 1 s0.Hierarchy.l1_misses;
  (* Shard 0 merged first, so only it missed the shared LLC; shard 1
     missed its private levels but hit the LLC. *)
  check Alcotest.int "shard 0 missed LLC" 1 s0.Hierarchy.llc_misses;
  check Alcotest.int "shard 1 hit LLC" 0 s1.Hierarchy.llc_misses;
  (* The per-shard view is the per-core view (see machine.mli). *)
  check Alcotest.bool "shard = core counters" true
    (s0 = Machine.core_counters m ~core:0);
  let c = Machine.counters m in
  check Alcotest.int "machine-wide loads" 2 c.Hierarchy.loads;
  check Alcotest.int "one LLC miss machine-wide" 1 c.Hierarchy.llc_misses;
  Alcotest.check_raises "bad shard"
    (Invalid_argument "Machine: shard index out of range") (fun () ->
      ignore (Machine.shard_counters m ~shard:2))

let machine_shard_flush_discards_log () =
  let m = Machine.create ~cfg:machine_cfg ~cores:2 () in
  Machine.attach_shards m 1;
  ignore (Machine.load m ~core:0 0);
  Machine.flush m;
  check Alcotest.bool "pending log discarded" false (Machine.shards_dirty m);
  let lats = Machine.flush_shards m in
  check Alcotest.int "nothing to replay" 0 lats.(0)

let suite =
  [
    ( "memsim.cache",
      [
        case "miss then hit" `Quick cache_miss_then_hit;
        case "line granularity" `Quick cache_line_of_addr;
        case "LRU eviction" `Quick cache_lru_eviction;
        case "probe has no side effect" `Quick cache_probe_no_side_effect;
        case "insert" `Quick cache_insert;
        case "invalidate" `Quick cache_invalidate;
        case "bad geometry rejected" `Quick cache_bad_geometry;
        case "associativity" `Quick cache_associativity_capacity;
        QCheck_alcotest.to_alcotest prop_cache_hit_after_access;
      ] );
    ( "memsim.prefetcher",
      [
        case "ascending stream" `Quick prefetcher_detects_ascending_stream;
        case "descending stream" `Quick prefetcher_detects_descending_stream;
        case "random traffic" `Quick prefetcher_ignores_random;
        case "interleaved streams" `Quick prefetcher_tracks_interleaved_streams;
        case "reset" `Quick prefetcher_reset;
      ] );
    ( "memsim.hierarchy",
      [
        case "latency ladder" `Quick hierarchy_latencies;
        case "counters" `Quick hierarchy_counters;
        case "L2 hit" `Quick hierarchy_l2_hit;
        case "stores fill and are buffered" `Quick hierarchy_store_fills;
        case "range load" `Quick hierarchy_range;
        case "range spans lines" `Quick hierarchy_range_partial_lines;
        case "prefetch hides streams" `Quick hierarchy_prefetch_hides_stream;
        case "flush" `Quick hierarchy_flush;
      ] );
    ( "memsim.machine",
      [
        case "private L1, shared LLC" `Quick machine_private_l1;
        case "machine-wide counters" `Quick machine_shared_llc_counts;
        case "core bounds" `Quick machine_core_bounds;
        case "flush" `Quick machine_flush;
      ] );
    ( "memsim.machine.shards",
      [
        case "deferred routing" `Quick machine_shard_defers;
        case "single shard matches inline" `Quick machine_shard_matches_inline;
        case "shard counters" `Quick machine_shard_counters;
        case "flush discards pending log" `Quick
          machine_shard_flush_discards_log;
      ] );
  ]
