(* Test entry point: one alcotest binary over every library's suite. *)

let () =
  Alcotest.run "hcsgc"
    (Test_util.suite @ Test_exec.suite @ Test_memsim.suite @ Test_tlb.suite
   @ Test_heap.suite
   @ Test_stats.suite
   @ Test_core.suite @ Test_runtime.suite @ Test_multi_mutator.suite @ Test_shard.suite
   @ Test_graph.suite
   @ Test_workloads.suite @ Test_experiments.suite @ Test_store.suite
   @ Test_collector_unit.suite
   @ Test_autotuner.suite @ Test_gc_log.suite @ Test_telemetry.suite
   @ Test_lru.suite @ Test_keydist.suite @ Test_serve.suite @ Test_trace.suite
   @ Test_misc.suite
   @ Test_fuzz.suite @ Test_verify.suite @ Test_tier.suite
   @ Test_hotpath.suite
   @ Test_gccycle.suite)
